// Quickstart: build a platform, submit a handful of divisible requests, and
// compare the paper's schedulers on the two stretch metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"stretchsched/internal/core"
	"stretchsched/internal/model"
)

func main() {
	// A two-site platform. Site A (20 work-units/s) holds databanks 0 and
	// 1; site B (30 work-units/s) holds only databank 1 — the "restricted
	// availability" that makes the scheduling problem interesting.
	platform, err := model.NewPlatform([]model.Machine{
		{Name: "siteA", Speed: 20, Databanks: []model.DatabankID{0, 1}},
		{Name: "siteB", Speed: 30, Databanks: []model.DatabankID{1}},
	}, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Five motif-comparison requests. Sizes are in work units (the paper
	// uses megabytes of databank scanned); releases in seconds.
	inst, err := model.NewInstance(platform, []model.Job{
		{Name: "blast-1", Release: 0, Size: 400, Databank: 1},
		{Name: "blast-2", Release: 2, Size: 60, Databank: 0},
		{Name: "blast-3", Release: 3, Size: 800, Databank: 1},
		{Name: "blast-4", Release: 4, Size: 30, Databank: 0},
		{Name: "blast-5", Release: 5, Size: 120, Databank: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The offline optimal max-stretch (the paper's §4.3.1 algorithm) is the
	// yardstick every heuristic is measured against.
	optimal, err := core.OptimalMaxStretch(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline optimal max-stretch: %.4f\n\n", optimal)

	metrics, err := core.Evaluate(inst, []string{"Online", "SWRPT", "SRPT", "FCFS", "MCT"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %12s %12s\n", "scheduler", "max-stretch", "sum-stretch")
	for _, m := range metrics {
		fmt.Printf("%-10s %12.4f %12.4f\n", m.Scheduler, m.MaxStretch, m.SumStretch)
	}

	// Inspect one schedule in detail.
	sched, err := core.MustGet("Online").Run(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOnline schedule, per job:\n")
	for j := range inst.Jobs {
		id := model.JobID(j)
		fmt.Printf("  %-8s released %4.1fs  completed %6.2fs  stretch %.3f\n",
			inst.Jobs[j].Name, inst.Jobs[j].Release, sched.Completion[j],
			sched.Stretch(inst, id))
	}
}
