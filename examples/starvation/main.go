// Starvation (Theorem 1) in action: sum-stretch optimisers leave a big job
// behind indefinitely while a stream of small jobs keeps arriving, whereas
// max-stretch optimisation bounds everyone's slowdown.
//
// The paper proves (Theorem 1) that ANY algorithm with a non-trivial
// competitive ratio for sum-stretch must starve this instance — the two
// metrics are irreconcilable — and recommends max-stretch for user-facing
// systems on exactly these grounds.
//
//	go run ./examples/starvation
package main

import (
	"fmt"
	"log"

	"stretchsched/internal/core"
	"stretchsched/internal/model"
)

func main() {
	const delta = 5.0 // size ratio ∆ between the big job and the stream
	for _, k := range []int{25, 50, 100, 200} {
		inst := theorem1Instance(delta, k)
		fmt.Printf("stream length k = %d (∆ = %.0f)\n", k, delta)

		optimal, err := core.OptimalMaxStretch(inst)
		if err != nil {
			log.Fatal(err)
		}
		for _, name := range []string{"SRPT", "SWRPT", "Online"} {
			sched, err := core.MustGet(name).Run(inst)
			if err != nil {
				log.Fatal(name, ": ", err)
			}
			big := sched.Stretch(inst, 0)
			fmt.Printf("  %-8s max-stretch %7.2f (optimal %.2f)   big job stretched ×%.1f   sum-stretch %7.1f\n",
				name, sched.MaxStretch(inst), optimal, big, sched.SumStretch(inst))
		}
		fmt.Println()
	}
	fmt.Println("SRPT/SWRPT minimise the sum by sacrificing the big job — its stretch")
	fmt.Println("grows linearly with the stream length. The max-stretch-driven Online")
	fmt.Println("heuristic pays a little sum-stretch to keep the worst case flat.")
}

// theorem1Instance is the Theorem 1 construction: one job of size ∆ at time
// 0, then k unit jobs released one per time unit.
func theorem1Instance(delta float64, k int) *model.Instance {
	platform, err := model.Uniform([]float64{1})
	if err != nil {
		log.Fatal(err)
	}
	jobs := []model.Job{{Name: "big", Release: 0, Size: delta, Databank: 0}}
	for i := 0; i < k; i++ {
		jobs = append(jobs, model.Job{
			Name:     fmt.Sprintf("unit-%03d", i+1),
			Release:  float64(i),
			Size:     1,
			Databank: 0,
		})
	}
	inst, err := model.NewInstance(platform, jobs)
	if err != nil {
		log.Fatal(err)
	}
	return inst
}
