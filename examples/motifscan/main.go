// Motifscan: the complete GriPPS pipeline on real (synthetic) data — the
// application the paper's model abstracts, running end to end:
//
//  1. generate protein databanks and user motifs;
//
//  2. measure each request's size with the scanning engine's cost model
//     (work is linear in residues scanned — the §2 validation);
//
//  3. build the scheduling instance and run the Online max-stretch
//     heuristic;
//
//  4. execute the actual scans, machine by machine, following the
//     schedule's divisible work assignments, in parallel goroutines;
//
//  5. verify every request found exactly the matches a sequential scan
//     finds, and report the stretch each user experienced.
//
//     go run ./examples/motifscan
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"

	"stretchsched/internal/core"
	"stretchsched/internal/model"
	"stretchsched/internal/seqcmp"
	"stretchsched/internal/trace"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Step 1: three databanks of different sizes, replicated on two of
	// three sites each.
	banks := []*seqcmp.Databank{
		seqcmp.RandomDatabank("swissprot-lite", 240, 120, rng),
		seqcmp.RandomDatabank("trembl-lite", 120, 100, rng),
		seqcmp.RandomDatabank("pdb-lite", 60, 90, rng),
	}
	platform, err := model.NewPlatform([]model.Machine{
		{Name: "lyon", Speed: 40_000, Databanks: []model.DatabankID{0, 1}},
		{Name: "nancy", Speed: 60_000, Databanks: []model.DatabankID{1, 2}},
		{Name: "nice", Speed: 50_000, Databanks: []model.DatabankID{0, 2}},
	}, 3) // speeds in residue-comparisons per second
	if err != nil {
		log.Fatal(err)
	}

	// Step 2: user requests. Job size = measured scan work (ops).
	type request struct {
		motif *seqcmp.Motif
		bank  int
	}
	var reqs []request
	var jobs []model.Job
	for i := 0; i < 9; i++ {
		b := rng.Intn(len(banks))
		motif := seqcmp.RandomMotif(3+rng.Intn(3), rng)
		work := seqcmp.Scan(banks[b], motif).Ops // calibration run
		reqs = append(reqs, request{motif, b})
		jobs = append(jobs, model.Job{
			Name:     fmt.Sprintf("motif-%d[%s]", i+1, motif.Pattern),
			Release:  float64(i) * 0.15,
			Size:     float64(work),
			Databank: model.DatabankID(b),
		})
	}
	inst, err := model.NewInstance(platform, jobs)
	if err != nil {
		log.Fatal(err)
	}

	// Step 3: schedule with the paper's online heuristic.
	sched, err := core.MustGet("Online").Run(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(trace.Gantt(inst, sched, trace.GanttOptions{Width: 64}))
	fmt.Println()

	// Step 4: execute. Each machine processes its slices in order; a slice
	// covering `fraction` of a job scans the corresponding sequence range.
	perMachine := map[model.MachineID][]model.Slice{}
	for _, sl := range sched.Slices {
		perMachine[sl.Machine] = append(perMachine[sl.Machine], sl)
	}
	cursor := make([]int, len(jobs)) // next unscanned sequence per job
	var mu sync.Mutex
	results := make([][]seqcmp.Match, len(jobs))
	var wg sync.WaitGroup
	for mid, slices := range perMachine {
		wg.Add(1)
		go func(mid model.MachineID, slices []model.Slice) {
			defer wg.Done()
			speed := inst.Platform.Machine(mid).Speed
			for _, sl := range slices {
				j := int(sl.Job)
				req := reqs[j]
				bank := banks[req.bank]
				// Work → sequence range (rounded; remainders settled below).
				frac := sl.Duration() * speed / jobs[j].Size
				mu.Lock()
				from := cursor[j]
				count := int(frac*float64(len(bank.Sequences)) + 0.5)
				if from+count > len(bank.Sequences) {
					count = len(bank.Sequences) - from
				}
				cursor[j] = from + count
				mu.Unlock()
				res := seqcmp.Scan(bank.Slice(from, from+count), req.motif)
				mu.Lock()
				results[j] = append(results[j], res.Matches...)
				mu.Unlock()
			}
		}(mid, slices)
	}
	wg.Wait()
	// Rounding remainders: scan whatever is left of each bank.
	for j := range jobs {
		bank := banks[reqs[j].bank]
		if cursor[j] < len(bank.Sequences) {
			res := seqcmp.Scan(bank.Slice(cursor[j], len(bank.Sequences)), reqs[j].motif)
			results[j] = append(results[j], res.Matches...)
		}
	}

	// Step 5: verify against sequential scans and report.
	fmt.Printf("%-22s %8s %8s %10s\n", "request", "matches", "check", "stretch")
	for j := range jobs {
		want := seqcmp.Scan(banks[reqs[j].bank], reqs[j].motif).Matches
		got := results[j]
		sort.Slice(got, func(a, b int) bool {
			if got[a].SequenceID != got[b].SequenceID {
				return got[a].SequenceID < got[b].SequenceID
			}
			return got[a].Offset < got[b].Offset
		})
		check := "OK"
		if len(got) != len(want) {
			check = fmt.Sprintf("MISMATCH(%d/%d)", len(got), len(want))
		}
		fmt.Printf("%-22s %8d %8s %10.3f\n",
			inst.Jobs[j].Name, len(got), check, sched.Stretch(inst, model.JobID(j)))
	}
}
