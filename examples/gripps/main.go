// GriPPS scenario: the motivating workload of the paper, end to end.
//
// A grid of sequence-comparison servers holds partially replicated protein
// databanks. Biologists submit motifs; each request scans one databank and
// is divisible across every site holding that databank. Interactive users
// share the platform with automated submission scripts (long runs of
// back-to-back small requests — the pattern the paper found in the GriPPS
// logs that makes starvation a practical concern, §5.3).
//
//	go run ./examples/gripps
package main

import (
	"fmt"
	"log"
	"math/rand"

	"stretchsched/internal/core"
	"stretchsched/internal/model"
	"stretchsched/internal/workload"
)

func main() {
	// A 10-site heterogeneous platform with 10 databanks at 60%
	// availability, loaded slightly beyond capacity — the regime where
	// scheduling policy decides user experience.
	cfg := workload.Config{
		Sites:        10,
		Databanks:    10,
		Availability: 0.6,
		Density:      1.25,
		TargetJobs:   35,
		SizeRange:    [2]float64{10, 300},
		Seed:         2006,
	}
	inst, err := cfg.Generate()
	if err != nil {
		log.Fatal(err)
	}

	// An automated submission burst: a script hammers one databank with
	// small back-to-back requests, exactly the GriPPS log pattern.
	inst = withScriptBurst(inst, 40)

	fmt.Printf("GriPPS scenario: %d requests over %d sites (Δ = %.1f)\n\n",
		inst.NumJobs(), inst.Platform.NumMachines(), inst.Delta())

	optimal, err := core.OptimalMaxStretch(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline optimal max-stretch: %.3f\n\n", optimal)

	names := []string{"Online", "Online-EGDF", "SWRPT", "SRPT", "MCT-Div", "MCT"}
	fmt.Printf("%-12s %12s %12s %16s\n", "scheduler", "max-stretch", "sum-stretch", "worst service")
	for _, name := range names {
		sched, err := core.MustGet(name).Run(inst)
		if err != nil {
			log.Fatal(name, ": ", err)
		}
		worst := worstJob(inst, sched)
		fmt.Printf("%-12s %12.3f %12.1f %16s\n",
			name, sched.MaxStretch(inst), sched.SumStretch(inst), worst)
	}
	fmt.Println("\nReading: the LP-based Online heuristic keeps the worst user within a")
	fmt.Println("few times optimal; MCT (the production GriPPS policy) lets small")
	fmt.Println("interactive requests starve behind the scripted burst.")
}

// withScriptBurst appends a run of small back-to-back jobs on databank 0.
func withScriptBurst(inst *model.Instance, count int) *model.Instance {
	rng := rand.New(rand.NewSource(99))
	agg := inst.Platform.AggregateSpeed(0)
	jobs := append([]model.Job(nil), inst.Jobs...)
	// Small: ~0.4 s of aggregate service each, released back to back.
	size := 0.4 * agg
	t := 0.0
	if n := inst.NumJobs(); n > 0 {
		t = inst.Jobs[n/3].Release // start mid-trace
	}
	for i := 0; i < count; i++ {
		jobs = append(jobs, model.Job{
			Name:     fmt.Sprintf("script-%02d", i+1),
			Release:  t,
			Size:     size * (0.8 + 0.4*rng.Float64()),
			Databank: 0,
		})
		t += size / agg // next submission right after the previous finishes
	}
	out, err := model.NewInstance(inst.Platform, jobs)
	if err != nil {
		log.Fatal(err)
	}
	return out
}

func worstJob(inst *model.Instance, sched *model.Schedule) string {
	worst, at := 0.0, 0
	for j := range inst.Jobs {
		if s := sched.Stretch(inst, model.JobID(j)); s > worst {
			worst, at = s, j
		}
	}
	return fmt.Sprintf("%s ×%.1f", inst.Jobs[at].Name, worst)
}
