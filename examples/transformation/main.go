// Lemma 1, executable: a uniform divisible platform is exactly one
// preemptive processor of the aggregate speed. The same priority policy
// produces identical completion times on both — which is why the paper can
// import forty years of single-machine scheduling theory wholesale.
//
// The demo then breaks uniformity (restricted availability) and shows the
// equivalence failing, which is precisely why the paper needs linear
// programs for the general case (Figure 2's "non-comparable" schedules).
//
//	go run ./examples/transformation
package main

import (
	"fmt"
	"log"

	"stretchsched/internal/core"
	"stretchsched/internal/model"
	"stretchsched/internal/uniproc"
)

func main() {
	jobs := []model.Job{
		{Name: "J1", Release: 0, Size: 90, Databank: 0},
		{Name: "J2", Release: 1, Size: 30, Databank: 0},
		{Name: "J3", Release: 2, Size: 60, Databank: 0},
		{Name: "J4", Release: 5, Size: 15, Databank: 0},
	}

	// Three heterogeneous machines, all holding the databank: uniform.
	platform, err := model.Uniform([]float64{10, 20, 30})
	if err != nil {
		log.Fatal(err)
	}
	multi, err := model.NewInstance(platform, jobs)
	if err != nil {
		log.Fatal(err)
	}
	single, err := uniproc.Equivalent(multi)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Uniform platform {10,20,30} vs equivalent processor (speed 60):")
	fmt.Printf("%-8s %18s %18s\n", "job", "divisible (3 mach)", "equivalent (1 proc)")
	srpt := core.MustGet("SRPT")
	sm, err := srpt.Run(multi)
	if err != nil {
		log.Fatal(err)
	}
	ss, err := srpt.Run(single)
	if err != nil {
		log.Fatal(err)
	}
	for j := range jobs {
		fmt.Printf("%-8s %18.4f %18.4f\n", multi.Jobs[j].Name, sm.Completion[j], ss.Completion[j])
	}

	// Now restrict availability: machine 3 loses the databank for jobs J2
	// and J4 (they use databank 1 hosted only on machines 1-2). The
	// aggregate-speed shortcut no longer applies.
	restricted, err := model.NewPlatform([]model.Machine{
		{Name: "M1", Speed: 10, Databanks: []model.DatabankID{0, 1}},
		{Name: "M2", Speed: 20, Databanks: []model.DatabankID{0, 1}},
		{Name: "M3", Speed: 30, Databanks: []model.DatabankID{0}},
	}, 2)
	if err != nil {
		log.Fatal(err)
	}
	rjobs := append([]model.Job(nil), jobs...)
	rjobs[1].Databank = 1
	rjobs[3].Databank = 1
	rinst, err := model.NewInstance(restricted, rjobs)
	if err != nil {
		log.Fatal(err)
	}
	sr, err := srpt.Run(rinst)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := core.OptimalMaxStretch(rinst)
	if err != nil {
		log.Fatal(err)
	}
	onl, err := core.MustGet("Online").Run(rinst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nRestricted availability (J2, J4 only on M1+M2):")
	fmt.Printf("  SRPT max-stretch:   %.4f\n", sr.MaxStretch(rinst))
	fmt.Printf("  Online max-stretch: %.4f\n", onl.MaxStretch(rinst))
	fmt.Printf("  offline optimum:    %.4f\n", opt)
	fmt.Println("\nWith restrictions, the greedy list rule is no longer equivalent to a")
	fmt.Println("single processor; the LP-based scheduler recovers the lost ground.")
}
