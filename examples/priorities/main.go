// Priorities: the paper's §4.3.1 algorithm solves max *weighted* flow for
// arbitrary weights, not just stretch. This example gives one user's
// requests a priority weight and shows the optimal trade-off curve: as the
// weight grows, the favoured jobs' flows shrink and everyone else pays.
//
//	go run ./examples/priorities
package main

import (
	"fmt"
	"log"

	"stretchsched/internal/model"
	"stretchsched/internal/offline"
	"stretchsched/internal/sim"
)

func main() {
	platform, err := model.Uniform([]float64{25, 25})
	if err != nil {
		log.Fatal(err)
	}
	// Two users submitting interleaved requests. Jobs 0,2,4 belong to the
	// "VIP" user; 1,3,5 to the other.
	jobs := []model.Job{
		{Name: "vip-1", Release: 0, Size: 200, Databank: 0},
		{Name: "std-1", Release: 0, Size: 300, Databank: 0},
		{Name: "vip-2", Release: 2, Size: 150, Databank: 0},
		{Name: "std-2", Release: 3, Size: 250, Databank: 0},
		{Name: "vip-3", Release: 5, Size: 100, Databank: 0},
		{Name: "std-3", Release: 6, Size: 350, Databank: 0},
	}
	inst, err := model.NewInstance(platform, jobs)
	if err != nil {
		log.Fatal(err)
	}
	vip := map[int]bool{0: true, 2: true, 4: true}

	fmt.Println("Max weighted flow optimisation with growing VIP weight:")
	fmt.Printf("%8s %18s %18s %14s\n", "weight", "worst VIP flow", "worst std flow", "objective")
	for _, w := range []float64{1, 2, 5, 10} {
		weights := make([]float64, inst.NumJobs())
		for j := range weights {
			if vip[j] {
				weights[j] = w
			} else {
				weights[j] = 1
			}
		}
		prob, err := offline.FromInstanceWeighted(inst, weights)
		if err != nil {
			log.Fatal(err)
		}
		var solver offline.Solver
		sol, err := solver.OptimalStretch(prob)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := sol.Alloc.Realize(offline.TerminalSWRPT)
		if err != nil {
			log.Fatal(err)
		}
		sched, err := sim.RunPlanned(inst, &replay{plan: plan})
		if err != nil {
			log.Fatal(err)
		}
		worstVIP, worstStd := 0.0, 0.0
		for j := range jobs {
			f := sched.Flow(inst, model.JobID(j))
			if vip[j] && f > worstVIP {
				worstVIP = f
			}
			if !vip[j] && f > worstStd {
				worstStd = f
			}
		}
		fmt.Printf("%8.0f %16.2fs %16.2fs %14.2f\n", w, worstVIP, worstStd, sol.Stretch)
	}
	fmt.Println("\nWeight 1 treats users symmetrically; weight 10 drives the VIP's worst")
	fmt.Println("flow down while the standard user's requests absorb the delay — the")
	fmt.Println("deadline machinery of System (1) handles any positive weights.")
}

// replay is a planner that follows a precomputed full-horizon timetable.
type replay struct {
	plan *sim.Plan
}

func (r *replay) Name() string                     { return "replay" }
func (r *replay) Init(*model.Instance)             {}
func (r *replay) Plan(*sim.Ctx) (*sim.Plan, error) { return r.plan, nil }
