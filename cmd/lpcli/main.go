// Command lpcli solves small linear programs with the repository's simplex
// solver, in float64 or exact rational arithmetic. It exists for debugging
// the System (1)/(2) programs and as a standalone demonstration of the LP
// substrate.
//
// Input format (one statement per line, '#' comments):
//
//	min  3 -2 0.5          # objective coefficients, one per variable
//	st   1  1  0  <= 10    # constraint rows: coefficients, relation, rhs
//	st   0  1  1  >= 2
//	st   1  0 -1  =  0
//
// Variables are implicitly nonnegative. Use "max" for maximisation.
//
// Usage:
//
//	lpcli -exact < program.lp
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"stretchsched/internal/lp"
	"stretchsched/internal/rat"
)

func main() {
	exact := flag.Bool("exact", false, "solve with exact rational arithmetic")
	flag.Parse()

	lines, err := readProgram(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if *exact {
		solveAndPrint[rat.Rat](lines, lp.RatOps{}, func(v rat.Rat) string { return v.String() })
	} else {
		solveAndPrint[float64](lines, lp.NewFloat64Ops(), func(v float64) string {
			return strconv.FormatFloat(v, 'g', 10, 64)
		})
	}
}

type statement struct {
	kind  string // "min", "max", "st"
	coefs []string
	rel   lp.Rel
	rhs   string
}

func readProgram(f *os.File) ([]statement, error) {
	var out []statement
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "min", "max":
			out = append(out, statement{kind: fields[0], coefs: fields[1:]})
		case "st":
			relIdx := -1
			var rel lp.Rel
			for i, f := range fields {
				switch f {
				case "<=":
					relIdx, rel = i, lp.LE
				case ">=":
					relIdx, rel = i, lp.GE
				case "=":
					relIdx, rel = i, lp.EQ
				}
			}
			if relIdx < 0 || relIdx != len(fields)-2 {
				return nil, fmt.Errorf("line %d: expected 'st coefs... <=|>=|= rhs'", lineNo)
			}
			out = append(out, statement{
				kind: "st", coefs: fields[1:relIdx], rel: rel, rhs: fields[len(fields)-1],
			})
		default:
			return nil, fmt.Errorf("line %d: unknown statement %q", lineNo, fields[0])
		}
	}
	return out, sc.Err()
}

func solveAndPrint[T any](stmts []statement, ops lp.Ops[T], format func(T) string) {
	var nvars int
	for _, s := range stmts {
		if len(s.coefs) > nvars {
			nvars = len(s.coefs)
		}
	}
	prob := lp.New[T](ops, nvars)
	parse := func(tok string) T {
		if r, err := rat.Parse(tok); err == nil {
			return ops.FromFloat(r.Float())
		}
		f, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			fatal(fmt.Errorf("bad number %q", tok))
		}
		return ops.FromFloat(f)
	}
	sawObjective := false
	for _, s := range stmts {
		switch s.kind {
		case "min", "max":
			if sawObjective {
				fatal(fmt.Errorf("multiple objectives"))
			}
			sawObjective = true
			prob.SetMaximize(s.kind == "max")
			for i, tok := range s.coefs {
				prob.SetObjectiveCoef(i, parse(tok))
			}
		case "st":
			row := make([]T, len(s.coefs))
			for i, tok := range s.coefs {
				row[i] = parse(tok)
			}
			prob.AddDense(row, s.rel, parse(s.rhs))
		}
	}
	sol, err := prob.Solve()
	if err != nil {
		fmt.Printf("status: %v\n", sol.Status)
		os.Exit(1)
	}
	fmt.Printf("status: optimal (%d iterations)\n", sol.Iterations)
	fmt.Printf("objective: %s\n", format(sol.Objective))
	for i, x := range sol.X {
		fmt.Printf("x%d = %s\n", i+1, format(x))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lpcli:", err)
	os.Exit(1)
}
