// Command profile is a development harness for timing the schedulers on a
// single heavy instance and for estimating full-grid cost. It is not part
// of the library's public surface.
//
//	profile exact  [flags]   single heavy instance incl. the exact backend
//	profile online [flags]   Online-EGDF incremental-session profile
//	profile grid   [flags]   full 162-point grid timing pass
//
// Invoking profile without a subcommand is the legacy interface: the old
// boolean flags are documented aliases for the subcommands above
// (-grid ≡ "profile grid", -exact ≡ "profile exact", -online appends the
// "profile online" session pass) and keep working unchanged.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"stretchsched/internal/core"
	"stretchsched/internal/exp"
	"stretchsched/internal/model"
	"stretchsched/internal/offline"
	"stretchsched/internal/online"
	"stretchsched/internal/sim"
	"stretchsched/internal/workload"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "exact":
			exactCmd(args[1:])
			return
		case "online":
			onlineCmd(args[1:])
			return
		case "grid":
			gridCmd(args[1:])
			return
		case "help", "-help", "--help", "-h":
			usage()
			return
		}
	}
	legacyCmd(args)
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: profile <subcommand> [flags] | profile [legacy flags]

Subcommands:
  exact    time every scheduler (incl. Offline-Exact) on one heavy instance
  online   profile Online-EGDF through the exact incremental solve session
  grid     time a full 162-point experiment-grid pass

Legacy flags (no subcommand) are aliases:
  -grid            ≡ profile grid
  -exact           ≡ profile exact
  -online          ≡ append the "profile online" session pass
  (no boolean)     single-instance timing without the exact backend

Run "profile <subcommand> -h" for that subcommand's flags.
`)
}

// singleOpts parameterises the single-heavy-instance pass shared by the
// exact subcommand and the legacy interface.
type singleOpts struct {
	jobs, sites           int
	exact, denseLP, tiers bool
	allocs                bool
}

func singleFlags(fs *flag.FlagSet, o *singleOpts) {
	fs.IntVar(&o.jobs, "jobs", 40, "target jobs of the single heavy instance")
	fs.IntVar(&o.sites, "sites", 20, "sites (and databanks) of the single heavy instance")
	fs.BoolVar(&o.allocs, "allocs", false, "report per-run heap allocations")
	fs.BoolVar(&o.tiers, "tiers", false, "print the rational backend's per-run small/medium/big op and promotion/demotion counters")
}

func cpuProfileFlag(fs *flag.FlagSet) *string {
	return fs.String("cpuprofile", "", "write CPU profile")
}

// startCPUProfile begins profiling if path is set; the returned stop func
// is safe to call unconditionally.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		panic(err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

func exactCmd(args []string) {
	fs := flag.NewFlagSet("profile exact", flag.ExitOnError)
	o := singleOpts{exact: true}
	singleFlags(fs, &o)
	fs.BoolVar(&o.denseLP, "denselp", false, "solve System (1) on the dense tableau instead of the revised simplex (the ablation baseline; expect orders of magnitude slower at scale)")
	cpu := cpuProfileFlag(fs)
	fs.Parse(args)
	stop := startCPUProfile(*cpu)
	defer stop()
	runSingle(o)
}

func onlineCmd(args []string) {
	fs := flag.NewFlagSet("profile online", flag.ExitOnError)
	o := singleOpts{}
	singleFlags(fs, &o)
	cpu := cpuProfileFlag(fs)
	fs.Parse(args)
	stop := startCPUProfile(*cpu)
	defer stop()
	profileOnlineExact(heavyInstance(o), o.tiers)
}

func gridCmd(args []string) {
	fs := flag.NewFlagSet("profile grid", flag.ExitOnError)
	runs := fs.Int("runs", 1, "instances per grid point")
	target := fs.Int("target", 30, "target jobs per instance")
	workers := fs.Int("workers", 0, "grid workers (0: GOMAXPROCS)")
	cpu := cpuProfileFlag(fs)
	fs.Parse(args)
	stop := startCPUProfile(*cpu)
	defer stop()
	runGridPass(*runs, *target, *workers)
}

// legacyCmd is the original flat-flag interface, kept as documented
// aliases for the subcommands.
func legacyCmd(args []string) {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	fs.Usage = func() {
		usage()
		fmt.Fprintln(os.Stderr, "\nLegacy flags:")
		fs.PrintDefaults()
	}
	grid := fs.Bool("grid", false, "alias for 'profile grid': time a full 162-point grid pass instead of one instance")
	runs := fs.Int("runs", 1, "instances per grid point")
	target := fs.Int("target", 30, "target jobs per instance")
	workers := fs.Int("workers", 0, "grid workers (0: GOMAXPROCS)")
	o := singleOpts{}
	singleFlags(fs, &o)
	fs.BoolVar(&o.exact, "exact", false, "alias for 'profile exact': include the exact rational backend (Offline-Exact); combine with a modest -sites/-jobs (exact LP cost grows with sites·jobs²)")
	fs.BoolVar(&o.denseLP, "denselp", false, "with -exact: solve System (1) on the dense tableau instead of the revised simplex")
	onlineEx := fs.Bool("online", false, "alias for 'profile online': also run Online-EGDF through the incremental solve session and print its warm/cold/fallback and per-event simplex-iteration profile")
	cpu := cpuProfileFlag(fs)
	fs.Parse(args)

	stop := startCPUProfile(*cpu)
	defer stop()

	if *grid {
		runGridPass(*runs, *target, *workers)
		return
	}
	runSingle(o)
	if *onlineEx {
		profileOnlineExact(heavyInstance(o), o.tiers)
	}
}

func runGridPass(runs, target, workers int) {
	start := time.Now()
	results := exp.RunGrid(exp.DefaultGrid(), exp.Options{
		Runs: runs, Seed: 1, TargetJobs: target, Workers: workers,
	})
	errs := 0
	for _, r := range results {
		errs += len(r.Errs)
	}
	fmt.Printf("grid: %d instances in %v (%d errors)\n",
		len(results), time.Since(start).Round(time.Second), errs)
	rows := exp.Aggregate(results, nil, core.Table1Names())
	fmt.Println(exp.Render("Table 1 (timing pass)", rows))
}

func heavyInstance(o singleOpts) *model.Instance {
	inst, err := workload.Config{
		Sites: o.sites, Databanks: o.sites, Availability: 0.9, Density: 3.0,
		TargetJobs: o.jobs, SizeRange: [2]float64{10, 200}, Seed: 9_000_009,
	}.Generate()
	if err != nil {
		panic(err)
	}
	return inst
}

func runSingle(o singleOpts) {
	inst := heavyInstance(o)
	fmt.Println("jobs:", inst.NumJobs())
	// One engine and one planner workspace reused across schedulers; with
	// -allocs, the second (warmed-up) run shows the steady-state allocation
	// behaviour the experiment grid sees — 0 for the planned schedulers,
	// and with -exact the residual math/big escapes of the small-rational
	// backend (near 0 on small-value instances).
	runner := core.NewRunner()
	names := []string{"Offline", "Offline-Refined", "Online", "Online-EGDF", "SWRPT", "MCT-Div"}
	if o.exact {
		names = append(names, "Offline-Exact")
	}
	denseWS := offline.NewWorkspace()
	run := func(name string) (*model.Schedule, error) {
		if name == "Offline-Exact" && o.denseLP {
			pl := &offline.Planner{Solver: offline.Solver{Exact: true, DenseLP: true}}
			pl.SetWorkspace(denseWS)
			return sim.RunPlanned(inst, pl)
		}
		return runner.Run(core.MustGet(name), inst)
	}
	for _, name := range names {
		// Per-run tier counters: the workspace accumulates across runs, so
		// reset before the timed run and snapshot right after it (the
		// -allocs rerun below would otherwise double-count).
		if o.tiers {
			runner.ResetStats()
		}
		t0 := time.Now()
		sched, err := run(name)
		if err != nil {
			fmt.Println(name, "ERR", err)
			continue
		}
		elapsed := time.Since(t0).Round(time.Millisecond)
		st := runner.Stats()
		tierLine := ""
		if ts := st.Tiers; o.tiers && st.HasTiers && ts.Total() > 0 {
			tierLine = "\n                 tiers: " + ts.String()
		}
		line := fmt.Sprintf("%-16s %8v  max=%.3f sum=%.1f",
			name, elapsed, sched.MaxStretch(inst), sched.SumStretch(inst))
		if ss, ok := st.Solve[name]; ok && ss.StretchErrs+ss.RefineErrs > 0 {
			line += fmt.Sprintf("  solve-failures=%d/%d", ss.StretchErrs, ss.RefineErrs)
		}
		line += tierLine
		if o.allocs {
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			if _, err := run(name); err != nil {
				fmt.Println(name, "ERR", err)
				continue
			}
			runtime.ReadMemStats(&after)
			line += fmt.Sprintf("  allocs/run=%d (%d B)",
				after.Mallocs-before.Mallocs, after.TotalAlloc-before.TotalAlloc)
		}
		fmt.Println(line)
	}
}

// profileOnlineExact replays Online-EGDF with the exact backend twice over
// the same instance — once through the warm-started incremental session,
// once forced cold through the identical session plumbing — and prints the
// session's own counters: solve mix, mean simplex iterations per event,
// dual-repair and warm-Phase-I activity, and eta-file growth.
func profileOnlineExact(inst *model.Instance, tiers bool) {
	run := func(cold bool) (*model.Schedule, *offline.Workspace, time.Duration) {
		e := online.NewEGDF()
		e.Solver.Exact = true
		ws := offline.NewWorkspace()
		e.SetWorkspace(ws)
		ws.Session().SetColdOnly(cold)
		t0 := time.Now()
		sched, err := sim.NewEngine().RunList(inst, e)
		if err != nil {
			fmt.Println("Online-EGDF(exact) ERR", err)
			os.Exit(1)
		}
		return sched, ws, time.Since(t0).Round(time.Millisecond)
	}
	meanIters := func(iters, solves int) float64 {
		if solves == 0 {
			return 0
		}
		return float64(iters) / float64(solves)
	}

	sched, ws, elapsed := run(false)
	st := ws.SessionStats()
	fmt.Printf("%-16s %8v  max=%.3f sum=%.1f\n",
		"Online-EGDF(ex)", elapsed, sched.MaxStretch(inst), sched.SumStretch(inst))
	fmt.Printf("                 session: warm=%d cold=%d fallback=%d resolves=%d\n",
		st.Warm, st.Cold, st.Fallback, st.Resolves)
	fmt.Printf("                 warm iters/event=%.1f (dual-steps=%d, warm-phase1=%d)\n",
		meanIters(st.WarmIters, st.Warm), st.DualSteps, st.WarmPhase1)
	fmt.Printf("                 eta file: len=%d nnz=%d (max len=%d nnz=%d)\n",
		st.EtaLen, st.EtaNNZ, st.MaxEtaLen, st.MaxEtaNNZ)
	if ts := ws.TierStats(); tiers && ts != nil && ts.Total() > 0 {
		fmt.Println("                 tiers:", ts.String())
	}

	_, cws, coldElapsed := run(true)
	cst := cws.SessionStats()
	fmt.Printf("                 cold ablation: %v, iters/event=%.1f\n",
		coldElapsed, meanIters(cst.ColdIters, cst.Cold))
}
