// Command profile is a development harness for timing the schedulers on a
// single heavy instance and for estimating full-grid cost. It is not part
// of the library's public surface.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"stretchsched/internal/core"
	"stretchsched/internal/exp"
	"stretchsched/internal/model"
	"stretchsched/internal/offline"
	"stretchsched/internal/online"
	"stretchsched/internal/sim"
	"stretchsched/internal/workload"
)

func main() {
	grid := flag.Bool("grid", false, "time a full 162-point grid pass instead of one instance")
	runs := flag.Int("runs", 1, "instances per grid point")
	target := flag.Int("target", 30, "target jobs per instance")
	workers := flag.Int("workers", 0, "grid workers (0: GOMAXPROCS)")
	allocs := flag.Bool("allocs", false, "report per-run heap allocations (single-instance mode)")
	exact := flag.Bool("exact", false, "include the exact rational backend (Offline-Exact) in single-instance mode; combine with a modest -sites/-jobs (exact LP cost grows with sites·jobs²)")
	denseLP := flag.Bool("denselp", false, "with -exact: solve System (1) on the dense tableau instead of the revised simplex (the ablation baseline; expect orders of magnitude slower at scale)")
	tiers := flag.Bool("tiers", false, "with -exact: print the rational backend's per-run small/medium/big op and promotion/demotion counters")
	onlineEx := flag.Bool("online", false, "also run Online-EGDF on the exact backend through the incremental solve session and print its warm/cold/fallback and per-event simplex-iteration profile; combine with a modest -sites/-jobs")
	jobs := flag.Int("jobs", 40, "target jobs of the single heavy instance")
	sites := flag.Int("sites", 20, "sites (and databanks) of the single heavy instance")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			panic(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			panic(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *grid {
		start := time.Now()
		results := exp.RunGrid(exp.DefaultGrid(), exp.Options{
			Runs: *runs, Seed: 1, TargetJobs: *target, Workers: *workers,
		})
		errs := 0
		for _, r := range results {
			errs += len(r.Errs)
		}
		fmt.Printf("grid: %d instances in %v (%d errors)\n",
			len(results), time.Since(start).Round(time.Second), errs)
		rows := exp.Aggregate(results, nil, core.Table1Names())
		fmt.Println(exp.Render("Table 1 (timing pass)", rows))
		return
	}

	inst, err := workload.Config{
		Sites: *sites, Databanks: *sites, Availability: 0.9, Density: 3.0,
		TargetJobs: *jobs, SizeRange: [2]float64{10, 200}, Seed: 9_000_009,
	}.Generate()
	if err != nil {
		panic(err)
	}
	fmt.Println("jobs:", inst.NumJobs())
	// One engine and one planner workspace reused across schedulers; with
	// -allocs, the second (warmed-up) run shows the steady-state allocation
	// behaviour the experiment grid sees — 0 for the planned schedulers,
	// and with -exact the residual math/big escapes of the small-rational
	// backend (near 0 on small-value instances).
	runner := core.NewRunner()
	names := []string{"Offline", "Offline-Refined", "Online", "Online-EGDF", "SWRPT", "MCT-Div"}
	if *exact {
		names = append(names, "Offline-Exact")
	}
	denseWS := offline.NewWorkspace()
	run := func(name string) (*model.Schedule, error) {
		if name == "Offline-Exact" && *denseLP {
			pl := &offline.Planner{Solver: offline.Solver{Exact: true, DenseLP: true}}
			pl.SetWorkspace(denseWS)
			return sim.RunPlanned(inst, pl)
		}
		return runner.Run(core.MustGet(name), inst)
	}
	for _, name := range names {
		// Per-run tier counters: the workspace accumulates across runs, so
		// reset before the timed run and snapshot right after it (the
		// -allocs rerun below would otherwise double-count).
		if ts := runner.ExactTierStats(); *tiers && ts != nil {
			ts.Reset()
		}
		t0 := time.Now()
		sched, err := run(name)
		if err != nil {
			fmt.Println(name, "ERR", err)
			continue
		}
		elapsed := time.Since(t0).Round(time.Millisecond)
		tierLine := ""
		if ts := runner.ExactTierStats(); *tiers && ts != nil && ts.Total() > 0 {
			tierLine = "\n                 tiers: " + ts.String()
		}
		line := fmt.Sprintf("%-16s %8v  max=%.3f sum=%.1f",
			name, elapsed, sched.MaxStretch(inst), sched.SumStretch(inst))
		if se, re, ok := runner.SolveFailures(name); ok && se+re > 0 {
			line += fmt.Sprintf("  solve-failures=%d/%d", se, re)
		}
		line += tierLine
		if *allocs {
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			if _, err := run(name); err != nil {
				fmt.Println(name, "ERR", err)
				continue
			}
			runtime.ReadMemStats(&after)
			line += fmt.Sprintf("  allocs/run=%d (%d B)",
				after.Mallocs-before.Mallocs, after.TotalAlloc-before.TotalAlloc)
		}
		fmt.Println(line)
	}

	if *onlineEx {
		profileOnlineExact(inst, *tiers)
	}
}

// profileOnlineExact replays Online-EGDF with the exact backend twice over
// the same instance — once through the warm-started incremental session,
// once forced cold through the identical session plumbing — and prints the
// session's own counters: solve mix, mean simplex iterations per event,
// dual-repair and warm-Phase-I activity, and eta-file growth.
func profileOnlineExact(inst *model.Instance, tiers bool) {
	run := func(cold bool) (*model.Schedule, *offline.Workspace, time.Duration) {
		e := online.NewEGDF()
		e.Solver.Exact = true
		ws := offline.NewWorkspace()
		e.SetWorkspace(ws)
		ws.Session().SetColdOnly(cold)
		t0 := time.Now()
		sched, err := sim.NewEngine().RunList(inst, e)
		if err != nil {
			fmt.Println("Online-EGDF(exact) ERR", err)
			os.Exit(1)
		}
		return sched, ws, time.Since(t0).Round(time.Millisecond)
	}
	meanIters := func(iters, solves int) float64 {
		if solves == 0 {
			return 0
		}
		return float64(iters) / float64(solves)
	}

	sched, ws, elapsed := run(false)
	st := ws.SessionStats()
	fmt.Printf("%-16s %8v  max=%.3f sum=%.1f\n",
		"Online-EGDF(ex)", elapsed, sched.MaxStretch(inst), sched.SumStretch(inst))
	fmt.Printf("                 session: warm=%d cold=%d fallback=%d resolves=%d\n",
		st.Warm, st.Cold, st.Fallback, st.Resolves)
	fmt.Printf("                 warm iters/event=%.1f (dual-steps=%d, warm-phase1=%d)\n",
		meanIters(st.WarmIters, st.Warm), st.DualSteps, st.WarmPhase1)
	fmt.Printf("                 eta file: len=%d nnz=%d (max len=%d nnz=%d)\n",
		st.EtaLen, st.EtaNNZ, st.MaxEtaLen, st.MaxEtaNNZ)
	if ts := ws.TierStats(); tiers && ts != nil && ts.Total() > 0 {
		fmt.Println("                 tiers:", ts.String())
	}

	_, cws, coldElapsed := run(true)
	cst := cws.SessionStats()
	fmt.Printf("                 cold ablation: %v, iters/event=%.1f\n",
		coldElapsed, meanIters(cst.ColdIters, cst.Cold))
}
