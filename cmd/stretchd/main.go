// Command stretchd is the long-running scheduler daemon: it admits job
// submissions over HTTP/JSON, drives the online max-stretch scheduling
// stack (§4.3.2) at every arrival and completion event, and serves
// placement decisions, Prometheus metrics and deterministic checkpoints.
//
//	stretchd [flags]                    serve HTTP (drain on SIGTERM/SIGINT)
//	stretchd -replay trace.csv [flags]  in-process replay; prints events/sec
//	stretchd loadgen [flags]            generate a workload; POST it to a
//	                                    daemon (-addr) and/or write -out CSV
//
// The platform is generated deterministically from the workload flags
// (-sites, -banks, -avail, -density, -seed), so a loadgen run with the
// same flags drives jobs the daemon's platform can serve.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"stretchsched/internal/core"
	"stretchsched/internal/model"
	"stretchsched/internal/offline"
	"stretchsched/internal/online"
	"stretchsched/internal/serve"
	"stretchsched/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "loadgen" {
		if err := runLoadgen(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "stretchd loadgen:", err)
			os.Exit(1)
		}
		return
	}
	if err := runDaemon(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stretchd:", err)
		os.Exit(1)
	}
}

// wlFlags registers the shared workload-shape flags.
func wlFlags(fs *flag.FlagSet) *workload.Config {
	cfg := &workload.Config{}
	fs.IntVar(&cfg.Sites, "sites", 6, "number of sites")
	fs.IntVar(&cfg.Databanks, "banks", 12, "number of databanks")
	fs.Float64Var(&cfg.Availability, "avail", 0.5, "databank availability in (0,1]")
	fs.Float64Var(&cfg.Density, "density", 0.8, "workload density")
	fs.Int64Var(&cfg.Seed, "seed", 1, "workload seed (platform and jobs)")
	fs.IntVar(&cfg.TargetJobs, "jobs", 1000, "expected number of generated jobs")
	return cfg
}

func runDaemon(args []string) error {
	fs := flag.NewFlagSet("stretchd", flag.ExitOnError)
	addr := fs.String("addr", ":9130", "HTTP listen address")
	policy := fs.String("policy", "Online-EGDF", "serving policy (must be a list policy)")
	exact := fs.Bool("exact", false, "exact rational step-2 solves (incremental warm-start session)")
	deadline := fs.Duration("deadline", 2*time.Second, "per-request admission deadline")
	recents := fs.Int("recents", 1024, "completed-job ring capacity")
	declog := fs.String("declog", "", "decision log path (empty = discard)")
	ckPath := fs.String("checkpoint", "", "write a checkpoint here on drain")
	restore := fs.String("restore", "", "resume from this checkpoint file")
	replay := fs.String("replay", "", "replay this trace CSV in-process and exit")
	backlog := fs.Int("backlog", 0, "backlog guard: switch to the fallback policy while more than this many jobs are active (0 = off)")
	fallback := fs.String("fallback", "SWRPT", "backlog guard fallback policy (must be a list policy)")
	wl := wlFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	inst, err := wl.Generate()
	if err != nil {
		return err
	}

	ws := offline.NewWorkspace()
	sched, err := core.New(*policy, core.WithWorkspace(ws))
	if err != nil {
		return err
	}
	if *exact {
		pb, ok := sched.(core.PolicyBacked)
		if !ok {
			return fmt.Errorf("policy %s cannot serve (not a list policy)", *policy)
		}
		e, ok := pb.Policy().(*online.EGDF)
		if !ok {
			return fmt.Errorf("-exact applies to Online-EGDF, not %s", *policy)
		}
		e.Solver.Exact = true
	}

	var logw io.Writer
	var logFlush func() error
	if *declog != "" {
		f, err := os.Create(*declog)
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(f)
		logw = bw
		logFlush = func() error {
			if err := bw.Flush(); err != nil {
				return err
			}
			return f.Close()
		}
	}

	cfg := serve.Config{
		Platform:         inst.Platform,
		Scheduler:        sched,
		Workspace:        ws,
		Deadline:         *deadline,
		RecentCap:        *recents,
		DecisionLog:      logw,
		BacklogThreshold: *backlog,
	}
	if *backlog > 0 {
		fb, err := core.New(*fallback)
		if err != nil {
			return err
		}
		cfg.Fallback = fb
	}
	var loop *serve.Loop
	if *restore != "" {
		b, err := os.ReadFile(*restore)
		if err != nil {
			return err
		}
		ck, err := serve.DecodeCheckpoint(b)
		if err != nil {
			return err
		}
		loop, err = serve.Restore(cfg, ck)
		if err != nil {
			return err
		}
	} else {
		loop, err = serve.New(cfg)
		if err != nil {
			return err
		}
	}

	if *replay != "" {
		return runReplay(loop, *replay, logFlush)
	}

	srv := &http.Server{Addr: *addr, Handler: loop.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("stretchd: serving %s on %s (policy %s)\n", describe(inst), *addr, sched.Name())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("stretchd: %v, draining\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := loop.Drain(); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if *ckPath != "" {
		ck, err := loop.Checkpoint()
		if err != nil {
			return err
		}
		b, err := ck.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*ckPath, b, 0o644); err != nil {
			return err
		}
	}
	if logFlush != nil {
		if err := logFlush(); err != nil {
			return fmt.Errorf("flushing decision log: %w", err)
		}
	}
	fmt.Println("stretchd: drained clean")
	return nil
}

// runReplay feeds a trace CSV (release,size,databank[,name]) through the
// loop in-process and prints the sustained event rate.
func runReplay(loop *serve.Loop, path string, logFlush func() error) error {
	rows, err := readTrace(path)
	if err != nil {
		return err
	}
	start := time.Now()
	for _, r := range rows {
		if _, err := loop.Submit(r); err != nil {
			return fmt.Errorf("replaying %s: %w", path, err)
		}
	}
	if err := loop.Drain(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	snap, err := loop.Snapshot()
	if err != nil {
		return err
	}
	if logFlush != nil {
		if err := logFlush(); err != nil {
			return fmt.Errorf("flushing decision log: %w", err)
		}
	}
	rate := float64(snap.Counters.Events) / elapsed.Seconds()
	fmt.Printf("replayed %d jobs, %d events in %v: %.0f events/sec (max stretch %.3g, p99 %.3g)\n",
		snap.Counters.Submitted, snap.Counters.Events, elapsed.Round(time.Millisecond),
		rate, snap.StretchMax, snap.StretchP99)
	return nil
}

func readTrace(path string) ([]serve.SubmitRequest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.FieldsPerRecord = -1
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	var out []serve.SubmitRequest
	for i, rec := range recs {
		if len(rec) < 3 {
			return nil, fmt.Errorf("%s:%d: want release,size,databank[,name]", path, i+1)
		}
		rel, err1 := strconv.ParseFloat(rec[0], 64)
		size, err2 := strconv.ParseFloat(rec[1], 64)
		bank, err3 := strconv.Atoi(rec[2])
		if err1 != nil || err2 != nil || err3 != nil {
			if i == 0 {
				continue // header row
			}
			return nil, fmt.Errorf("%s:%d: malformed row %v", path, i+1, rec)
		}
		req := serve.SubmitRequest{Release: rel, Size: size, Databank: model.DatabankID(bank)}
		if len(rec) > 3 {
			req.Name = rec[3]
		}
		out = append(out, req)
	}
	return out, nil
}

// runLoadgen generates the seeded workload and drives a daemon with it
// over HTTP (-addr), writes it as a trace CSV (-out), or both.
func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("stretchd loadgen", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon base URL (e.g. http://localhost:9130); empty = no HTTP")
	out := fs.String("out", "", "write the trace CSV here; empty = no file")
	wl := wlFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" && *out == "" {
		return fmt.Errorf("nothing to do: set -addr and/or -out")
	}
	inst, err := wl.Generate()
	if err != nil {
		return err
	}
	if *out != "" {
		if err := writeTrace(*out, inst); err != nil {
			return err
		}
		fmt.Printf("wrote %d jobs to %s\n", inst.NumJobs(), *out)
	}
	if *addr != "" {
		if err := postJobs(*addr, inst); err != nil {
			return err
		}
		fmt.Printf("posted %d jobs to %s\n", inst.NumJobs(), *addr)
	}
	return nil
}

func writeTrace(path string, inst *model.Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	for _, j := range inst.Jobs {
		rec := []string{
			strconv.FormatFloat(j.Release, 'g', -1, 64),
			strconv.FormatFloat(j.Size, 'g', -1, 64),
			strconv.Itoa(int(j.Databank)),
			j.Name,
		}
		if err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func postJobs(base string, inst *model.Instance) error {
	client := &http.Client{Timeout: 10 * time.Second}
	for _, j := range inst.Jobs {
		body, err := json.Marshal(map[string]any{
			"name": j.Name, "size": j.Size, "databank": int(j.Databank), "release": j.Release,
		})
		if err != nil {
			return err
		}
		resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		rb, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /jobs: %s: %s", resp.Status, rb)
		}
	}
	return nil
}

func describe(inst *model.Instance) string {
	return fmt.Sprintf("%d sites / %d banks", inst.Platform.NumMachines(), inst.Platform.NumDatabanks())
}
