// Command stretchd is the long-running scheduler daemon: it admits job
// submissions over HTTP/JSON, drives the online max-stretch scheduling
// stack (§4.3.2) at every arrival and completion event, and serves
// placement decisions, Prometheus metrics and deterministic checkpoints.
//
//	stretchd [flags]                    serve HTTP (drain on SIGTERM/SIGINT)
//	stretchd -replay trace.csv [flags]  in-process replay; prints events/sec
//	stretchd loadgen [flags]            generate a workload; POST it to a
//	                                    daemon (-addr) and/or write -out CSV;
//	                                    -chaos N supervises its own daemon
//	                                    and kills/restores it N times
//	stretchd logcheck <path>            verify a framed decision log
//
// The platform is generated deterministically from the workload flags
// (-sites, -banks, -avail, -density, -seed), so a loadgen run with the
// same flags drives jobs the daemon's platform can serve.
//
// Crash safety: -declog writes a checksum-framed log (one framed record
// per decision line; see internal/serve), -checkpoint persists atomically
// (temp file + fsync + rename) both on drain and on every POST
// /checkpoint, and -restore truncates the decision log to exactly the
// records the checkpoint attests before resuming — a torn tail from a
// crash mid-write is discarded, and the resumed log is byte-identical to
// an uninterrupted run's.
package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"stretchsched/internal/core"
	"stretchsched/internal/fault"
	"stretchsched/internal/model"
	"stretchsched/internal/offline"
	"stretchsched/internal/online"
	"stretchsched/internal/serve"
	"stretchsched/internal/workload"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "loadgen":
			if err := runLoadgen(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "stretchd loadgen:", err)
				os.Exit(1)
			}
			return
		case "logcheck":
			if err := runLogcheck(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "stretchd logcheck:", err)
				os.Exit(1)
			}
			return
		}
	}
	if err := runDaemon(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stretchd:", err)
		os.Exit(1)
	}
}

// wlFlags registers the shared workload-shape flags.
func wlFlags(fs *flag.FlagSet) *workload.Config {
	cfg := &workload.Config{}
	fs.IntVar(&cfg.Sites, "sites", 6, "number of sites")
	fs.IntVar(&cfg.Databanks, "banks", 12, "number of databanks")
	fs.Float64Var(&cfg.Availability, "avail", 0.5, "databank availability in (0,1]")
	fs.Float64Var(&cfg.Density, "density", 0.8, "workload density")
	fs.Int64Var(&cfg.Seed, "seed", 1, "workload seed (platform and jobs)")
	fs.IntVar(&cfg.TargetJobs, "jobs", 1000, "expected number of generated jobs")
	return cfg
}

func runDaemon(args []string) error {
	fs := flag.NewFlagSet("stretchd", flag.ExitOnError)
	addr := fs.String("addr", ":9130", "HTTP listen address")
	policy := fs.String("policy", "Online-EGDF", "serving policy (must be a list policy)")
	exact := fs.Bool("exact", false, "exact rational step-2 solves (incremental warm-start session)")
	deadline := fs.Duration("deadline", 2*time.Second, "per-request admission deadline")
	recents := fs.Int("recents", 1024, "completed-job ring capacity")
	declog := fs.String("declog", "", "checksum-framed decision log path (empty = discard; verify with 'stretchd logcheck')")
	ckPath := fs.String("checkpoint", "", "persist checkpoints here atomically (on drain and on POST /checkpoint)")
	restore := fs.String("restore", "", "resume from this checkpoint file (recovers -declog to the attested records first)")
	replay := fs.String("replay", "", "replay this trace CSV in-process and exit")
	backlog := fs.Int("backlog", 0, "backlog guard: switch to the fallback policy while more than this many jobs are active (0 = off)")
	fallback := fs.String("fallback", "SWRPT", "backlog guard fallback policy (must be a list policy)")
	wl := wlFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	inst, err := wl.Generate()
	if err != nil {
		return err
	}

	ws := offline.NewWorkspace()
	sched, err := core.New(*policy, core.WithWorkspace(ws))
	if err != nil {
		return err
	}
	if *exact {
		pb, ok := sched.(core.PolicyBacked)
		if !ok {
			return fmt.Errorf("policy %s cannot serve (not a list policy)", *policy)
		}
		e, ok := pb.Policy().(*online.EGDF)
		if !ok {
			return fmt.Errorf("-exact applies to Online-EGDF, not %s", *policy)
		}
		e.Solver.Exact = true
	}

	// The decision log is opened after a possible crash recovery below:
	// on -restore the log is first truncated to exactly the records the
	// checkpoint attests, so a torn tail (or records the crash lost) never
	// pollutes the resumed stream.
	var ck *serve.Checkpoint
	if *restore != "" {
		b, err := os.ReadFile(*restore)
		if err != nil {
			return err
		}
		if ck, err = serve.DecodeCheckpoint(b); err != nil {
			return err
		}
	}

	var logw io.Writer
	var logFlush func() error
	if *declog != "" {
		if ck != nil {
			if _, err := os.Stat(*declog); err == nil {
				if err := serve.RecoverLogFile(*declog, ck.LogRecords); err != nil {
					return fmt.Errorf("recovering decision log: %w", err)
				}
			} else if os.IsNotExist(err) {
				// A fresh empty log under a checkpoint attesting records would
				// diverge from every later attestation; refuse rather than
				// silently invalidate the resumed log.
				if ck.LogRecords > 0 {
					return fmt.Errorf("recovering decision log: %s does not exist but checkpoint %s attests %d records",
						*declog, *restore, ck.LogRecords)
				}
			} else {
				return fmt.Errorf("recovering decision log: %w", err)
			}
		} else if err := os.Remove(*declog); err != nil && !os.IsNotExist(err) {
			return err
		}
		lf, err := serve.OpenLogFile(*declog)
		if err != nil {
			return err
		}
		logw = lf
		logFlush = lf.Close
	}

	cfg := serve.Config{
		Platform:         inst.Platform,
		Scheduler:        sched,
		Workspace:        ws,
		Deadline:         *deadline,
		RecentCap:        *recents,
		DecisionLog:      logw,
		BacklogThreshold: *backlog,
		CheckpointPath:   *ckPath,
	}
	if *backlog > 0 {
		fb, err := core.New(*fallback)
		if err != nil {
			return err
		}
		cfg.Fallback = fb
	}
	var loop *serve.Loop
	if ck != nil {
		loop, err = serve.Restore(cfg, ck)
		if err != nil {
			return err
		}
	} else {
		loop, err = serve.New(cfg)
		if err != nil {
			return err
		}
	}

	if *replay != "" {
		return runReplay(loop, *replay, logFlush)
	}

	srv := &http.Server{Addr: *addr, Handler: loop.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("stretchd: serving %s on %s (policy %s)\n", describe(inst), *addr, sched.Name())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("stretchd: %v, draining\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := loop.Drain(); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if *ckPath != "" {
		ck, err := loop.Checkpoint()
		if err != nil {
			return err
		}
		if err := ck.WriteFile(*ckPath); err != nil {
			return err
		}
	}
	if logFlush != nil {
		if err := logFlush(); err != nil {
			return fmt.Errorf("flushing decision log: %w", err)
		}
	}
	fmt.Println("stretchd: drained clean")
	return nil
}

// runReplay feeds a trace CSV (release,size,databank[,name]) through the
// loop in-process and prints the sustained event rate.
func runReplay(loop *serve.Loop, path string, logFlush func() error) error {
	rows, err := readTrace(path)
	if err != nil {
		return err
	}
	start := time.Now()
	for _, r := range rows {
		if _, err := loop.Submit(r); err != nil {
			return fmt.Errorf("replaying %s: %w", path, err)
		}
	}
	if err := loop.Drain(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	snap, err := loop.Snapshot()
	if err != nil {
		return err
	}
	if logFlush != nil {
		if err := logFlush(); err != nil {
			return fmt.Errorf("flushing decision log: %w", err)
		}
	}
	rate := float64(snap.Counters.Events) / elapsed.Seconds()
	fmt.Printf("replayed %d jobs, %d events in %v: %.0f events/sec (max stretch %.3g, p99 %.3g)\n",
		snap.Counters.Submitted, snap.Counters.Events, elapsed.Round(time.Millisecond),
		rate, snap.StretchMax, snap.StretchP99)
	return nil
}

func readTrace(path string) ([]serve.SubmitRequest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.FieldsPerRecord = -1
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	var out []serve.SubmitRequest
	for i, rec := range recs {
		if len(rec) < 3 {
			return nil, fmt.Errorf("%s:%d: want release,size,databank[,name]", path, i+1)
		}
		rel, err1 := strconv.ParseFloat(rec[0], 64)
		size, err2 := strconv.ParseFloat(rec[1], 64)
		bank, err3 := strconv.Atoi(rec[2])
		if err1 != nil || err2 != nil || err3 != nil {
			if i == 0 {
				continue // header row
			}
			return nil, fmt.Errorf("%s:%d: malformed row %v", path, i+1, rec)
		}
		req := serve.SubmitRequest{Release: rel, Size: size, Databank: model.DatabankID(bank)}
		if len(rec) > 3 {
			req.Name = rec[3]
		}
		out = append(out, req)
	}
	return out, nil
}

// runLoadgen generates the seeded workload and drives a daemon with it
// over HTTP (-addr), writes it as a trace CSV (-out), or both. With
// -chaos N it instead spawns and supervises its own daemon, SIGKILLs it
// at N seeded points mid-stream, restores each time from the last
// checkpoint, and verifies the recovered decision log at the end.
func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("stretchd loadgen", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon base URL (e.g. http://localhost:9130); empty = no HTTP")
	out := fs.String("out", "", "write the trace CSV here; empty = no file")
	chaos := fs.Int("chaos", 0, "kill and restore a supervised daemon this many times mid-stream (requires -addr; spawns its own daemon there)")
	chaosSeed := fs.Int64("chaosseed", 1, "seed for the chaos kill points")
	daemonExtra := fs.String("daemon", "", "extra flags for the supervised daemon in -chaos mode (space-separated)")
	wl := wlFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" && *out == "" {
		return fmt.Errorf("nothing to do: set -addr and/or -out")
	}
	inst, err := wl.Generate()
	if err != nil {
		return err
	}
	if *out != "" {
		if err := writeTrace(*out, inst); err != nil {
			return err
		}
		fmt.Printf("wrote %d jobs to %s\n", inst.NumJobs(), *out)
	}
	if *chaos > 0 {
		if *addr == "" {
			return fmt.Errorf("-chaos needs -addr for the supervised daemon")
		}
		return runChaos(*addr, inst, wl, *chaos, *chaosSeed, *daemonExtra)
	}
	if *addr != "" {
		if err := postJobs(*addr, inst); err != nil {
			return err
		}
		fmt.Printf("posted %d jobs to %s\n", inst.NumJobs(), *addr)
	}
	return nil
}

// chaosDaemon supervises one stretchd child for the chaos harness.
type chaosDaemon struct {
	bin    string
	argv   []string
	ckPath string
	cmd    *exec.Cmd
}

func (d *chaosDaemon) start(restore bool) error {
	argv := append([]string(nil), d.argv...)
	if restore {
		argv = append(argv, "-restore", d.ckPath)
	}
	cmd := exec.Command(d.bin, argv...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	d.cmd = cmd
	return nil
}

func (d *chaosDaemon) kill() {
	_ = d.cmd.Process.Kill()
	_, _ = d.cmd.Process.Wait()
}

func (d *chaosDaemon) shutdown() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	state, err := d.cmd.Process.Wait()
	if err != nil {
		return err
	}
	if !state.Success() {
		return fmt.Errorf("daemon drain exited %v", state)
	}
	return nil
}

// waitReady polls the daemon's /schedule endpoint until it answers.
func waitReady(client *http.Client, base string) error {
	for i := 0; i < 200; i++ {
		resp, err := client.Get(base + "/schedule")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("daemon at %s never became ready", base)
}

// checkpointNow asks the daemon to snapshot; the daemon persists it
// atomically at its -checkpoint path before responding, so a kill issued
// after a 200 can always be recovered from.
func checkpointNow(client *http.Client, base string) error {
	resp, err := client.Post(base+"/checkpoint", "application/json", nil)
	if err != nil {
		return err
	}
	rb, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /checkpoint: %s: %s", resp.Status, rb)
	}
	return nil
}

// runChaos is the kill/restore supervision loop: spawn a daemon with a
// framed decision log and atomic checkpointing, post the workload, and at
// each seeded kill point checkpoint, SIGKILL, and respawn with -restore.
// Because every kill follows a synced checkpoint, the final drained log
// must scan clean — torn tails are the recovery path's job, exercised by
// the serve package's differential test.
func runChaos(base string, inst *model.Instance, wl *workload.Config, n int, seed int64, extra string) error {
	u, err := url.Parse(base)
	if err != nil || u.Host == "" {
		return fmt.Errorf("-addr %q is not a base URL (want e.g. http://127.0.0.1:9130)", base)
	}
	dir, err := os.MkdirTemp("", "stretchd-chaos-")
	if err != nil {
		return err
	}
	declog := dir + "/decisions.log"
	ckPath := dir + "/checkpoint.json"

	bin, err := os.Executable()
	if err != nil {
		return err
	}
	argv := []string{
		"-addr", u.Host,
		"-declog", declog,
		"-checkpoint", ckPath,
		"-sites", strconv.Itoa(wl.Sites),
		"-banks", strconv.Itoa(wl.Databanks),
		"-avail", strconv.FormatFloat(wl.Availability, 'g', -1, 64),
		"-density", strconv.FormatFloat(wl.Density, 'g', -1, 64),
		"-seed", strconv.FormatInt(wl.Seed, 10),
		"-jobs", strconv.Itoa(wl.TargetJobs),
	}
	argv = append(argv, strings.Fields(extra)...)
	d := &chaosDaemon{bin: bin, argv: argv, ckPath: ckPath}
	if err := d.start(false); err != nil {
		return err
	}

	client := &http.Client{Timeout: 10 * time.Second}
	if err := waitReady(client, base); err != nil {
		d.kill()
		return err
	}
	kills := fault.CrashIndices(seed, n, len(inst.Jobs))
	ki := 0
	crashed := 0
	for i, j := range inst.Jobs {
		if ki < len(kills) && i == kills[ki] {
			ki++
			if err := checkpointNow(client, base); err != nil {
				d.kill()
				return err
			}
			d.kill()
			crashed++
			fmt.Printf("chaos: killed daemon before job %d/%d, restoring\n", i, len(inst.Jobs))
			if err := d.start(true); err != nil {
				return err
			}
			if err := waitReady(client, base); err != nil {
				d.kill()
				return err
			}
		}
		if err := postOneJob(client, base, j); err != nil {
			d.kill()
			return fmt.Errorf("posting job %d: %w", i, err)
		}
	}
	if err := d.shutdown(); err != nil {
		return err
	}

	b, err := os.ReadFile(declog)
	if err != nil {
		return err
	}
	recs, good := serve.ScanLog(b)
	if good != len(b) {
		return fmt.Errorf("decision log %s: %d trailing bytes torn or corrupt after %d records", declog, len(b)-good, recs)
	}
	fmt.Printf("chaos: posted %d jobs across %d crashes; decision log %s holds %d intact records (%d bytes)\n",
		inst.NumJobs(), crashed, declog, recs, len(b))
	return nil
}

// runLogcheck verifies a framed decision log: every record's checksum
// must hold and no torn tail may follow the intact prefix.
func runLogcheck(args []string) error {
	fs := flag.NewFlagSet("stretchd logcheck", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: stretchd logcheck <path>")
	}
	path := fs.Arg(0)
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	recs, good := serve.ScanLog(b)
	if good != len(b) {
		return fmt.Errorf("%s: %d intact records (%d bytes), then %d torn or corrupt trailing bytes",
			path, recs, good, len(b)-good)
	}
	if _, _, err := serve.ReadLogPayloads(b); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	fmt.Printf("%s: %d records, %d bytes, all frames intact\n", path, recs, len(b))
	return nil
}

func writeTrace(path string, inst *model.Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	for _, j := range inst.Jobs {
		rec := []string{
			strconv.FormatFloat(j.Release, 'g', -1, 64),
			strconv.FormatFloat(j.Size, 'g', -1, 64),
			strconv.Itoa(int(j.Databank)),
			j.Name,
		}
		if err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func postJobs(base string, inst *model.Instance) error {
	client := &http.Client{Timeout: 10 * time.Second}
	for _, j := range inst.Jobs {
		if err := postOneJob(client, base, j); err != nil {
			return err
		}
	}
	return nil
}

func postOneJob(client *http.Client, base string, j model.Job) error {
	body, err := json.Marshal(map[string]any{
		"name": j.Name, "size": j.Size, "databank": int(j.Databank), "release": j.Release,
	})
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	rb, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /jobs: %s: %s", resp.Status, rb)
	}
	return nil
}

func describe(inst *model.Instance) string {
	return fmt.Sprintf("%d sites / %d banks", inst.Platform.NumMachines(), inst.Platform.NumDatabanks())
}
