// Command experiments regenerates the paper's evaluation artefacts: the
// aggregate comparison tables (Tables 1–16) over the 162-configuration
// grid, and the Figure 3 density sweep comparing the optimised and
// non-optimised online heuristics.
//
// Usage examples:
//
//	experiments -table 1 -runs 5            # the headline comparison
//	experiments -tables all -runs 3         # all sixteen tables, one pass
//	experiments -figure 3 -runs 10          # both panels of Figure 3
//	experiments -table 1 -horizon 900       # paper-scale 15-minute windows
//
// The scheduled nightly workflow (.github/workflows/nightly.yml) runs the
// paper-scale pass — `-tables all -horizon 900 -runs 200` — and archives
// the streamed per-instance CSV as an artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"stretchsched/internal/core"
	"stretchsched/internal/exp"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate one table (1-16)")
		tables   = flag.String("tables", "", `"all" regenerates every table from one grid pass`)
		figure   = flag.String("figure", "", `"3", "3a" or "3b" regenerates the Figure 3 sweep`)
		runs     = flag.Int("runs", 3, "instances per configuration (paper: 200)")
		seed     = flag.Int64("seed", 1, "base random seed")
		target   = flag.Int("target", 30, "expected jobs per instance")
		horizon  = flag.Float64("horizon", 0, "fixed arrival window in seconds (0: use -target)")
		workers  = flag.Int("workers", 0, "parallel workers (0: GOMAXPROCS); results are identical for any value")
		csvOut   = flag.String("csv", "", "also dump raw per-instance metrics to this CSV file")
		progress = flag.Bool("progress", false, "report grid progress on stderr")
	)
	flag.Parse()

	switch {
	case *figure != "":
		runFigure(*figure, *runs, *seed, *workers, *csvOut)
	case *tables == "all":
		runTables(allTableNumbers(), *runs, *seed, *target, *horizon, *workers, *csvOut, *progress)
	case *table >= 1 && *table <= 16:
		runTables([]int{*table}, *runs, *seed, *target, *horizon, *workers, *csvOut, *progress)
	default:
		fmt.Fprintln(os.Stderr, "experiments: need -table N, -tables all, or -figure 3|3a|3b")
		flag.Usage()
		os.Exit(2)
	}
}

func writeCSV(path string, fill func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := fill(f); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("# raw metrics written to %s\n\n", path)
}

func allTableNumbers() []int {
	out := make([]int, 16)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

func runTables(nums []int, runs int, seed int64, target int, horizon float64, workers int, csvOut string, progress bool) {
	start := time.Now()
	opts := exp.Options{
		Runs:       runs,
		Seed:       seed,
		TargetJobs: target,
		Horizon:    horizon,
		Workers:    workers,
	}
	if progress {
		opts.Progress = func(done, total int) {
			if done%25 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rgrid: %d/%d instances", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	var results []exp.InstanceResult
	if csvOut != "" {
		// The workers encode each shard's rows as they finish; the merged
		// stream is byte-identical for any worker count.
		writeCSV(csvOut, func(f *os.File) error {
			var err error
			results, err = exp.RunGridCSV(f, exp.DefaultGrid(), opts)
			return err
		})
	} else {
		results = exp.RunGrid(exp.DefaultGrid(), opts)
	}
	errCount := 0
	for _, r := range results {
		errCount += len(r.Errs)
	}
	fmt.Printf("# grid: %d instances in %v (%d scheduler errors)\n\n",
		len(results), time.Since(start).Round(time.Second), errCount)
	for _, n := range nums {
		spec, err := exp.TableByNumber(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		rows := exp.Aggregate(results, spec.Filter, core.Table1Names())
		fmt.Println(exp.Render(fmt.Sprintf("Table %d: %s", spec.Number, spec.Title), rows))
	}
}

func runFigure(which string, runs int, seed int64, workers int, csvOut string) {
	if which != "3" && which != "3a" && which != "3b" {
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", which)
		os.Exit(2)
	}
	start := time.Now()
	points := exp.RunFigure3(exp.Fig3Options{Runs: runs, Seed: seed, Workers: workers})
	fmt.Printf("# figure 3 sweep in %v\n\n", time.Since(start).Round(time.Second))
	if csvOut != "" {
		writeCSV(csvOut, func(f *os.File) error {
			return exp.WriteFigure3CSV(f, points)
		})
	}
	switch which {
	case "3":
		fmt.Println(exp.RenderFigure3(points))
	case "3a":
		fmt.Println("Figure 3(a) — max-stretch degradation from optimal (%)")
		fmt.Printf("%10s %14s %14s\n", "density", "optimised", "non-optimised")
		for _, p := range points {
			fmt.Printf("%10s %14.3f %14.3f\n",
				strconv.FormatFloat(p.Density, 'g', -1, 64),
				p.OptDegradation, p.NonOptDegradation)
		}
	case "3b":
		fmt.Println("Figure 3(b) — sum-stretch gain of the optimised variant (%)")
		fmt.Printf("%10s %14s\n", "density", "gain")
		for _, p := range points {
			fmt.Printf("%10s %14.2f\n",
				strconv.FormatFloat(p.Density, 'g', -1, 64), p.SumGain)
		}
	}
}
