// Command experiments regenerates the paper's evaluation artefacts: the
// aggregate comparison tables (Tables 1–16) over the 162-configuration
// grid, and the Figure 3 density sweep comparing the optimised and
// non-optimised online heuristics.
//
// Usage examples:
//
//	experiments -table 1 -runs 5            # the headline comparison
//	experiments -tables all -runs 3         # all sixteen tables, one pass
//	experiments -figure 3 -runs 10          # both panels of Figure 3
//	experiments -table 1 -horizon 900       # paper-scale 15-minute windows
//	experiments -tables all -shard 2/6 -csv shard2.csv   # one matrix job
//	experiments -tables all -dryrun -csv expected.csv    # row-count oracle
//	experiments -tables all -fromcsv merged.csv          # tables, no grid
//	experiments ... -csv s.csv -digest s.digest          # per-point digests
//	experiments -tables all -times t.csv                 # measure per-point cost
//	experiments -tables all -fromtimes t.csv             # dispatch by measured cost
//	experiments -tables cluster -runs 5                  # single vs parallel machines
//	experiments -tables cluster -shard 0/3 -csv c0.csv   # one cluster matrix job
//	experiments -tables cluster -fromcsv merged.csv      # cluster tables, no run
//	experiments -tables faults -runs 5                   # stretch vs failure rate
//	experiments -tables faults -shard 0/2 -csv f0.csv    # one faults matrix job
//	experiments -tables faults -fromcsv merged.csv       # fault tables, no run
//
// The scheduled nightly workflow (.github/workflows/nightly.yml) runs the
// paper-scale pass — `-tables all -horizon 900 -runs 200` — as a matrix of
// `-shard k/n` jobs whose CSVs a final job concatenates, checks against a
// `-dryrun` row count and the shards' per-point row digests (recomputed
// from the merged file with `-fromcsv ... -digest`), and renders into
// tables via `-fromcsv`. The cluster family (`-tables cluster`) — the
// Srivastav–Trystram single-vs-parallel comparison over the load-balanced
// cluster world — shards, digests and merges the same way, as does the
// faults family (`-tables faults`), which charts max/mean retry-inflated
// stretch against seeded machine-failure rates per balancer.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"stretchsched/internal/core"
	"stretchsched/internal/exp"
)

func main() {
	var (
		table       = flag.Int("table", 0, "regenerate one table (1-16)")
		tables      = flag.String("tables", "", `"all" regenerates every table from one grid pass; "cluster" runs the single-vs-parallel cluster comparison; "faults" runs the stretch-vs-failure-rate sweep`)
		figure      = flag.String("figure", "", `"3", "3a" or "3b" regenerates the Figure 3 sweep`)
		runs        = flag.Int("runs", 3, "instances per configuration (paper: 200)")
		seed        = flag.Int64("seed", 1, "base random seed")
		target      = flag.Int("target", 30, "expected jobs per instance")
		horizon     = flag.Float64("horizon", 0, "fixed arrival window in seconds (0: use -target)")
		workers     = flag.Int("workers", 0, "parallel workers (0: GOMAXPROCS); results are identical for any value")
		csvOut      = flag.String("csv", "", "also dump raw per-instance metrics to this CSV file")
		progress    = flag.Bool("progress", false, "report grid progress on stderr")
		shard       = flag.String("shard", "", `run only shard "k/n" of the grid (k in 0..n-1); seeds match the unsharded run`)
		dryRun      = flag.Bool("dryrun", false, "generate instances but run no scheduler (metrics are NA); predicts CSV row counts")
		fromCSV     = flag.String("fromcsv", "", "aggregate tables from an existing results CSV instead of running the grid")
		digest      = flag.String("digest", "", "write per-point row digests (one FNV-64a line per grid point) to this file; with -fromcsv they are recomputed from the CSV, which is how the nightly merge detects corrupted shards")
		times       = flag.String("times", "", "measure per-instance scheduler wall time and write the per-point timing sidecar CSV here (never touches the results CSV)")
		fromTimes   = flag.String("fromtimes", "", "load a prior pass's timing sidecar and dispatch shards by measured cost instead of the static heuristic; never affects results")
		verifyExact = flag.Bool("verifyexact", false, "run the exact-verification lane: Offline-Exact vs Offline and the online heuristics on a deterministic 10/20-site grid subsample, exiting nonzero if the §5.3 anomaly reappears (honours -runs, -seed, -target, -workers, -progress)")
	)
	flag.Parse()

	switch {
	case *verifyExact:
		runVerifyExact(*runs, *seed, *target, *workers, *progress)
	case *figure != "":
		runFigure(*figure, *runs, *seed, *workers, *csvOut)
	case *tables == "cluster":
		runCluster(*runs, *seed, *target, *workers, *csvOut, *progress, *shard, *dryRun, *digest, *fromCSV)
	case *tables == "faults":
		runFaults(*runs, *seed, *target, *workers, *csvOut, *progress, *shard, *dryRun, *digest, *fromCSV)
	case *fromCSV != "":
		fromCSVMain(*tables, *table, *fromCSV, *digest)
	case *tables == "all":
		runTables(allTableNumbers(), *runs, *seed, *target, *horizon, *workers, *csvOut, *progress, *shard, *dryRun, *digest, *times, *fromTimes)
	case *table >= 1 && *table <= 16:
		runTables([]int{*table}, *runs, *seed, *target, *horizon, *workers, *csvOut, *progress, *shard, *dryRun, *digest, *times, *fromTimes)
	default:
		fmt.Fprintln(os.Stderr, "experiments: need -table N, -tables all|cluster|faults, or -figure 3|3a|3b")
		flag.Usage()
		os.Exit(2)
	}
}

// runVerifyExact is the weekly CI lane's entry point: the exact optimum
// must never be beaten on the sampled paper-scale instances.
func runVerifyExact(runs int, seed int64, target, workers int, progress bool) {
	start := time.Now()
	opts := exp.VerifyExactOptions{
		Runs: runs, Seed: seed, TargetJobs: target, Workers: workers,
	}
	if progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rverify-exact: %d/%d instances", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	rep := exp.VerifyExact(opts)
	fmt.Printf("verify-exact: %d points × %d runs in %v (%d scheduler errors)\n",
		len(rep.Points), runs, time.Since(start).Round(time.Second), rep.Errs)
	for _, res := range rep.Results {
		exact := res.MaxStretch["Offline-Exact"]
		offline := res.MaxStretch["Offline"]
		fmt.Printf("  %v run %d: jobs=%d exact=%.9g offline=%.9g\n",
			res.Point, res.Run, res.Jobs, exact, offline)
	}
	if rep.Errs > 0 {
		for _, res := range rep.Results {
			for _, err := range res.Errs {
				fmt.Fprintln(os.Stderr, "verify-exact:", err)
			}
		}
		os.Exit(1)
	}
	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "verify-exact: §5.3 anomaly detected on %d instance(s):\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, "  ", v)
		}
		os.Exit(1)
	}
	fmt.Println("verify-exact: §5.3 anomaly eliminated on every sampled instance")
}

func fromCSVMain(tables string, table int, fromCSV, digest string) {
	var nums []int
	switch {
	case tables == "all":
		nums = allTableNumbers()
	case table >= 1 && table <= 16:
		nums = []int{table}
	default:
		fmt.Fprintln(os.Stderr, "experiments: -fromcsv needs -table N or -tables all")
		os.Exit(2)
	}
	tablesFromCSV(nums, fromCSV, digest)
}

// parseShard reads a "k/n" shard spec; the empty spec is the whole grid.
func parseShard(spec string) (k, n int, err error) {
	if spec == "" {
		return 0, 1, nil
	}
	a, b, ok := strings.Cut(spec, "/")
	if ok {
		if k, err = strconv.Atoi(a); err == nil {
			n, err = strconv.Atoi(b)
		}
	}
	if !ok || err != nil || n <= 0 || k < 0 || k >= n {
		return 0, 0, fmt.Errorf("bad -shard %q: want k/n with 0 <= k < n", spec)
	}
	return k, n, nil
}

// tablesFromCSV aggregates and renders tables from an existing raw dump,
// optionally recomputing the per-point row digests of its rows.
func tablesFromCSV(nums []int, path, digest string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer f.Close()
	results, err := exp.ReadResultsCSV(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("# %d instances read from %s\n\n", len(results), path)
	writeDigests(digest, results)
	renderTables(nums, results)
}

// writeDigests writes per-point row digests to path (no-op when empty).
func writeDigests(path string, results []exp.InstanceResult) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := exp.WritePointDigests(f, results, core.Table1Names()); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("# per-point row digests written to %s\n\n", path)
}

func renderTables(nums []int, results []exp.InstanceResult) {
	for _, n := range nums {
		spec, err := exp.TableByNumber(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		rows := exp.Aggregate(results, spec.Filter, core.Table1Names())
		fmt.Println(exp.Render(fmt.Sprintf("Table %d: %s", spec.Number, spec.Title), rows))
	}
}

func writeCSV(path string, fill func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := fill(f); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("# raw metrics written to %s\n\n", path)
}

func allTableNumbers() []int {
	out := make([]int, 16)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

func runTables(nums []int, runs int, seed int64, target int, horizon float64, workers int, csvOut string, progress bool, shard string, dryRun bool, digest, times, fromTimes string) {
	start := time.Now()
	opts := exp.Options{
		Runs:       runs,
		Seed:       seed,
		TargetJobs: target,
		Horizon:    horizon,
		Workers:    workers,
		DryRun:     dryRun,
	}
	if times != "" {
		// Inject the wall clock here, at the edge: the harness measures with
		// whatever clock it is handed and stays free of time.Now itself.
		base := time.Now()
		opts.Clock = func() int64 { return int64(time.Since(base)) }
	}
	if fromTimes != "" {
		f, err := os.Open(fromTimes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		opts.MeasuredSeconds, err = exp.ReadPointTimes(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("# shard dispatch ordered by %d measured point times from %s\n\n",
			len(opts.MeasuredSeconds), fromTimes)
	}
	points := exp.DefaultGrid()
	shardK, shardN, err := parseShard(shard)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	if shardN > 1 {
		points, opts.PointIndices = exp.ShardGrid(points, shardK, shardN)
	}
	if progress {
		opts.Progress = func(done, total int) {
			if done%25 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rgrid: %d/%d instances", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	var results []exp.InstanceResult
	if csvOut != "" {
		// The workers encode each shard's rows as they finish; the merged
		// stream is byte-identical for any worker count.
		writeCSV(csvOut, func(f *os.File) error {
			var err error
			results, err = exp.RunGridCSV(f, points, opts)
			return err
		})
	} else {
		results = exp.RunGrid(points, opts)
	}
	writeDigests(digest, results)
	if times != "" {
		writeCSV(times, func(f *os.File) error {
			return exp.WritePointTimes(f, results)
		})
	}
	errCount, stretchErrs, refineErrs := 0, 0, 0
	for _, r := range results {
		errCount += len(r.Errs)
		stretchErrs += r.StretchErrs
		refineErrs += r.RefineErrs
	}
	fmt.Printf("# grid: %d instances in %v (%d scheduler errors, %d stretch-solve failures, %d refine fallbacks)\n\n",
		len(results), time.Since(start).Round(time.Second), errCount, stretchErrs, refineErrs)
	if shardN > 1 || dryRun {
		// Tables over a partial (or metric-less) grid would mislead; the
		// nightly merge job renders them from the merged CSV instead.
		fmt.Printf("# table rendering skipped (shard %d/%d, dryrun=%v); use -fromcsv on the merged CSV\n",
			shardK, shardN, dryRun)
		return
	}
	renderTables(nums, results)
}

// runCluster is the cluster experiment family: the Srivastav–Trystram
// single-vs-parallel comparison over the load-balanced cluster world. It
// mirrors runTables' sharding, CSV streaming and digest contract, keyed on
// (machines, balancer, density) points.
func runCluster(runs int, seed int64, target, workers int, csvOut string, progress bool, shard string, dryRun bool, digest, fromCSV string) {
	schedulers := exp.DefaultClusterSchedulers()
	if fromCSV != "" {
		f, err := os.Open(fromCSV)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		results, err := exp.ReadClusterCSV(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("# %d cluster instances read from %s\n\n", len(results), fromCSV)
		writeClusterDigests(digest, results, schedulers)
		fmt.Println(exp.RenderClusterTables(results, schedulers))
		return
	}

	start := time.Now()
	opts := exp.ClusterOptions{
		Runs:       runs,
		Seed:       seed,
		TargetJobs: target,
		Workers:    workers,
		DryRun:     dryRun,
	}
	points := exp.DefaultClusterGrid()
	shardK, shardN, err := parseShard(shard)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	if shardN > 1 {
		points, opts.PointIndices = exp.ShardPoints(points, shardK, shardN)
	}
	if progress {
		opts.Progress = func(done, total int) {
			if done%25 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rcluster: %d/%d instances", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	var results []exp.ClusterResult
	if csvOut != "" {
		writeCSV(csvOut, func(f *os.File) error {
			var err error
			results, err = exp.RunClusterCSV(f, points, opts)
			return err
		})
	} else {
		results = exp.RunCluster(points, opts)
	}
	writeClusterDigests(digest, results, schedulers)
	errCount := 0
	for _, r := range results {
		errCount += len(r.Errs)
	}
	fmt.Printf("# cluster: %d instances in %v (%d scheduler errors)\n\n",
		len(results), time.Since(start).Round(time.Second), errCount)
	if shardN > 1 || dryRun {
		fmt.Printf("# table rendering skipped (shard %d/%d, dryrun=%v); use -fromcsv on the merged CSV\n",
			shardK, shardN, dryRun)
		return
	}
	fmt.Println(exp.RenderClusterTables(results, schedulers))
}

// runFaults is the faults experiment family: max/mean retry-inflated
// stretch against seeded machine-failure rate per balancer, over the
// fault-tolerant cluster world. Sharding, CSV streaming and digests follow
// runCluster, keyed on (machines, balancer, rate) points.
func runFaults(runs int, seed int64, target, workers int, csvOut string, progress bool, shard string, dryRun bool, digest, fromCSV string) {
	if fromCSV != "" {
		f, err := os.Open(fromCSV)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		results, scheduler, err := exp.ReadFaultsCSV(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("# %d fault instances read from %s\n\n", len(results), fromCSV)
		writeFaultDigests(digest, results, scheduler)
		fmt.Println(exp.RenderFaultTables(results, scheduler))
		return
	}

	start := time.Now()
	opts := exp.FaultOptions{
		Runs:       runs,
		Seed:       seed,
		TargetJobs: target,
		Workers:    workers,
		DryRun:     dryRun,
	}
	scheduler := opts.Scheduler
	if scheduler == "" {
		scheduler = "SWRPT"
	}
	points := exp.DefaultFaultGrid()
	shardK, shardN, err := parseShard(shard)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	if shardN > 1 {
		points, opts.PointIndices = exp.ShardPoints(points, shardK, shardN)
	}
	if progress {
		opts.Progress = func(done, total int) {
			if done%25 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rfaults: %d/%d instances", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	var results []exp.FaultResult
	if csvOut != "" {
		writeCSV(csvOut, func(f *os.File) error {
			var err error
			results, err = exp.RunFaultsCSV(f, points, opts)
			return err
		})
	} else {
		results = exp.RunFaults(points, opts)
	}
	writeFaultDigests(digest, results, scheduler)
	errCount, retries := 0, 0
	for _, r := range results {
		errCount += len(r.Errs)
		retries += r.Retries
	}
	fmt.Printf("# faults: %d instances in %v (%d scheduler errors, %d retries)\n\n",
		len(results), time.Since(start).Round(time.Second), errCount, retries)
	if shardN > 1 || dryRun {
		fmt.Printf("# table rendering skipped (shard %d/%d, dryrun=%v); use -fromcsv on the merged CSV\n",
			shardK, shardN, dryRun)
		return
	}
	fmt.Println(exp.RenderFaultTables(results, scheduler))
}

// writeFaultDigests writes faults per-point row digests (no-op when path
// is empty).
func writeFaultDigests(path string, results []exp.FaultResult, scheduler string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := exp.WriteFaultPointDigests(f, results, scheduler); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("# per-point row digests written to %s\n\n", path)
}

// writeClusterDigests writes cluster per-point row digests (no-op when
// path is empty).
func writeClusterDigests(path string, results []exp.ClusterResult, schedulers []string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := exp.WriteClusterPointDigests(f, results, schedulers); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("# per-point row digests written to %s\n\n", path)
}

func runFigure(which string, runs int, seed int64, workers int, csvOut string) {
	if which != "3" && which != "3a" && which != "3b" {
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", which)
		os.Exit(2)
	}
	start := time.Now()
	points := exp.RunFigure3(exp.Fig3Options{Runs: runs, Seed: seed, Workers: workers})
	fmt.Printf("# figure 3 sweep in %v\n\n", time.Since(start).Round(time.Second))
	if csvOut != "" {
		writeCSV(csvOut, func(f *os.File) error {
			return exp.WriteFigure3CSV(f, points)
		})
	}
	switch which {
	case "3":
		fmt.Println(exp.RenderFigure3(points))
	case "3a":
		fmt.Println("Figure 3(a) — max-stretch degradation from optimal (%)")
		fmt.Printf("%10s %14s %14s\n", "density", "optimised", "non-optimised")
		for _, p := range points {
			fmt.Printf("%10s %14.3f %14.3f\n",
				strconv.FormatFloat(p.Density, 'g', -1, 64),
				p.OptDegradation, p.NonOptDegradation)
		}
	case "3b":
		fmt.Println("Figure 3(b) — sum-stretch gain of the optimised variant (%)")
		fmt.Printf("%10s %14s\n", "density", "gain")
		for _, p := range points {
			fmt.Printf("%10s %14.2f\n",
				strconv.FormatFloat(p.Density, 'g', -1, 64), p.SumGain)
		}
	}
}
