// Command stretchsim simulates one GriPPS-like scenario and reports, for
// each selected scheduler, the stretch and flow metrics of the paper —
// optionally against the offline optimal max-stretch.
//
// Usage examples:
//
//	stretchsim -sites 3 -dbs 3 -avail 0.6 -density 1.5 -target 40
//	stretchsim -in workload.json -schedulers Online,SWRPT,MCT -optimal
//	stretchsim -seed 7 -per-job
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"stretchsched/internal/core"
	"stretchsched/internal/model"
	"stretchsched/internal/trace"
	"stretchsched/internal/workload"
)

func main() {
	var (
		sites   = flag.Int("sites", 3, "number of 10-processor sites")
		dbs     = flag.Int("dbs", 3, "number of databanks")
		avail   = flag.Float64("avail", 0.6, "databank availability in (0,1]")
		density = flag.Float64("density", 1.0, "workload density")
		target  = flag.Int("target", 40, "expected number of jobs (0: use -horizon)")
		horizon = flag.Float64("horizon", 0, "arrival window in seconds (paper scale: 900)")
		seed    = flag.Int64("seed", 1, "random seed")
		in      = flag.String("in", "", "read instance JSON instead of generating")
		names   = flag.String("schedulers", strings.Join(core.Table1Names(), ","),
			"comma-separated scheduler list")
		optimal = flag.Bool("optimal", false, "also compute the offline optimal max-stretch")
		perJob  = flag.Bool("per-job", false, "print per-job stretches of the first scheduler")
		gantt   = flag.Bool("gantt", false, "render an ASCII Gantt chart of the first scheduler")
	)
	flag.Parse()

	inst, err := loadInstance(*in, workload.Config{
		Sites: *sites, Databanks: *dbs, Availability: *avail, Density: *density,
		TargetJobs: *target, Horizon: *horizon, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instance: %d jobs, %d machines, %d databanks, Δ=%.2f, total work %.1f\n",
		inst.NumJobs(), inst.Platform.NumMachines(), inst.Platform.NumDatabanks(),
		inst.Delta(), inst.TotalWork())

	if *optimal {
		t0 := time.Now()
		opt, err := core.OptimalMaxStretch(inst)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("offline optimal max-stretch: %.6f (computed in %v)\n",
			opt, time.Since(t0).Round(time.Millisecond))
	}

	list := strings.Split(*names, ",")
	fmt.Printf("%-14s %12s %12s %12s %12s %10s\n",
		"scheduler", "max-stretch", "sum-stretch", "max-flow", "sum-flow", "time")
	for _, name := range list {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s, err := core.Get(name)
		if err != nil {
			fatal(err)
		}
		t0 := time.Now()
		sched, err := s.Run(inst)
		if err != nil {
			fmt.Printf("%-14s ERROR: %v\n", name, err)
			continue
		}
		fmt.Printf("%-14s %12.4f %12.2f %12.2f %12.2f %10v\n",
			name, sched.MaxStretch(inst), sched.SumStretch(inst),
			sched.MaxFlow(inst), sched.SumFlow(inst),
			time.Since(t0).Round(time.Millisecond))
		if name == strings.TrimSpace(list[0]) {
			if *perJob {
				printPerJob(inst, sched)
			}
			if *gantt {
				fmt.Print(trace.Gantt(inst, sched, trace.GanttOptions{}))
				fmt.Print(trace.Summary(name, inst, sched))
			}
		}
	}
}

func loadInstance(path string, cfg workload.Config) (*model.Instance, error) {
	if path == "" {
		return cfg.Generate()
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workload.ReadInstance(f)
}

func printPerJob(inst *model.Instance, sched *model.Schedule) {
	fmt.Printf("  %-8s %10s %10s %10s %10s %10s\n",
		"job", "release", "size", "complete", "flow", "stretch")
	for j := range inst.Jobs {
		id := model.JobID(j)
		fmt.Printf("  %-8s %10.2f %10.2f %10.2f %10.2f %10.3f\n",
			inst.Jobs[j].Name, inst.Jobs[j].Release, inst.Jobs[j].Size,
			sched.Completion[j], sched.Flow(inst, id), sched.Stretch(inst, id))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stretchsim:", err)
	os.Exit(1)
}
