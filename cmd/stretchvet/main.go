// Command stretchvet runs the project-invariant analyzer suite
// (internal/lint: noswallow, bigescape, noalloc, determinism) over the
// given package patterns and reports file:line:col diagnostics. It exits
// nonzero when any invariant is violated, so CI can gate on it.
//
// Usage:
//
//	go run ./cmd/stretchvet [-json] [-only name[,name...]] [patterns...]
//
// Patterns default to ./... . With -json the diagnostics are emitted as a
// JSON array instead of vet-style text.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"stretchsched/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name()] {
				sel = append(sel, a)
				delete(keep, a.Name())
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "stretchvet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	loader := lint.NewLoader()
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stretchvet: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Run(analyzers, pkgs)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "stretchvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "stretchvet: %d invariant violation(s) in %d package(s)\n",
				len(diags), len(pkgs))
		}
		os.Exit(1)
	}
}
