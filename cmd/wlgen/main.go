// Command wlgen generates a GriPPS-like platform and workload (§5.1) and
// writes it as JSON, for replay with stretchsim -in.
//
// Usage example:
//
//	wlgen -sites 10 -dbs 10 -avail 0.9 -density 2 -target 60 -o wl.json
package main

import (
	"flag"
	"fmt"
	"os"

	"stretchsched/internal/workload"
)

func main() {
	var (
		sites   = flag.Int("sites", 3, "number of 10-processor sites")
		procs   = flag.Int("procs", 10, "processors per site")
		dbs     = flag.Int("dbs", 3, "number of databanks")
		avail   = flag.Float64("avail", 0.6, "databank availability in (0,1]")
		density = flag.Float64("density", 1.0, "workload density")
		target  = flag.Int("target", 0, "expected number of jobs (0: use -horizon)")
		horizon = flag.Float64("horizon", 900, "arrival window in seconds")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	inst, err := workload.Config{
		Sites: *sites, ProcsPerSite: *procs, Databanks: *dbs,
		Availability: *avail, Density: *density,
		TargetJobs: *target, Horizon: *horizon, Seed: *seed,
	}.Generate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlgen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wlgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := workload.WriteInstance(w, inst); err != nil {
		fmt.Fprintln(os.Stderr, "wlgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wlgen: %d jobs on %d machines\n",
		inst.NumJobs(), inst.Platform.NumMachines())
}
