// Package stretchsched reproduces "Minimizing the stretch when scheduling
// flows of biological requests" (Legrand, Su, Vivien; SPAA 2006 / INRIA
// RR-5724): scheduling divisible biological-sequence-comparison requests on
// heterogeneous platforms with partially replicated databanks, optimising
// the max-stretch and sum-stretch metrics.
//
// The library lives under internal/ (see DESIGN.md for the system map):
// internal/core exposes the scheduler registry, internal/offline the
// polynomial optimal max-stretch algorithm, internal/online the paper's
// LP-based online heuristics, and internal/exp the harness regenerating
// every table and figure of the paper's evaluation. The benchmarks in
// bench_test.go map one-to-one onto Tables 1-16 and Figure 3.
package stretchsched
