package sim

import (
	"math"

	"stretchsched/internal/model"
)

// eventHeap is an indexed binary min-heap of predicted job completion
// instants, keyed by absolute simulation time. It replaces the engine's
// former per-event linear scan over every running job: the earliest
// completion is read in O(1) and only jobs whose service rate changed pay
// an O(log n) update (see state.refreshEvents).
//
// The index (pos) is per job ID, so membership tests, updates and removals
// are O(1) lookups + O(log n) sift. All storage is retained across resets;
// the heap allocates only when an instance has more jobs than any previous
// one on the same engine.
type eventHeap struct {
	heap []model.JobID // heap-ordered job IDs
	key  []float64     // job ID -> predicted completion time
	pos  []int         // job ID -> index in heap, -1 when absent
}

// reset prepares the heap for an instance with n jobs, clearing any
// membership left over from a previous (possibly aborted) run.
func (h *eventHeap) reset(n int) {
	h.heap = grow(h.heap, n)[:0]
	h.key = grow(h.key, n)
	h.pos = grow(h.pos, n)
	for i := 0; i < n; i++ {
		h.pos[i] = -1
	}
}

func (h *eventHeap) empty() bool { return len(h.heap) == 0 }

// minKey returns the earliest predicted completion time, +Inf when empty.
func (h *eventHeap) minKey() float64 {
	if len(h.heap) == 0 {
		return math.Inf(1)
	}
	return h.key[h.heap[0]]
}

// set inserts job j with the given key, or updates its key in place.
func (h *eventHeap) set(j model.JobID, key float64) {
	h.key[j] = key
	if i := h.pos[j]; i >= 0 {
		if !h.siftUp(i) {
			h.siftDown(i)
		}
		return
	}
	h.heap = append(h.heap, j)
	h.pos[j] = len(h.heap) - 1
	h.siftUp(len(h.heap) - 1)
}

// remove deletes job j; it is a no-op when j is not in the heap, so both
// engine drivers may call it unconditionally at completions.
func (h *eventHeap) remove(j model.JobID) {
	i := h.pos[j]
	if i < 0 {
		return
	}
	last := len(h.heap) - 1
	h.swap(i, last)
	h.heap = h.heap[:last]
	h.pos[j] = -1
	if i < last {
		if !h.siftUp(i) {
			h.siftDown(i)
		}
	}
}

func (h *eventHeap) less(a, b int) bool {
	ka, kb := h.key[h.heap[a]], h.key[h.heap[b]]
	if ka != kb {
		return ka < kb
	}
	// Tie-break by job ID for a fully deterministic heap shape.
	return h.heap[a] < h.heap[b]
}

func (h *eventHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

// siftUp restores the heap property upward from i and reports whether any
// swap happened.
func (h *eventHeap) siftUp(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.heap)
	for {
		smallest := i
		if l := 2*i + 1; l < n && h.less(l, smallest) {
			smallest = l
		}
		if r := 2*i + 2; r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
