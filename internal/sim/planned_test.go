package sim

import (
	"fmt"
	"math"
	"testing"

	"stretchsched/internal/model"
)

// fixedPlanner returns a precomputed full-horizon plan on the first call and
// the same plan thereafter (the executor resumes at Ctx.Now on re-plans).
type fixedPlanner struct {
	plan *Plan
}

func (f *fixedPlanner) Name() string             { return "fixed" }
func (f *fixedPlanner) Init(*model.Instance)     {}
func (f *fixedPlanner) Plan(*Ctx) (*Plan, error) { return f.plan, nil }

func TestRunPlannedSingleMachine(t *testing.T) {
	inst := uniInstance(t, []float64{2}, []model.Job{{Release: 0, Size: 6, Databank: 0}})
	plan := NewPlan(1)
	plan.Add(0, PlanSlice{Job: 0, Start: 0, End: 3})
	s, err := RunPlanned(inst, &fixedPlanner{plan})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Completion[0]-3) > 1e-9 {
		t.Fatalf("completion = %v", s.Completion[0])
	}
	if err := s.Validate(inst, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlannedParallelSlices(t *testing.T) {
	// Job 0 split across two machines with different speeds; job 1 follows
	// on machine 1 after an idle gap on machine 0.
	inst := uniInstance(t, []float64{1, 2}, []model.Job{
		{Release: 0, Size: 6, Databank: 0},
		{Release: 0, Size: 2, Databank: 0},
	})
	plan := NewPlan(2)
	plan.Add(0, PlanSlice{Job: 0, Start: 0, End: 2}) // 2 units
	plan.Add(1, PlanSlice{Job: 0, Start: 0, End: 2}) // 4 units → job 0 done at 2
	plan.Add(1, PlanSlice{Job: 1, Start: 2, End: 3}) // 2 units → job 1 done at 3
	s, err := RunPlanned(inst, &fixedPlanner{plan})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Completion[0]-2) > 1e-9 || math.Abs(s.Completion[1]-3) > 1e-9 {
		t.Fatalf("completions = %v", s.Completion)
	}
	if err := s.Validate(inst, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlannedEarlyCompletionMidSlice(t *testing.T) {
	// Plan over-allocates: slice is longer than the work requires; the job
	// must complete exactly when its work is done and the machine idle after.
	inst := uniInstance(t, []float64{1}, []model.Job{{Release: 0, Size: 2, Databank: 0}})
	plan := NewPlan(1)
	plan.Add(0, PlanSlice{Job: 0, Start: 0, End: 10})
	s, err := RunPlanned(inst, &fixedPlanner{plan})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Completion[0]-2) > 1e-9 {
		t.Fatalf("completion = %v, want 2", s.Completion[0])
	}
}

// replanCounter verifies the executor calls Plan at start and at each later
// release, planning only released jobs.
type replanCounter struct {
	calls int
}

func (r *replanCounter) Name() string         { return "replan" }
func (r *replanCounter) Init(*model.Instance) {}

func (r *replanCounter) Plan(ctx *Ctx) (*Plan, error) {
	r.calls++
	plan := NewPlan(ctx.Inst.Platform.NumMachines())
	t := ctx.Now
	// Serial plan over released jobs in ID order on machine 0.
	for j := range ctx.Remaining {
		if !ctx.Released[j] || ctx.Done[j] {
			continue
		}
		if !ctx.Released[j] {
			return nil, fmt.Errorf("planning unreleased job %d", j)
		}
		d := ctx.Remaining[j] / ctx.Inst.Platform.Machine(0).Speed
		plan.Add(0, PlanSlice{Job: model.JobID(j), Start: t, End: t + d})
		t += d
	}
	return plan, nil
}

func TestRunPlannedReplansAtArrivals(t *testing.T) {
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 2, Databank: 0},
		{Release: 1, Size: 2, Databank: 0},
		{Release: 9, Size: 1, Databank: 0},
	})
	pl := &replanCounter{}
	s, err := RunPlanned(inst, pl)
	if err != nil {
		t.Fatal(err)
	}
	if pl.calls != 3 {
		t.Fatalf("Plan called %d times, want 3", pl.calls)
	}
	want := []float64{2, 4, 10}
	for j, w := range want {
		if math.Abs(s.Completion[j]-w) > 1e-9 {
			t.Fatalf("completion[%d] = %v, want %v", j, s.Completion[j], w)
		}
	}
	if err := s.Validate(inst, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlannedDetectsIncompletePlan(t *testing.T) {
	inst := uniInstance(t, []float64{1}, []model.Job{{Release: 0, Size: 5, Databank: 0}})
	plan := NewPlan(1)
	plan.Add(0, PlanSlice{Job: 0, Start: 0, End: 1}) // only 1 of 5 units
	if _, err := RunPlanned(inst, &fixedPlanner{plan}); err == nil {
		t.Fatal("expected error for plan leaving work unfinished")
	}
}

func TestPlanNormalizeRejectsOverlap(t *testing.T) {
	plan := NewPlan(1)
	plan.Add(0, PlanSlice{Job: 0, Start: 0, End: 2})
	plan.Add(0, PlanSlice{Job: 1, Start: 1, End: 3})
	if err := plan.Normalize(); err == nil {
		t.Fatal("expected overlap error")
	}
}

func TestPlanNormalizeSorts(t *testing.T) {
	plan := NewPlan(1)
	plan.Add(0, PlanSlice{Job: 1, Start: 2, End: 3})
	plan.Add(0, PlanSlice{Job: 0, Start: 0, End: 1})
	if err := plan.Normalize(); err != nil {
		t.Fatal(err)
	}
	if plan.PerMachine[0][0].Job != 0 {
		t.Fatal("not sorted")
	}
}

func TestPlanAddSkipsEmptySlices(t *testing.T) {
	plan := NewPlan(1)
	plan.Add(0, PlanSlice{Job: 0, Start: 1, End: 1})
	if len(plan.PerMachine[0]) != 0 {
		t.Fatal("empty slice stored")
	}
}
