package sim

import (
	"math"
	"testing"

	"stretchsched/internal/model"
)

// TestFigure2Scenario is the executable form of the paper's Figure 2: on a
// uniform platform, fully distributing work (situation B) dominates leaving
// jobs on single machines (situation A) — every completion time improves.
// Under restricted availability (situation C) the completion vectors become
// incomparable, which is exactly why the multi-machine problem needs the
// LP/flow machinery instead of a greedy exchange argument.
func TestFigure2Scenario(t *testing.T) {
	// Situation A/B: two machines, two simultaneous jobs, uniform.
	uni, err := model.Uniform([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	instB, err := model.NewInstance(uni, []model.Job{
		{Release: 0, Size: 2, Databank: 0},
		{Release: 0, Size: 4, Databank: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Situation A: each job on its own machine (a hand-built plan).
	planA := NewPlan(2)
	planA.Add(0, PlanSlice{Job: 0, Start: 0, End: 2})
	planA.Add(1, PlanSlice{Job: 1, Start: 0, End: 4})
	schedA, err := RunPlanned(instB, &fixedPlanner{planA})
	if err != nil {
		t.Fatal(err)
	}
	// Situation B: both jobs spread over both machines, shorter first.
	schedB, err := RunList(instB, srpt{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range schedA.Completion {
		if schedB.Completion[j] > schedA.Completion[j]+1e-9 {
			t.Fatalf("uniform processing must dominate: job %d %v vs %v",
				j, schedB.Completion[j], schedA.Completion[j])
		}
	}
	if schedB.Completion[0] >= schedA.Completion[0] {
		t.Fatal("sharing should strictly help the short job")
	}

	// Situation C: restricted availability — job 1 only on machine 1.
	restr, err := model.NewPlatform([]model.Machine{
		{Speed: 1, Databanks: []model.DatabankID{0}},
		{Speed: 1, Databanks: []model.DatabankID{0, 1}},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	instC, err := model.NewInstance(restr, []model.Job{
		{Release: 0, Size: 2, Databank: 0},
		{Release: 0, Size: 4, Databank: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Distribution 1: job 0 takes both machines first (SRPT order).
	schedC1, err := RunList(instC, srpt{})
	if err != nil {
		t.Fatal(err)
	}
	// Distribution 2: job 1 keeps machine 1 to itself (hand-built).
	planC2 := NewPlan(2)
	planC2.Add(0, PlanSlice{Job: 0, Start: 0, End: 2})
	planC2.Add(1, PlanSlice{Job: 1, Start: 0, End: 4})
	schedC2, err := RunPlanned(instC, &fixedPlanner{planC2})
	if err != nil {
		t.Fatal(err)
	}
	// The two completion vectors must be incomparable: each schedule wins
	// on one job.
	c1Better0 := schedC1.Completion[0] < schedC2.Completion[0]-1e-9
	c2Better1 := schedC2.Completion[1] < schedC1.Completion[1]-1e-9
	if !c1Better0 || !c2Better1 {
		t.Fatalf("expected incomparable vectors, got %v vs %v",
			schedC1.Completion, schedC2.Completion)
	}
}

// TestListEngineWorkConservationOverTime verifies a stronger invariant than
// end-state validation: at every slice boundary, cumulative processed work
// never exceeds elapsed capacity and never regresses.
func TestListEngineWorkConservationOverTime(t *testing.T) {
	inst := uniInstance(t, []float64{1.5, 0.5}, []model.Job{
		{Release: 0, Size: 3, Databank: 0},
		{Release: 0.5, Size: 1, Databank: 0},
		{Release: 1.5, Size: 2, Databank: 0},
	})
	sched, err := RunList(inst, srpt{})
	if err != nil {
		t.Fatal(err)
	}
	totalSpeed := inst.Platform.TotalSpeed()
	work := 0.0
	for _, sl := range sched.Slices {
		work += sl.Duration() * inst.Platform.Machine(sl.Machine).Speed
		if sl.End > 0 && work > totalSpeed*sl.End+1e-9 {
			t.Fatalf("work %v exceeds capacity %v by t=%v", work, totalSpeed*sl.End, sl.End)
		}
	}
	if math.Abs(work-inst.TotalWork()) > 1e-9*(1+inst.TotalWork()) {
		t.Fatalf("total processed %v != total work %v", work, inst.TotalWork())
	}
}
