package sim

import (
	"fmt"
	"math"
	"slices"

	"stretchsched/internal/model"
)

// PlanSlice schedules one job on one machine over [Start, End).
type PlanSlice struct {
	Job   model.JobID
	Start float64
	End   float64
}

// Plan is a per-machine timetable. Each machine's slices must be sorted by
// start time and non-overlapping; gaps are idle time. Plans are advisory
// beyond the next arrival: the executor truncates and re-plans there.
type Plan struct {
	PerMachine [][]PlanSlice
}

// NewPlan returns an empty plan for m machines.
func NewPlan(m int) *Plan { return &Plan{PerMachine: make([][]PlanSlice, m)} }

// Reset clears the plan back to m empty machine timetables, retaining every
// per-machine slice buffer, so planners that emit a fresh timetable at every
// arrival (the LP-based online heuristics) reuse one Plan allocation-free.
func (p *Plan) Reset(m int) {
	if cap(p.PerMachine) < m {
		p.PerMachine = make([][]PlanSlice, m)
	}
	p.PerMachine = p.PerMachine[:m]
	for i := range p.PerMachine {
		p.PerMachine[i] = p.PerMachine[i][:0]
	}
}

// Add appends a slice to machine mid's timetable (kept sorted by caller or
// normalised by Normalize).
func (p *Plan) Add(mid model.MachineID, s PlanSlice) {
	if s.End > s.Start {
		p.PerMachine[mid] = append(p.PerMachine[mid], s)
	}
}

// Normalize sorts each machine's slices by start time and validates
// non-overlap. It returns an error describing the first violation.
// The sort is slices.SortFunc — not sort.Slice, whose reflect-based swapper
// allocates — and start times tie-break by job so the order is total.
func (p *Plan) Normalize() error {
	for mid := range p.PerMachine {
		sl := p.PerMachine[mid]
		slices.SortFunc(sl, func(a, b PlanSlice) int {
			switch {
			case a.Start < b.Start:
				return -1
			case a.Start > b.Start:
				return 1
			case a.Job < b.Job:
				return -1
			case a.Job > b.Job:
				return 1
			default:
				return 0
			}
		})
		for k := 1; k < len(sl); k++ {
			if sl[k].Start < sl[k-1].End-1e-9*(1+math.Abs(sl[k-1].End)) {
				return fmt.Errorf("sim: plan overlap on machine %d at t=%v", mid, sl[k].Start)
			}
		}
		p.PerMachine[mid] = sl
	}
	return nil
}

// Planner produces timetables for the planned driver. Plan is invoked at
// the simulation start and at every subsequent job release; the returned
// plan is followed until the next release. The planner sees the true
// remaining work of every released job in ctx.
type Planner interface {
	Name() string
	Init(inst *model.Instance)
	Plan(ctx *Ctx) (*Plan, error)
}

// RunPlanned simulates inst under a planning scheduler on a fresh engine
// and returns a caller-owned schedule trace.
func RunPlanned(inst *model.Instance, pl Planner) (*model.Schedule, error) {
	return NewEngine().RunPlanned(inst, pl)
}

// runPlanned is the planned driver proper, running on the reusable state.
// Planners allocate their own plans, so this driver is not allocation-free
// like the list driver, but the engine-side buffers (state vectors, active
// set, per-segment assignment/rate vectors, the output schedule) are all
// reused across invocations.
func (st *state) runPlanned(inst *model.Instance, pl Planner) (*model.Schedule, error) {
	pl.Init(inst)
	st.reset(inst)

	for ev := 0; ; ev++ {
		if ev > maxEvents {
			return nil, fmt.Errorf("sim: %s exceeded event budget", pl.Name())
		}
		if st.allDone() {
			return &st.sched, nil
		}
		if len(st.ctx.active) == 0 {
			if !st.advanceToNextArrival() {
				return nil, fmt.Errorf("sim: %s deadlocked with unfinished jobs", pl.Name())
			}
			continue
		}
		plan, err := pl.Plan(&st.ctx)
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", pl.Name(), err)
		}
		if err := plan.Normalize(); err != nil {
			return nil, fmt.Errorf("sim: %s: %w", pl.Name(), err)
		}
		horizon := st.ctx.Now + st.timeToNextArrival()
		progressed, err := st.executePlan(plan, horizon, pl.Name())
		if err != nil {
			return nil, err
		}
		if math.IsInf(horizon, 1) {
			if !st.allDone() {
				return nil, fmt.Errorf("sim: %s final plan leaves %d jobs unfinished",
					pl.Name(), inst.NumJobs()-st.doneCnt)
			}
			return &st.sched, nil
		}
		if !progressed && st.ctx.Now < horizon {
			// The plan had nothing before the next arrival; skip ahead.
			st.ctx.Now = horizon
			st.releaseUpTo(horizon)
		}
	}
}

// executePlan advances the engine along the timetable until horizon,
// splitting at slice boundaries and completion instants. It reports whether
// any time was consumed.
func (st *state) executePlan(plan *Plan, horizon float64, name string) (bool, error) {
	m := st.inst.Platform.NumMachines()
	for i := 0; i < m; i++ {
		st.cursor[i] = 0
	}
	progressed := false

	for {
		t := st.ctx.Now
		if t >= horizon-relTol*(1+math.Abs(horizon)) {
			st.ctx.Now = math.Min(horizon, st.ctx.Now)
			return progressed, nil
		}
		// Determine, per machine, the slice active at t (if any) and the
		// next breakpoint. The previous segment's rates are cleared via the
		// running set, so the whole job vector is never rescanned.
		next := horizon
		for _, j := range st.running {
			st.rate[j] = 0
		}
		st.running = st.running[:0]
		for mid := 0; mid < m; mid++ {
			st.assign[mid] = -1
			sl := plan.PerMachine[mid]
			c := st.cursor[mid]
			for c < len(sl) && sl[c].End <= t+relTol*(1+math.Abs(t)) {
				c++
			}
			st.cursor[mid] = c
			if c >= len(sl) {
				continue
			}
			s := sl[c]
			if s.Start > t+relTol*(1+math.Abs(t)) {
				next = math.Min(next, s.Start)
				continue
			}
			j := s.Job
			if st.ctx.Done[j] || !st.ctx.Released[j] {
				// Plan slack (job finished early); machine idles this slice.
				next = math.Min(next, s.End)
				continue
			}
			st.assign[mid] = int(j)
			if st.rate[j] == 0 {
				st.running = append(st.running, j)
			}
			st.rate[j] += st.inst.Platform.Machine(model.MachineID(mid)).Speed
			next = math.Min(next, s.End)
		}
		if len(st.running) == 0 {
			if next <= t+relTol*(1+math.Abs(t)) {
				// No runnable work and no future breakpoint before horizon.
				st.ctx.Now = horizon
				st.releaseUpTo(horizon)
				return progressed, nil
			}
			st.ctx.Now = next
			st.releaseUpTo(next)
			continue
		}
		// Completion instants may precede the next breakpoint.
		dt := next - t
		for _, j := range st.running {
			dt = math.Min(dt, st.ctx.Remaining[j]/st.rate[j])
		}
		if dt < 0 {
			dt = 0
		}
		st.advance(dt)
		progressed = progressed || dt > 0
		if dt == 0 {
			// Avoid an infinite loop on a degenerate zero-length segment.
			st.ctx.Now = math.Min(next, horizon)
			st.releaseUpTo(st.ctx.Now)
		}
	}
}
