// Package sim is the discrete-event simulation engine for divisible loads
// with negligible communication — the repository's substitute for the
// SimGrid toolkit used by the paper (§5).
//
// The model makes an exact fluid simulation possible: at any instant each
// machine serves at most one job at its full speed, a job may span several
// machines, and rates only change at events (releases, completions, plan
// breakpoints). The engine therefore advances from event to event in closed
// form; there is no time-stepping error.
//
// Two drivers are provided:
//
//   - RunList executes a priority-list policy with the greedy spatial rule
//     of §3: "while some processors are idle, select the job with the
//     highest priority and distribute its processing on all appropriate
//     available processors".
//   - RunPlanned executes schedulers that emit explicit per-machine
//     timetables (the offline optimal and the LP-based online heuristics),
//     re-invoking the planner at every job arrival.
//
// Both drivers are available in two forms: the package-level functions
// return a caller-owned schedule, while an Engine owns every buffer the
// simulation needs (state vectors, the active set, the completion event
// heap, the output schedule) and reuses them across invocations, so the
// steady-state event loop of RunList performs no heap allocation at all.
// Experiment harnesses that replay thousands of instances should hold one
// Engine per worker; see DESIGN.md for the full design.
package sim

import (
	"fmt"
	"math"
	"slices"

	"stretchsched/internal/model"
)

// Ctx is the read-only state handed to policies and planners at each
// decision instant.
type Ctx struct {
	Inst      *model.Instance
	Now       float64
	Remaining []float64 // remaining work per job (0 when done)
	Released  []bool
	Done      []bool

	// active is the engine-maintained set of released, unfinished jobs in
	// ID order, updated incrementally at releases and completions. It is
	// nil for hand-constructed contexts, in which case Active falls back
	// to a scan.
	active  []model.JobID
	managed bool
}

// Active returns the released, unfinished jobs in ID order. The returned
// slice is owned by the engine and must not be mutated or retained.
func (c *Ctx) Active() []model.JobID {
	if c.managed {
		return c.active
	}
	var out []model.JobID
	for j := range c.Remaining {
		if c.Released[j] && !c.Done[j] {
			out = append(out, model.JobID(j))
		}
	}
	return out
}

// RemainingAloneTime returns the time job j would still need alone on its
// eligible machines: ρ_j(t) / Σ_{i∈elig(j)} speed_i.
func (c *Ctx) RemainingAloneTime(j model.JobID) float64 {
	return c.Remaining[j] / c.Inst.Platform.AggregateSpeed(c.Inst.Jobs[j].Databank)
}

// Policy is a dynamic priority order over active jobs. OnEvent runs at every
// decision instant (start, release, completion) before comparisons, letting
// stateful policies (deadline-based, pseudo-stretch) refresh themselves.
type Policy interface {
	Name() string
	Init(inst *model.Instance)
	OnEvent(ctx *Ctx)
	// Less reports whether a must be served strictly before b.
	Less(ctx *Ctx, a, b model.JobID) bool
}

// relTol is the relative numeric tolerance of the engine.
const relTol = 1e-9

// maxEvents caps the number of engine iterations as a defence against
// non-advancing policies; realistic runs are far below it.
const maxEvents = 10_000_000

// Engine owns every buffer a simulation needs and reuses them across
// invocations: after a warm-up run, the RunList event loop allocates
// nothing. An Engine must not be used from multiple goroutines, and the
// schedule returned by its Run methods is overwritten by the next call —
// copy what must outlive it, or use the package-level functions, which
// return caller-owned schedules.
type Engine struct {
	st state
}

// NewEngine returns an empty engine; buffers are sized lazily on first use
// and grown only when an instance exceeds every previous one.
func NewEngine() *Engine { return &Engine{} }

// RunList simulates inst under the given priority policy and returns the
// complete schedule trace. The result is valid until the next call on e.
//
//stretch:noalloc
func (e *Engine) RunList(inst *model.Instance, pol Policy) (*model.Schedule, error) {
	pol.Init(inst)
	st := &e.st
	st.reset(inst)

	for ev := 0; ; ev++ {
		if ev > maxEvents {
			return nil, fmt.Errorf("sim: %s exceeded event budget", pol.Name()) //stretch:alloc-ok — error exit
		}
		if st.allDone() {
			return &st.sched, nil
		}
		if len(st.ctx.active) == 0 {
			if !st.advanceToNextArrival() {
				return nil, fmt.Errorf("sim: %s deadlocked with unfinished jobs", pol.Name()) //stretch:alloc-ok — error exit
			}
			continue
		}
		pol.OnEvent(&st.ctx)
		st.order = append(st.order[:0], st.ctx.active...)
		st.sortOrder(pol)

		st.allocate(st.order)
		st.refreshEvents()

		// Horizon: next arrival or earliest completion at current rates,
		// the latter read off the indexed event heap in O(1).
		dt := st.timeToNextArrival()
		if !st.events.empty() {
			dt = math.Min(dt, st.events.minKey()-st.ctx.Now)
		}
		if math.IsInf(dt, 1) {
			return nil, fmt.Errorf("sim: %s has active jobs with no eligible machine and no future arrivals", pol.Name()) //stretch:alloc-ok — error exit
		}
		if dt < 0 {
			dt = 0
		}
		st.advance(dt)
	}
}

// RunPlanned simulates inst under a planning scheduler and returns the
// schedule trace. The result is valid until the next call on e.
func (e *Engine) RunPlanned(inst *model.Instance, pl Planner) (*model.Schedule, error) {
	return e.st.runPlanned(inst, pl)
}

// RunList simulates inst under the given priority policy on a fresh engine
// and returns a caller-owned schedule trace.
func RunList(inst *model.Instance, pol Policy) (*model.Schedule, error) {
	return NewEngine().RunList(inst, pol)
}

// state is the mutable engine state shared by both drivers. Every slice is
// retained across reset calls and regrown only when an instance is larger
// than all previous ones.
type state struct {
	ctx     Ctx
	inst    *model.Instance
	nextArr int // index into inst.Jobs of the next unreleased job
	doneCnt int
	workTol []float64 // absolute completion tolerance per job

	sched model.Schedule // reused output trace

	order    []model.JobID // active jobs in priority order
	assign   []int         // machine -> job (-1 idle)
	rate     []float64     // job -> aggregate service rate
	prevRate []float64     // rate at the previous event (event-heap delta)
	running  []model.JobID // jobs with rate > 0, priority order
	cursor   []int         // planned driver: next plan slice per machine
	events   eventHeap     // pending completion instants at current rates
}

// grow returns s resized to length n, reusing its backing array when large
// enough. Contents are unspecified; callers refill what they read.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// reset prepares the state for a new instance, reusing all buffers.
//
//stretch:noalloc
func (st *state) reset(inst *model.Instance) {
	n := inst.NumJobs()
	m := inst.Platform.NumMachines()
	st.inst = inst
	st.nextArr = 0
	st.doneCnt = 0

	st.ctx.Inst = inst
	st.ctx.managed = true
	st.ctx.Remaining = grow(st.ctx.Remaining, n)
	st.ctx.Released = grow(st.ctx.Released, n)
	st.ctx.Done = grow(st.ctx.Done, n)
	st.ctx.active = grow(st.ctx.active, n)[:0]
	st.workTol = grow(st.workTol, n)
	st.order = grow(st.order, n)[:0]
	st.assign = grow(st.assign, m)
	st.rate = grow(st.rate, n)
	st.prevRate = grow(st.prevRate, n)
	st.running = grow(st.running, n)[:0]
	st.cursor = grow(st.cursor, m)
	st.events.reset(n)
	st.sched.Reset(inst)

	// The completion tolerance is relative to the whole instance, not just
	// the job: planners built on float solvers (max-flow, LP) are accurate
	// to ~relTol·ΣW, and a plan may under-serve one small job by that much.
	total := inst.TotalWork()
	for j := range inst.Jobs {
		st.ctx.Remaining[j] = inst.Jobs[j].Size
		st.ctx.Released[j] = false
		st.ctx.Done[j] = false
		st.rate[j] = 0
		st.prevRate[j] = 0
		st.workTol[j] = relTol * (inst.Jobs[j].Size + total)
	}
	st.releaseUpTo(st.startTime())
	st.ctx.Now = st.startTime()
}

func (st *state) startTime() float64 {
	if st.inst.NumJobs() == 0 {
		return 0
	}
	return st.inst.Jobs[0].Release
}

// releaseUpTo marks every job released by time t and appends it to the
// active set. Jobs are numbered by increasing release, so appending keeps
// the set in ID order.
//
//stretch:noalloc
func (st *state) releaseUpTo(t float64) {
	for st.nextArr < st.inst.NumJobs() && st.inst.Jobs[st.nextArr].Release <= t+relTol*(1+t) {
		st.ctx.Released[st.nextArr] = true
		st.ctx.active = append(st.ctx.active, model.JobID(st.nextArr))
		st.nextArr++
	}
}

// removeActive deletes j from the active set, preserving ID order.
//
//stretch:noalloc
func (st *state) removeActive(j model.JobID) {
	a := st.ctx.active
	for i, id := range a {
		if id == j {
			st.ctx.active = append(a[:i], a[i+1:]...)
			return
		}
	}
}

func (st *state) allDone() bool { return st.doneCnt == st.inst.NumJobs() }

//stretch:noalloc
func (st *state) timeToNextArrival() float64 {
	if st.nextArr >= st.inst.NumJobs() {
		return math.Inf(1)
	}
	dt := st.inst.Jobs[st.nextArr].Release - st.ctx.Now
	if dt < 0 {
		return 0
	}
	return dt
}

//stretch:noalloc
func (st *state) advanceToNextArrival() bool {
	if st.nextArr >= st.inst.NumJobs() {
		return false
	}
	st.ctx.Now = st.inst.Jobs[st.nextArr].Release
	st.releaseUpTo(st.ctx.Now)
	return true
}

// priorityLess is the total order the drivers sort by: the policy's strict
// order with ties broken by job ID.
func priorityLess(pol Policy, ctx *Ctx, a, b model.JobID) bool {
	if pol.Less(ctx, a, b) {
		return true
	}
	if pol.Less(ctx, b, a) {
		return false
	}
	return a < b
}

// SortByPriority sorts order in place by pol's strict order with ties
// broken by job ID — the exact sequence the engine drivers use, exported
// so external event loops (the serving daemon) rank jobs identically.
// slices.SortFunc is generic — no reflect-based swapper, and the
// comparison closure does not escape — so unlike sort.SliceStable it
// allocates nothing (enforced by TestRunListSteadyStateAllocs).
// priorityLess is a total order (ties break by job ID), so the unstable
// sort still produces a unique, deterministic sequence.
//
//stretch:noalloc
func SortByPriority(pol Policy, ctx *Ctx, order []model.JobID) {
	slices.SortFunc(order, func(a, b model.JobID) int { //stretch:alloc-ok — non-escaping comparison closure
		if pol.Less(ctx, a, b) {
			return -1
		}
		if pol.Less(ctx, b, a) {
			return 1
		}
		// Equal policy priority: break ties by job ID (total order).
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	})
}

//stretch:noalloc
func (st *state) sortOrder(pol Policy) {
	SortByPriority(pol, &st.ctx, st.order)
}

// AllocateGreedy applies the §3 spatial rule: walk jobs in priority order,
// give each all still-free eligible machines. It fills assign (machine →
// job, -1 for idle, length NumMachines) and rate (job → aggregate rate,
// indexed by job ID), and appends the jobs holding a positive rate to
// running in priority order, returning the extended slice. Exported so
// external event loops share the engine's allocation semantics exactly.
//
//stretch:noalloc
func AllocateGreedy(inst *model.Instance, order []model.JobID, assign []int, rate []float64, running []model.JobID) []model.JobID {
	m := inst.Platform.NumMachines()
	for i := 0; i < m; i++ {
		assign[i] = -1
	}
	for _, j := range order {
		rate[j] = 0
	}
	free := m
	for _, j := range order {
		if free == 0 {
			break
		}
		for _, mid := range inst.Eligible(j) {
			if assign[mid] == -1 {
				assign[mid] = int(j)
				rate[j] += inst.Platform.Machine(mid).Speed
				free--
			}
		}
	}
	for _, j := range order {
		if rate[j] > 0 {
			running = append(running, j)
		}
	}
	return running
}

// allocate runs AllocateGreedy over the state's buffers.
//
//stretch:noalloc
func (st *state) allocate(order []model.JobID) {
	st.running = AllocateGreedy(st.inst, order, st.assign, st.rate, st.running[:0])
}

// refreshEvents reconciles the completion-event heap with the rates chosen
// by the last allocation. A job's predicted completion Now + ρ_j/rate_j is
// invariant while its rate holds, so only jobs whose rate actually changed
// pay the O(log n) heap update; in steady state that is a handful per
// event, not the whole active set.
//
//stretch:noalloc
func (st *state) refreshEvents() {
	for _, j := range st.order {
		r := st.rate[j]
		if r == st.prevRate[j] {
			continue
		}
		if r == 0 {
			st.events.remove(j)
		} else {
			st.events.set(j, st.ctx.Now+st.ctx.Remaining[j]/r)
		}
		st.prevRate[j] = r
	}
}

// advance moves time forward by dt under st.assign/st.rate, emitting slices
// and completing jobs whose remaining work reaches zero.
//
//stretch:noalloc
func (st *state) advance(dt float64) {
	t0 := st.ctx.Now
	t1 := t0 + dt
	if dt > 0 {
		for mid, j := range st.assign {
			if j >= 0 {
				st.sched.AddSlice(model.Slice{
					Machine: model.MachineID(mid), Job: model.JobID(j), Start: t0, End: t1,
				})
			}
		}
		for _, j := range st.running {
			st.ctx.Remaining[j] -= st.rate[j] * dt
		}
	}
	st.ctx.Now = t1
	for _, j := range st.running {
		if !st.ctx.Done[j] && st.ctx.Remaining[j] <= st.workTol[j] {
			st.ctx.Remaining[j] = 0
			st.ctx.Done[j] = true
			st.doneCnt++
			st.sched.Completion[j] = t1
			st.removeActive(j)
			st.events.remove(j)
			st.prevRate[j] = 0
		}
	}
	st.releaseUpTo(t1)
}
