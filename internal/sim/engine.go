// Package sim is the discrete-event simulation engine for divisible loads
// with negligible communication — the repository's substitute for the
// SimGrid toolkit used by the paper (§5).
//
// The model makes an exact fluid simulation possible: at any instant each
// machine serves at most one job at its full speed, a job may span several
// machines, and rates only change at events (releases, completions, plan
// breakpoints). The engine therefore advances from event to event in closed
// form; there is no time-stepping error.
//
// Two drivers are provided:
//
//   - RunList executes a priority-list policy with the greedy spatial rule
//     of §3: "while some processors are idle, select the job with the
//     highest priority and distribute its processing on all appropriate
//     available processors".
//   - RunPlanned executes schedulers that emit explicit per-machine
//     timetables (the offline optimal and the LP-based online heuristics),
//     re-invoking the planner at every job arrival.
package sim

import (
	"fmt"
	"math"
	"sort"

	"stretchsched/internal/model"
)

// Ctx is the read-only state handed to policies and planners at each
// decision instant.
type Ctx struct {
	Inst      *model.Instance
	Now       float64
	Remaining []float64 // remaining work per job (0 when done)
	Released  []bool
	Done      []bool
}

// Active returns the released, unfinished jobs in ID order.
func (c *Ctx) Active() []model.JobID {
	var out []model.JobID
	for j := range c.Remaining {
		if c.Released[j] && !c.Done[j] {
			out = append(out, model.JobID(j))
		}
	}
	return out
}

// RemainingAloneTime returns the time job j would still need alone on its
// eligible machines: ρ_j(t) / Σ_{i∈elig(j)} speed_i.
func (c *Ctx) RemainingAloneTime(j model.JobID) float64 {
	return c.Remaining[j] / c.Inst.Platform.AggregateSpeed(c.Inst.Jobs[j].Databank)
}

// Policy is a dynamic priority order over active jobs. OnEvent runs at every
// decision instant (start, release, completion) before comparisons, letting
// stateful policies (deadline-based, pseudo-stretch) refresh themselves.
type Policy interface {
	Name() string
	Init(inst *model.Instance)
	OnEvent(ctx *Ctx)
	// Less reports whether a must be served strictly before b.
	Less(ctx *Ctx, a, b model.JobID) bool
}

// relTol is the relative numeric tolerance of the engine.
const relTol = 1e-9

// maxEvents caps the number of engine iterations as a defence against
// non-advancing policies; realistic runs are far below it.
const maxEvents = 10_000_000

// RunList simulates inst under the given priority policy and returns the
// complete schedule trace.
func RunList(inst *model.Instance, pol Policy) (*model.Schedule, error) {
	pol.Init(inst)
	st := newState(inst)
	sched := model.NewSchedule(inst)

	for ev := 0; ; ev++ {
		if ev > maxEvents {
			return nil, fmt.Errorf("sim: %s exceeded event budget", pol.Name())
		}
		if st.allDone() {
			return sched, nil
		}
		if !st.anyActive() {
			if !st.advanceToNextArrival() {
				return nil, fmt.Errorf("sim: %s deadlocked with unfinished jobs", pol.Name())
			}
			continue
		}
		pol.OnEvent(&st.ctx)
		order := st.ctx.Active()
		sort.SliceStable(order, func(a, b int) bool {
			ja, jb := order[a], order[b]
			if pol.Less(&st.ctx, ja, jb) {
				return true
			}
			if pol.Less(&st.ctx, jb, ja) {
				return false
			}
			return ja < jb
		})

		assign, rate := st.allocate(order)

		// Horizon: next arrival or earliest completion at current rates.
		dt := st.timeToNextArrival()
		for _, j := range order {
			if rate[j] > 0 {
				dt = math.Min(dt, st.ctx.Remaining[j]/rate[j])
			}
		}
		if math.IsInf(dt, 1) {
			return nil, fmt.Errorf("sim: %s has active jobs with no eligible machine and no future arrivals", pol.Name())
		}
		if dt < 0 {
			dt = 0
		}
		st.advance(dt, assign, rate, sched)
	}
}

// state is the mutable engine state shared by both drivers.
type state struct {
	ctx     Ctx
	inst    *model.Instance
	nextArr int // index into inst.Jobs of the next unreleased job
	doneCnt int
	workTol []float64 // absolute completion tolerance per job
}

func newState(inst *model.Instance) *state {
	n := inst.NumJobs()
	st := &state{
		inst: inst,
		ctx: Ctx{
			Inst:      inst,
			Remaining: make([]float64, n),
			Released:  make([]bool, n),
			Done:      make([]bool, n),
		},
		workTol: make([]float64, n),
	}
	// The completion tolerance is relative to the whole instance, not just
	// the job: planners built on float solvers (max-flow, LP) are accurate
	// to ~relTol·ΣW, and a plan may under-serve one small job by that much.
	total := inst.TotalWork()
	for j := range inst.Jobs {
		st.ctx.Remaining[j] = inst.Jobs[j].Size
		st.workTol[j] = relTol * (inst.Jobs[j].Size + total)
	}
	st.releaseUpTo(st.startTime())
	st.ctx.Now = st.startTime()
	return st
}

func (st *state) startTime() float64 {
	if st.inst.NumJobs() == 0 {
		return 0
	}
	return st.inst.Jobs[0].Release
}

func (st *state) releaseUpTo(t float64) {
	for st.nextArr < st.inst.NumJobs() && st.inst.Jobs[st.nextArr].Release <= t+relTol*(1+t) {
		st.ctx.Released[st.nextArr] = true
		st.nextArr++
	}
}

func (st *state) allDone() bool { return st.doneCnt == st.inst.NumJobs() }

func (st *state) anyActive() bool {
	for j := range st.ctx.Remaining {
		if st.ctx.Released[j] && !st.ctx.Done[j] {
			return true
		}
	}
	return false
}

func (st *state) timeToNextArrival() float64 {
	if st.nextArr >= st.inst.NumJobs() {
		return math.Inf(1)
	}
	dt := st.inst.Jobs[st.nextArr].Release - st.ctx.Now
	if dt < 0 {
		return 0
	}
	return dt
}

func (st *state) advanceToNextArrival() bool {
	if st.nextArr >= st.inst.NumJobs() {
		return false
	}
	st.ctx.Now = st.inst.Jobs[st.nextArr].Release
	st.releaseUpTo(st.ctx.Now)
	return true
}

// allocate applies the §3 spatial rule: walk jobs in priority order, give
// each all still-free eligible machines. It returns machine→job assignment
// (-1 for idle) and per-job aggregate rates.
func (st *state) allocate(order []model.JobID) (assign []int, rate []float64) {
	m := st.inst.Platform.NumMachines()
	assign = make([]int, m)
	for i := range assign {
		assign[i] = -1
	}
	rate = make([]float64, st.inst.NumJobs())
	free := m
	for _, j := range order {
		if free == 0 {
			break
		}
		for _, mid := range st.inst.Eligible(j) {
			if assign[mid] == -1 {
				assign[mid] = int(j)
				rate[j] += st.inst.Platform.Machine(mid).Speed
				free--
			}
		}
	}
	return assign, rate
}

// advance moves time forward by dt under the given machine assignment,
// emitting slices and completing jobs whose remaining work reaches zero.
func (st *state) advance(dt float64, assign []int, rate []float64, sched *model.Schedule) {
	t0 := st.ctx.Now
	t1 := t0 + dt
	if dt > 0 {
		for mid, j := range assign {
			if j >= 0 {
				sched.AddSlice(model.Slice{
					Machine: model.MachineID(mid), Job: model.JobID(j), Start: t0, End: t1,
				})
			}
		}
		for j := range rate {
			if rate[j] > 0 {
				st.ctx.Remaining[j] -= rate[j] * dt
			}
		}
	}
	st.ctx.Now = t1
	for j := range rate {
		if !st.ctx.Done[j] && st.ctx.Released[j] && rate[j] > 0 && st.ctx.Remaining[j] <= st.workTol[j] {
			st.ctx.Remaining[j] = 0
			st.ctx.Done[j] = true
			st.doneCnt++
			sched.Completion[j] = t1
		}
	}
	st.releaseUpTo(t1)
}
