package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"stretchsched/internal/model"
)

// randomInstance builds a mixed restricted-availability instance without
// importing internal/workload (kept dependency-free, like the rest of the
// engine tests).
func randomInstance(t testing.TB, seed int64, nMachines, nBanks, nJobs int) *model.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ms := make([]model.Machine, nMachines)
	for i := range ms {
		var banks []model.DatabankID
		for b := 0; b < nBanks; b++ {
			if i == 0 || rng.Float64() < 0.6 { // machine 0 hosts everything
				banks = append(banks, model.DatabankID(b))
			}
		}
		ms[i] = model.Machine{Speed: 0.5 + rng.Float64()*2, Databanks: banks}
	}
	p, err := model.NewPlatform(ms, nBanks)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]model.Job, nJobs)
	for j := range jobs {
		jobs[j] = model.Job{
			Release:  rng.Float64() * 20,
			Size:     0.5 + rng.Float64()*8,
			Databank: model.DatabankID(rng.Intn(nBanks)),
		}
	}
	inst, err := model.NewInstance(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestRunListSteadyStateAllocs is the allocation regression test promised
// by DESIGN.md: once an Engine has warmed up on an instance, replaying the
// list driver must not allocate at all.
func TestRunListSteadyStateAllocs(t *testing.T) {
	inst := randomInstance(t, 99, 4, 3, 40)
	eng := NewEngine()
	pol := srpt{}
	if _, err := eng.RunList(inst, pol); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := eng.RunList(inst, pol); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state RunList allocates %.1f objects/op, want 0", allocs)
	}
}

// referenceRunList is the engine as originally shipped — per-event active
// scans, sort.SliceStable ordering, fresh buffers everywhere. It is kept
// here as the semantic oracle for the incremental/heap-based rewrite.
func referenceRunList(inst *model.Instance, pol Policy) (*model.Schedule, error) {
	pol.Init(inst)
	n := inst.NumJobs()
	ctx := Ctx{
		Inst:      inst,
		Remaining: make([]float64, n),
		Released:  make([]bool, n),
		Done:      make([]bool, n),
	}
	workTol := make([]float64, n)
	total := inst.TotalWork()
	for j := range inst.Jobs {
		ctx.Remaining[j] = inst.Jobs[j].Size
		workTol[j] = relTol * (inst.Jobs[j].Size + total)
	}
	nextArr, doneCnt := 0, 0
	release := func(t float64) {
		for nextArr < n && inst.Jobs[nextArr].Release <= t+relTol*(1+t) {
			ctx.Released[nextArr] = true
			nextArr++
		}
	}
	if n > 0 {
		ctx.Now = inst.Jobs[0].Release
		release(ctx.Now)
	}
	sched := model.NewSchedule(inst)
	for {
		if doneCnt == n {
			return sched, nil
		}
		order := ctx.Active()
		if len(order) == 0 {
			if nextArr >= n {
				return nil, nil
			}
			ctx.Now = inst.Jobs[nextArr].Release
			release(ctx.Now)
			continue
		}
		pol.OnEvent(&ctx)
		sort.SliceStable(order, func(a, b int) bool {
			return priorityLess(pol, &ctx, order[a], order[b])
		})
		m := inst.Platform.NumMachines()
		assign := make([]int, m)
		for i := range assign {
			assign[i] = -1
		}
		rate := make([]float64, n)
		free := m
		for _, j := range order {
			if free == 0 {
				break
			}
			for _, mid := range inst.Eligible(j) {
				if assign[mid] == -1 {
					assign[mid] = int(j)
					rate[j] += inst.Platform.Machine(mid).Speed
					free--
				}
			}
		}
		dt := math.Inf(1)
		if nextArr < n {
			dt = math.Max(0, inst.Jobs[nextArr].Release-ctx.Now)
		}
		for _, j := range order {
			if rate[j] > 0 {
				dt = math.Min(dt, ctx.Remaining[j]/rate[j])
			}
		}
		if math.IsInf(dt, 1) {
			return nil, nil
		}
		t0, t1 := ctx.Now, ctx.Now+dt
		if dt > 0 {
			for mid, j := range assign {
				if j >= 0 {
					sched.AddSlice(model.Slice{
						Machine: model.MachineID(mid), Job: model.JobID(j), Start: t0, End: t1,
					})
				}
			}
			for j := range rate {
				if rate[j] > 0 {
					ctx.Remaining[j] -= rate[j] * dt
				}
			}
		}
		ctx.Now = t1
		for j := range rate {
			if !ctx.Done[j] && ctx.Released[j] && rate[j] > 0 && ctx.Remaining[j] <= workTol[j] {
				ctx.Remaining[j] = 0
				ctx.Done[j] = true
				doneCnt++
				sched.Completion[j] = t1
			}
		}
		release(t1)
	}
}

// TestRunListMatchesReference replays random instances through the
// incremental engine and the straight-line reference implementation. The
// event-heap keys are computed once per rate change instead of per event,
// which can move completions by float-rounding dust, so agreement is
// checked to a relative 1e-9 — far tighter than the engine's own tolerance.
func TestRunListMatchesReference(t *testing.T) {
	eng := NewEngine()
	for trial := int64(0); trial < 30; trial++ {
		inst := randomInstance(t, 1000+trial, 1+int(trial%5), 1+int(trial%3), 3+int(trial*7%50))
		for _, pol := range []Policy{fcfs{}, srpt{}} {
			want, err := referenceRunList(inst, pol)
			if err != nil || want == nil {
				t.Fatalf("trial %d: reference failed", trial)
			}
			got, err := eng.RunList(inst, pol)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, pol.Name(), err)
			}
			for j := range want.Completion {
				w, g := want.Completion[j], got.Completion[j]
				if math.Abs(w-g) > 1e-9*(1+math.Abs(w)) {
					t.Fatalf("trial %d %s: job %d completes at %v, reference %v",
						trial, pol.Name(), j, g, w)
				}
			}
			if err := got.Validate(inst, 1e-6); err != nil {
				t.Fatalf("trial %d %s: %v", trial, pol.Name(), err)
			}
		}
	}
}

// TestEngineReuseMatchesFresh interleaves instances of very different sizes
// through one engine and checks each run is bit-identical to a fresh
// engine's — the buffer-reuse path must leak nothing across runs.
func TestEngineReuseMatchesFresh(t *testing.T) {
	shared := NewEngine()
	sizes := []int{40, 3, 25, 1, 60, 7}
	for i, nj := range sizes {
		inst := randomInstance(t, 7000+int64(i), 2+i%4, 1+i%3, nj)
		for _, pol := range []Policy{fcfs{}, srpt{}} {
			fresh, err := RunList(inst, pol)
			if err != nil {
				t.Fatal(err)
			}
			reused, err := shared.RunList(inst, pol)
			if err != nil {
				t.Fatal(err)
			}
			for j := range fresh.Completion {
				if fresh.Completion[j] != reused.Completion[j] {
					t.Fatalf("size %d %s: job %d: reused %v, fresh %v",
						nj, pol.Name(), j, reused.Completion[j], fresh.Completion[j])
				}
			}
		}
	}
}

// TestEventHeap exercises the indexed heap directly: set, update up and
// down, removal of arbitrary members, and full drain ordering.
func TestEventHeap(t *testing.T) {
	var h eventHeap
	h.reset(10)
	if !h.empty() || !math.IsInf(h.minKey(), 1) {
		t.Fatal("fresh heap not empty")
	}
	keys := []float64{5, 3, 8, 1, 9, 2, 7}
	for j, k := range keys {
		h.set(model.JobID(j), k)
	}
	if h.minKey() != 1 {
		t.Fatalf("minKey = %v, want 1", h.minKey())
	}
	h.set(3, 10) // update min upward
	if h.minKey() != 2 {
		t.Fatalf("after update, minKey = %v, want 2", h.minKey())
	}
	h.set(0, 0.5) // update downward
	if h.minKey() != 0.5 {
		t.Fatalf("after decrease, minKey = %v, want 0.5", h.minKey())
	}
	h.remove(0)
	h.remove(0) // double-remove is a no-op
	if h.minKey() != 2 {
		t.Fatalf("after remove, minKey = %v, want 2", h.minKey())
	}
	// Drain and verify monotone keys.
	prev := math.Inf(-1)
	for !h.empty() {
		k := h.minKey()
		if k < prev {
			t.Fatalf("heap drained out of order: %v after %v", k, prev)
		}
		prev = k
		h.remove(h.heap[0])
	}
	// Reset must clear stale membership.
	h.set(4, 1)
	h.reset(10)
	if !h.empty() {
		t.Fatal("reset left members")
	}
	for j := 0; j < 10; j++ {
		if h.pos[j] != -1 {
			t.Fatalf("reset left pos[%d] = %d", j, h.pos[j])
		}
	}
}
