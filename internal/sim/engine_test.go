package sim

import (
	"math"
	"math/rand"
	"testing"

	"stretchsched/internal/model"
)

// fcfs is a minimal local policy to avoid importing internal/policy (which
// would create an import cycle in tests via sim).
type fcfs struct{}

func (fcfs) Name() string         { return "fcfs" }
func (fcfs) Init(*model.Instance) {}
func (fcfs) OnEvent(*Ctx)         {}
func (fcfs) Less(ctx *Ctx, a, b model.JobID) bool {
	ra, rb := ctx.Inst.Jobs[a].Release, ctx.Inst.Jobs[b].Release
	if ra != rb {
		return ra < rb
	}
	return a < b
}

// srpt is a minimal dynamic policy for engine tests.
type srpt struct{}

func (srpt) Name() string         { return "srpt" }
func (srpt) Init(*model.Instance) {}
func (srpt) OnEvent(*Ctx)         {}
func (srpt) Less(ctx *Ctx, a, b model.JobID) bool {
	return ctx.RemainingAloneTime(a) < ctx.RemainingAloneTime(b)
}

func uniInstance(t *testing.T, speeds []float64, jobs []model.Job) *model.Instance {
	t.Helper()
	p, err := model.Uniform(speeds)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestRunListSingleJob(t *testing.T) {
	inst := uniInstance(t, []float64{2}, []model.Job{{Release: 1, Size: 6, Databank: 0}})
	s, err := RunList(inst, fcfs{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Completion[0]; math.Abs(got-4) > 1e-9 {
		t.Fatalf("completion = %v, want 4", got)
	}
	if err := s.Validate(inst, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunListUniformSharing(t *testing.T) {
	// Two machines (speed 1 and 3); a single job spreads over both.
	inst := uniInstance(t, []float64{1, 3}, []model.Job{{Release: 0, Size: 8, Databank: 0}})
	s, err := RunList(inst, fcfs{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Completion[0]; math.Abs(got-2) > 1e-9 {
		t.Fatalf("completion = %v, want 2", got)
	}
}

func TestRunListFCFSSequence(t *testing.T) {
	// Uniform platform: FCFS serialises jobs on the equivalent processor.
	inst := uniInstance(t, []float64{1, 1}, []model.Job{
		{Release: 0, Size: 4, Databank: 0}, // runs [0,2) on both machines
		{Release: 1, Size: 2, Databank: 0}, // runs [2,3)
	})
	s, err := RunList(inst, fcfs{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Completion[0]-2) > 1e-9 || math.Abs(s.Completion[1]-3) > 1e-9 {
		t.Fatalf("completions = %v", s.Completion)
	}
	if err := s.Validate(inst, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunListSRPTPreempts(t *testing.T) {
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 10, Databank: 0},
		{Release: 2, Size: 1, Databank: 0},
	})
	s, err := RunList(inst, srpt{})
	if err != nil {
		t.Fatal(err)
	}
	// Small job preempts at t=2, finishes at 3; big job resumes, ends at 11.
	if math.Abs(s.Completion[1]-3) > 1e-9 || math.Abs(s.Completion[0]-11) > 1e-9 {
		t.Fatalf("completions = %v", s.Completion)
	}
}

func TestRunListRestrictedAvailability(t *testing.T) {
	// Machine 0 hosts db0 only; machine 1 hosts db1 only. Two jobs, one per
	// databank, run concurrently on disjoint machines.
	p, err := model.NewPlatform([]model.Machine{
		{Speed: 1, Databanks: []model.DatabankID{0}},
		{Speed: 2, Databanks: []model.DatabankID{1}},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(p, []model.Job{
		{Release: 0, Size: 3, Databank: 0},
		{Release: 0, Size: 4, Databank: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := RunList(inst, fcfs{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Completion[0]-3) > 1e-9 || math.Abs(s.Completion[1]-2) > 1e-9 {
		t.Fatalf("completions = %v", s.Completion)
	}
	if err := s.Validate(inst, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunListLowerPriorityUsesLeftoverMachines(t *testing.T) {
	// Job 0 (db0) only runs on machine 0; job 1 (db1) can use both machines
	// but has lower FCFS priority, so it gets only machine 1 while job 0 is
	// active.
	p, err := model.NewPlatform([]model.Machine{
		{Speed: 1, Databanks: []model.DatabankID{0, 1}},
		{Speed: 1, Databanks: []model.DatabankID{1}},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(p, []model.Job{
		{Release: 0, Size: 2, Databank: 0},
		{Release: 0, Size: 4, Databank: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := RunList(inst, fcfs{})
	if err != nil {
		t.Fatal(err)
	}
	// Job 0: machine 0 for [0,2). Job 1: machine 1 for [0,2), then both
	// machines: remaining 2 units at rate 2 → done at 3.
	if math.Abs(s.Completion[0]-2) > 1e-9 || math.Abs(s.Completion[1]-3) > 1e-9 {
		t.Fatalf("completions = %v", s.Completion)
	}
	if err := s.Validate(inst, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunListIdleGapBetweenArrivals(t *testing.T) {
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 1, Databank: 0},
		{Release: 10, Size: 1, Databank: 0},
	})
	s, err := RunList(inst, fcfs{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Completion[1]-11) > 1e-9 {
		t.Fatalf("completions = %v", s.Completion)
	}
}

func TestRunListEmptyInstance(t *testing.T) {
	inst := uniInstance(t, []float64{1}, nil)
	s, err := RunList(inst, fcfs{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Slices) != 0 {
		t.Fatal("slices for empty instance")
	}
}

func TestRunListRandomValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		nm := 1 + rng.Intn(3)
		nb := 1 + rng.Intn(2)
		ms := make([]model.Machine, nm)
		for i := range ms {
			var banks []model.DatabankID
			for b := 0; b < nb; b++ {
				if rng.Float64() < 0.7 || (i == 0) { // machine 0 hosts all
					banks = append(banks, model.DatabankID(b))
				}
			}
			ms[i] = model.Machine{Speed: 0.5 + rng.Float64()*2, Databanks: banks}
		}
		p, err := model.NewPlatform(ms, nb)
		if err != nil {
			t.Fatal(err)
		}
		nj := 1 + rng.Intn(8)
		jobs := make([]model.Job, nj)
		for j := range jobs {
			jobs[j] = model.Job{
				Release:  rng.Float64() * 10,
				Size:     0.5 + rng.Float64()*5,
				Databank: model.DatabankID(rng.Intn(nb)),
			}
		}
		inst, err := model.NewInstance(p, jobs)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range []Policy{fcfs{}, srpt{}} {
			s, err := RunList(inst, pol)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, pol.Name(), err)
			}
			if err := s.Validate(inst, 1e-6); err != nil {
				t.Fatalf("trial %d %s: %v", trial, pol.Name(), err)
			}
		}
	}
}

func TestCtxHelpers(t *testing.T) {
	inst := uniInstance(t, []float64{2}, []model.Job{
		{Release: 0, Size: 4, Databank: 0},
		{Release: 100, Size: 4, Databank: 0},
	})
	ctx := Ctx{
		Inst:      inst,
		Remaining: []float64{3, 4},
		Released:  []bool{true, false},
		Done:      []bool{false, false},
	}
	if got := ctx.Active(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("active = %v", got)
	}
	if got := ctx.RemainingAloneTime(0); got != 1.5 {
		t.Fatalf("remaining alone = %v", got)
	}
}
