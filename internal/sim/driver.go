package sim

import (
	"math"
	"slices"

	"stretchsched/internal/model"
)

// Driver maintains a policy-facing Ctx for an external event loop — the
// serving daemon — where jobs arrive and complete in arbitrary order and
// job IDs are recycled slots (model.Stream) rather than the monotonically
// released prefix the batch engine assumes. It exposes the same decision
// primitives the engine uses internally (SortByPriority, AllocateGreedy),
// so a daemon replanning at every event ranks and places jobs exactly as
// RunList would; what it deliberately does not own is the clock policy:
// the caller decides when to advance and by how much.
//
// A Driver is single-goroutine, like the loop that owns it.
type Driver struct {
	ctx     Ctx
	order   []model.JobID // active jobs in priority order after Replan
	assign  []int         // machine -> job (-1 idle)
	rate    []float64     // job -> aggregate service rate
	running []model.JobID // jobs with rate > 0, priority order
}

// NewDriver returns a driver bound to inst, which may be the live view of
// a model.Stream: call Sync after the stream grows its slot table.
func NewDriver(inst *model.Instance) *Driver {
	d := &Driver{}
	d.ctx.Inst = inst
	d.ctx.managed = true
	d.Sync()
	return d
}

// Sync resizes the per-job and per-machine buffers to the instance's
// current slot count, preserving existing slot state. Call after the
// bound stream appends slots.
func (d *Driver) Sync() {
	n := d.ctx.Inst.NumJobs()
	for len(d.ctx.Remaining) < n {
		d.ctx.Remaining = append(d.ctx.Remaining, 0)
		d.ctx.Released = append(d.ctx.Released, false)
		d.ctx.Done = append(d.ctx.Done, false)
		d.rate = append(d.rate, 0)
	}
	m := d.ctx.Inst.Platform.NumMachines()
	for len(d.assign) < m {
		d.assign = append(d.assign, -1)
	}
}

// Ctx returns the live context. It is owned by the driver; callers hand it
// to Policy.OnEvent/Less and solver bridges but must not mutate it.
func (d *Driver) Ctx() *Ctx { return &d.ctx }

// Now returns the driver's current (virtual) time.
func (d *Driver) Now() float64 { return d.ctx.Now }

// SetNow jumps the clock without serving work — initialization and
// checkpoint restore only; use Advance to move time under the current
// allocation.
func (d *Driver) SetNow(t float64) { d.ctx.Now = t }

// Arrive marks slot id released with the given remaining work and inserts
// it into the active set. Slot recycling means id may be lower than
// existing active IDs, so insertion is by binary search, keeping the set
// in ID order as every Ctx consumer assumes.
func (d *Driver) Arrive(id model.JobID, work float64) {
	d.Sync()
	d.ctx.Released[id] = true
	d.ctx.Done[id] = false
	d.ctx.Remaining[id] = work
	d.rate[id] = 0
	i, _ := slices.BinarySearch(d.ctx.active, id)
	d.ctx.active = slices.Insert(d.ctx.active, i, id)
}

// Complete retires slot id from the active set and clears its released
// flag, making the slot invisible to solvers (offline.FromContext only
// surfaces released, unfinished jobs) and free for stream recycling.
func (d *Driver) Complete(id model.JobID) {
	d.ctx.Released[id] = false
	d.ctx.Done[id] = false
	d.ctx.Remaining[id] = 0
	d.rate[id] = 0
	if i, ok := slices.BinarySearch(d.ctx.active, id); ok {
		d.ctx.active = slices.Delete(d.ctx.active, i, i+1)
	}
}

// NumActive returns the number of released, unfinished jobs.
func (d *Driver) NumActive() int { return len(d.ctx.active) }

// Replan runs one engine decision step at the current instant: the
// policy's OnEvent refresh, the priority sort, and the §3 greedy
// allocation. After it returns, Running/Rate/Assign describe the chosen
// placement until the next Replan or Advance.
func (d *Driver) Replan(pol Policy) {
	pol.OnEvent(&d.ctx)
	d.order = append(d.order[:0], d.ctx.active...)
	SortByPriority(pol, &d.ctx, d.order)
	d.running = AllocateGreedy(d.ctx.Inst, d.order, d.assign, d.rate, d.running[:0])
}

// Running returns the jobs with a positive service rate in priority order,
// valid until the next Replan. Owned by the driver; do not mutate.
func (d *Driver) Running() []model.JobID { return d.running }

// Assign returns the machine → job assignment (-1 idle), valid until the
// next Replan. Owned by the driver; do not mutate.
func (d *Driver) Assign() []int { return d.assign }

// Rate returns slot id's aggregate service rate under the last Replan.
func (d *Driver) Rate(id model.JobID) float64 { return d.rate[id] }

// Remaining returns slot id's remaining work.
func (d *Driver) Remaining(id model.JobID) float64 { return d.ctx.Remaining[id] }

// NextCompletion returns the earliest predicted completion instant among
// running jobs at current rates, ties broken by lowest slot ID — the
// deterministic event order the serving loop commits to its decision log.
// ok is false when nothing is running.
func (d *Driver) NextCompletion() (id model.JobID, at float64, ok bool) {
	at = math.Inf(1)
	for _, j := range d.running {
		t := d.ctx.Now + d.ctx.Remaining[j]/d.rate[j]
		if t < at {
			id, at, ok = j, t, true
		}
	}
	return id, at, ok
}

// Advance serves dt time units under the last Replan's rates and moves the
// clock. It does not detect completions — the caller advances exactly to
// predicted completion instants (NextCompletion) and retires jobs with
// Complete, keeping the event sequence bit-reproducible instead of
// tolerance-dependent.
func (d *Driver) Advance(dt float64) {
	if dt > 0 {
		for _, j := range d.running {
			d.ctx.Remaining[j] -= d.rate[j] * dt
			if d.ctx.Remaining[j] < 0 {
				d.ctx.Remaining[j] = 0
			}
		}
	}
	d.ctx.Now += dt
}

// Backlog returns the total remaining work of the active set — the
// load signal the cluster balancers compare across machines. On a
// work-conserving single platform it is invariant under the local policy,
// which makes least-backlog placement policy-independent.
func (d *Driver) Backlog() float64 {
	w := 0.0
	for _, j := range d.ctx.active {
		w += d.ctx.Remaining[j]
	}
	return w
}

// EstMaxStretch estimates the maximum realised stretch of the active set
// assuming no further arrivals: a job served at a positive rate finishes at
// its predicted instant; a starved job is bounded by the whole backlog
// draining at the platform's total speed. Rates reflect the last Replan, so
// call it after replanning (the cluster world consults it between the last
// event and the next placement). Zero when the machine is idle.
func (d *Driver) EstMaxStretch() float64 {
	sigma := d.ctx.Inst.Platform.TotalSpeed()
	backlog := d.Backlog()
	worst := 0.0
	for _, j := range d.ctx.active {
		var c float64
		if r := d.rate[j]; r > 0 {
			c = d.ctx.Now + d.ctx.Remaining[j]/r
		} else {
			c = d.ctx.Now + backlog/sigma
		}
		s := (c - d.ctx.Inst.Jobs[j].Release) / d.ctx.Inst.AloneTime(j)
		if s > worst {
			worst = s
		}
	}
	return worst
}

// RestoreActive rebuilds the active set and per-slot state from a
// checkpoint: ids must be the released, unfinished slots in ID order with
// rem their remaining work. Everything else (rates, order) is rebuilt by
// the next Replan.
func (d *Driver) RestoreActive(ids []model.JobID, rem []float64) {
	d.Sync()
	for i := range d.ctx.Remaining {
		d.ctx.Remaining[i] = 0
		d.ctx.Released[i] = false
		d.ctx.Done[i] = false
		d.rate[i] = 0
	}
	d.ctx.active = d.ctx.active[:0]
	for i, id := range ids {
		d.ctx.Released[id] = true
		d.ctx.Remaining[id] = rem[i]
		d.ctx.active = append(d.ctx.active, id)
	}
}
