package sim

import (
	"testing"

	"stretchsched/internal/model"
)

// srptTest orders by remaining alone time — enough policy dynamics to
// exercise the driver without importing internal/policy (a sim importer).
type srptTest struct{}

func (srptTest) Name() string         { return "srpt-test" }
func (srptTest) Init(*model.Instance) {}
func (srptTest) OnEvent(*Ctx)         {}
func (srptTest) Less(c *Ctx, a, b model.JobID) bool {
	return c.RemainingAloneTime(a) < c.RemainingAloneTime(b)
}

func driverPlatform(t *testing.T) *model.Platform {
	t.Helper()
	p, err := model.NewPlatform([]model.Machine{
		{Name: "A", Speed: 2, Databanks: []model.DatabankID{0}},
		{Name: "B", Speed: 1, Databanks: []model.DatabankID{0, 1}},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDriverEventLoop(t *testing.T) {
	p := driverPlatform(t)
	st := model.NewStream(p)
	d := NewDriver(st.Instance())

	// Two jobs on databank 0 (machines A+B, rate 3 combined) and one on
	// databank 1 (machine B only).
	a, _ := st.Add(model.Job{Release: 0, Size: 6, Databank: 0})
	b, _ := st.Add(model.Job{Release: 0, Size: 9, Databank: 0})
	c, _ := st.Add(model.Job{Release: 0, Size: 2, Databank: 1})
	for _, id := range []model.JobID{a, b, c} {
		d.Arrive(id, st.Instance().Jobs[id].Size)
	}
	if d.NumActive() != 3 {
		t.Fatalf("NumActive = %d, want 3", d.NumActive())
	}

	d.Replan(srptTest{})
	// SRPT alone times: a=2 (6/3), b=3, c=2 — tie a/c broken by ID, so a
	// takes both machines for bank 0... but machine B is shared: a grabs
	// A and B (rate 3); c then finds B taken (rate 0); b rate 0.
	if got := d.Rate(a); got != 3 {
		t.Fatalf("rate(a) = %v, want 3", got)
	}
	if d.Rate(b) != 0 || d.Rate(c) != 0 {
		t.Fatalf("rate(b)=%v rate(c)=%v, want 0,0", d.Rate(b), d.Rate(c))
	}
	id, at, ok := d.NextCompletion()
	if !ok || id != a || at != 2 {
		t.Fatalf("NextCompletion = %d@%v ok=%v, want %d@2", id, at, ok, a)
	}

	d.Advance(at - d.Now())
	d.Complete(a)
	if err := st.Remove(a); err != nil {
		t.Fatal(err)
	}
	if d.NumActive() != 2 || d.Now() != 2 {
		t.Fatalf("after first completion: active=%d now=%v", d.NumActive(), d.Now())
	}

	// Slot recycling: a new arrival reuses a's slot (lower ID than b, c).
	n, err := st.Add(model.Job{Release: 2, Size: 3, Databank: 0})
	if err != nil {
		t.Fatal(err)
	}
	if n != a {
		t.Fatalf("recycled slot = %d, want %d", n, a)
	}
	d.Arrive(n, 3)
	act := d.Ctx().Active()
	if len(act) != 3 || act[0] != n || act[1] != b || act[2] != c {
		t.Fatalf("active after recycled arrival = %v", act)
	}

	// Drain everything; the loop must terminate with time advancing.
	pol := srptTest{}
	for d.NumActive() > 0 {
		d.Replan(pol)
		id, at, ok := d.NextCompletion()
		if !ok {
			t.Fatal("active jobs but nothing running")
		}
		d.Advance(at - d.Now())
		d.Complete(id)
		if err := st.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	// Work conservation: total work 6+9+2+3 = 20 at total speed 3, but
	// bank-1 job c can only use machine B. Completion of the whole stream
	// happens no earlier than 20/3.
	if d.Now() < 20.0/3-1e-9 {
		t.Fatalf("drained at %v, before work bound %v", d.Now(), 20.0/3)
	}
}

func TestDriverRestoreActive(t *testing.T) {
	p := driverPlatform(t)
	st := model.NewStream(p)
	d := NewDriver(st.Instance())
	a, _ := st.Add(model.Job{Release: 0, Size: 6, Databank: 0})
	b, _ := st.Add(model.Job{Release: 0, Size: 4, Databank: 1})
	d.Arrive(a, 6)
	d.Arrive(b, 4)
	d.Replan(srptTest{})
	d.Advance(1)

	// Rebuild a second driver from the first one's visible state.
	slots, live, free := st.Snapshot(nil, nil, nil)
	st2 := model.NewStream(p)
	if err := st2.Restore(slots, live, free); err != nil {
		t.Fatal(err)
	}
	d2 := NewDriver(st2.Instance())
	act := d.Ctx().Active()
	rem := make([]float64, len(act))
	for i, id := range act {
		rem[i] = d.Remaining(id)
	}
	d2.RestoreActive(act, rem)
	d2.SetNow(d.Now())

	d.Replan(srptTest{})
	d2.Replan(srptTest{})
	i1, t1, ok1 := d.NextCompletion()
	i2, t2, ok2 := d2.NextCompletion()
	if i1 != i2 || t1 != t2 || ok1 != ok2 {
		t.Fatalf("restored driver diverged: %d@%v vs %d@%v", i1, t1, i2, t2)
	}
}
