package sim

import (
	"testing"

	"stretchsched/internal/model"
)

// lpt is an adversarially bad priority: longest remaining time first. The
// engine must still terminate with a valid schedule — scheduling quality is
// a policy property, correctness is an engine property.
type lpt struct{}

func (lpt) Name() string         { return "lpt" }
func (lpt) Init(*model.Instance) {}
func (lpt) OnEvent(*Ctx)         {}
func (lpt) Less(ctx *Ctx, a, b model.JobID) bool {
	return ctx.RemainingAloneTime(a) > ctx.RemainingAloneTime(b)
}

// flipflop alternates its preference at every event — a pathological
// dynamic priority that maximises preemption churn.
type flipflop struct{ parity bool }

func (f *flipflop) Name() string         { return "flipflop" }
func (f *flipflop) Init(*model.Instance) { f.parity = false }
func (f *flipflop) OnEvent(*Ctx)         { f.parity = !f.parity }
func (f *flipflop) Less(ctx *Ctx, a, b model.JobID) bool {
	if f.parity {
		return a < b
	}
	return a > b
}

func TestEngineSurvivesAdversarialPolicies(t *testing.T) {
	inst := uniInstance(t, []float64{1, 2}, []model.Job{
		{Release: 0, Size: 4, Databank: 0},
		{Release: 0.5, Size: 1, Databank: 0},
		{Release: 1, Size: 2, Databank: 0},
		{Release: 1.5, Size: 0.5, Databank: 0},
	})
	for _, pol := range []Policy{lpt{}, &flipflop{}} {
		s, err := RunList(inst, pol)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if err := s.Validate(inst, 1e-6); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
	}
}

// TestPlannedExecutorIgnoresUnreleasedJobs: a plan slice for a job that has
// not been released yet must be treated as idle slack, not executed early.
func TestPlannedExecutorIgnoresUnreleasedJobs(t *testing.T) {
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 1, Databank: 0},
		{Release: 5, Size: 1, Databank: 0},
	})
	plan := NewPlan(1)
	plan.Add(0, PlanSlice{Job: 0, Start: 0, End: 1})
	plan.Add(0, PlanSlice{Job: 1, Start: 1, End: 2}) // before release 5!
	plan.Add(0, PlanSlice{Job: 1, Start: 5, End: 6})
	s, err := RunPlanned(inst, &fixedPlanner{plan})
	if err != nil {
		t.Fatal(err)
	}
	if s.Completion[1] < 6-1e-9 {
		t.Fatalf("job 1 completed at %v before its legal slot", s.Completion[1])
	}
	if err := s.Validate(inst, 1e-6); err != nil {
		t.Fatal(err)
	}
}

// TestPlannedExecutorZeroLengthSegments: degenerate zero-length plan slices
// must not wedge the executor.
func TestPlannedExecutorZeroLengthSegments(t *testing.T) {
	inst := uniInstance(t, []float64{1}, []model.Job{{Release: 0, Size: 1, Databank: 0}})
	plan := NewPlan(1)
	plan.Add(0, PlanSlice{Job: 0, Start: 0, End: 0}) // dropped by Add
	plan.Add(0, PlanSlice{Job: 0, Start: 2, End: 3})
	s, err := RunPlanned(inst, &fixedPlanner{plan})
	if err != nil {
		t.Fatal(err)
	}
	if s.Completion[0] < 3-1e-9 {
		t.Fatalf("completion %v", s.Completion[0])
	}
}

// TestListEngineManyIdenticalJobs stresses tie-breaking determinism: many
// identical jobs must complete in ID order under a tie-heavy policy.
func TestListEngineManyIdenticalJobs(t *testing.T) {
	var jobs []model.Job
	for i := 0; i < 40; i++ {
		jobs = append(jobs, model.Job{Release: 0, Size: 1, Databank: 0})
	}
	inst := uniInstance(t, []float64{1}, jobs)
	s, err := RunList(inst, srpt{})
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < len(jobs); j++ {
		if s.Completion[j] < s.Completion[j-1]-1e-9 {
			t.Fatalf("tie-break not by ID: job %d at %v before job %d at %v",
				j, s.Completion[j], j-1, s.Completion[j-1])
		}
	}
}
