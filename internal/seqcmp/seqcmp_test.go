package seqcmp

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCompileMotifForms(t *testing.T) {
	m, err := CompileMotif("C-x-[DE]-{FW}-H")
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 5 {
		t.Fatalf("len = %d", m.Len())
	}
	// Dashes optional.
	m2, err := CompileMotif("Cx[DE]{FW}H")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 5 {
		t.Fatal("dashless parse")
	}
}

func TestCompileMotifRejects(t *testing.T) {
	for _, bad := range []string{"", "C-[", "C-[]", "C-[Z1]", "B", "c", "C-{", "-"} {
		if _, err := CompileMotif(bad); err == nil {
			t.Errorf("pattern %q accepted", bad)
		}
	}
}

func scanOne(t *testing.T, residues, pattern string) []Match {
	t.Helper()
	m, err := CompileMotif(pattern)
	if err != nil {
		t.Fatal(err)
	}
	bank := &Databank{Sequences: []Sequence{{ID: "s", Residues: residues}}}
	return Scan(bank, m).Matches
}

func TestScanExact(t *testing.T) {
	got := scanOne(t, "ACDCACDC", "ACDC")
	if len(got) != 2 || got[0].Offset != 0 || got[1].Offset != 4 {
		t.Fatalf("matches = %v", got)
	}
}

func TestScanOverlapping(t *testing.T) {
	got := scanOne(t, "AAAA", "AA")
	if len(got) != 3 {
		t.Fatalf("overlapping matches = %v", got)
	}
}

func TestScanWildcardAndGroups(t *testing.T) {
	// C-x-[DE] matches CAD, CAE, C?D... in "CADCEECFD":
	// offsets 0 (CAD), 3 (CEE), 6 (CFD: F allowed by x, D in group).
	got := scanOne(t, "CADCEECFD", "C-x-[DE]")
	if len(got) != 3 {
		t.Fatalf("matches = %v", got)
	}
	// Negated group: C-{DE} must not match CD or CE.
	got = scanOne(t, "CDCECA", "C-{DE}")
	if len(got) != 1 || got[0].Offset != 4 {
		t.Fatalf("negated matches = %v", got)
	}
}

func TestScanTooShortSequence(t *testing.T) {
	if got := scanOne(t, "AC", "ACDC"); len(got) != 0 {
		t.Fatalf("matches = %v", got)
	}
}

func TestRandomDatabankShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bank := RandomDatabank("sp", 50, 100, rng)
	if len(bank.Sequences) != 50 {
		t.Fatal("sequence count")
	}
	if bank.TotalResidues() < 50*50 || bank.TotalResidues() > 50*151 {
		t.Fatalf("total residues %d outside generator bounds", bank.TotalResidues())
	}
	for _, s := range bank.Sequences {
		for i := 0; i < len(s.Residues); i++ {
			if !strings.ContainsRune(Alphabet, rune(s.Residues[i])) {
				t.Fatalf("invalid residue %q", s.Residues[i])
			}
		}
	}
}

func TestSliceBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bank := RandomDatabank("sp", 10, 20, rng)
	if got := bank.Slice(-5, 100); len(got.Sequences) != 10 {
		t.Fatal("clamping failed")
	}
	if got := bank.Slice(7, 3); len(got.Sequences) != 0 {
		t.Fatal("inverted range not empty")
	}
}

// TestParallelMatchesSequential: the divisibility property — splitting the
// scan across workers changes neither the match set nor the total work.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bank := RandomDatabank("sp", 40, 80, rng)
	motif := RandomMotif(4, rng)
	seq := Scan(bank, motif)
	for _, workers := range []int{1, 2, 3, 7, 40, 100} {
		par := ScanParallel(bank, motif, workers)
		if par.Ops != seq.Ops {
			t.Fatalf("workers=%d: ops %d != %d", workers, par.Ops, seq.Ops)
		}
		if len(par.Matches) != len(seq.Matches) {
			t.Fatalf("workers=%d: %d matches != %d", workers, len(par.Matches), len(seq.Matches))
		}
	}
}

// TestLinearCostModel verifies the paper's §2 premise on the synthetic
// engine: per-residue scanning cost is (nearly) constant across databank
// fractions, i.e. cost is linear in the amount scanned.
func TestLinearCostModel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bank := RandomDatabank("sp", 60, 120, rng)
	motif := RandomMotif(5, rng)
	costs := CostModel(bank, motif, 6)
	if len(costs) != 6 {
		t.Fatal("steps")
	}
	lo, hi := math.Inf(1), 0.0
	for _, c := range costs {
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	if lo <= 0 {
		t.Fatal("zero cost")
	}
	// Motif-edge effects keep this from being exactly constant; a 15%
	// envelope certifies linearity for scheduling purposes.
	if (hi-lo)/lo > 0.15 {
		t.Fatalf("per-residue cost varies %.1f%%: %v", 100*(hi-lo)/lo, costs)
	}
}

// TestQuickMatchesAreValid: every reported match really matches when
// checked independently, and offsets are in range (property-based).
func TestQuickMatchesAreValid(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bank := RandomDatabank("q", 1+rng.Intn(8), 30, rng)
		motif := RandomMotif(1+rng.Intn(5), rng)
		res := Scan(bank, motif)
		byID := map[string]string{}
		for _, s := range bank.Sequences {
			byID[s.ID] = s.Residues
		}
		for _, m := range res.Matches {
			r, ok := byID[m.SequenceID]
			if !ok || m.Offset < 0 || m.Offset+motif.Len() > len(r) {
				return false
			}
			for p := 0; p < motif.Len(); p++ {
				if !motif.positions[p].matches(r[m.Offset+p]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickOpsBounds: work is at least one op per window and at most
// windows × motif length (property-based).
func TestQuickOpsBounds(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bank := RandomDatabank("q", 1+rng.Intn(5), 25, rng)
		motif := RandomMotif(1+rng.Intn(4), rng)
		res := Scan(bank, motif)
		windows := 0
		for _, s := range bank.Sequences {
			if w := len(s.Residues) - motif.Len() + 1; w > 0 {
				windows += w
			}
		}
		return res.Ops >= windows && res.Ops <= windows*motif.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRandomMotifDeterministic(t *testing.T) {
	a := RandomMotif(6, rand.New(rand.NewSource(42)))
	b := RandomMotif(6, rand.New(rand.NewSource(42)))
	if a.Pattern != b.Pattern {
		t.Fatalf("same seed, different motifs: %q vs %q", a.Pattern, b.Pattern)
	}
}
