package seqcmp

import (
	"sort"
	"sync"
)

// ScanParallel scans the bank with the motif split across the given number
// of workers, each taking a contiguous range of sequences — exactly the
// divisible-load execution the scheduling model assumes: a request is cut
// into sub-requests over disjoint databank fractions, results are merged,
// and the total work (Ops) is unchanged.
func ScanParallel(bank *Databank, motif *Motif, workers int) ScanResult {
	n := len(bank.Sequences)
	if workers <= 1 || n <= 1 {
		return Scan(bank, motif)
	}
	if workers > n {
		workers = n
	}
	parts := make([]ScanResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w] = Scan(bank.Slice(lo, hi), motif)
		}(w, lo, hi)
	}
	wg.Wait()

	var res ScanResult
	for _, p := range parts {
		res.Matches = append(res.Matches, p.Matches...)
		res.Ops += p.Ops
	}
	// Deterministic order regardless of scheduling: by sequence then offset.
	sort.Slice(res.Matches, func(a, b int) bool {
		if res.Matches[a].SequenceID != res.Matches[b].SequenceID {
			return res.Matches[a].SequenceID < res.Matches[b].SequenceID
		}
		return res.Matches[a].Offset < res.Matches[b].Offset
	})
	return res
}

// CostModel empirically fits the linear cost model W(fraction) = c·residues
// that the paper validates in §2: it scans nested prefixes of the bank and
// returns the per-residue operation cost of each prefix. Uniform per-prefix
// costs (up to motif-edge effects) certify linearity; the tests assert it.
func CostModel(bank *Databank, motif *Motif, steps int) []float64 {
	if steps < 1 {
		steps = 1
	}
	out := make([]float64, 0, steps)
	n := len(bank.Sequences)
	for s := 1; s <= steps; s++ {
		sub := bank.Slice(0, s*n/steps)
		res := Scan(sub, motif)
		if r := sub.TotalResidues(); r > 0 {
			out = append(out, float64(res.Ops)/float64(r))
		} else {
			out = append(out, 0)
		}
	}
	return out
}
