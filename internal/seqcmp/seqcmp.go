// Package seqcmp is the application substrate of the paper: protein
// databank scanning for motif matches, in the style of the GriPPS protein
// comparison framework (§2).
//
// The scheduling model rests on three empirical properties of this
// computation, which the paper validates experimentally and this package
// makes checkable in tests:
//
//   - a motif is a compact pattern, so shipping it is negligible against
//     scanning a databank (communication-free divisible load);
//   - scanning cost is linear in the amount of databank scanned, so a
//     request may be split across sites at no loss (divisibility);
//   - relative machine speeds do not depend on the motif (uniformity).
//
// Motifs use a PROSITE-like alphabet: a concrete amino acid matches
// itself, 'x' matches anything, a bracket group [ALT] matches any listed
// residue, and an {EXC} group matches anything but the listed residues.
package seqcmp

import (
	"fmt"
	"math/rand"
	"strings"
)

// Alphabet is the 20 standard amino acids, one letter each.
const Alphabet = "ACDEFGHIKLMNPQRSTVWY"

// Sequence is one protein: an identifier and its residue string.
type Sequence struct {
	ID       string
	Residues string
}

// Databank is an ordered set of protein sequences.
type Databank struct {
	Name      string
	Sequences []Sequence
}

// TotalResidues returns the summed length of all sequences — the "size"
// that the scheduling model's job sizes are proportional to.
func (d *Databank) TotalResidues() int {
	n := 0
	for i := range d.Sequences {
		n += len(d.Sequences[i].Residues)
	}
	return n
}

// Slice returns the sub-bank of sequences [from, to) — the unit of
// divisible work distribution.
func (d *Databank) Slice(from, to int) *Databank {
	if from < 0 {
		from = 0
	}
	if to > len(d.Sequences) {
		to = len(d.Sequences)
	}
	if from > to {
		from = to
	}
	return &Databank{Name: d.Name, Sequences: d.Sequences[from:to]}
}

// RandomDatabank generates a synthetic databank with the given number of
// sequences and mean length (uniform in [mean/2, 3·mean/2)).
func RandomDatabank(name string, numSeqs, meanLen int, rng *rand.Rand) *Databank {
	bank := &Databank{Name: name}
	for i := 0; i < numSeqs; i++ {
		n := meanLen/2 + rng.Intn(meanLen+1)
		var sb strings.Builder
		sb.Grow(n)
		for k := 0; k < n; k++ {
			sb.WriteByte(Alphabet[rng.Intn(len(Alphabet))])
		}
		bank.Sequences = append(bank.Sequences, Sequence{
			ID:       fmt.Sprintf("%s|seq%05d", name, i+1),
			Residues: sb.String(),
		})
	}
	return bank
}

// position is one compiled motif position.
type position struct {
	exact   byte   // nonzero: match this residue
	any     bool   // 'x': match anything
	set     string // bracket group members
	negated bool   // {…}: match anything not in set
}

// Motif is a compiled amino acid pattern.
type Motif struct {
	Pattern   string
	positions []position
}

// CompileMotif parses a PROSITE-like pattern such as "C-x-[DE]-{FW}-H".
// Dashes between positions are optional.
func CompileMotif(pattern string) (*Motif, error) {
	m := &Motif{Pattern: pattern}
	s := strings.ReplaceAll(pattern, "-", "")
	for i := 0; i < len(s); {
		switch c := s[i]; {
		case c == 'x':
			m.positions = append(m.positions, position{any: true})
			i++
		case c == '[' || c == '{':
			close := byte(']')
			if c == '{' {
				close = '}'
			}
			j := strings.IndexByte(s[i:], close)
			if j < 0 {
				return nil, fmt.Errorf("seqcmp: unterminated group in %q", pattern)
			}
			group := s[i+1 : i+j]
			if group == "" {
				return nil, fmt.Errorf("seqcmp: empty group in %q", pattern)
			}
			for k := 0; k < len(group); k++ {
				if !strings.ContainsRune(Alphabet, rune(group[k])) {
					return nil, fmt.Errorf("seqcmp: invalid residue %q in %q", group[k], pattern)
				}
			}
			m.positions = append(m.positions, position{set: group, negated: c == '{'})
			i += j + 1
		case strings.ContainsRune(Alphabet, rune(c)):
			m.positions = append(m.positions, position{exact: c})
			i++
		default:
			return nil, fmt.Errorf("seqcmp: invalid character %q in %q", c, pattern)
		}
	}
	if len(m.positions) == 0 {
		return nil, fmt.Errorf("seqcmp: empty pattern %q", pattern)
	}
	return m, nil
}

// Len returns the number of motif positions.
func (m *Motif) Len() int { return len(m.positions) }

func (p *position) matches(c byte) bool {
	switch {
	case p.any:
		return true
	case p.exact != 0:
		return p.exact == c
	case p.negated:
		return !strings.Contains(p.set, string(c))
	default:
		return strings.Contains(p.set, string(c))
	}
}

// Match is one motif occurrence.
type Match struct {
	SequenceID string
	Offset     int
}

// ScanResult reports the matches found and the work performed. Ops counts
// residue-position comparisons — the unit in which the cost model is
// linear, playing the role of the paper's Mflop.
type ScanResult struct {
	Matches []Match
	Ops     int
}

// Scan searches every sequence of the bank for the motif.
func Scan(bank *Databank, motif *Motif) ScanResult {
	var res ScanResult
	for i := range bank.Sequences {
		seq := &bank.Sequences[i]
		res.Ops += scanSequence(seq, motif, &res.Matches)
	}
	return res
}

func scanSequence(seq *Sequence, motif *Motif, out *[]Match) int {
	ops := 0
	r := seq.Residues
	n := len(r)
	k := motif.Len()
	for start := 0; start+k <= n; start++ {
		matched := true
		for p := 0; p < k; p++ {
			ops++
			if !motif.positions[p].matches(r[start+p]) {
				matched = false
				break
			}
		}
		if matched {
			*out = append(*out, Match{SequenceID: seq.ID, Offset: start})
		}
	}
	return ops
}

// RandomMotif draws a plausible random motif: length positions, each
// either exact (60%), wildcard (20%) or a small bracket group (20%).
func RandomMotif(length int, rng *rand.Rand) *Motif {
	var sb strings.Builder
	for i := 0; i < length; i++ {
		if i > 0 {
			sb.WriteByte('-')
		}
		switch r := rng.Float64(); {
		case r < 0.6:
			sb.WriteByte(Alphabet[rng.Intn(len(Alphabet))])
		case r < 0.8:
			sb.WriteByte('x')
		default:
			sb.WriteByte('[')
			g := 2 + rng.Intn(2)
			var group []byte
			for len(group) < g {
				c := Alphabet[rng.Intn(len(Alphabet))]
				if !strings.Contains(string(group), string(c)) {
					group = append(group, c)
				}
			}
			sb.Write(group)
			sb.WriteByte(']')
		}
	}
	m, err := CompileMotif(sb.String())
	if err != nil {
		panic(err) // generator emits only valid patterns
	}
	return m
}
