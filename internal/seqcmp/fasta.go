package seqcmp

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteFASTA serialises a databank in FASTA format: a '>' header line with
// the sequence identifier, then residue lines wrapped at 60 columns.
func WriteFASTA(w io.Writer, bank *Databank) error {
	bw := bufio.NewWriter(w)
	for i := range bank.Sequences {
		s := &bank.Sequences[i]
		if _, err := fmt.Fprintf(bw, ">%s\n", s.ID); err != nil {
			return err
		}
		for off := 0; off < len(s.Residues); off += 60 {
			end := off + 60
			if end > len(s.Residues) {
				end = len(s.Residues)
			}
			if _, err := fmt.Fprintln(bw, s.Residues[off:end]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadFASTA parses a FASTA stream into a databank. Residues are validated
// against the amino acid alphabet; blank lines are ignored; the header's
// first whitespace-delimited token is the identifier.
func ReadFASTA(r io.Reader, name string) (*Databank, error) {
	bank := &Databank{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var id string
	var body strings.Builder
	lineNo := 0
	flush := func() {
		if id != "" {
			bank.Sequences = append(bank.Sequences, Sequence{ID: id, Residues: body.String()})
		}
		body.Reset()
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ">") {
			flush()
			fields := strings.Fields(line[1:])
			if len(fields) == 0 {
				return nil, fmt.Errorf("seqcmp: line %d: empty FASTA header", lineNo)
			}
			id = fields[0]
			continue
		}
		if id == "" {
			return nil, fmt.Errorf("seqcmp: line %d: residues before any header", lineNo)
		}
		upper := strings.ToUpper(line)
		for k := 0; k < len(upper); k++ {
			if !strings.ContainsRune(Alphabet, rune(upper[k])) {
				return nil, fmt.Errorf("seqcmp: line %d: invalid residue %q", lineNo, upper[k])
			}
		}
		body.WriteString(upper)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	if len(bank.Sequences) == 0 {
		return nil, fmt.Errorf("seqcmp: no sequences in FASTA input")
	}
	return bank, nil
}
