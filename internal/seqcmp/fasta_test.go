package seqcmp

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestFASTARoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	orig := RandomDatabank("rt", 12, 150, rng)
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTA(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sequences) != len(orig.Sequences) {
		t.Fatalf("%d sequences, want %d", len(back.Sequences), len(orig.Sequences))
	}
	for i := range orig.Sequences {
		if back.Sequences[i].ID != orig.Sequences[i].ID ||
			back.Sequences[i].Residues != orig.Sequences[i].Residues {
			t.Fatalf("sequence %d changed", i)
		}
	}
	if back.TotalResidues() != orig.TotalResidues() {
		t.Fatal("residue count changed")
	}
}

func TestWriteFASTAWraps(t *testing.T) {
	bank := &Databank{Sequences: []Sequence{{ID: "x", Residues: strings.Repeat("A", 130)}}}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, bank); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 60 + 60 + 10
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if len(lines[1]) != 60 || len(lines[3]) != 10 {
		t.Fatalf("wrapping wrong: %d/%d", len(lines[1]), len(lines[3]))
	}
}

func TestReadFASTAVariants(t *testing.T) {
	in := ">sp|P1 description here\nacd\nEFG\n\n>sp|P2\nHIK\n"
	bank, err := ReadFASTA(strings.NewReader(in), "v")
	if err != nil {
		t.Fatal(err)
	}
	if len(bank.Sequences) != 2 {
		t.Fatalf("sequences = %d", len(bank.Sequences))
	}
	if bank.Sequences[0].ID != "sp|P1" || bank.Sequences[0].Residues != "ACDEFG" {
		t.Fatalf("first = %+v", bank.Sequences[0])
	}
	if bank.Sequences[1].Residues != "HIK" {
		t.Fatalf("second = %+v", bank.Sequences[1])
	}
}

func TestReadFASTARejects(t *testing.T) {
	cases := []string{
		"",           // no sequences
		"ACD\n",      // residues before header
		">\nACD\n",   // empty header
		">x\nAC1D\n", // invalid residue
		">x\nACB\n",  // B is not an amino acid in our alphabet
	}
	for i, in := range cases {
		if _, err := ReadFASTA(strings.NewReader(in), "bad"); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

func TestFASTAScanAgreesAfterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	bank := RandomDatabank("scan", 20, 80, rng)
	motif := RandomMotif(4, rng)
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, bank); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTA(&buf, "scan")
	if err != nil {
		t.Fatal(err)
	}
	a, b := Scan(bank, motif), Scan(back, motif)
	if a.Ops != b.Ops || len(a.Matches) != len(b.Matches) {
		t.Fatalf("scan results diverge after round trip: %d/%d ops, %d/%d matches",
			a.Ops, b.Ops, len(a.Matches), len(b.Matches))
	}
}
