// Package flow provides network-flow solvers used as fast combinatorial
// oracles by the stretch schedulers.
//
// Checking that every job can meet its deadline d̄_j(F) on a set of uniform
// machines with restricted availabilities (System (1) of the paper, with F
// fixed) is exactly a transportation problem: ship W_j units of work from
// each job to (interval × machine) bins of capacity len(I_t)/p_i, with an
// edge only when the interval lies inside the job's [r_j, d̄_j] window and
// the machine hosts the job's databank. Feasibility ⇔ max-flow = ΣW_j, which
// Dinic answers orders of magnitude faster than the equivalent LP.
//
// The sum-stretch-like refinement of System (2) is the same network with a
// per-interval cost, i.e. a min-cost max-flow problem (see mincost.go).
//
// Capacities are generic: float64 for the simulation fast path, exact
// rationals (via lp.RatOps) to reproduce precision-sensitive cases.
//
// All three solvers support Reset, which clears the network while keeping
// every backing buffer, so a caller that solves many networks of similar
// shape (the feasibility bisection of the offline solver, the per-arrival
// re-plans of the online heuristics) performs no steady-state allocation.
// See DESIGN.md, "Planner workspaces".
package flow

import "stretchsched/internal/lp"

// Edge is one directed edge of the residual network.
type Edge struct {
	To  int
	Cap interface{} // diagnostic only; see Graph.EdgeFlow for typed access
}

// Graph is a flow network under construction. T is the capacity scalar type.
type Graph[T any] struct {
	ops  lp.Ops[T]
	n    int
	head [][]int // adjacency: node -> indices into edges
	to   []int
	cap  []T // residual capacity
	orig []T // original capacity (to recover flow)

	// MaxFlow scratch, retained across calls.
	level []int
	iter  []int
	queue []int
	sink  int
	inf   T // augmentation limit during the current MaxFlow
}

// NewGraph returns an empty network with n nodes.
func NewGraph[T any](ops lp.Ops[T], n int) *Graph[T] {
	g := &Graph[T]{}
	g.Reset(ops, n)
	return g
}

// Reset clears the network to n isolated nodes while retaining every backing
// buffer, so rebuilding a similarly-shaped network allocates nothing. ops is
// taken afresh because float backends carry a per-network tolerance.
//
//stretch:noalloc
func (g *Graph[T]) Reset(ops lp.Ops[T], n int) {
	g.ops = ops
	g.n = n
	if cap(g.head) < n {
		g.head = make([][]int, n) //stretch:alloc-ok — buffer growth
	}
	g.head = g.head[:n]
	for i := range g.head {
		g.head[i] = g.head[i][:0]
	}
	g.to = g.to[:0]
	g.cap = g.cap[:0]
	g.orig = g.orig[:0]
}

// NumNodes returns the node count.
func (g *Graph[T]) NumNodes() int { return g.n }

// AddNode appends a fresh node and returns its index, reviving a parked
// adjacency buffer when a shrinking Reset left one in the backing array.
//
//stretch:noalloc
func (g *Graph[T]) AddNode() int {
	if len(g.head) < cap(g.head) {
		g.head = g.head[:len(g.head)+1]
		g.head[g.n] = g.head[g.n][:0]
	} else {
		g.head = append(g.head, nil)
	}
	g.n++
	return g.n - 1
}

// AddEdge adds a directed edge u→v with the given capacity and returns its
// identifier, which can later be passed to EdgeFlow.
//
//stretch:noalloc
func (g *Graph[T]) AddEdge(u, v int, capacity T) int {
	if g.ops.Sign(capacity) < 0 {
		panic("flow: negative capacity")
	}
	id := len(g.to)
	g.to = append(g.to, v)
	g.cap = append(g.cap, capacity)
	g.orig = append(g.orig, capacity)
	g.head[u] = append(g.head[u], id)

	g.to = append(g.to, u)
	g.cap = append(g.cap, g.ops.Zero())
	g.orig = append(g.orig, g.ops.Zero())
	g.head[v] = append(g.head[v], id+1)
	return id
}

// EdgeFlow returns the flow currently routed through edge id.
func (g *Graph[T]) EdgeFlow(id int) T {
	return g.ops.Sub(g.orig[id], g.cap[id])
}

// MaxFlow runs Dinic's algorithm from s to t and returns the max-flow value.
// The graph retains the final residual state, so EdgeFlow is meaningful
// afterwards. Calling MaxFlow twice continues from the current residual
// state (returning 0 the second time).
//
//stretch:noalloc
func (g *Graph[T]) MaxFlow(s, t int) T {
	ops := g.ops
	total := ops.Zero()
	g.level = grow(g.level, g.n)
	g.iter = grow(g.iter, g.n)
	if cap(g.queue) < g.n {
		g.queue = make([]int, 0, g.n) //stretch:alloc-ok — buffer growth
	}
	g.sink = t

	// A limit larger than any possible augmentation: sum of source capacities.
	g.inf = ops.One()
	for _, id := range g.head[s] {
		g.inf = ops.Add(g.inf, g.cap[id])
	}

	for g.bfs(s, t) {
		for i := range g.iter[:g.n] {
			g.iter[i] = 0
		}
		for {
			got := g.dfs(s, g.inf)
			if ops.Sign(got) <= 0 {
				break
			}
			total = ops.Add(total, got)
		}
	}
	return total
}

// bfs builds the level graph of the residual network.
//
//stretch:noalloc
func (g *Graph[T]) bfs(s, t int) bool {
	ops := g.ops
	for i := range g.level[:g.n] {
		g.level[i] = -1
	}
	g.level[s] = 0
	queue := g.queue[:0]
	queue = append(queue, s)
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, id := range g.head[u] {
			v := g.to[id]
			if g.level[v] == -1 && ops.Sign(g.cap[id]) > 0 {
				g.level[v] = g.level[u] + 1
				queue = append(queue, v)
			}
		}
	}
	g.queue = queue
	return g.level[t] >= 0
}

// dfs pushes a blocking-flow augmentation toward g.sink along level-graph
// arcs. It is a method rather than a recursive closure so that repeated
// MaxFlow calls stay allocation-free.
//
//stretch:noalloc
func (g *Graph[T]) dfs(u int, limit T) T {
	ops := g.ops
	if u == g.sink {
		return limit
	}
	for ; g.iter[u] < len(g.head[u]); g.iter[u]++ {
		id := g.head[u][g.iter[u]]
		v := g.to[id]
		if g.level[v] != g.level[u]+1 || ops.Sign(g.cap[id]) <= 0 {
			continue
		}
		pushed := limit
		if ops.Cmp(g.cap[id], pushed) < 0 {
			pushed = g.cap[id]
		}
		got := g.dfs(v, pushed)
		if ops.Sign(got) > 0 {
			g.cap[id] = ops.Sub(g.cap[id], got)
			g.cap[id^1] = ops.Add(g.cap[id^1], got)
			return got
		}
	}
	return ops.Zero()
}

// MinCutReachable returns, after MaxFlow, the set of nodes reachable from s
// in the residual network. It certifies the min cut for testing.
func (g *Graph[T]) MinCutReachable(s int) []bool {
	ops := g.ops
	seen := make([]bool, g.n)
	stack := []int{s}
	seen[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range g.head[u] {
			v := g.to[id]
			if !seen[v] && ops.Sign(g.cap[id]) > 0 {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// grow returns s resized to length n, reusing its backing array when large
// enough. Contents are unspecified; callers refill what they read.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
