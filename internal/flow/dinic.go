// Package flow provides network-flow solvers used as fast combinatorial
// oracles by the stretch schedulers.
//
// Checking that every job can meet its deadline d̄_j(F) on a set of uniform
// machines with restricted availabilities (System (1) of the paper, with F
// fixed) is exactly a transportation problem: ship W_j units of work from
// each job to (interval × machine) bins of capacity len(I_t)/p_i, with an
// edge only when the interval lies inside the job's [r_j, d̄_j] window and
// the machine hosts the job's databank. Feasibility ⇔ max-flow = ΣW_j, which
// Dinic answers orders of magnitude faster than the equivalent LP.
//
// The sum-stretch-like refinement of System (2) is the same network with a
// per-interval cost, i.e. a min-cost max-flow problem (see mincost.go).
//
// Capacities are generic: float64 for the simulation fast path, exact
// rationals (via lp.RatOps) to reproduce precision-sensitive cases.
package flow

import "stretchsched/internal/lp"

// Edge is one directed edge of the residual network.
type Edge struct {
	To  int
	Cap interface{} // diagnostic only; see Graph.EdgeFlow for typed access
}

// Graph is a flow network under construction. T is the capacity scalar type.
type Graph[T any] struct {
	ops  lp.Ops[T]
	n    int
	head [][]int // adjacency: node -> indices into edges
	to   []int
	cap  []T // residual capacity
	orig []T // original capacity (to recover flow)
}

// NewGraph returns an empty network with n nodes.
func NewGraph[T any](ops lp.Ops[T], n int) *Graph[T] {
	return &Graph[T]{ops: ops, n: n, head: make([][]int, n)}
}

// NumNodes returns the node count.
func (g *Graph[T]) NumNodes() int { return g.n }

// AddNode appends a fresh node and returns its index.
func (g *Graph[T]) AddNode() int {
	g.head = append(g.head, nil)
	g.n++
	return g.n - 1
}

// AddEdge adds a directed edge u→v with the given capacity and returns its
// identifier, which can later be passed to EdgeFlow.
func (g *Graph[T]) AddEdge(u, v int, capacity T) int {
	if g.ops.Sign(capacity) < 0 {
		panic("flow: negative capacity")
	}
	id := len(g.to)
	g.to = append(g.to, v)
	g.cap = append(g.cap, capacity)
	g.orig = append(g.orig, capacity)
	g.head[u] = append(g.head[u], id)

	g.to = append(g.to, u)
	g.cap = append(g.cap, g.ops.Zero())
	g.orig = append(g.orig, g.ops.Zero())
	g.head[v] = append(g.head[v], id+1)
	return id
}

// EdgeFlow returns the flow currently routed through edge id.
func (g *Graph[T]) EdgeFlow(id int) T {
	return g.ops.Sub(g.orig[id], g.cap[id])
}

// MaxFlow runs Dinic's algorithm from s to t and returns the max-flow value.
// The graph retains the final residual state, so EdgeFlow is meaningful
// afterwards. Calling MaxFlow twice continues from the current residual
// state (returning 0 the second time).
func (g *Graph[T]) MaxFlow(s, t int) T {
	ops := g.ops
	total := ops.Zero()
	level := make([]int, g.n)
	iter := make([]int, g.n)
	queue := make([]int, 0, g.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, id := range g.head[u] {
				v := g.to[id]
				if level[v] == -1 && ops.Sign(g.cap[id]) > 0 {
					level[v] = level[u] + 1
					queue = append(queue, v)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(u int, limit T) T
	dfs = func(u int, limit T) T {
		if u == t {
			return limit
		}
		for ; iter[u] < len(g.head[u]); iter[u]++ {
			id := g.head[u][iter[u]]
			v := g.to[id]
			if level[v] != level[u]+1 || ops.Sign(g.cap[id]) <= 0 {
				continue
			}
			pushed := limit
			if ops.Cmp(g.cap[id], pushed) < 0 {
				pushed = g.cap[id]
			}
			got := dfs(v, pushed)
			if ops.Sign(got) > 0 {
				g.cap[id] = ops.Sub(g.cap[id], got)
				g.cap[id^1] = ops.Add(g.cap[id^1], got)
				return got
			}
		}
		return ops.Zero()
	}

	// A limit larger than any possible augmentation: sum of source capacities.
	inf := ops.One()
	for _, id := range g.head[s] {
		inf = ops.Add(inf, g.cap[id])
	}

	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			got := dfs(s, inf)
			if ops.Sign(got) <= 0 {
				break
			}
			total = ops.Add(total, got)
		}
	}
	return total
}

// MinCutReachable returns, after MaxFlow, the set of nodes reachable from s
// in the residual network. It certifies the min cut for testing.
func (g *Graph[T]) MinCutReachable(s int) []bool {
	ops := g.ops
	seen := make([]bool, g.n)
	stack := []int{s}
	seen[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range g.head[u] {
			v := g.to[id]
			if !seen[v] && ops.Sign(g.cap[id]) > 0 {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}
