package flow

import (
	"testing"

	"stretchsched/internal/lp"
)

// transportEdges builds a deterministic three-layer transportation network
// in the shape of the feasibility oracle (tasks → bins → sink).
func transportEdges(tasks, bins int) (edges [][3]float64, src, sink int) {
	src, sink = tasks+bins, tasks+bins+1
	for k := 0; k < tasks; k++ {
		w := 1 + float64(k%7)
		edges = append(edges, [3]float64{float64(src), float64(k), w})
		for t := 0; t < bins; t++ {
			if (k+t)%3 == 0 {
				edges = append(edges, [3]float64{float64(k), float64(tasks + t), w})
			}
		}
	}
	for t := 0; t < bins; t++ {
		edges = append(edges, [3]float64{float64(tasks + t), float64(sink), 2.5})
	}
	return edges, src, sink
}

// TestGraphResetMatchesFresh: a Reset Dinic graph must reproduce a fresh
// graph's max-flow and per-edge flows exactly, across differently-sized
// networks interleaved through one instance.
func TestGraphResetMatchesFresh(t *testing.T) {
	shared := NewGraph[float64](lp.NewFloat64Ops(), 0)
	for _, shape := range [][2]int{{10, 30}, {4, 6}, {25, 60}, {1, 1}} {
		edges, src, sink := transportEdges(shape[0], shape[1])
		fresh := NewGraph[float64](lp.NewFloat64Ops(), sink+1)
		shared.Reset(lp.NewFloat64Ops(), sink+1)
		var fid, sid []int
		for _, e := range edges {
			fid = append(fid, fresh.AddEdge(int(e[0]), int(e[1]), e[2]))
			sid = append(sid, shared.AddEdge(int(e[0]), int(e[1]), e[2]))
		}
		fv, sv := fresh.MaxFlow(src, sink), shared.MaxFlow(src, sink)
		if fv != sv {
			t.Fatalf("shape %v: reused max-flow %v, fresh %v", shape, sv, fv)
		}
		for i := range fid {
			if fresh.EdgeFlow(fid[i]) != shared.EdgeFlow(sid[i]) {
				t.Fatalf("shape %v: edge %d flow differs", shape, i)
			}
		}
	}
}

// TestPushRelabelResetMatchesFresh mirrors TestGraphResetMatchesFresh for
// the push-relabel solver (flow values only; witness flows may differ).
func TestPushRelabelResetMatchesFresh(t *testing.T) {
	shared := NewPushRelabel(0, 0)
	for _, shape := range [][2]int{{10, 30}, {4, 6}, {25, 60}} {
		edges, src, sink := transportEdges(shape[0], shape[1])
		fresh := NewPushRelabel(sink+1, 0)
		shared.Reset(sink+1, 0)
		for _, e := range edges {
			fresh.AddEdge(int(e[0]), int(e[1]), e[2])
			shared.AddEdge(int(e[0]), int(e[1]), e[2])
		}
		fv, sv := fresh.MaxFlow(src, sink), shared.MaxFlow(src, sink)
		if fv != sv {
			t.Fatalf("shape %v: reused max-flow %v, fresh %v", shape, sv, fv)
		}
	}
}

// TestMinCostResetMatchesFresh: a Reset min-cost network must reproduce a
// fresh network's shipped flow and cost exactly.
func TestMinCostResetMatchesFresh(t *testing.T) {
	shared := NewMinCost(0, 0)
	for _, shape := range [][2]int{{10, 10}, {3, 4}, {20, 15}} {
		tasks, bins := shape[0], shape[1]
		src, sink := tasks+bins, tasks+bins+1
		fresh := NewMinCost(sink+2, 0)
		shared.Reset(sink+2, 0)
		add := func(g *MinCost) {
			for u := 0; u < tasks; u++ {
				g.AddEdge(src, u, 5, 0)
				for v := 0; v < bins; v++ {
					g.AddEdge(u, tasks+v, 3, float64((u*v)%7))
				}
			}
			for v := 0; v < bins; v++ {
				g.AddEdge(tasks+v, sink, 5, 0)
			}
		}
		add(fresh)
		add(shared)
		ff, fc := fresh.Run(src, sink)
		sf, sc := shared.Run(src, sink)
		if ff != sf || fc != sc {
			t.Fatalf("shape %v: reused (%v, %v), fresh (%v, %v)", shape, sf, sc, ff, fc)
		}
	}
}

// TestMaxFlowSteadyStateAllocs: once warmed up, rebuilding and solving the
// same-shaped network on a Reset graph must not allocate. This is the
// substrate half of the planned-path allocation budget (DESIGN.md).
func TestMaxFlowSteadyStateAllocs(t *testing.T) {
	edges, src, sink := transportEdges(30, 80)
	// A pointer implementation of lp.Ops avoids re-boxing the ops struct on
	// every Reset — the pattern offline.Workspace uses on the hot path.
	ops := &lp.Float64Ops{Eps: 1e-12}
	run := func(g *Graph[float64]) {
		g.Reset(ops, sink+1)
		for _, e := range edges {
			g.AddEdge(int(e[0]), int(e[1]), e[2])
		}
		g.MaxFlow(src, sink)
	}
	g := NewGraph[float64](lp.NewFloat64Ops(), 0)
	run(g)
	if allocs := testing.AllocsPerRun(20, func() { run(g) }); allocs != 0 {
		t.Fatalf("steady-state Dinic rebuild allocates %.1f objects/op, want 0", allocs)
	}

	runPR := func(g *PushRelabel) {
		g.Reset(sink+1, 0)
		for _, e := range edges {
			g.AddEdge(int(e[0]), int(e[1]), e[2])
		}
		g.MaxFlow(src, sink)
	}
	pr := NewPushRelabel(0, 0)
	runPR(pr)
	if allocs := testing.AllocsPerRun(20, func() { runPR(pr) }); allocs != 0 {
		t.Fatalf("steady-state push-relabel rebuild allocates %.1f objects/op, want 0", allocs)
	}

	runMC := func(g *MinCost) {
		g.Reset(sink+1, 0)
		for _, e := range edges {
			g.AddEdge(int(e[0]), int(e[1]), e[2], float64(int(e[0]+e[1])%5))
		}
		g.Run(src, sink)
	}
	mc := NewMinCost(0, 0)
	runMC(mc)
	if allocs := testing.AllocsPerRun(20, func() { runMC(mc) }); allocs != 0 {
		t.Fatalf("steady-state min-cost rebuild allocates %.1f objects/op, want 0", allocs)
	}
}
