package flow

import "math"

// PushRelabel is a highest-label push-relabel max-flow solver with gap
// relabeling, over float64 capacities. It solves the same feasibility
// networks as the Dinic implementation in this package; the offline solver
// can use either (see the BenchmarkAblationMaxFlowAlgorithm ablation). On
// the transportation networks of System (1) — three layers, many parallel
// bottlenecks — Dinic's blocking flows and push-relabel's local operations
// trade places depending on density, which is why both are kept.
type PushRelabel struct {
	n      int
	head   [][]int32
	to     []int32
	cap    []float64
	orig   []float64
	excess []float64
	height []int32
	eps    float64

	// MaxFlow scratch, retained across calls.
	countAt []int32
	buckets [][]int32
	iterPtr []int
}

// NewPushRelabel returns an empty network with n nodes. eps is the capacity
// tolerance below which an arc counts as saturated.
func NewPushRelabel(n int, eps float64) *PushRelabel {
	g := &PushRelabel{}
	g.Reset(n, eps)
	return g
}

// Reset clears the network to n isolated nodes while retaining every backing
// buffer, so rebuilding a similarly-shaped network allocates nothing.
//
//stretch:noalloc
func (g *PushRelabel) Reset(n int, eps float64) {
	if eps <= 0 {
		eps = 1e-12
	}
	g.n = n
	g.eps = eps
	if cap(g.head) < n {
		g.head = make([][]int32, n) //stretch:alloc-ok — buffer growth
	}
	g.head = g.head[:n]
	for i := range g.head {
		g.head[i] = g.head[i][:0]
	}
	g.to = g.to[:0]
	g.cap = g.cap[:0]
	g.orig = g.orig[:0]
}

// AddNode appends a node and returns its index, reviving a parked adjacency
// buffer when a shrinking Reset left one in the backing array.
//
//stretch:noalloc
func (g *PushRelabel) AddNode() int {
	if len(g.head) < cap(g.head) {
		g.head = g.head[:len(g.head)+1]
		g.head[g.n] = g.head[g.n][:0]
	} else {
		g.head = append(g.head, nil)
	}
	g.n++
	return g.n - 1
}

// AddEdge adds a directed edge u→v with the given capacity and returns its
// identifier for EdgeFlow.
//
//stretch:noalloc
func (g *PushRelabel) AddEdge(u, v int, capacity float64) int {
	if capacity < 0 {
		panic("flow: negative capacity")
	}
	id := len(g.to)
	g.to = append(g.to, int32(v))
	g.cap = append(g.cap, capacity)
	g.orig = append(g.orig, capacity)
	g.head[u] = append(g.head[u], int32(id))

	g.to = append(g.to, int32(u))
	g.cap = append(g.cap, 0)
	g.orig = append(g.orig, 0)
	g.head[v] = append(g.head[v], int32(id+1))
	return id
}

// EdgeFlow returns the flow routed through edge id after MaxFlow.
func (g *PushRelabel) EdgeFlow(id int) float64 { return g.orig[id] - g.cap[id] }

// MaxFlow computes the maximum s→t flow.
//
//stretch:noalloc
func (g *PushRelabel) MaxFlow(s, t int) float64 {
	if s == t {
		return 0
	}
	n := g.n
	g.excess = grow(g.excess, n)
	g.height = grow(g.height, n)
	g.countAt = grow(g.countAt, 2*n+1) // nodes per height, for gap relabeling
	for i := range g.excess {
		g.excess[i] = 0
	}
	for i := range g.height {
		g.height[i] = 0
	}
	for i := range g.countAt {
		g.countAt[i] = 0
	}

	g.height[s] = int32(n)
	g.countAt[0] = int32(n - 1)
	g.countAt[n] = 1

	// Buckets of active nodes by height (highest-label selection).
	if cap(g.buckets) < 2*n+1 {
		g.buckets = make([][]int32, 2*n+1) //stretch:alloc-ok — buffer growth
	}
	buckets := g.buckets[:2*n+1]
	for i := range buckets {
		buckets[i] = buckets[i][:0]
	}
	highest := 0
	activate := func(v int) { //stretch:alloc-ok — non-escaping closure
		if v == s || v == t || g.excess[v] <= g.eps {
			return
		}
		h := int(g.height[v])
		buckets[h] = append(buckets[h], int32(v))
		if h > highest {
			highest = h
		}
	}

	// Saturate all source arcs.
	for _, id := range g.head[s] {
		c := g.cap[id]
		if c <= g.eps {
			continue
		}
		v := int(g.to[id])
		g.cap[id] = 0
		g.cap[id^1] += c
		g.excess[v] += c
		g.excess[s] -= c
		activate(v)
	}

	g.iterPtr = grow(g.iterPtr, n)
	iterPtr := g.iterPtr
	for i := range iterPtr {
		iterPtr[i] = 0
	}
	for highest >= 0 {
		bucket := buckets[highest]
		if len(bucket) == 0 {
			highest--
			continue
		}
		u := int(bucket[len(bucket)-1])
		buckets[highest] = bucket[:len(bucket)-1]
		if g.excess[u] <= g.eps || int(g.height[u]) != highest {
			continue // stale entry
		}

		// Discharge u.
		for g.excess[u] > g.eps {
			if iterPtr[u] >= len(g.head[u]) {
				// Relabel.
				oldH := g.height[u]
				minH := int32(2 * n)
				for _, id := range g.head[u] {
					if g.cap[id] > g.eps {
						if h := g.height[g.to[id]]; h < minH {
							minH = h
						}
					}
				}
				if minH >= int32(2*n) {
					g.excess[u] = 0 // disconnected: drop excess
					break
				}
				g.countAt[oldH]--
				if g.countAt[oldH] == 0 && int(oldH) < n {
					// Gap: every node above the gap (below height n) is
					// unreachable from t; lift them beyond n+1.
					for v := 0; v < n; v++ {
						if h := g.height[v]; h > oldH && h < int32(n) && v != s {
							g.countAt[h]--
							g.height[v] = int32(n + 1)
							g.countAt[n+1]++
						}
					}
				}
				g.height[u] = minH + 1
				g.countAt[minH+1]++
				iterPtr[u] = 0
				continue
			}
			id := g.head[u][iterPtr[u]]
			v := int(g.to[id])
			if g.cap[id] > g.eps && g.height[u] == g.height[v]+1 {
				delta := math.Min(g.excess[u], g.cap[id])
				g.cap[id] -= delta
				g.cap[id^1] += delta
				g.excess[u] -= delta
				g.excess[v] += delta
				activate(v)
			} else {
				iterPtr[u]++
			}
		}
		if g.excess[u] > g.eps {
			activate(u)
		}
		if h := int(g.height[u]); h > highest {
			highest = h
		}
	}
	return g.excess[t]
}
