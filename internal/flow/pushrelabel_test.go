package flow

import (
	"math"
	"math/rand"
	"testing"
)

func TestPushRelabelTextbook(t *testing.T) {
	g := NewPushRelabel(6, 0)
	s, v1, v2, v3, v4, tt := 0, 1, 2, 3, 4, 5
	g.AddEdge(s, v1, 16)
	g.AddEdge(s, v2, 13)
	g.AddEdge(v1, v3, 12)
	g.AddEdge(v2, v1, 4)
	g.AddEdge(v2, v4, 14)
	g.AddEdge(v3, v2, 9)
	g.AddEdge(v3, tt, 20)
	g.AddEdge(v4, v3, 7)
	g.AddEdge(v4, tt, 4)
	if got := g.MaxFlow(s, tt); math.Abs(got-23) > 1e-9 {
		t.Fatalf("max flow = %v, want 23", got)
	}
}

func TestPushRelabelDisconnected(t *testing.T) {
	g := NewPushRelabel(3, 0)
	g.AddEdge(0, 1, 5)
	if got := g.MaxFlow(0, 2); got != 0 {
		t.Fatalf("max flow = %v", got)
	}
}

func TestPushRelabelSourceIsSink(t *testing.T) {
	g := NewPushRelabel(2, 0)
	g.AddEdge(0, 1, 5)
	if got := g.MaxFlow(0, 0); got != 0 {
		t.Fatalf("s==t flow = %v", got)
	}
}

func TestPushRelabelNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPushRelabel(2, 0).AddEdge(0, 1, -1)
}

func TestPushRelabelAddNode(t *testing.T) {
	g := NewPushRelabel(1, 0)
	a := g.AddNode()
	b := g.AddNode()
	g.AddEdge(a, b, 3)
	if got := g.MaxFlow(a, b); math.Abs(got-3) > 1e-12 {
		t.Fatalf("flow = %v", got)
	}
}

// TestPushRelabelMatchesDinic cross-validates the two max-flow algorithms
// on random networks, including flow decomposition consistency.
func TestPushRelabelMatchesDinic(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(6)
		gd, _, edges := randomNetwork(rng, n)
		gp := NewPushRelabel(n, 0)
		ids := make([]int, len(edges))
		for i, e := range edges {
			ids[i] = gp.AddEdge(e[0], e[1], float64(e[2]))
		}
		fd := gd.MaxFlow(0, n-1)
		fp := gp.MaxFlow(0, n-1)
		if math.Abs(fd-fp) > 1e-9 {
			t.Fatalf("trial %d: dinic %v vs push-relabel %v", trial, fd, fp)
		}
		// The push-relabel flow must itself satisfy conservation.
		net := make([]float64, n)
		for i, e := range edges {
			f := gp.EdgeFlow(ids[i])
			if f < -1e-9 || f > float64(e[2])+1e-9 {
				t.Fatalf("trial %d: edge flow %v outside [0,%d]", trial, f, e[2])
			}
			net[e[0]] -= f
			net[e[1]] += f
		}
		for v := 1; v < n-1; v++ {
			if math.Abs(net[v]) > 1e-9 {
				t.Fatalf("trial %d: node %d imbalance %v", trial, v, net[v])
			}
		}
		if math.Abs(net[n-1]-fp) > 1e-9 {
			t.Fatalf("trial %d: sink receives %v, flow %v", trial, net[n-1], fp)
		}
	}
}

// TestPushRelabelTransportation exercises the solver on the three-layer
// transportation shape used by the feasibility oracle.
func TestPushRelabelTransportation(t *testing.T) {
	rng := rand.New(rand.NewSource(277))
	for trial := 0; trial < 15; trial++ {
		nTasks := 2 + rng.Intn(5)
		nBins := 2 + rng.Intn(6)
		g := NewPushRelabel(nTasks+nBins+2, 0)
		d := f64Graph(nTasks + nBins + 2)
		src, sink := nTasks+nBins, nTasks+nBins+1
		for k := 0; k < nTasks; k++ {
			w := 1 + rng.Float64()*4
			g.AddEdge(src, k, w)
			d.AddEdge(src, k, w)
			for bin := 0; bin < nBins; bin++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(k, nTasks+bin, w)
					d.AddEdge(k, nTasks+bin, w)
				}
			}
		}
		for bin := 0; bin < nBins; bin++ {
			c := rng.Float64() * 5
			g.AddEdge(nTasks+bin, sink, c)
			d.AddEdge(nTasks+bin, sink, c)
		}
		fp := g.MaxFlow(src, sink)
		fd := d.MaxFlow(src, sink)
		if math.Abs(fp-fd) > 1e-9 {
			t.Fatalf("trial %d: push-relabel %v vs dinic %v", trial, fp, fd)
		}
	}
}
