package flow

import "math"

// MinCost solves min-cost max-flow on float64 capacities with nonnegative
// edge costs. It is the engine behind the paper's System (2): the LP
// objective Σ_j Σ_t (Σ_i α^t_{ij}) · mid(I_t) is linear in the work amounts
// with a per-unit cost that depends only on (job, interval), so the optimal
// α is a min-cost transportation plan.
//
// The implementation is the primal-dual (successive shortest path) method
// with two practical accelerations that matter at the harness's scale:
// Johnson potentials keep all reduced costs nonnegative so Dijkstra applies,
// and each potential phase pushes a full Dinic-style blocking flow over the
// shortest-path DAG instead of a single augmenting path, collapsing
// thousands of per-path Dijkstras into a handful of phases.
type MinCost struct {
	n    int
	head [][]int32
	to   []int32
	cap  []float64
	cost []float64
	orig []float64
	eps  float64

	// Run scratch, retained across calls.
	pot    []float64
	dist   []float64
	inTree []bool
	level  []int32
	iter   []int
	queue  []int32
	pq     []pqItem
	sink   int
	tol    float64
}

// NewMinCost returns an empty min-cost-flow network with n nodes.
// eps is the capacity tolerance below which an edge counts as saturated.
func NewMinCost(n int, eps float64) *MinCost {
	g := &MinCost{}
	g.Reset(n, eps)
	return g
}

// Reset clears the network to n isolated nodes while retaining every backing
// buffer, so rebuilding a similarly-shaped network allocates nothing.
//
//stretch:noalloc
func (g *MinCost) Reset(n int, eps float64) {
	if eps <= 0 {
		eps = 1e-12
	}
	g.n = n
	g.eps = eps
	if cap(g.head) < n {
		g.head = make([][]int32, n) //stretch:alloc-ok — buffer growth
	}
	g.head = g.head[:n]
	for i := range g.head {
		g.head[i] = g.head[i][:0]
	}
	g.to = g.to[:0]
	g.cap = g.cap[:0]
	g.cost = g.cost[:0]
	g.orig = g.orig[:0]
}

// AddNode appends a node and returns its index, reviving a parked adjacency
// buffer when a shrinking Reset left one in the backing array.
//
//stretch:noalloc
func (g *MinCost) AddNode() int {
	if len(g.head) < cap(g.head) {
		g.head = g.head[:len(g.head)+1]
		g.head[g.n] = g.head[g.n][:0]
	} else {
		g.head = append(g.head, nil)
	}
	g.n++
	return g.n - 1
}

// AddEdge adds a directed edge u→v with the given capacity and per-unit
// cost (cost must be ≥ 0) and returns its identifier for EdgeFlow.
//
//stretch:noalloc
func (g *MinCost) AddEdge(u, v int, capacity, cost float64) int {
	if capacity < 0 {
		panic("flow: negative capacity")
	}
	if cost < 0 {
		panic("flow: negative cost (potentials require cost >= 0)")
	}
	id := len(g.to)
	g.to = append(g.to, int32(v))
	g.cap = append(g.cap, capacity)
	g.cost = append(g.cost, cost)
	g.orig = append(g.orig, capacity)
	g.head[u] = append(g.head[u], int32(id))

	g.to = append(g.to, int32(u))
	g.cap = append(g.cap, 0)
	g.cost = append(g.cost, -cost)
	g.orig = append(g.orig, 0)
	g.head[v] = append(g.head[v], int32(id+1))
	return id
}

// EdgeFlow returns the flow routed through edge id after Run.
func (g *MinCost) EdgeFlow(id int) float64 { return g.orig[id] - g.cap[id] }

// pqItem is one entry of the hand-rolled Dijkstra heap. container/heap is
// avoided on purpose: its interface methods box every pushed item, which
// costs one allocation per relaxation — the dominant allocation of System
// (2) before the workspace overhaul.
type pqItem struct {
	node int32
	dist float64
}

//stretch:noalloc
func (g *MinCost) pqPush(it pqItem) {
	q := append(g.pq, it)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].dist <= q[i].dist {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
	g.pq = q
}

//stretch:noalloc
func (g *MinCost) pqPop() pqItem {
	q := g.pq
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && q[l].dist < q[small].dist {
			small = l
		}
		if r < last && q[r].dist < q[small].dist {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	g.pq = q
	return top
}

// Run computes a min-cost max-flow from s to t. It returns the total flow
// shipped and its total cost. The network retains flow state for EdgeFlow.
//
//stretch:noalloc
func (g *MinCost) Run(s, t int) (flowTotal, costTotal float64) {
	g.pot = grow(g.pot, g.n) // costs ≥ 0 ⇒ zero initial potentials are valid
	g.dist = grow(g.dist, g.n)
	g.inTree = grow(g.inTree, g.n)
	g.level = grow(g.level, g.n)
	g.iter = grow(g.iter, g.n)
	if cap(g.queue) < g.n {
		g.queue = make([]int32, 0, g.n) //stretch:alloc-ok — buffer growth
	}
	pot := g.pot
	for i := range pot {
		pot[i] = 0
	}
	g.sink = t

	// admissible arcs lie on a shortest path after the potential update
	// (reduced cost ≈ 0). The tolerance is relative to the potential
	// magnitude to tolerate float cancellation.
	costTol := func() float64 { //stretch:alloc-ok — non-escaping closure
		m := 1.0
		if p := math.Abs(pot[t]); p > m {
			m = p
		}
		return 1e-9 * m
	}

	for {
		// Dijkstra on reduced costs.
		dist := g.dist
		for i := range dist {
			dist[i] = math.Inf(1)
			g.inTree[i] = false
		}
		dist[s] = 0
		g.pq = g.pq[:0]
		g.pqPush(pqItem{int32(s), 0})
		for len(g.pq) > 0 {
			it := g.pqPop()
			u := int(it.node)
			if g.inTree[u] {
				continue
			}
			g.inTree[u] = true
			for _, id := range g.head[u] {
				if g.cap[id] <= g.eps {
					continue
				}
				v := int(g.to[id])
				if g.inTree[v] {
					continue
				}
				rc := g.cost[id] + pot[u] - pot[v]
				if rc < 0 {
					rc = 0 // float cancellation dust
				}
				if d := dist[u] + rc; d < dist[v] {
					dist[v] = d
					g.pqPush(pqItem{int32(v), d})
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			return flowTotal, costTotal
		}
		for i := range pot {
			if !math.IsInf(dist[i], 1) {
				pot[i] += dist[i]
			} else {
				pot[i] += dist[t]
			}
		}
		g.tol = costTol()

		// Dinic phase restricted to admissible arcs (reduced cost ≈ 0 under
		// the updated potentials): BFS levels, then blocking flow.
		level := g.level
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue := g.queue[:0]
		queue = append(queue, int32(s))
		for qi := 0; qi < len(queue); qi++ {
			u := int(queue[qi])
			for _, id := range g.head[u] {
				if g.cap[id] <= g.eps {
					continue
				}
				v := int(g.to[id])
				if level[v] >= 0 {
					continue
				}
				if rc := g.cost[id] + pot[u] - pot[v]; math.Abs(rc) > g.tol {
					continue
				}
				level[v] = level[u] + 1
				queue = append(queue, int32(v))
			}
		}
		g.queue = queue
		if level[t] < 0 {
			// Numeric corner: Dijkstra reached t but the tolerance filter
			// disagrees; fall back to a single-path augmentation cannot
			// happen because the same arcs were used — treat as done.
			return flowTotal, costTotal
		}
		for i := range g.iter {
			g.iter[i] = 0
		}
		for {
			got, cost := g.blockingDFS(s, math.Inf(1))
			if got <= 0 {
				break
			}
			flowTotal += got
			costTotal += cost
		}
	}
}

// blockingDFS pushes one augmentation toward g.sink along admissible
// level-graph arcs, returning the pushed amount and its cost. It is a
// method rather than a recursive closure so repeated Run calls stay
// allocation-free.
//
//stretch:noalloc
func (g *MinCost) blockingDFS(u int, limit float64) (pushed, cost float64) {
	if u == g.sink {
		return limit, 0
	}
	for ; g.iter[u] < len(g.head[u]); g.iter[u]++ {
		id := g.head[u][g.iter[u]]
		v := int(g.to[id])
		if g.cap[id] <= g.eps || g.level[v] != g.level[u]+1 {
			continue
		}
		if rc := g.cost[id] + g.pot[u] - g.pot[v]; math.Abs(rc) > g.tol {
			continue
		}
		lim := limit
		if g.cap[id] < lim {
			lim = g.cap[id]
		}
		if got, sub := g.blockingDFS(v, lim); got > 0 {
			g.cap[id] -= got
			g.cap[id^1] += got
			return got, sub + got*g.cost[id]
		}
	}
	return 0, 0
}
