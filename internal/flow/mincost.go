package flow

import (
	"container/heap"
	"math"
)

// MinCost solves min-cost max-flow on float64 capacities with nonnegative
// edge costs. It is the engine behind the paper's System (2): the LP
// objective Σ_j Σ_t (Σ_i α^t_{ij}) · mid(I_t) is linear in the work amounts
// with a per-unit cost that depends only on (job, interval), so the optimal
// α is a min-cost transportation plan.
//
// The implementation is the primal-dual (successive shortest path) method
// with two practical accelerations that matter at the harness's scale:
// Johnson potentials keep all reduced costs nonnegative so Dijkstra applies,
// and each potential phase pushes a full Dinic-style blocking flow over the
// shortest-path DAG instead of a single augmenting path, collapsing
// thousands of per-path Dijkstras into a handful of phases.
type MinCost struct {
	n    int
	head [][]int32
	to   []int32
	cap  []float64
	cost []float64
	orig []float64
	eps  float64
}

// NewMinCost returns an empty min-cost-flow network with n nodes.
// eps is the capacity tolerance below which an edge counts as saturated.
func NewMinCost(n int, eps float64) *MinCost {
	if eps <= 0 {
		eps = 1e-12
	}
	return &MinCost{n: n, head: make([][]int32, n), eps: eps}
}

// AddNode appends a node and returns its index.
func (g *MinCost) AddNode() int {
	g.head = append(g.head, nil)
	g.n++
	return g.n - 1
}

// AddEdge adds a directed edge u→v with the given capacity and per-unit
// cost (cost must be ≥ 0) and returns its identifier for EdgeFlow.
func (g *MinCost) AddEdge(u, v int, capacity, cost float64) int {
	if capacity < 0 {
		panic("flow: negative capacity")
	}
	if cost < 0 {
		panic("flow: negative cost (potentials require cost >= 0)")
	}
	id := len(g.to)
	g.to = append(g.to, int32(v))
	g.cap = append(g.cap, capacity)
	g.cost = append(g.cost, cost)
	g.orig = append(g.orig, capacity)
	g.head[u] = append(g.head[u], int32(id))

	g.to = append(g.to, int32(u))
	g.cap = append(g.cap, 0)
	g.cost = append(g.cost, -cost)
	g.orig = append(g.orig, 0)
	g.head[v] = append(g.head[v], int32(id+1))
	return id
}

// EdgeFlow returns the flow routed through edge id after Run.
func (g *MinCost) EdgeFlow(id int) float64 { return g.orig[id] - g.cap[id] }

type pqItem struct {
	node int32
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Run computes a min-cost max-flow from s to t. It returns the total flow
// shipped and its total cost. The network retains flow state for EdgeFlow.
func (g *MinCost) Run(s, t int) (flowTotal, costTotal float64) {
	pot := make([]float64, g.n) // costs ≥ 0 ⇒ zero initial potentials are valid
	dist := make([]float64, g.n)
	inTree := make([]bool, g.n)
	level := make([]int32, g.n)
	iter := make([]int, g.n)
	queue := make([]int32, 0, g.n)

	// admissible reports whether edge id lies on a shortest path after the
	// potential update (reduced cost ≈ 0). The tolerance is relative to the
	// potential magnitude to tolerate float cancellation.
	costTol := func() float64 {
		m := 1.0
		if p := math.Abs(pot[t]); p > m {
			m = p
		}
		return 1e-9 * m
	}

	for {
		// Dijkstra on reduced costs.
		for i := range dist {
			dist[i] = math.Inf(1)
			inTree[i] = false
		}
		dist[s] = 0
		q := pq{{int32(s), 0}}
		for len(q) > 0 {
			it := heap.Pop(&q).(pqItem)
			u := int(it.node)
			if inTree[u] {
				continue
			}
			inTree[u] = true
			for _, id := range g.head[u] {
				if g.cap[id] <= g.eps {
					continue
				}
				v := int(g.to[id])
				if inTree[v] {
					continue
				}
				rc := g.cost[id] + pot[u] - pot[v]
				if rc < 0 {
					rc = 0 // float cancellation dust
				}
				if d := dist[u] + rc; d < dist[v] {
					dist[v] = d
					heap.Push(&q, pqItem{int32(v), d})
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			return flowTotal, costTotal
		}
		for i := range pot {
			if !math.IsInf(dist[i], 1) {
				pot[i] += dist[i]
			} else {
				pot[i] += dist[t]
			}
		}
		tol := costTol()

		// Dinic phase restricted to admissible arcs (reduced cost ≈ 0 under
		// the updated potentials): BFS levels, then blocking flow.
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:0]
		queue = append(queue, int32(s))
		for len(queue) > 0 {
			u := int(queue[0])
			queue = queue[1:]
			for _, id := range g.head[u] {
				if g.cap[id] <= g.eps {
					continue
				}
				v := int(g.to[id])
				if level[v] >= 0 {
					continue
				}
				if rc := g.cost[id] + pot[u] - pot[v]; math.Abs(rc) > tol {
					continue
				}
				level[v] = level[u] + 1
				queue = append(queue, int32(v))
			}
		}
		if level[t] < 0 {
			// Numeric corner: Dijkstra reached t but the tolerance filter
			// disagrees; fall back to a single-path augmentation cannot
			// happen because the same arcs were used — treat as done.
			return flowTotal, costTotal
		}
		for i := range iter {
			iter[i] = 0
		}
		var dfs func(u int, limit float64) float64
		dfs = func(u int, limit float64) float64 {
			if u == t {
				return limit
			}
			for ; iter[u] < len(g.head[u]); iter[u]++ {
				id := g.head[u][iter[u]]
				v := int(g.to[id])
				if g.cap[id] <= g.eps || level[v] != level[u]+1 {
					continue
				}
				if rc := g.cost[id] + pot[u] - pot[v]; math.Abs(rc) > tol {
					continue
				}
				pushed := limit
				if g.cap[id] < pushed {
					pushed = g.cap[id]
				}
				if got := dfs(v, pushed); got > 0 {
					g.cap[id] -= got
					g.cap[id^1] += got
					costTotal += got * g.cost[id]
					return got
				}
			}
			return 0
		}
		for {
			got := dfs(s, math.Inf(1))
			if got <= 0 {
				break
			}
			flowTotal += got
		}
	}
}
