package flow

import (
	"math"
	"math/rand"
	"testing"

	"stretchsched/internal/lp"
	"stretchsched/internal/rat"
)

func f64Graph(n int) *Graph[float64] { return NewGraph[float64](lp.NewFloat64Ops(), n) }

func TestMaxFlowTextbook(t *testing.T) {
	// Classic CLRS network, max flow 23.
	g := f64Graph(6)
	s, v1, v2, v3, v4, tt := 0, 1, 2, 3, 4, 5
	g.AddEdge(s, v1, 16)
	g.AddEdge(s, v2, 13)
	g.AddEdge(v1, v3, 12)
	g.AddEdge(v2, v1, 4)
	g.AddEdge(v2, v4, 14)
	g.AddEdge(v3, v2, 9)
	g.AddEdge(v3, tt, 20)
	g.AddEdge(v4, v3, 7)
	g.AddEdge(v4, tt, 4)
	if got := g.MaxFlow(s, tt); math.Abs(got-23) > 1e-9 {
		t.Fatalf("max flow = %v, want 23", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := f64Graph(3)
	g.AddEdge(0, 1, 5)
	if got := g.MaxFlow(0, 2); got != 0 {
		t.Fatalf("max flow = %v, want 0", got)
	}
}

func TestSecondCallReturnsZero(t *testing.T) {
	g := f64Graph(2)
	g.AddEdge(0, 1, 7)
	if got := g.MaxFlow(0, 1); math.Abs(got-7) > 1e-12 {
		t.Fatalf("first = %v", got)
	}
	if got := g.MaxFlow(0, 1); got != 0 {
		t.Fatalf("second = %v, want 0", got)
	}
}

func TestEdgeFlowRecovery(t *testing.T) {
	g := f64Graph(4)
	a := g.AddEdge(0, 1, 3)
	b := g.AddEdge(0, 2, 2)
	c := g.AddEdge(1, 3, 2)
	d := g.AddEdge(2, 3, 3)
	total := g.MaxFlow(0, 3)
	if math.Abs(total-4) > 1e-9 {
		t.Fatalf("flow = %v, want 4", total)
	}
	if got := g.EdgeFlow(a) + g.EdgeFlow(b); math.Abs(got-total) > 1e-9 {
		t.Fatalf("source edges carry %v", got)
	}
	if got := g.EdgeFlow(c) + g.EdgeFlow(d); math.Abs(got-total) > 1e-9 {
		t.Fatalf("sink edges carry %v", got)
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f64Graph(2).AddEdge(0, 1, -1)
}

func TestRationalMaxFlowExact(t *testing.T) {
	g := NewGraph[rat.Rat](lp.RatOps{}, 4)
	g.AddEdge(0, 1, rat.FromFrac(1, 3))
	g.AddEdge(0, 2, rat.FromFrac(1, 7))
	g.AddEdge(1, 3, rat.FromFrac(1, 2))
	g.AddEdge(2, 3, rat.FromFrac(1, 2))
	got := g.MaxFlow(0, 3)
	want := rat.FromFrac(1, 3).Add(rat.FromFrac(1, 7))
	if !got.Equal(want) {
		t.Fatalf("max flow = %v, want %v", got, want)
	}
}

// randomNetwork builds a random DAG-ish network with integer capacities.
func randomNetwork(rng *rand.Rand, n int) (*Graph[float64], *Graph[rat.Rat], [][3]int) {
	gf := f64Graph(n)
	gr := NewGraph[rat.Rat](lp.RatOps{}, n)
	var edges [][3]int
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || rng.Float64() > 0.4 {
				continue
			}
			c := rng.Intn(10) + 1
			gf.AddEdge(u, v, float64(c))
			gr.AddEdge(u, v, rat.FromInt(int64(c)))
			edges = append(edges, [3]int{u, v, c})
		}
	}
	return gf, gr, edges
}

func TestMaxFlowMatchesMinCutAndRational(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(5)
		gf, gr, edges := randomNetwork(rng, n)
		s, sink := 0, n-1
		ff := gf.MaxFlow(s, sink)
		fr := gr.MaxFlow(s, sink)
		if math.Abs(ff-fr.Float()) > 1e-9 {
			t.Fatalf("trial %d: float %v != rational %v", trial, ff, fr)
		}
		// Max-flow/min-cut certificate.
		reach := gf.MinCutReachable(s)
		if reach[sink] && ff > 0 {
			// Sink reachable means flow not maximal (residual path remains).
			t.Fatalf("trial %d: residual path to sink remains", trial)
		}
		cut := 0.0
		for _, e := range edges {
			if reach[e[0]] && !reach[e[1]] {
				cut += float64(e[2])
			}
		}
		if math.Abs(cut-ff) > 1e-9 {
			t.Fatalf("trial %d: cut %v != flow %v", trial, cut, ff)
		}
	}
}

func TestMaxFlowConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(4)
		gf, _, _ := randomNetwork(rng, n)
		s, sink := 0, n-1
		total := gf.MaxFlow(s, sink)
		// Net flow out of every internal node must be zero.
		net := make([]float64, n)
		for u := 0; u < n; u++ {
			for _, id := range gf.head[u] {
				if id%2 != 0 {
					continue // skip residual twins
				}
				f := gf.EdgeFlow(id)
				net[u] -= f
				net[gf.to[id]] += f
			}
		}
		for u := 1; u < n-1; u++ {
			if math.Abs(net[u]) > 1e-9 {
				t.Fatalf("trial %d: node %d imbalance %v", trial, u, net[u])
			}
		}
		if math.Abs(net[sink]-total) > 1e-9 || math.Abs(net[s]+total) > 1e-9 {
			t.Fatalf("trial %d: endpoint imbalance", trial)
		}
	}
}

func TestMinCostSimple(t *testing.T) {
	// Two parallel paths; cheaper one must fill first.
	g := NewMinCost(4, 0)
	cheap := g.AddEdge(0, 1, 5, 1)
	exp := g.AddEdge(0, 2, 5, 10)
	g.AddEdge(1, 3, 5, 0)
	g.AddEdge(2, 3, 5, 0)
	flowTotal, costTotal := g.Run(0, 3)
	if math.Abs(flowTotal-10) > 1e-9 {
		t.Fatalf("flow = %v", flowTotal)
	}
	if math.Abs(costTotal-55) > 1e-9 {
		t.Fatalf("cost = %v, want 55", costTotal)
	}
	if math.Abs(g.EdgeFlow(cheap)-5) > 1e-9 || math.Abs(g.EdgeFlow(exp)-5) > 1e-9 {
		t.Fatal("edge flows wrong")
	}
}

func TestMinCostPrefersCheapPath(t *testing.T) {
	// Capacity exceeds demand: only the cheap path should carry flow.
	g := NewMinCost(4, 0)
	cheap := g.AddEdge(0, 1, 10, 1)
	exp := g.AddEdge(0, 2, 10, 5)
	g.AddEdge(1, 3, 10, 0)
	g.AddEdge(2, 3, 10, 0)
	g.AddNode() // exercise AddNode
	src := g.AddNode()
	g.AddEdge(src, 0, 6, 0)
	flowTotal, costTotal := g.Run(src, 3)
	if math.Abs(flowTotal-6) > 1e-9 || math.Abs(costTotal-6) > 1e-9 {
		t.Fatalf("flow %v cost %v, want 6 and 6", flowTotal, costTotal)
	}
	if g.EdgeFlow(exp) > 1e-9 || math.Abs(g.EdgeFlow(cheap)-6) > 1e-9 {
		t.Fatal("expensive path used unnecessarily")
	}
}

func TestMinCostNegativeCostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMinCost(2, 0).AddEdge(0, 1, 1, -1)
}

// TestMinCostMatchesLP cross-validates min-cost flow against the simplex on
// random transportation problems.
func TestMinCostMatchesLP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		nsup := 2 + rng.Intn(3)
		ndem := 2 + rng.Intn(3)
		supply := make([]float64, nsup)
		demand := make([]float64, ndem)
		tot := 0.0
		for i := range supply {
			supply[i] = float64(rng.Intn(8) + 1)
			tot += supply[i]
		}
		rem := tot
		for j := 0; j < ndem-1; j++ {
			demand[j] = math.Floor(rem * rng.Float64() * 0.6)
			rem -= demand[j]
		}
		demand[ndem-1] = rem
		cost := make([][]float64, nsup)
		for i := range cost {
			cost[i] = make([]float64, ndem)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(9) + 1)
			}
		}

		// Min-cost flow formulation.
		g := NewMinCost(nsup+ndem+2, 0)
		s := nsup + ndem
		sink := s + 1
		for i := range supply {
			g.AddEdge(s, i, supply[i], 0)
		}
		for j := range demand {
			g.AddEdge(nsup+j, sink, demand[j], 0)
		}
		for i := range supply {
			for j := range demand {
				g.AddEdge(i, nsup+j, tot, cost[i][j]) // cap tot suffices
			}
		}
		fl, fc := g.Run(s, sink)
		if math.Abs(fl-tot) > 1e-9 {
			t.Fatalf("trial %d: flow %v != total %v", trial, fl, tot)
		}

		// LP formulation: min Σ c_ij x_ij st Σ_j x_ij = supply_i, Σ_i x_ij = demand_j.
		p := lp.New[float64](lp.NewFloat64Ops(), nsup*ndem)
		for i := range supply {
			for j := range demand {
				p.SetObjectiveCoef(i*ndem+j, cost[i][j])
			}
		}
		for i := range supply {
			vars, coefs := []int{}, []float64{}
			for j := range demand {
				vars = append(vars, i*ndem+j)
				coefs = append(coefs, 1)
			}
			p.AddSparse(vars, coefs, lp.EQ, supply[i])
		}
		for j := range demand {
			vars, coefs := []int{}, []float64{}
			for i := range supply {
				vars = append(vars, i*ndem+j)
				coefs = append(coefs, 1)
			}
			p.AddSparse(vars, coefs, lp.EQ, demand[j])
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: LP: %v", trial, err)
		}
		if math.Abs(sol.Objective-fc) > 1e-6 {
			t.Fatalf("trial %d: LP obj %v != flow cost %v", trial, sol.Objective, fc)
		}
	}
}
