package exp

import (
	"bytes"
	"math"
	"runtime"
	"sync"
	"testing"

	"stretchsched/internal/core"
)

// gridTestOptions is a small but non-trivial grid slice: cheap list
// policies plus the planned offline/online stack, several points, several
// runs — enough work that a racy or shard-dependent runner would diverge.
func gridTestPoints() []GridPoint {
	return []GridPoint{
		{Sites: 3, Databanks: 3, Availability: 0.6, Density: 1.0},
		{Sites: 3, Databanks: 3, Availability: 0.9, Density: 2.0},
		{Sites: 10, Databanks: 10, Availability: 0.3, Density: 0.75},
	}
}

func gridTestOptions(workers int) Options {
	return Options{
		Runs:       3,
		Seed:       17,
		TargetJobs: 8,
		// Bender98 is included so the invariance test also covers the
		// heaviest (largest-first-dispatched) shard class on 3-site points.
		Schedulers: []string{"Offline", "Online", "Bender98", "SWRPT", "SRPT", "MCT"},
		Workers:    workers,
	}
}

func sameMetric(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// TestGridWorkerInvariance is the acceptance test for the sharded runner:
// results, the rendered tables, and the merged CSV stream must be
// byte-identical for 1 worker and NumCPU workers.
func TestGridWorkerInvariance(t *testing.T) {
	points := gridTestPoints()
	n := runtime.NumCPU()
	if n < 2 {
		n = 4 // still exercises the pool with more workers than shards
	}

	var csv1, csvN bytes.Buffer
	res1, err := RunGridCSV(&csv1, points, gridTestOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	resN, err := RunGridCSV(&csvN, points, gridTestOptions(n))
	if err != nil {
		t.Fatal(err)
	}

	if len(res1) != len(resN) {
		t.Fatalf("result counts differ: %d vs %d", len(res1), len(resN))
	}
	for i := range res1 {
		a, b := res1[i], resN[i]
		if a.Point != b.Point || a.Run != b.Run || a.Jobs != b.Jobs {
			t.Fatalf("instance %d identity differs: %+v vs %+v", i, a, b)
		}
		for name := range a.MaxStretch {
			if !sameMetric(a.MaxStretch[name], b.MaxStretch[name]) {
				t.Fatalf("instance %d %s max-stretch: %v (1 worker) vs %v (%d workers)",
					i, name, a.MaxStretch[name], b.MaxStretch[name], n)
			}
			if !sameMetric(a.SumStretch[name], b.SumStretch[name]) {
				t.Fatalf("instance %d %s sum-stretch: %v vs %v",
					i, name, a.SumStretch[name], b.SumStretch[name])
			}
		}
	}

	sched := gridTestOptions(0).Schedulers
	t1 := Render("Table X", Aggregate(res1, nil, sched))
	tN := Render("Table X", Aggregate(resN, nil, sched))
	if t1 != tN {
		t.Fatalf("rendered tables differ:\n%s\nvs\n%s", t1, tN)
	}

	if !bytes.Equal(csv1.Bytes(), csvN.Bytes()) {
		t.Fatalf("merged CSV differs between 1 and %d workers (%d vs %d bytes)",
			n, csv1.Len(), csvN.Len())
	}
	if csv1.Len() == 0 {
		t.Fatal("CSV output empty")
	}
}

// TestShardOrderLargestFirst: shards must be dispatched as a permutation of
// all shard indices, sorted by non-increasing estimated cost, with the
// Bender98-eligible 3-site points outweighing even the 20-site ones (the
// §5.3 cost ordering that motivates largest-first dispatch).
func TestShardOrderLargestFirst(t *testing.T) {
	points := []GridPoint{
		{Sites: 20, Databanks: 20, Availability: 0.9, Density: 3.0},
		{Sites: 3, Databanks: 3, Availability: 0.6, Density: 1.0}, // Bender98 runs here
		{Sites: 10, Databanks: 10, Availability: 0.3, Density: 0.75},
	}
	opts := gridTestOptions(1).withDefaults()
	total := len(points) * opts.Runs
	nShards := (total + shardSize - 1) / shardSize

	order := shardOrder(points, opts, total, nShards)
	if len(order) != nShards {
		t.Fatalf("order has %d shards, want %d", len(order), nShards)
	}
	seen := make([]bool, nShards)
	for _, si := range order {
		if si < 0 || si >= nShards || seen[si] {
			t.Fatalf("order %v is not a permutation of [0,%d)", order, nShards)
		}
		seen[si] = true
	}
	weightOf := func(si int) float64 {
		w := 0.0
		for ti := si * shardSize; ti < (si+1)*shardSize && ti < total; ti++ {
			w += opts.pointWeight(points[ti/opts.Runs])
		}
		return w
	}
	for i := 1; i < len(order); i++ {
		if weightOf(order[i]) > weightOf(order[i-1]) {
			t.Fatalf("shard %d (weight %g) dispatched after lighter shard %d (weight %g)",
				order[i], weightOf(order[i]), order[i-1], weightOf(order[i-1]))
		}
	}
	// The Bender98 point must dominate the weight ranking.
	if w3, w20 := opts.pointWeight(points[1]), opts.pointWeight(points[0]); w3 <= w20 {
		t.Fatalf("3-site Bender98 point weight %g not above 20-site weight %g", w3, w20)
	}
	// Without Bender98 in the mix, the 20-site point is the heavy one.
	noB := opts
	noB.Schedulers = []string{"Offline", "Online"}
	if w3, w20 := noB.pointWeight(points[1]), noB.pointWeight(points[0]); w3 >= w20 {
		t.Fatalf("without Bender98, 3-site weight %g not below 20-site weight %g", w3, w20)
	}
}

// TestRunGridCSVMatchesWriteResultsCSV: the per-shard merge must produce
// exactly what the single-pass writer produces from the ordered results.
func TestRunGridCSVMatchesWriteResultsCSV(t *testing.T) {
	points := gridTestPoints()[:2]
	opts := gridTestOptions(3)
	var streamed bytes.Buffer
	results, err := RunGridCSV(&streamed, points, opts)
	if err != nil {
		t.Fatal(err)
	}
	var single bytes.Buffer
	if err := WriteResultsCSV(&single, results, opts.Schedulers); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), single.Bytes()) {
		t.Fatalf("per-shard merged CSV differs from single-pass CSV:\n%q\nvs\n%q",
			streamed.String(), single.String())
	}
}

// TestGridProgressReporting: the callback must fire once per instance,
// serialised, and reach (total, total).
func TestGridProgressReporting(t *testing.T) {
	points := gridTestPoints()[:2]
	opts := gridTestOptions(4)
	opts.Schedulers = []string{"SWRPT", "MCT"}
	var mu sync.Mutex
	calls, last := 0, 0
	opts.Progress = func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if done > last {
			last = done
		}
		if total != len(points)*opts.Runs {
			t.Errorf("total = %d, want %d", total, len(points)*opts.Runs)
		}
	}
	RunGrid(points, opts)
	want := len(points) * opts.Runs
	if calls != want || last != want {
		t.Fatalf("progress: %d calls, max done %d, want %d", calls, last, want)
	}
}

// TestRunnerReuseMatchesScheduler: core.Runner on a shared engine must
// reproduce the plain Scheduler.Run results exactly for every Table 1
// entry (the registry threading used by every worker).
func TestRunnerReuseMatchesScheduler(t *testing.T) {
	opts := gridTestOptions(1)
	inst, err := opts.config(gridTestPoints()[0], 0, 0).Generate()
	if err != nil {
		t.Fatal(err)
	}
	runner := core.NewRunner()
	for _, name := range []string{"Offline", "Online", "SWRPT", "SRPT", "Bender02", "MCT"} {
		s := core.MustGet(name)
		fresh, err := s.Run(inst)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		reused, err := runner.Run(s, inst)
		if err != nil {
			t.Fatalf("%s reused: %v", name, err)
		}
		for j := range fresh.Completion {
			if fresh.Completion[j] != reused.Completion[j] {
				t.Fatalf("%s: job %d: engine-reuse %v, fresh %v",
					name, j, reused.Completion[j], fresh.Completion[j])
			}
		}
	}
}
