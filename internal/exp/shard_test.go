package exp

import (
	"bytes"
	"strings"
	"testing"
)

// TestShardGridPartition: the n shards of a grid partition it — every
// point appears in exactly one shard, with its global index preserved.
func TestShardGridPartition(t *testing.T) {
	points := DefaultGrid()
	for _, n := range []int{1, 2, 6, 7} {
		seen := make([]int, len(points))
		for k := 0; k < n; k++ {
			shard, indices := ShardGrid(points, k, n)
			if len(shard) != len(indices) {
				t.Fatalf("n=%d k=%d: %d points but %d indices", n, k, len(shard), len(indices))
			}
			for i, gi := range indices {
				if shard[i] != points[gi] {
					t.Fatalf("n=%d k=%d: shard[%d] = %v, but global %d is %v",
						n, k, i, shard[i], gi, points[gi])
				}
				seen[gi]++
			}
		}
		for gi, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: point %d covered %d times", n, gi, c)
			}
		}
	}
}

func TestShardGridRejectsBadShard(t *testing.T) {
	for _, bad := range [][2]int{{-1, 2}, {2, 2}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ShardGrid(%d, %d) should panic", bad[0], bad[1])
				}
			}()
			ShardGrid(DefaultGrid(), bad[0], bad[1])
		}()
	}
}

// TestShardedMatchesUnsharded is the seed-safety contract of the nightly
// matrix: running the grid as interleaved shards with PointIndices set
// produces, instance for instance, exactly the results of the unsharded
// run — the seeds derive from global grid coordinates, not shard-local
// positions.
func TestShardedMatchesUnsharded(t *testing.T) {
	points := gridTestPoints()
	opts := gridTestOptions(2)
	full := RunGrid(points, opts)

	const n = 2
	for k := 0; k < n; k++ {
		shard, indices := ShardGrid(points, k, n)
		sopts := opts
		sopts.PointIndices = indices
		part := RunGrid(shard, sopts)
		if len(part) != len(shard)*opts.Runs {
			t.Fatalf("shard %d: %d results, want %d", k, len(part), len(shard)*opts.Runs)
		}
		for i := range part {
			gi := indices[i/opts.Runs]
			want := full[gi*opts.Runs+i%opts.Runs]
			got := part[i]
			if got.Point != want.Point || got.Run != want.Run || got.Jobs != want.Jobs {
				t.Fatalf("shard %d result %d: header %v/%d/%d, want %v/%d/%d",
					k, i, got.Point, got.Run, got.Jobs, want.Point, want.Run, want.Jobs)
			}
			for name, w := range want.MaxStretch {
				if g, ok := got.MaxStretch[name]; !ok || !sameMetric(g, w) {
					t.Fatalf("shard %d %v run %d %s: max %v, want %v",
						k, got.Point, got.Run, name, g, w)
				}
			}
			for name, w := range want.SumStretch {
				if g, ok := got.SumStretch[name]; !ok || !sameMetric(g, w) {
					t.Fatalf("shard %d %v run %d %s: sum %v, want %v",
						k, got.Point, got.Run, name, g, w)
				}
			}
		}
	}
}

// TestDryRunPredictsRowCount: a dry pass emits exactly as many CSV rows
// as the real grid (same instances, same per-scheduler row structure,
// metrics NA) — the assertion the nightly merge job makes against the
// concatenated shard CSVs.
func TestDryRunPredictsRowCount(t *testing.T) {
	points := gridTestPoints()
	opts := gridTestOptions(2)

	var real, dry bytes.Buffer
	if _, err := RunGridCSV(&real, points, opts); err != nil {
		t.Fatal(err)
	}
	dopts := opts
	dopts.DryRun = true
	if _, err := RunGridCSV(&dry, points, dopts); err != nil {
		t.Fatal(err)
	}
	realRows := strings.Count(real.String(), "\n")
	dryRows := strings.Count(dry.String(), "\n")
	if realRows != dryRows {
		t.Fatalf("dry run predicts %d rows, real run wrote %d", dryRows, realRows)
	}
	if realRows <= len(points) {
		t.Fatalf("suspiciously few rows (%d) for %d points", realRows, len(points))
	}
	// Dry metrics must all be NA, and row headers must agree line by line.
	realLines := strings.Split(real.String(), "\n")
	dryLines := strings.Split(dry.String(), "\n")
	for i, dl := range dryLines {
		if i == 0 || dl == "" {
			continue
		}
		fields := strings.Split(dl, ",")
		if fields[len(fields)-1] != "NA" || fields[len(fields)-2] != "NA" {
			t.Fatalf("dry row %d has non-NA metrics: %q", i, dl)
		}
		prefix := strings.Join(fields[:len(fields)-2], ",")
		if !strings.HasPrefix(realLines[i], prefix+",") {
			t.Fatalf("dry row %d header %q does not match real row %q", i, prefix, realLines[i])
		}
	}
}

// TestShardedCSVConcatenation mirrors the nightly merge job in miniature:
// per-shard RunGridCSV outputs concatenated (header kept once) contain
// exactly the rows of the unsharded CSV, reordered by shard.
func TestShardedCSVConcatenation(t *testing.T) {
	points := gridTestPoints()
	opts := gridTestOptions(2)

	var full bytes.Buffer
	if _, err := RunGridCSV(&full, points, opts); err != nil {
		t.Fatal(err)
	}

	const n = 2
	var merged bytes.Buffer
	for k := 0; k < n; k++ {
		shard, indices := ShardGrid(points, k, n)
		sopts := opts
		sopts.PointIndices = indices
		var buf bytes.Buffer
		if _, err := RunGridCSV(&buf, shard, sopts); err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitAfter(buf.String(), "\n")
		start := 1 // drop the per-shard header
		if k == 0 {
			start = 0
		}
		for _, l := range lines[start:] {
			merged.WriteString(l)
		}
	}

	fullRows := strings.Split(strings.TrimRight(full.String(), "\n"), "\n")
	mergedRows := strings.Split(strings.TrimRight(merged.String(), "\n"), "\n")
	if len(fullRows) != len(mergedRows) {
		t.Fatalf("merged CSV has %d rows, unsharded %d", len(mergedRows), len(fullRows))
	}
	if fullRows[0] != mergedRows[0] {
		t.Fatalf("headers differ: %q vs %q", mergedRows[0], fullRows[0])
	}
	count := map[string]int{}
	for _, r := range fullRows[1:] {
		count[r]++
	}
	for _, r := range mergedRows[1:] {
		count[r]--
		if count[r] < 0 {
			t.Fatalf("merged CSV has unexpected row %q", r)
		}
	}
	for r, c := range count {
		if c != 0 {
			t.Fatalf("merged CSV is missing row %q", r)
		}
	}
}

// TestReadResultsCSVRoundTrip: WriteResultsCSV → ReadResultsCSV is the
// identity on the metric content, so -fromcsv table aggregation matches
// live-grid aggregation exactly.
func TestReadResultsCSVRoundTrip(t *testing.T) {
	points := gridTestPoints()
	opts := gridTestOptions(2)
	results := RunGrid(points, opts)

	var buf bytes.Buffer
	if err := WriteResultsCSV(&buf, results, opts.Schedulers); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResultsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(results) {
		t.Fatalf("round trip has %d instances, want %d", len(back), len(results))
	}
	for i, want := range results {
		got := back[i]
		if got.Point != want.Point || got.Run != want.Run || got.Jobs != want.Jobs {
			t.Fatalf("instance %d header %v/%d/%d, want %v/%d/%d",
				i, got.Point, got.Run, got.Jobs, want.Point, want.Run, want.Jobs)
		}
		if len(got.MaxStretch) != len(want.MaxStretch) {
			t.Fatalf("instance %d has %d schedulers, want %d",
				i, len(got.MaxStretch), len(want.MaxStretch))
		}
		for name, w := range want.MaxStretch {
			if g := got.MaxStretch[name]; !sameMetric(g, w) {
				t.Fatalf("instance %d %s max %v, want %v", i, name, g, w)
			}
		}
		for name, w := range want.SumStretch {
			if g := got.SumStretch[name]; !sameMetric(g, w) {
				t.Fatalf("instance %d %s sum %v, want %v", i, name, g, w)
			}
		}
	}

	// Aggregated tables from the round-tripped results must match.
	wantRows := Aggregate(results, nil, opts.Schedulers)
	gotRows := Aggregate(back, nil, opts.Schedulers)
	if len(wantRows) != len(gotRows) {
		t.Fatalf("aggregate rows %d vs %d", len(gotRows), len(wantRows))
	}
	for i := range wantRows {
		if wantRows[i] != gotRows[i] {
			t.Fatalf("aggregate row %d: %+v vs %+v", i, gotRows[i], wantRows[i])
		}
	}
}
