package exp

import (
	"fmt"
	"math"
	"strings"

	"stretchsched/internal/stats"
)

// Row is one line of a paper table: per-scheduler aggregate statistics of
// the ratio-to-best for max-stretch and sum-stretch.
type Row struct {
	Scheduler string
	N         int
	MaxMean   float64
	MaxSD     float64
	MaxMax    float64
	SumMean   float64
	SumSD     float64
	SumMax    float64
}

// Aggregate normalises each instance's metrics by the best value observed
// on that instance and aggregates the ratios over the instances whose grid
// point passes the filter (nil filter = all), in the given scheduler order.
func Aggregate(results []InstanceResult, filter func(GridPoint) bool, schedulers []string) []Row {
	maxAgg := map[string]*stats.Agg{}
	sumAgg := map[string]*stats.Agg{}
	for _, name := range schedulers {
		maxAgg[name] = &stats.Agg{}
		sumAgg[name] = &stats.Agg{}
	}
	for _, res := range results {
		if filter != nil && !filter(res.Point) {
			continue
		}
		if res.Jobs == 0 {
			continue
		}
		maxRatio := stats.RatiosToBest(res.MaxStretch)
		sumRatio := stats.RatiosToBest(res.SumStretch)
		for _, name := range schedulers {
			if r, ok := maxRatio[name]; ok && !math.IsNaN(r) {
				maxAgg[name].Add(r)
			}
			if r, ok := sumRatio[name]; ok && !math.IsNaN(r) {
				sumAgg[name].Add(r)
			}
		}
	}
	rows := make([]Row, 0, len(schedulers))
	for _, name := range schedulers {
		rows = append(rows, Row{
			Scheduler: name,
			N:         maxAgg[name].N(),
			MaxMean:   maxAgg[name].Mean(),
			MaxSD:     maxAgg[name].SD(),
			MaxMax:    maxAgg[name].Max(),
			SumMean:   sumAgg[name].Mean(),
			SumSD:     sumAgg[name].SD(),
			SumMax:    sumAgg[name].Max(),
		})
	}
	return rows
}

// TableSpec identifies one of the paper's sixteen tables by its filter.
type TableSpec struct {
	Number int
	Title  string
	Filter func(GridPoint) bool
}

// Tables returns the sixteen table specifications of the paper.
func Tables() []TableSpec {
	specs := []TableSpec{{1, "Aggregate statistics over all 162 platform/application configurations", nil}}
	for _, s := range []int{3, 10, 20} {
		sites := s
		specs = append(specs, TableSpec{
			Number: len(specs) + 1,
			Title:  fmt.Sprintf("Aggregate statistics over configurations using %d sites", sites),
			Filter: func(g GridPoint) bool { return g.Sites == sites },
		})
	}
	for _, d := range []float64{0.75, 1.0, 1.25, 1.5, 2.0, 3.0} {
		dens := d
		specs = append(specs, TableSpec{
			Number: len(specs) + 1,
			Title:  fmt.Sprintf("Aggregate statistics over configurations with workload density %.2f", dens),
			Filter: func(g GridPoint) bool { return g.Density == dens },
		})
	}
	for _, b := range []int{3, 10, 20} {
		banks := b
		specs = append(specs, TableSpec{
			Number: len(specs) + 1,
			Title:  fmt.Sprintf("Aggregate statistics over configurations with %d reference databanks", banks),
			Filter: func(g GridPoint) bool { return g.Databanks == banks },
		})
	}
	for _, a := range []float64{0.3, 0.6, 0.9} {
		avail := a
		specs = append(specs, TableSpec{
			Number: len(specs) + 1,
			Title:  fmt.Sprintf("Aggregate statistics over configurations with databank availability %.0f%%", 100*avail),
			Filter: func(g GridPoint) bool { return g.Availability == avail },
		})
	}
	return specs
}

// TableByNumber returns the spec of the paper's table n (1–16).
func TableByNumber(n int) (TableSpec, error) {
	for _, s := range Tables() {
		if s.Number == n {
			return s, nil
		}
	}
	return TableSpec{}, fmt.Errorf("exp: no table %d (valid: 1-16)", n)
}

// Render formats rows in the paper's table layout.
func Render(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s | %28s | %28s | %s\n", "", "Max-stretch (ratio to best)", "Sum-stretch (ratio to best)", "N")
	fmt.Fprintf(&b, "%-14s | %8s %9s %9s | %8s %9s %9s |\n",
		"", "Mean", "SD", "Max", "Mean", "SD", "Max")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 14+3+28+3+28+3+6))
	for _, r := range rows {
		if r.N == 0 {
			fmt.Fprintf(&b, "%-14s | %28s | %28s | 0\n", r.Scheduler, "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%-14s | %8.4f %9.4f %9.4f | %8.4f %9.4f %9.4f | %d\n",
			r.Scheduler, r.MaxMean, r.MaxSD, r.MaxMax, r.SumMean, r.SumSD, r.SumMax, r.N)
	}
	return b.String()
}
