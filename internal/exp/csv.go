package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteResultsCSV dumps raw per-instance metrics (one row per scheduler per
// instance) for external analysis — the harness's tables are aggregates;
// this is the underlying data.
func WriteResultsCSV(w io.Writer, results []InstanceResult, schedulers []string) error {
	cw := csv.NewWriter(w)
	header := []string{"sites", "databanks", "availability", "density", "run",
		"jobs", "scheduler", "max_stretch", "sum_stretch"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		for _, name := range schedulers {
			maxS, okM := r.MaxStretch[name]
			sumS, okS := r.SumStretch[name]
			if !okM && !okS {
				continue
			}
			row := []string{
				strconv.Itoa(r.Point.Sites),
				strconv.Itoa(r.Point.Databanks),
				formatFloat(r.Point.Availability),
				formatFloat(r.Point.Density),
				strconv.Itoa(r.Run),
				strconv.Itoa(r.Jobs),
				name,
				formatFloat(maxS),
				formatFloat(sumS),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure3CSV dumps the Figure 3 series.
func WriteFigure3CSV(w io.Writer, points []Fig3Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"density", "opt_degradation_pct",
		"nonopt_degradation_pct", "sum_gain_pct", "n"}); err != nil {
		return err
	}
	for _, p := range points {
		if err := cw.Write([]string{
			formatFloat(p.Density),
			formatFloat(p.OptDegradation),
			formatFloat(p.NonOptDegradation),
			formatFloat(p.SumGain),
			strconv.Itoa(p.N),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(f float64) string {
	if math.IsNaN(f) {
		return "NA"
	}
	return fmt.Sprintf("%g", f)
}
