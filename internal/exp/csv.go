package exp

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
)

// resultsHeader is the column layout of the raw per-instance metric dump.
var resultsHeader = []string{"sites", "databanks", "availability", "density",
	"run", "jobs", "scheduler", "max_stretch", "sum_stretch"}

// writeResultRows encodes one instance's per-scheduler rows.
func writeResultRows(cw *csv.Writer, r *InstanceResult, schedulers []string) error {
	for _, name := range schedulers {
		maxS, okM := r.MaxStretch[name]
		sumS, okS := r.SumStretch[name]
		if !okM && !okS {
			continue
		}
		row := []string{
			strconv.Itoa(r.Point.Sites),
			strconv.Itoa(r.Point.Databanks),
			formatFloat(r.Point.Availability),
			formatFloat(r.Point.Density),
			strconv.Itoa(r.Run),
			strconv.Itoa(r.Jobs),
			name,
			formatFloat(maxS),
			formatFloat(sumS),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// encodeShard encodes one completed shard's rows (header-less) into w,
// surfacing both row-encode and flush errors. It is the per-shard encode
// step of RunGridCSV, split out so the error path is testable with a
// failing writer.
func encodeShard(w io.Writer, shard []InstanceResult, schedulers []string) error {
	cw := csv.NewWriter(w)
	for i := range shard {
		if err := writeResultRows(cw, &shard[i], schedulers); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteResultsCSV dumps raw per-instance metrics (one row per scheduler per
// instance) for external analysis — the harness's tables are aggregates;
// this is the underlying data.
func WriteResultsCSV(w io.Writer, results []InstanceResult, schedulers []string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(resultsHeader); err != nil {
		return err
	}
	for i := range results {
		if err := writeResultRows(cw, &results[i], schedulers); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// csvStream is the in-order shard flusher shared by the CSV-streaming grid
// runners: completed shards hand their encoded bytes to add, which flushes
// to the underlying writer as soon as every earlier shard has been written,
// so task order — and therefore the output bytes — is identical for any
// worker count and any dispatch order. Encoded shards wait in memory (a
// few MB at paper scale) until the in-order cursor reaches them, so a run
// killed midway keeps only the contiguous task-order prefix that happened
// to complete.
type csvStream struct {
	w       io.Writer
	mu      sync.Mutex
	pending map[int][]byte // encoded shards not yet flushable
	next    int            // lowest shard index not yet written
	werr    error
}

// newCSVStream writes the header row and returns the stream, or the header
// write error.
func newCSVStream(w io.Writer, header []string) (*csvStream, error) {
	hc := csv.NewWriter(w)
	if err := hc.Write(header); err != nil {
		return nil, err
	}
	hc.Flush()
	if err := hc.Error(); err != nil {
		return nil, err
	}
	return &csvStream{w: w, pending: map[int][]byte{}}, nil
}

// failed reports whether the stream has already recorded an error, so
// workers skip encoding work that could never be written.
func (s *csvStream) failed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.werr != nil
}

// fail poisons the stream with an encode error: a shard that fails to
// encode must surface as the run's error, never as a silently truncated
// CSV.
func (s *csvStream) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.werr == nil {
		s.werr = err
	}
}

// add hands shard si's encoded bytes to the in-order flush.
func (s *csvStream) add(si int, b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending[si] = b
	for b, ok := s.pending[s.next]; ok; b, ok = s.pending[s.next] {
		delete(s.pending, s.next)
		if s.werr == nil {
			_, s.werr = s.w.Write(b)
		}
		s.next++
	}
}

// err returns the first encode or write error.
func (s *csvStream) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.werr
}

// RunGridCSV runs the grid and streams the raw per-instance metrics to w
// while the grid is still running: each worker encodes its shard's rows
// while the results are hot and hands them to the in-order csvStream
// flush. The grid results are returned as from RunGrid, together with the
// first encode or write error (the grid always runs to completion;
// encoding is skipped once a write has failed).
func RunGridCSV(w io.Writer, points []GridPoint, opts Options) ([]InstanceResult, error) {
	opts = opts.withDefaults()
	stream, err := newCSVStream(w, resultsHeader)
	if err != nil {
		return nil, err
	}
	results := runGridSharded(points, opts, func(si int, shard []InstanceResult) {
		if stream.failed() {
			return
		}
		var buf bytes.Buffer
		if err := encodeShard(&buf, shard, opts.Schedulers); err != nil {
			stream.fail(fmt.Errorf("exp: encoding shard %d: %w", si, err))
			return
		}
		stream.add(si, buf.Bytes())
	})
	return results, stream.err()
}

// ReadResultsCSV parses a raw per-instance metric dump produced by
// WriteResultsCSV / RunGridCSV (or by concatenating per-shard dumps, as
// the nightly matrix merge does) back into InstanceResults, grouping the
// per-scheduler rows of one instance by (grid point, run). Row order
// within an instance is preserved; instances appear in first-row order.
// It is the read side that lets tables be aggregated from an existing CSV
// instead of a live grid pass.
func ReadResultsCSV(r io.Reader) ([]InstanceResult, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("exp: results CSV header: %w", err)
	}
	if len(header) != len(resultsHeader) {
		return nil, fmt.Errorf("exp: results CSV header has %d columns, want %d",
			len(header), len(resultsHeader))
	}
	for i, name := range resultsHeader {
		if header[i] != name {
			return nil, fmt.Errorf("exp: results CSV column %d is %q, want %q",
				i, header[i], name)
		}
	}
	type instKey struct {
		point GridPoint
		run   int
	}
	var results []InstanceResult
	index := map[instKey]int{}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return results, nil
		}
		if err != nil {
			return nil, fmt.Errorf("exp: results CSV line %d: %w", line, err)
		}
		bad := func(col string, err error) error {
			return fmt.Errorf("exp: results CSV line %d: bad %s: %w", line, col, err)
		}
		sites, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, bad("sites", err)
		}
		dbs, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, bad("databanks", err)
		}
		avail, err := parseFloat(row[2])
		if err != nil {
			return nil, bad("availability", err)
		}
		density, err := parseFloat(row[3])
		if err != nil {
			return nil, bad("density", err)
		}
		run, err := strconv.Atoi(row[4])
		if err != nil {
			return nil, bad("run", err)
		}
		jobs, err := strconv.Atoi(row[5])
		if err != nil {
			return nil, bad("jobs", err)
		}
		maxS, err := parseFloat(row[7])
		if err != nil {
			return nil, bad("max_stretch", err)
		}
		sumS, err := parseFloat(row[8])
		if err != nil {
			return nil, bad("sum_stretch", err)
		}
		key := instKey{GridPoint{sites, dbs, avail, density}, run}
		ri, ok := index[key]
		if !ok {
			ri = len(results)
			index[key] = ri
			results = append(results, InstanceResult{
				Point:      key.point,
				Run:        run,
				Jobs:       jobs,
				MaxStretch: map[string]float64{},
				SumStretch: map[string]float64{},
			})
		}
		results[ri].MaxStretch[row[6]] = maxS
		results[ri].SumStretch[row[6]] = sumS
	}
}

// parseFloat reads a formatFloat value, mapping "NA" back to NaN.
func parseFloat(s string) (float64, error) {
	if s == "NA" {
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// WriteFigure3CSV dumps the Figure 3 series.
func WriteFigure3CSV(w io.Writer, points []Fig3Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"density", "opt_degradation_pct",
		"nonopt_degradation_pct", "sum_gain_pct", "n"}); err != nil {
		return err
	}
	for _, p := range points {
		if err := cw.Write([]string{
			formatFloat(p.Density),
			formatFloat(p.OptDegradation),
			formatFloat(p.NonOptDegradation),
			formatFloat(p.SumGain),
			strconv.Itoa(p.N),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(f float64) string {
	if math.IsNaN(f) {
		return "NA"
	}
	return fmt.Sprintf("%g", f)
}
