package exp

import (
	"math"
	"testing"
)

// TestVerifyExactSampleDeterministic: the subsample is a pure function of
// the options, spans every requested platform size, and carries the global
// grid indices that tie its instance seeds to the full grid's.
func TestVerifyExactSampleDeterministic(t *testing.T) {
	opts := VerifyExactOptions{Sites: []int{10, 20}, PerSite: 3}.withDefaults()
	p1, i1 := verifyExactSample(opts)
	p2, i2 := verifyExactSample(opts)
	if len(p1) != 6 || len(i1) != 6 {
		t.Fatalf("sample size %d/%d, want 6", len(p1), len(i1))
	}
	grid := DefaultGrid()
	seen := map[int]int{}
	for k := range p1 {
		if p1[k] != p2[k] || i1[k] != i2[k] {
			t.Fatalf("sample not deterministic at %d", k)
		}
		if grid[i1[k]] != p1[k] {
			t.Fatalf("global index %d does not point at %v", i1[k], p1[k])
		}
		seen[p1[k].Sites]++
	}
	if seen[10] != 3 || seen[20] != 3 {
		t.Fatalf("per-site counts %v, want 3 of each", seen)
	}
}

// TestVerifyExactSmallScale runs the full lane on 3-site points (cheap
// enough for the unit suite; the weekly CI lane runs 10/20 sites) and
// checks that the exact optimum is never beaten — the assertion the lane
// exists to make — with every row populated.
func TestVerifyExactSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("exact verification lane in -short mode")
	}
	rep := VerifyExact(VerifyExactOptions{
		Sites: []int{3}, PerSite: 2, Runs: 1, Seed: 1, TargetJobs: 10,
	})
	if len(rep.Results) != 2 {
		t.Fatalf("%d results, want 2", len(rep.Results))
	}
	if rep.Errs > 0 {
		for _, res := range rep.Results {
			for _, err := range res.Errs {
				t.Log(err)
			}
		}
		t.Fatalf("%d scheduler errors", rep.Errs)
	}
	for _, res := range rep.Results {
		if res.Jobs == 0 {
			continue
		}
		if v, ok := res.MaxStretch["Offline-Exact"]; !ok || math.IsNaN(v) {
			t.Fatalf("missing Offline-Exact row on %v run %d", res.Point, res.Run)
		}
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations on small instances: %v", rep.Violations)
	}
}

// TestExactViolationsDetection feeds the scanner synthetic results: a clean
// row, a beaten row, and NaN rows that must be skipped rather than counted.
func TestExactViolationsDetection(t *testing.T) {
	p := GridPoint{Sites: 10, Databanks: 10, Availability: 0.9, Density: 3}
	results := []InstanceResult{
		{Point: p, Run: 0, MaxStretch: map[string]float64{
			"Offline-Exact": 2.0, "Offline": 2.0, "Online": 2.5, "SWRPT": 3.0}},
		{Point: p, Run: 1, MaxStretch: map[string]float64{
			"Offline-Exact": 2.6, "Offline": 2.5999999, "Online": 2.4, "SWRPT": math.NaN()}},
		{Point: p, Run: 2, MaxStretch: map[string]float64{
			"Offline-Exact": math.NaN(), "Offline": 1.0}},
	}
	got := exactViolations(results, 1e-9)
	if len(got) != 2 {
		t.Fatalf("%d violations, want 2 (Offline and Online on run 1): %v", len(got), got)
	}
	// Sorted by margin: the Online gap (0.2) outranks the Offline one.
	if got[0].Scheduler != "Online" || got[0].Run != 1 {
		t.Fatalf("top violation %v, want Online on run 1", got[0])
	}
	if got[1].Scheduler != "Offline" || got[1].Run != 1 {
		t.Fatalf("second violation %v, want Offline on run 1", got[1])
	}
	if exactViolations(results, 1e-3) != nil {
		// The Offline gap is 4e-8 relative — inside a loose tolerance —
		// but Online's 8% is not; with 1e-3 only Online must remain.
		got = exactViolations(results, 1e-3)
		if len(got) != 1 || got[0].Scheduler != "Online" {
			t.Fatalf("tolerance failed to absorb the float-dust gap: %v", got)
		}
	}
}
