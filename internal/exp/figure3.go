package exp

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"

	"stretchsched/internal/core"
	"stretchsched/internal/model"
	"stretchsched/internal/offline"
	"stretchsched/internal/stats"
	"stretchsched/internal/workload"
)

// Fig3Options controls the Figure 3 experiment: the optimised online
// heuristic (steps 1–4) against the non-optimised baseline (stops after
// step 2), across workload densities and average job lengths (§5.2).
type Fig3Options struct {
	Densities  []float64 // default: the paper's 0.0125–4.0 sweep
	JobLengths []float64 // average job lengths in seconds (default 3–60)
	Runs       int       // instances per (density, length) cell (paper: 5000)
	TargetJobs int       // expected jobs per instance (default 25)
	Seed       int64
	Workers    int
}

func (o Fig3Options) withDefaults() Fig3Options {
	if len(o.Densities) == 0 {
		o.Densities = []float64{0.0125, 0.025, 0.05, 0.1, 0.2, 0.4, 0.75, 1.0,
			1.5, 2.0, 2.5, 3.0, 3.5, 4.0}
	}
	if len(o.JobLengths) == 0 {
		o.JobLengths = []float64{3, 7.5, 15, 30, 60}
	}
	if o.Runs <= 0 {
		o.Runs = 5
	}
	if o.TargetJobs <= 0 {
		o.TargetJobs = 25
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Fig3Point is one plotted point: a workload density with the max-stretch
// degradation of both online variants (Figure 3a) and the sum-stretch gain
// of the optimised variant over the non-optimised one (Figure 3b),
// averaged over job lengths and runs. Percentages, as in the paper.
type Fig3Point struct {
	Density           float64
	OptDegradation    float64 // mean 100·(maxStretch/optimal − 1), optimised
	NonOptDegradation float64 // same for the non-optimised variant
	SumGain           float64 // mean 100·(sumNonOpt/sumOpt − 1)
	N                 int
}

// RunFigure3 regenerates the data series of Figures 3(a) and 3(b).
func RunFigure3(opts Fig3Options) []Fig3Point {
	opts = opts.withDefaults()
	type cell struct{ di, li, run int }
	var cells []cell
	for di := range opts.Densities {
		for li := range opts.JobLengths {
			for run := 0; run < opts.Runs; run++ {
				cells = append(cells, cell{di, li, run})
			}
		}
	}
	type sample struct {
		di                   int
		optDeg, nonDeg, gain float64
		ok                   bool
	}
	samples := make([]sample, len(cells))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runner := core.NewRunner()
			for ci := range work {
				c := cells[ci]
				s := sample{di: c.di}
				s.optDeg, s.nonDeg, s.gain, s.ok = fig3One(runner, opts, c.di, c.li, c.run)
				samples[ci] = s
			}
		}()
	}
	for ci := range cells {
		work <- ci
	}
	close(work)
	wg.Wait()

	points := make([]Fig3Point, len(opts.Densities))
	aggs := make([][3]*stats.Agg, len(opts.Densities))
	for di := range aggs {
		aggs[di] = [3]*stats.Agg{{}, {}, {}}
	}
	for _, s := range samples {
		if !s.ok {
			continue
		}
		aggs[s.di][0].Add(s.optDeg)
		aggs[s.di][1].Add(s.nonDeg)
		aggs[s.di][2].Add(s.gain)
	}
	for di, d := range opts.Densities {
		points[di] = Fig3Point{
			Density:           d,
			OptDegradation:    aggs[di][0].Mean(),
			NonOptDegradation: aggs[di][1].Mean(),
			SumGain:           aggs[di][2].Mean(),
			N:                 aggs[di][0].N(),
		}
	}
	return points
}

func fig3One(runner *core.Runner, opts Fig3Options, di, li, run int) (optDeg, nonDeg, gain float64, ok bool) {
	length := opts.JobLengths[li]
	cfg := workload.Config{
		Sites:        3,
		Databanks:    3,
		Availability: 0.6,
		Density:      opts.Densities[di],
		TargetJobs:   opts.TargetJobs,
		// Databank sizes bracket the target average job length: a site has
		// ~20 MB/s, so sizes of 10·L to 30·L MB average L seconds per site.
		SizeRange: [2]float64{10 * length, 30 * length},
		Seed:      opts.Seed + int64(di)*97_001 + int64(li)*13_007 + int64(run)*59,
	}
	inst, err := cfg.Generate()
	if err != nil || inst.NumJobs() == 0 {
		return 0, 0, 0, false
	}
	optimal, err := offline.Optimal(inst)
	if err != nil || optimal <= 0 {
		return 0, 0, 0, false
	}
	// The runner reuses one schedule buffer across runs, so each variant's
	// metrics must be read off before the next run overwrites the trace.
	optSched, err := runPlannedSafe(runner, inst, core.MustGet("Online"))
	if err != nil {
		return 0, 0, 0, false
	}
	optMax, optSum := optSched.MaxStretch(inst), optSched.SumStretch(inst)
	nonSched, err := runPlannedSafe(runner, inst, core.MustGet("Online-NonOpt"))
	if err != nil {
		return 0, 0, 0, false
	}
	optDeg = 100 * (optMax/optimal - 1)
	nonDeg = 100 * (nonSched.MaxStretch(inst)/optimal - 1)
	if optSum > 0 {
		gain = 100 * (nonSched.SumStretch(inst)/optSum - 1)
	}
	// Float dust can make degradations microscopically negative (the
	// realised schedule beating the bisected optimum); clamp at zero as the
	// paper's anomaly discussion suggests.
	return math.Max(optDeg, -100), math.Max(nonDeg, -100), gain, true
}

func runPlannedSafe(r *core.Runner, inst *model.Instance, s core.Scheduler) (sched *model.Schedule, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("panic: %v", rec)
		}
	}()
	return r.Run(s, inst)
}

// RenderFigure3 formats the series as an aligned text table (one row per
// density), mirroring the two panels of the paper's Figure 3.
func RenderFigure3(points []Fig3Point) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 3 — optimised vs non-optimised online heuristic")
	fmt.Fprintf(&b, "%10s | %22s %22s | %18s | %s\n",
		"density", "(a) degradation opt %", "degradation non-opt %", "(b) sum gain %", "N")
	fmt.Fprintln(&b, strings.Repeat("-", 88))
	for _, p := range points {
		fmt.Fprintf(&b, "%10.4f | %22.3f %22.3f | %18.2f | %d\n",
			p.Density, p.OptDegradation, p.NonOptDegradation, p.SumGain, p.N)
	}
	return b.String()
}
