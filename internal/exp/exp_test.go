package exp

import (
	"math"
	"strings"
	"testing"
)

func TestDefaultGridHas162Points(t *testing.T) {
	grid := DefaultGrid()
	if len(grid) != 162 {
		t.Fatalf("grid size = %d, want 162", len(grid))
	}
	seen := map[GridPoint]bool{}
	for _, p := range grid {
		if seen[p] {
			t.Fatalf("duplicate point %v", p)
		}
		seen[p] = true
	}
}

func TestTablesCoverSixteen(t *testing.T) {
	specs := Tables()
	if len(specs) != 16 {
		t.Fatalf("table count = %d", len(specs))
	}
	for i, s := range specs {
		if s.Number != i+1 {
			t.Fatalf("table %d numbered %d", i+1, s.Number)
		}
	}
	if _, err := TableByNumber(5); err != nil {
		t.Fatal(err)
	}
	if _, err := TableByNumber(17); err == nil {
		t.Fatal("table 17 accepted")
	}
	// Filters must partition the grid: sites tables (2–4) cover all points.
	grid := DefaultGrid()
	for _, p := range grid {
		cnt := 0
		for _, n := range []int{2, 3, 4} {
			s, _ := TableByNumber(n)
			if s.Filter(p) {
				cnt++
			}
		}
		if cnt != 1 {
			t.Fatalf("point %v matched %d site tables", p, cnt)
		}
	}
}

// TestMiniGridEndToEnd runs a 2-point grid with the cheap heuristics plus
// the full online stack and checks the Table-1 invariants: every ratio ≥ 1,
// the best heuristic's mean is exactly 1-ish, rendering works.
func TestMiniGridEndToEnd(t *testing.T) {
	points := []GridPoint{
		{Sites: 3, Databanks: 3, Availability: 0.6, Density: 1.0},
		{Sites: 3, Databanks: 3, Availability: 0.9, Density: 2.0},
	}
	opts := Options{
		Runs:       2,
		Seed:       1,
		TargetJobs: 12,
		Schedulers: []string{"Offline", "Online", "SWRPT", "SRPT", "MCT"},
	}
	results := RunGrid(points, opts)
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		for _, err := range r.Errs {
			t.Fatalf("%v run %d: %v", r.Point, r.Run, err)
		}
	}
	rows := Aggregate(results, nil, opts.Schedulers)
	for _, row := range rows {
		if row.N == 0 {
			t.Fatalf("%s has no samples", row.Scheduler)
		}
		if row.MaxMean < 1-1e-9 || row.SumMean < 1-1e-9 {
			t.Fatalf("%s: ratio-to-best below 1: %+v", row.Scheduler, row)
		}
		if row.MaxMax < row.MaxMean || row.SumMax < row.SumMean {
			t.Fatalf("%s: max below mean", row.Scheduler)
		}
	}
	out := Render("Table X", rows)
	if !strings.Contains(out, "SWRPT") || !strings.Contains(out, "Max-stretch") {
		t.Fatalf("render output malformed:\n%s", out)
	}
}

func TestBender98SiteLimitSkips(t *testing.T) {
	points := []GridPoint{{Sites: 10, Databanks: 3, Availability: 0.6, Density: 0.75}}
	opts := Options{
		Runs:       1,
		Seed:       3,
		TargetJobs: 8,
		Schedulers: []string{"Bender98", "SWRPT"},
	}
	results := RunGrid(points, opts)
	if len(results) != 1 {
		t.Fatal("missing result")
	}
	if !math.IsNaN(results[0].MaxStretch["Bender98"]) {
		t.Fatal("Bender98 should be skipped on 10-site platforms")
	}
	if math.IsNaN(results[0].MaxStretch["SWRPT"]) {
		t.Fatal("SWRPT missing")
	}
	rows := Aggregate(results, nil, opts.Schedulers)
	if rows[0].N != 0 {
		t.Fatalf("Bender98 N = %d, want 0", rows[0].N)
	}
}

func TestFigure3SmallSweep(t *testing.T) {
	points := RunFigure3(Fig3Options{
		Densities:  []float64{0.25, 2.0},
		JobLengths: []float64{10},
		Runs:       2,
		TargetJobs: 10,
		Seed:       5,
	})
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.N == 0 {
			t.Fatalf("density %v has no samples", p.Density)
		}
		if p.OptDegradation < -1e-3 {
			t.Fatalf("density %v: negative degradation %v", p.Density, p.OptDegradation)
		}
	}
	out := RenderFigure3(points)
	if !strings.Contains(out, "density") {
		t.Fatalf("render malformed:\n%s", out)
	}
}
