package exp

import (
	"bytes"
	"math"
	"runtime"
	"strings"
	"testing"
)

func faultTestPoints() []FaultPoint {
	return []FaultPoint{
		{Machines: 2, Balancer: "random", Rate: 0},
		{Machines: 2, Balancer: "kchoices", Rate: 1},
		{Machines: 4, Balancer: "stretch", Rate: 2},
		{Machines: 2, Balancer: "ideal", Rate: 1},
	}
}

func faultTestOptions(workers int) FaultOptions {
	return FaultOptions{
		Runs:       2,
		Seed:       31,
		TargetJobs: 8,
		Workers:    workers,
	}
}

// TestFaultsWorkerInvariance: results, rendered tables, the merged CSV
// stream and the per-point digests must be byte-identical for 1 worker and
// NumCPU workers — failure injection must not break the family's
// determinism contract.
func TestFaultsWorkerInvariance(t *testing.T) {
	points := faultTestPoints()
	n := runtime.NumCPU()
	if n < 2 {
		n = 4
	}

	var csv1, csvN bytes.Buffer
	res1, err := RunFaultsCSV(&csv1, points, faultTestOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	resN, err := RunFaultsCSV(&csvN, points, faultTestOptions(n))
	if err != nil {
		t.Fatal(err)
	}

	if len(res1) != len(resN) {
		t.Fatalf("result counts differ: %d vs %d", len(res1), len(resN))
	}
	sawRetry := false
	for i := range res1 {
		a, b := res1[i], resN[i]
		if a.Point != b.Point || a.Run != b.Run || a.Jobs != b.Jobs {
			t.Fatalf("instance %d identity differs: %+v vs %+v", i, a, b)
		}
		if !sameMetric(a.MaxStretch, b.MaxStretch) || !sameMetric(a.MeanStretch, b.MeanStretch) {
			t.Fatalf("instance %d stretch differs: %+v vs %+v", i, a, b)
		}
		if a.Retries != b.Retries || !sameMetric(a.LostWork, b.LostWork) {
			t.Fatalf("instance %d fault counters differ: %+v vs %+v", i, a, b)
		}
		if len(a.Errs) != 0 || len(b.Errs) != 0 {
			t.Fatalf("instance %d errors: %v / %v", i, a.Errs, b.Errs)
		}
		if a.Retries > 0 {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatal("no instance recorded a retry; the fault grid is inert")
	}

	sched := faultTestOptions(0).withDefaults().Scheduler
	if t1, tN := RenderFaultTables(res1, sched), RenderFaultTables(resN, sched); t1 != tN {
		t.Fatalf("rendered fault tables differ:\n%s\nvs\n%s", t1, tN)
	}
	if !bytes.Equal(csv1.Bytes(), csvN.Bytes()) {
		t.Fatalf("merged CSV differs between 1 and %d workers", n)
	}
	if csv1.Len() == 0 {
		t.Fatal("CSV output empty")
	}

	d1, err := FaultPointDigests(res1, sched)
	if err != nil {
		t.Fatal(err)
	}
	dN, err := FaultPointDigests(resN, sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != len(points) {
		t.Fatalf("%d digest lines, want one per point (%d)", len(d1), len(points))
	}
	for i := range d1 {
		if d1[i] != dN[i] {
			t.Fatalf("digest line %d differs: %q vs %q", i, d1[i], dN[i])
		}
	}
}

// TestFaultsZeroRateMatchesCluster: the rate-0 column is the PR 9 cluster
// path — identical workload/balancer seeds must yield identical stretches
// to the cluster family on the same point.
func TestFaultsZeroRateMatchesCluster(t *testing.T) {
	fopts := faultTestOptions(1)
	fp := FaultPoint{Machines: 2, Balancer: "kchoices", Rate: 0}
	fres := RunFaults([]FaultPoint{fp}, fopts)

	copts := ClusterOptions{
		Runs:       fopts.Runs,
		Seed:       fopts.Seed,
		TargetJobs: fopts.TargetJobs,
		Schedulers: []string{"SWRPT"},
		Workers:    1,
	}
	cp := ClusterPoint{Machines: 2, Balancer: "kchoices", Density: 1.0}
	cres := RunCluster([]ClusterPoint{cp}, copts)

	for run := range fres {
		f, c := fres[run], cres[run]
		if f.Jobs != c.Jobs {
			t.Fatalf("run %d jobs: faults %d, cluster %d", run, f.Jobs, c.Jobs)
		}
		if f.Retries != 0 || f.LostWork != 0 {
			t.Fatalf("run %d rate-0 recorded faults: %+v", run, f)
		}
		if f.MaxStretch != c.MaxStretch["SWRPT"] {
			t.Fatalf("run %d max-stretch: faults %v, cluster %v", run, f.MaxStretch, c.MaxStretch["SWRPT"])
		}
		if want := c.SumStretch["SWRPT"] / float64(c.Jobs); f.MeanStretch != want {
			t.Fatalf("run %d mean-stretch: faults %v, cluster %v", run, f.MeanStretch, want)
		}
	}
}

// TestFaultsCSVRoundTrip: ReadFaultsCSV must reconstruct what a CSV pass
// wrote and re-encode to the same bytes.
func TestFaultsCSVRoundTrip(t *testing.T) {
	points := faultTestPoints()[:3]
	opts := faultTestOptions(2)
	var buf bytes.Buffer
	results, err := RunFaultsCSV(&buf, points, opts)
	if err != nil {
		t.Fatal(err)
	}
	back, sched, err := ReadFaultsCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sched != opts.withDefaults().Scheduler {
		t.Fatalf("read-back scheduler %q, want %q", sched, opts.withDefaults().Scheduler)
	}
	var rewritten bytes.Buffer
	if err := WriteFaultsCSV(&rewritten, back, sched); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), rewritten.Bytes()) {
		t.Fatalf("re-encoded CSV differs:\n%q\nvs\n%q", buf.String(), rewritten.String())
	}
	d1, err := FaultPointDigests(results, sched)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := FaultPointDigests(back, sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != len(d2) {
		t.Fatalf("digest counts differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("digest %d differs after round trip: %q vs %q", i, d1[i], d2[i])
		}
	}
}

// TestFaultsShardedMatrixMerge simulates the nightly faults matrix:
// interleaved shards with PointIndices, concatenated CSVs, recomputed
// digests of the merged read-back equal to the union of the shard digests.
func TestFaultsShardedMatrixMerge(t *testing.T) {
	points := faultTestPoints()
	opts := faultTestOptions(2)
	const nShards = 2

	var merged bytes.Buffer
	var shardDigests []string
	for k := 0; k < nShards; k++ {
		shard, indices := ShardPoints(points, k, nShards)
		sopts := opts
		sopts.PointIndices = indices
		var buf bytes.Buffer
		res, err := RunFaultsCSV(&buf, shard, sopts)
		if err != nil {
			t.Fatal(err)
		}
		lines, err := FaultPointDigests(res, sopts.withDefaults().Scheduler)
		if err != nil {
			t.Fatal(err)
		}
		shardDigests = append(shardDigests, lines...)
		body := buf.String()
		if k > 0 {
			body = body[strings.Index(body, "\n")+1:]
		}
		merged.WriteString(body)
	}

	back, sched, err := ReadFaultsCSV(bytes.NewReader(merged.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recomputed, err := FaultPointDigests(back, sched)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, l := range shardDigests {
		want[l] = true
	}
	if len(recomputed) != len(want) {
		t.Fatalf("merged digests: %d lines, shards produced %d", len(recomputed), len(want))
	}
	for _, l := range recomputed {
		if !want[l] {
			t.Fatalf("merged digest %q not produced by any shard", l)
		}
	}
}

// TestFaultsDryRun: a dry run predicts the exact row structure of a real
// run with every metric NA.
func TestFaultsDryRun(t *testing.T) {
	points := faultTestPoints()[:2]
	opts := faultTestOptions(1)
	opts.DryRun = true
	results := RunFaults(points, opts)
	if len(results) != len(points)*opts.Runs {
		t.Fatalf("%d results, want %d", len(results), len(points)*opts.Runs)
	}
	for i, r := range results {
		if r.Jobs == 0 {
			t.Fatalf("dry-run instance %d generated no jobs", i)
		}
		if !math.IsNaN(r.MaxStretch) || !math.IsNaN(r.MeanStretch) {
			t.Fatalf("dry-run instance %d has real metrics: %+v", i, r)
		}
	}
	live := RunFaults(points, faultTestOptions(1))
	sched := opts.withDefaults().Scheduler
	var dryCSV, liveCSV bytes.Buffer
	if err := WriteFaultsCSV(&dryCSV, results, sched); err != nil {
		t.Fatal(err)
	}
	if err := WriteFaultsCSV(&liveCSV, live, sched); err != nil {
		t.Fatal(err)
	}
	if dryLines, liveLines := strings.Count(dryCSV.String(), "\n"), strings.Count(liveCSV.String(), "\n"); dryLines != liveLines {
		t.Fatalf("dry run predicts %d rows, live run produced %d", dryLines, liveLines)
	}
}

// TestDefaultFaultGrid pins the grid shape: 2 machine counts × 4 balancers
// × 4 rates including the fault-free anchor.
func TestDefaultFaultGrid(t *testing.T) {
	grid := DefaultFaultGrid()
	if len(grid) != 32 {
		t.Fatalf("%d points, want 32", len(grid))
	}
	anchors := 0
	for _, p := range grid {
		if p.Rate == 0 {
			anchors++
		}
	}
	if anchors != 8 {
		t.Fatalf("%d rate-0 anchor points, want 8", anchors)
	}
}
