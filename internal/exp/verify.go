package exp

// verify.go is the exact-verification lane: Offline-Exact against the float
// offline solver and the online heuristics on a deterministic subsample of
// the paper grid, asserting that the §5.3 anomaly — the "offline optimal"
// being beaten by an online heuristic, which for a true optimum is
// impossible and in the paper was a float64 milestone-ordering artefact —
// stays eliminated at paper scale (10- and 20-site platforms). The weekly
// CI lane (nightly.yml, exact-verify job) runs it through cmd/experiments
// -verifyexact; it became affordable when the sparse revised simplex and
// the fixed-width medium rational tier brought 20-site exact solves from
// unmeasurable to seconds.

import (
	"fmt"
	"math"
	"sort"
)

// VerifyExactOptions configures an exact-verification pass.
type VerifyExactOptions struct {
	// Sites selects the platform sizes whose grid points are sampled
	// (default 10 and 20 — the scales where exact verification is news).
	Sites []int
	// PerSite is the number of grid points sampled per platform size
	// (default 3). Points are taken evenly across the filtered grid, so
	// the subsample is deterministic and spans the density/availability
	// range.
	PerSite int
	// Runs is the number of instances per sampled point (default 2).
	Runs int
	// Seed, TargetJobs and Workers behave exactly as in Options. Instance
	// seeds derive from the points' global grid indices, so the lane
	// verifies the same instances the nightly grid simulates.
	Seed       int64
	TargetJobs int
	Workers    int
	// Tol is the relative slack allowed before a comparison counts as a
	// violation (default 1e-6): Offline-Exact's realised max-stretch must
	// not exceed (1+Tol)·competitor for any competitor. The slack absorbs
	// float dust in the simulator's realised metrics and the float
	// bisection's oracle tolerance (observed ~1e-9 relative); the anomaly
	// proper mis-orders milestones and shows up orders of magnitude above
	// it.
	Tol float64
	// Progress, when non-nil, is forwarded to the grid runner.
	Progress func(done, total int)
}

func (o VerifyExactOptions) withDefaults() VerifyExactOptions {
	if len(o.Sites) == 0 {
		o.Sites = []int{10, 20}
	}
	if o.PerSite <= 0 {
		o.PerSite = 3
	}
	if o.Runs <= 0 {
		o.Runs = 2
	}
	if o.TargetJobs <= 0 {
		o.TargetJobs = 20
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	return o
}

// verifyExactCompetitors are the schedulers Offline-Exact must not lose to:
// the float offline solver (same algorithm, bisection refinement) and the
// online heuristics the paper reports winning against it in §5.3.
var verifyExactCompetitors = []string{"Offline", "Online", "Online-EDF", "SWRPT"}

// ExactViolation records one instance on which Offline-Exact was beaten —
// the anomaly the exact backend exists to rule out.
type ExactViolation struct {
	Point      GridPoint
	Run        int
	Scheduler  string  // the competitor that beat Offline-Exact
	Exact      float64 // Offline-Exact realised max-stretch
	Competitor float64 // competitor realised max-stretch
}

func (v ExactViolation) String() string {
	return fmt.Sprintf("%v run %d: Offline-Exact %.12g beaten by %s %.12g",
		v.Point, v.Run, v.Exact, v.Scheduler, v.Competitor)
}

// VerifyExactReport is the outcome of one verification pass.
type VerifyExactReport struct {
	Points     []GridPoint
	Results    []InstanceResult
	Violations []ExactViolation
	Errs       int // scheduler run errors (NaN rows), reported separately
}

// verifyExactSample returns the deterministic subsample: for each requested
// platform size, PerSite points spread evenly over the filtered grid, with
// their global indices for seed parity with the full grid.
func verifyExactSample(opts VerifyExactOptions) ([]GridPoint, []int) {
	grid := DefaultGrid()
	var points []GridPoint
	var indices []int
	for _, sites := range opts.Sites {
		var idx []int
		for i, p := range grid {
			if p.Sites == sites {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			continue
		}
		n := opts.PerSite
		if n > len(idx) {
			n = len(idx)
		}
		step := len(idx) / n
		for k := 0; k < n; k++ {
			points = append(points, grid[idx[k*step]])
			indices = append(indices, idx[k*step])
		}
	}
	return points, indices
}

// VerifyExact runs the exact-verification pass and returns its report. A
// non-empty Violations slice means the §5.3 anomaly has reappeared.
func VerifyExact(opts VerifyExactOptions) VerifyExactReport {
	opts = opts.withDefaults()
	points, indices := verifyExactSample(opts)
	schedulers := append([]string{"Offline-Exact"}, verifyExactCompetitors...)
	results := RunGrid(points, Options{
		Runs: opts.Runs, Seed: opts.Seed, TargetJobs: opts.TargetJobs,
		Workers: opts.Workers, Schedulers: schedulers,
		PointIndices: indices, Progress: opts.Progress,
	})
	rep := VerifyExactReport{Points: points, Results: results}
	for _, res := range results {
		rep.Errs += len(res.Errs)
	}
	rep.Violations = exactViolations(results, opts.Tol)
	return rep
}

// exactViolations scans grid results for instances where Offline-Exact's
// realised max-stretch exceeds a competitor's beyond tolerance — for a true
// optimum, impossible; so each hit is the §5.3 anomaly resurfacing.
func exactViolations(results []InstanceResult, tol float64) []ExactViolation {
	var out []ExactViolation
	for _, res := range results {
		exact, ok := res.MaxStretch["Offline-Exact"]
		if !ok || math.IsNaN(exact) {
			continue
		}
		for _, name := range verifyExactCompetitors {
			comp, ok := res.MaxStretch[name]
			if !ok || math.IsNaN(comp) {
				continue
			}
			if exact > comp*(1+tol) {
				out = append(out, ExactViolation{
					Point: res.Point, Run: res.Run, Scheduler: name,
					Exact: exact, Competitor: comp,
				})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Exact-out[i].Competitor > out[j].Exact-out[j].Competitor
	})
	return out
}
