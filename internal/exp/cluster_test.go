package exp

import (
	"bytes"
	"math"
	"runtime"
	"strings"
	"testing"

	"stretchsched/internal/core"
)

func clusterTestPoints() []ClusterPoint {
	return []ClusterPoint{
		{Machines: 1, Balancer: "single", Density: 1.0},
		{Machines: 2, Balancer: "random", Density: 1.5},
		{Machines: 2, Balancer: "kchoices", Density: 1.5},
		{Machines: 4, Balancer: "stretch", Density: 2.0},
		{Machines: 2, Balancer: "ideal", Density: 1.0},
	}
}

func clusterTestOptions(workers int) ClusterOptions {
	return ClusterOptions{
		Runs:       2,
		Seed:       23,
		TargetJobs: 8,
		Schedulers: []string{"SRPT", "SWRPT", "ST14"},
		Workers:    workers,
	}
}

// TestClusterWorkerInvariance mirrors TestGridWorkerInvariance for the
// cluster family: results, rendered tables, the merged CSV stream, and the
// per-point digests must be byte-identical for 1 worker and NumCPU workers.
func TestClusterWorkerInvariance(t *testing.T) {
	points := clusterTestPoints()
	n := runtime.NumCPU()
	if n < 2 {
		n = 4
	}

	var csv1, csvN bytes.Buffer
	res1, err := RunClusterCSV(&csv1, points, clusterTestOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	resN, err := RunClusterCSV(&csvN, points, clusterTestOptions(n))
	if err != nil {
		t.Fatal(err)
	}

	if len(res1) != len(resN) {
		t.Fatalf("result counts differ: %d vs %d", len(res1), len(resN))
	}
	for i := range res1 {
		a, b := res1[i], resN[i]
		if a.Point != b.Point || a.Run != b.Run || a.Jobs != b.Jobs {
			t.Fatalf("instance %d identity differs: %+v vs %+v", i, a, b)
		}
		for name := range a.MaxStretch {
			if !sameMetric(a.MaxStretch[name], b.MaxStretch[name]) {
				t.Fatalf("instance %d %s max-stretch: %v (1 worker) vs %v (%d workers)",
					i, name, a.MaxStretch[name], b.MaxStretch[name], n)
			}
			if !sameMetric(a.SumStretch[name], b.SumStretch[name]) {
				t.Fatalf("instance %d %s sum-stretch: %v vs %v",
					i, name, a.SumStretch[name], b.SumStretch[name])
			}
		}
		if len(a.Errs) != 0 || len(b.Errs) != 0 {
			t.Fatalf("instance %d errors: %v / %v", i, a.Errs, b.Errs)
		}
	}

	sched := clusterTestOptions(0).withDefaults().Schedulers
	t1 := RenderClusterTables(res1, sched)
	tN := RenderClusterTables(resN, sched)
	if t1 != tN {
		t.Fatalf("rendered cluster tables differ:\n%s\nvs\n%s", t1, tN)
	}

	if !bytes.Equal(csv1.Bytes(), csvN.Bytes()) {
		t.Fatalf("merged CSV differs between 1 and %d workers (%d vs %d bytes)",
			n, csv1.Len(), csvN.Len())
	}
	if csv1.Len() == 0 {
		t.Fatal("CSV output empty")
	}

	d1, err := ClusterPointDigests(res1, sched)
	if err != nil {
		t.Fatal(err)
	}
	dN, err := ClusterPointDigests(resN, sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != len(points) {
		t.Fatalf("%d digest lines, want one per point (%d)", len(d1), len(points))
	}
	for i := range d1 {
		if d1[i] != dN[i] {
			t.Fatalf("digest line %d differs: %q vs %q", i, d1[i], dN[i])
		}
	}
}

// TestClusterSingleMachineMatchesSinglePlatform: a machines=1 cluster point
// must reproduce the single-platform scheduler path exactly — identical
// metrics to running the very same generated instances through the core
// registry directly.
func TestClusterSingleMachineMatchesSinglePlatform(t *testing.T) {
	copts := clusterTestOptions(1).withDefaults()
	copts.Schedulers = []string{"SRPT", "SWRPT", "ST14"}
	p := ClusterPoint{Machines: 1, Balancer: "single", Density: 1.5}
	cres := RunCluster([]ClusterPoint{p}, copts)

	for run := 0; run < copts.Runs; run++ {
		inst, err := copts.config(p, run, 0).Generate()
		if err != nil {
			t.Fatal(err)
		}
		if inst.NumJobs() != cres[run].Jobs {
			t.Fatalf("run %d jobs: cluster %d, direct %d", run, cres[run].Jobs, inst.NumJobs())
		}
		for _, name := range copts.Schedulers {
			sched, err := core.MustGet(name).Run(inst)
			if err != nil {
				t.Fatalf("run %d %s: %v", run, name, err)
			}
			if got, want := cres[run].MaxStretch[name], sched.MaxStretch(inst); got != want {
				t.Fatalf("run %d %s max-stretch: cluster %v, direct %v", run, name, got, want)
			}
			if got, want := cres[run].SumStretch[name], sched.SumStretch(inst); got != want {
				t.Fatalf("run %d %s sum-stretch: cluster %v, direct %v", run, name, got, want)
			}
		}
	}
}

// TestClusterCSVRoundTrip: ReadClusterCSV must reconstruct the results a
// CSV pass wrote, and re-encoding must reproduce the bytes — the property
// the nightly -fromcsv merge and digest check stand on.
func TestClusterCSVRoundTrip(t *testing.T) {
	points := clusterTestPoints()[:3]
	opts := clusterTestOptions(2)
	var buf bytes.Buffer
	results, err := RunClusterCSV(&buf, points, opts)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadClusterCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var rewritten bytes.Buffer
	if err := WriteClusterCSV(&rewritten, back, opts.Schedulers); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), rewritten.Bytes()) {
		t.Fatalf("re-encoded CSV differs:\n%q\nvs\n%q", buf.String(), rewritten.String())
	}
	d1, err := ClusterPointDigests(results, opts.Schedulers)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ClusterPointDigests(back, opts.Schedulers)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != len(d2) {
		t.Fatalf("digest counts differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("digest %d differs after round trip: %q vs %q", i, d1[i], d2[i])
		}
	}
}

// TestClusterShardedMatrixMerge simulates the nightly matrix: interleaved
// point shards run independently with PointIndices, their CSVs concatenate
// (minus inner headers) into the merged dump, and the recomputed digests of
// the merged read-back must equal the union of the shard digests.
func TestClusterShardedMatrixMerge(t *testing.T) {
	points := clusterTestPoints()
	opts := clusterTestOptions(2)
	const nShards = 2

	var full bytes.Buffer
	if _, err := RunClusterCSV(&full, points, opts); err != nil {
		t.Fatal(err)
	}

	var merged bytes.Buffer
	var shardDigests []string
	for k := 0; k < nShards; k++ {
		shard, indices := ShardPoints(points, k, nShards)
		sopts := opts
		sopts.PointIndices = indices
		var buf bytes.Buffer
		res, err := RunClusterCSV(&buf, shard, sopts)
		if err != nil {
			t.Fatal(err)
		}
		lines, err := ClusterPointDigests(res, sopts.withDefaults().Schedulers)
		if err != nil {
			t.Fatal(err)
		}
		shardDigests = append(shardDigests, lines...)
		body := buf.String()
		if k > 0 {
			// Drop the inner header, as the merge job's tail -n +2 does.
			body = body[strings.Index(body, "\n")+1:]
		}
		merged.WriteString(body)
	}

	back, err := ReadClusterCSV(bytes.NewReader(merged.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recomputed, err := ClusterPointDigests(back, opts.withDefaults().Schedulers)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, l := range shardDigests {
		want[l] = true
	}
	if len(recomputed) != len(want) {
		t.Fatalf("merged digests: %d lines, shards produced %d", len(recomputed), len(want))
	}
	for _, l := range recomputed {
		if !want[l] {
			t.Fatalf("merged digest %q not produced by any shard", l)
		}
	}

	// The sharded merge must carry exactly the full run's row multiset:
	// re-encoding the read-back in full-run result order matches.
	fullBack, err := ReadClusterCSV(bytes.NewReader(full.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fullDigests, err := ClusterPointDigests(fullBack, opts.withDefaults().Schedulers)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fullDigests {
		if !want[fullDigests[i]] {
			t.Fatalf("full-run digest %q missing from sharded merge", fullDigests[i])
		}
	}
}

// TestClusterDryRun: a dry run must produce the exact row structure of a
// real run (same instances, same schedulers) with every metric NA.
func TestClusterDryRun(t *testing.T) {
	points := clusterTestPoints()[:2]
	opts := clusterTestOptions(1)
	opts.DryRun = true
	results := RunCluster(points, opts)
	if len(results) != len(points)*opts.Runs {
		t.Fatalf("%d results, want %d", len(results), len(points)*opts.Runs)
	}
	for i, r := range results {
		if r.Jobs == 0 {
			t.Fatalf("dry-run instance %d generated no jobs", i)
		}
		for _, name := range opts.Schedulers {
			if !math.IsNaN(r.MaxStretch[name]) || !math.IsNaN(r.SumStretch[name]) {
				t.Fatalf("dry-run instance %d %s has real metrics", i, name)
			}
		}
	}
	live := RunCluster(points, clusterTestOptions(1))
	var dryCSV, liveCSV bytes.Buffer
	if err := WriteClusterCSV(&dryCSV, results, opts.Schedulers); err != nil {
		t.Fatal(err)
	}
	if err := WriteClusterCSV(&liveCSV, live, opts.Schedulers); err != nil {
		t.Fatal(err)
	}
	if dryLines, liveLines := strings.Count(dryCSV.String(), "\n"), strings.Count(liveCSV.String(), "\n"); dryLines != liveLines {
		t.Fatalf("dry run predicts %d rows, live run produced %d", dryLines, liveLines)
	}
}

// TestDefaultClusterGrid pins the comparison grid's shape: the machines=1
// baseline plus every balancer at 2 and 4 machines, four densities each.
func TestDefaultClusterGrid(t *testing.T) {
	grid := DefaultClusterGrid()
	if len(grid) != 36 {
		t.Fatalf("%d points, want 36", len(grid))
	}
	combos := clusterCombos(grid)
	if len(combos) != 9 {
		t.Fatalf("%d machine/balancer combos, want 9", len(combos))
	}
	for _, p := range grid {
		if p.Machines == 1 && p.Balancer != "single" {
			t.Fatalf("machines=1 point uses balancer %q", p.Balancer)
		}
	}
}
