package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// The times sidecar closes the dispatch-order feedback loop: a pass run
// with Options.Clock measures per-instance scheduler wall time, PointTimes
// folds it per grid point, WritePointTimes dumps it next to the results
// CSV, and a later pass loads it back (ReadPointTimes) into
// Options.MeasuredSeconds, where pointWeight prefers observed cost over the
// static jobs²·sites heuristic. Timing lives in this separate stream — not
// the results CSV — because the results bytes are pinned by worker-count
// invariance and per-point digests, and wall time is exactly the kind of
// nondeterminism they must never contain.

// timesHeader is the column layout of the per-point timing sidecar.
var timesHeader = []string{"sites", "databanks", "availability", "density", "seconds"}

// PointTimes sums the measured per-instance seconds of a pass per grid
// point. Points whose instances carried no measurement (no Clock, -fromcsv
// results) sum to zero and are omitted.
func PointTimes(results []InstanceResult) map[GridPoint]float64 {
	out := map[GridPoint]float64{}
	for i := range results {
		if results[i].Seconds > 0 {
			out[results[i].Point] += results[i].Seconds
		}
	}
	return out
}

// WritePointTimes writes the PointTimes of results as the timing sidecar
// CSV, rows sorted by point coordinates so output is deterministic given
// the same measurements.
func WritePointTimes(w io.Writer, results []InstanceResult) error {
	times := PointTimes(results)
	points := make([]GridPoint, 0, len(times))
	for p := range times { //stretch:order-ok — collect-then-sort, below
		points = append(points, p)
	}
	sort.Slice(points, func(a, b int) bool {
		pa, pb := points[a], points[b]
		if pa.Sites != pb.Sites {
			return pa.Sites < pb.Sites
		}
		if pa.Databanks != pb.Databanks {
			return pa.Databanks < pb.Databanks
		}
		if pa.Availability != pb.Availability {
			return pa.Availability < pb.Availability
		}
		return pa.Density < pb.Density
	})
	cw := csv.NewWriter(w)
	if err := cw.Write(timesHeader); err != nil {
		return err
	}
	for _, p := range points {
		row := []string{
			strconv.Itoa(p.Sites),
			strconv.Itoa(p.Databanks),
			formatFloat(p.Availability),
			formatFloat(p.Density),
			formatFloat(times[p]),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPointTimes parses a timing sidecar back into the MeasuredSeconds map
// a subsequent pass dispatches by. Duplicate points sum, so concatenated
// per-shard sidecars merge like the results CSVs do.
func ReadPointTimes(r io.Reader) (map[GridPoint]float64, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("exp: times CSV header: %w", err)
	}
	if len(header) != len(timesHeader) {
		return nil, fmt.Errorf("exp: times CSV header has %d columns, want %d",
			len(header), len(timesHeader))
	}
	for i, name := range timesHeader {
		if header[i] != name {
			return nil, fmt.Errorf("exp: times CSV column %d is %q, want %q", i, header[i], name)
		}
	}
	out := map[GridPoint]float64{}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("exp: times CSV line %d: %w", line, err)
		}
		bad := func(col string, err error) error {
			return fmt.Errorf("exp: times CSV line %d: bad %s: %w", line, col, err)
		}
		sites, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, bad("sites", err)
		}
		dbs, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, bad("databanks", err)
		}
		avail, err := parseFloat(row[2])
		if err != nil {
			return nil, bad("availability", err)
		}
		density, err := parseFloat(row[3])
		if err != nil {
			return nil, bad("density", err)
		}
		secs, err := parseFloat(row[4])
		if err != nil {
			return nil, bad("seconds", err)
		}
		out[GridPoint{sites, dbs, avail, density}] += secs
	}
}
