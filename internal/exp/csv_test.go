package exp

import (
	"bytes"
	"encoding/csv"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestWriteResultsCSV(t *testing.T) {
	results := []InstanceResult{
		{
			Point: GridPoint{Sites: 3, Databanks: 3, Availability: 0.6, Density: 1},
			Run:   0, Jobs: 12,
			MaxStretch: map[string]float64{"SWRPT": 1.5, "Bender98": math.NaN()},
			SumStretch: map[string]float64{"SWRPT": 14.2, "Bender98": math.NaN()},
		},
	}
	var buf bytes.Buffer
	if err := WriteResultsCSV(&buf, results, []string{"SWRPT", "Bender98", "absent"}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + SWRPT + Bender98 (absent scheduler skipped)
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
	if rows[1][6] != "SWRPT" || rows[1][7] != "1.5" {
		t.Fatalf("row = %v", rows[1])
	}
	if rows[2][7] != "NA" {
		t.Fatalf("NaN should serialise as NA: %v", rows[2])
	}
}

// failingWriter accepts `allow` Write calls, then fails every subsequent
// one. errWrites counts the writes attempted after the failure point.
type failingWriter struct {
	allow     int
	writes    int
	errWrites int
}

var errWriterBroken = errors.New("writer broken")

func (w *failingWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.allow {
		w.errWrites++
		return 0, errWriterBroken
	}
	return len(p), nil
}

// TestEncodeShardPropagatesWriterError pins the noswallow fix for the old
// `_ = writeResultRows(...)` at csv.go:100: the per-shard encode step must
// surface its writer's error instead of discarding it.
func TestEncodeShardPropagatesWriterError(t *testing.T) {
	shard := []InstanceResult{
		{
			Point: GridPoint{Sites: 3, Databanks: 3, Availability: 0.6, Density: 1},
			Run:   0, Jobs: 12,
			MaxStretch: map[string]float64{"SWRPT": 1.5},
			SumStretch: map[string]float64{"SWRPT": 14.2},
		},
	}
	w := &failingWriter{allow: 0}
	err := encodeShard(w, shard, []string{"SWRPT"})
	if !errors.Is(err, errWriterBroken) {
		t.Fatalf("encodeShard on failing writer: err = %v, want %v", err, errWriterBroken)
	}
}

// TestRunGridCSVPropagatesWriteError runs a real (dry) grid into a writer
// that dies after the header: RunGridCSV must return the write error —
// never a silently truncated CSV — while the grid itself still runs to
// completion.
func TestRunGridCSVPropagatesWriteError(t *testing.T) {
	points := []GridPoint{{Sites: 3, Databanks: 3, Availability: 0.6, Density: 1}}
	opts := Options{Runs: 3, Seed: 1, Workers: 2, DryRun: true}
	w := &failingWriter{allow: 1} // header write succeeds, first shard write fails
	results, err := RunGridCSV(w, points, opts)
	if !errors.Is(err, errWriterBroken) {
		t.Fatalf("RunGridCSV on failing writer: err = %v, want %v", err, errWriterBroken)
	}
	if len(results) != len(points)*opts.Runs {
		t.Fatalf("grid must run to completion despite the write error: %d results, want %d",
			len(results), len(points)*opts.Runs)
	}
	if w.errWrites != 1 {
		t.Fatalf("writes after the failure point = %d, want 1 (writing must stop at the first error)", w.errWrites)
	}
}

func TestWriteFigure3CSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFigure3CSV(&buf, []Fig3Point{
		{Density: 0.5, OptDegradation: 1.25, NonOptDegradation: 3, SumGain: 12.5, N: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "density,") || !strings.Contains(out, "0.5,1.25,3,12.5,10") {
		t.Fatalf("csv = %q", out)
	}
}
