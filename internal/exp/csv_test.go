package exp

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"testing"
)

func TestWriteResultsCSV(t *testing.T) {
	results := []InstanceResult{
		{
			Point: GridPoint{Sites: 3, Databanks: 3, Availability: 0.6, Density: 1},
			Run:   0, Jobs: 12,
			MaxStretch: map[string]float64{"SWRPT": 1.5, "Bender98": math.NaN()},
			SumStretch: map[string]float64{"SWRPT": 14.2, "Bender98": math.NaN()},
		},
	}
	var buf bytes.Buffer
	if err := WriteResultsCSV(&buf, results, []string{"SWRPT", "Bender98", "absent"}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + SWRPT + Bender98 (absent scheduler skipped)
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
	if rows[1][6] != "SWRPT" || rows[1][7] != "1.5" {
		t.Fatalf("row = %v", rows[1])
	}
	if rows[2][7] != "NA" {
		t.Fatalf("NaN should serialise as NA: %v", rows[2])
	}
}

func TestWriteFigure3CSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFigure3CSV(&buf, []Fig3Point{
		{Density: 0.5, OptDegradation: 1.25, NonOptDegradation: 3, SumGain: 12.5, N: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "density,") || !strings.Contains(out, "0.5,1.25,3,12.5,10") {
		t.Fatalf("csv = %q", out)
	}
}
