// Package exp is the experiment harness reproducing the paper's evaluation
// (§5): the 162-configuration grid behind Tables 1–16 and the density sweep
// behind Figure 3.
//
// Scale note: the paper simulates 15-minute arrival windows and 200
// instances per configuration, which (with the per-databank density
// definition) yields thousands of jobs per instance. The harness defaults
// to a target number of jobs per instance instead, derived per
// configuration from the expected arrival rate, so the full grid runs in
// minutes on a laptop; Options.Horizon restores a fixed window (paper
// scale). Ratios-to-best — the quantity every table reports — are shape
// metrics and survive this rescaling.
//
// The grid runner is a sharded worker pool: the (point, run) task space is
// cut into fixed-size contiguous shards which workers pull from a channel,
// dispatched largest-estimated-cost first so heavy points cannot straggle
// at the end of the run. Each worker owns one core.Runner (hence one
// reusable simulation engine and one planner workspace), and every
// instance's RNG seed derives from its (point, run) coordinates alone, so
// results — and the merged per-shard CSV stream — are bitwise independent
// of both the worker count and the dispatch order. See DESIGN.md.
package exp

import (
	"fmt"
	"math"
	"runtime"

	"stretchsched/internal/core"
	"stretchsched/internal/model"
	"stretchsched/internal/workload"
)

// GridPoint is one of the paper's 162 platform/application configurations.
type GridPoint struct {
	Sites        int
	Databanks    int
	Availability float64
	Density      float64
}

func (g GridPoint) String() string {
	return fmt.Sprintf("sites=%d dbs=%d avail=%.0f%% density=%.2f",
		g.Sites, g.Databanks, 100*g.Availability, g.Density)
}

// DefaultGrid returns the full grid of §5.3: platforms of 3/10/20 sites,
// 3/10/20 databanks, availabilities 30/60/90%, densities 0.75–3.0.
func DefaultGrid() []GridPoint {
	var out []GridPoint
	for _, sites := range []int{3, 10, 20} {
		for _, dbs := range []int{3, 10, 20} {
			for _, avail := range []float64{0.3, 0.6, 0.9} {
				for _, dens := range []float64{0.75, 1.0, 1.25, 1.5, 2.0, 3.0} {
					out = append(out, GridPoint{sites, dbs, avail, dens})
				}
			}
		}
	}
	return out
}

// Options controls a grid run.
type Options struct {
	Runs       int      // instances per configuration (paper: 200)
	Seed       int64    // base seed; instance seeds derive deterministically
	Schedulers []string // defaults to core.Table1Names()
	// TargetJobs sizes each instance by expected job count (default 40).
	TargetJobs int
	// Horizon, when positive, fixes the arrival window in seconds instead
	// of TargetJobs (paper scale: 900).
	Horizon float64
	// SizeRange overrides the databank size range (MB).
	SizeRange [2]float64
	// Bender98SiteLimit restricts Bender98 to platforms with at most this
	// many sites (paper: 3, for cost reasons). 0 means 3.
	Bender98SiteLimit int
	// Workers bounds parallelism (0 = GOMAXPROCS). The worker count never
	// affects results: instance seeds depend only on grid coordinates.
	Workers int
	// PointIndices, when non-nil, holds the global grid index of each
	// entry of the points slice (len(PointIndices) == len(points)). It is
	// how a sharded run — one slice of the grid per CI matrix job, see
	// ShardGrid — derives exactly the per-(point, run) instance seeds of
	// the unsharded grid: seeds depend on the global index, never on the
	// position within the shard. Nil means points[i] is global index i.
	PointIndices []int
	// DryRun generates every instance but runs no scheduler, recording
	// NaN for every metric. The result and CSV row structure is identical
	// to a real run's at a tiny fraction of the cost, so a dry pass
	// predicts the exact row count a sharded matrix must merge back
	// together (the nightly workflow asserts this).
	DryRun bool
	// Progress, when non-nil, is called after every completed instance
	// with the number of finished instances and the total. Calls are
	// serialised across workers.
	Progress func(done, total int)
	// Clock, when non-nil, is a monotonic nanosecond clock used to measure
	// each instance's scheduler wall time into InstanceResult.Seconds.
	// Injected (rather than time.Now) so the harness itself stays free of
	// wall-clock reads — results and CSV bytes never depend on it; the
	// measurements feed the PointTimes sidecar, not the results stream.
	Clock func() int64
	// MeasuredSeconds, when non-nil, overrides the static pointWeight cost
	// heuristic with measured per-point times from a prior pass
	// (ReadPointTimes), so shard dispatch orders by observed cost. It only
	// influences dispatch order, never results.
	MeasuredSeconds map[GridPoint]float64
}

func (o Options) withDefaults() Options {
	if o.Runs <= 0 {
		o.Runs = 5
	}
	if o.TargetJobs <= 0 {
		o.TargetJobs = 40
	}
	if len(o.Schedulers) == 0 {
		o.Schedulers = core.Table1Names()
	}
	if o.Bender98SiteLimit == 0 {
		o.Bender98SiteLimit = 3
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.SizeRange == [2]float64{} {
		// Scaled-down databank sizes (MB) so that TargetJobs-sized
		// instances still overlap in time the way 15-minute GriPPS runs do.
		o.SizeRange = [2]float64{10, 200}
	}
	return o
}

// config builds the workload configuration for one grid point and run.
func (o Options) config(p GridPoint, run, pointIdx int) workload.Config {
	return workload.Config{
		Sites:        p.Sites,
		Databanks:    p.Databanks,
		Availability: p.Availability,
		Density:      p.Density,
		Horizon:      o.Horizon,
		TargetJobs:   chooseTarget(o),
		SizeRange:    o.SizeRange,
		Seed:         o.Seed + int64(pointIdx)*1_000_003 + int64(run)*7919,
	}
}

func chooseTarget(o Options) int {
	if o.Horizon > 0 {
		return 0 // fixed horizon overrides target sizing
	}
	return o.TargetJobs
}

// InstanceResult holds the raw metrics of every scheduler on one instance.
// Absent schedulers (not run, or failed) are recorded as NaN.
type InstanceResult struct {
	Point      GridPoint
	Run        int
	Jobs       int
	MaxStretch map[string]float64
	SumStretch map[string]float64
	Errs       []error
	// StretchErrs and RefineErrs count the per-event solver failures the
	// online schedulers recorded and fell back from (step-2 optimal
	// stretch, step-3 System (2) refinement) on this instance — recorded
	// diagnostics, not run errors; cmd/experiments sums them per pass.
	StretchErrs int
	RefineErrs  int
	// Seconds is the measured scheduler wall time of this instance
	// (Options.Clock; zero without one). It never enters the results CSV —
	// worker-count invariance byte-compares that stream — only the
	// PointTimes sidecar that feeds the next pass's dispatch order.
	Seconds float64
}

// pointWeight estimates the relative simulation cost of one instance at p,
// for shard dispatch ordering only — it never influences results. With
// MeasuredSeconds (a prior pass's PointTimes) the observed cost wins;
// otherwise the static heuristic: planned schedulers dominate, each of the
// ~jobs re-plans runs a milestone search with O(log jobs) feasibility flows
// over networks that grow with jobs·sites, so the bulk scales like
// jobs²·sites. Bender98 performs a full offline solve per arrival on the
// points where it runs (sites within Bender98SiteLimit), worth roughly
// another factor of jobs — which is exactly why those points straggle when
// dispatched last.
func (o Options) pointWeight(p GridPoint) float64 {
	if s, ok := o.MeasuredSeconds[p]; ok && s > 0 {
		return s
	}
	jobs := float64(o.TargetJobs)
	if o.Horizon > 0 {
		if ej, err := o.config(p, 0, 0).ExpectedJobs(); err == nil && ej > 0 {
			jobs = ej
		}
	}
	w := jobs * jobs * float64(p.Sites)
	if p.Sites <= o.Bender98SiteLimit {
		for _, s := range o.Schedulers {
			if s == "Bender98" {
				w *= jobs
				break
			}
		}
	}
	return w
}

// shardOrder returns the dispatch order of the shard indices: largest
// estimated cost first, so the heavy grid points (20-site high-density
// platforms, Bender98 cells) start while every worker still has queue ahead
// of it, instead of straggling alone at the end of the run. Dispatch order
// cannot affect results: instance seeds derive from (point, run) coordinates
// alone and RunGridCSV reorders shards by index when merging.
func shardOrder(points []GridPoint, opts Options, total, nShards int) []int {
	pw := make([]float64, len(points))
	for pi := range points {
		pw[pi] = opts.pointWeight(points[pi])
	}
	return orderByWeight(shardWeights(total, func(ti int) float64 {
		return pw[ti/opts.Runs]
	}))
}

// globalPointIndex maps a position in the points slice to the grid index
// that seeds its instances (identity unless Options.PointIndices remaps).
func (o Options) globalPointIndex(pi int) int {
	if o.PointIndices != nil {
		return o.PointIndices[pi]
	}
	return pi
}

// ShardGrid cuts points into the k-th of n interleaved shards —
// points[k], points[k+n], points[k+2n], … — returning the shard and the
// global indices to pass as Options.PointIndices, so every shard derives
// the same instance seeds it would in an unsharded run. Interleaving
// (rather than contiguous ranges) spreads the expensive high-site,
// high-density tail of the default grid across all shards, keeping a CI
// matrix balanced. It panics unless 0 ≤ k < n.
func ShardGrid(points []GridPoint, k, n int) ([]GridPoint, []int) {
	return ShardPoints(points, k, n)
}

// RunGrid evaluates the configured schedulers over points × runs on the
// sharded worker pool and returns one InstanceResult per instance, indexed
// by pointIdx·Runs + run regardless of worker count.
func RunGrid(points []GridPoint, opts Options) []InstanceResult {
	return runGridSharded(points, opts.withDefaults(), nil)
}

// runGridSharded is the worker-pool core shared by RunGrid and RunGridCSV;
// callers pass opts with defaults already applied (withDefaults).
// Tasks ti ∈ [0, points·runs) map to (point ti/runs, run ti%runs) and are
// grouped into contiguous shards of shardSize tasks. Workers pull shard
// indices from a channel; each worker holds one core.Runner so simulation
// buffers are reused across its whole share of the grid. onShard, when
// non-nil, is invoked by the finishing worker with each completed shard's
// index and result range; shards finish in arbitrary order and calls may
// be concurrent, so consumers that need task order must reorder by index
// (as RunGridCSV does).
func runGridSharded(points []GridPoint, opts Options,
	onShard func(si int, shard []InstanceResult)) []InstanceResult {
	total := len(points) * opts.Runs
	results := make([]InstanceResult, total)
	order := shardOrder(points, opts, total, numShards(total))
	var shardDone func(si, lo, hi int)
	if onShard != nil {
		shardDone = func(si, lo, hi int) { onShard(si, results[lo:hi]) }
	}
	runSharded(total, opts.Workers, core.NewRunner, order,
		func(runner *core.Runner, ti int) {
			pi, run := ti/opts.Runs, ti%opts.Runs
			results[ti] = runOne(runner, points[pi], run, opts.globalPointIndex(pi), opts)
		}, shardDone, opts.Progress)
	return results
}

func runOne(runner *core.Runner, p GridPoint, run, pointIdx int, opts Options) InstanceResult {
	res := InstanceResult{
		Point:      p,
		Run:        run,
		MaxStretch: map[string]float64{},
		SumStretch: map[string]float64{},
	}
	inst, err := opts.config(p, run, pointIdx).Generate()
	if err != nil {
		res.Errs = append(res.Errs, err)
		return res
	}
	res.Jobs = inst.NumJobs()
	if inst.NumJobs() == 0 {
		return res
	}
	if opts.DryRun {
		// Record every scheduler as NaN so the result (and CSV row)
		// structure matches a real run exactly, without simulating.
		for _, name := range opts.Schedulers {
			res.MaxStretch[name] = math.NaN()
			res.SumStretch[name] = math.NaN()
		}
		return res
	}
	var t0 int64
	if opts.Clock != nil {
		t0 = opts.Clock()
	}
	ran := make([]string, 0, len(opts.Schedulers))
	for _, name := range opts.Schedulers {
		if name == "Bender98" && p.Sites > opts.Bender98SiteLimit {
			res.MaxStretch[name] = math.NaN()
			res.SumStretch[name] = math.NaN()
			continue
		}
		s, err := core.Get(name)
		if err != nil {
			res.Errs = append(res.Errs, err)
			continue
		}
		sched, err := runScheduler(runner, s, inst)
		if err != nil {
			res.Errs = append(res.Errs, fmt.Errorf("%s on %v run %d: %w", name, p, run, err))
			res.MaxStretch[name] = math.NaN()
			res.SumStretch[name] = math.NaN()
			continue
		}
		res.MaxStretch[name] = sched.MaxStretch(inst)
		res.SumStretch[name] = sched.SumStretch(inst)
		ran = append(ran, name)
	}
	// One unified snapshot for the whole instance. Solve counters are
	// per-most-recent-run, so only the schedulers that actually ran on this
	// instance are folded in — a cached counter left over from a previous
	// instance (e.g. a skipped Bender98) must not double-count.
	solve := runner.Stats().Solve
	for _, name := range ran {
		if ss, ok := solve[name]; ok {
			res.StretchErrs += ss.StretchErrs
			res.RefineErrs += ss.RefineErrs
		}
	}
	if opts.Clock != nil {
		res.Seconds = float64(opts.Clock()-t0) / 1e9
	}
	return res
}

func runScheduler(r *core.Runner, s core.Scheduler, inst *model.Instance) (sched *model.Schedule, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("panic: %v", rec)
		}
	}()
	return r.Run(s, inst)
}
