// Package exp is the experiment harness reproducing the paper's evaluation
// (§5): the 162-configuration grid behind Tables 1–16 and the density sweep
// behind Figure 3.
//
// Scale note: the paper simulates 15-minute arrival windows and 200
// instances per configuration, which (with the per-databank density
// definition) yields thousands of jobs per instance. The harness defaults
// to a target number of jobs per instance instead, derived per
// configuration from the expected arrival rate, so the full grid runs in
// minutes on a laptop; Options.Horizon restores a fixed window (paper
// scale). Ratios-to-best — the quantity every table reports — are shape
// metrics and survive this rescaling.
package exp

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"stretchsched/internal/core"
	"stretchsched/internal/model"
	"stretchsched/internal/workload"
)

// GridPoint is one of the paper's 162 platform/application configurations.
type GridPoint struct {
	Sites        int
	Databanks    int
	Availability float64
	Density      float64
}

func (g GridPoint) String() string {
	return fmt.Sprintf("sites=%d dbs=%d avail=%.0f%% density=%.2f",
		g.Sites, g.Databanks, 100*g.Availability, g.Density)
}

// DefaultGrid returns the full grid of §5.3: platforms of 3/10/20 sites,
// 3/10/20 databanks, availabilities 30/60/90%, densities 0.75–3.0.
func DefaultGrid() []GridPoint {
	var out []GridPoint
	for _, sites := range []int{3, 10, 20} {
		for _, dbs := range []int{3, 10, 20} {
			for _, avail := range []float64{0.3, 0.6, 0.9} {
				for _, dens := range []float64{0.75, 1.0, 1.25, 1.5, 2.0, 3.0} {
					out = append(out, GridPoint{sites, dbs, avail, dens})
				}
			}
		}
	}
	return out
}

// Options controls a grid run.
type Options struct {
	Runs       int      // instances per configuration (paper: 200)
	Seed       int64    // base seed; instance seeds derive deterministically
	Schedulers []string // defaults to core.Table1Names()
	// TargetJobs sizes each instance by expected job count (default 40).
	TargetJobs int
	// Horizon, when positive, fixes the arrival window in seconds instead
	// of TargetJobs (paper scale: 900).
	Horizon float64
	// SizeRange overrides the databank size range (MB).
	SizeRange [2]float64
	// Bender98SiteLimit restricts Bender98 to platforms with at most this
	// many sites (paper: 3, for cost reasons). 0 means 3.
	Bender98SiteLimit int
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Runs <= 0 {
		o.Runs = 5
	}
	if o.TargetJobs <= 0 {
		o.TargetJobs = 40
	}
	if len(o.Schedulers) == 0 {
		o.Schedulers = core.Table1Names()
	}
	if o.Bender98SiteLimit == 0 {
		o.Bender98SiteLimit = 3
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.SizeRange == [2]float64{} {
		// Scaled-down databank sizes (MB) so that TargetJobs-sized
		// instances still overlap in time the way 15-minute GriPPS runs do.
		o.SizeRange = [2]float64{10, 200}
	}
	return o
}

// config builds the workload configuration for one grid point and run.
func (o Options) config(p GridPoint, run, pointIdx int) workload.Config {
	return workload.Config{
		Sites:        p.Sites,
		Databanks:    p.Databanks,
		Availability: p.Availability,
		Density:      p.Density,
		Horizon:      o.Horizon,
		TargetJobs:   chooseTarget(o),
		SizeRange:    o.SizeRange,
		Seed:         o.Seed + int64(pointIdx)*1_000_003 + int64(run)*7919,
	}
}

func chooseTarget(o Options) int {
	if o.Horizon > 0 {
		return 0 // fixed horizon overrides target sizing
	}
	return o.TargetJobs
}

// InstanceResult holds the raw metrics of every scheduler on one instance.
// Absent schedulers (not run, or failed) are recorded as NaN.
type InstanceResult struct {
	Point      GridPoint
	Run        int
	Jobs       int
	MaxStretch map[string]float64
	SumStretch map[string]float64
	Errs       []error
}

// RunGrid evaluates the configured schedulers over points × runs in
// parallel and returns one InstanceResult per instance.
func RunGrid(points []GridPoint, opts Options) []InstanceResult {
	opts = opts.withDefaults()
	type task struct{ pi, run int }
	tasks := make(chan task)
	results := make([]InstanceResult, len(points)*opts.Runs)

	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				results[tk.pi*opts.Runs+tk.run] = runOne(points[tk.pi], tk.run, tk.pi, opts)
			}
		}()
	}
	for pi := range points {
		for run := 0; run < opts.Runs; run++ {
			tasks <- task{pi, run}
		}
	}
	close(tasks)
	wg.Wait()
	return results
}

func runOne(p GridPoint, run, pointIdx int, opts Options) InstanceResult {
	res := InstanceResult{
		Point:      p,
		Run:        run,
		MaxStretch: map[string]float64{},
		SumStretch: map[string]float64{},
	}
	inst, err := opts.config(p, run, pointIdx).Generate()
	if err != nil {
		res.Errs = append(res.Errs, err)
		return res
	}
	res.Jobs = inst.NumJobs()
	if inst.NumJobs() == 0 {
		return res
	}
	for _, name := range opts.Schedulers {
		if name == "Bender98" && p.Sites > opts.Bender98SiteLimit {
			res.MaxStretch[name] = math.NaN()
			res.SumStretch[name] = math.NaN()
			continue
		}
		s, err := core.Get(name)
		if err != nil {
			res.Errs = append(res.Errs, err)
			continue
		}
		sched, err := runScheduler(s, inst)
		if err != nil {
			res.Errs = append(res.Errs, fmt.Errorf("%s on %v run %d: %w", name, p, run, err))
			res.MaxStretch[name] = math.NaN()
			res.SumStretch[name] = math.NaN()
			continue
		}
		res.MaxStretch[name] = sched.MaxStretch(inst)
		res.SumStretch[name] = sched.SumStretch(inst)
	}
	return res
}

func runScheduler(s core.Scheduler, inst *model.Instance) (sched *model.Schedule, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return s.Run(inst)
}
