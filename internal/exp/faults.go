package exp

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"runtime"
	"strconv"
	"strings"

	"stretchsched/internal/cluster"
	"stretchsched/internal/core"
	"stretchsched/internal/fault"
	"stretchsched/internal/model"
	"stretchsched/internal/stats"
	"stretchsched/internal/workload"
)

// The faults experiment family measures how placement quality degrades
// under machine failures: one job stream over M nodes, a seeded failure
// plan knocking machines down at a configurable rate, jobs on a failed
// machine losing their work and re-entering the balancer after backoff.
// The headline read is max/mean retry-inflated stretch versus failure rate
// per balancer — rate 0 is the exact PR 9 fault-free cluster path, so each
// curve's left edge doubles as a regression anchor. One local policy runs
// per instance (fault mode needs a list policy; SWRPT by default), and the
// family rides the same sharded pool, streamed CSV merge and per-point
// digests as the paper and cluster grids.

// FaultPoint is one fault configuration: M identical nodes, a balancer,
// and a failure rate (expected failures per node over the arrival window).
type FaultPoint struct {
	Machines int
	Balancer string
	Rate     float64
}

func (p FaultPoint) String() string {
	return fmt.Sprintf("machines=%d balancer=%s rate=%.2f", p.Machines, p.Balancer, p.Rate)
}

// DefaultFaultGrid returns the stretch-vs-failure-rate grid: clusters of 2
// and 4 nodes under every balancer, across four failure rates including
// the fault-free anchor.
func DefaultFaultGrid() []FaultPoint {
	var out []FaultPoint
	for _, m := range []int{2, 4} {
		for _, b := range []string{"ideal", "random", "kchoices", "stretch"} {
			for _, r := range []float64{0, 0.5, 1, 2} {
				out = append(out, FaultPoint{m, b, r})
			}
		}
	}
	return out
}

// FaultOptions controls a faults grid run.
type FaultOptions struct {
	Runs      int     // instances per configuration
	Seed      int64   // base seed; instance/balancer/plan seeds derive deterministically
	Scheduler string  // the single local list policy (default SWRPT)
	Density   float64 // per-machine load (default 1.0)
	// TargetJobs sizes each instance by expected job count per machine
	// (default 30), exactly as the cluster family does.
	TargetJobs int
	// SizeRange overrides the databank size range (MB).
	SizeRange [2]float64
	// Workers bounds parallelism (0 = GOMAXPROCS); never affects results.
	Workers int
	// PointIndices remaps points to global grid indices for sharded runs.
	PointIndices []int
	// DryRun generates every instance but runs nothing (NaN metrics).
	DryRun bool
	// Progress, when non-nil, is called after every completed instance.
	Progress func(done, total int)
}

func (o FaultOptions) withDefaults() FaultOptions {
	if o.Runs <= 0 {
		o.Runs = 5
	}
	if o.TargetJobs <= 0 {
		o.TargetJobs = 30
	}
	if o.Scheduler == "" {
		o.Scheduler = "SWRPT"
	}
	if o.Density <= 0 {
		o.Density = 1.0
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.SizeRange == [2]float64{} {
		o.SizeRange = [2]float64{10, 200}
	}
	return o
}

// config builds the workload for one fault point and run — the cluster
// family's identical-machines setting at a fixed per-machine density.
func (o FaultOptions) config(p FaultPoint, run, pointIdx int) workload.Config {
	return workload.Config{
		Sites:        1,
		ProcsPerSite: 1,
		Databanks:    12,
		Availability: 1,
		Density:      o.Density * float64(p.Machines),
		TargetJobs:   o.TargetJobs * p.Machines,
		SizeRange:    o.SizeRange,
		Seed:         o.Seed + int64(pointIdx)*1_000_003 + int64(run)*7919,
	}
}

// lbSeed derives the balancer RNG seed for one instance, with the cluster
// family's offset so balancer draws never alias the generator's.
func (o FaultOptions) lbSeed(run, pointIdx int) int64 {
	return o.Seed + int64(pointIdx)*1_000_003 + int64(run)*7919 + 500_009
}

// faultSeed derives the failure-plan seed for one instance — a third
// offset so plan draws alias neither the generator's nor the balancer's.
func (o FaultOptions) faultSeed(run, pointIdx int) int64 {
	return o.Seed + int64(pointIdx)*1_000_003 + int64(run)*7919 + 900_007
}

func (o FaultOptions) globalPointIndex(pi int) int {
	if o.PointIndices != nil {
		return o.PointIndices[pi]
	}
	return pi
}

// pointWeight estimates relative instance cost for shard dispatch: the
// cluster family's estimate, inflated by the failure rate (every retry is
// another placement and another local replan).
func (o FaultOptions) pointWeight(p FaultPoint) float64 {
	jobs := float64(o.TargetJobs * p.Machines)
	w := jobs * jobs * (1 + p.Rate)
	if p.Balancer == "ideal" {
		w *= float64(p.Machines)
	}
	return w
}

// planHorizon is the failure window for one instance: the arrival span,
// falling back to the total alone time when every job releases at 0.
func planHorizon(inst *model.Instance) float64 {
	h := 0.0
	for _, j := range inst.Jobs {
		if j.Release > h {
			h = j.Release
		}
	}
	if h > 0 {
		return h
	}
	for _, j := range inst.Jobs {
		h += j.Size
	}
	if h == 0 {
		h = 1
	}
	return h
}

// FaultResult holds one instance's metrics under its failure plan.
type FaultResult struct {
	Point       FaultPoint
	Run         int
	Jobs        int
	MaxStretch  float64 // max retry-inflated stretch
	MeanStretch float64 // sum-stretch / jobs
	Retries     int     // re-placements beyond each job's first
	LostWork    float64 // completed-so-far work discarded by failures
	Errs        []error
}

// RunFaults evaluates the configured policy over points × runs on the
// sharded worker pool, one FaultResult per instance indexed by
// pointIdx·Runs + run regardless of worker count.
func RunFaults(points []FaultPoint, opts FaultOptions) []FaultResult {
	return runFaultsSharded(points, opts.withDefaults(), nil)
}

func runFaultsSharded(points []FaultPoint, opts FaultOptions,
	onShard func(si int, shard []FaultResult)) []FaultResult {
	total := len(points) * opts.Runs
	results := make([]FaultResult, total)
	pw := make([]float64, len(points))
	for pi := range points {
		pw[pi] = opts.pointWeight(points[pi])
	}
	order := orderByWeight(shardWeights(total, func(ti int) float64 {
		return pw[ti/opts.Runs]
	}))
	var shardDone func(si, lo, hi int)
	if onShard != nil {
		shardDone = func(si, lo, hi int) { onShard(si, results[lo:hi]) }
	}
	runSharded(total, opts.Workers, core.NewClusterRunner, order,
		func(cr *core.ClusterRunner, ti int) {
			pi, run := ti/opts.Runs, ti%opts.Runs
			results[ti] = runFaultOne(cr, points[pi], run, opts.globalPointIndex(pi), opts)
		}, shardDone, opts.Progress)
	return results
}

func runFaultOne(cr *core.ClusterRunner, p FaultPoint, run, pointIdx int, opts FaultOptions) FaultResult {
	res := FaultResult{
		Point:       p,
		Run:         run,
		MaxStretch:  math.NaN(),
		MeanStretch: math.NaN(),
		LostWork:    math.NaN(),
	}
	inst, err := opts.config(p, run, pointIdx).Generate()
	if err != nil {
		res.Errs = append(res.Errs, err)
		return res
	}
	res.Jobs = inst.NumJobs()
	if inst.NumJobs() == 0 || opts.DryRun {
		return res
	}
	ci, err := model.Replicate(inst.Platform, p.Machines, inst.Jobs)
	if err != nil {
		res.Errs = append(res.Errs, err)
		return res
	}
	lb, ok := cluster.Balancers(p.Balancer)
	if !ok {
		res.Errs = append(res.Errs, fmt.Errorf("exp: unknown balancer %q", p.Balancer))
		return res
	}
	plan, err := fault.New(fault.Config{
		Nodes:   p.Machines,
		Horizon: planHorizon(inst),
		Rate:    p.Rate,
		Seed:    opts.faultSeed(run, pointIdx),
	})
	if err != nil {
		res.Errs = append(res.Errs, fmt.Errorf("exp: fault plan for %v run %d: %w", p, run, err))
		return res
	}
	cr.ResetStats()
	cs, err := runFaultScheduler(cr, opts.Scheduler, ci, lb, opts.lbSeed(run, pointIdx), plan)
	if err != nil {
		res.Errs = append(res.Errs, fmt.Errorf("%s on %v run %d: %w", opts.Scheduler, p, run, err))
		return res
	}
	res.MaxStretch = cs.MaxStretch(ci)
	res.MeanStretch = cs.SumStretch(ci) / float64(res.Jobs)
	fs := cr.Stats().Faults
	res.Retries = fs.Replacements
	res.LostWork = fs.LostWork
	return res
}

func runFaultScheduler(cr *core.ClusterRunner, name string, ci *model.ClusterInstance,
	lb cluster.LB, seed int64, plan *fault.Plan) (cs *model.ClusterSchedule, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("panic: %v", rec)
		}
	}()
	return cr.RunFaulty(name, ci, lb, seed, plan, fault.DefaultBackoff())
}

// faultHeader is the column layout of the raw faults metric dump.
var faultHeader = []string{"machines", "balancer", "rate",
	"run", "jobs", "scheduler", "max_stretch", "mean_stretch", "retries", "lost_work"}

// writeFaultRow encodes one instance's single row.
func writeFaultRow(cw *csv.Writer, r *FaultResult, scheduler string) error {
	return cw.Write([]string{
		strconv.Itoa(r.Point.Machines),
		r.Point.Balancer,
		formatFloat(r.Point.Rate),
		strconv.Itoa(r.Run),
		strconv.Itoa(r.Jobs),
		scheduler,
		formatFloat(r.MaxStretch),
		formatFloat(r.MeanStretch),
		strconv.Itoa(r.Retries),
		formatFloat(r.LostWork),
	})
}

// encodeFaultShard encodes one completed shard's rows (header-less).
func encodeFaultShard(w io.Writer, shard []FaultResult, scheduler string) error {
	cw := csv.NewWriter(w)
	for i := range shard {
		if err := writeFaultRow(cw, &shard[i], scheduler); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFaultsCSV dumps raw per-instance fault metrics, one row each.
func WriteFaultsCSV(w io.Writer, results []FaultResult, scheduler string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(faultHeader); err != nil {
		return err
	}
	for i := range results {
		if err := writeFaultRow(cw, &results[i], scheduler); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RunFaultsCSV runs the faults grid and streams the raw metrics to w via
// the in-order shard flush: output bytes are identical for any worker
// count.
func RunFaultsCSV(w io.Writer, points []FaultPoint, opts FaultOptions) ([]FaultResult, error) {
	opts = opts.withDefaults()
	stream, err := newCSVStream(w, faultHeader)
	if err != nil {
		return nil, err
	}
	results := runFaultsSharded(points, opts, func(si int, shard []FaultResult) {
		if stream.failed() {
			return
		}
		var buf bytes.Buffer
		if err := encodeFaultShard(&buf, shard, opts.Scheduler); err != nil {
			stream.fail(fmt.Errorf("exp: encoding faults shard %d: %w", si, err))
			return
		}
		stream.add(si, buf.Bytes())
	})
	return results, stream.err()
}

// ReadFaultsCSV parses a raw faults metric dump (or concatenated per-shard
// dumps) back into FaultResults.
func ReadFaultsCSV(r io.Reader) ([]FaultResult, string, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, "", fmt.Errorf("exp: faults CSV header: %w", err)
	}
	if len(header) != len(faultHeader) {
		return nil, "", fmt.Errorf("exp: faults CSV header has %d columns, want %d",
			len(header), len(faultHeader))
	}
	for i, name := range faultHeader {
		if header[i] != name {
			return nil, "", fmt.Errorf("exp: faults CSV column %d is %q, want %q", i, header[i], name)
		}
	}
	var results []FaultResult
	scheduler := ""
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return results, scheduler, nil
		}
		if err != nil {
			return nil, "", fmt.Errorf("exp: faults CSV line %d: %w", line, err)
		}
		bad := func(col string, err error) error {
			return fmt.Errorf("exp: faults CSV line %d: bad %s: %w", line, col, err)
		}
		machines, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, "", bad("machines", err)
		}
		rate, err := parseFloat(row[2])
		if err != nil {
			return nil, "", bad("rate", err)
		}
		run, err := strconv.Atoi(row[3])
		if err != nil {
			return nil, "", bad("run", err)
		}
		jobs, err := strconv.Atoi(row[4])
		if err != nil {
			return nil, "", bad("jobs", err)
		}
		maxS, err := parseFloat(row[6])
		if err != nil {
			return nil, "", bad("max_stretch", err)
		}
		meanS, err := parseFloat(row[7])
		if err != nil {
			return nil, "", bad("mean_stretch", err)
		}
		retries, err := strconv.Atoi(row[8])
		if err != nil {
			return nil, "", bad("retries", err)
		}
		lost, err := parseFloat(row[9])
		if err != nil {
			return nil, "", bad("lost_work", err)
		}
		if scheduler == "" {
			scheduler = row[5]
		} else if row[5] != scheduler {
			return nil, "", fmt.Errorf("exp: faults CSV line %d: mixed schedulers %q and %q",
				line, scheduler, row[5])
		}
		results = append(results, FaultResult{
			Point:       FaultPoint{machines, row[1], rate},
			Run:         run,
			Jobs:        jobs,
			MaxStretch:  maxS,
			MeanStretch: meanS,
			Retries:     retries,
			LostWork:    lost,
		})
	}
}

// faultPointKey is the digest line key: the point's CSV coordinates.
func faultPointKey(p FaultPoint) string {
	return fmt.Sprintf("%d,%s,%s", p.Machines, p.Balancer, formatFloat(p.Rate))
}

// FaultPointDigests returns one "machines,balancer,rate fnv64a" line per
// fault point present in results, sorted, each digesting the point's CSV
// rows exactly as WriteFaultsCSV encodes them — the faults family's
// merge-integrity check.
func FaultPointDigests(results []FaultResult, scheduler string) ([]string, error) {
	return digestLines(len(results),
		func(i int) string { return faultPointKey(results[i].Point) },
		func(i int, cw *csv.Writer) error { return writeFaultRow(cw, &results[i], scheduler) })
}

// WriteFaultPointDigests writes FaultPointDigests lines to w.
func WriteFaultPointDigests(w io.Writer, results []FaultResult, scheduler string) error {
	lines, err := FaultPointDigests(results, scheduler)
	if err != nil {
		return err
	}
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// faultAxes lists the distinct machine counts, balancers and rates of
// points, each in first-appearance order.
func faultAxes(results []FaultResult) (machines []int, balancers []string, rates []float64) {
	for _, r := range results {
		p := r.Point
		foundM := false
		for _, m := range machines {
			if m == p.Machines {
				foundM = true
				break
			}
		}
		if !foundM {
			machines = append(machines, p.Machines)
		}
		foundB := false
		for _, b := range balancers {
			if b == p.Balancer {
				foundB = true
				break
			}
		}
		if !foundB {
			balancers = append(balancers, p.Balancer)
		}
		foundR := false
		for _, rt := range rates {
			if rt == p.Rate {
				foundR = true
				break
			}
		}
		if !foundR {
			rates = append(rates, p.Rate)
		}
	}
	return machines, balancers, rates
}

// RenderFaultTables renders the faults family report: per machine count,
// one balancer × failure-rate matrix of mean max-stretch and one of mean
// mean-stretch, plus a retries/lost-work matrix — stretch degradation
// curves read along each row.
func RenderFaultTables(results []FaultResult, scheduler string) string {
	machines, balancers, rates := faultAxes(results)
	var b strings.Builder
	fmt.Fprintf(&b, "Faults: %s under seeded machine failures (rate = expected failures per node)\n\n", scheduler)
	for _, m := range machines {
		b.WriteString(renderFaultMatrix(results, m, balancers, rates, "mean max-stretch",
			func(r *FaultResult) (float64, bool) { return r.MaxStretch, !math.IsNaN(r.MaxStretch) }))
		b.WriteString("\n")
		b.WriteString(renderFaultMatrix(results, m, balancers, rates, "mean mean-stretch",
			func(r *FaultResult) (float64, bool) { return r.MeanStretch, !math.IsNaN(r.MeanStretch) }))
		b.WriteString("\n")
		b.WriteString(renderFaultMatrix(results, m, balancers, rates, "mean retries",
			func(r *FaultResult) (float64, bool) { return float64(r.Retries), r.Jobs > 0 }))
		b.WriteString("\n")
	}
	return b.String()
}

// renderFaultMatrix renders one balancer × rate matrix for machine count m,
// cells the mean of metric over that point's runs.
func renderFaultMatrix(results []FaultResult, m int, balancers []string, rates []float64,
	title string, metric func(*FaultResult) (float64, bool)) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d machines: %s\n", m, title)
	fmt.Fprintf(&b, "%-10s |", "")
	for _, rt := range rates {
		fmt.Fprintf(&b, " %10s |", fmt.Sprintf("rate=%.2g", rt))
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 10+1+len(rates)*14))
	b.WriteString("\n")
	for _, bal := range balancers {
		fmt.Fprintf(&b, "%-10s |", bal)
		for _, rt := range rates {
			var agg stats.Agg
			for i := range results {
				r := &results[i]
				if r.Point.Machines != m || r.Point.Balancer != bal || r.Point.Rate != rt {
					continue
				}
				if v, ok := metric(r); ok {
					agg.Add(v)
				}
			}
			cell := "-"
			if agg.N() > 0 {
				cell = fmt.Sprintf("%.4f", agg.Mean())
			}
			fmt.Fprintf(&b, " %10s |", cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
