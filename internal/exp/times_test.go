package exp

import (
	"bytes"
	"strings"
	"testing"
)

// TestPointTimesRoundTrip: a measured pass's sidecar must read back into
// exactly the per-point sums, and concatenated shard sidecars must sum.
func TestPointTimesRoundTrip(t *testing.T) {
	pa := GridPoint{3, 3, 0.6, 1.0}
	pb := GridPoint{10, 10, 0.3, 2.0}
	results := []InstanceResult{
		{Point: pa, Run: 0, Seconds: 1.5},
		{Point: pa, Run: 1, Seconds: 0.5},
		{Point: pb, Run: 0, Seconds: 3.25},
		{Point: pb, Run: 1}, // unmeasured instance contributes nothing
	}
	var buf bytes.Buffer
	if err := WritePointTimes(&buf, results); err != nil {
		t.Fatal(err)
	}
	times, err := ReadPointTimes(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[pa] != 2.0 || times[pb] != 3.25 {
		t.Fatalf("times = %v, want {%v: 2, %v: 3.25}", times, pa, pb)
	}

	// Concatenated shard sidecars (header stripped from the second, as the
	// nightly merge does) sum per point.
	second := buf.String()
	second = second[strings.Index(second, "\n")+1:]
	merged := buf.String() + second
	times, err = ReadPointTimes(strings.NewReader(merged))
	if err != nil {
		t.Fatal(err)
	}
	if times[pa] != 4.0 || times[pb] != 6.5 {
		t.Fatalf("merged times = %v, want doubled sums", times)
	}
}

// TestMeasuredSecondsDrivesDispatch: with a measured-times map, pointWeight
// must prefer the observation over the static heuristic — so a point the
// static model calls cheap but the last pass measured slow dispatches first.
func TestMeasuredSecondsDrivesDispatch(t *testing.T) {
	cheap := GridPoint{3, 3, 0.6, 1.0}   // statically light (small sites)
	heavy := GridPoint{20, 20, 0.9, 3.0} // statically heavy
	opts := Options{Schedulers: []string{"SWRPT"}, Runs: 1, TargetJobs: 8}.withDefaults()

	if opts.pointWeight(cheap) >= opts.pointWeight(heavy) {
		t.Fatalf("static weights: cheap %g >= heavy %g",
			opts.pointWeight(cheap), opts.pointWeight(heavy))
	}
	opts.MeasuredSeconds = map[GridPoint]float64{cheap: 100, heavy: 1}
	if opts.pointWeight(cheap) != 100 || opts.pointWeight(heavy) != 1 {
		t.Fatalf("measured weights not used: cheap %g, heavy %g",
			opts.pointWeight(cheap), opts.pointWeight(heavy))
	}

	points := []GridPoint{heavy, cheap}
	total := len(points) * opts.Runs
	order := shardOrder(points, opts, total, numShards(total))
	// One task per point, shardSize covers both → a single shard; use more
	// runs to split shards across points instead.
	opts.Runs = shardSize
	total = len(points) * opts.Runs
	order = shardOrder(points, opts, total, numShards(total))
	if len(order) != 2 || order[0] != 1 {
		t.Fatalf("dispatch order %v: measured-slow point's shard must go first", order)
	}
}

// TestGridMeasuresSeconds: with a Clock injected, a real grid pass must
// record positive per-instance Seconds and a non-empty sidecar; without
// one, Seconds stays zero.
func TestGridMeasuresSeconds(t *testing.T) {
	points := gridTestPoints()[:1]
	opts := gridTestOptions(2)
	opts.Schedulers = []string{"SWRPT", "SRPT"}
	var tick int64
	opts.Clock = func() int64 { tick += 1e6; return tick } // 1ms per read
	results := RunGrid(points, opts)
	for i, r := range results {
		if r.Jobs > 0 && r.Seconds <= 0 {
			t.Fatalf("instance %d: Seconds = %v with Clock set", i, r.Seconds)
		}
	}
	var buf bytes.Buffer
	if err := WritePointTimes(&buf, results); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 1+len(points) {
		t.Fatalf("sidecar has %d lines, want %d", lines, 1+len(points))
	}

	opts.Clock = nil
	for i, r := range RunGrid(points, opts) {
		if r.Seconds != 0 {
			t.Fatalf("instance %d: Seconds = %v without Clock", i, r.Seconds)
		}
	}
}
