package exp

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

// TestPointDigestsShardMergeInvariance is the nightly merge contract: the
// union of per-shard digest lines equals the digests recomputed from the
// concatenated CSV after a read-back — the exact pipeline of the merge job
// (shards write digests next to their CSVs; the merge recomputes via
// -fromcsv and compares sorted line sets).
func TestPointDigestsShardMergeInvariance(t *testing.T) {
	points := gridTestPoints()
	opts := gridTestOptions(2)

	const n = 2
	var shardLines []string
	var merged bytes.Buffer
	for k := 0; k < n; k++ {
		shardPoints, indices := ShardGrid(points, k, n)
		shardOpts := opts
		shardOpts.PointIndices = indices
		var csvBuf bytes.Buffer
		results, err := RunGridCSV(&csvBuf, shardPoints, shardOpts)
		if err != nil {
			t.Fatal(err)
		}
		lines, err := PointDigests(results, opts.Schedulers)
		if err != nil {
			t.Fatal(err)
		}
		shardLines = append(shardLines, lines...)
		body := csvBuf.String()
		if k > 0 {
			// Drop the header when concatenating, as the merge job does.
			body = body[strings.Index(body, "\n")+1:]
		}
		merged.WriteString(body)
	}
	sort.Strings(shardLines)

	parsed, err := ReadResultsCSV(bytes.NewReader(merged.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recomputed, err := PointDigests(parsed, opts.Schedulers)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(shardLines, "\n") != strings.Join(recomputed, "\n") {
		t.Fatalf("digest mismatch:\nshards:\n%s\nrecomputed:\n%s",
			strings.Join(shardLines, "\n"), strings.Join(recomputed, "\n"))
	}
	if len(recomputed) != len(points) {
		t.Fatalf("%d digest lines for %d points", len(recomputed), len(points))
	}
}

// TestPointDigestsSkipRowlessPoints: a point whose instances produced no
// CSV rows (generation failure, zero-job instances) must produce no digest
// line either — the merge side recomputes digests from the merged CSV,
// where such a point is invisible, and a shard-only empty-input line would
// fail the nightly diff with phantom corruption.
func TestPointDigestsSkipRowlessPoints(t *testing.T) {
	rowless := InstanceResult{
		Point:      GridPoint{Sites: 3, Databanks: 3, Availability: 0.3, Density: 0.75},
		MaxStretch: map[string]float64{},
		SumStretch: map[string]float64{},
	}
	withRows := InstanceResult{
		Point:      GridPoint{Sites: 10, Databanks: 3, Availability: 0.3, Density: 0.75},
		Jobs:       2,
		MaxStretch: map[string]float64{"SWRPT": 1.5},
		SumStretch: map[string]float64{"SWRPT": 2.5},
	}
	lines, err := PointDigests([]InstanceResult{rowless, withRows}, []string{"SWRPT"})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "10,3,") {
		t.Fatalf("digest lines = %q, want exactly the row-bearing point", lines)
	}
}

// TestPointDigestsDetectCorruption: silently corrupting one metric field of
// the merged CSV — the failure class row counts cannot see — must change
// that point's digest.
func TestPointDigestsDetectCorruption(t *testing.T) {
	points := gridTestPoints()[:2]
	opts := gridTestOptions(1)

	var csvBuf bytes.Buffer
	results, err := RunGridCSV(&csvBuf, points, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := PointDigests(results, opts.Schedulers)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(mangle func(string) string) []string {
		t.Helper()
		parsed, err := ReadResultsCSV(strings.NewReader(mangle(csvBuf.String())))
		if err != nil {
			t.Fatal(err)
		}
		lines, err := PointDigests(parsed, opts.Schedulers)
		if err != nil {
			t.Fatal(err)
		}
		return lines
	}

	// Sanity: an un-mangled round trip reproduces the digests bit for bit.
	if clean := corrupt(func(s string) string { return s }); strings.Join(clean, "\n") != strings.Join(want, "\n") {
		t.Fatalf("clean round trip changed digests:\n%s\nvs\n%s",
			strings.Join(clean, "\n"), strings.Join(want, "\n"))
	}

	// Flip one digit of the last row's final metric field.
	mangled := corrupt(func(s string) string {
		rows := strings.Split(strings.TrimRight(s, "\n"), "\n")
		last := rows[len(rows)-1]
		i := strings.LastIndexAny(last, "0123456789")
		if i < 0 {
			t.Fatal("no digit to corrupt")
		}
		d := last[i]
		flip := byte('7')
		if d == '7' {
			flip = '3'
		}
		rows[len(rows)-1] = last[:i] + string(flip) + last[i+1:]
		return strings.Join(rows, "\n") + "\n"
	})
	if strings.Join(mangled, "\n") == strings.Join(want, "\n") {
		t.Fatal("corrupted metric left every digest unchanged")
	}
}
