package exp

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"sort"
)

// Per-point row digests are the nightly merge's integrity check. The matrix
// merge already asserts the total row count against a -dryrun pass, which
// catches truncation but not corruption: a metric field mangled in an
// artifact upload, a shard CSV concatenated twice, or rows reordered across
// points would all keep the count intact and silently poison the rendered
// tables. Each shard therefore writes, next to its CSV, one FNV-64a digest
// over the exact CSV row bytes of every grid point it ran (a point's rows
// never span shards: ShardGrid shards by point). The merge job recomputes
// the same digests from the merged CSV via -fromcsv and compares the sorted
// line sets — any altered, lost, duplicated or misattributed row changes
// its point's digest.

// pointKey is the digest line key: the point's CSV coordinate fields.
func pointKey(p GridPoint) string {
	return fmt.Sprintf("%d,%d,%s,%s",
		p.Sites, p.Databanks, formatFloat(p.Availability), formatFloat(p.Density))
}

// digestLines is the digest core shared by the experiment families: for
// each of n results it encodes the result's CSV rows (via write, exactly
// as the family's CSV writer does), folds the bytes into the FNV-64a
// accumulator of the result's point key, and returns the sorted
// "key fnv64a" lines.
func digestLines(n int, key func(i int) string, write func(i int, cw *csv.Writer) error) ([]string, error) {
	hs := map[string]hash.Hash64{}
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		buf.Reset()
		cw := csv.NewWriter(&buf)
		if err := write(i, cw); err != nil {
			return nil, err
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return nil, err
		}
		// A result that produced no rows at all (generation failure,
		// zero-job instances) must not get a digest line: the merge-side
		// recomputation reads rows back from the merged CSV and would never
		// see the point, so an empty-input digest here could only ever
		// produce a spurious mismatch.
		if buf.Len() == 0 {
			continue
		}
		k := key(i)
		h, ok := hs[k]
		if !ok {
			h = fnv.New64a()
			hs[k] = h
		}
		h.Write(buf.Bytes())
	}
	lines := make([]string, 0, len(hs))
	for key, h := range hs { //stretch:order-ok — collect-then-sort, two lines down
		lines = append(lines, fmt.Sprintf("%s %016x", key, h.Sum64()))
	}
	sort.Strings(lines)
	return lines, nil
}

// PointDigests returns one "sites,dbs,avail,density fnv64a" line per grid
// point present in results, sorted, each digesting the point's CSV rows
// (all runs, all schedulers, in row order) exactly as WriteResultsCSV
// encodes them. schedulers must match the list the rows were produced
// with; a mismatch shows up as a digest mismatch, which is the desired
// failure mode for a misconfigured merge.
func PointDigests(results []InstanceResult, schedulers []string) ([]string, error) {
	return digestLines(len(results),
		func(i int) string { return pointKey(results[i].Point) },
		func(i int, cw *csv.Writer) error { return writeResultRows(cw, &results[i], schedulers) })
}

// WritePointDigests writes PointDigests lines to w, one per line.
func WritePointDigests(w io.Writer, results []InstanceResult, schedulers []string) error {
	lines, err := PointDigests(results, schedulers)
	if err != nil {
		return err
	}
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
