package exp

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"runtime"
	"strconv"
	"strings"

	"stretchsched/internal/cluster"
	"stretchsched/internal/core"
	"stretchsched/internal/model"
	"stretchsched/internal/stats"
	"stretchsched/internal/workload"
)

// The cluster experiment family reproduces the Srivastav–Trystram
// single-vs-parallel-machines comparison (PAPERS.md: total stretch on
// single and identical parallel machines) on the cluster world: one
// generated job stream is placed over M identical single-processor nodes
// by a competing balancer and scheduled locally by competing policies,
// with machines = 1 as the single-machine baseline. It rides the same
// sharded worker pool, streamed CSV merge and per-point digests as the
// paper grid — the task space just carries (machines, balancer) axes
// instead of platform shape.

// ClusterPoint is one cluster configuration: M identical nodes, a
// balancer, and a per-node workload density.
type ClusterPoint struct {
	Machines int
	Balancer string
	Density  float64
}

func (p ClusterPoint) String() string {
	return fmt.Sprintf("machines=%d balancer=%s density=%.2f", p.Machines, p.Balancer, p.Density)
}

// DefaultClusterGrid returns the single-vs-parallel comparison grid:
// machines = 1 (the degenerate "single" placement) against clusters of 2
// and 4 nodes under every balancer, across four densities.
func DefaultClusterGrid() []ClusterPoint {
	var out []ClusterPoint
	for _, m := range []int{1, 2, 4} {
		balancers := []string{"ideal", "random", "kchoices", "stretch"}
		if m == 1 {
			// Every balancer degenerates to node 0; one entry suffices.
			balancers = []string{"single"}
		}
		for _, b := range balancers {
			for _, d := range []float64{0.75, 1.0, 1.5, 2.0} {
				out = append(out, ClusterPoint{m, b, d})
			}
		}
	}
	return out
}

// ClusterOptions controls a cluster grid run.
type ClusterOptions struct {
	Runs       int      // instances per configuration
	Seed       int64    // base seed; instance seeds derive deterministically
	Schedulers []string // local policies; defaults to SRPT, SWRPT, ST14
	// TargetJobs sizes each instance by expected job count per machine
	// (default 30): an M-machine point generates ~M·TargetJobs jobs at M
	// times the arrival rate, holding per-machine load at the point's
	// density.
	TargetJobs int
	// SizeRange overrides the databank size range (MB).
	SizeRange [2]float64
	// Workers bounds parallelism (0 = GOMAXPROCS); never affects results.
	Workers int
	// PointIndices remaps points to global grid indices for sharded runs
	// (see ShardPoints); nil means points[i] is global index i.
	PointIndices []int
	// DryRun generates every instance but runs no scheduler (NaN metrics),
	// predicting the exact row structure of a real run.
	DryRun bool
	// Progress, when non-nil, is called after every completed instance.
	Progress func(done, total int)
}

func (o ClusterOptions) withDefaults() ClusterOptions {
	if o.Runs <= 0 {
		o.Runs = 5
	}
	if o.TargetJobs <= 0 {
		o.TargetJobs = 30
	}
	if len(o.Schedulers) == 0 {
		o.Schedulers = DefaultClusterSchedulers()
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.SizeRange == [2]float64{} {
		o.SizeRange = [2]float64{10, 200}
	}
	return o
}

// DefaultClusterSchedulers returns the local policies of the comparison:
// the paper's best-practice list rules against the Srivastav–Trystram
// heuristic.
func DefaultClusterSchedulers() []string { return []string{"SRPT", "SWRPT", "ST14"} }

// config builds the workload for one cluster point and run: one
// single-processor site holding every databank — the identical-machines
// setting — with the arrival rate and job count scaled by M so per-machine
// load stays at the point's density.
func (o ClusterOptions) config(p ClusterPoint, run, pointIdx int) workload.Config {
	return workload.Config{
		Sites:        1,
		ProcsPerSite: 1,
		Databanks:    12,
		Availability: 1,
		Density:      p.Density * float64(p.Machines),
		TargetJobs:   o.TargetJobs * p.Machines,
		SizeRange:    o.SizeRange,
		Seed:         o.Seed + int64(pointIdx)*1_000_003 + int64(run)*7919,
	}
}

// lbSeed derives the balancer RNG seed for one instance — offset from the
// workload seed so balancer draws never alias the generator's.
func (o ClusterOptions) lbSeed(run, pointIdx int) int64 {
	return o.Seed + int64(pointIdx)*1_000_003 + int64(run)*7919 + 500_009
}

func (o ClusterOptions) globalPointIndex(pi int) int {
	if o.PointIndices != nil {
		return o.PointIndices[pi]
	}
	return pi
}

// pointWeight estimates the relative cost of one instance at p for shard
// dispatch only: local list scheduling is ~jobs² in the worst case, and the
// ideal balancer runs one full local simulation per node per arrival.
func (o ClusterOptions) pointWeight(p ClusterPoint) float64 {
	jobs := float64(o.TargetJobs * p.Machines)
	w := jobs * jobs
	if p.Balancer == "ideal" {
		w *= float64(p.Machines)
	}
	return w
}

// ClusterResult holds the raw metrics of every local policy on one cluster
// instance. Absent schedulers (failed) are recorded as NaN.
type ClusterResult struct {
	Point      ClusterPoint
	Run        int
	Jobs       int
	MaxStretch map[string]float64
	SumStretch map[string]float64
	Errs       []error
}

// RunCluster evaluates the configured local policies over points × runs on
// the sharded worker pool and returns one ClusterResult per instance,
// indexed by pointIdx·Runs + run regardless of worker count.
func RunCluster(points []ClusterPoint, opts ClusterOptions) []ClusterResult {
	return runClusterSharded(points, opts.withDefaults(), nil)
}

func runClusterSharded(points []ClusterPoint, opts ClusterOptions,
	onShard func(si int, shard []ClusterResult)) []ClusterResult {
	total := len(points) * opts.Runs
	results := make([]ClusterResult, total)
	pw := make([]float64, len(points))
	for pi := range points {
		pw[pi] = opts.pointWeight(points[pi])
	}
	order := orderByWeight(shardWeights(total, func(ti int) float64 {
		return pw[ti/opts.Runs]
	}))
	var shardDone func(si, lo, hi int)
	if onShard != nil {
		shardDone = func(si, lo, hi int) { onShard(si, results[lo:hi]) }
	}
	runSharded(total, opts.Workers, core.NewClusterRunner, order,
		func(cr *core.ClusterRunner, ti int) {
			pi, run := ti/opts.Runs, ti%opts.Runs
			results[ti] = runClusterOne(cr, points[pi], run, opts.globalPointIndex(pi), opts)
		}, shardDone, opts.Progress)
	return results
}

func runClusterOne(cr *core.ClusterRunner, p ClusterPoint, run, pointIdx int, opts ClusterOptions) ClusterResult {
	res := ClusterResult{
		Point:      p,
		Run:        run,
		MaxStretch: map[string]float64{},
		SumStretch: map[string]float64{},
	}
	inst, err := opts.config(p, run, pointIdx).Generate()
	if err != nil {
		res.Errs = append(res.Errs, err)
		return res
	}
	res.Jobs = inst.NumJobs()
	if inst.NumJobs() == 0 {
		return res
	}
	if opts.DryRun {
		for _, name := range opts.Schedulers {
			res.MaxStretch[name] = math.NaN()
			res.SumStretch[name] = math.NaN()
		}
		return res
	}
	ci, err := model.Replicate(inst.Platform, p.Machines, inst.Jobs)
	if err != nil {
		res.Errs = append(res.Errs, err)
		return res
	}
	seed := opts.lbSeed(run, pointIdx)
	for _, name := range opts.Schedulers {
		lb, ok := cluster.Balancers(p.Balancer)
		if !ok {
			res.Errs = append(res.Errs, fmt.Errorf("exp: unknown balancer %q", p.Balancer))
			res.MaxStretch[name] = math.NaN()
			res.SumStretch[name] = math.NaN()
			continue
		}
		cs, err := runClusterScheduler(cr, name, ci, lb, seed)
		if err != nil {
			res.Errs = append(res.Errs, fmt.Errorf("%s on %v run %d: %w", name, p, run, err))
			res.MaxStretch[name] = math.NaN()
			res.SumStretch[name] = math.NaN()
			continue
		}
		res.MaxStretch[name] = cs.MaxStretch(ci)
		res.SumStretch[name] = cs.SumStretch(ci)
	}
	return res
}

func runClusterScheduler(cr *core.ClusterRunner, name string, ci *model.ClusterInstance,
	lb cluster.LB, seed int64) (cs *model.ClusterSchedule, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("panic: %v", rec)
		}
	}()
	return cr.Run(name, ci, lb, seed)
}

// clusterHeader is the column layout of the raw cluster metric dump.
var clusterHeader = []string{"machines", "balancer", "density",
	"run", "jobs", "scheduler", "max_stretch", "sum_stretch"}

// writeClusterRows encodes one cluster instance's per-scheduler rows.
func writeClusterRows(cw *csv.Writer, r *ClusterResult, schedulers []string) error {
	for _, name := range schedulers {
		maxS, okM := r.MaxStretch[name]
		sumS, okS := r.SumStretch[name]
		if !okM && !okS {
			continue
		}
		row := []string{
			strconv.Itoa(r.Point.Machines),
			r.Point.Balancer,
			formatFloat(r.Point.Density),
			strconv.Itoa(r.Run),
			strconv.Itoa(r.Jobs),
			name,
			formatFloat(maxS),
			formatFloat(sumS),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// encodeClusterShard encodes one completed shard's rows (header-less).
func encodeClusterShard(w io.Writer, shard []ClusterResult, schedulers []string) error {
	cw := csv.NewWriter(w)
	for i := range shard {
		if err := writeClusterRows(cw, &shard[i], schedulers); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteClusterCSV dumps raw per-instance cluster metrics (one row per
// scheduler per instance).
func WriteClusterCSV(w io.Writer, results []ClusterResult, schedulers []string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(clusterHeader); err != nil {
		return err
	}
	for i := range results {
		if err := writeClusterRows(cw, &results[i], schedulers); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RunClusterCSV runs the cluster grid and streams the raw metrics to w via
// the same in-order shard flush as RunGridCSV: output bytes are identical
// for any worker count.
func RunClusterCSV(w io.Writer, points []ClusterPoint, opts ClusterOptions) ([]ClusterResult, error) {
	opts = opts.withDefaults()
	stream, err := newCSVStream(w, clusterHeader)
	if err != nil {
		return nil, err
	}
	results := runClusterSharded(points, opts, func(si int, shard []ClusterResult) {
		if stream.failed() {
			return
		}
		var buf bytes.Buffer
		if err := encodeClusterShard(&buf, shard, opts.Schedulers); err != nil {
			stream.fail(fmt.Errorf("exp: encoding cluster shard %d: %w", si, err))
			return
		}
		stream.add(si, buf.Bytes())
	})
	return results, stream.err()
}

// ReadClusterCSV parses a raw cluster metric dump (or concatenated
// per-shard dumps) back into ClusterResults, grouping the per-scheduler
// rows of one instance by (point, run).
func ReadClusterCSV(r io.Reader) ([]ClusterResult, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("exp: cluster CSV header: %w", err)
	}
	if len(header) != len(clusterHeader) {
		return nil, fmt.Errorf("exp: cluster CSV header has %d columns, want %d",
			len(header), len(clusterHeader))
	}
	for i, name := range clusterHeader {
		if header[i] != name {
			return nil, fmt.Errorf("exp: cluster CSV column %d is %q, want %q", i, header[i], name)
		}
	}
	type instKey struct {
		point ClusterPoint
		run   int
	}
	var results []ClusterResult
	index := map[instKey]int{}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return results, nil
		}
		if err != nil {
			return nil, fmt.Errorf("exp: cluster CSV line %d: %w", line, err)
		}
		bad := func(col string, err error) error {
			return fmt.Errorf("exp: cluster CSV line %d: bad %s: %w", line, col, err)
		}
		machines, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, bad("machines", err)
		}
		density, err := parseFloat(row[2])
		if err != nil {
			return nil, bad("density", err)
		}
		run, err := strconv.Atoi(row[3])
		if err != nil {
			return nil, bad("run", err)
		}
		jobs, err := strconv.Atoi(row[4])
		if err != nil {
			return nil, bad("jobs", err)
		}
		maxS, err := parseFloat(row[6])
		if err != nil {
			return nil, bad("max_stretch", err)
		}
		sumS, err := parseFloat(row[7])
		if err != nil {
			return nil, bad("sum_stretch", err)
		}
		key := instKey{ClusterPoint{machines, row[1], density}, run}
		ri, ok := index[key]
		if !ok {
			ri = len(results)
			index[key] = ri
			results = append(results, ClusterResult{
				Point:      key.point,
				Run:        run,
				Jobs:       jobs,
				MaxStretch: map[string]float64{},
				SumStretch: map[string]float64{},
			})
		}
		results[ri].MaxStretch[row[5]] = maxS
		results[ri].SumStretch[row[5]] = sumS
	}
}

// clusterPointKey is the digest line key: the point's CSV coordinates.
func clusterPointKey(p ClusterPoint) string {
	return fmt.Sprintf("%d,%s,%s", p.Machines, p.Balancer, formatFloat(p.Density))
}

// ClusterPointDigests returns one "machines,balancer,density fnv64a" line
// per cluster point present in results, sorted, each digesting the point's
// CSV rows exactly as WriteClusterCSV encodes them — the cluster family's
// merge-integrity check, mirroring PointDigests.
func ClusterPointDigests(results []ClusterResult, schedulers []string) ([]string, error) {
	return digestLines(len(results),
		func(i int) string { return clusterPointKey(results[i].Point) },
		func(i int, cw *csv.Writer) error { return writeClusterRows(cw, &results[i], schedulers) })
}

// WriteClusterPointDigests writes ClusterPointDigests lines to w.
func WriteClusterPointDigests(w io.Writer, results []ClusterResult, schedulers []string) error {
	lines, err := ClusterPointDigests(results, schedulers)
	if err != nil {
		return err
	}
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// AggregateCluster normalises each instance's metrics by the best local
// policy on that instance and aggregates the ratios over instances whose
// point passes the filter (nil = all), in the given scheduler order — the
// cluster analogue of Aggregate, reusing the paper tables' Row shape.
func AggregateCluster(results []ClusterResult, filter func(ClusterPoint) bool, schedulers []string) []Row {
	maxAgg := map[string]*stats.Agg{}
	sumAgg := map[string]*stats.Agg{}
	for _, name := range schedulers {
		maxAgg[name] = &stats.Agg{}
		sumAgg[name] = &stats.Agg{}
	}
	for _, res := range results {
		if filter != nil && !filter(res.Point) {
			continue
		}
		if res.Jobs == 0 {
			continue
		}
		maxRatio := stats.RatiosToBest(res.MaxStretch)
		sumRatio := stats.RatiosToBest(res.SumStretch)
		for _, name := range schedulers {
			if r, ok := maxRatio[name]; ok && !math.IsNaN(r) {
				maxAgg[name].Add(r)
			}
			if r, ok := sumRatio[name]; ok && !math.IsNaN(r) {
				sumAgg[name].Add(r)
			}
		}
	}
	rows := make([]Row, 0, len(schedulers))
	for _, name := range schedulers {
		rows = append(rows, Row{
			Scheduler: name,
			N:         maxAgg[name].N(),
			MaxMean:   maxAgg[name].Mean(),
			MaxSD:     maxAgg[name].SD(),
			MaxMax:    maxAgg[name].Max(),
			SumMean:   sumAgg[name].Mean(),
			SumSD:     sumAgg[name].SD(),
			SumMax:    sumAgg[name].Max(),
		})
	}
	return rows
}

// clusterCombos returns the distinct (machines, balancer) combinations of
// points, in first-appearance order.
func clusterCombos(points []ClusterPoint) []ClusterPoint {
	var combos []ClusterPoint
	for _, p := range points {
		dup := false
		for _, c := range combos {
			if c.Machines == p.Machines && c.Balancer == p.Balancer {
				dup = true
				break
			}
		}
		if !dup {
			combos = append(combos, ClusterPoint{Machines: p.Machines, Balancer: p.Balancer})
		}
	}
	return combos
}

// RenderClusterTables renders the full cluster family report: the
// single-vs-parallel summary matrix (mean sum-stretch ratio-to-best per
// policy per machines/balancer combination — the Srivastav–Trystram
// comparison) followed by one paper-style table per combination.
func RenderClusterTables(results []ClusterResult, schedulers []string) string {
	combos := clusterCombos(clusterResultPoints(results))
	var b strings.Builder
	b.WriteString(renderClusterMatrix(results, combos, schedulers))
	b.WriteString("\n")
	for _, c := range combos {
		mc, bc := c.Machines, c.Balancer
		rows := AggregateCluster(results, func(p ClusterPoint) bool {
			return p.Machines == mc && p.Balancer == bc
		}, schedulers)
		title := fmt.Sprintf("Cluster: %d machine(s), balancer %s — ratio to best local policy", mc, bc)
		b.WriteString(Render(title, rows))
		b.WriteString("\n")
	}
	return b.String()
}

// clusterResultPoints lists each result's point, in result order.
func clusterResultPoints(results []ClusterResult) []ClusterPoint {
	pts := make([]ClusterPoint, len(results))
	for i := range results {
		pts[i] = results[i].Point
	}
	return pts
}

// renderClusterMatrix is the headline single-vs-parallel view: one row per
// local policy, one column per (machines, balancer) combination, cells the
// mean sum-stretch ratio-to-best over that combination's instances.
func renderClusterMatrix(results []ClusterResult, combos []ClusterPoint, schedulers []string) string {
	var b strings.Builder
	b.WriteString("Single vs parallel machines: mean sum-stretch (ratio to best local policy)\n")
	fmt.Fprintf(&b, "%-14s |", "")
	for _, c := range combos {
		fmt.Fprintf(&b, " %14s |", fmt.Sprintf("m=%d/%s", c.Machines, c.Balancer))
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 14+1+len(combos)*18))
	b.WriteString("\n")
	for _, name := range schedulers {
		fmt.Fprintf(&b, "%-14s |", name)
		for _, c := range combos {
			mc, bc := c.Machines, c.Balancer
			rows := AggregateCluster(results, func(p ClusterPoint) bool {
				return p.Machines == mc && p.Balancer == bc
			}, []string{name})
			cell := "-"
			if len(rows) == 1 && rows[0].N > 0 {
				cell = fmt.Sprintf("%.4f", rows[0].SumMean)
			}
			fmt.Fprintf(&b, " %14s |", cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
