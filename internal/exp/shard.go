package exp

import (
	"fmt"
	"slices"
	"sync"
)

// This file is the task-space machinery shared by every experiment family
// (the paper grid and the cluster family): fixed-size contiguous shards
// over a task space, a weight-ordered dispatch queue, a generic worker
// pool with per-worker state, and point-interleaved slicing for CI
// matrices. Results must derive from task coordinates alone, so worker
// count and dispatch order can never change output bytes.

// shardSize is the number of tasks per worker shard: small enough to
// balance load across heterogeneous points, large enough that channel
// traffic and per-shard bookkeeping are negligible.
const shardSize = 8

// numShards returns the shard count covering total tasks.
func numShards(total int) int { return (total + shardSize - 1) / shardSize }

// shardRange returns shard si's task range [lo, hi).
func shardRange(si, total int) (lo, hi int) {
	lo = si * shardSize
	hi = lo + shardSize
	if hi > total {
		hi = total
	}
	return lo, hi
}

// orderByWeight returns indices sorted largest weight first, ties broken by
// index — the deterministic dispatch order that starts heavy shards while
// every worker still has queue ahead of it.
func orderByWeight(weight []float64) []int {
	order := make([]int, len(weight))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		switch {
		case weight[a] > weight[b]:
			return -1
		case weight[a] < weight[b]:
			return 1
		default:
			return a - b // stable, deterministic dispatch for equal weights
		}
	})
	return order
}

// shardWeights sums a per-task weight over each shard.
func shardWeights(total int, taskWeight func(ti int) float64) []float64 {
	weight := make([]float64, numShards(total))
	for si := range weight {
		lo, hi := shardRange(si, total)
		for ti := lo; ti < hi; ti++ {
			weight[si] += taskWeight(ti)
		}
	}
	return weight
}

// runSharded is the generic worker-pool core: tasks 0..total-1 are grouped
// into contiguous shards dispatched in the given order; workers pull shard
// indices from a channel, each owning one W (a core.Runner, a cluster
// runner) built by newWorker, so simulation buffers are reused across a
// worker's whole share. onShard, when non-nil, is invoked by the finishing
// worker with each completed shard's index and task range; shards finish in
// arbitrary order and calls may be concurrent, so consumers that need task
// order must reorder by index (as the CSV streamers do). progress calls are
// serialised and counted under one lock, so (total, total) is always last.
func runSharded[W any](total, workers int, newWorker func() W, order []int,
	run func(wk W, ti int), onShard func(si, lo, hi int), progress func(done, total int)) {
	shards := make(chan int)
	done := 0
	var progressMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk := newWorker()
			for si := range shards {
				lo, hi := shardRange(si, total)
				for ti := lo; ti < hi; ti++ {
					run(wk, ti)
					if progress != nil {
						progressMu.Lock()
						done++
						progress(done, total)
						progressMu.Unlock()
					}
				}
				if onShard != nil {
					onShard(si, lo, hi)
				}
			}
		}()
	}
	for _, si := range order {
		shards <- si
	}
	close(shards)
	wg.Wait()
}

// ShardPoints cuts a point slice into the k-th of n interleaved shards —
// points[k], points[k+n], points[k+2n], … — returning the shard and the
// global indices to pass as the options' PointIndices, so every shard
// derives the same instance seeds it would in an unsharded run.
// Interleaving (rather than contiguous ranges) spreads an expensive tail
// across all shards, keeping a CI matrix balanced. It panics unless
// 0 ≤ k < n.
func ShardPoints[P any](points []P, k, n int) ([]P, []int) {
	if n <= 0 || k < 0 || k >= n {
		panic(fmt.Sprintf("exp: shard %d/%d out of range", k, n))
	}
	var shard []P
	var indices []int
	for i := k; i < len(points); i += n {
		shard = append(shard, points[i])
		indices = append(indices, i)
	}
	return shard, indices
}
