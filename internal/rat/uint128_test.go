package rat

import (
	"math/big"
	"math/rand"
	"testing"
)

// bigOf128 and bigOf192 materialise fixed-width values for the oracle.
func bigOf128(x u128) *big.Int {
	b := new(big.Int).SetUint64(x.hi)
	b.Lsh(b, 64)
	return b.Or(b, new(big.Int).SetUint64(x.lo))
}

func bigOf192(x u192) *big.Int {
	b := new(big.Int).SetUint64(x.w2)
	b.Lsh(b, 64)
	b.Or(b, new(big.Int).SetUint64(x.w1))
	b.Lsh(b, 64)
	return b.Or(b, new(big.Int).SetUint64(x.w0))
}

// randU128 draws values clustered at interesting widths: single-word,
// power-of-two-adjacent, and full-width.
func randU128(rng *rand.Rand) u128 {
	switch rng.Intn(4) {
	case 0:
		return u128From64(rng.Uint64() >> uint(rng.Intn(64)))
	case 1:
		return u128{rng.Uint64() >> uint(rng.Intn(64)), rng.Uint64()}
	case 2:
		x := shl128(one128, uint(rng.Intn(128)))
		if rng.Intn(2) == 0 && !x.isZero() {
			x = sub128(x, one128)
		}
		return x
	default:
		return u128{rng.Uint64(), rng.Uint64()}
	}
}

// TestU128ArithmeticOracle drives the 128-bit helpers against big.Int.
func TestU128ArithmeticOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mod128 := new(big.Int).Lsh(big.NewInt(1), 128)
	for i := 0; i < 50000; i++ {
		a, b := randU128(rng), randU128(rng)
		ab, bb := bigOf128(a), bigOf128(b)

		if got, want := cmp128(a, b), ab.Cmp(bb); got != want {
			t.Fatalf("cmp128(%v, %v) = %d, want %d", ab, bb, got, want)
		}
		sum, carry := add128(a, b)
		wantSum := new(big.Int).Add(ab, bb)
		wantCarry := uint64(0)
		if wantSum.BitLen() > 128 {
			wantCarry = 1
			wantSum.Sub(wantSum, mod128)
		}
		if bigOf128(sum).Cmp(wantSum) != 0 || carry != wantCarry {
			t.Fatalf("add128(%v, %v) = %v carry %d", ab, bb, bigOf128(sum), carry)
		}
		if cmp128(a, b) >= 0 {
			if got := sub128(a, b); bigOf128(got).Cmp(new(big.Int).Sub(ab, bb)) != 0 {
				t.Fatalf("sub128(%v, %v) = %v", ab, bb, bigOf128(got))
			}
		}
		hi, lo := mul128(a, b)
		wantMul := new(big.Int).Mul(ab, bb)
		gotMul := new(big.Int).Lsh(bigOf128(hi), 128)
		gotMul.Or(gotMul, bigOf128(lo))
		if gotMul.Cmp(wantMul) != 0 {
			t.Fatalf("mul128(%v, %v) = %v, want %v", ab, bb, gotMul, wantMul)
		}
		if p, ok := mul128Checked(a, b); ok != (wantMul.BitLen() <= 128) {
			t.Fatalf("mul128Checked(%v, %v) ok=%v, product %d bits", ab, bb, ok, wantMul.BitLen())
		} else if ok && bigOf128(p).Cmp(wantMul) != 0 {
			t.Fatalf("mul128Checked(%v, %v) = %v, want %v", ab, bb, bigOf128(p), wantMul)
		}
		if !b.isZero() {
			q, r := div128(a, b)
			wq, wr := new(big.Int).QuoRem(ab, bb, new(big.Int))
			if bigOf128(q).Cmp(wq) != 0 || bigOf128(r).Cmp(wr) != 0 {
				t.Fatalf("div128(%v, %v) = %v rem %v, want %v rem %v",
					ab, bb, bigOf128(q), bigOf128(r), wq, wr)
			}
		}
		if got, want := gcd128(a, b), new(big.Int).GCD(nil, nil, ab, bb); bigOf128(got).Cmp(want) != 0 {
			t.Fatalf("gcd128(%v, %v) = %v, want %v", ab, bb, bigOf128(got), want)
		}
		if s := uint(rng.Intn(128)); true {
			if got := shl128(shr128(a, s), 0); bigOf128(got).Cmp(new(big.Int).Rsh(ab, s)) != 0 {
				t.Fatalf("shr128(%v, %d) = %v", ab, s, bigOf128(got))
			}
		}
	}
}

// TestU192ArithmeticOracle drives the 192-bit intermediates — the product
// and exact-division helpers of the medium tier's fused window — against
// big.Int.
func TestU192ArithmeticOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50000; i++ {
		a, b := randU128(rng), randU128(rng)
		ab, bb := bigOf128(a), bigOf128(b)
		w := rng.Uint64() >> uint(rng.Intn(64))

		p, ok := mul128to192(a, b)
		want := new(big.Int).Mul(ab, bb)
		if ok != (want.BitLen() <= 192) {
			t.Fatalf("mul128to192(%v, %v) ok=%v, product %d bits", ab, bb, ok, want.BitLen())
		}
		if !ok {
			continue
		}
		if bigOf192(p).Cmp(want) != 0 {
			t.Fatalf("mul128to192(%v, %v) = %v, want %v", ab, bb, bigOf192(p), want)
		}

		if q, ok := mul192by64Checked(p, w); ok == (new(big.Int).Mul(want, new(big.Int).SetUint64(w)).BitLen() <= 192) {
			if ok {
				ww := new(big.Int).Mul(want, new(big.Int).SetUint64(w))
				if bigOf192(q).Cmp(ww) != 0 {
					t.Fatalf("mul192by64(%v, %d) = %v, want %v", want, w, bigOf192(q), ww)
				}
			}
		} else {
			t.Fatalf("mul192by64Checked(%v, %d): wrong overflow verdict", want, w)
		}

		if !b.isZero() {
			// gcd of a 192-bit value with a 128-bit one, then the exact
			// division by that gcd — the reduction pair of addMed/muladdMed.
			g := gcd192with128(p, b)
			wg := new(big.Int).GCD(nil, nil, want, bb)
			if bigOf128(g).Cmp(wg) != 0 {
				t.Fatalf("gcd192with128(%v, %v) = %v, want %v", want, bb, bigOf128(g), wg)
			}
			q := div192by128Exact(p, g)
			if bigOf192(q).Cmp(new(big.Int).Quo(want, wg)) != 0 {
				t.Fatalf("div192by128Exact(%v, %v) = %v", want, bigOf128(g), bigOf192(q))
			}
			// And the general exact division by any 128-bit divisor of p.
			if cmp128(b, one128) > 0 {
				prod, ok2 := mul192x128to192Checked(p, b)
				if ok2 {
					back := div192by128Exact(prod, b)
					if bigOf192(back).Cmp(want) != 0 {
						t.Fatalf("div192by128Exact(%v·%v, %v) != %v", want, bb, bb, want)
					}
				}
			}
		}
	}
}
