package rat

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestZeroValue(t *testing.T) {
	var z Rat
	if z.Sign() != 0 {
		t.Fatalf("zero value sign = %d", z.Sign())
	}
	if got := z.Add(One); !got.Equal(One) {
		t.Fatalf("0+1 = %v", got)
	}
	if got := One.Mul(z); got.Sign() != 0 {
		t.Fatalf("1*0 = %v", got)
	}
	if z.String() != "0" {
		t.Fatalf("zero String = %q", z.String())
	}
}

func TestBasicArithmetic(t *testing.T) {
	a := FromFrac(1, 3)
	b := FromFrac(1, 6)
	if got := a.Add(b); !got.Equal(FromFrac(1, 2)) {
		t.Errorf("1/3+1/6 = %v", got)
	}
	if got := a.Sub(b); !got.Equal(FromFrac(1, 6)) {
		t.Errorf("1/3-1/6 = %v", got)
	}
	if got := a.Mul(b); !got.Equal(FromFrac(1, 18)) {
		t.Errorf("1/3*1/6 = %v", got)
	}
	if got := a.Div(b); !got.Equal(FromInt(2)) {
		t.Errorf("(1/3)/(1/6) = %v", got)
	}
	if got := a.Neg().Abs(); !got.Equal(a) {
		t.Errorf("|-1/3| = %v", got)
	}
	if got := FromFrac(-2, 4); got.String() != "-1/2" {
		t.Errorf("normalisation: %v", got)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	One.Div(Zero)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Zero.Inv()
}

func TestFromFracZeroDenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromFrac(1, 0)
}

func TestFromFloatExact(t *testing.T) {
	f := 0.1 + 0.2 // the classic 0.30000000000000004
	r := FromFloat(f)
	if r.Equal(FromFrac(3, 10)) {
		t.Fatal("FromFloat should be exact, not decimal-rounded")
	}
	if got := r.Float(); got != f {
		t.Fatalf("round trip %v != %v", got, f)
	}
}

func TestFromFloatNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	nan := 0.0
	FromFloat(nan / nan)
}

func TestParse(t *testing.T) {
	r, err := Parse("22/7")
	if err != nil || !r.Equal(FromFrac(22, 7)) {
		t.Fatalf("Parse 22/7 = %v, %v", r, err)
	}
	r, err = Parse("0.25")
	if err != nil || !r.Equal(FromFrac(1, 4)) {
		t.Fatalf("Parse 0.25 = %v, %v", r, err)
	}
	if _, err = Parse("abc"); err == nil {
		t.Fatal("Parse(abc) should fail")
	}
}

func TestCompareHelpers(t *testing.T) {
	a, b := FromFrac(2, 3), FromFrac(3, 4)
	if !a.Less(b) || b.Less(a) || !a.LessEq(a) {
		t.Fatal("ordering broken")
	}
	if !Min(a, b).Equal(a) || !Max(a, b).Equal(b) {
		t.Fatal("min/max broken")
	}
	if !Min(b, a).Equal(a) || !Max(b, a).Equal(b) {
		t.Fatal("min/max not symmetric")
	}
}

func TestImmutability(t *testing.T) {
	a := FromFrac(1, 2)
	b := FromFrac(1, 3)
	_ = a.Add(b)
	_ = a.Mul(b)
	_ = a.Neg()
	if !a.Equal(FromFrac(1, 2)) || !b.Equal(FromFrac(1, 3)) {
		t.Fatal("operands were mutated")
	}
}

func TestFromBigCopies(t *testing.T) {
	src := big.NewRat(3, 7)
	r := FromBig(src)
	src.SetInt64(99)
	if !r.Equal(FromFrac(3, 7)) {
		t.Fatal("FromBig must copy its argument")
	}
	got := r.Big()
	got.SetInt64(5)
	if !r.Equal(FromFrac(3, 7)) {
		t.Fatal("Big must return a copy")
	}
}

func ratFromPair(n, d int64) Rat {
	if d == 0 {
		d = 1
	}
	return FromFrac(n, d)
}

func TestQuickFieldAxioms(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	commAdd := func(an, ad, bn, bd int64) bool {
		a, b := ratFromPair(an%1000, ad%1000), ratFromPair(bn%1000, bd%1000)
		return a.Add(b).Equal(b.Add(a))
	}
	if err := quick.Check(commAdd, cfg); err != nil {
		t.Error(err)
	}
	assocMul := func(an, ad, bn, bd, cn, cd int64) bool {
		a := ratFromPair(an%100, ad%100)
		b := ratFromPair(bn%100, bd%100)
		c := ratFromPair(cn%100, cd%100)
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)))
	}
	if err := quick.Check(assocMul, cfg); err != nil {
		t.Error(err)
	}
	distrib := func(an, ad, bn, bd, cn, cd int64) bool {
		a := ratFromPair(an%100, ad%100)
		b := ratFromPair(bn%100, bd%100)
		c := ratFromPair(cn%100, cd%100)
		return a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c)))
	}
	if err := quick.Check(distrib, cfg); err != nil {
		t.Error(err)
	}
	inverse := func(an, ad int64) bool {
		a := ratFromPair(an%1000, ad%1000)
		if a.Sign() == 0 {
			return true
		}
		return a.Mul(a.Inv()).Equal(One) && a.Add(a.Neg()).Sign() == 0
	}
	if err := quick.Check(inverse, cfg); err != nil {
		t.Error(err)
	}
}

func TestAffineEval(t *testing.T) {
	f := Line(FromInt(3), FromInt(2)) // 3 + 2x
	if got := f.Eval(FromInt(5)); !got.Equal(FromInt(13)) {
		t.Fatalf("f(5) = %v", got)
	}
	if got := f.EvalFloat(5); got != 13 {
		t.Fatalf("f(5) float = %v", got)
	}
	if !Const(One).IsConst() || f.IsConst() {
		t.Fatal("IsConst broken")
	}
}

func TestAffineAlgebra(t *testing.T) {
	f := Line(FromInt(1), FromInt(2))
	g := Line(FromInt(3), FromInt(-1))
	x := FromFrac(7, 5)
	if got := f.Add(g).Eval(x); !got.Equal(f.Eval(x).Add(g.Eval(x))) {
		t.Fatal("Add not pointwise")
	}
	if got := f.Sub(g).Eval(x); !got.Equal(f.Eval(x).Sub(g.Eval(x))) {
		t.Fatal("Sub not pointwise")
	}
	c := FromInt(4)
	if got := f.Scale(c).Eval(x); !got.Equal(c.Mul(f.Eval(x))) {
		t.Fatal("Scale not pointwise")
	}
}

func TestAffineIntersect(t *testing.T) {
	f := Line(FromInt(1), FromInt(2))
	g := Line(FromInt(7), FromInt(-1))
	x, ok := f.Intersect(g)
	if !ok || !x.Equal(FromInt(2)) {
		t.Fatalf("intersect = %v, %v", x, ok)
	}
	if !f.Eval(x).Equal(g.Eval(x)) {
		t.Fatal("intersection point not on both lines")
	}
	if _, ok := f.Intersect(Line(FromInt(5), FromInt(2))); ok {
		t.Fatal("parallel lines should not intersect uniquely")
	}
	r, ok := Line(FromInt(-6), FromInt(3)).Root()
	if !ok || !r.Equal(FromInt(2)) {
		t.Fatalf("root = %v, %v", r, ok)
	}
}

func TestQuickIntersectOnBothLines(t *testing.T) {
	prop := func(a1, b1, a2, b2 int16) bool {
		f := Line(FromInt(int64(a1)), FromInt(int64(b1)))
		g := Line(FromInt(int64(a2)), FromInt(int64(b2)))
		x, ok := f.Intersect(g)
		if !ok {
			return int64(b1) == int64(b2)
		}
		return f.Eval(x).Equal(g.Eval(x))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
