package rat

import "fmt"

// TierStats accumulates per-operation representation-tier counters: how
// many arithmetic results landed in each tier, how many operations promoted
// past every operand's tier (the overflow escapes the medium tier exists to
// absorb), and how many demoted below it (Reduce pulling values back down
// after cancellation). The counters are plain uint64s — callers that share
// a TierStats across goroutines must provide their own synchronisation; the
// intended owner is a single-threaded solver workspace (lp.Workspace).
type TierStats struct {
	// Ops counts results by tier: Ops[TierSmall], Ops[TierMedium],
	// Ops[TierBig].
	Ops [3]uint64
	// Promotions counts operations whose result tier exceeded every
	// operand's tier, indexed by the destination ([TierSmall] stays zero).
	Promotions [3]uint64
	// Demotions counts operations whose result tier dropped below every
	// operand's tier, indexed by the destination ([TierBig] stays zero).
	// With lp.RatOps these are Reduce demotions observed per fused op.
	Demotions [3]uint64
}

// Note records one operation: the result tier and the highest operand tier.
func (s *TierStats) Note(result, operands Tier) {
	s.Ops[result]++
	switch {
	case result > operands:
		s.Promotions[result]++
	case result < operands:
		s.Demotions[result]++
	}
}

// Reset zeroes every counter.
func (s *TierStats) Reset() { *s = TierStats{} }

// Total returns the number of recorded operations.
func (s *TierStats) Total() uint64 { return s.Ops[0] + s.Ops[1] + s.Ops[2] }

// String renders the counters in one line, ops then transitions.
func (s *TierStats) String() string {
	return fmt.Sprintf(
		"ops small=%d medium=%d big=%d | promote →medium=%d →big=%d | demote →medium=%d →small=%d",
		s.Ops[TierSmall], s.Ops[TierMedium], s.Ops[TierBig],
		s.Promotions[TierMedium], s.Promotions[TierBig],
		s.Demotions[TierMedium], s.Demotions[TierSmall])
}
