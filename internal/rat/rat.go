// Package rat provides immutable exact rational scalars on top of math/big,
// plus one-dimensional affine forms a + b·x used by the milestone machinery
// of the offline max-stretch solver.
//
// The paper (§5.3) reports that its offline solver is "occasionally beaten"
// by online heuristics because of floating-point precision loss when two
// epochal times nearly coincide. Exact rationals remove that failure mode,
// at a constant-factor cost; the fast float64 paths elsewhere in this
// repository fall back to this package whenever exactness matters.
package rat

import (
	"fmt"
	"math/big"
)

// Rat is an immutable rational number. The zero value is 0.
//
// Immutability is the point of the wrapper: math/big.Rat has an imperative,
// aliasing API that is easy to misuse inside solver pivots. All arithmetic
// here allocates a fresh value and never mutates operands.
type Rat struct {
	r *big.Rat // nil means zero
}

// Zero is the rational 0.
var Zero = Rat{}

// One is the rational 1.
var One = FromInt(1)

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return Rat{big.NewRat(n, 1)} }

// FromFrac returns the rational num/den. It panics if den == 0.
func FromFrac(num, den int64) Rat {
	if den == 0 {
		panic("rat: zero denominator")
	}
	return Rat{big.NewRat(num, den)}
}

// FromFloat returns the exact rational value of f.
// It panics if f is NaN or ±Inf, which have no rational representation.
func FromFloat(f float64) Rat {
	r := new(big.Rat).SetFloat64(f)
	if r == nil {
		panic(fmt.Sprintf("rat: cannot represent %v", f))
	}
	return Rat{r}
}

// FromBig returns a Rat holding a copy of r.
func FromBig(r *big.Rat) Rat { return Rat{new(big.Rat).Set(r)} }

// Parse reads a rational from a string in "a/b" or decimal notation.
func Parse(s string) (Rat, error) {
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		return Rat{}, fmt.Errorf("rat: cannot parse %q", s)
	}
	return Rat{r}, nil
}

func (a Rat) big() *big.Rat {
	if a.r == nil {
		return new(big.Rat)
	}
	return a.r
}

// Float returns the nearest float64 to a.
func (a Rat) Float() float64 {
	f, _ := a.big().Float64()
	return f
}

// Big returns a copy of a as a *big.Rat.
func (a Rat) Big() *big.Rat { return new(big.Rat).Set(a.big()) }

// Add returns a + b.
func (a Rat) Add(b Rat) Rat { return Rat{new(big.Rat).Add(a.big(), b.big())} }

// Sub returns a - b.
func (a Rat) Sub(b Rat) Rat { return Rat{new(big.Rat).Sub(a.big(), b.big())} }

// Mul returns a * b.
func (a Rat) Mul(b Rat) Rat { return Rat{new(big.Rat).Mul(a.big(), b.big())} }

// Div returns a / b. It panics if b is zero.
func (a Rat) Div(b Rat) Rat {
	if b.Sign() == 0 {
		panic("rat: division by zero")
	}
	return Rat{new(big.Rat).Quo(a.big(), b.big())}
}

// Neg returns -a.
func (a Rat) Neg() Rat { return Rat{new(big.Rat).Neg(a.big())} }

// Inv returns 1/a. It panics if a is zero.
func (a Rat) Inv() Rat {
	if a.Sign() == 0 {
		panic("rat: inverse of zero")
	}
	return Rat{new(big.Rat).Inv(a.big())}
}

// Abs returns |a|.
func (a Rat) Abs() Rat {
	if a.Sign() < 0 {
		return a.Neg()
	}
	return a
}

// Sign returns -1, 0 or +1 according to the sign of a.
func (a Rat) Sign() int { return a.big().Sign() }

// Cmp compares a and b and returns -1, 0 or +1.
func (a Rat) Cmp(b Rat) int { return a.big().Cmp(b.big()) }

// Equal reports whether a == b.
func (a Rat) Equal(b Rat) bool { return a.Cmp(b) == 0 }

// Less reports whether a < b.
func (a Rat) Less(b Rat) bool { return a.Cmp(b) < 0 }

// LessEq reports whether a <= b.
func (a Rat) LessEq(b Rat) bool { return a.Cmp(b) <= 0 }

// Min returns the smaller of a and b.
func Min(a, b Rat) Rat {
	if a.Cmp(b) <= 0 {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Rat) Rat {
	if a.Cmp(b) >= 0 {
		return a
	}
	return b
}

// String formats a in exact "a/b" notation.
func (a Rat) String() string { return a.big().RatString() }

// Affine is the one-dimensional affine form A + B·x with exact coefficients.
// Epochal times in the offline solver are affine functions of the stretch
// objective F: release dates are constants, deadlines are r_j + F·p*_j.
type Affine struct {
	A Rat // constant term
	B Rat // slope
}

// Const returns the constant affine form c.
func Const(c Rat) Affine { return Affine{A: c} }

// Line returns the affine form a + b·x.
func Line(a, b Rat) Affine { return Affine{A: a, B: b} }

// Eval returns f(x) = A + B·x.
func (f Affine) Eval(x Rat) Rat { return f.A.Add(f.B.Mul(x)) }

// EvalFloat evaluates f at a float64 point in float arithmetic.
func (f Affine) EvalFloat(x float64) float64 { return f.A.Float() + f.B.Float()*x }

// Add returns f + g.
func (f Affine) Add(g Affine) Affine { return Affine{f.A.Add(g.A), f.B.Add(g.B)} }

// Sub returns f - g.
func (f Affine) Sub(g Affine) Affine { return Affine{f.A.Sub(g.A), f.B.Sub(g.B)} }

// Scale returns c·f.
func (f Affine) Scale(c Rat) Affine { return Affine{f.A.Mul(c), f.B.Mul(c)} }

// IsConst reports whether the slope of f is zero.
func (f Affine) IsConst() bool { return f.B.Sign() == 0 }

// Intersect returns the x at which f(x) == g(x) and whether it is unique
// (parallel lines have none or infinitely many; ok is false for both).
func (f Affine) Intersect(g Affine) (x Rat, ok bool) {
	db := f.B.Sub(g.B)
	if db.Sign() == 0 {
		return Rat{}, false
	}
	return g.A.Sub(f.A).Div(db), true
}

// Root returns the x at which f(x) == 0 and whether it is unique.
func (f Affine) Root() (Rat, bool) { return f.Intersect(Affine{}) }

func (f Affine) String() string {
	return fmt.Sprintf("%s + %s·x", f.A, f.B)
}
