// Package rat provides immutable exact rational scalars, plus
// one-dimensional affine forms a + b·x used by the milestone machinery of
// the offline max-stretch solver.
//
// The paper (§5.3) reports that its offline solver is "occasionally beaten"
// by online heuristics because of floating-point precision loss when two
// epochal times nearly coincide. Exact rationals remove that failure mode,
// at a constant-factor cost; the fast float64 paths elsewhere in this
// repository fall back to this package whenever exactness matters.
//
// # Representation
//
// A Rat is stored in one of three forms. The small form is an inline
// int64 numerator/denominator pair: all arithmetic on it is a handful of
// machine operations (binary GCD, 128-bit overflow checks via bits.Mul64)
// and allocates nothing. When a result no longer fits — numerator or
// denominator magnitude above MaxInt64 — the operation promotes to the
// medium form: inline unsigned 128-bit num/den magnitudes with an explicit
// sign, whose arithmetic runs on bits.Mul64/bits.Add64 chains with 192-bit
// intermediates (see medium.go) and still allocates nothing. Only when a
// reduced result exceeds 128 bits does the operation escape to the big
// form, a *math/big.Rat. Operations involving a big operand stay big, and
// medium results stay medium even when they shrink back into int64 range:
// the package never demotes behind the caller's back. Reduce demotes an
// escaped value down the ladder (big → medium → small) as far as it fits;
// hot loops that want to stay in the fixed-width regime (the exact LP
// backend, see lp.RatOps) apply it after each operation.
package rat

import (
	"fmt"
	"math"
	"math/big"
	"math/bits"
	"strconv"
)

// Rat is an immutable rational number. The zero value is 0.
//
// Immutability is the point of the wrapper: math/big.Rat has an imperative,
// aliasing API that is easy to misuse inside solver pivots. All arithmetic
// here returns a fresh value and never mutates operands, which also makes
// it safe for two Rats to share an escaped *big.Rat.
type Rat struct {
	// Small form (r == nil, !med): the value num/den with den > 0,
	// gcd(|num|, den) == 1 and |num|, den ≤ MaxInt64 — MinInt64 is kept out
	// of both fields so negation can never overflow. The zero value
	// (num == 0, den == 0) is the canonical 0.
	//
	// Medium form (r == nil, med): the value ±n/d with unsigned 128-bit
	// magnitudes n = nhi·2^64 + uint64(num), d = dhi·2^64 + uint64(den)
	// (the small form's fields double as the low words), d > 0,
	// gcd(n, d) == 1, and the sign in neg. Zero is never medium.
	num, den int64
	nhi, dhi uint64
	// Big form (r != nil): all other fields are meaningless. The pointed-to
	// value is never mutated, so ops may return an operand's pointer
	// unchanged.
	r   *big.Rat
	med bool
	neg bool
}

// Zero is the rational 0.
var Zero = Rat{}

// One is the rational 1.
var One = FromInt(1)

// small builds a small-form Rat from a reduced num/den pair with den > 0,
// canonicalising zero.
func small(num, den int64) Rat {
	if num == 0 {
		return Rat{}
	}
	return Rat{num: num, den: den}
}

// normSmall reduces num/den (den > 0) by their GCD and canonicalises.
func normSmall(num, den int64) Rat {
	if num == 0 {
		return Rat{}
	}
	if g := int64(gcd64(absU(num), uint64(den))); g > 1 {
		num, den = num/g, den/g
	}
	return Rat{num: num, den: den}
}

// nd returns the small-form numerator and denominator, mapping the zero
// value to 0/1. Only valid in the small form (r == nil, !med).
func (a Rat) nd() (num, den int64) {
	if a.den == 0 {
		return 0, 1
	}
	return a.num, a.den
}

// absU is |n| as a uint64 (correct for MinInt64, which the small form
// nevertheless never holds).
func absU(n int64) uint64 {
	if n < 0 {
		return uint64(-n)
	}
	return uint64(n)
}

// gcd64 is the binary GCD of a and b; gcd64(0, b) = b.
func gcd64(a, b uint64) uint64 {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	if a == 1 || b == 1 {
		// Unit operands are everywhere in simplex data (integer values have
		// den == 1, tableaus are 0/±1-heavy); without this exit the binary
		// loop grinds a unit down one subtract-and-shift at a time.
		return 1
	}
	k := bits.TrailingZeros64(a | b)
	a >>= bits.TrailingZeros64(a)
	for {
		b >>= bits.TrailingZeros64(b)
		if a > b {
			a, b = b, a
		}
		b -= a
		if b == 0 {
			return a << k
		}
	}
}

// mul64 returns a·b, reporting overflow past ±MaxInt64 (MinInt64 counts as
// overflow so the small form stays negation-safe).
func mul64(a, b int64) (int64, bool) {
	hi, lo := bits.Mul64(absU(a), absU(b))
	if hi != 0 || lo > math.MaxInt64 {
		return 0, true
	}
	if (a < 0) != (b < 0) {
		return -int64(lo), false
	}
	return int64(lo), false
}

// add64 returns a+b, reporting overflow (MinInt64 counts as overflow).
func add64(a, b int64) (int64, bool) {
	s := a + b
	if ((a^s)&(b^s)) < 0 || s == math.MinInt64 {
		return 0, true
	}
	return s, false
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat {
	if n == math.MinInt64 {
		return mkMed(true, u128From64(1<<63), one128)
	}
	return small(n, 1)
}

// FromFrac returns the rational num/den. It panics if den == 0.
func FromFrac(num, den int64) Rat {
	if den == 0 {
		panic("rat: zero denominator")
	}
	if num == math.MinInt64 || den == math.MinInt64 {
		// Constructors demote when the reduced value fits (e.g. MinInt64/2).
		return Rat{r: big.NewRat(num, den)}.Reduce()
	}
	if den < 0 {
		num, den = -num, -den
	}
	return normSmall(num, den)
}

// FromFloat returns the exact rational value of f.
// It panics if f is NaN or ±Inf, which have no rational representation.
func FromFloat(f float64) Rat {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		panic(fmt.Sprintf("rat: cannot represent %v", f))
	}
	if f == 0 {
		return Rat{}
	}
	// f = m·2^e exactly, with m odd after stripping trailing zero bits.
	frac, exp := math.Frexp(f)
	m := int64(frac * (1 << 53))
	e := exp - 53
	if tz := bits.TrailingZeros64(absU(m)); tz > 0 {
		m >>= tz
		e += tz
	}
	if e >= 0 {
		if e+bits.Len64(absU(m)) <= 63 {
			return small(m<<e, 1)
		}
		if e+bits.Len64(absU(m)) <= 128 {
			return mkMed(m < 0, shl128(u128From64(absU(m)), uint(e)), one128)
		}
	} else if -e <= 62 {
		// m is odd, so m / 2^-e is already reduced.
		return small(m, int64(1)<<-e)
	} else if -e <= 127 {
		return mkMed(m < 0, u128From64(absU(m)), shl128(one128, uint(-e)))
	}
	// Magnitude or precision beyond the fixed-width forms: escape.
	r := new(big.Rat).SetFloat64(f)
	if r == nil {
		panic(fmt.Sprintf("rat: cannot represent %v", f))
	}
	return Rat{r: r}
}

// FromBig returns a Rat holding the value of r (copied, then demoted to the
// small form if it fits).
func FromBig(r *big.Rat) Rat { return Rat{r: new(big.Rat).Set(r)}.Reduce() }

// Parse reads a rational from a string in "a/b" or decimal notation.
func Parse(s string) (Rat, error) {
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		return Rat{}, fmt.Errorf("rat: cannot parse %q", s)
	}
	return Rat{r: r}.Reduce(), nil
}

// IsSmall reports whether a is held in the inline int64 form. Arithmetic on
// small operands allocates nothing unless the result overflows.
func (a Rat) IsSmall() bool { return a.r == nil && !a.med }

// isSmall, isMed and isBig are the internal form predicates; exactly one
// holds for any Rat.
func (a Rat) isSmall() bool { return a.r == nil && !a.med }
func (a Rat) isMed() bool   { return a.med }
func (a Rat) isBig() bool   { return a.r != nil }

// Tier identifies which of the three representations holds a value.
type Tier uint8

const (
	// TierSmall is the inline int64 num/den form.
	TierSmall Tier = iota
	// TierMedium is the inline 128-bit num/den form.
	TierMedium
	// TierBig is the escaped *math/big.Rat form.
	TierBig
)

func (t Tier) String() string {
	switch t {
	case TierSmall:
		return "small"
	case TierMedium:
		return "medium"
	}
	return "big"
}

// Tier returns the representation currently holding a.
func (a Rat) Tier() Tier {
	switch {
	case a.r != nil:
		return TierBig
	case a.med:
		return TierMedium
	}
	return TierSmall
}

// Reduce returns a demoted down the representation ladder as far as its
// value fits: big values whose num/den magnitudes fit 128 bits become
// medium (or small when they fit int64), and medium values whose
// magnitudes fit int64 become small. Arithmetic never demotes on its own —
// once a value promotes it stays there — so long-running exact computations
// call Reduce at natural boundaries (the LP backend applies it after every
// operation) to return to the fastest regime that holds the value.
func (a Rat) Reduce() Rat {
	if a.med {
		if a.nhi == 0 && a.dhi == 0 &&
			uint64(a.num) <= math.MaxInt64 && uint64(a.den) <= math.MaxInt64 {
			n := a.num // low word; medium invariants give gcd == 1, den > 0
			if a.neg {
				n = -n
			}
			return small(n, a.den)
		}
		return a
	}
	if a.r == nil {
		return a
	}
	num, den := a.r.Num(), a.r.Denom()
	if num.IsInt64() && den.IsInt64() {
		n, d := num.Int64(), den.Int64()
		if n != math.MinInt64 && d != math.MinInt64 {
			// big.Rat keeps gcd(|n|, d) == 1 and d > 0.
			return small(n, d)
		}
	}
	if num.BitLen() <= 128 && den.BitLen() <= 128 {
		// big.Rat keeps the pair reduced with den > 0, so the magnitudes
		// can be lifted into the medium form directly.
		return mkMed(num.Sign() < 0, u128FromBigAbs(num), u128FromBigAbs(den))
	}
	return a
}

// u128FromBigAbs returns |x| as a u128; callers check BitLen() <= 128.
func u128FromBigAbs(x *big.Int) u128 {
	var v u128
	for i, w := range x.Bits() {
		v = or128(v, shl128(u128From64(uint64(w)), uint(i)*uint(bits.UintSize)))
	}
	return v
}

// setBig128 sets dst to the (nonnegative) value of x. The limb slice must
// be freshly allocated: dst may share storage with math/big internals (a
// fresh Rat's Denom aliases the package-global 1), so appending into
// dst.Bits() would corrupt them.
func setBig128(dst *big.Int, x u128) {
	var w []big.Word
	if bits.UintSize == 64 {
		w = []big.Word{big.Word(x.lo), big.Word(x.hi)}
	} else {
		w = []big.Word{big.Word(x.lo), big.Word(x.lo >> 32), big.Word(x.hi), big.Word(x.hi >> 32)}
	}
	dst.SetBits(w) // SetBits normalises away leading zero words
}

// bigRef materialises a as a *big.Rat, allocating only for small and medium
// values. Callers must not mutate the result when a is big.
func (a Rat) bigRef() *big.Rat {
	if a.r != nil {
		return a.r
	}
	if a.med {
		// The magnitudes are already reduced with d > 0, so the big.Rat can
		// be assembled through Num/Denom directly — SetFrac would re-run a
		// two-word GCD for nothing. SetInt64 first: Denom on an
		// uninitialized Rat returns a detached Int, not a reference.
		m := a.med128()
		br := new(big.Rat).SetInt64(1)
		setBig128(br.Num(), m.n)
		setBig128(br.Denom(), m.d)
		if a.neg {
			br.Neg(br)
		}
		return br
	}
	n, d := a.nd()
	return big.NewRat(n, d)
}

// Float returns the nearest float64 to a.
func (a Rat) Float() float64 {
	if a.r != nil {
		f, _ := a.r.Float64()
		return f
	}
	if a.med {
		m := a.med128()
		if m.n.isZero() {
			return 0
		}
		f := divFloat128(m.n, m.d)
		if m.neg {
			f = -f
		}
		return f
	}
	n, d := a.nd()
	if n == 0 {
		return 0
	}
	if d == 1 {
		return float64(n) // int64→float64 conversion rounds correctly
	}
	// When both operands convert exactly, IEEE division rounds correctly.
	const exact = int64(1) << 53
	if n > -exact && n < exact && d < exact {
		return float64(n) / float64(d)
	}
	f := divFloat128(u128From64(absU(n)), u128From64(uint64(d)))
	if n < 0 {
		f = -f
	}
	return f
}

// Big returns a copy of a as a *big.Rat.
func (a Rat) Big() *big.Rat { return new(big.Rat).Set(a.bigRef()) }

// addSmall computes a + sign·b on small operands; ok is false on overflow
// (sign is ±1, so sign·b cannot itself overflow).
//
//stretch:noalloc
func addSmall(a, b Rat, sign int64) (Rat, bool) {
	an, ad := a.nd()
	bn, bd := b.nd()
	bn *= sign
	if an == 0 {
		return small(bn, bd), true
	}
	if bn == 0 {
		return small(an, ad), true
	}
	// a/b + c/d = (a·(d/g) + c·(b/g)) / (b·(d/g)) with g = gcd(b, d).
	g := int64(gcd64(uint64(ad), uint64(bd)))
	ad2, bd2 := ad/g, bd/g
	p1, ov1 := mul64(an, bd2)
	p2, ov2 := mul64(bn, ad2)
	num, ov3 := add64(p1, p2)
	den, ov4 := mul64(ad, bd2)
	if ov1 || ov2 || ov3 || ov4 {
		return Rat{}, false
	}
	// num can still share a factor of g with den.
	return normSmall(num, den), true
}

// mulSmall computes a·b on small operands; ok is false on overflow.
//
//stretch:noalloc
func mulSmall(a, b Rat) (Rat, bool) {
	an, ad := a.nd()
	bn, bd := b.nd()
	if an == 0 || bn == 0 {
		return Rat{}, true
	}
	// Cross-reduce first so the products are as small as possible; the
	// result is then already in lowest terms.
	g1 := int64(gcd64(absU(an), uint64(bd)))
	g2 := int64(gcd64(absU(bn), uint64(ad)))
	num, ov1 := mul64(an/g1, bn/g2)
	den, ov2 := mul64(ad/g2, bd/g1)
	if ov1 || ov2 {
		return Rat{}, false
	}
	return Rat{num: num, den: den}, true
}

// invSmall returns 1/b for a small nonzero b.
//
//stretch:noalloc
func invSmall(b Rat) Rat {
	bn, bd := b.nd()
	if bn < 0 {
		return Rat{num: -bd, den: -bn}
	}
	return Rat{num: bd, den: bn}
}

// Add returns a + b.
//
//stretch:noalloc
func (a Rat) Add(b Rat) Rat {
	if a.isSmall() && b.isSmall() {
		if r, ok := addSmall(a, b, 1); ok {
			return r
		}
	}
	if !a.isBig() && !b.isBig() {
		// Small-form overflow or medium operands: the medium lane.
		if m, ok := addMed(a.med128(), b.med128()); ok {
			return m.rat()
		}
	}
	if a.isSmall() && a.den == 0 {
		return b
	}
	if b.isSmall() && b.den == 0 {
		return a
	}
	return Rat{r: new(big.Rat).Add(a.bigRef(), b.bigRef())} //stretch:alloc-ok — escape to big
}

// Sub returns a - b.
//
//stretch:noalloc
func (a Rat) Sub(b Rat) Rat {
	if a.isSmall() && b.isSmall() {
		if r, ok := addSmall(a, b, -1); ok {
			return r
		}
	}
	if !a.isBig() && !b.isBig() {
		if m, ok := addMed(a.med128(), negMed(b.med128())); ok {
			return m.rat()
		}
	}
	if b.isSmall() && b.den == 0 {
		return a
	}
	if a.isSmall() && a.den == 0 {
		return b.Neg()
	}
	return Rat{r: new(big.Rat).Sub(a.bigRef(), b.bigRef())} //stretch:alloc-ok — escape to big
}

// Mul returns a * b.
//
//stretch:noalloc
func (a Rat) Mul(b Rat) Rat {
	if a.isSmall() && b.isSmall() {
		if r, ok := mulSmall(a, b); ok {
			return r
		}
	}
	if !a.isBig() && !b.isBig() {
		if m, ok := mulMed(a.med128(), b.med128()); ok {
			return m.rat()
		}
	}
	// Annihilator and unit shortcuts keep the mixed path allocation-free
	// on the 0/±1 entries that dominate simplex tableaus.
	if a.isSmall() {
		switch {
		case a.den == 0:
			return Rat{}
		case a.num == 1 && a.den == 1:
			return b
		case a.num == -1 && a.den == 1:
			return b.Neg()
		}
	}
	if b.isSmall() {
		switch {
		case b.den == 0:
			return Rat{}
		case b.num == 1 && b.den == 1:
			return a
		case b.num == -1 && b.den == 1:
			return a.Neg()
		}
	}
	return Rat{r: new(big.Rat).Mul(a.bigRef(), b.bigRef())} //stretch:alloc-ok — escape to big
}

// Div returns a / b. It panics if b is zero.
//
//stretch:noalloc
func (a Rat) Div(b Rat) Rat {
	if b.Sign() == 0 {
		panic("rat: division by zero")
	}
	if b.isSmall() {
		if a.isSmall() {
			if r, ok := mulSmall(a, invSmall(b)); ok {
				return r
			}
		}
		if b.num == 1 && b.den == 1 {
			return a
		}
		if b.num == -1 && b.den == 1 {
			return a.Neg()
		}
	}
	if !a.isBig() && !b.isBig() {
		if m, ok := mulMed(a.med128(), invMed(b.med128())); ok {
			return m.rat()
		}
	}
	if a.isSmall() && a.den == 0 {
		return Rat{}
	}
	return Rat{r: new(big.Rat).Quo(a.bigRef(), b.bigRef())} //stretch:alloc-ok — escape to big
}

// MulAdd returns a + b·c as one fused operation. The point over
// a.Add(b.Mul(c)) is escape behaviour, not value: the product and the sum
// are attempted in the int64 small form together, then in the 128-bit
// medium form, and only when both fail is the whole expression evaluated in
// math/big once and demoted once — so a b·c whose intermediate would escape
// but whose final value fits a fixed-width form still comes back inline,
// and whenever the final value fits int64 it comes back small. It is the
// accumulate primitive of the revised-simplex eta updates (see
// lp.Ops.MulAdd), which are long chains of exactly this shape.
//
//stretch:noalloc
func MulAdd(a, b, c Rat) Rat {
	// The all-small lane runs first, before any Sign dispatch: it is the
	// statistically dominant case in the solver loops, and mulSmall/addSmall
	// already handle zero operands exactly.
	if a.isSmall() && b.isSmall() && c.isSmall() {
		if p, ok := mulSmall(b, c); ok {
			if s, ok := addSmall(a, p, 1); ok {
				return s
			}
		}
	}
	// Annihilator shortcuts next: they keep the mixed small/big path free
	// of big temporaries on the 0-heavy vectors of sparse solvers.
	if b.Sign() == 0 || c.Sign() == 0 {
		return a
	}
	if a.Sign() == 0 {
		return b.Mul(c).Reduce()
	}
	if !a.isBig() && !b.isBig() && !c.isBig() {
		// Medium-precision fusion with the product carried in 192-bit
		// intermediates, so only the final value needs to fit 128 bits.
		// Unlike the plain ops, the fused result is demoted to the lowest
		// tier that fits — that is its contract.
		if s, ok := muladdMed(a.med128(), b.med128(), c.med128()); ok {
			return s.rat().Reduce()
		}
	}
	prod := new(big.Rat).Mul(b.bigRef(), c.bigRef()) //stretch:alloc-ok — escape to big
	return Rat{r: prod.Add(prod, a.bigRef())}.Reduce()
}

// MulSub returns a - b·c with MulAdd's fused escape behaviour. Negating b
// is a sign flip in the small and medium forms, so the fusion is free
// there; a big b pays one extra big.Rat, on a path that allocates anyway.
func MulSub(a, b, c Rat) Rat { return MulAdd(a, b.Neg(), c) }

// Neg returns -a.
//
//stretch:noalloc
func (a Rat) Neg() Rat {
	if a.med {
		return mkMed(!a.neg, u128{a.nhi, uint64(a.num)}, u128{a.dhi, uint64(a.den)})
	}
	if a.r == nil {
		return small(-a.num, a.den)
	}
	return Rat{r: new(big.Rat).Neg(a.r)} //stretch:alloc-ok — escape to big
}

// Inv returns 1/a. It panics if a is zero.
//
//stretch:noalloc
func (a Rat) Inv() Rat {
	if a.Sign() == 0 {
		panic("rat: inverse of zero")
	}
	if a.med {
		return invMed(a.med128()).rat()
	}
	if a.r == nil {
		return invSmall(a)
	}
	return Rat{r: new(big.Rat).Inv(a.r)} //stretch:alloc-ok — escape to big
}

// Abs returns |a|.
//
//stretch:noalloc
func (a Rat) Abs() Rat {
	if a.Sign() < 0 {
		return a.Neg()
	}
	return a
}

// Sign returns -1, 0 or +1 according to the sign of a.
//
//stretch:noalloc
func (a Rat) Sign() int {
	if a.r != nil {
		return a.r.Sign()
	}
	if a.med {
		// Medium values are never zero.
		if a.neg {
			return -1
		}
		return 1
	}
	switch {
	case a.num > 0:
		return 1
	case a.num < 0:
		return -1
	}
	return 0
}

// Cmp compares a and b and returns -1, 0 or +1.
//
//stretch:noalloc
func (a Rat) Cmp(b Rat) int {
	if a.med || b.med {
		if !a.isBig() && !b.isBig() {
			return cmpMed(a.med128(), b.med128())
		}
		return a.bigRef().Cmp(b.bigRef())
	}
	if a.r == nil && b.r == nil {
		sa, sb := a.Sign(), b.Sign()
		switch {
		case sa != sb:
			if sa < sb {
				return -1
			}
			return 1
		case sa == 0:
			return 0
		}
		// Same nonzero sign: compare |an|·bd against |bn|·ad in 128 bits,
		// flipping the answer for negatives.
		an, ad := a.nd()
		bn, bd := b.nd()
		h1, l1 := bits.Mul64(absU(an), uint64(bd))
		h2, l2 := bits.Mul64(absU(bn), uint64(ad))
		c := 0
		switch {
		case h1 != h2:
			if h1 < h2 {
				c = -1
			} else {
				c = 1
			}
		case l1 != l2:
			if l1 < l2 {
				c = -1
			} else {
				c = 1
			}
		}
		if sa < 0 {
			c = -c
		}
		return c
	}
	return a.bigRef().Cmp(b.bigRef())
}

// Equal reports whether a == b.
func (a Rat) Equal(b Rat) bool { return a.Cmp(b) == 0 }

// Less reports whether a < b.
func (a Rat) Less(b Rat) bool { return a.Cmp(b) < 0 }

// LessEq reports whether a <= b.
func (a Rat) LessEq(b Rat) bool { return a.Cmp(b) <= 0 }

// Min returns the smaller of a and b.
//
//stretch:noalloc
func Min(a, b Rat) Rat {
	if a.Cmp(b) <= 0 {
		return a
	}
	return b
}

// Max returns the larger of a and b.
//
//stretch:noalloc
func Max(a, b Rat) Rat {
	if a.Cmp(b) >= 0 {
		return a
	}
	return b
}

// String formats a in exact "a/b" notation.
func (a Rat) String() string {
	if a.r != nil || a.med {
		return a.bigRef().RatString()
	}
	n, d := a.nd()
	if d == 1 {
		return strconv.FormatInt(n, 10)
	}
	return strconv.FormatInt(n, 10) + "/" + strconv.FormatInt(d, 10)
}

// Affine is the one-dimensional affine form A + B·x with exact coefficients.
// Epochal times in the offline solver are affine functions of the stretch
// objective F: release dates are constants, deadlines are r_j + F·p*_j.
type Affine struct {
	A Rat // constant term
	B Rat // slope
}

// Const returns the constant affine form c.
func Const(c Rat) Affine { return Affine{A: c} }

// Line returns the affine form a + b·x.
func Line(a, b Rat) Affine { return Affine{A: a, B: b} }

// Eval returns f(x) = A + B·x.
func (f Affine) Eval(x Rat) Rat { return f.A.Add(f.B.Mul(x)) }

// EvalFloat evaluates f at a float64 point in float arithmetic.
func (f Affine) EvalFloat(x float64) float64 { return f.A.Float() + f.B.Float()*x }

// Add returns f + g.
func (f Affine) Add(g Affine) Affine { return Affine{f.A.Add(g.A), f.B.Add(g.B)} }

// Sub returns f - g.
func (f Affine) Sub(g Affine) Affine { return Affine{f.A.Sub(g.A), f.B.Sub(g.B)} }

// Scale returns c·f.
func (f Affine) Scale(c Rat) Affine { return Affine{f.A.Mul(c), f.B.Mul(c)} }

// IsConst reports whether the slope of f is zero.
func (f Affine) IsConst() bool { return f.B.Sign() == 0 }

// Intersect returns the x at which f(x) == g(x) and whether it is unique
// (parallel lines have none or infinitely many; ok is false for both).
func (f Affine) Intersect(g Affine) (x Rat, ok bool) {
	db := f.B.Sub(g.B)
	if db.Sign() == 0 {
		return Rat{}, false
	}
	return g.A.Sub(f.A).Div(db), true
}

// Root returns the x at which f(x) == 0 and whether it is unique.
func (f Affine) Root() (Rat, bool) { return f.Intersect(Affine{}) }

func (f Affine) String() string {
	return fmt.Sprintf("%s + %s·x", f.A, f.B)
}
