package rat

// medium.go implements the medium tier: rational arithmetic on inline
// 128-bit unsigned num/den magnitudes with an explicit sign, sitting between
// the int64 small form and *big.Rat. Operands enter as med values (small
// values widen losslessly), intermediates run in up to 192 bits (addition
// cross-products) or 256 bits (comparison cross-products, multiplication
// overflow checks), and results leave as reduced 128-bit magnitudes or
// report ok == false, at which point the caller escapes to math/big.
// Everything here is allocation-free.

// one128 is the u128 constant 1.
var one128 = u128{lo: 1}

// med is a rational in medium precision: sign·n/d with n, d unsigned
// 128-bit magnitudes, d > 0 and gcd(n, d) == 1. Zero is n == 0 (neg false,
// d == 1 by convention).
type med struct {
	neg  bool
	n, d u128
}

// isOne128 reports x == 1, the "skip the division" test of the reducers.
//
//stretch:noalloc
func isOne128(x u128) bool { return x.hi == 0 && x.lo == 1 }

// med128 widens a small or medium Rat to medium precision. Callers must not
// pass big-form values.
//
//stretch:noalloc
func (a Rat) med128() med {
	if a.med {
		return med{a.neg, u128{a.nhi, uint64(a.num)}, u128{a.dhi, uint64(a.den)}}
	}
	n, d := a.nd()
	return med{n < 0, u128From64(absU(n)), u128From64(uint64(d))}
}

// mkMed assembles a medium-form Rat from a sign and reduced magnitudes with
// d > 0. The low magnitude words live in the small form's num/den fields
// (reinterpreted as uint64), so the struct stays at one pointer plus six
// words regardless of tier.
//
//stretch:noalloc
func mkMed(neg bool, n, d u128) Rat {
	if n.isZero() {
		return Rat{}
	}
	return Rat{
		num: int64(n.lo), den: int64(d.lo),
		nhi: n.hi, dhi: d.hi,
		med: true, neg: neg,
	}
}

// rat converts a med result to a Rat in medium form (canonical zero aside).
// Arithmetic never demotes: a med value that happens to fit the small form
// stays medium until Reduce.
//
//stretch:noalloc
func (m med) rat() Rat { return mkMed(m.neg, m.n, m.d) }

// sign returns -1, 0 or +1.
//
//stretch:noalloc
func (m med) sign() int {
	if m.n.isZero() {
		return 0
	}
	if m.neg {
		return -1
	}
	return 1
}

// mulMed returns a·b in medium precision; ok is false when the reduced
// result exceeds 128 bits. Cross-reduction first (gcd(a.n, b.d) and
// gcd(b.n, a.d)) so the products are as small as possible and the result is
// already in lowest terms.
//
//stretch:noalloc
func mulMed(a, b med) (med, bool) {
	if a.n.isZero() || b.n.isZero() {
		return med{d: one128}, true
	}
	an, bd := a.n, b.d
	if g := gcd128(an, bd); !isOne128(g) {
		an, _ = div128(an, g)
		bd, _ = div128(bd, g)
	}
	bn, ad := b.n, a.d
	if g := gcd128(bn, ad); !isOne128(g) {
		bn, _ = div128(bn, g)
		ad, _ = div128(ad, g)
	}
	n, ok1 := mul128Checked(an, bn)
	d, ok2 := mul128Checked(ad, bd)
	if !ok1 || !ok2 {
		return med{}, false
	}
	return med{a.neg != b.neg, n, d}, true
}

// invMed returns 1/b for nonzero b.
//
//stretch:noalloc
func invMed(b med) med { return med{b.neg, b.d, b.n} }

// mul128to192 returns a·b when it fits 192 bits; ok is false otherwise.
//
//stretch:noalloc
func mul128to192(a, b u128) (u192, bool) {
	if b.hi == 0 {
		return mul128by64(a, b.lo), true
	}
	if a.hi == 0 {
		return mul128by64(b, a.lo), true
	}
	hi, lo := mul128(a, b)
	if hi.hi != 0 {
		return u192{}, false
	}
	return u192{w2: hi.lo, w1: lo.hi, w0: lo.lo}, true
}

// addMed returns a + b in medium precision; ok is false when an
// intermediate exceeds 192 bits or the reduced result exceeds 128 bits.
// The shape is the small form's Knuth trick one tier up:
// a/b + c/d = (a·(d/g) + c·(b/g)) / (b·(d/g)) with g = gcd(b, d), and the
// final common factor of numerator and denominator necessarily divides g.
//
//stretch:noalloc
func addMed(a, b med) (med, bool) {
	if a.n.isZero() {
		return b, true
	}
	if b.n.isZero() {
		return a, true
	}
	g := gcd128(a.d, b.d)
	ad2, bd2 := a.d, b.d
	if !isOne128(g) {
		ad2, _ = div128(ad2, g)
		bd2, _ = div128(bd2, g)
	}
	den, ok := mul128Checked(a.d, bd2)
	if !ok {
		return med{}, false
	}
	p1, ok1 := mul128to192(a.n, bd2)
	p2, ok2 := mul128to192(b.n, ad2)
	if !ok1 || !ok2 {
		return med{}, false
	}
	var t u192
	var neg bool
	if a.neg == b.neg {
		var carry uint64
		t, carry = add192(p1, p2)
		if carry != 0 {
			return med{}, false
		}
		neg = a.neg
	} else {
		switch cmp192(p1, p2) {
		case 0:
			return med{d: one128}, true
		case 1:
			t, neg = sub192(p1, p2), a.neg
		default:
			t, neg = sub192(p2, p1), b.neg
		}
	}
	if !isOne128(g) {
		if h := gcd192with128(t, g); !isOne128(h) {
			t = div192by128Exact(t, h)
			den, _ = div128(den, h)
		}
	}
	if !t.fits128() {
		return med{}, false
	}
	return med{neg, t.to128(), den}, true
}

// muladdMed returns a + b·c in medium precision with the product carried as
// an unreduced 192-bit num/den pair — the fused window that makes MulAdd
// more than Add∘Mul one tier up: an accumulate whose product overflows 128
// bits but whose sum cancels back into range stays inline, where the
// unfused ops would have paid a math/big round trip. Operands must be
// nonzero; ok is false when an intermediate exceeds 192 bits or the reduced
// result exceeds 128.
//
//stretch:noalloc
func muladdMed(a, b, c med) (med, bool) {
	// Cross-reduce the product's factors so pn/pd is in lowest terms.
	bn, cd := b.n, c.d
	if g := gcd128(bn, cd); !isOne128(g) {
		bn, _ = div128(bn, g)
		cd, _ = div128(cd, g)
	}
	cn, bd := c.n, b.d
	if g := gcd128(cn, bd); !isOne128(g) {
		cn, _ = div128(cn, g)
		bd, _ = div128(bd, g)
	}
	pn, ok1 := mul128to192(bn, cn)
	pd, ok2 := mul128to192(bd, cd)
	if !ok1 || !ok2 {
		return med{}, false
	}
	pneg := b.neg != c.neg

	// a + sign·pn/pd over the common denominator L = a.d·(pd/g) = pd·(a.d/g)
	// with g = gcd(a.d, pd); gcd(t, L) divides g exactly as in addMed.
	g := gcd192with128(pd, a.d)
	q, r := pd, a.d // pd/g and a.d/g
	if !isOne128(g) {
		q = div192by128Exact(pd, g)
		r, _ = div128(a.d, g)
	}
	den, ok := mul192x128to192Checked(q, a.d)
	if !ok {
		return med{}, false
	}
	n1, ok1 := mul192x128to192Checked(q, a.n)
	n2, ok2 := mul192x128to192Checked(pn, r)
	if !ok1 || !ok2 {
		return med{}, false
	}
	var t u192
	var neg bool
	if a.neg == pneg {
		var carry uint64
		t, carry = add192(n1, n2)
		if carry != 0 {
			return med{}, false
		}
		neg = a.neg
	} else {
		switch cmp192(n1, n2) {
		case 0:
			return med{d: one128}, true
		case 1:
			t, neg = sub192(n1, n2), a.neg
		default:
			t, neg = sub192(n2, n1), pneg
		}
	}
	if !isOne128(g) {
		if h := gcd192with128(t, g); !isOne128(h) {
			t = div192by128Exact(t, h)
			den = div192by128Exact(den, h)
		}
	}
	if !t.fits128() || !den.fits128() {
		return med{}, false
	}
	return med{neg, t.to128(), den.to128()}, true
}

// negMed returns -a.
//
//stretch:noalloc
func negMed(a med) med {
	if a.n.isZero() {
		return a
	}
	return med{!a.neg, a.n, a.d}
}

// cmpMed compares a and b exactly: sign test, then 256-bit cross products.
//
//stretch:noalloc
func cmpMed(a, b med) int {
	sa, sb := a.sign(), b.sign()
	switch {
	case sa != sb:
		if sa < sb {
			return -1
		}
		return 1
	case sa == 0:
		return 0
	}
	h1, l1 := mul128(a.n, b.d)
	h2, l2 := mul128(b.n, a.d)
	c := cmp128(h1, h2)
	if c == 0 {
		c = cmp128(l1, l2)
	}
	if sa < 0 {
		c = -c
	}
	return c
}
