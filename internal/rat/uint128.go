package rat

// uint128.go is the fixed-width arithmetic substrate of the medium tier: an
// unsigned 128-bit integer type built on math/bits, plus the 192/256-bit
// intermediates the medium-form rational operations need (products of two
// 128-bit magnitudes, cross-sums in rational addition). Everything here is
// allocation-free; widths are static, so the compiler keeps values in
// registers or on the stack.

import "math/bits"

// u128 is an unsigned 128-bit integer, hi·2^64 + lo.
type u128 struct {
	hi, lo uint64
}

// u128From64 widens a uint64.
func u128From64(x uint64) u128 { return u128{lo: x} }

// isZero reports x == 0.
func (x u128) isZero() bool { return x.hi == 0 && x.lo == 0 }

// fits64 reports whether x fits a uint64.
func (x u128) fits64() bool { return x.hi == 0 }

// or128 returns a | b.
func or128(a, b u128) u128 { return u128{a.hi | b.hi, a.lo | b.lo} }

// cmp128 compares a and b, returning -1, 0 or +1.
func cmp128(a, b u128) int {
	switch {
	case a.hi != b.hi:
		if a.hi < b.hi {
			return -1
		}
		return 1
	case a.lo != b.lo:
		if a.lo < b.lo {
			return -1
		}
		return 1
	}
	return 0
}

// add128 returns a + b and the carry out (0 or 1).
func add128(a, b u128) (u128, uint64) {
	lo, c := bits.Add64(a.lo, b.lo, 0)
	hi, c := bits.Add64(a.hi, b.hi, c)
	return u128{hi, lo}, c
}

// sub128 returns a - b; callers guarantee a ≥ b.
func sub128(a, b u128) u128 {
	lo, borrow := bits.Sub64(a.lo, b.lo, 0)
	hi, _ := bits.Sub64(a.hi, b.hi, borrow)
	return u128{hi, lo}
}

// shr128 returns x >> s for 0 ≤ s < 128.
func shr128(x u128, s uint) u128 {
	switch {
	case s == 0:
		return x
	case s < 64:
		return u128{x.hi >> s, x.lo>>s | x.hi<<(64-s)}
	default:
		return u128{0, x.hi >> (s - 64)}
	}
}

// shl128 returns x << s for 0 ≤ s < 128.
func shl128(x u128, s uint) u128 {
	switch {
	case s == 0:
		return x
	case s < 64:
		return u128{x.hi<<s | x.lo>>(64-s), x.lo << s}
	default:
		return u128{x.lo << (s - 64), 0}
	}
}

// trailingZeros128 returns the number of trailing zero bits of a nonzero x.
func trailingZeros128(x u128) uint {
	if x.lo != 0 {
		return uint(bits.TrailingZeros64(x.lo))
	}
	return 64 + uint(bits.TrailingZeros64(x.hi))
}

// len128 returns the bit length of x (0 for x == 0).
func len128(x u128) int {
	if x.hi != 0 {
		return 64 + bits.Len64(x.hi)
	}
	return bits.Len64(x.lo)
}

// mul128 returns the full 256-bit product a·b as (hi, lo) 128-bit halves.
func mul128(a, b u128) (hi, lo u128) {
	// Schoolbook on 64-bit limbs: (a1·2^64 + a0)(b1·2^64 + b0).
	h00, l00 := bits.Mul64(a.lo, b.lo) // 2^0 term
	h01, l01 := bits.Mul64(a.lo, b.hi) // 2^64 term
	h10, l10 := bits.Mul64(a.hi, b.lo) // 2^64 term
	h11, l11 := bits.Mul64(a.hi, b.hi) // 2^128 term

	lo.lo = l00
	w1, c1 := bits.Add64(h00, l01, 0)
	w1, c2 := bits.Add64(w1, l10, 0)
	lo.hi = w1
	w2, c3 := bits.Add64(h01, h10, 0)
	w2, c4 := bits.Add64(w2, l11, 0)
	w2, c5 := bits.Add64(w2, c1+c2, 0) // c1+c2 ≤ 2: a value operand, not a carry bit
	hi.lo = w2
	hi.hi = h11 + c3 + c4 + c5
	return hi, lo
}

// mul128Checked returns a·b when it fits 128 bits; ok is false on overflow.
func mul128Checked(a, b u128) (u128, bool) {
	if a.hi == 0 && b.hi == 0 {
		h, l := bits.Mul64(a.lo, b.lo)
		return u128{h, l}, true
	}
	hi, lo := mul128(a, b)
	if !hi.isZero() {
		return u128{}, false
	}
	return lo, true
}

// gcd128 is the binary GCD of a and b; gcd128(0, b) = b.
func gcd128(a, b u128) u128 {
	if a.isZero() {
		return b
	}
	if b.isZero() {
		return a
	}
	if isOne128(a) || isOne128(b) {
		return one128
	}
	// Fast path: both fit 64 bits (the common case once operands have been
	// cross-reduced; medium denominators are often dyadic with small odd part).
	if a.hi == 0 && b.hi == 0 {
		return u128From64(gcd64(a.lo, b.lo))
	}
	k := trailingZeros128(u128{a.hi | b.hi, a.lo | b.lo})
	a = shr128(a, trailingZeros128(a))
	for {
		b = shr128(b, trailingZeros128(b))
		if a.hi == 0 && b.hi == 0 {
			return shl128(u128From64(gcd64(a.lo, b.lo)), k)
		}
		if cmp128(a, b) > 0 {
			a, b = b, a
		}
		b = sub128(b, a)
		if b.isZero() {
			return shl128(a, k)
		}
	}
}

// div128by64 returns x / d and x mod d for a 64-bit divisor d > 0.
func div128by64(x u128, d uint64) (q u128, r uint64) {
	if x.hi == 0 {
		return u128From64(x.lo / d), x.lo % d
	}
	q.hi, r = x.hi/d, x.hi%d
	q.lo, r = bits.Div64(r, x.lo, d)
	return q, r
}

// div128 returns x / d and x mod d for d > 0. The general (d ≥ 2^64) case
// uses shift-subtract long division over at most 64 quotient bits — the
// quotient of a 128-bit value by a ≥ 2^64 divisor fits 64 bits — which the
// medium tier only pays when reducing by a genuinely 128-bit GCD.
func div128(x, d u128) (q, r u128) {
	if d.hi == 0 {
		qq, rr := div128by64(x, d.lo)
		return qq, u128From64(rr)
	}
	if cmp128(x, d) < 0 {
		return u128{}, x
	}
	// Align d's top bit under x's and subtract down.
	shift := uint(len128(x) - len128(d))
	dd := shl128(d, shift)
	var quo uint64
	for {
		quo <<= 1
		if cmp128(x, dd) >= 0 {
			x = sub128(x, dd)
			quo |= 1
		}
		if shift == 0 {
			break
		}
		shift--
		dd = shr128(dd, 1)
	}
	return u128From64(quo), x
}

// u192 is an unsigned 192-bit integer, w2·2^128 + w1·2^64 + w0. It exists
// only as the intermediate width of medium-form addition: products of a
// 128-bit numerator with a 64-bit reduced denominator, and their cross-sum,
// before the final GCD reduction brings the result back to 128 bits.
type u192 struct {
	w2, w1, w0 uint64
}

// isZero reports x == 0.
func (x u192) isZero() bool { return x.w2 == 0 && x.w1 == 0 && x.w0 == 0 }

// fits128 reports whether x fits 128 bits.
func (x u192) fits128() bool { return x.w2 == 0 }

// to128 truncates x to its low 128 bits; callers check fits128 first.
func (x u192) to128() u128 { return u128{x.w1, x.w0} }

// mul128by64 returns the 192-bit product a·b of a 128-bit a and 64-bit b.
func mul128by64(a u128, b uint64) u192 {
	h0, l0 := bits.Mul64(a.lo, b)
	h1, l1 := bits.Mul64(a.hi, b)
	w1, c := bits.Add64(h0, l1, 0)
	return u192{w2: h1 + c, w1: w1, w0: l0}
}

// add192 returns a + b and the carry out.
func add192(a, b u192) (u192, uint64) {
	w0, c := bits.Add64(a.w0, b.w0, 0)
	w1, c := bits.Add64(a.w1, b.w1, c)
	w2, c := bits.Add64(a.w2, b.w2, c)
	return u192{w2, w1, w0}, c
}

// sub192 returns a - b; callers guarantee a ≥ b.
func sub192(a, b u192) u192 {
	w0, borrow := bits.Sub64(a.w0, b.w0, 0)
	w1, borrow := bits.Sub64(a.w1, b.w1, borrow)
	w2, _ := bits.Sub64(a.w2, b.w2, borrow)
	return u192{w2, w1, w0}
}

// cmp192 compares a and b, returning -1, 0 or +1.
func cmp192(a, b u192) int {
	switch {
	case a.w2 != b.w2:
		if a.w2 < b.w2 {
			return -1
		}
		return 1
	case a.w1 != b.w1:
		if a.w1 < b.w1 {
			return -1
		}
		return 1
	case a.w0 != b.w0:
		if a.w0 < b.w0 {
			return -1
		}
		return 1
	}
	return 0
}

// div192by64 returns x / d and x mod d for a 64-bit divisor d > 0.
func div192by64(x u192, d uint64) (q u192, r uint64) {
	q.w2, r = x.w2/d, x.w2%d
	q.w1, r = bits.Div64(r, x.w1, d)
	q.w0, r = bits.Div64(r, x.w0, d)
	return q, r
}

// mod192by128 returns x mod d for a 128-bit divisor d > 0 with d.hi != 0.
// Shift-subtract over the (at most 65-bit) quotient range.
func mod192by128(x u192, d u128) u128 {
	dx := u192{w1: d.hi, w0: d.lo}
	if cmp192(x, dx) < 0 {
		return u128{x.w1, x.w0}
	}
	lenX := 0
	switch {
	case x.w2 != 0:
		lenX = 128 + bits.Len64(x.w2)
	case x.w1 != 0:
		lenX = 64 + bits.Len64(x.w1)
	default:
		lenX = bits.Len64(x.w0)
	}
	shift := uint(lenX - len128(d))
	dd := shl192(dx, shift)
	for {
		if cmp192(x, dd) >= 0 {
			x = sub192(x, dd)
		}
		if shift == 0 {
			break
		}
		shift--
		dd = shr192(dd, 1)
	}
	return u128{x.w1, x.w0}
}

// div192by128Exact returns x / d for d > 0 when the division is exact and
// the quotient fits 192 bits (it always does: quotients here are num/gcd).
func div192by128Exact(x u192, d u128) u192 {
	if d.hi == 0 {
		q, _ := div192by64(x, d.lo)
		return q
	}
	// Exact division by a ≥ 2^64 divisor: the quotient fits 128 bits.
	// Long division via shift-subtract, collecting quotient bits.
	dx := u192{w1: d.hi, w0: d.lo}
	if cmp192(x, dx) < 0 {
		return u192{} // only possible when x == 0 for exact division
	}
	lenX := 0
	switch {
	case x.w2 != 0:
		lenX = 128 + bits.Len64(x.w2)
	case x.w1 != 0:
		lenX = 64 + bits.Len64(x.w1)
	default:
		lenX = bits.Len64(x.w0)
	}
	shift := uint(lenX - len128(d))
	dd := shl192(dx, shift)
	var qhi, qlo uint64
	for {
		qhi = qhi<<1 | qlo>>63
		qlo <<= 1
		if cmp192(x, dd) >= 0 {
			x = sub192(x, dd)
			qlo |= 1
		}
		if shift == 0 {
			break
		}
		shift--
		dd = shr192(dd, 1)
	}
	return u192{w1: qhi, w0: qlo}
}

// shl192 returns x << s for 0 ≤ s < 128 (enough for the division aligners).
func shl192(x u192, s uint) u192 {
	for s >= 64 {
		x = u192{w2: x.w1, w1: x.w0, w0: 0}
		s -= 64
	}
	if s == 0 {
		return x
	}
	return u192{
		w2: x.w2<<s | x.w1>>(64-s),
		w1: x.w1<<s | x.w0>>(64-s),
		w0: x.w0 << s,
	}
}

// shr192 returns x >> s for 0 ≤ s < 64.
func shr192(x u192, s uint) u192 {
	if s == 0 {
		return x
	}
	return u192{
		w2: x.w2 >> s,
		w1: x.w1>>s | x.w2<<(64-s),
		w0: x.w0>>s | x.w1<<(64-s),
	}
}

// mul192by64Checked returns a·b when it fits 192 bits.
func mul192by64Checked(a u192, b uint64) (u192, bool) {
	h0, l0 := bits.Mul64(a.w0, b)
	h1, l1 := bits.Mul64(a.w1, b)
	h2, l2 := bits.Mul64(a.w2, b)
	w1, c := bits.Add64(l1, h0, 0)
	w2, c := bits.Add64(l2, h1, c)
	if h2 != 0 || c != 0 {
		return u192{}, false
	}
	return u192{w2: w2, w1: w1, w0: l0}, true
}

// mul192x128to192Checked returns a·b when it fits 192 bits. A product of a
// genuinely-192-bit a and a ≥ 2^64 b always overflows, so the two narrower
// routes cover every representable case.
func mul192x128to192Checked(a u192, b u128) (u192, bool) {
	if a.fits128() {
		return mul128to192(a.to128(), b)
	}
	if b.hi == 0 {
		return mul192by64Checked(a, b.lo)
	}
	return u192{}, false
}

// gcd192with128 returns gcd(x, d) for d > 0; the result divides d, so it
// fits 128 bits. One reduction step (x mod d) then binary GCD in 128 bits.
func gcd192with128(x u192, d u128) u128 {
	if x.isZero() {
		return d
	}
	var r u128
	if d.hi == 0 {
		_, r64 := div192by64(x, d.lo)
		r = u128From64(r64)
	} else {
		r = mod192by128(x, d)
	}
	return gcd128(r, d)
}
