package rat

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// mustParse builds a Rat from its exact string form, failing the test on a
// parse error. Parse demotes maximally, so the resulting tier is the lowest
// that holds the value — which the boundary tests then assert explicitly.
func mustParse(t *testing.T, s string) Rat {
	t.Helper()
	r, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Decimal strings of the powers of two at the representation boundaries.
const (
	p63s  = "9223372036854775808"                     // 2^63
	p63m1 = "9223372036854775807"                     // 2^63 − 1
	p127s = "170141183460469231731687303715884105728" // 2^127
	p127m = "170141183460469231731687303715884105727" // 2^127 − 1
	p128s = "340282366920938463463374607431768211456" // 2^128
)

// TestTierBoundaries pins which representation each boundary value lands in
// after Parse (maximal demotion): int64-representable stays small, 64..128
// bit magnitudes are medium, beyond 128 bits is big — on both sides of each
// boundary and under sign flips.
func TestTierBoundaries(t *testing.T) {
	cases := []struct {
		s    string
		tier Tier
	}{
		{p63m1, TierSmall},               // 2^63−1: last small integer
		{"-" + p63m1, TierSmall},         // −(2^63−1): small (MinInt64 excluded)
		{p63s, TierMedium},               // 2^63: first medium integer
		{"-" + p63s, TierMedium},         // −2^63 = MinInt64: medium, not small
		{p63m1 + "/" + p63s, TierMedium}, // (2^63−1)/2^63: den crosses
		{"-" + p63m1 + "/" + p63s, TierMedium},
		{p63s + "/" + p63m1, TierMedium}, // 2^63/(2^63−1): num crosses
		{"1/" + p63m1, TierSmall},        // denominator at the small edge
		{p127m, TierMedium},              // 2^127−1: still medium
		{"-" + p127m, TierMedium},
		{p127m + "/" + p127s, TierMedium}, // (2^127−1)/2^127: both at the top
		{"-" + p127m + "/" + p127s, TierMedium},
		{p127s + "/" + p127m, TierMedium}, // 2^127/(2^127−1)
		{p128s, TierBig},                  // 2^128: beyond the medium form
		{"-" + p128s, TierBig},
		{"1/" + p128s, TierBig}, // 2^-128: den beyond
	}
	for _, c := range cases {
		r := mustParse(t, c.s)
		checkInvariant(t, r, "Parse")
		if r.Tier() != c.tier {
			t.Errorf("Parse(%s).Tier() = %v, want %v", c.s, r.Tier(), c.tier)
		}
		n := r.Neg()
		checkInvariant(t, n, "Neg")
		if n.Tier() != c.tier {
			t.Errorf("Neg(%s).Tier() = %v, want %v (sign flip must not change tier)",
				c.s, n.Tier(), c.tier)
		}
		if got := n.Neg(); got.Cmp(r) != 0 {
			t.Errorf("Neg(Neg(%s)) = %v", c.s, got)
		}
	}
}

// TestMediumBoundaryDifferential crosses every operation over operands
// clustered at both escape boundaries — around 2^63−1/2^63 and
// 2^127−1/2^127, with sign flips — against the big.Rat oracle, reusing the
// small-form differential harness (diffCheck also verifies the
// representation invariant of every result).
func TestMediumBoundaryDifferential(t *testing.T) {
	strs := []string{
		"0", "1", "-1", "2/3", "-355/113",
		p63m1, "-" + p63m1, p63s, "-" + p63s,
		p63m1 + "/" + p63s, "-" + p63m1 + "/" + p63s,
		p63s + "/" + p63m1, "-" + p63s + "/" + p63m1,
		"1/" + p63s, "-1/" + p63s,
		p127m, "-" + p127m,
		p127m + "/" + p127s, "-" + p127m + "/" + p127s,
		p127s + "/" + p127m, "-" + p127s + "/" + p127m,
		"1/" + p127s, "-1/" + p127m,
		p128s, "-" + p128s, "1/" + p128s, // big neighbours of the 128-bit edge
		p127m + "/3", "3/" + p127m,
	}
	var vals []Rat
	for _, s := range strs {
		vals = append(vals, mustParse(t, s))
	}
	for _, a := range vals {
		for _, b := range vals {
			diffCheck(t, a, b)
		}
	}
}

// TestMediumMulAddDifferential drives the fused accumulate over
// boundary-clustered triples spanning all three tiers and checks the value
// against the big.Rat oracle plus the demotion contract: the result lands
// in the lowest tier that holds it.
func TestMediumMulAddDifferential(t *testing.T) {
	seed := []Rat{
		mustParse(t, "1"), mustParse(t, "-2/3"),
		mustParse(t, p63m1), mustParse(t, "-"+p63m1+"/"+p63s),
		mustParse(t, p63s+"/"+p63m1),
		mustParse(t, p127m+"/"+p127s), mustParse(t, "-"+p127m),
		mustParse(t, p127s+"/"+p127m), mustParse(t, "1/"+p127s),
		mustParse(t, p128s), mustParse(t, "-1/"+p128s),
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		a := seed[rng.Intn(len(seed))]
		b := seed[rng.Intn(len(seed))]
		c := seed[rng.Intn(len(seed))]
		got := MulAdd(a, b, c)
		want := new(big.Rat).Mul(b.Big(), c.Big())
		want.Add(want, a.Big())
		if got.Big().Cmp(want) != 0 {
			t.Fatalf("MulAdd(%v, %v, %v) = %v, oracle %v", a, b, c, got, want.RatString())
		}
		checkInvariant(t, got, "MulAdd")
		if lowest := FromBig(want); got.Tier() != lowest.Tier() {
			t.Fatalf("MulAdd(%v, %v, %v) landed %v, want %v (fused results demote maximally)",
				a, b, c, got.Tier(), lowest.Tier())
		}
	}
}

// TestMulSubDifferential pins the new fused a − b·c against the oracle on
// the boundary operand pool of the MulAdd differential.
func TestMulSubDifferential(t *testing.T) {
	var vals []Rat
	for _, n := range interestingInt64s {
		for _, d := range interestingInt64s {
			if d == 0 {
				continue
			}
			vals = append(vals, FromFrac(n, d))
		}
	}
	vals = append(vals,
		mustParse(t, p127m+"/"+p127s), mustParse(t, "-"+p127s+"/"+p127m))
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 20000; i++ {
		a := vals[rng.Intn(len(vals))]
		b := vals[rng.Intn(len(vals))]
		c := vals[rng.Intn(len(vals))]
		got := MulSub(a, b, c)
		want := new(big.Rat).Mul(b.Big(), c.Big())
		want.Sub(a.Big(), want)
		if got.Big().Cmp(want) != 0 {
			t.Fatalf("MulSub(%v, %v, %v) = %v, oracle %v", a, b, c, got, want.RatString())
		}
		checkInvariant(t, got, "MulSub")
	}
}

// TestReduceDemotionLadder is the regression for Reduce's three-step
// contract: after cancellation, big values demote to medium when they fit
// 128 bits and straight to small when they fit int64, and medium values
// demote to small — while arithmetic itself never demotes.
func TestReduceDemotionLadder(t *testing.T) {
	h := FromFrac(math.MaxInt64/3, 1) // ~61.4 bits
	h2 := h.Mul(h)                    // ~123 bits: medium
	if h2.Tier() != TierMedium {
		t.Fatalf("h² landed %v, want medium", h2.Tier())
	}
	h4 := h2.Mul(h2) // ~245 bits: big
	if h4.Tier() != TierBig {
		t.Fatalf("h⁴ landed %v, want big", h4.Tier())
	}

	// big → medium: h⁴/h² is a big-form value whose magnitude fits 128.
	backMed := h4.Div(h2)
	if backMed.Tier() != TierBig {
		t.Fatalf("big-operand division landed %v; arithmetic must not demote", backMed.Tier())
	}
	red := backMed.Reduce()
	if red.Tier() != TierMedium || !red.Equal(h2) {
		t.Fatalf("Reduce(big holding 123-bit value) = %v tier %v, want h² medium", red, red.Tier())
	}

	// big → small: h⁴/h³ fits int64; Reduce must skip the ladder entirely.
	backSmall := h4.Div(h2.Mul(h))
	if backSmall.Tier() != TierBig {
		t.Fatalf("big-operand division landed %v; arithmetic must not demote", backSmall.Tier())
	}
	if red := backSmall.Reduce(); red.Tier() != TierSmall || !red.Equal(h) {
		t.Fatalf("Reduce(big holding 61-bit value) = %v tier %v, want h small", red, red.Tier())
	}

	// medium → small: h²/h fits int64 but stays medium until Reduce.
	medBack := h2.Div(h)
	if medBack.Tier() != TierMedium {
		t.Fatalf("medium-operand division landed %v; arithmetic must not demote", medBack.Tier())
	}
	if red := medBack.Reduce(); red.Tier() != TierSmall || !red.Equal(h) {
		t.Fatalf("Reduce(medium holding 61-bit value) = %v tier %v, want h small", red, red.Tier())
	}

	// Values that genuinely need their tier must survive Reduce unchanged.
	for _, v := range []Rat{h, h2, h4} {
		if red := v.Reduce(); red.Tier() != v.Tier() || red.Cmp(v) != 0 {
			t.Fatalf("Reduce(%v) changed a canonical value to %v", v, red)
		}
	}
}

// TestMediumOpsDoNotAllocate is the point of the tier: arithmetic whose
// operands, intermediates and results stay within the 128-bit window (192
// for the fused product) performs no heap allocation, exactly as the small
// form guarantees one level down. The operands are sized so every step of
// the chain stays in-window — medium values near the top of the range
// legitimately escape when multiplied, which is the promotion contract,
// not an allocation bug.
func TestMediumOpsDoNotAllocate(t *testing.T) {
	x := mustParse(t, "18446744073709551617/1024") // (2^64+1)/2^10
	y := mustParse(t, "18446744073709551615/1024") // (2^64−1)/2^10
	c := mustParse(t, p127m+"/"+p127s)
	if x.Tier() != TierMedium || y.Tier() != TierMedium {
		t.Fatalf("operand tiers %v %v, want medium", x.Tier(), y.Tier())
	}
	// The fused-window triple of TestMulAddFusedWindow.
	two := FromInt(2)
	pow := func(k int) Rat {
		r := One
		for i := 0; i < k; i++ {
			r = r.Mul(two)
		}
		return r
	}
	aw := One.Div(pow(120))
	bw := pow(70).Add(One).Div(pow(60))
	cw := pow(70).Sub(One).Div(pow(60))
	var sink Rat
	allocs := testing.AllocsPerRun(100, func() {
		sink = x.Add(y).Mul(x).Sub(y).Div(x).Neg().Reduce()
		if sink.Cmp(c) == 0 || sink.Sign() == 0 {
			t.Fatal("unexpected comparison")
		}
		if r := MulAdd(aw, bw, cw); r.Sign() == 0 {
			t.Fatal("bad MulAdd")
		}
		if r := MulSub(aw, bw.Neg(), cw); r.Sign() == 0 {
			t.Fatal("bad MulSub")
		}
		_ = c.Inv().Abs()
	})
	if allocs != 0 {
		t.Fatalf("medium-regime arithmetic allocates %.1f objects/op, want 0", allocs)
	}
}

// TestMulAddFusedWindow pins the 192-bit product window: b·c whose
// numerator exceeds 128 bits fused with an a that cancels the denominator
// back down must come out small and allocation-free, where the unfused
// Add∘Mul chain escapes to math/big for the intermediate.
func TestMulAddFusedWindow(t *testing.T) {
	two := FromInt(2)
	pow := func(k int) Rat { // 2^k through medium-safe squaring
		r := One
		for i := 0; i < k; i++ {
			r = r.Mul(two)
		}
		return r
	}
	b := pow(70).Add(One).Div(pow(60)) // (2^70+1)/2^60, medium
	c := pow(70).Sub(One).Div(pow(60)) // (2^70−1)/2^60, medium
	a := One.Div(pow(120))             // 1/2^120, medium
	if b.Tier() != TierMedium || c.Tier() != TierMedium || a.Tier() != TierMedium {
		t.Fatalf("operand tiers %v %v %v, want all medium", b.Tier(), c.Tier(), a.Tier())
	}
	if p := b.Mul(c); p.Tier() != TierBig {
		t.Fatalf("unfused product landed %v; pick operands whose product escapes", p.Tier())
	}
	got := MulAdd(a, b, c) // (1 + 2^140 − 1)/2^120 = 2^20
	if !got.Equal(pow(20)) {
		t.Fatalf("MulAdd = %v, want 2^20", got)
	}
	if got.Tier() != TierSmall {
		t.Fatalf("fused result landed %v, want small", got.Tier())
	}
	allocs := testing.AllocsPerRun(100, func() {
		if r := MulAdd(a, b, c); r.Sign() == 0 {
			t.Fatal("bad result")
		}
	})
	if allocs != 0 {
		t.Fatalf("fused 192-bit window allocates %.1f objects/op, want 0", allocs)
	}
}

// TestMediumFromFloatBoundary walks FromFloat across the small/medium and
// medium/big boundaries: 2^±63 land medium, magnitudes beyond 2^±128 land
// big, and the round trip through Float stays exact everywhere.
func TestMediumFromFloatBoundary(t *testing.T) {
	cases := []struct {
		f    float64
		tier Tier
	}{
		{math.Ldexp(1, 62), TierSmall},
		{math.Ldexp(1, 63), TierMedium},
		{math.Ldexp(1, 127), TierMedium},
		{math.Ldexp(1, 128), TierBig},
		{math.Ldexp(-1, 63), TierMedium},
		{math.Ldexp(1, -62), TierSmall},
		{math.Ldexp(1, -63), TierMedium},
		{math.Ldexp(1, -127), TierMedium},
		{math.Ldexp(1, -128), TierBig},
		{math.Ldexp(8191, 115), TierMedium}, // 13-bit mantissa at the top edge: 2^128−2^115... still 128 bits
		{math.Ldexp(8193, 115), TierBig},    // first step past it
	}
	for _, c := range cases {
		r := FromFloat(c.f)
		checkInvariant(t, r, "FromFloat")
		if r.Tier() != c.tier {
			t.Errorf("FromFloat(%g).Tier() = %v, want %v", c.f, r.Tier(), c.tier)
		}
		if got := r.Float(); got != c.f {
			t.Errorf("FromFloat(%g).Float() = %g, round trip broken", c.f, got)
		}
		if want := new(big.Rat).SetFloat64(c.f); r.Big().Cmp(want) != 0 {
			t.Errorf("FromFloat(%g) = %v, oracle %v", c.f, r, want.RatString())
		}
	}
}
