package rat

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// refFloat is the big.Rat reference for n/d.
func refFloat(n, d u128) float64 {
	var bn, bd big.Int
	setBig128(&bn, n)
	setBig128(&bd, d)
	f, _ := new(big.Rat).SetFrac(&bn, &bd).Float64()
	return f
}

func checkDiv(t *testing.T, n, d u128) {
	t.Helper()
	got := divFloat128(n, d)
	want := refFloat(n, d)
	if got != want {
		t.Fatalf("divFloat128(%v/%v·2⁶⁴ + %v/%v) = %v (% x), big.Rat %v (% x)",
			n.hi, d.hi, n.lo, d.lo, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

// TestDivFloat128Boundaries sweeps crafted rounding-boundary
// neighbourhoods: exact powers of two, quotients straddling the 2⁵³
// mantissa edge, halfway cases (odd multiple of an ulp's half), and the
// extreme 1/(2¹²⁸−1)-style magnitude ratios — each with a ±4 lattice
// around both operands so every off-by-one in the round/sticky logic
// trips.
func TestDivFloat128Boundaries(t *testing.T) {
	bases := []u128{
		{0, 1}, {0, 2}, {0, 3}, {0, 5},
		{0, 1 << 52}, {0, 1<<52 + 1}, {0, 1<<53 - 1}, {0, 1 << 53}, {0, 1<<53 + 2},
		{0, 1<<63 - 1}, {0, 1 << 63}, {0, math.MaxUint64},
		{1, 0}, {1, 1}, {1 << 31, 0}, {1<<52 - 1, math.MaxUint64},
		{1 << 52, 0}, {1<<52 + 1, 1}, {1 << 62, 0}, {1<<63 - 1, math.MaxUint64},
		{1 << 63, 0}, {math.MaxUint64, math.MaxUint64},
	}
	deltas := []int64{-4, -3, -2, -1, 0, 1, 2, 3, 4}
	add := func(x u128, d int64) (u128, bool) {
		if d >= 0 {
			s, carry := add128(x, u128From64(uint64(d)))
			return s, carry == 0
		}
		neg := u128From64(uint64(-d))
		if cmp128(x, neg) <= 0 {
			return u128{}, false
		}
		return sub128(x, neg), true
	}
	for _, bn := range bases {
		for _, bd := range bases {
			for _, dn := range deltas {
				n, ok := add(bn, dn)
				if !ok || n.isZero() {
					continue
				}
				for _, dd := range deltas {
					d, ok := add(bd, dd)
					if !ok || d.isZero() {
						continue
					}
					checkDiv(t, n, d)
				}
			}
		}
	}
}

// TestDivFloat128ExactHalfway pins round-to-nearest-even on constructed
// exact ties: n/d = (2m+1)/2 ulps for both even and odd m, where the
// sticky bit is zero and only the even-mantissa rule decides.
func TestDivFloat128ExactHalfway(t *testing.T) {
	// (2^53 + 1) / 2 is exactly halfway between 2^52 and 2^52 + 1:
	// must round to the even 2^52.
	checkDiv(t, u128{0, 1<<53 + 1}, u128{0, 2})
	// (2^53 + 3) / 2 is halfway between 2^52+1 and 2^52+2: rounds up to even.
	checkDiv(t, u128{0, 1<<53 + 3}, u128{0, 2})
	// Same ties pushed into the high word.
	checkDiv(t, u128{1 << (53 - 64 + 63), 1}, u128{0, 2}) // degenerate, still exact path
	checkDiv(t, shl128(u128{0, 1<<53 + 1}, 64), shl128(u128{0, 2}, 64))
	checkDiv(t, shl128(u128{0, 1<<53 + 1}, 74), u128{0, 2})
	checkDiv(t, shl128(u128{0, 1<<53 + 3}, 74), u128{0, 2})
}

// TestDivFloat128Random is the differential sweep against big.Rat.Float64
// over uniformly random word patterns, mixing full-width, one-word, and
// near-boundary operands.
func TestDivFloat128Random(t *testing.T) {
	rng := rand.New(rand.NewSource(20_06))
	words := func() uint64 {
		switch rng.Intn(4) {
		case 0:
			return rng.Uint64()
		case 1:
			return rng.Uint64() & 0xFFFF
		case 2:
			return math.MaxUint64 - uint64(rng.Intn(16))
		default:
			return 1<<uint(rng.Intn(64)) + uint64(rng.Intn(8)) - 4
		}
	}
	iters := 200_000
	if testing.Short() {
		iters = 20_000
	}
	for i := 0; i < iters; i++ {
		n := u128{words(), words()}
		d := u128{words(), words()}
		if rng.Intn(2) == 0 {
			n.hi = 0
		}
		if rng.Intn(2) == 0 {
			d.hi = 0
		}
		if n.isZero() || d.isZero() {
			continue
		}
		checkDiv(t, n, d)
	}
}

// TestFloatMediumTierMatchesBig checks the Float() wiring end to end on
// medium-tier Rats (built by overflowing the small tier) and on small-tier
// values past the 2⁵³ exact-conversion window, against Big().Float64().
func TestFloatMediumTierMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5_000; i++ {
		a := FromInt(int64(rng.Uint64() >> 1 & (1<<62 - 1)))
		b := FromInt(int64(rng.Uint64()>>1&(1<<62-1)) + 1)
		c := FromInt(int64(rng.Uint64()>>1&(1<<62-1)) + 1)
		x := a.Mul(b).Div(c) // overflow into the medium tier for most draws
		if rng.Intn(2) == 0 {
			x = x.Neg()
		}
		got := x.Float()
		want, _ := x.Big().Float64()
		if got != want {
			t.Fatalf("iter %d: %v.Float() = %v, big.Rat %v", i, x, got, want)
		}
	}
}

// TestFloatSteadyStateAllocs: Float on small and medium values no longer
// materialises a big.Rat.
func TestFloatSteadyStateAllocs(t *testing.T) {
	med := FromInt(1 << 62).Mul(FromInt(1 << 62)).Div(FromInt(3))
	small := FromInt(1<<60 + 1).Div(FromInt(3))
	var sink float64
	if avg := testing.AllocsPerRun(100, func() { sink = med.Float() }); avg != 0 {
		t.Errorf("medium-tier Float allocates %v/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { sink = small.Float() }); avg != 0 {
		t.Errorf("small-tier Float allocates %v/op, want 0", avg)
	}
	_ = sink
}
