package rat

import "math"

// divFloat128 returns the correctly-rounded (round-to-nearest-even)
// float64 of n/d for nonzero unsigned 128-bit magnitudes — the inline
// replacement for materialising a big.Rat just to call Float64 on it.
//
// Both operands are normalised to the top bit, the quotient's leading bit
// is fixed by one compare-and-shift, and 52 further mantissa bits come out
// of a restoring division in 192-bit registers (the remainder is shifted
// left before each compare, so it needs one word of headroom over the
// 128-bit divisor). One more restoring step yields the round bit; the
// remainder's non-zeroness is the sticky bit. The quotient magnitude lies
// in (2⁻¹²⁸, 2¹²⁸), far inside the normal float64 range, so no subnormal
// or overflow handling is needed and Ldexp is exact.
//
//stretch:noalloc
func divFloat128(n, d u128) float64 {
	ln, ld := len128(n), len128(d)
	N := shl128(n, uint(128-ln))
	D := shl128(d, uint(128-ld))
	e := ln - ld // n/d = (N/D)·2^e with N/D ∈ (1/2, 2)
	R := u192{0, N.hi, N.lo}
	D192 := u192{0, D.hi, D.lo}
	if cmp192(R, D192) < 0 {
		e--
		R = shl192(R, 1)
	}
	// Leading quotient bit is now 1: R/D ∈ [1, 2).
	mant := uint64(1)
	R = sub192(R, D192)
	for i := 0; i < 52; i++ {
		R = shl192(R, 1)
		mant <<= 1
		if cmp192(R, D192) >= 0 {
			R = sub192(R, D192)
			mant |= 1
		}
	}
	R = shl192(R, 1)
	round := false
	if cmp192(R, D192) >= 0 {
		R = sub192(R, D192)
		round = true
	}
	if round && (!R.isZero() || mant&1 == 1) {
		mant++
		if mant == 1<<53 {
			mant >>= 1
			e++
		}
	}
	return math.Ldexp(float64(mant), e-52)
}
