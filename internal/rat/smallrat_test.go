package rat

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// checkInvariant fails unless a satisfies the representation invariant of
// its tier — small: canonical zero, positive reduced denominator, MinInt64
// kept out of both fields; medium: nonzero reduced 128-bit magnitudes with
// a nonzero denominator.
func checkInvariant(t *testing.T, a Rat, ctx string) {
	t.Helper()
	if a.r != nil {
		if a.med {
			t.Fatalf("%s: value is both medium and big", ctx)
		}
		return
	}
	if a.med {
		m := a.med128()
		if m.n.isZero() {
			t.Fatalf("%s: zero leaked into the medium form", ctx)
		}
		if m.d.isZero() {
			t.Fatalf("%s: zero denominator in medium form", ctx)
		}
		if g := gcd128(m.n, m.d); !isOne128(g) {
			t.Fatalf("%s: unreduced medium form %v (gcd %v)", ctx, a, g)
		}
		return
	}
	if a.num == 0 {
		if a.den != 0 {
			t.Fatalf("%s: non-canonical zero %d/%d", ctx, a.num, a.den)
		}
		return
	}
	if a.den <= 0 {
		t.Fatalf("%s: non-positive denominator %d/%d", ctx, a.num, a.den)
	}
	if a.num == math.MinInt64 || a.den == math.MinInt64 {
		t.Fatalf("%s: MinInt64 leaked into small form %d/%d", ctx, a.num, a.den)
	}
	if g := gcd64(absU(a.num), uint64(a.den)); g != 1 {
		t.Fatalf("%s: unreduced small form %d/%d (gcd %d)", ctx, a.num, a.den, g)
	}
}

// oracle mirrors one Rat operation on pure big.Rat values.
type oracle struct {
	name  string
	rat   func(a, b Rat) Rat
	big   func(a, b *big.Rat) *big.Rat
	defOK func(b Rat) bool // operand filter (division by zero)
}

var oracles = []oracle{
	{"Add", Rat.Add, func(a, b *big.Rat) *big.Rat { return new(big.Rat).Add(a, b) }, nil},
	{"Sub", Rat.Sub, func(a, b *big.Rat) *big.Rat { return new(big.Rat).Sub(a, b) }, nil},
	{"Mul", Rat.Mul, func(a, b *big.Rat) *big.Rat { return new(big.Rat).Mul(a, b) }, nil},
	{"Div", Rat.Div, func(a, b *big.Rat) *big.Rat { return new(big.Rat).Quo(a, b) },
		func(b Rat) bool { return b.Sign() != 0 }},
}

// diffCheck runs every operation on (a, b) against the big.Rat oracle.
func diffCheck(t *testing.T, a, b Rat) {
	t.Helper()
	ab, bb := a.Big(), b.Big()
	for _, op := range oracles {
		if op.defOK != nil && !op.defOK(b) {
			continue
		}
		got := op.rat(a, b)
		want := op.big(ab, bb)
		if got.Big().Cmp(want) != 0 {
			t.Fatalf("%s(%v, %v) = %v, oracle %v", op.name, a, b, got, want.RatString())
		}
		checkInvariant(t, got, op.name)
	}
	if got, want := a.Cmp(b), ab.Cmp(bb); got != want {
		t.Fatalf("Cmp(%v, %v) = %d, oracle %d", a, b, got, want)
	}
	if got, want := a.Sign(), ab.Sign(); got != want {
		t.Fatalf("Sign(%v) = %d, oracle %d", a, got, want)
	}
	if got := a.Neg(); got.Big().Cmp(new(big.Rat).Neg(ab)) != 0 {
		t.Fatalf("Neg(%v) = %v", a, got)
	}
	if a.Sign() != 0 {
		if got := a.Inv(); got.Big().Cmp(new(big.Rat).Inv(ab)) != 0 {
			t.Fatalf("Inv(%v) = %v", a, got)
		}
	}
	if got := a.Reduce(); got.Big().Cmp(ab) != 0 {
		t.Fatalf("Reduce(%v) = %v changed the value", a, got)
	}
}

// interestingInt64s are operands engineered to sit at the overflow escape
// boundary: products and cross-sums of adjacent pairs straddle MaxInt64.
var interestingInt64s = []int64{
	0, 1, -1, 2, 3, 7, -12, 1000003,
	math.MaxInt64, math.MaxInt64 - 1, -math.MaxInt64,
	math.MaxInt64 / 2, math.MaxInt64/2 + 1, -(math.MaxInt64 / 2),
	int64(1) << 31, (int64(1) << 31) + 1, int64(3037000499), // ≈ √MaxInt64
	int64(3037000500), -int64(3037000500), (int64(1) << 62) - 1,
}

// TestDifferentialInteresting pits every operation on every pair of
// boundary operands against the big.Rat oracle, including pairs whose
// intermediate products overflow int64 mid-operation.
func TestDifferentialInteresting(t *testing.T) {
	var vals []Rat
	for _, n := range interestingInt64s {
		for _, d := range interestingInt64s {
			if d == 0 {
				continue
			}
			vals = append(vals, FromFrac(n, d))
		}
	}
	for _, a := range vals {
		checkInvariant(t, a, "FromFrac")
	}
	// The full cross product is ~160k pairs; sample deterministically.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		a := vals[rng.Intn(len(vals))]
		b := vals[rng.Intn(len(vals))]
		diffCheck(t, a, b)
	}
}

// TestDifferentialRandom drives random operand chains through both
// representations: escaped values (from deliberately overflowing products)
// are mixed back in as operands, exercising small/big and big/big paths.
func TestDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randRat := func() Rat {
		switch rng.Intn(4) {
		case 0: // small values
			return FromFrac(rng.Int63n(2000)-1000, 1+rng.Int63n(1000))
		case 1: // near the escape boundary
			return FromFrac(rng.Int63()-math.MaxInt64/2, 1+rng.Int63())
		case 2: // escaped: product of two near-boundary values
			a := FromFrac(rng.Int63(), 1+rng.Int63n(1000))
			b := FromFrac(rng.Int63(), 1+rng.Int63n(1000))
			return a.Mul(b)
		default: // float-derived dyadic
			return FromFloat((rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(120)-60))
		}
	}
	for i := 0; i < 20000; i++ {
		diffCheck(t, randRat(), randRat())
	}
}

// TestMulAddDifferential checks the fused accumulate against the big.Rat
// oracle on boundary triples, and pins its escape contract: MulAdd always
// returns the small form whenever the final value fits int64, even when
// the intermediate product b·c would overflow on its own — the property
// a.Add(b.Mul(c)) does not have, and the reason the revised-simplex eta
// updates use it.
func TestMulAddDifferential(t *testing.T) {
	var vals []Rat
	for _, n := range interestingInt64s {
		for _, d := range interestingInt64s {
			if d == 0 {
				continue
			}
			vals = append(vals, FromFrac(n, d))
		}
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		a := vals[rng.Intn(len(vals))]
		b := vals[rng.Intn(len(vals))]
		c := vals[rng.Intn(len(vals))]
		got := MulAdd(a, b, c)
		want := new(big.Rat).Mul(b.Big(), c.Big())
		want.Add(want, a.Big())
		if got.Big().Cmp(want) != 0 {
			t.Fatalf("MulAdd(%v, %v, %v) = %v, oracle %v", a, b, c, got, want.RatString())
		}
		checkInvariant(t, got, "MulAdd")
		if want.Num().IsInt64() && want.Denom().IsInt64() &&
			want.Num().Int64() != math.MinInt64 &&
			want.Denom().Int64() != math.MinInt64 && !got.IsSmall() {
			t.Fatalf("MulAdd(%v, %v, %v): value %v fits int64 but stayed big",
				a, b, c, want.RatString())
		}
	}
}

// TestMulAddEscapedIntermediate pins the motivating case explicitly: the
// product overflows the small form, the sum cancels back into range, and
// the fused form still lands small.
func TestMulAddEscapedIntermediate(t *testing.T) {
	b := FromInt(3037000500) // > √MaxInt64: b·b overflows int64
	prod := b.Mul(b)
	if prod.IsSmall() {
		t.Fatal("test operand no longer overflows; pick a larger one")
	}
	a := prod.Neg().Add(One).Reduce()
	got := MulAdd(a, b, b) // a + b² = 1
	if !got.Equal(One) {
		t.Fatalf("MulAdd = %v, want 1", got)
	}
	if !got.IsSmall() {
		t.Fatal("fused result stayed big despite fitting")
	}
}

// TestFromFracMinInt64 covers the one constructor edge the small form
// excludes: MinInt64 operands go through math/big, but the constructor
// still demotes when the reduced value fits (constructors demote; only
// arithmetic never does).
func TestFromFracMinInt64(t *testing.T) {
	cases := []struct {
		num, den int64
		want     string
		small    bool
	}{
		{math.MinInt64, 2, "-4611686018427387904", true},
		{math.MinInt64, math.MinInt64, "1", true},
		{2, math.MinInt64, "-1/4611686018427387904", true},
		{math.MinInt64, 1, "-9223372036854775808", false},
		{math.MinInt64, 3, "-9223372036854775808/3", false},
		{1, math.MinInt64, "-1/9223372036854775808", false},
	}
	for _, c := range cases {
		r := FromFrac(c.num, c.den)
		checkInvariant(t, r, "FromFrac")
		if r.String() != c.want || r.IsSmall() != c.small {
			t.Errorf("FromFrac(%d, %d) = %v (small=%v), want %v (small=%v)",
				c.num, c.den, r, r.IsSmall(), c.want, c.small)
		}
		if want := big.NewRat(c.num, c.den); r.Big().Cmp(want) != 0 {
			t.Errorf("FromFrac(%d, %d) = %v, oracle %v", c.num, c.den, r, want.RatString())
		}
	}
}

// TestEscapeAndReduce walks a value across the escape boundary and back:
// squaring escapes to math/big, dividing the square root back out shrinks
// the value, and Reduce must then demote it to the small form again.
func TestEscapeAndReduce(t *testing.T) {
	a := FromFrac(math.MaxInt64/3, 1)
	sq := a.Mul(a)
	if sq.IsSmall() {
		t.Fatal("square of MaxInt64/3 cannot fit the small form")
	}
	back := sq.Div(a)
	if back.IsSmall() {
		t.Fatal("big operands must stay big until Reduce")
	}
	red := back.Reduce()
	if !red.IsSmall() {
		t.Fatalf("Reduce(%v) should demote", back)
	}
	if !red.Equal(a) || red.Big().Cmp(a.Big()) != 0 {
		t.Fatalf("Reduce changed the value: %v != %v", red, a)
	}
	// A value that genuinely does not fit must survive Reduce unchanged.
	huge := sq.Mul(sq)
	if r := huge.Reduce(); r.IsSmall() || r.Big().Cmp(huge.Big()) != 0 {
		t.Fatalf("Reduce must not demote %v", huge)
	}
}

// TestSmallOpsDoNotAllocate is the point of the representation: arithmetic
// that stays within the small form performs no heap allocation.
func TestSmallOpsDoNotAllocate(t *testing.T) {
	a, b := FromFrac(355, 113), FromFrac(-22, 7)
	var sink Rat
	allocs := testing.AllocsPerRun(100, func() {
		sink = a.Add(b).Mul(a).Sub(b).Div(a).Neg()
		if sink.Cmp(b) == 0 {
			t.Fatal("unexpected equality")
		}
	})
	if allocs != 0 {
		t.Fatalf("small-regime arithmetic allocates %.1f objects/op, want 0", allocs)
	}
}

// TestFromFloatSmallForm checks which floats land in the small form, and
// that the round trip through Float is exact on both sides of the escape
// boundary.
func TestFromFloatSmallForm(t *testing.T) {
	cases := []struct {
		f     float64
		small bool
	}{
		{0, true},
		{1, true},
		{-1, true},
		{0.5, true},
		{0.1, true},                 // 3602879701896397 / 2^55, both fit
		{0.1 + 0.2, true},           // 1351079888211149 / 2^52
		{1.5e15, true},              // integral, fits int64
		{math.Ldexp(1, 62), true},   // 2^62
		{math.Ldexp(1, 63), false},  // 2^63 overflows int64
		{math.Ldexp(1, -62), true},  // den 2^62
		{math.Ldexp(1, -63), false}, // den 2^63 overflows
		{math.Ldexp(3, -62), true},  // 3 / 2^62
		{1e300, false},              // magnitude far beyond int64
		{5e-324, false},             // subnormal, den 2^1074
		{math.MaxFloat64, false},
		{math.SmallestNonzeroFloat64, false},
	}
	for _, c := range cases {
		r := FromFloat(c.f)
		checkInvariant(t, r, "FromFloat")
		if r.IsSmall() != c.small {
			t.Errorf("FromFloat(%g).IsSmall() = %v, want %v", c.f, r.IsSmall(), c.small)
		}
		if got := r.Float(); got != c.f {
			t.Errorf("FromFloat(%g).Float() = %g, round trip broken", c.f, got)
		}
		// Whatever the form, the value must equal the big.Rat reference.
		if want := new(big.Rat).SetFloat64(c.f); r.Big().Cmp(want) != 0 {
			t.Errorf("FromFloat(%g) = %v, oracle %v", c.f, r, want.RatString())
		}
	}
}

// TestFromFloatRandomRoundTrip hammers the FromFloat/Float round trip with
// random floats across the full exponent range.
func TestFromFloatRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50000; i++ {
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		r := FromFloat(f)
		checkInvariant(t, r, "FromFloat")
		if got := r.Float(); got != f {
			t.Fatalf("round trip %v -> %v (bits %x)", f, got, math.Float64bits(f))
		}
		if want := new(big.Rat).SetFloat64(f); r.Big().Cmp(want) != 0 {
			t.Fatalf("FromFloat(%v) = %v, oracle %v", f, r, want.RatString())
		}
	}
}

// TestMixedRepresentationEquality: the same value reached through the
// small and the big form must compare equal and hash to the same string.
func TestMixedRepresentationEquality(t *testing.T) {
	small := FromFrac(22, 7)
	big1, err := Parse("22/7")
	if err != nil {
		t.Fatal(err)
	}
	forcedBig := FromFrac(44, 1).Div(FromInt(14)) // small path, still 22/7
	viaEscape := FromFrac(22, 7).Mul(FromFrac(math.MaxInt64/2, 1)).
		Div(FromFrac(math.MaxInt64/2, 1)) // escapes, stays big
	if viaEscape.IsSmall() {
		t.Fatal("expected an escaped representation")
	}
	for _, v := range []Rat{big1, forcedBig, viaEscape} {
		if !small.Equal(v) || small.Cmp(v) != 0 || v.Cmp(small) != 0 {
			t.Fatalf("22/7 relatives are unequal: %v vs %v", small, v)
		}
		if v.String() != "22/7" {
			t.Fatalf("String() = %q, want 22/7", v.String())
		}
	}
}

// FuzzRatDifferential is the fuzzing entry point of the differential
// oracle: operands assembled from raw int64 fuzz input are run through
// every operation on all three representations. The raw pair sits at the
// small/medium escape boundary; its square (up to ~126-bit magnitudes)
// sits at the medium/big boundary, and its cube lands in the big form —
// so every tier pairing, including the mixed ones, is fuzzed against the
// pure big.Rat oracle.
func FuzzRatDifferential(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3), int64(4))
	f.Add(int64(math.MaxInt64), int64(math.MaxInt64-1), int64(-math.MaxInt64), int64(2))
	f.Add(int64(3037000499), int64(3037000500), int64(1)<<62, int64(7))
	f.Add(int64(0), int64(1), int64(0), int64(-1))
	// Boundary-clustered seeds: squares of these land against 2^126 and
	// their cross products straddle the 128-bit medium/big edge.
	f.Add(int64(math.MaxInt64), int64(1)<<62, int64(math.MaxInt64-1), int64(math.MaxInt64))
	f.Add(int64(1)<<62, int64(3), int64(-(int64(1) << 62)), int64(math.MaxInt64))
	f.Fuzz(func(t *testing.T, an, ad, bn, bd int64) {
		if ad == 0 || bd == 0 || an == math.MinInt64 || ad == math.MinInt64 ||
			bn == math.MinInt64 || bd == math.MinInt64 {
			return
		}
		a, b := FromFrac(an, ad), FromFrac(bn, bd)
		pairs := [][2]Rat{
			{a, b},                      // small/small (or boundary)
			{a.Mul(a), b},               // medium-range vs raw
			{a, b.Mul(b)},               // raw vs medium-range
			{a.Mul(a), b.Mul(b)},        // medium vs medium
			{a.Mul(a).Mul(a), b.Mul(b)}, // big-range vs medium
		}
		for _, pr := range pairs {
			x, y := pr[0], pr[1]
			xb, yb := x.Big(), y.Big()
			for _, op := range oracles {
				if op.defOK != nil && !op.defOK(y) {
					continue
				}
				got := op.rat(x, y)
				if want := op.big(xb, yb); got.Big().Cmp(want) != 0 {
					t.Fatalf("%s(%v, %v) = %v, oracle %v", op.name, x, y, got, want.RatString())
				}
				checkInvariant(t, got, op.name)
			}
			if got, want := x.Cmp(y), xb.Cmp(yb); got != want {
				t.Fatalf("Cmp(%v, %v) = %d, oracle %d", x, y, got, want)
			}
			got := MulAdd(x, y, x)
			want := new(big.Rat).Mul(yb, xb)
			want.Add(want, xb)
			if got.Big().Cmp(want) != 0 {
				t.Fatalf("MulAdd(%v, %v, %v) = %v, oracle %v", x, y, x, got, want.RatString())
			}
			checkInvariant(t, got, "MulAdd")
		}
	})
}
