// Package trace analyses and renders schedule traces: ASCII Gantt charts,
// per-machine utilisation, and stretch distributions. It is the
// inspection toolkit for everything the engines in internal/sim produce —
// the paper's figures are aggregate, but debugging a scheduler (and
// understanding why MCT starves small jobs) needs the per-machine view.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"stretchsched/internal/model"
)

// Utilization summarises one machine's activity over a horizon.
type Utilization struct {
	Machine  model.MachineID
	Busy     float64 // seconds spent processing
	Horizon  float64 // end of the analysed window
	Fraction float64 // Busy / Horizon (0 if empty horizon)
}

// MachineUtilization computes per-machine busy time up to the schedule's
// makespan.
func MachineUtilization(inst *model.Instance, sched *model.Schedule) []Utilization {
	horizon := sched.Makespan(inst)
	m := inst.Platform.NumMachines()
	busy := make([]float64, m)
	for _, sl := range sched.Slices {
		busy[sl.Machine] += sl.Duration()
	}
	out := make([]Utilization, m)
	for i := range out {
		out[i] = Utilization{
			Machine: model.MachineID(i),
			Busy:    busy[i],
			Horizon: horizon,
		}
		if horizon > 0 {
			out[i].Fraction = busy[i] / horizon
		}
	}
	return out
}

// StretchDistribution holds order statistics of per-job stretches.
type StretchDistribution struct {
	Min, Median, P90, P99, Max float64
	Mean                       float64
}

// Stretches computes the distribution of per-job stretches of a schedule.
func Stretches(inst *model.Instance, sched *model.Schedule) StretchDistribution {
	n := inst.NumJobs()
	if n == 0 {
		return StretchDistribution{}
	}
	xs := make([]float64, n)
	sum := 0.0
	for j := 0; j < n; j++ {
		xs[j] = sched.Stretch(inst, model.JobID(j))
		sum += xs[j]
	}
	sort.Float64s(xs)
	q := func(p float64) float64 {
		idx := int(math.Ceil(p*float64(n))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		return xs[idx]
	}
	return StretchDistribution{
		Min:    xs[0],
		Median: q(0.5),
		P90:    q(0.9),
		P99:    q(0.99),
		Max:    xs[n-1],
		Mean:   sum / float64(n),
	}
}

// GanttOptions controls chart rendering.
type GanttOptions struct {
	Width int // characters for the time axis (default 72)
}

// Gantt renders a schedule as an ASCII chart, one row per machine. Each
// job is drawn with a stable letter (a-z, then A-Z, cycling); '.' is idle.
// Useful in examples and when eyeballing scheduler behaviour in tests.
func Gantt(inst *model.Instance, sched *model.Schedule, opts GanttOptions) string {
	width := opts.Width
	if width <= 0 {
		width = 72
	}
	horizon := sched.Makespan(inst)
	if horizon <= 0 {
		return "(empty schedule)\n"
	}
	m := inst.Platform.NumMachines()
	rows := make([][]byte, m)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, sl := range sched.Slices {
		lo := int(sl.Start / horizon * float64(width))
		hi := int(math.Ceil(sl.End / horizon * float64(width)))
		if hi > width {
			hi = width
		}
		if hi <= lo {
			hi = lo + 1 // visible dot for very short slices
			if hi > width {
				lo, hi = width-1, width
			}
		}
		for c := lo; c < hi; c++ {
			rows[sl.Machine][c] = jobGlyph(sl.Job)
		}
	}
	var b strings.Builder
	pad := (width - 14) / 2
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "t=0%stime axis%st=%.2fs\n",
		strings.Repeat(" ", pad), strings.Repeat(" ", pad), horizon)
	for i := 0; i < m; i++ {
		fmt.Fprintf(&b, "%-8s |%s|\n", machineLabel(inst, model.MachineID(i)), rows[i])
	}
	// Legend: job → glyph, completion, stretch.
	fmt.Fprintf(&b, "legend: ")
	for j := 0; j < inst.NumJobs(); j++ {
		if j > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%c=%s(×%.2f)", jobGlyph(model.JobID(j)),
			inst.Jobs[j].Name, sched.Stretch(inst, model.JobID(j)))
	}
	b.WriteString("\n")
	return b.String()
}

func jobGlyph(j model.JobID) byte {
	const lower = "abcdefghijklmnopqrstuvwxyz"
	const upper = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	k := int(j) % 52
	if k < 26 {
		return lower[k]
	}
	return upper[k-26]
}

func machineLabel(inst *model.Instance, i model.MachineID) string {
	name := inst.Platform.Machine(i).Name
	if name == "" {
		name = fmt.Sprintf("M%d", int(i)+1)
	}
	if len(name) > 8 {
		name = name[:8]
	}
	return name
}

// Summary renders a one-paragraph textual report of a schedule: the two
// stretch objectives, the flow metrics, the utilisation range and the
// stretch distribution.
func Summary(name string, inst *model.Instance, sched *model.Schedule) string {
	var b strings.Builder
	dist := Stretches(inst, sched)
	fmt.Fprintf(&b, "%s: max-stretch %.4f, sum-stretch %.2f, makespan %.2fs\n",
		name, sched.MaxStretch(inst), sched.SumStretch(inst), sched.Makespan(inst))
	fmt.Fprintf(&b, "  stretch distribution: min %.2f, median %.2f, p90 %.2f, p99 %.2f, max %.2f (mean %.2f)\n",
		dist.Min, dist.Median, dist.P90, dist.P99, dist.Max, dist.Mean)
	utils := MachineUtilization(inst, sched)
	lo, hi := 1.0, 0.0
	for _, u := range utils {
		lo = math.Min(lo, u.Fraction)
		hi = math.Max(hi, u.Fraction)
	}
	if len(utils) > 0 {
		fmt.Fprintf(&b, "  machine utilisation: %.0f%%–%.0f%% over %d machines\n",
			100*lo, 100*hi, len(utils))
	}
	return b.String()
}
