package trace

import (
	"math"
	"strings"
	"testing"

	"stretchsched/internal/model"
)

func demoSchedule(t *testing.T) (*model.Instance, *model.Schedule) {
	t.Helper()
	p, err := model.Uniform([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(p, []model.Job{
		{Name: "big", Release: 0, Size: 6, Databank: 0},
		{Name: "small", Release: 1, Size: 2, Databank: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := model.NewSchedule(inst)
	// big on both machines [0,1), then small on machine 1 [1,2), big
	// resumes: machine 0 the whole time.
	s.AddSlice(model.Slice{Machine: 0, Job: 0, Start: 0, End: 4}) // 4 units
	s.AddSlice(model.Slice{Machine: 1, Job: 0, Start: 0, End: 1}) // 2 units → big done at 4
	s.AddSlice(model.Slice{Machine: 1, Job: 1, Start: 1, End: 2}) // 2 units → small done at 2
	s.Completion[0] = 4
	s.Completion[1] = 2
	if err := s.Validate(inst, 0); err != nil {
		t.Fatal(err)
	}
	return inst, s
}

func TestMachineUtilization(t *testing.T) {
	inst, s := demoSchedule(t)
	utils := MachineUtilization(inst, s)
	if len(utils) != 2 {
		t.Fatal("utilisation rows")
	}
	if math.Abs(utils[0].Busy-4) > 1e-9 || math.Abs(utils[0].Fraction-1) > 1e-9 {
		t.Fatalf("machine 0: %+v", utils[0])
	}
	if math.Abs(utils[1].Busy-2) > 1e-9 || math.Abs(utils[1].Fraction-0.5) > 1e-9 {
		t.Fatalf("machine 1: %+v", utils[1])
	}
}

func TestStretchDistribution(t *testing.T) {
	inst, s := demoSchedule(t)
	d := Stretches(inst, s)
	// big: flow 4, alone 2 → stretch 2. small: flow 1, alone 2/3 → 1.5.
	if math.Abs(d.Min-1.5) > 1e-9 || math.Abs(d.Max-2) > 1e-9 {
		t.Fatalf("distribution: %+v", d)
	}
	if math.Abs(d.Mean-1.75) > 1e-9 {
		t.Fatalf("mean: %v", d.Mean)
	}
	if d.Median < d.Min || d.Median > d.Max || d.P90 < d.Median || d.P99 > d.Max+1e-12 {
		t.Fatalf("order statistics inconsistent: %+v", d)
	}
}

func TestStretchesEmpty(t *testing.T) {
	p, _ := model.Uniform([]float64{1})
	inst, err := model.NewInstance(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := Stretches(inst, model.NewSchedule(inst))
	if d.Max != 0 || d.Mean != 0 {
		t.Fatalf("empty: %+v", d)
	}
}

func TestGanttRendering(t *testing.T) {
	inst, s := demoSchedule(t)
	out := Gantt(inst, s, GanttOptions{Width: 40})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // axis + 2 machines + legend
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Machine 0 runs job 'a' for the full horizon: its row is all 'a'.
	if !strings.Contains(lines[1], strings.Repeat("a", 40)) {
		t.Fatalf("machine 0 row wrong:\n%s", out)
	}
	// Machine 1: 'a' for the first quarter, then 'b', then idle dots.
	if !strings.Contains(lines[2], "ab") || !strings.Contains(lines[2], ".") {
		t.Fatalf("machine 1 row wrong:\n%s", out)
	}
	if !strings.Contains(lines[3], "a=big") || !strings.Contains(lines[3], "b=small") {
		t.Fatalf("legend wrong:\n%s", out)
	}
}

func TestGanttEmptySchedule(t *testing.T) {
	p, _ := model.Uniform([]float64{1})
	inst, err := model.NewInstance(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out := Gantt(inst, model.NewSchedule(inst), GanttOptions{}); !strings.Contains(out, "empty") {
		t.Fatalf("empty render: %q", out)
	}
}

func TestGanttGlyphCycling(t *testing.T) {
	if jobGlyph(0) != 'a' || jobGlyph(25) != 'z' || jobGlyph(26) != 'A' ||
		jobGlyph(51) != 'Z' || jobGlyph(52) != 'a' {
		t.Fatal("glyph mapping broken")
	}
}

func TestSummaryContainsMetrics(t *testing.T) {
	inst, s := demoSchedule(t)
	out := Summary("demo", inst, s)
	for _, want := range []string{"max-stretch 2.0000", "sum-stretch 3.50", "utilisation"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
