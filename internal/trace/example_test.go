package trace_test

import (
	"fmt"
	"log"

	"stretchsched/internal/model"
	"stretchsched/internal/trace"
)

// ExampleGantt renders a tiny two-machine schedule.
func ExampleGantt() {
	platform, err := model.Uniform([]float64{1, 1})
	if err != nil {
		log.Fatal(err)
	}
	inst, err := model.NewInstance(platform, []model.Job{
		{Name: "big", Release: 0, Size: 6, Databank: 0},
		{Name: "small", Release: 0, Size: 2, Databank: 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	sched := model.NewSchedule(inst)
	sched.AddSlice(model.Slice{Machine: 0, Job: 0, Start: 0, End: 6})
	sched.AddSlice(model.Slice{Machine: 1, Job: 1, Start: 0, End: 2})
	sched.Completion[0] = 6
	sched.Completion[1] = 2
	fmt.Print(trace.Gantt(inst, sched, trace.GanttOptions{Width: 12}))
	// Output:
	// t=0 time axis t=6.00s
	// M1       |aaaaaaaaaaaa|
	// M2       |bbbb........|
	// legend: a=big(×2.00)  b=small(×2.00)
}

// ExampleStretches summarises the slowdown distribution of a schedule.
func ExampleStretches() {
	platform, err := model.Uniform([]float64{1})
	if err != nil {
		log.Fatal(err)
	}
	inst, err := model.NewInstance(platform, []model.Job{
		{Release: 0, Size: 2, Databank: 0},
		{Release: 0, Size: 2, Databank: 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	sched := model.NewSchedule(inst)
	sched.AddSlice(model.Slice{Machine: 0, Job: 0, Start: 0, End: 2})
	sched.AddSlice(model.Slice{Machine: 0, Job: 1, Start: 2, End: 4})
	sched.Completion[0] = 2
	sched.Completion[1] = 4
	d := trace.Stretches(inst, sched)
	fmt.Printf("min %.1f max %.1f mean %.2f\n", d.Min, d.Max, d.Mean)
	// Output:
	// min 1.0 max 2.0 mean 1.50
}
