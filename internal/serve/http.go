package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"

	"stretchsched/internal/model"
)

// maxBodyBytes bounds a submission body; a scheduler request is tiny.
const maxBodyBytes = 1 << 16

// httpError is the JSON error envelope of every typed rejection.
type httpError struct {
	Error struct {
		Code   string `json:"code"`
		Reason string `json:"reason"`
	} `json:"error"`
}

// status maps rejection codes to HTTP statuses.
func status(code string) int {
	switch code {
	case CodeDraining:
		return http.StatusServiceUnavailable
	case CodeDeadline:
		return http.StatusServiceUnavailable
	case CodeInvalid, CodeBadState:
		return http.StatusBadRequest
	case CodeUnknown:
		return http.StatusNotFound
	case CodePanic, CodePoisoned:
		// Not transient — no Retry-After: a poisoned loop stays poisoned
		// until the operator restarts or restores.
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}

// writeErr renders err as the typed JSON envelope. Non-Rejection errors
// become 500s with code "internal" — still typed, still visible.
func writeErr(w http.ResponseWriter, err error) {
	var rej *Rejection
	if !errors.As(err, &rej) {
		rej = &Rejection{Code: "internal", Reason: err.Error()}
	}
	var body httpError
	body.Error.Code = rej.Code
	body.Error.Reason = rej.Reason
	w.Header().Set("Content-Type", "application/json")
	st := status(rej.Code)
	if st == http.StatusServiceUnavailable {
		// Draining or loop-busy is transient; tell well-behaved clients when
		// to come back instead of letting them hammer the admission token.
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(st)
	_ = json.NewEncoder(w).Encode(body) // client gone; nothing left to report to
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Header already sent; the broken connection is the client's signal.
		_ = err
	}
}

// submitBody is the POST /jobs request document.
type submitBody struct {
	Name     string  `json:"name"`
	Size     float64 `json:"size"`
	Databank int     `json:"databank"`
	Release  float64 `json:"release"`
}

// Handler returns the daemon's HTTP API:
//
//	POST /jobs        submit a job            → {seq, slot, release}
//	GET  /jobs/{seq}  one job's state         → JobState
//	GET  /schedule    current placement       → Schedule
//	GET  /metrics     Prometheus text
//	POST /checkpoint  deterministic state     → Checkpoint JSON
//
// Every refusal is a typed JSON error envelope; nothing is dropped
// silently.
func (l *Loop) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, reject(CodeInvalid, "method %s on /jobs; POST submits", r.Method))
			return
		}
		b, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
		if err != nil {
			writeErr(w, reject(CodeInvalid, "reading body: %v", err))
			return
		}
		var sb submitBody
		if err := json.Unmarshal(b, &sb); err != nil {
			writeErr(w, reject(CodeInvalid, "parsing body: %v", err))
			return
		}
		res, err := l.Submit(SubmitRequest{
			Name: sb.Name, Size: sb.Size,
			Databank: model.DatabankID(sb.Databank), Release: sb.Release,
		})
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, map[string]any{"seq": res.Seq, "slot": res.Slot, "release": res.Release})
	})
	mux.HandleFunc("/jobs/", func(w http.ResponseWriter, r *http.Request) {
		seqStr := strings.TrimPrefix(r.URL.Path, "/jobs/")
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			writeErr(w, reject(CodeInvalid, "job id %q: %v", seqStr, err))
			return
		}
		st, err := l.Job(seq)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("/schedule", func(w http.ResponseWriter, r *http.Request) {
		sched, err := l.Schedule()
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, sched)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap, err := l.Snapshot()
		if err != nil {
			writeErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if _, err := io.WriteString(w, snap.Prometheus()); err != nil {
			_ = err // broken scrape connection; the scraper retries
		}
	})
	mux.HandleFunc("/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, reject(CodeInvalid, "method %s on /checkpoint; POST snapshots", r.Method))
			return
		}
		ck, err := l.Checkpoint()
		if err != nil {
			writeErr(w, err)
			return
		}
		b, err := ck.Encode()
		if err != nil {
			writeErr(w, err)
			return
		}
		if path := l.cfg.CheckpointPath; path != "" {
			// Server-side persistence: the checkpoint hits disk atomically
			// before the client sees it, so "I have the response" implies "the
			// daemon can crash now".
			if err := WriteFileAtomic(path, b, 0o644); err != nil {
				writeErr(w, err)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(b); err != nil {
			_ = err // client gone mid-download; state is unchanged
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, reject(CodeUnknown, "no route %s", r.URL.Path))
	})
	return mux
}
