package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"stretchsched/internal/core"
	"stretchsched/internal/model"
	"stretchsched/internal/offline"
	"stretchsched/internal/online"
	"stretchsched/internal/workload"
)

// testWorkload generates the small deterministic instance the serve tests
// replay: paper-shaped, with enough concurrency to exercise preemption.
func testWorkload(t testing.TB) *model.Instance {
	t.Helper()
	inst, err := workload.Config{
		Sites: 3, Databanks: 4, Availability: 0.6, Density: 0.7,
		Seed: 11, TargetJobs: 18,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// egdfExactConfig builds a serving config on the exact incremental path —
// the configuration whose checkpoint carries session state.
func egdfExactConfig(t testing.TB, inst *model.Instance, log io.Writer) Config {
	t.Helper()
	ws := offline.NewWorkspace()
	sched, err := core.New("Online-EGDF", core.WithWorkspace(ws))
	if err != nil {
		t.Fatal(err)
	}
	sched.(core.PolicyBacked).Policy().(*online.EGDF).Solver.Exact = true
	return Config{
		Platform: inst.Platform, Scheduler: sched, Workspace: ws,
		DecisionLog: log,
	}
}

func submitAll(t testing.TB, l *Loop, jobs []model.Job) {
	t.Helper()
	for _, j := range jobs {
		if _, err := l.Submit(SubmitRequest{
			Name: j.Name, Size: j.Size, Databank: j.Databank, Release: j.Release,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointRestoreDeterminism is the tentpole acceptance test: a
// daemon checkpointed mid-stream and restored in a fresh process image
// must produce a byte-identical decision log to the uninterrupted run —
// including the exact-mode session, whose warm state is never encoded
// (the restored session re-solves cold; warm ≡ cold in objective).
func TestCheckpointRestoreDeterminism(t *testing.T) {
	inst := testWorkload(t)
	jobs := inst.Jobs
	cut := len(jobs) / 2

	// Uninterrupted run.
	var logA bytes.Buffer
	loopA, err := New(egdfExactConfig(t, inst, &logA))
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, loopA, jobs)
	if err := loopA.Drain(); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: first half, checkpoint, discard the loop.
	var logB bytes.Buffer
	loopB, err := New(egdfExactConfig(t, inst, &logB))
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, loopB, jobs[:cut])
	ck, err := loopB.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Session == nil {
		t.Fatal("exact-mode checkpoint carries no session state")
	}

	// Restored run: decode from bytes (the full serialisation round trip),
	// fresh workspace and scheduler, replay the second half.
	dec, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	var logC bytes.Buffer
	loopC, err := Restore(egdfExactConfig(t, inst, &logC), dec)
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, loopC, jobs[cut:])
	if err := loopC.Drain(); err != nil {
		t.Fatal(err)
	}

	joined := logB.String() + logC.String()
	if joined != logA.String() {
		t.Fatalf("restored decision log diverged from uninterrupted run:\n--- uninterrupted ---\n%s\n--- interrupted+restored ---\n%s",
			firstDiff(logA.String(), joined), firstDiff(joined, logA.String()))
	}

	// The restored daemon's own metrics must agree with the uninterrupted
	// run's (same completions, same quantile stream).
	sa, err := loopA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := loopC.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sa.StretchMax != sc.StretchMax || sa.StretchP99 != sc.StretchP99 ||
		sa.Counters.CompletedN != sc.Counters.CompletedN {
		t.Fatalf("restored metrics diverged: max %v vs %v, p99 %v vs %v, completed %d vs %d",
			sa.StretchMax, sc.StretchMax, sa.StretchP99, sc.StretchP99,
			sa.Counters.CompletedN, sc.Counters.CompletedN)
	}
}

// firstDiff returns a window around the first differing line.
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := range la {
		if i >= len(lb) || la[i] != lb[i] {
			lo := i - 2
			if lo < 0 {
				lo = 0
			}
			hi := i + 3
			if hi > len(la) {
				hi = len(la)
			}
			return fmt.Sprintf("line %d:\n%s", i+1, strings.Join(la[lo:hi], "\n"))
		}
	}
	return a
}

// fakeClock is a test Clock settable from the test goroutine while HTTP
// handlers read it from the server's.
type fakeClock struct {
	mu sync.Mutex
	t  float64
}

func (c *fakeClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Set(t float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = t
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(b, out); err != nil {
			t.Fatalf("parsing %s: %v\n%s", url, err, b)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(b, out); err != nil {
			t.Fatalf("parsing %s response: %v\n%s", url, err, b)
		}
	}
	return resp.StatusCode
}

// TestHTTPFakeClock drives arrivals and completions over the HTTP API
// against a fake wall clock: jobs complete exactly when the clock passes
// their predicted completion instants.
func TestHTTPFakeClock(t *testing.T) {
	p, err := model.Uniform([]float64{2})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.New("SWRPT")
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{}
	loop, err := New(Config{Platform: p, Scheduler: sched, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(loop.Handler())
	defer srv.Close()

	var sub struct {
		Seq  uint64 `json:"seq"`
		Slot int    `json:"slot"`
	}
	if code := postJSON(t, srv.URL+"/jobs", `{"name":"a","size":4,"databank":0}`, &sub); code != 200 {
		t.Fatalf("POST /jobs = %d", code)
	}
	if sub.Seq != 0 {
		t.Fatalf("first seq = %d", sub.Seq)
	}
	if code := postJSON(t, srv.URL+"/jobs", `{"name":"b","size":2,"databank":0}`, nil); code != 200 {
		t.Fatal("second submit failed")
	}

	var sched1 Schedule
	if code := getJSON(t, srv.URL+"/schedule", &sched1); code != 200 {
		t.Fatalf("GET /schedule = %d", code)
	}
	if len(sched1.Active) != 2 {
		t.Fatalf("active = %d, want 2", len(sched1.Active))
	}

	// Job b (size 2, SWRPT prefers it) runs first at speed 2 → done at t=1;
	// then a (size 4) → done at t=3. Advance past b only.
	clk.Set(2)
	var jb JobState
	if code := getJSON(t, srv.URL+"/jobs/1", &jb); code != 200 {
		t.Fatalf("GET /jobs/1 = %d", code)
	}
	if jb.State != "completed" || jb.Completion != 1 {
		t.Fatalf("job b = %+v, want completed at 1", jb)
	}
	var ja JobState
	if code := getJSON(t, srv.URL+"/jobs/0", &ja); code != 200 {
		t.Fatal("GET /jobs/0 failed")
	}
	if ja.State != "active" {
		t.Fatalf("job a = %+v, want active", ja)
	}

	clk.Set(5)
	if getJSON(t, srv.URL+"/jobs/0", &ja); ja.State != "completed" || ja.Completion != 3 {
		t.Fatalf("job a = %+v, want completed at 3", ja)
	}

	// Metrics reflect both completions.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(mb), "stretchd_jobs_completed_total 2") {
		t.Fatalf("metrics missing completion count:\n%s", mb)
	}

	// Typed rejections: invalid job, unknown job, bad route.
	var he httpError
	if code := postJSON(t, srv.URL+"/jobs", `{"size":-1}`, &he); code != 400 || he.Error.Code != CodeInvalid {
		t.Fatalf("invalid submit: code=%d err=%+v", code, he)
	}
	if code := getJSON(t, srv.URL+"/jobs/99", &he); code != 404 || he.Error.Code != CodeUnknown {
		t.Fatalf("unknown job: code=%d err=%+v", code, he)
	}
	if code := getJSON(t, srv.URL+"/nope", &he); code != 404 {
		t.Fatalf("bad route: code=%d", code)
	}

	// Checkpoint over HTTP parses and round-trips.
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/checkpoint", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != 200 {
		t.Fatalf("POST /checkpoint = %d: %s", cresp.StatusCode, cb)
	}
	if _, err := DecodeCheckpoint(cb); err != nil {
		t.Fatal(err)
	}
}

// TestDrainRejectsAndCompletes: drain finishes pending work and later
// submissions get the typed draining rejection, counted in metrics.
func TestDrainRejectsAndCompletes(t *testing.T) {
	p, err := model.Uniform([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.New("FCFS")
	if err != nil {
		t.Fatal(err)
	}
	loop, err := New(Config{Platform: p, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loop.Submit(SubmitRequest{Size: 3}); err != nil {
		t.Fatal(err)
	}
	if err := loop.Drain(); err != nil {
		t.Fatal(err)
	}
	_, err = loop.Submit(SubmitRequest{Size: 1})
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Code != CodeDraining {
		t.Fatalf("post-drain submit error = %v, want %s", err, CodeDraining)
	}
	snap, err := loop.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters.CompletedN != 1 || snap.Active != 0 {
		t.Fatalf("after drain: completed=%d active=%d", snap.Counters.CompletedN, snap.Active)
	}
	if snap.Counters.Rejected[CodeDraining] != 1 {
		t.Fatalf("draining rejections = %d, want 1", snap.Counters.Rejected[CodeDraining])
	}
}

// failWriter fails after n writes.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

// TestDecisionLogErrorsSurface: a failing decision-log sink must turn the
// drain into a typed error — write failures are never swallowed.
func TestDecisionLogErrorsSurface(t *testing.T) {
	p, err := model.Uniform([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.New("FCFS")
	if err != nil {
		t.Fatal(err)
	}
	loop, err := New(Config{Platform: p, Scheduler: sched, DecisionLog: &failWriter{n: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loop.Submit(SubmitRequest{Size: 2}); err != nil {
		t.Fatal(err)
	}
	err = loop.Drain()
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Code != CodeLogWrite {
		t.Fatalf("drain with failing log = %v, want %s", err, CodeLogWrite)
	}
}
