package serve

import (
	"fmt"
	"sort"
	"strings"
)

// Prometheus renders the snapshot in Prometheus text exposition format
// 0.0.4. Output ordering is deterministic: fixed metric order, sorted
// label values.
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, ftoa(v))
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("stretchd_now_seconds", "Virtual scheduler time.", s.Now)
	gauge("stretchd_jobs_active", "Jobs admitted and not yet completed.", float64(s.Active))
	counter("stretchd_jobs_submitted_total", "Jobs admitted.", s.Counters.Submitted)
	counter("stretchd_jobs_completed_total", "Jobs completed.", s.Counters.CompletedN)
	counter("stretchd_events_total", "Arrival and completion events processed.", s.Counters.Events)
	counter("stretchd_checkpoints_total", "Checkpoints taken.", s.Counters.Checkpoints)
	counter("stretchd_decision_log_errors_total", "Decision-log write errors (drain fails when nonzero).", uint64(s.LogErrs))
	counter("stretchd_loop_panics_total", "Panics recovered inside loop entry points (the loop survives; each returns a typed 500).", s.Counters.Panics)
	poisoned := 0.0
	if s.Poisoned {
		poisoned = 1
	}
	gauge("stretchd_loop_poisoned", "Loop poisoned by a recovered panic: mutations refused until restart/restore.", poisoned)
	if s.Fallback != "" {
		degraded := 0.0
		if s.Degraded {
			degraded = 1
		}
		gauge("stretchd_degraded", "Backlog guard in degraded mode (1) or normal mode (0).", degraded)
		counter("stretchd_policy_switches_total", "Backlog-guard policy switches, both directions.", s.Counters.Switches)
	}

	fmt.Fprintf(&b, "# HELP stretchd_rejections_total Typed request rejections by code.\n# TYPE stretchd_rejections_total counter\n")
	codes := make([]string, 0, len(s.Counters.Rejected))
	for c := range s.Counters.Rejected {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, "stretchd_rejections_total{code=%q} %d\n", c, s.Counters.Rejected[c])
	}

	quant := func(metric, help string, p50, p90, p99, mean, max float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", metric, help, metric)
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %s\n", metric, ftoa(p50))
		fmt.Fprintf(&b, "%s{quantile=\"0.9\"} %s\n", metric, ftoa(p90))
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %s\n", metric, ftoa(p99))
		fmt.Fprintf(&b, "%s_mean %s\n", metric, ftoa(mean))
		fmt.Fprintf(&b, "%s_max %s\n", metric, ftoa(max))
	}
	quant("stretchd_stretch", "Stretch of completed jobs (P2 streaming quantiles).",
		s.StretchP50, s.StretchP90, s.StretchP99, s.StretchMean, s.StretchMax)
	quant("stretchd_flow_seconds", "Flow time of completed jobs (P2 streaming quantiles).",
		s.FlowP50, s.FlowP90, s.FlowP99, s.FlowMean, s.FlowMax)

	// Solver-stack diagnostics from the unified core.Stats snapshot.
	names := make([]string, 0, len(s.Solver.Solve))
	for n := range s.Solver.Solve {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "# HELP stretchd_solve_failures_total Per-event solver failures (fallbacks) by scheduler and step.\n# TYPE stretchd_solve_failures_total counter\n")
	for _, n := range names {
		ss := s.Solver.Solve[n]
		fmt.Fprintf(&b, "stretchd_solve_failures_total{scheduler=%q,step=\"stretch\"} %d\n", n, ss.StretchErrs)
		fmt.Fprintf(&b, "stretchd_solve_failures_total{scheduler=%q,step=\"refine\"} %d\n", n, ss.RefineErrs)
	}
	if s.Solver.HasIncremental {
		inc := s.Solver.Incremental
		fmt.Fprintf(&b, "# HELP stretchd_solver_solves_total Incremental-session solves by kind.\n# TYPE stretchd_solver_solves_total counter\n")
		fmt.Fprintf(&b, "stretchd_solver_solves_total{kind=\"warm\"} %d\n", inc.Warm)
		fmt.Fprintf(&b, "stretchd_solver_solves_total{kind=\"cold\"} %d\n", inc.Cold)
		fmt.Fprintf(&b, "stretchd_solver_solves_total{kind=\"fallback\"} %d\n", inc.Fallback)
	}
	if s.Solver.HasTiers {
		ops := s.Solver.Tiers.Ops
		fmt.Fprintf(&b, "# HELP stretchd_rational_ops_total Exact-arithmetic operations by representation tier.\n# TYPE stretchd_rational_ops_total counter\n")
		tiers := [3]string{"small", "medium", "big"}
		for i, t := range tiers {
			fmt.Fprintf(&b, "stretchd_rational_ops_total{tier=%q} %d\n", t, ops[i])
		}
	}
	return b.String()
}
