// Package serve is the long-running scheduler daemon behind cmd/stretchd:
// a single event loop over the library's online scheduling stack (a
// core-constructed policy on a sim.Driver over a model.Stream), admitting
// job submissions, emitting placement and preemption decisions at every
// arrival and completion, and keeping bounded-memory accounting of
// completed jobs (ring-buffer recents plus P² streaming quantiles).
//
// The loop is deterministic by construction: virtual time advances only to
// event instants, completions are committed at exactly the predicted
// instants (ties by lowest slot), and every decision is appended to a
// decision log whose byte content a checkpoint-restored daemon reproduces
// exactly (see Checkpoint). Determinism rests on the PR 7 invariant that
// warm-started incremental solves are bit-identical in objective to cold
// solves: the decision-relevant output of the per-event re-optimisation is
// the optimal stretch (the LP objective), so a restored session re-solving
// cold takes identical decisions without the basis ever being encoded.
package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"stretchsched/internal/core"
	"stretchsched/internal/model"
	"stretchsched/internal/offline"
	"stretchsched/internal/sim"
	"stretchsched/internal/stats"
)

// Rejection is the typed refusal the daemon returns instead of silently
// dropping work — the serving counterpart of the noswallow discipline.
type Rejection struct {
	Code   string // stable machine-readable reason
	Reason string // human detail
}

// Rejection codes.
const (
	CodeDraining  = "draining"
	CodeDeadline  = "deadline_exceeded"
	CodeInvalid   = "invalid_job"
	CodeUnknown   = "unknown_job"
	CodeBadState  = "bad_checkpoint"
	CodeLogWrite  = "log_write"
	CodeExhausted = "drain_stalled"
	CodePanic     = "loop_panic"
	CodePoisoned  = "loop_poisoned"
)

func (r *Rejection) Error() string { return fmt.Sprintf("serve: %s: %s", r.Code, r.Reason) }

func reject(code, format string, args ...any) *Rejection {
	return &Rejection{Code: code, Reason: fmt.Sprintf(format, args...)}
}

// Clock supplies the daemon's notion of "now" in wall-clock mode. The
// default (nil) is the event clock: time advances only to submission
// releases and predicted completions, which is what replay, benchmarks and
// the determinism tests use.
type Clock interface {
	Now() float64
}

// Config assembles a Loop.
type Config struct {
	Platform    *model.Platform
	Scheduler   core.Scheduler     // must be core.PolicyBacked (list policies serve; planners do not)
	Workspace   *offline.Workspace // the scheduler's workspace; feeds /metrics and checkpoints
	Clock       Clock              // nil = virtual event clock
	Deadline    time.Duration      // per-request admission deadline (0 = 2s default)
	RecentCap   int                // completed-job ring capacity (0 = 1024)
	DecisionLog io.Writer          // decision sink; nil discards

	// BacklogThreshold arms the backlog guard: at every decision instant
	// where the active set exceeds it, the loop schedules with the cheap
	// Fallback policy instead of the configured scheduler, reverting as soon
	// as the backlog is back within bounds. Degraded mode is a pure function
	// of the current active count — no hysteresis state — so a restored
	// daemon recomputes it instead of trusting the checkpoint. 0 disables.
	BacklogThreshold int
	// Fallback is the guard's degraded-mode scheduler; it must be
	// policy-backed. Nil defaults to SWRPT.
	Fallback core.Scheduler

	// CheckpointPath, when non-empty, makes POST /checkpoint persist the
	// encoded checkpoint to this path (atomic temp+rename write) before
	// returning it — the crash-safe server-side variant of client-side
	// checkpoint capture.
	CheckpointPath string
}

// defaultDeadline bounds how long a request may wait for the loop.
const defaultDeadline = 2 * time.Second

// Completed is the bounded-memory record of a finished job.
type Completed struct {
	Seq        uint64
	Name       string
	Release    float64
	Size       float64
	Databank   model.DatabankID
	Completion float64
	Flow       float64
	Stretch    float64
}

// Counters are the daemon's monotone event counters.
type Counters struct {
	Submitted   uint64
	CompletedN  uint64
	Events      uint64
	Checkpoints uint64
	Switches    uint64            // backlog-guard policy switches (both directions)
	Panics      uint64            // panics recovered in loop entry points
	Rejected    map[string]uint64 // by rejection code
}

// Loop is the daemon state machine. All state is owned by whichever
// goroutine holds the admission token (a one-slot channel used as a lock
// with deadline), so handlers time out with a typed rejection instead of
// queueing unboundedly.
type Loop struct {
	cfg    Config
	name   string
	pol    sim.Policy
	stream *model.Stream
	drv    *sim.Driver

	fbName   string     // backlog-guard fallback policy name ("" = guard off)
	fbPol    sim.Policy // fallback policy instance
	degraded bool       // last evaluated guard mode

	tok chan struct{} // one-slot admission token

	seq      uint64                 // next daemon job sequence number
	slotSeq  []uint64               // slot → daemon sequence of its live job
	activeAt map[uint64]model.JobID // daemon sequence → slot, live jobs only

	recents *stats.Ring[Completed]
	qs      quantiles // stretch
	qf      quantiles // flow time

	counters Counters
	draining bool
	poisoned bool // a recovered panic may have left half-applied state

	logw       io.Writer
	logErrs    int
	lastLogErr error
	logBuf     []byte
	logLines   uint64 // decision lines emitted; checkpoints attest this count
}

// quantiles bundles the streaming estimators of one metric.
type quantiles struct {
	p50, p90, p99 *stats.P2Quantile
	sum, max      float64
	n             uint64
}

func newQuantiles() quantiles {
	return quantiles{
		p50: stats.NewP2Quantile(0.5),
		p90: stats.NewP2Quantile(0.9),
		p99: stats.NewP2Quantile(0.99),
	}
}

func (q *quantiles) add(x float64) {
	q.p50.Add(x)
	q.p90.Add(x)
	q.p99.Add(x)
	q.sum += x
	if q.n == 0 || x > q.max {
		q.max = x
	}
	q.n++
}

func (q *quantiles) mean() float64 {
	if q.n == 0 {
		return 0
	}
	return q.sum / float64(q.n)
}

// New builds a loop from cfg. The scheduler must be policy-backed: the
// daemon drives the greedy spatial rule itself and has no use for planner
// timetables it cannot re-enter mid-interval.
func New(cfg Config) (*Loop, error) {
	if cfg.Platform == nil {
		return nil, fmt.Errorf("serve: config needs a platform")
	}
	pb, ok := cfg.Scheduler.(core.PolicyBacked)
	if !ok {
		name := "<nil>"
		if cfg.Scheduler != nil {
			name = cfg.Scheduler.Name()
		}
		return nil, fmt.Errorf("serve: scheduler %s is not policy-backed; the daemon serves list policies", name)
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = defaultDeadline
	}
	if cfg.RecentCap <= 0 {
		cfg.RecentCap = 1024
	}
	l := &Loop{
		cfg:      cfg,
		name:     cfg.Scheduler.Name(),
		pol:      pb.Policy(),
		stream:   model.NewStream(cfg.Platform),
		tok:      make(chan struct{}, 1),
		activeAt: map[uint64]model.JobID{},
		recents:  stats.NewRing[Completed](cfg.RecentCap),
		qs:       newQuantiles(),
		qf:       newQuantiles(),
		logw:     cfg.DecisionLog,
	}
	l.counters.Rejected = map[string]uint64{}
	l.drv = sim.NewDriver(l.stream.Instance())
	l.pol.Init(l.stream.Instance())
	if cfg.BacklogThreshold > 0 {
		fb := cfg.Fallback
		if fb == nil {
			def, err := core.New("SWRPT")
			if err != nil {
				return nil, fmt.Errorf("serve: building default fallback: %w", err)
			}
			fb = def
		}
		fpb, ok := fb.(core.PolicyBacked)
		if !ok {
			return nil, fmt.Errorf("serve: fallback scheduler %s is not policy-backed", fb.Name())
		}
		if fb.Name() == l.name {
			return nil, fmt.Errorf("serve: fallback scheduler %s is the primary scheduler; the guard would be a no-op", fb.Name())
		}
		l.fbName = fb.Name()
		l.fbPol = fpb.Policy()
		l.fbPol.Init(l.stream.Instance())
	}
	l.tok <- struct{}{}
	return l, nil
}

// guardMode reports whether the backlog guard calls for degraded mode at
// this instant — a pure function of the live active count, so restored
// daemons recompute it rather than decode it.
func (l *Loop) guardMode() bool {
	return l.cfg.BacklogThreshold > 0 && l.drv.NumActive() > l.cfg.BacklogThreshold
}

// activePolicy evaluates the guard at a decision instant, counting and
// logging mode transitions, and returns the policy this decision must use.
func (l *Loop) activePolicy() sim.Policy {
	if want := l.guardMode(); want != l.degraded {
		l.degraded = want
		l.counters.Switches++
		mode, pol := "normal", l.name
		if want {
			mode, pol = "degraded", l.fbName
		}
		l.logf("guard t=%s mode=%s policy=%s active=%d threshold=%d",
			ftoa(l.drv.Now()), mode, pol, l.drv.NumActive(), l.cfg.BacklogThreshold)
	}
	if l.degraded {
		return l.fbPol
	}
	return l.pol
}

// acquire takes the admission token within d, or returns the typed
// deadline rejection. Callers must release() on every success path.
func (l *Loop) acquire(d time.Duration) error {
	if d <= 0 {
		d = l.cfg.Deadline
	}
	select {
	case <-l.tok:
		return nil
	default:
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-l.tok:
		return nil
	case <-t.C:
		// Counters are owned by the token holder, which this goroutine never
		// became — the rejection is typed and returned, not tallied.
		return reject(CodeDeadline, "loop busy for %v", d)
	}
}

func (l *Loop) release() { l.tok <- struct{}{} }

// recoverPanic converts a panic inside a loop entry point into a typed
// 500 rejection instead of killing the daemon: the panic is counted,
// logged as a decision-stream event, and the caller's error is replaced.
// It must be deferred AFTER the release defer, so it runs first and the
// token is returned with the loop's state settled.
//
// A panic may have unwound mid-mutation (slot added but sequence
// bookkeeping not yet applied, completion committed but not logged), so
// the loop is poisoned: every subsequent mutating entry point — Submit,
// Drain, Checkpoint — is refused with CodePoisoned until the operator
// restarts or restores from the last good checkpoint. Read paths keep
// serving (with the clock frozen) so /metrics can report the poisoning.
func (l *Loop) recoverPanic(err *error) {
	rec := recover()
	if rec == nil {
		return
	}
	l.poisoned = true
	l.counters.Panics++
	l.countReject(CodePanic)
	l.logf("panic t=%s n=%d: %v", ftoa(l.drv.Now()), l.counters.Panics, rec)
	*err = reject(CodePanic, "recovered: %v", rec)
}

// checkPoisoned refuses a mutating entry point on a poisoned loop. The
// caller must hold the token.
func (l *Loop) checkPoisoned() error {
	if !l.poisoned {
		return nil
	}
	l.countReject(CodePoisoned)
	return reject(CodePoisoned, "a recovered panic left the loop state suspect; restart or restore from the last checkpoint")
}

// SubmitRequest is one job submission.
type SubmitRequest struct {
	Name     string
	Size     float64
	Databank model.DatabankID
	Release  float64 // virtual release; clamped to ≥ now (event clock)
}

// SubmitResult acknowledges an admitted job.
type SubmitResult struct {
	Seq     uint64
	Slot    model.JobID
	Release float64
}

// Submit admits one job: the loop advances virtual time to the effective
// release (committing any completions due before it), assigns a stream
// slot, logs the arrival, and replans.
func (l *Loop) Submit(req SubmitRequest) (res SubmitResult, err error) {
	if err := l.acquire(0); err != nil {
		return SubmitResult{}, err
	}
	defer l.release()
	defer l.recoverPanic(&err)
	if err := l.checkPoisoned(); err != nil {
		return SubmitResult{}, err
	}
	if l.draining {
		l.countReject(CodeDraining)
		return SubmitResult{}, reject(CodeDraining, "daemon is draining")
	}
	l.syncClock()
	rel := req.Release
	if rel < l.drv.Now() {
		rel = l.drv.Now()
	}
	if err := l.advanceTo(rel); err != nil {
		return SubmitResult{}, err
	}
	id, err := l.stream.Add(model.Job{
		Name:     req.Name,
		Release:  rel,
		Size:     req.Size,
		Databank: req.Databank,
	})
	if err != nil {
		l.countReject(CodeInvalid)
		return SubmitResult{}, reject(CodeInvalid, "%v", err)
	}
	seq := l.seq
	l.seq++
	for int(id) >= len(l.slotSeq) {
		l.slotSeq = append(l.slotSeq, 0)
	}
	l.slotSeq[id] = seq
	l.activeAt[seq] = id
	l.drv.Arrive(id, req.Size)
	l.counters.Submitted++
	l.counters.Events++
	l.logf("arrive t=%s seq=%d slot=%d size=%s bank=%d",
		ftoa(rel), seq, id, ftoa(req.Size), req.Databank)
	l.replan()
	return SubmitResult{Seq: seq, Slot: id, Release: rel}, nil
}

// syncClock advances to the wall clock in wall-clock mode. A poisoned
// loop's clock is frozen: advancing commits completions, which is a
// mutation the poison gate must not let read paths smuggle in.
func (l *Loop) syncClock() {
	if l.cfg.Clock == nil || l.poisoned {
		return
	}
	if t := l.cfg.Clock.Now(); t > l.drv.Now() {
		// Clock regressions are ignored; time is monotone.
		_ = l.advanceTo(t)
	}
}

// advanceTo moves virtual time to t, committing every completion predicted
// before it (ties by lowest slot, one replan per completion).
func (l *Loop) advanceTo(t float64) error {
	for {
		id, at, ok := l.drv.NextCompletion()
		if !ok || at > t {
			break
		}
		dt := at - l.drv.Now()
		if dt < 0 {
			dt = 0
		}
		l.drv.Advance(dt)
		if err := l.complete(id); err != nil {
			return err
		}
		l.replan()
	}
	if t > l.drv.Now() {
		l.drv.Advance(t - l.drv.Now())
	}
	return nil
}

// complete retires slot id at the current instant.
func (l *Loop) complete(id model.JobID) error {
	j := l.stream.Instance().Jobs[id]
	now := l.drv.Now()
	flow := now - j.Release
	alone := l.stream.Instance().AloneTime(id)
	stretch := flow / alone
	seq := l.slotSeq[id]
	rec := Completed{
		Seq: seq, Name: j.Name, Release: j.Release, Size: j.Size,
		Databank: j.Databank, Completion: now, Flow: flow, Stretch: stretch,
	}
	l.drv.Complete(id)
	if err := l.stream.Remove(id); err != nil {
		return fmt.Errorf("serve: completing slot %d: %w", id, err)
	}
	delete(l.activeAt, seq)
	l.recents.Push(rec)
	l.qs.add(stretch)
	l.qf.add(flow)
	l.counters.CompletedN++
	l.counters.Events++
	l.logf("complete t=%s seq=%d slot=%d flow=%s stretch=%s",
		ftoa(now), seq, id, ftoa(flow), ftoa(stretch))
	return nil
}

// replan runs one decision step and logs the resulting placement.
func (l *Loop) replan() {
	if l.drv.NumActive() == 0 {
		l.logf("plan t=%s idle", ftoa(l.drv.Now()))
		return
	}
	l.drv.Replan(l.activePolicy())
	var b strings.Builder
	b.WriteString("plan t=")
	b.WriteString(ftoa(l.drv.Now()))
	b.WriteString(" assign=[")
	for m, j := range l.drv.Assign() {
		if m > 0 {
			b.WriteByte(' ')
		}
		if j < 0 {
			b.WriteByte('-')
		} else {
			fmt.Fprintf(&b, "%d", l.slotSeq[j])
		}
	}
	b.WriteString("] run=[")
	for i, j := range l.drv.Running() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%s", l.slotSeq[j], ftoa(l.drv.Rate(j)))
	}
	b.WriteString("]")
	l.logf("%s", b.String())
}

// logf appends one decision line. Write errors are counted and retained —
// never swallowed; Drain reports them and the daemon exits nonzero.
func (l *Loop) logf(format string, args ...any) {
	if l.logw == nil {
		return
	}
	l.logBuf = fmt.Appendf(l.logBuf[:0], format, args...)
	l.logBuf = append(l.logBuf, '\n')
	if _, err := l.logw.Write(l.logBuf); err != nil {
		// Not counted in logLines: a checkpoint must never attest a record
		// the log does not hold, or recovery would refuse the checkpoint.
		l.logErrs++
		l.lastLogErr = err
		return
	}
	l.logLines++
}

func (l *Loop) countReject(code string) {
	l.counters.Rejected[code]++
}

// ftoa formats a float with the shortest representation that round-trips —
// the deterministic encoding shared by the decision log and checkpoints.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// JobState describes one job for GET /jobs/{id}.
type JobState struct {
	Seq        uint64
	State      string // "active" | "completed"
	Name       string
	Release    float64
	Size       float64
	Remaining  float64 `json:",omitempty"`
	Rate       float64 `json:",omitempty"`
	Completion float64 `json:",omitempty"`
	Flow       float64 `json:",omitempty"`
	Stretch    float64 `json:",omitempty"`
}

// Job reports the state of daemon job seq, scanning the bounded recents
// ring for completed jobs; jobs evicted from the ring are typed-unknown.
func (l *Loop) Job(seq uint64) (st JobState, err error) {
	if err := l.acquire(0); err != nil {
		return JobState{}, err
	}
	defer l.release()
	defer l.recoverPanic(&err)
	l.syncClock()
	if id, ok := l.activeAt[seq]; ok {
		j := l.stream.Instance().Jobs[id]
		return JobState{
			Seq: seq, State: "active", Name: j.Name, Release: j.Release,
			Size: j.Size, Remaining: l.drv.Remaining(id), Rate: l.drv.Rate(id),
		}, nil
	}
	for i := l.recents.Len() - 1; i >= 0; i-- {
		if rec := l.recents.At(i); rec.Seq == seq {
			return JobState{
				Seq: seq, State: "completed", Name: rec.Name, Release: rec.Release,
				Size: rec.Size, Completion: rec.Completion, Flow: rec.Flow,
				Stretch: rec.Stretch,
			}, nil
		}
	}
	l.countReject(CodeUnknown)
	return JobState{}, reject(CodeUnknown, "job %d is neither active nor in the recents window", seq)
}

// ScheduleEntry is one active job's current placement.
type ScheduleEntry struct {
	Seq       uint64
	Slot      model.JobID
	Name      string
	Release   float64
	Remaining float64
	Rate      float64
	Machines  []model.MachineID
}

// Schedule is the daemon's current placement decision.
type Schedule struct {
	Now    float64
	Policy string
	Active []ScheduleEntry
	Assign []int // machine → slot (-1 idle)
}

// Schedule reports the current placement.
func (l *Loop) Schedule() (out Schedule, err error) {
	if err := l.acquire(0); err != nil {
		return Schedule{}, err
	}
	defer l.release()
	defer l.recoverPanic(&err)
	l.syncClock()
	out = Schedule{Now: l.drv.Now(), Policy: l.name}
	out.Assign = append(out.Assign, l.drv.Assign()...)
	for _, id := range append([]model.JobID(nil), l.drv.Ctx().Active()...) {
		j := l.stream.Instance().Jobs[id]
		e := ScheduleEntry{
			Seq: l.slotSeq[id], Slot: id, Name: j.Name, Release: j.Release,
			Remaining: l.drv.Remaining(id), Rate: l.drv.Rate(id),
		}
		for m, owner := range l.drv.Assign() {
			if owner == int(id) {
				e.Machines = append(e.Machines, model.MachineID(m))
			}
		}
		out.Active = append(out.Active, e)
	}
	sort.Slice(out.Active, func(a, b int) bool { return out.Active[a].Seq < out.Active[b].Seq })
	return out, nil
}

// Snapshot is the unified observability view: loop counters and quantiles
// plus the solver-stack snapshot (core.Stats) — the single source feeding
// /metrics.
type Snapshot struct {
	Now                                                         float64
	Policy                                                      string
	Active                                                      int
	Poisoned                                                    bool   // a recovered panic froze mutations until restart/restore
	Degraded                                                    bool   // backlog guard currently in degraded mode
	Fallback                                                    string // guard fallback policy ("" = guard off)
	Counters                                                    Counters
	StretchP50, StretchP90, StretchP99, StretchMean, StretchMax float64
	FlowP50, FlowP90, FlowP99, FlowMean, FlowMax                float64
	LogErrs                                                     int
	Solver                                                      core.Stats
}

// Snapshot assembles the unified stats view.
func (l *Loop) Snapshot() (s Snapshot, err error) {
	if err := l.acquire(0); err != nil {
		return Snapshot{}, err
	}
	defer l.release()
	defer l.recoverPanic(&err)
	return l.snapshotLocked(), nil
}

func (l *Loop) snapshotLocked() Snapshot {
	s := Snapshot{
		Now: l.drv.Now(), Policy: l.name, Active: l.drv.NumActive(),
		Poisoned: l.poisoned, Degraded: l.guardMode(), Fallback: l.fbName,
		Counters: Counters{
			Submitted: l.counters.Submitted, CompletedN: l.counters.CompletedN,
			Events: l.counters.Events, Checkpoints: l.counters.Checkpoints,
			Switches: l.counters.Switches, Panics: l.counters.Panics,
			Rejected: map[string]uint64{},
		},
		StretchP50: l.qs.p50.Value(), StretchP90: l.qs.p90.Value(),
		StretchP99: l.qs.p99.Value(), StretchMean: l.qs.mean(), StretchMax: l.qs.max,
		FlowP50: l.qf.p50.Value(), FlowP90: l.qf.p90.Value(),
		FlowP99: l.qf.p99.Value(), FlowMean: l.qf.mean(), FlowMax: l.qf.max,
		LogErrs: l.logErrs,
		Solver:  core.Collect(l.cfg.Workspace, map[string]core.Scheduler{l.name: l.cfg.Scheduler}),
	}
	for k, v := range l.counters.Rejected {
		s.Counters.Rejected[k] = v
	}
	return s
}

// Drain stops admissions, fast-forwards every pending job to completion at
// the predicted instants, and reports any decision-log write errors. It is
// idempotent; the first error encountered aborts the fast-forward.
func (l *Loop) Drain() (err error) {
	if err := l.acquire(0); err != nil {
		return err
	}
	defer l.release()
	defer l.recoverPanic(&err)
	if err := l.checkPoisoned(); err != nil {
		return err
	}
	l.draining = true
	for l.drv.NumActive() > 0 {
		l.drv.Replan(l.activePolicy())
		id, at, ok := l.drv.NextCompletion()
		if !ok {
			return reject(CodeExhausted, "%d active jobs but nothing running", l.drv.NumActive())
		}
		dt := at - l.drv.Now()
		if dt < 0 {
			dt = 0
		}
		l.drv.Advance(dt)
		if err := l.complete(id); err != nil {
			return err
		}
	}
	l.logf("drain t=%s completed=%d", ftoa(l.drv.Now()), l.counters.CompletedN)
	if l.logErrs > 0 {
		return reject(CodeLogWrite, "%d decision-log write errors, last: %v", l.logErrs, l.lastLogErr)
	}
	return nil
}

// Now returns the loop's current virtual time (test/diagnostic accessor).
func (l *Loop) Now() float64 {
	if err := l.acquire(0); err != nil {
		return math.NaN()
	}
	defer l.release()
	return l.drv.Now()
}
