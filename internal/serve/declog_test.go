package serve

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"stretchsched/internal/core"
	"stretchsched/internal/model"
	"stretchsched/internal/sim"
)

// TestLogFileFramingRoundTrip: framed writes parse back to the exact
// unframed payload bytes.
func TestLogFileFramingRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.log")
	lf, err := OpenLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := []string{"arrive t=0 seq=0", "plan t=0 assign=[0]", "complete t=3 seq=0"}
	var want bytes.Buffer
	for _, s := range lines {
		want.WriteString(s)
		want.WriteByte('\n')
		if _, err := lf.Write([]byte(s + "\n")); err != nil {
			t.Fatal(err)
		}
	}
	if err := lf.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	payloads, n, err := ReadLogPayloads(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(lines)) {
		t.Fatalf("parsed %d records, want %d", n, len(lines))
	}
	if !bytes.Equal(payloads, want.Bytes()) {
		t.Fatalf("payloads:\n%q\nwant\n%q", payloads, want.Bytes())
	}
	// Not-a-single-line writes are refused, never silently reframed.
	lf2, err := OpenLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer lf2.Close()
	if _, err := lf2.Write([]byte("no newline")); err == nil {
		t.Fatal("write without newline accepted")
	}
	if _, err := lf2.Write([]byte("two\nlines\n")); err == nil {
		t.Fatal("multi-line write accepted")
	}
}

// TestScanLogTornTail: a crash-torn tail (partial record, bad checksum,
// missing newline) is detected and excluded from the intact prefix, and
// RecoverLogFile truncates to exactly the attested records.
func TestScanLogTornTail(t *testing.T) {
	var good bytes.Buffer
	for _, s := range []string{"one", "two", "three"} {
		good.Write(appendFramed(nil, []byte(s)))
	}
	whole := good.Bytes()

	if n, g := ScanLog(whole); n != 3 || g != len(whole) {
		t.Fatalf("clean log: %d records, %d good bytes; want 3, %d", n, g, len(whole))
	}
	// Torn tail: final record missing its newline.
	torn := append(append([]byte(nil), whole...), appendFramed(nil, []byte("four"))[:10]...)
	if n, g := ScanLog(torn); n != 3 || g != len(whole) {
		t.Fatalf("torn log: %d records, %d good bytes; want 3, %d", n, g, len(whole))
	}
	// Corrupt checksum mid-frame.
	flipped := append([]byte(nil), whole...)
	flipped[logChecksumLen+2] ^= 1
	if n, _ := ScanLog(flipped); n != 0 {
		t.Fatalf("corrupt first record still scanned %d records", n)
	}
	if _, _, err := ReadLogPayloads(torn); err == nil {
		t.Fatal("strict parse accepted a torn log")
	}

	// RecoverLogFile: torn tail plus one post-checkpoint record, attested 2.
	path := filepath.Join(t.TempDir(), "decisions.log")
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := RecoverLogFile(path, 2); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n, g := ScanLog(b); n != 2 || g != len(b) {
		t.Fatalf("recovered log holds %d records (%d/%d bytes)", n, g, len(b))
	}
	// A checkpoint attesting more records than survive is a hard error.
	if err := RecoverLogFile(path, 5); err == nil {
		t.Fatal("recovery to 5 records from a 2-record log succeeded")
	}
}

// TestWriteFileAtomic: the write replaces content wholesale and leaves no
// temp file behind.
func TestWriteFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "second" {
		t.Fatalf("content %q, want %q", b, "second")
	}
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "ck.json" {
		t.Fatalf("directory holds %d entries, want only ck.json: %v", len(ents), ents)
	}
}

// TestWriteFileAtomicConcurrent: concurrent writers must never tear or
// interleave — each uses its own temp file, so the final content is the
// whole of exactly one writer's payload. Regression for a shared
// path+".tmp" temp name that let one writer truncate another's.
func TestWriteFileAtomicConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	const writers = 8
	payloads := make([]string, writers)
	for i := range payloads {
		payloads[i] = strings.Repeat(string(rune('a'+i)), 1<<16)
	}
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = WriteFileAtomic(path, []byte(payloads[i]), 0o644)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	whole := false
	for _, p := range payloads {
		if string(b) == p {
			whole = true
			break
		}
	}
	if !whole {
		t.Fatalf("final content (%d bytes) is not any single writer's payload", len(b))
	}
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}

// TestCorruptCheckpointRejected is the regression for non-atomic
// checkpoint writes: a truncated (torn) checkpoint file must be refused
// with the typed bad-state code, not half-restored.
func TestCorruptCheckpointRejected(t *testing.T) {
	inst := testWorkload(t)
	loop, err := New(egdfExactConfig(t, inst, nil))
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, loop, inst.Jobs[:4])
	ck, err := loop.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := ck.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCheckpoint(b); err != nil {
		t.Fatalf("intact checkpoint rejected: %v", err)
	}
	for _, cut := range []int{len(b) / 3, len(b) - 2, 1} {
		_, err := DecodeCheckpoint(b[:cut])
		var rej *Rejection
		if !errors.As(err, &rej) || rej.Code != CodeBadState {
			t.Fatalf("truncated checkpoint (%d bytes) error = %v, want %s", cut, err, CodeBadState)
		}
	}
}

// TestCrashRecoveryDifferential is the fault-tolerance acceptance test: a
// daemon writing a framed on-disk decision log is "crashed" after a synced
// checkpoint (extra un-attested records plus a torn tail land in the log),
// recovered by truncating to the attested records, restored from the
// checkpoint, and resumed. The resumed decision-log suffix must be
// byte-identical to the uninterrupted run's — the file-backed extension of
// TestCheckpointRestoreDeterminism.
func TestCrashRecoveryDifferential(t *testing.T) {
	inst := testWorkload(t)
	jobs := inst.Jobs
	cut := len(jobs) / 2

	// Uninterrupted reference run into a plain buffer.
	var logA bytes.Buffer
	loopA, err := New(egdfExactConfig(t, inst, &logA))
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, loopA, jobs)
	if err := loopA.Drain(); err != nil {
		t.Fatal(err)
	}

	// Crashing run: framed log on disk, checkpoint mid-stream (sync
	// barrier), then more submissions whose records the checkpoint does not
	// attest, then a torn tail from the "crash".
	path := filepath.Join(t.TempDir(), "decisions.log")
	lf, err := OpenLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	loopB, err := New(egdfExactConfig(t, inst, lf))
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, loopB, jobs[:cut])
	ck, err := loopB.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck.LogRecords == 0 {
		t.Fatal("checkpoint attests zero log records")
	}
	submitAll(t, loopB, jobs[cut:cut+2]) // post-checkpoint decisions, lost in the crash
	if err := lf.Sync(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("deadbeef torn rec")); err != nil { // no newline: torn
		t.Fatal(err)
	}
	f.Close()

	// Recovery: truncate to the attested records, restore, resume, drain.
	if err := RecoverLogFile(path, ck.LogRecords); err != nil {
		t.Fatal(err)
	}
	enc, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	lf2, err := OpenLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	loopC, err := Restore(egdfExactConfig(t, inst, lf2), dec)
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, loopC, jobs[cut:])
	if err := loopC.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := lf2.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	payloads, n, err := ReadLogPayloads(b)
	if err != nil {
		t.Fatalf("recovered+resumed log is not fully intact: %v", err)
	}
	if string(payloads) != logA.String() {
		t.Fatalf("recovered decision log diverged from uninterrupted run:\n%s",
			firstDiff(logA.String(), string(payloads)))
	}
	if n <= ck.LogRecords {
		t.Fatalf("resumed log holds %d records, no more than the checkpoint's %d", n, ck.LogRecords)
	}
}

// panicPolicy is an FCFS-order policy whose Less panics once when armed —
// the fault injection for the loop's panic recovery.
type panicPolicy struct{ armed *bool }

func (p panicPolicy) Name() string         { return "panic-once" }
func (p panicPolicy) Init(*model.Instance) {}
func (p panicPolicy) OnEvent(*sim.Ctx)     {}
func (p panicPolicy) Less(ctx *sim.Ctx, a, b model.JobID) bool {
	if *p.armed {
		*p.armed = false
		panic("injected policy panic")
	}
	return a < b
}

// panicSched adapts panicPolicy to the core scheduler surface New needs.
type panicSched struct{ pol panicPolicy }

func (s panicSched) Name() string { return "PanicOnce" }
func (s panicSched) Run(inst *model.Instance) (*model.Schedule, error) {
	return nil, errors.New("panicSched does not batch-schedule")
}
func (s panicSched) Policy() sim.Policy { return s.pol }

// TestLoopSurvivesPanic: a panic inside a replan surfaces as a typed
// loop_panic rejection and is counted; the loop survives to serve reads
// but is poisoned — a panic can unwind mid-mutation, so every further
// mutating entry point is refused until restart/restore.
func TestLoopSurvivesPanic(t *testing.T) {
	p, err := model.Uniform([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	armed := false
	loop, err := New(Config{Platform: p, Scheduler: panicSched{panicPolicy{&armed}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loop.Submit(SubmitRequest{Name: "a", Size: 2}); err != nil {
		t.Fatal(err)
	}
	armed = true
	_, err = loop.Submit(SubmitRequest{Name: "b", Size: 1})
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Code != CodePanic {
		t.Fatalf("panicking submit error = %v, want %s", err, CodePanic)
	}
	// The loop survives for reads, but mutations are poisoned: the panic
	// may have left half-applied state that a checkpoint must not attest.
	if _, err = loop.Submit(SubmitRequest{Name: "c", Size: 1}); !errors.As(err, &rej) || rej.Code != CodePoisoned {
		t.Fatalf("post-panic submit error = %v, want %s", err, CodePoisoned)
	}
	if _, err = loop.Checkpoint(); !errors.As(err, &rej) || rej.Code != CodePoisoned {
		t.Fatalf("post-panic checkpoint error = %v, want %s", err, CodePoisoned)
	}
	if err = loop.Drain(); !errors.As(err, &rej) || rej.Code != CodePoisoned {
		t.Fatalf("post-panic drain error = %v, want %s", err, CodePoisoned)
	}
	snap, err := loop.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Poisoned {
		t.Fatal("snapshot not marked poisoned after a recovered panic")
	}
	if snap.Counters.Panics != 1 || snap.Counters.Rejected[CodePanic] != 1 {
		t.Fatalf("panic counters = %d/%d, want 1/1",
			snap.Counters.Panics, snap.Counters.Rejected[CodePanic])
	}
	if !strings.Contains(snap.Prometheus(), "stretchd_loop_panics_total 1") {
		t.Fatal("metrics missing stretchd_loop_panics_total")
	}
	if !strings.Contains(snap.Prometheus(), "stretchd_loop_poisoned 1") {
		t.Fatal("metrics missing stretchd_loop_poisoned")
	}
}

// TestRetryAfterOn503: transient 503s carry a Retry-After hint, and the
// server-side CheckpointPath persists atomically on POST /checkpoint.
func TestRetryAfterOn503(t *testing.T) {
	p, err := model.Uniform([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.New("FCFS")
	if err != nil {
		t.Fatal(err)
	}
	ckPath := filepath.Join(t.TempDir(), "ck.json")
	loop, err := New(Config{Platform: p, Scheduler: sched, CheckpointPath: ckPath})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(loop.Handler())
	defer srv.Close()

	if code := postJSON(t, srv.URL+"/jobs", `{"name":"a","size":2}`, nil); code != 200 {
		t.Fatalf("submit = %d", code)
	}
	// Server-side checkpoint persistence.
	resp, err := http.Post(srv.URL+"/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("POST /checkpoint = %d", resp.StatusCode)
	}
	onDisk, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatalf("checkpoint not persisted: %v", err)
	}
	if _, err := DecodeCheckpoint(onDisk); err != nil {
		t.Fatalf("persisted checkpoint corrupt: %v", err)
	}

	if err := loop.Drain(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(`{"name":"b","size":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
}
