package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
)

// Crash-safe decision-log persistence. Every decision line the loop emits
// is framed on disk as
//
//	%016x <payload>\n
//
// where the prefix is the FNV-64a checksum of the payload bytes. A crash
// mid-write leaves a torn tail — a final record with no newline, a short
// checksum field, or a checksum mismatch — which ScanLog detects and
// RecoverLogFile truncates away, so a restarted daemon appends to a log
// whose every surviving record is intact. The payload bytes themselves are
// exactly what the in-memory decision log carries: stripping the frames
// reproduces the unframed log byte for byte.

// logChecksumLen is the fixed width of the hex checksum field.
const logChecksumLen = 16

func logChecksum(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// appendFramed appends one framed record for payload (no trailing newline)
// to dst.
func appendFramed(dst, payload []byte) []byte {
	dst = fmt.Appendf(dst, "%016x ", logChecksum(payload))
	dst = append(dst, payload...)
	return append(dst, '\n')
}

// parseFramed splits one framed line (without its trailing newline) into
// its payload, reporting whether frame and checksum are intact.
func parseFramed(line []byte) ([]byte, bool) {
	if len(line) < logChecksumLen+1 || line[logChecksumLen] != ' ' {
		return nil, false
	}
	var sum uint64
	for _, c := range line[:logChecksumLen] {
		switch {
		case c >= '0' && c <= '9':
			sum = sum<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			sum = sum<<4 | uint64(c-'a'+10)
		default:
			return nil, false
		}
	}
	payload := line[logChecksumLen+1:]
	if logChecksum(payload) != sum {
		return nil, false
	}
	return payload, true
}

// nextRecord splits b into its first framed record's payload and the rest.
func nextRecord(b []byte) (payload, rest []byte, ok bool) {
	nl := bytes.IndexByte(b, '\n')
	if nl < 0 {
		return nil, b, false // torn tail: record never got its newline
	}
	payload, ok = parseFramed(b[:nl])
	return payload, b[nl+1:], ok
}

// ScanLog walks the framed records of b from the start and returns the
// count of intact records and the byte length of that intact prefix.
// Anything past goodLen — a torn tail from a crash, or corruption — is not
// a valid record.
func ScanLog(b []byte) (n uint64, goodLen int) {
	rest := b
	for len(rest) > 0 {
		_, r, ok := nextRecord(rest)
		if !ok {
			break
		}
		n++
		rest = r
	}
	return n, len(b) - len(rest)
}

// ReadLogPayloads strictly parses a framed log: every byte must belong to
// an intact record. It returns the concatenated payload lines (the
// unframed decision log) — the logcheck verification path.
func ReadLogPayloads(b []byte) ([]byte, uint64, error) {
	var out []byte
	var n uint64
	rest := b
	for len(rest) > 0 {
		payload, r, ok := nextRecord(rest)
		if !ok {
			return nil, n, fmt.Errorf("serve: log record %d (offset %d) is torn or corrupt",
				n+1, len(b)-len(rest))
		}
		out = append(out, payload...)
		out = append(out, '\n')
		n++
		rest = r
	}
	return out, n, nil
}

// RecoverLogFile truncates the framed log at path to exactly its first
// upTo records — the records a checkpoint attests to. Records beyond upTo
// (decisions after the checkpoint, which the restored daemon will re-emit)
// and any torn tail are discarded. It errors if fewer than upTo intact
// records survive: then the log lost data the checkpoint presumed durable,
// and restoring would silently diverge.
func RecoverLogFile(path string, upTo uint64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("serve: recovering log: %w", err)
	}
	var n uint64
	rest := b
	for n < upTo {
		_, r, ok := nextRecord(rest)
		if !ok {
			return fmt.Errorf("serve: log %s holds %d intact records, checkpoint attests %d",
				path, n, upTo)
		}
		n++
		rest = r
	}
	keep := len(b) - len(rest)
	if keep == len(b) {
		return nil
	}
	if err := os.Truncate(path, int64(keep)); err != nil {
		return fmt.Errorf("serve: truncating log to %d bytes: %w", keep, err)
	}
	return nil
}

// LogFile is the crash-safe decision-log sink: an append-only file whose
// Write frames each decision line with its checksum. It satisfies the
// loop's DecisionLog contract (one Write per line) plus the Sync barrier
// Checkpoint uses to make attested records durable before the snapshot.
type LogFile struct {
	f   *os.File
	w   *bufio.Writer
	buf []byte
}

// OpenLogFile opens (creating if absent) the framed log at path for
// appending.
func OpenLogFile(path string) (*LogFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening log: %w", err)
	}
	return &LogFile{f: f, w: bufio.NewWriter(f)}, nil
}

// Write frames one decision line (which must end in exactly one newline —
// the loop's logf contract) and appends it.
func (lf *LogFile) Write(p []byte) (int, error) {
	if len(p) == 0 || p[len(p)-1] != '\n' || bytes.IndexByte(p[:len(p)-1], '\n') >= 0 {
		return 0, fmt.Errorf("serve: log write is not a single newline-terminated line (%d bytes)", len(p))
	}
	lf.buf = appendFramed(lf.buf[:0], p[:len(p)-1])
	if _, err := lf.w.Write(lf.buf); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Sync flushes buffered records and fsyncs the file — the durability
// barrier a checkpoint takes before attesting its record count.
func (lf *LogFile) Sync() error {
	if err := lf.w.Flush(); err != nil {
		return err
	}
	return lf.f.Sync()
}

// Close syncs and closes the file.
func (lf *LogFile) Close() error {
	if err := lf.Sync(); err != nil {
		lf.f.Close()
		return err
	}
	return lf.f.Close()
}

// WriteFileAtomic writes data to path through a same-directory temp file,
// fsyncs it, renames it over path and fsyncs the directory — so path holds
// either its previous content or the whole of one writer's data, never a
// torn prefix or interleaving, no matter where a crash lands. The temp
// name is unique per call, so concurrent writers race only on the final
// rename (last one wins, each rename atomic).
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Dir(path), filepath.Base(path)
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: atomic write: %w", err)
	}
	tmp := f.Name()
	if err := f.Chmod(perm); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: atomic write: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: atomic write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: atomic write: syncing: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: atomic write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: atomic write: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		// Directory fsync is best-effort: not every filesystem supports it,
		// and the rename itself already happened.
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}
