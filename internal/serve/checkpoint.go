package serve

import (
	"encoding/json"
	"fmt"

	"stretchsched/internal/model"
	"stretchsched/internal/offline"
	"stretchsched/internal/stats"
)

// checkpointVersion guards the encoding; bump on incompatible change.
const checkpointVersion = 1

// SlotCk is one stream slot in a checkpoint: the job it holds (or last
// held, for tombstones), its liveness, its daemon sequence number and its
// remaining work at checkpoint time.
type SlotCk struct {
	Seq       uint64
	Name      string
	Release   float64
	Size      float64
	Databank  model.DatabankID
	Live      bool
	Remaining float64
}

// Checkpoint is the daemon's complete deterministic state. Every float is
// encoded by encoding/json's shortest-round-trip formatting, so decode
// reproduces the exact bit patterns; the LP basis is deliberately absent
// (see offline.SessionState). Restoring and replaying the remaining event
// stream yields a byte-identical decision log to the uninterrupted run.
type Checkpoint struct {
	Version int
	Policy  string
	Now     float64
	NextSeq uint64

	Slots []SlotCk
	Free  []model.JobID

	Session *offline.SessionState `json:",omitempty"`

	Recents                []Completed
	QStretch               []stats.P2State // p50, p90, p99
	QFlow                  []stats.P2State
	SumStretch, MaxStretch float64
	SumFlow, MaxFlow       float64
	NStretch, NFlow        uint64

	Submitted, CompletedN, Events, Checkpoints uint64
	// Switches is the backlog-guard transition count; the guard's *mode* is
	// deliberately absent — it is a pure function of the active count and is
	// recomputed on restore. Absent in pre-guard checkpoints (decodes as 0).
	Switches uint64 `json:",omitempty"`
	// Panics counts recovered loop panics. Absent in older checkpoints.
	Panics uint64 `json:",omitempty"`
	// LogRecords is the number of decision-log lines emitted before this
	// snapshot — synced to disk first when the sink supports it, so crash
	// recovery can truncate a framed log to exactly the attested records
	// (see RecoverLogFile). Absent in older checkpoints (decodes as 0).
	LogRecords uint64 `json:",omitempty"`
	Rejected   map[string]uint64
}

// Checkpoint snapshots the loop. The snapshot is taken at the loop's
// current quiescent instant — after the last committed event — so a
// restored daemon resumes exactly where this one stood. When the decision
// sink supports a Sync barrier (LogFile does), the attested log records
// are made durable before the snapshot exists: a checkpoint must never
// claim records a crash could still lose.
func (l *Loop) Checkpoint() (ck *Checkpoint, err error) {
	if err := l.acquire(0); err != nil {
		return nil, err
	}
	defer l.release()
	defer l.recoverPanic(&err)
	if err := l.checkPoisoned(); err != nil {
		return nil, err
	}
	if l.logErrs > 0 {
		// Failed decision lines were never counted in logLines, but a run
		// with holes in its log cannot honestly attest anything: a restore
		// would replay against a stream missing decisions.
		l.countReject(CodeLogWrite)
		return nil, reject(CodeLogWrite, "%d decision-log write errors, last: %v", l.logErrs, l.lastLogErr)
	}
	if s, ok := l.logw.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			l.countReject(CodeLogWrite)
			return nil, reject(CodeLogWrite, "syncing decision log before checkpoint: %v", err)
		}
	}
	l.counters.Checkpoints++
	ck = &Checkpoint{
		Version:    checkpointVersion,
		Policy:     l.name,
		Now:        l.drv.Now(),
		NextSeq:    l.seq,
		LogRecords: l.logLines,
		QStretch:   []stats.P2State{l.qs.p50.State(), l.qs.p90.State(), l.qs.p99.State()},
		QFlow:      []stats.P2State{l.qf.p50.State(), l.qf.p90.State(), l.qf.p99.State()},
		SumStretch: l.qs.sum, MaxStretch: l.qs.max, NStretch: l.qs.n,
		SumFlow: l.qf.sum, MaxFlow: l.qf.max, NFlow: l.qf.n,
		Submitted: l.counters.Submitted, CompletedN: l.counters.CompletedN,
		Events: l.counters.Events, Checkpoints: l.counters.Checkpoints,
		Switches: l.counters.Switches, Panics: l.counters.Panics,
		Rejected: map[string]uint64{},
	}
	for k, v := range l.counters.Rejected {
		ck.Rejected[k] = v
	}
	slots, live, free := l.stream.Snapshot(nil, nil, nil)
	for i, j := range slots {
		sc := SlotCk{
			Name: j.Name, Release: j.Release, Size: j.Size,
			Databank: j.Databank, Live: live[i],
		}
		if live[i] {
			sc.Seq = l.slotSeq[i]
			sc.Remaining = l.drv.Remaining(model.JobID(i))
		}
		ck.Slots = append(ck.Slots, sc)
	}
	ck.Free = free
	ck.Recents = l.recents.Snapshot(nil)
	if l.cfg.Workspace != nil && l.cfg.Workspace.SessionStats() != nil {
		st := l.cfg.Workspace.Session().State()
		ck.Session = &st
	}
	return ck, nil
}

// Encode renders the checkpoint as deterministic JSON (fixed field order,
// sorted map keys, shortest-round-trip floats).
func (ck *Checkpoint) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(ck, "", " ")
	if err != nil {
		return nil, fmt.Errorf("serve: encoding checkpoint: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteFile atomically persists the encoded checkpoint at path: temp
// file, fsync, rename, directory fsync — a crash mid-write leaves the
// previous checkpoint intact, never a torn one.
func (ck *Checkpoint) WriteFile(path string) error {
	b, err := ck.Encode()
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, b, 0o644)
}

// DecodeCheckpoint parses an Encode output.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	ck := &Checkpoint{}
	if err := json.Unmarshal(b, ck); err != nil {
		return nil, reject(CodeBadState, "decoding checkpoint: %v", err)
	}
	if ck.Version != checkpointVersion {
		return nil, reject(CodeBadState, "checkpoint version %d, want %d", ck.Version, checkpointVersion)
	}
	return ck, nil
}

// Restore builds a loop from cfg resumed at ck: the stream slot table,
// driver clock and per-slot remaining work, session identities, recents
// ring, quantile estimators and counters are all rebuilt, then one
// unlogged replan re-establishes rates and the policy's priority order —
// recomputed cold, which the warm≡cold objective invariant makes
// decision-identical to the interrupted daemon's in-memory state.
func Restore(cfg Config, ck *Checkpoint) (*Loop, error) {
	l, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if ck.Policy != l.name {
		return nil, reject(CodeBadState, "checkpoint is for policy %s, daemon runs %s", ck.Policy, l.name)
	}
	if len(ck.QStretch) != 3 || len(ck.QFlow) != 3 {
		return nil, reject(CodeBadState, "checkpoint has %d/%d quantile states, want 3/3",
			len(ck.QStretch), len(ck.QFlow))
	}
	slots := make([]model.Job, len(ck.Slots))
	live := make([]bool, len(ck.Slots))
	for i, sc := range ck.Slots {
		slots[i] = model.Job{
			ID: model.JobID(i), Name: sc.Name, Release: sc.Release,
			Size: sc.Size, Databank: sc.Databank,
		}
		live[i] = sc.Live
	}
	if err := l.stream.Restore(slots, live, ck.Free); err != nil {
		return nil, reject(CodeBadState, "%v", err)
	}
	var active []model.JobID
	var rem []float64
	for i, sc := range ck.Slots {
		for i >= len(l.slotSeq) {
			l.slotSeq = append(l.slotSeq, 0)
		}
		if sc.Live {
			l.slotSeq[i] = sc.Seq
			l.activeAt[sc.Seq] = model.JobID(i)
			active = append(active, model.JobID(i))
			rem = append(rem, sc.Remaining)
		}
	}
	l.drv.RestoreActive(active, rem)
	l.drv.SetNow(ck.Now)
	l.seq = ck.NextSeq
	for _, rec := range ck.Recents {
		l.recents.Push(rec)
	}
	qs := [3]*stats.P2Quantile{}
	qf := [3]*stats.P2Quantile{}
	for i := 0; i < 3; i++ {
		if qs[i], err = stats.RestoreP2(ck.QStretch[i]); err != nil {
			return nil, reject(CodeBadState, "%v", err)
		}
		if qf[i], err = stats.RestoreP2(ck.QFlow[i]); err != nil {
			return nil, reject(CodeBadState, "%v", err)
		}
	}
	l.qs.p50, l.qs.p90, l.qs.p99 = qs[0], qs[1], qs[2]
	l.qf.p50, l.qf.p90, l.qf.p99 = qf[0], qf[1], qf[2]
	l.qs.sum, l.qs.max, l.qs.n = ck.SumStretch, ck.MaxStretch, ck.NStretch
	l.qf.sum, l.qf.max, l.qf.n = ck.SumFlow, ck.MaxFlow, ck.NFlow
	l.counters.Submitted = ck.Submitted
	l.counters.CompletedN = ck.CompletedN
	l.counters.Events = ck.Events
	l.counters.Checkpoints = ck.Checkpoints
	l.counters.Switches = ck.Switches
	l.counters.Panics = ck.Panics
	l.logLines = ck.LogRecords
	for k, v := range ck.Rejected {
		l.counters.Rejected[k] = v
	}
	if ck.Session != nil {
		if cfg.Workspace == nil {
			return nil, reject(CodeBadState, "checkpoint carries session state but the daemon has no workspace")
		}
		if err := cfg.Workspace.Session().Restore(*ck.Session); err != nil {
			return nil, reject(CodeBadState, "%v", err)
		}
	}
	// Re-establish rates and the policy's order without logging: this
	// recomputation replaces in-memory state the interrupted daemon already
	// had, it is not a new decision. The guard mode is recomputed the same
	// way — derived, not decoded, and no transition is counted.
	l.degraded = l.guardMode()
	if l.drv.NumActive() > 0 {
		pol := l.pol
		if l.degraded {
			pol = l.fbPol
		}
		l.drv.Replan(pol)
	}
	return l, nil
}
