package serve

import (
	"bytes"
	"strings"
	"testing"

	"stretchsched/internal/core"
)

// guardConfig is an Online-EGDF daemon with the backlog guard armed at
// threshold, logging into log.
func guardConfig(t testing.TB, log *bytes.Buffer, threshold int) Config {
	t.Helper()
	inst := testWorkload(t)
	cfg := egdfExactConfig(t, inst, log)
	cfg.BacklogThreshold = threshold
	return cfg
}

// TestBacklogGuardSwitches: pushing the active set past the threshold must
// switch scheduling to the fallback (logged + counted), and draining back
// under it must switch back.
func TestBacklogGuardSwitches(t *testing.T) {
	var log bytes.Buffer
	cfg := guardConfig(t, &log, 3)
	loop, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Six simultaneous unit jobs: the 4th submission crosses the threshold.
	for i := 0; i < 6; i++ {
		if _, err := loop.Submit(SubmitRequest{Size: 50, Databank: 0}); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := loop.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Degraded {
		t.Fatalf("active=%d threshold=3 but not degraded", snap.Active)
	}
	if snap.Fallback != "SWRPT" {
		t.Fatalf("fallback = %q, want SWRPT default", snap.Fallback)
	}
	if snap.Counters.Switches != 1 {
		t.Fatalf("switches = %d after crossing once, want 1", snap.Counters.Switches)
	}
	if !strings.Contains(log.String(), "guard t=") ||
		!strings.Contains(log.String(), "mode=degraded policy=SWRPT") {
		t.Fatalf("no degraded guard line in log:\n%s", log.String())
	}
	// Draining completes everything; on the way down the guard reverts.
	if err := loop.Drain(); err != nil {
		t.Fatal(err)
	}
	snap, err = loop.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Degraded {
		t.Fatal("still degraded after drain")
	}
	if snap.Counters.Switches != 2 {
		t.Fatalf("switches = %d after reverting, want 2", snap.Counters.Switches)
	}
	if !strings.Contains(log.String(), "mode=normal policy=Online-EGDF") {
		t.Fatalf("no revert guard line in log:\n%s", log.String())
	}

	// The switch counter and degraded gauge surface in /metrics.
	m := snap.Prometheus()
	if !strings.Contains(m, "stretchd_policy_switches_total 2") {
		t.Fatalf("metrics missing switch counter:\n%s", m)
	}
	if !strings.Contains(m, "stretchd_degraded 0") {
		t.Fatalf("metrics missing degraded gauge:\n%s", m)
	}
}

// TestBacklogGuardCheckpointDeterminism: interrupting a guarded daemon
// mid-degradation and restoring it must reproduce the uninterrupted run's
// decision log bytes — the guard mode is recomputed, the switch counter
// decoded.
func TestBacklogGuardCheckpointDeterminism(t *testing.T) {
	inst := testWorkload(t)
	jobs := inst.Jobs
	cut := len(jobs) / 2

	mk := func(log *bytes.Buffer) Config {
		cfg := egdfExactConfig(t, inst, log)
		cfg.BacklogThreshold = 2
		return cfg
	}

	var logA bytes.Buffer
	loopA, err := New(mk(&logA))
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, loopA, jobs)
	if err := loopA.Drain(); err != nil {
		t.Fatal(err)
	}
	snapA, err := loopA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snapA.Counters.Switches == 0 {
		t.Fatal("workload never tripped the guard; test is vacuous")
	}

	var logB bytes.Buffer
	loopB, err := New(mk(&logB))
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, loopB, jobs[:cut])
	ck, err := loopB.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := DecodeCheckpoint(b)
	if err != nil {
		t.Fatal(err)
	}
	loopC, err := Restore(mk(&logB), ck2)
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, loopC, jobs[cut:])
	if err := loopC.Drain(); err != nil {
		t.Fatal(err)
	}
	if logA.String() != logB.String() {
		t.Fatalf("decision logs diverge with guarded restore:\nA:\n%s\nB:\n%s", logA.String(), logB.String())
	}
	snapC, err := loopC.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snapC.Counters.Switches != snapA.Counters.Switches {
		t.Fatalf("switches: restored %d, uninterrupted %d",
			snapC.Counters.Switches, snapA.Counters.Switches)
	}
}

// TestGuardRejectsDegenerateFallback: a fallback equal to the primary
// scheduler is a configuration error, not a silent no-op.
func TestGuardRejectsDegenerateFallback(t *testing.T) {
	inst := testWorkload(t)
	sched, err := core.New("SWRPT")
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{
		Platform: inst.Platform, Scheduler: sched,
		BacklogThreshold: 4,
	})
	if err == nil {
		t.Fatal("SWRPT primary with default SWRPT fallback accepted")
	}
}
