package offline

import (
	"math"
	"math/rand"
	"testing"

	"stretchsched/internal/model"
	"stretchsched/internal/sim"
)

type localFCFS struct{}

func (localFCFS) Name() string         { return "fcfs" }
func (localFCFS) Init(*model.Instance) {}
func (localFCFS) OnEvent(*sim.Ctx)     {}
func (localFCFS) Less(ctx *sim.Ctx, a, b model.JobID) bool {
	ra, rb := ctx.Inst.Jobs[a].Release, ctx.Inst.Jobs[b].Release
	if ra != rb {
		return ra < rb
	}
	return a < b
}

// TestUnitWeightsEqualFCFSMaxFlow: with w_j = 1 the weighted-flow optimum
// is the max-flow optimum, which FCFS attains on a single machine — the
// §4.1 classical result, reproduced through the general solver.
func TestUnitWeightsEqualFCFSMaxFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(6)
		jobs := make([]model.Job, n)
		for j := range jobs {
			jobs[j] = model.Job{Release: rng.Float64() * 6, Size: 0.3 + 2*rng.Float64(), Databank: 0}
		}
		inst := uniInstance(t, []float64{1}, jobs)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 1
		}
		opt, err := OptimalWeightedFlow(inst, weights)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := sim.RunList(inst, localFCFS{})
		if err != nil {
			t.Fatal(err)
		}
		fcfs := sched.MaxFlow(inst)
		if math.Abs(opt-fcfs) > 1e-6*(1+fcfs) {
			t.Fatalf("trial %d: weighted-flow optimum %v vs FCFS max-flow %v", trial, opt, fcfs)
		}
	}
}

// TestStretchWeightsMatchFromInstance: w_j = 1/p*_j reduces the general
// weighted problem to the stretch problem.
func TestStretchWeightsMatchFromInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	inst := randomInstance(t, rng, 2, 2, 6)
	weights := make([]float64, inst.NumJobs())
	for j := range weights {
		weights[j] = inst.Weight(model.JobID(j))
	}
	viaWeighted, err := OptimalWeightedFlow(inst, weights)
	if err != nil {
		t.Fatal(err)
	}
	var s Solver
	sol, err := s.OptimalStretch(FromInstance(inst))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(viaWeighted-sol.Stretch) > 1e-6*(1+sol.Stretch) {
		t.Fatalf("weighted %v vs stretch %v", viaWeighted, sol.Stretch)
	}
}

func TestWeightedValidation(t *testing.T) {
	inst := uniInstance(t, []float64{1}, []model.Job{{Release: 0, Size: 1, Databank: 0}})
	if _, err := FromInstanceWeighted(inst, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FromInstanceWeighted(inst, []float64{0}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := FromInstanceWeighted(inst, []float64{-2}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

// TestWeightPrioritisation: boosting one job's weight pushes the solver to
// finish it earlier at the expense of the objective scale.
func TestWeightPrioritisation(t *testing.T) {
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 4, Databank: 0},
		{Release: 0, Size: 4, Databank: 0},
	})
	// Equal weights: optimum F = 8 (both finish by 8, symmetric).
	opt, err := OptimalWeightedFlow(inst, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-8) > 1e-6 {
		t.Fatalf("equal weights: %v, want 8", opt)
	}
	// Job 1 heavily weighted: it must finish first (by F/10), so
	// F ≥ 8 for job 0 still, and F/10 ≥ 4 → F* = max(8, 40)=... job 1
	// finishing at 4 gives weighted flow 40; job 0 at 8 gives 8 → F*=40.
	opt, err = OptimalWeightedFlow(inst, []float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-40) > 1e-5 {
		t.Fatalf("boosted weights: %v, want 40", opt)
	}
}
