package offline

import (
	"fmt"

	"stretchsched/internal/model"
)

// FromInstanceWeighted builds the max *weighted* flow minimisation problem
// of §4.3.1 in its full generality: minimise max_j w_j·(C_j − r_j) for
// arbitrary positive weights. The deadline of job j at objective F is
// d̄_j(F) = r_j + F/w_j, so the stretch problem is the special case
// w_j = 1/p*_j and max-flow minimisation is the special case w_j = 1.
func FromInstanceWeighted(inst *model.Instance, weights []float64) (*Problem, error) {
	if len(weights) != inst.NumJobs() {
		return nil, fmt.Errorf("offline: %d weights for %d jobs", len(weights), inst.NumJobs())
	}
	p := &Problem{Inst: inst}
	for j := range inst.Jobs {
		if weights[j] <= 0 {
			return nil, fmt.Errorf("offline: job %d has nonpositive weight %v", j, weights[j])
		}
		p.Tasks = append(p.Tasks, Task{
			Job:     model.JobID(j),
			Release: inst.Jobs[j].Release,
			Work:    inst.Jobs[j].Size,
			DeadA:   inst.Jobs[j].Release,
			DeadB:   1 / weights[j],
		})
	}
	return p, nil
}

// OptimalWeightedFlow returns the minimal achievable max weighted flow of
// inst under the given positive weights.
func OptimalWeightedFlow(inst *model.Instance, weights []float64) (float64, error) {
	p, err := FromInstanceWeighted(inst, weights)
	if err != nil {
		return 0, err
	}
	var s Solver
	sol, err := s.OptimalStretch(p)
	if err != nil {
		return 0, err
	}
	return sol.Stretch, nil
}
