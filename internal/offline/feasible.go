package offline

import (
	"fmt"
	"math"

	"stretchsched/internal/model"
)

// Alloc is a deadline-respecting divisible allocation: Work[t][i][k] is the
// amount of work of task k processed on machine i during interval t.
// Bounds has len(T)+1 entries; interval t spans [Bounds[t], Bounds[t+1]).
type Alloc struct {
	Problem *Problem
	Stretch float64
	Bounds  []float64
	Work    [][][]float64 // [interval][machine] -> sparse map? dense per task
}

// workAt returns the work of task k on machine i in interval t.
func (a *Alloc) workAt(t, i, k int) float64 { return a.Work[t][i][k] }

// TaskWork returns the total allocated work of task k.
func (a *Alloc) TaskWork(k int) float64 {
	w := 0.0
	for t := range a.Work {
		for i := range a.Work[t] {
			w += a.Work[t][i][k]
		}
	}
	return w
}

// LastInterval returns the last interval in which task k has any allocation
// anywhere, or -1 if none. This is the "completion interval" used by the
// Online-EDF and Online-EGDF orderings.
func (a *Alloc) LastInterval(k int) int {
	for t := len(a.Work) - 1; t >= 0; t-- {
		for i := range a.Work[t] {
			if a.Work[t][i][k] > 0 {
				return t
			}
		}
	}
	return -1
}

// LastIntervalOn returns the last interval in which task k has any
// allocation on machine i, or -1.
func (a *Alloc) LastIntervalOn(k int, i int) int {
	for t := len(a.Work) - 1; t >= 0; t-- {
		if a.Work[t][i][k] > 0 {
			return t
		}
	}
	return -1
}

// feasNet is the transportation network for a fixed objective value F.
type feasNet struct {
	p      *Problem
	bounds []float64
	admiss [][]int // task -> admissible interval indices
}

// network builds the interval/admissibility structure at objective f. With a
// workspace attached the structure is pooled and overwritten by the next
// network call — which is why Alloc.prepare copies the bounds it keeps.
func (p *Problem) network(f float64) *feasNet {
	var net *feasNet
	if p.ws != nil {
		net = &p.ws.net
		net.p = p
		net.bounds = p.intervalsInto(f, net.bounds)
		if cap(net.admiss) < len(p.Tasks) {
			net.admiss = make([][]int, len(p.Tasks))
		}
		net.admiss = net.admiss[:len(p.Tasks)]
		for k := range net.admiss {
			net.admiss[k] = net.admiss[k][:0]
		}
	} else {
		net = &feasNet{p: p, bounds: p.Intervals(f), admiss: make([][]int, len(p.Tasks))}
	}
	bounds := net.bounds
	for k := range p.Tasks {
		t := &p.Tasks[k]
		d := t.Deadline(f)
		for ti := 0; ti+1 < len(bounds); ti++ {
			lo, hi := bounds[ti], bounds[ti+1]
			tol := 1e-9 * (1 + math.Abs(hi))
			if t.Release <= lo+tol && d >= hi-tol && hi-lo > 0 {
				net.admiss[k] = append(net.admiss[k], ti)
			}
		}
	}
	return net
}

// Feasible reports whether all tasks can meet their deadlines at objective
// value f, by solving the max-flow transportation problem: task k ships its
// Work into (interval, machine) bins of capacity len(I_t)·speed_i,
// restricted to admissible intervals and eligible machines.
func (p *Problem) Feasible(f float64) bool {
	if p.UsePushRelabel {
		return p.feasiblePushRelabel(f)
	}
	_, ok := p.solveFlowBiased(f, false, false, nil)
	return ok
}

// FeasibleAlloc returns a deadline-respecting allocation at objective f.
// With late=false the max-flow search fills early intervals first; with
// late=true it fills late intervals first ("latest fit"), which represents
// an arbitrary deadline-feasible LP vertex with no earliness preference —
// the behaviour of the paper's non-optimised online baseline (§5.2).
func (p *Problem) FeasibleAlloc(f float64, late bool) (*Alloc, error) {
	var slot *Alloc
	if p.ws != nil {
		slot = &p.ws.allocLazy
	}
	alloc, ok := p.solveFlowBiased(f, true, late, slot)
	if !ok {
		return nil, fmt.Errorf("offline: stretch %v infeasible", f)
	}
	return alloc, nil
}

func (p *Problem) solveFlow(f float64, extract bool) (*Alloc, bool) {
	var slot *Alloc
	if p.ws != nil {
		slot = &p.ws.allocSolve
	}
	return p.solveFlowBiased(f, extract, false, slot)
}

// feasiblePushRelabel answers the same question as the Dinic path of
// solveFlowBiased, with the alternative max-flow algorithm.
func (p *Problem) feasiblePushRelabel(f float64) bool {
	n := len(p.Tasks)
	if n == 0 {
		return true
	}
	net := p.network(f)
	m := p.Inst.Platform.NumMachines()
	nT := len(net.bounds) - 1
	if nT <= 0 {
		return false
	}
	src := 0
	taskNode := func(k int) int { return 1 + k }
	binNode := func(t, i int) int { return 1 + n + t*m + i }
	sink := 1 + n + nT*m

	total := p.totalWork()
	g := p.prGraph(sink+1, 1e-12*(1+total))
	for k := range p.Tasks {
		g.AddEdge(src, taskNode(k), p.Tasks[k].Work)
	}
	binUsed, _ := p.binScratch(sink + 1)
	for k := range p.Tasks {
		for _, t := range net.admiss[k] {
			for _, mid := range p.eligible(k) {
				g.AddEdge(taskNode(k), binNode(t, int(mid)), p.Tasks[k].Work)
				binUsed[binNode(t, int(mid))] = true
			}
		}
	}
	for t := 0; t < nT; t++ {
		length := net.bounds[t+1] - net.bounds[t]
		for i := 0; i < m; i++ {
			if !binUsed[binNode(t, i)] {
				continue
			}
			g.AddEdge(binNode(t, i), sink,
				length*p.Inst.Platform.Machine(model.MachineID(i)).Speed)
		}
	}
	return g.MaxFlow(src, sink) >= total*(1-1e-9)-1e-12
}

// binEdge records one task→bin arc for allocation extraction.
type binEdge struct{ t, i, k, id int }

// solveFlowBiased runs the feasibility flow at objective f. When extract is
// true and the flow saturates the demand, it also returns the allocation,
// built in dst when non-nil (the workspace slots) or freshly otherwise.
// late reverses the admissible-interval order seen by the augmenting
// search, biasing the witness allocation toward late intervals.
func (p *Problem) solveFlowBiased(f float64, extract, late bool, dst *Alloc) (*Alloc, bool) {
	n := len(p.Tasks)
	if n == 0 {
		a := p.allocSlot(dst)
		a.prepare(p, f, nil, 0, 0, 0)
		return a, true
	}
	net := p.network(f)
	m := p.Inst.Platform.NumMachines()
	nT := len(net.bounds) - 1
	if nT <= 0 {
		return nil, false
	}

	// Node layout: src, tasks, (interval,machine) bins, sink.
	src := 0
	taskNode := func(k int) int { return 1 + k }
	binNode := func(t, i int) int { return 1 + n + t*m + i }
	sink := 1 + n + nT*m

	total := p.totalWork()
	// Capacity tolerance relative to the shipped magnitude: absolute 1e-12
	// epsilons cause micro-augmentation churn when works are O(10³).
	g := p.dinicGraph(sink+1, 1e-12*(1+total))
	for k := range p.Tasks {
		g.AddEdge(src, taskNode(k), p.Tasks[k].Work)
	}
	binUsed, edges := p.binScratch(sink + 1)
	for k := range p.Tasks {
		admiss := net.admiss[k]
		for ai := range admiss {
			t := admiss[ai]
			if late {
				t = admiss[len(admiss)-1-ai]
			}
			for _, mid := range p.eligible(k) {
				id := g.AddEdge(taskNode(k), binNode(t, int(mid)), p.Tasks[k].Work)
				if extract {
					edges = append(edges, binEdge{t, int(mid), k, id})
				}
				binUsed[binNode(t, int(mid))] = true
			}
		}
	}
	for t := 0; t < nT; t++ {
		length := net.bounds[t+1] - net.bounds[t]
		for i := 0; i < m; i++ {
			if !binUsed[binNode(t, i)] {
				continue
			}
			g.AddEdge(binNode(t, i), sink, length*p.Inst.Platform.Machine(model.MachineID(i)).Speed)
		}
	}
	if p.ws != nil {
		p.ws.edges = edges // retain the grown backing for the next build
	}

	got := g.MaxFlow(src, sink)
	if got < total*(1-1e-9)-1e-12 {
		return nil, false
	}
	if !extract {
		return nil, true
	}
	alloc := p.allocSlot(dst)
	alloc.prepare(p, f, net.bounds, nT, m, n)
	for _, e := range edges {
		if fl := g.EdgeFlow(e.id); fl > 0 {
			alloc.Work[e.t][e.i][e.k] += fl
		}
	}
	return alloc, true
}
