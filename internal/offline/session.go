package offline

import (
	"fmt"
	"math"
	"slices"

	"stretchsched/internal/lp"
	"stretchsched/internal/model"
	"stretchsched/internal/rat"
)

// Delta describes how the task set changed between two consecutive solves
// on a Session — the event-stream vocabulary of the online path. It is
// informational (the session recomputes it on every solve) and owned by the
// session: valid until the next OptimalStretch call.
type Delta struct {
	Arrived      []model.JobID // jobs seen for the first time
	Completed    []model.JobID // jobs present last event, absent now
	BoundChanged []model.JobID // surviving jobs whose remaining work moved
}

// Session is a persistent incremental System (1) solve session for a stream
// of related exact-mode problems — the per-event re-optimisations of the
// online algorithms, where consecutive problems differ by one job's rows
// and bounds.
//
// The session keeps the lp.Incremental warm-start state (basis, eta file,
// factorisation) alive across events and names every LP column and row
// with a stable identity derived from per-job slots: each job is assigned a
// slot on arrival (recycled through a free-list on completion), and slots —
// not per-event task indices — key the variable blocks, completion rows,
// and interval owners. The retained optimal basis therefore maps onto the
// next event's program even as jobs arrive and complete, and the simplex
// resumes from it instead of running cold Phase I. Warm-started solves are
// bit-identical in status and objective to cold solves of the same program
// (exact arithmetic; enforced by FuzzIncrementalDifferential); when warm
// feasibility repair fails the session falls back to a cold solve, counted
// in Stats().Fallback, never silent.
//
// A Session is single-goroutine, like the Workspace that owns it.
type Session struct {
	inc  *lp.Incremental[rat.Rat]
	prob *lp.Problem[rat.Rat]

	coldOnly bool

	// Stable slot assignment: slot → job, job → slot, recycled free slots,
	// per-event slot → task index (−1 when absent), task index → slot, and
	// the last-seen remaining work for BoundChanged detection.
	slots      []model.JobID
	slotOf     map[model.JobID]int
	free       []int
	taskOf     []int
	slotOfTask []int
	prevWork   []float64

	delta Delta

	// Builder scratch, reused across events.
	colIDs []int64
	rowIDs []int64
	vars   []exTriple
	varOf  map[exTriple]int
	vs     []int
	cs     []rat.Rat
	items  []sessItem
	bounds []rat.Affine
	owner  []int64
}

// NewSession returns an empty session. Workspace.Session is the pooled
// accessor the online path uses.
func NewSession() *Session {
	return &Session{inc: lp.NewIncremental[rat.Rat]()}
}

// Stats exposes the underlying warm/cold/fallback counters.
func (ss *Session) Stats() *lp.IncrementalStats { return ss.inc.Stats() }

// Incremental exposes the underlying LP session (test seams such as
// ForceWarmFailure, and the tier counters on its workspace).
func (ss *Session) Incremental() *lp.Incremental[rat.Rat] { return ss.inc }

// LastDelta returns the delta computed by the most recent OptimalStretch
// call. Owned by the session; valid until the next call.
func (ss *Session) LastDelta() *Delta { return &ss.delta }

// SetColdOnly forces every solve on this session to run cold — the
// ablation baseline for the warm-start benchmarks and differential tests.
func (ss *Session) SetColdOnly(cold bool) { ss.coldOnly = cold }

// SessionState is the deterministic identity state of a session — the slot
// table that names every LP column and row across events. It deliberately
// excludes the lp.Incremental basis: warm-started solves are bit-identical
// in status and objective to cold solves of the same program (the fuzz-
// pinned invariant), so a restored session re-solving cold reproduces the
// decision-relevant outputs exactly, and the basis would be both large and
// representation-dependent to encode.
type SessionState struct {
	Slots    []model.JobID // slot → job (stale entries for free slots)
	Live     []bool        // slot → currently assigned
	Free     []int         // free-list, recycled LIFO, order significant
	PrevWork []float64     // slot → last-seen remaining work
}

// State snapshots the session's slot table for a checkpoint.
func (ss *Session) State() SessionState {
	st := SessionState{
		Slots:    append([]model.JobID(nil), ss.slots...),
		Live:     make([]bool, len(ss.slots)),
		Free:     append([]int(nil), ss.free...),
		PrevWork: append([]float64(nil), ss.prevWork...),
	}
	for slot, id := range ss.slots {
		if cur, ok := ss.slotOf[id]; ok && cur == slot {
			st.Live[slot] = true
		}
	}
	return st
}

// Restore rebuilds the slot table from a checkpoint and resets the LP
// session, so the next solve runs cold on identically-named columns and
// rows — bit-identical in objective to the warm solve an uninterrupted
// session would have produced.
func (ss *Session) Restore(st SessionState) error {
	n := len(st.Slots)
	if len(st.Live) != n || len(st.PrevWork) != n {
		return fmt.Errorf("offline: session restore: slot table lengths %d/%d/%d disagree",
			n, len(st.Live), len(st.PrevWork))
	}
	for _, slot := range st.Free {
		if slot < 0 || slot >= n || st.Live[slot] {
			return fmt.Errorf("offline: session restore: bad free slot %d", slot)
		}
	}
	ss.slots = append(ss.slots[:0], st.Slots...)
	ss.free = append(ss.free[:0], st.Free...)
	ss.prevWork = append(ss.prevWork[:0], st.PrevWork...)
	ss.taskOf = append(ss.taskOf[:0], make([]int, n)...)
	for i := range ss.taskOf {
		ss.taskOf[i] = -1
	}
	ss.slotOf = make(map[model.JobID]int, n)
	for slot, id := range st.Slots {
		if st.Live[slot] {
			if _, dup := ss.slotOf[id]; dup {
				return fmt.Errorf("offline: session restore: job %d live in two slots", id)
			}
			ss.slotOf[id] = slot
		}
	}
	ss.inc = lp.NewIncremental[rat.Rat]()
	ss.prob = nil
	ss.delta = Delta{}
	return nil
}

// OptimalStretch is Solver.OptimalStretch through the session: identical
// bracket search, but the exact refinement solves System (1) on the
// retained incremental LP session instead of a from-scratch program. Only
// the sparse exact path warm-starts; float-bisection and DenseLP
// configurations delegate to the one-shot solver unchanged.
func (ss *Session) OptimalStretch(s *Solver, p *Problem) (*Solution, error) {
	if !s.Exact || s.DenseLP {
		return s.OptimalStretch(p)
	}
	ss.applyDelta(p)
	sol, flo, fhi, err := s.bracket(p)
	if sol != nil || err != nil {
		return sol, err
	}
	return ss.refine(p, flo, fhi)
}

// applyDelta diffs p's task set against the session's slot table: new jobs
// take a slot (free-list first), surviving jobs with moved remaining work
// are recorded as bound changes, and jobs gone since the last event release
// their slot. Task order within p is irrelevant — slots, assigned in
// first-arrival order, define the stable identities.
//
//stretch:noalloc
func (ss *Session) applyDelta(p *Problem) {
	ss.delta.Arrived = ss.delta.Arrived[:0]
	ss.delta.Completed = ss.delta.Completed[:0]
	ss.delta.BoundChanged = ss.delta.BoundChanged[:0]
	if ss.slotOf == nil {
		ss.slotOf = make(map[model.JobID]int) //stretch:alloc-ok — lazy init
	}
	for i := range ss.taskOf {
		ss.taskOf[i] = -1
	}
	if cap(ss.slotOfTask) < len(p.Tasks) {
		ss.slotOfTask = make([]int, len(p.Tasks)) //stretch:alloc-ok — one-time growth
	}
	ss.slotOfTask = ss.slotOfTask[:len(p.Tasks)]
	for k := range p.Tasks {
		id := p.Tasks[k].Job
		slot, known := ss.slotOf[id]
		if !known {
			if n := len(ss.free); n > 0 {
				slot = ss.free[n-1]
				ss.free = ss.free[:n-1]
			} else {
				slot = len(ss.slots)
				ss.slots = append(ss.slots, 0)       //stretch:alloc-ok — slot-table growth
				ss.taskOf = append(ss.taskOf, -1)    //stretch:alloc-ok — slot-table growth
				ss.prevWork = append(ss.prevWork, 0) //stretch:alloc-ok — slot-table growth
			}
			ss.slots[slot] = id
			ss.slotOf[id] = slot
			ss.delta.Arrived = append(ss.delta.Arrived, id) //stretch:alloc-ok — delta growth
		} else if ss.prevWork[slot] != p.Tasks[k].Work {
			ss.delta.BoundChanged = append(ss.delta.BoundChanged, id) //stretch:alloc-ok — delta growth
		}
		ss.taskOf[slot] = k
		ss.slotOfTask[k] = slot
		ss.prevWork[slot] = p.Tasks[k].Work
	}
	for slot := range ss.slots {
		if ss.taskOf[slot] >= 0 {
			continue
		}
		id := ss.slots[slot]
		if cur, live := ss.slotOf[id]; live && cur == slot {
			delete(ss.slotOf, id)
			ss.free = append(ss.free, slot)                     //stretch:alloc-ok — free-list growth
			ss.delta.Completed = append(ss.delta.Completed, id) //stretch:alloc-ok — delta growth
		}
	}
}

// Stable identity encoding. Slots are bounded by the maximum number of
// concurrently active jobs (free slots are recycled), so 20 bits is far
// beyond any realistic event stream.
const (
	sessIDF    int64 = 1 // the F variable
	sessRowFLo int64 = 2 // F ≥ flo
	sessRowFHi int64 = 3 // F ≤ fhi
)

func sessColID(owner, machine, slot int64) int64 {
	return 1<<62 | owner<<40 | machine<<20 | slot
}

func sessCapRowID(owner, machine int64) int64 {
	return 1<<60 | owner<<20 | machine
}

func sessCplRowID(slot int64) int64 { return 1<<61 | slot }

// sessItem is affItem plus the boundary's owner key: kind bit (0 release,
// 1 deadline) over the owning job's slot. The key doubles as the sort
// tie-break, making the merged boundary structure — and with it every
// derived column/row identity — deterministic, which slices.SortFunc alone
// (unstable) would not give.
type sessItem struct {
	aff rat.Affine
	val float64
	key int64
}

// affines is intervalAffines with owner tracking: same probe-point
// ordering, below-release drop and duplicate merge, but each surviving
// boundary carries the owner key that names it across events.
//
//stretch:noalloc
func (ss *Session) affines(p *Problem, fm float64) ([]rat.Affine, []int64) {
	items := ss.items[:0]
	minRel := math.Inf(1)
	for k := range p.Tasks {
		t := &p.Tasks[k]
		slot := int64(ss.slotOfTask[k])
		minRel = math.Min(minRel, t.Release)
		items = append(items, //stretch:alloc-ok — scratch growth
			sessItem{rat.Const(rat.FromFloat(t.Release)), t.Release, slot},
			sessItem{rat.Line(rat.FromFloat(t.DeadA), rat.FromFloat(t.DeadB)), t.Deadline(fm), 1<<20 | slot})
	}
	slices.SortFunc(items, func(a, b sessItem) int { //stretch:alloc-ok — sort closure
		switch {
		case a.val < b.val:
			return -1
		case a.val > b.val:
			return 1
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		}
		return 0
	})
	out, owner := ss.bounds[:0], ss.owner[:0]
	var lastVal float64
	for _, it := range items {
		if it.val < minRel-1e-12*(1+math.Abs(minRel)) {
			continue
		}
		if len(out) > 0 && math.Abs(it.val-lastVal) <= 1e-12*(1+math.Abs(it.val)) {
			continue
		}
		out = append(out, it.aff)     //stretch:alloc-ok — scratch growth
		owner = append(owner, it.key) //stretch:alloc-ok — scratch growth
		lastVal = it.val
	}
	ss.items, ss.bounds, ss.owner = items, out, owner
	return out, owner
}

// refine builds System (1) on [flo, fhi] exactly as Solver.refineExact
// does, but into the session's pooled LP with stable column/row IDs —
// variables in per-job slot blocks, completion rows keyed by slot, capacity
// rows and interval owners keyed by the interval's upper boundary — and
// solves it warm on the incremental session (cold when coldOnly is set).
func (ss *Session) refine(p *Problem, flo, fhi float64) (*Solution, error) {
	mid := flo + (fhi-flo)/2
	bounds, owner := ss.affines(p, mid)
	nT := len(bounds) - 1
	if nT <= 0 {
		return nil, fmt.Errorf("offline: empty interval structure")
	}
	m := p.Inst.Platform.NumMachines()
	n := len(p.Tasks)

	vars := ss.vars[:0]
	if ss.varOf == nil {
		ss.varOf = map[exTriple]int{}
	}
	varOf := ss.varOf
	clear(varOf)
	colIDs := ss.colIDs[:0]
	for slot := 0; slot < len(ss.taskOf); slot++ {
		k := ss.taskOf[slot]
		if k < 0 {
			continue
		}
		tk := &p.Tasks[k]
		d := tk.Deadline(mid)
		for t := 0; t < nT; t++ {
			lo, hi := bounds[t].EvalFloat(mid), bounds[t+1].EvalFloat(mid)
			tol := 1e-12 * (1 + math.Abs(hi))
			if !(tk.Release <= lo+tol && d >= hi-tol) {
				continue
			}
			for _, mi := range p.eligible(k) {
				varOf[exTriple{t, int(mi), k}] = len(vars)
				vars = append(vars, exTriple{t, int(mi), k})
				colIDs = append(colIDs, sessColID(owner[t+1], int64(mi), int64(slot)))
			}
		}
	}
	fVar := len(vars)
	colIDs = append(colIDs, sessIDF)
	if ss.prob == nil {
		// Tier counters live on the incremental session's LP workspace,
		// mirroring the refineExact wiring on Workspace.lpws.
		ss.prob = lp.New[rat.Rat](lp.RatOps{Tiers: ss.inc.Workspace().Tiers()}, fVar+1)
	} else {
		ss.prob.Reset(fVar + 1)
	}
	prob := ss.prob
	prob.SetObjectiveCoef(fVar, rat.One)

	rowIDs := ss.rowIDs[:0]
	vs, cs := append(ss.vs[:0], fVar), append(ss.cs[:0], rat.One)
	prob.AddSparse(vs, cs, lp.GE, rat.FromFloat(flo))
	rowIDs = append(rowIDs, sessRowFLo)
	prob.AddSparse(vs, cs, lp.LE, rat.FromFloat(fhi))
	rowIDs = append(rowIDs, sessRowFHi)

	for t := 0; t < nT; t++ {
		lenA := bounds[t+1].A.Sub(bounds[t].A)
		lenB := bounds[t+1].B.Sub(bounds[t].B)
		for i := 0; i < m; i++ {
			vs, cs = vs[:0], cs[:0]
			for k := 0; k < n; k++ {
				if v, ok := varOf[exTriple{t, i, k}]; ok {
					vs = append(vs, v)
					cs = append(cs, rat.One)
				}
			}
			if len(vs) == 0 {
				continue
			}
			speed := rat.FromFloat(p.Inst.Platform.Machine(model.MachineID(i)).Speed)
			vs = append(vs, fVar)
			cs = append(cs, speed.Mul(lenB).Neg())
			prob.AddSparse(vs, cs, lp.LE, speed.Mul(lenA))
			rowIDs = append(rowIDs, sessCapRowID(owner[t+1], int64(i)))
		}
	}
	for slot := 0; slot < len(ss.taskOf); slot++ {
		k := ss.taskOf[slot]
		if k < 0 {
			continue
		}
		vs, cs = vs[:0], cs[:0]
		for vi := range vars {
			if vars[vi].k == k {
				vs = append(vs, vi)
				cs = append(cs, rat.One)
			}
		}
		if len(vs) == 0 {
			return nil, fmt.Errorf("offline: task %d has no admissible slot in [%v,%v]", k, flo, fhi)
		}
		prob.AddSparse(vs, cs, lp.EQ, rat.FromFloat(p.Tasks[k].Work))
		rowIDs = append(rowIDs, sessCplRowID(int64(slot)))
	}
	ss.vars, ss.colIDs, ss.rowIDs, ss.vs, ss.cs = vars, colIDs, rowIDs, vs, cs

	var sol *lp.Solution[rat.Rat]
	var err error
	if ss.coldOnly {
		sol, err = ss.inc.Cold(prob, colIDs, rowIDs)
	} else {
		sol, err = ss.inc.Solve(prob, colIDs, rowIDs)
	}
	if err != nil {
		return nil, fmt.Errorf("offline: System (1) refinement: %w", err)
	}
	fstar := sol.X[fVar]
	alloc := p.allocSlot(allocSolveSlot(p))
	alloc.prepare(p, fstar.Float(), nil, nT, m, n)
	alloc.Bounds = alloc.Bounds[:0]
	for _, b := range bounds {
		alloc.Bounds = append(alloc.Bounds, b.Eval(fstar).Float())
	}
	for vi := range vars {
		if w := sol.X[vi].Float(); w > 0 {
			tr := vars[vi]
			alloc.Work[tr.t][tr.i][tr.k] += w
		}
	}
	out := p.solution()
	*out = Solution{Stretch: fstar.Float(), ExactStretch: fstar, Alloc: alloc}
	return out, nil
}
