package offline

import (
	"fmt"
	"math"
	"slices"

	"stretchsched/internal/model"
	"stretchsched/internal/sim"
)

// Ordering selects how an interval's allocated fractions are sequenced on
// each machine when an Alloc is turned into a concrete timetable. These are
// the Step-4 variants of the paper's online heuristic (§4.3.2); the offline
// algorithm uses TerminalSWRPT as well.
type Ordering int

const (
	// TerminalSWRPT is the paper's first variant ("Online"): within an
	// interval, jobs that finish their share on this machine in this
	// interval run first under the SWRPT order; non-terminal jobs follow.
	TerminalSWRPT Ordering = iota
	// GlobalCompletionEDF is the "Online-EDF" variant: each machine orders
	// its fractions by the interval in which the job's total share (across
	// all machines) completes, ties broken by SWRPT.
	GlobalCompletionEDF
)

// Realize converts an allocation into a per-machine timetable. Work placed
// in interval t is packed from the interval's start in the selected order;
// capacity feasibility of the allocation guarantees it fits. With a
// workspace-backed problem, the returned plan and all realisation scratch
// are pooled (the plan is overwritten by the next Realize on the same
// workspace); the per-machine sorts use slices.SortFunc, so the steady
// state allocates nothing.
func (a *Alloc) Realize(order Ordering) (*sim.Plan, error) {
	ws := a.Problem.ws
	m := a.Problem.Inst.Platform.NumMachines()
	var plan *sim.Plan
	if ws != nil {
		ws.plan.Reset(m)
		plan = &ws.plan
	} else {
		plan = sim.NewPlan(m)
	}
	if len(a.Work) == 0 {
		return plan, nil
	}
	n := len(a.Problem.Tasks)
	nT := len(a.Work)

	// Remaining global work of each task before each interval, for SWRPT
	// keys: a flattened (nT+1)×n table, row t at offset t·n.
	var remBefore []float64
	if ws != nil {
		if cap(ws.remBefore) < (nT+1)*n {
			ws.remBefore = make([]float64, (nT+1)*n)
		}
		remBefore = ws.remBefore[:(nT+1)*n]
	} else {
		remBefore = make([]float64, (nT+1)*n)
	}
	for k := 0; k < n; k++ {
		remBefore[k] = a.Problem.Tasks[k].Work
	}
	for t := 0; t < nT; t++ {
		row, next := remBefore[t*n:(t+1)*n], remBefore[(t+1)*n:(t+2)*n]
		copy(next, row)
		for i := range a.Work[t] {
			for k, w := range a.Work[t][i] {
				next[k] -= w
			}
		}
	}

	var lastGlobal []int
	if ws != nil {
		if cap(ws.lastGlobal) < n {
			ws.lastGlobal = make([]int, n) //stretch:alloc-ok — buffer growth
		}
		lastGlobal = ws.lastGlobal[:n]
	} else {
		lastGlobal = make([]int, n) //stretch:alloc-ok — nil-workspace path
	}
	for k := 0; k < n; k++ {
		lastGlobal[k] = a.LastInterval(k)
	}

	var ks []int
	if ws != nil {
		ks = ws.ks[:0]
	}
	for t := range a.Work {
		lo, hi := a.Bounds[t], a.Bounds[t+1]
		length := hi - lo
		rem := remBefore[t*n : (t+1)*n]
		for i := 0; i < m; i++ {
			ks = ks[:0]
			totalDur := 0.0
			speed := a.Problem.Inst.Platform.Machine(model.MachineID(i)).Speed
			for k, w := range a.Work[t][i] {
				if w > 0 {
					ks = append(ks, k)
					totalDur += w / speed
				}
			}
			if len(ks) == 0 {
				continue
			}
			if totalDur > length*(1+1e-6)+1e-9 {
				return nil, fmt.Errorf("offline: interval %d machine %d overfull: %v > %v",
					t, i, totalDur, length)
			}
			scale := 1.0
			if totalDur > length && totalDur > 0 {
				scale = length / totalDur // absorb float dust
			}
			swrpt := func(k int) float64 {
				return a.Problem.Tasks[k].DeadB * rem[k]
			}
			switch order {
			case TerminalSWRPT:
				term := func(k int) bool { return a.LastIntervalOn(k, i) == t }
				slices.SortFunc(ks, func(kx, ky int) int {
					tx, ty := term(kx), term(ky)
					if tx != ty {
						if tx {
							return -1
						}
						return 1
					}
					sx, sy := swrpt(kx), swrpt(ky)
					switch {
					case sx < sy:
						return -1
					case sx > sy:
						return 1
					}
					return kx - ky
				})
			case GlobalCompletionEDF:
				slices.SortFunc(ks, func(kx, ky int) int {
					if lastGlobal[kx] != lastGlobal[ky] {
						return lastGlobal[kx] - lastGlobal[ky]
					}
					sx, sy := swrpt(kx), swrpt(ky)
					switch {
					case sx < sy:
						return -1
					case sx > sy:
						return 1
					}
					return kx - ky
				})
			default:
				return nil, fmt.Errorf("offline: unknown ordering %d", order)
			}
			cursor := lo
			for _, k := range ks {
				d := a.Work[t][i][k] / speed * scale
				end := math.Min(cursor+d, hi)
				plan.Add(model.MachineID(i), sim.PlanSlice{
					Job: a.Problem.Tasks[k].Job, Start: cursor, End: end,
				})
				cursor = end
			}
		}
	}
	if ws != nil {
		ws.ks = ks
	}
	return plan, nil
}

// GlobalOrder returns the tasks sorted by the Online-EGDF priority: the
// interval in which the task's total work completes, ties broken by SWRPT
// at the allocation start, then by job ID. It is used as a priority list
// for the greedy spatial rule rather than as an explicit timetable.
func (a *Alloc) GlobalOrder() []model.JobID {
	return a.AppendGlobalOrder(nil)
}

// AppendGlobalOrder appends the GlobalOrder priority list to dst and
// returns it. With a workspace-backed problem the sort index and the
// completion-interval table are pooled scratch, so a caller that also
// reuses dst (Online-EGDF holds its list across arrival events) performs
// no steady-state allocation.
//
//stretch:noalloc
func (a *Alloc) AppendGlobalOrder(dst []model.JobID) []model.JobID {
	ws := a.Problem.ws
	n := len(a.Problem.Tasks)

	// Completion intervals once per task, not per comparison.
	var lastGlobal []int
	if ws != nil {
		if cap(ws.lastGlobal) < n {
			ws.lastGlobal = make([]int, n) //stretch:alloc-ok — buffer growth
		}
		lastGlobal = ws.lastGlobal[:n]
	} else {
		lastGlobal = make([]int, n) //stretch:alloc-ok — nil-workspace path
	}
	for k := 0; k < n; k++ {
		lastGlobal[k] = a.LastInterval(k)
	}

	var ks []int
	if ws != nil {
		ks = ws.ks[:0]
	} else {
		ks = make([]int, 0, n) //stretch:alloc-ok — nil-workspace path
	}
	for k := 0; k < n; k++ {
		ks = append(ks, k) //stretch:alloc-ok — pre-sized or pooled backing
	}
	slices.SortFunc(ks, func(kx, ky int) int { //stretch:alloc-ok — non-escaping comparison closure
		if lastGlobal[kx] != lastGlobal[ky] {
			return lastGlobal[kx] - lastGlobal[ky]
		}
		sx := a.Problem.Tasks[kx].DeadB * a.Problem.Tasks[kx].Work
		sy := a.Problem.Tasks[ky].DeadB * a.Problem.Tasks[ky].Work
		switch {
		case sx < sy:
			return -1
		case sx > sy:
			return 1
		}
		return int(a.Problem.Tasks[kx].Job) - int(a.Problem.Tasks[ky].Job)
	})
	for _, k := range ks {
		dst = append(dst, a.Problem.Tasks[k].Job)
	}
	if ws != nil {
		ws.ks = ks
	}
	return dst
}
