// Package offline implements the paper's polynomial-time optimal max-stretch
// algorithm (§4.3.1): a binary search over the "milestones" of the objective
// — the values of F at which the relative order of release dates and
// deadlines d̄_j(F) = r_j + F·p*_j changes — with a deadline-scheduling
// feasibility oracle inside each search step, and a final refinement inside
// the bracketing milestone interval.
//
// The paper solves both the feasibility test and the refinement with linear
// programs (System (1)). Here the feasibility test is a max-flow
// (transportation) computation, the refinement is either a float64
// bisection (fast path) or System (1) itself on exact rationals (Exact
// mode), which removes the floating-point anomaly reported in §5.3.
//
// The same machinery serves the online heuristics: they repeatedly solve
// the "best achievable max-stretch given past decisions" problem, which is
// this problem with effective release dates collapsed to the current time
// and sizes replaced by remaining work.
package offline

import (
	"fmt"
	"math"
	"slices"

	"stretchsched/internal/model"
	"stretchsched/internal/sim"
)

// Task is one deadline-scheduling task: Work units of a job, available from
// Release, that must finish by DeadA + F·DeadB for the stretch objective F.
type Task struct {
	Job     model.JobID
	Release float64 // effective release (the scheduler's "now" for online use)
	Work    float64 // remaining work, > 0
	DeadA   float64 // deadline intercept (original release r_j)
	DeadB   float64 // deadline slope (alone time p*_j), > 0
}

// Deadline returns d̄(F) = DeadA + F·DeadB.
func (t *Task) Deadline(f float64) float64 { return t.DeadA + f*t.DeadB }

// Problem is a max-stretch minimisation instance over a platform.
type Problem struct {
	Inst  *model.Instance
	Tasks []Task

	// UsePushRelabel switches the feasibility oracle from Dinic to the
	// highest-label push-relabel solver. Results are identical; relative
	// speed depends on the network shape (see the max-flow ablation
	// benchmark). Allocation extraction always uses Dinic, whose witness
	// bias is part of the non-optimised baseline's contract.
	UsePushRelabel bool

	// ws, when non-nil, supplies pooled buffers for every solver stage; see
	// Workspace. Problems built by the package-level constructors or by hand
	// have no workspace and allocate freshly, as before.
	ws *Workspace
}

// FromInstance builds the full offline problem: every job with its original
// release, full size and stretch deadline.
func FromInstance(inst *model.Instance) *Problem {
	return fillFromInstance(&Problem{Inst: inst}, inst)
}

func fillFromInstance(p *Problem, inst *model.Instance) *Problem {
	for j := range inst.Jobs {
		id := model.JobID(j)
		p.Tasks = append(p.Tasks, Task{
			Job:     id,
			Release: inst.Jobs[j].Release,
			Work:    inst.Jobs[j].Size,
			DeadA:   inst.Jobs[j].Release,
			DeadB:   inst.AloneTime(id),
		})
	}
	return p
}

// FromContext builds the online re-optimisation problem at ctx.Now: active
// jobs only, available immediately, with remaining work and their original
// stretch deadline functions.
func FromContext(ctx *sim.Ctx) *Problem {
	return fillFromContext(&Problem{Inst: ctx.Inst}, ctx)
}

func fillFromContext(p *Problem, ctx *sim.Ctx) *Problem {
	for j := range ctx.Remaining {
		if !ctx.Released[j] || ctx.Done[j] || ctx.Remaining[j] <= 0 {
			continue
		}
		id := model.JobID(j)
		p.Tasks = append(p.Tasks, Task{
			Job:     id,
			Release: ctx.Now,
			Work:    ctx.Remaining[j],
			DeadA:   ctx.Inst.Jobs[j].Release,
			DeadB:   ctx.Inst.AloneTime(id),
		})
	}
	return p
}

// eligible returns the machines allowed for task k.
func (p *Problem) eligible(k int) []model.MachineID {
	return p.Inst.Eligible(p.Tasks[k].Job)
}

// aggSpeed returns the aggregate eligible speed of task k.
func (p *Problem) aggSpeed(k int) float64 {
	return p.Inst.Platform.AggregateSpeed(p.Inst.Jobs[p.Tasks[k].Job].Databank)
}

// totalWork returns Σ Work over tasks.
func (p *Problem) totalWork() float64 {
	w := 0.0
	for k := range p.Tasks {
		w += p.Tasks[k].Work
	}
	return w
}

// LowerBound returns a stretch value no optimal solution can beat: every
// task needs its deadline to be at least its effective release plus its
// duration alone on its eligible machines.
func (p *Problem) LowerBound() float64 {
	lb := 0.0
	for k := range p.Tasks {
		t := &p.Tasks[k]
		need := (t.Release + t.Work/p.aggSpeed(k) - t.DeadA) / t.DeadB
		lb = math.Max(lb, need)
	}
	return lb
}

// UpperBound returns a stretch value that is certainly feasible: process
// tasks one after another, each alone on its eligible machines, in release
// order starting from the latest release.
func (p *Problem) UpperBound() float64 {
	if len(p.Tasks) == 0 {
		return 1
	}
	end := 0.0
	for k := range p.Tasks {
		t := &p.Tasks[k]
		end = math.Max(end, t.Release)
	}
	ub := p.LowerBound()
	for k := range p.Tasks {
		t := &p.Tasks[k]
		end += t.Work / p.aggSpeed(k)
	}
	for k := range p.Tasks {
		t := &p.Tasks[k]
		ub = math.Max(ub, (end-t.DeadA)/t.DeadB)
	}
	return ub
}

// Milestones enumerates the paper's milestones within (lo, hi]: objective
// values at which a deadline function crosses a release date or another
// deadline function, i.e. where the epochal-time ordering can change. The
// returned slice is sorted and deduplicated; with a workspace attached it is
// workspace-owned and valid until the next Milestones call.
func (p *Problem) Milestones(lo, hi float64) []float64 {
	var ms, rel []float64
	if p.ws != nil {
		ms, rel = p.ws.ms[:0], p.ws.releases[:0]
	}
	inRange := func(f float64) bool {
		return f > lo && f <= hi && !math.IsNaN(f) && !math.IsInf(f, 0)
	}
	// Deadline/release crossings, over the deduplicated release dates.
	for k := range p.Tasks {
		rel = append(rel, p.Tasks[k].Release)
	}
	slices.Sort(rel)
	uniq := rel[:0]
	for i, r := range rel {
		if i == 0 || r != uniq[len(uniq)-1] {
			uniq = append(uniq, r)
		}
	}
	rel = uniq
	for k := range p.Tasks {
		t := &p.Tasks[k]
		for _, r := range rel {
			if f := (r - t.DeadA) / t.DeadB; inRange(f) {
				ms = append(ms, f)
			}
		}
	}
	// Deadline/deadline crossings.
	for a := range p.Tasks {
		for b := a + 1; b < len(p.Tasks); b++ {
			ta, tb := &p.Tasks[a], &p.Tasks[b]
			if ta.DeadB == tb.DeadB {
				continue
			}
			if f := (tb.DeadA - ta.DeadA) / (ta.DeadB - tb.DeadB); inRange(f) {
				ms = append(ms, f)
			}
		}
	}
	slices.Sort(ms)
	out := ms[:0]
	for i, f := range ms {
		if i == 0 || f > out[len(out)-1]*(1+1e-12)+1e-300 {
			out = append(out, f)
		}
	}
	if p.ws != nil {
		p.ws.ms, p.ws.releases = ms, rel
	}
	return out
}

// Intervals returns the epochal-time boundaries at objective value f:
// the sorted, deduplicated union of effective releases and deadlines,
// truncated below by the earliest release. There are len(result)-1
// scheduling intervals. The result is appended to out (which may be nil).
func (p *Problem) Intervals(f float64) []float64 { return p.intervalsInto(f, nil) }

func (p *Problem) intervalsInto(f float64, out []float64) []float64 {
	var pts []float64
	if p.ws != nil {
		pts = p.ws.pts[:0]
	}
	minRel := math.Inf(1)
	for k := range p.Tasks {
		t := &p.Tasks[k]
		pts = append(pts, t.Release, t.Deadline(f))
		minRel = math.Min(minRel, t.Release)
	}
	slices.Sort(pts)
	if p.ws != nil {
		p.ws.pts = pts
	}
	out = out[:0]
	for _, x := range pts {
		if x < minRel {
			continue
		}
		if len(out) == 0 || x > out[len(out)-1]+1e-12*(1+math.Abs(x)) {
			out = append(out, x)
		}
	}
	return out
}

func (p *Problem) validate() error {
	for k := range p.Tasks {
		t := &p.Tasks[k]
		if t.Work <= 0 {
			return fmt.Errorf("offline: task %d has nonpositive work %v", k, t.Work)
		}
		if t.DeadB <= 0 {
			return fmt.Errorf("offline: task %d has nonpositive deadline slope %v", k, t.DeadB)
		}
	}
	return nil
}
