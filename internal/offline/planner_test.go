package offline

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"stretchsched/internal/model"
	"stretchsched/internal/sim"
)

// plannerTestInstance is a small mixed-availability instance on which the
// refined offline planner does real System (2) work.
func plannerTestInstance(t testing.TB, seed int64, nJobs int) *model.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ms := make([]model.Machine, 3)
	for i := range ms {
		banks := []model.DatabankID{0}
		if i != 1 {
			banks = append(banks, 1)
		}
		ms[i] = model.Machine{Speed: 1 + rng.Float64(), Databanks: banks}
	}
	p, err := model.NewPlatform(ms, 2)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]model.Job, nJobs)
	for j := range jobs {
		jobs[j] = model.Job{
			Release:  rng.Float64() * 10,
			Size:     1 + rng.Float64()*6,
			Databank: model.DatabankID(rng.Intn(2)),
		}
	}
	inst, err := model.NewInstance(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestPlannerSurfacesRefineError is the regression test for the silently-
// swallowed System (2) failure: a Refined planner whose refinement fails
// must abort the run with that error, not quietly report unrefined results
// as "Offline-Refined".
func TestPlannerSurfacesRefineError(t *testing.T) {
	inst := plannerTestInstance(t, 3, 8)
	boom := errors.New("refine exploded")
	pl := &Planner{Refined: true}
	pl.refine = func(*Problem, float64) (*Alloc, error) { return nil, fmt.Errorf("forced: %w", boom) }
	_, err := sim.RunPlanned(inst, pl)
	if err == nil {
		t.Fatal("Refine failure was silently masked: run reported success")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("run failed with %v, want the forced refine error surfaced", err)
	}
	if !strings.Contains(err.Error(), "System (2)") {
		t.Fatalf("error %q does not identify the refinement stage", err)
	}
}

// TestPlannerRefineFallbackOptIn: with AllowRefineFallback the run proceeds
// on the unrefined allocation — still max-stretch optimal — and the failure
// is recorded on the planner instead of returned.
func TestPlannerRefineFallbackOptIn(t *testing.T) {
	inst := plannerTestInstance(t, 3, 8)
	boom := errors.New("refine exploded")
	pl := &Planner{Refined: true, AllowRefineFallback: true}
	pl.refine = func(*Problem, float64) (*Alloc, error) { return nil, boom }
	sched, err := sim.RunPlanned(inst, pl)
	if err != nil {
		t.Fatalf("fallback run failed: %v", err)
	}
	if !errors.Is(pl.RefineErr(), boom) {
		t.Fatalf("RefineErr = %v, want the recorded refine failure", pl.RefineErr())
	}
	// The fallback must still be the unrefined optimal-stretch schedule.
	plain, err := sim.RunPlanned(inst, NewPlanner())
	if err != nil {
		t.Fatal(err)
	}
	for j := range sched.Completion {
		if sched.Completion[j] != plain.Completion[j] {
			t.Fatalf("job %d: fallback completion %v, unrefined %v",
				j, sched.Completion[j], plain.Completion[j])
		}
	}
	// A later successful run must clear the recorded error.
	pl.refine = nil
	if _, err := sim.RunPlanned(inst, pl); err != nil {
		t.Fatal(err)
	}
	if pl.RefineErr() != nil {
		t.Fatalf("RefineErr not cleared by Init: %v", pl.RefineErr())
	}
}

// TestPlannerRefineSuccessUnchanged: on a healthy instance the refined
// planner still refines (sanity that the seam defaults to Problem.Refine).
func TestPlannerRefineSuccessUnchanged(t *testing.T) {
	inst := plannerTestInstance(t, 7, 10)
	pl := &Planner{Refined: true}
	if _, err := sim.RunPlanned(inst, pl); err != nil {
		t.Fatalf("refined run failed: %v", err)
	}
	if pl.RefineErr() != nil {
		t.Fatalf("unexpected recorded refine error: %v", pl.RefineErr())
	}
	if pl.Stretch() <= 0 {
		t.Fatalf("stretch = %v, want positive", pl.Stretch())
	}
}
