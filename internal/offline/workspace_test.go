package offline

import (
	"testing"

	"stretchsched/internal/sim"
)

// TestWorkspaceMatchesFresh interleaves instances of different sizes through
// one workspace and checks every solver product — optimal stretch, witness
// allocation, System (2) refinement, realised plan — is identical to the
// workspace-less path's. This is the semantic contract of the pooling: the
// workspace only changes where buffers live.
func TestWorkspaceMatchesFresh(t *testing.T) {
	ws := NewWorkspace()
	var solver Solver
	for i, nJobs := range []int{10, 3, 14, 1, 8} {
		inst := plannerTestInstance(t, 100+int64(i), nJobs)

		fresh := FromInstance(inst)
		pooled := ws.FromInstance(inst)
		fsol, err := solver.OptimalStretch(fresh)
		if err != nil {
			t.Fatal(err)
		}
		psol, err := solver.OptimalStretch(pooled)
		if err != nil {
			t.Fatal(err)
		}
		if fsol.Stretch != psol.Stretch {
			t.Fatalf("jobs=%d: pooled stretch %v, fresh %v", nJobs, psol.Stretch, fsol.Stretch)
		}
		if len(fsol.Alloc.Bounds) != len(psol.Alloc.Bounds) {
			t.Fatalf("jobs=%d: bounds length %d vs %d",
				nJobs, len(psol.Alloc.Bounds), len(fsol.Alloc.Bounds))
		}
		for b := range fsol.Alloc.Bounds {
			if fsol.Alloc.Bounds[b] != psol.Alloc.Bounds[b] {
				t.Fatalf("jobs=%d: bound %d differs", nJobs, b)
			}
		}
		for ti := range fsol.Alloc.Work {
			for mi := range fsol.Alloc.Work[ti] {
				for k := range fsol.Alloc.Work[ti][mi] {
					if fsol.Alloc.Work[ti][mi][k] != psol.Alloc.Work[ti][mi][k] {
						t.Fatalf("jobs=%d: work[%d][%d][%d] differs", nJobs, ti, mi, k)
					}
				}
			}
		}

		frefined, ferr := fresh.Refine(fsol.Stretch)
		prefined, perr := pooled.Refine(psol.Stretch)
		if (ferr == nil) != (perr == nil) {
			t.Fatalf("jobs=%d: refine error mismatch: %v vs %v", nJobs, perr, ferr)
		}
		if ferr == nil {
			fplan, err := frefined.Realize(TerminalSWRPT)
			if err != nil {
				t.Fatal(err)
			}
			pplan, err := prefined.Realize(TerminalSWRPT)
			if err != nil {
				t.Fatal(err)
			}
			if len(fplan.PerMachine) != len(pplan.PerMachine) {
				t.Fatalf("jobs=%d: plan machine counts differ", nJobs)
			}
			for mi := range fplan.PerMachine {
				if len(fplan.PerMachine[mi]) != len(pplan.PerMachine[mi]) {
					t.Fatalf("jobs=%d machine %d: %d slices pooled, %d fresh", nJobs, mi,
						len(pplan.PerMachine[mi]), len(fplan.PerMachine[mi]))
				}
				for s := range fplan.PerMachine[mi] {
					if fplan.PerMachine[mi][s] != pplan.PerMachine[mi][s] {
						t.Fatalf("jobs=%d machine %d slice %d differs", nJobs, mi, s)
					}
				}
			}
		}
	}
}

// TestWorkspacePlannerMatchesFresh runs the full planned pipeline — engine,
// planner, workspace — against the workspace-less package-level path on
// interleaved instance sizes, for both the plain and refined planners.
func TestWorkspacePlannerMatchesFresh(t *testing.T) {
	eng := sim.NewEngine()
	ws := NewWorkspace()
	for i, nJobs := range []int{12, 4, 9} {
		inst := plannerTestInstance(t, 400+int64(i), nJobs)
		for _, refined := range []bool{false, true} {
			fresh, err := sim.RunPlanned(inst, &Planner{Refined: refined})
			if err != nil {
				t.Fatal(err)
			}
			pl := &Planner{Refined: refined}
			pl.SetWorkspace(ws)
			pooled, err := eng.RunPlanned(inst, pl)
			if err != nil {
				t.Fatal(err)
			}
			for j := range fresh.Completion {
				if fresh.Completion[j] != pooled.Completion[j] {
					t.Fatalf("jobs=%d refined=%v: job %d completes at %v pooled, %v fresh",
						nJobs, refined, j, pooled.Completion[j], fresh.Completion[j])
				}
			}
		}
	}
}

// TestRunPlannedOfflineSteadyStateAllocs is the acceptance test of the
// planner-workspace overhaul (the planned-path companion of
// sim.TestRunListSteadyStateAllocs): once an engine+workspace pair has
// warmed up on an instance, replaying the offline planner — the whole
// FromInstance → OptimalStretch → Realize → execute pipeline — must not
// allocate at all.
func TestRunPlannedOfflineSteadyStateAllocs(t *testing.T) {
	inst := plannerTestInstance(t, 9, 20)
	eng := sim.NewEngine()
	ws := NewWorkspace()
	pl := NewPlanner()
	pl.SetWorkspace(ws)
	if _, err := eng.RunPlanned(inst, pl); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(30, func() {
		if _, err := eng.RunPlanned(inst, pl); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state planned RunPlanned allocates %.1f objects/op, want 0", allocs)
	}
}

// TestRunPlannedRefinedSteadyStateAllocs extends the budget to the refined
// planner, which additionally runs System (2) (min-cost flow) per plan.
func TestRunPlannedRefinedSteadyStateAllocs(t *testing.T) {
	inst := plannerTestInstance(t, 9, 20)
	eng := sim.NewEngine()
	ws := NewWorkspace()
	pl := &Planner{Refined: true}
	pl.SetWorkspace(ws)
	if _, err := eng.RunPlanned(inst, pl); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(30, func() {
		if _, err := eng.RunPlanned(inst, pl); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state refined RunPlanned allocates %.1f objects/op, want 0", allocs)
	}
}
