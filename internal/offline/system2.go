package offline

import (
	"fmt"

	"stretchsched/internal/model"
)

// Refine solves the paper's System (2): among all allocations that keep
// every task within its deadline at stretch f, it minimises
//
//	Σ_k Σ_t (fraction of task k in interval t) · mid(I_t),
//
// the rational relaxation of the sum-stretch that pulls every job as early
// as possible without degrading the max-stretch.
//
// The LP is a transportation problem with a per-(task, interval) unit cost,
// so it is solved as a min-cost max-flow: task k ships Work_k units into
// (interval, machine) bins; shipping into interval t costs mid(I_t)/Work_k
// per unit of work.
func (p *Problem) Refine(f float64) (*Alloc, error) {
	n := len(p.Tasks)
	var slot *Alloc
	if p.ws != nil {
		slot = &p.ws.allocRefine
	}
	if n == 0 {
		a := p.allocSlot(slot)
		a.prepare(p, f, nil, 0, 0, 0)
		return a, nil
	}
	net := p.network(f)
	m := p.Inst.Platform.NumMachines()
	nT := len(net.bounds) - 1
	if nT <= 0 {
		return nil, fmt.Errorf("offline: refine: empty interval structure at F=%v", f)
	}

	src := 0
	taskNode := func(k int) int { return 1 + k }
	binNode := func(t, i int) int { return 1 + n + t*m + i }
	sink := 1 + n + nT*m

	total := p.totalWork()
	g := p.mcGraph(sink+1, 1e-12*(1+total))
	for k := range p.Tasks {
		g.AddEdge(src, taskNode(k), p.Tasks[k].Work, 0)
	}
	// Normalise interval midpoints by the horizon start: a common shift of
	// all costs changes the objective by a constant and keeps costs ≥ 0.
	t0 := net.bounds[0]
	binUsed, edges := p.binScratch(sink + 1)
	for k := range p.Tasks {
		for _, t := range net.admiss[k] {
			mid := (net.bounds[t]+net.bounds[t+1])/2 - t0
			cost := mid / p.Tasks[k].Work
			for _, mi := range p.eligible(k) {
				id := g.AddEdge(taskNode(k), binNode(t, int(mi)), p.Tasks[k].Work, cost)
				edges = append(edges, binEdge{t, int(mi), k, id})
				binUsed[binNode(t, int(mi))] = true
			}
		}
	}
	for t := 0; t < nT; t++ {
		length := net.bounds[t+1] - net.bounds[t]
		for i := 0; i < m; i++ {
			if !binUsed[binNode(t, i)] {
				continue
			}
			g.AddEdge(binNode(t, i), sink,
				length*p.Inst.Platform.Machine(model.MachineID(i)).Speed, 0)
		}
	}
	if p.ws != nil {
		p.ws.edges = edges
	}

	shipped, _ := g.Run(src, sink)
	if shipped < total*(1-1e-9)-1e-12 {
		return nil, fmt.Errorf("offline: refine: stretch %v infeasible (%.9g of %.9g shipped)",
			f, shipped, total)
	}
	alloc := p.allocSlot(slot)
	alloc.prepare(p, f, net.bounds, nT, m, n)
	for _, e := range edges {
		if fl := g.EdgeFlow(e.id); fl > 0 {
			alloc.Work[e.t][e.i][e.k] += fl
		}
	}
	return alloc, nil
}
