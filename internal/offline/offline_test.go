package offline

import (
	"math"
	"math/rand"
	"testing"

	"stretchsched/internal/model"
	"stretchsched/internal/sim"
)

func uniInstance(t *testing.T, speeds []float64, jobs []model.Job) *model.Instance {
	t.Helper()
	p, err := model.Uniform(speeds)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func solve(t *testing.T, inst *model.Instance) *Solution {
	t.Helper()
	var s Solver
	sol, err := s.OptimalStretch(FromInstance(inst))
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestSingleJobOptimalStretchIsOne(t *testing.T) {
	inst := uniInstance(t, []float64{2}, []model.Job{{Release: 3, Size: 8, Databank: 0}})
	sol := solve(t, inst)
	if math.Abs(sol.Stretch-1) > 1e-8 {
		t.Fatalf("stretch = %v, want 1", sol.Stretch)
	}
}

func TestTwoSimultaneousEqualJobs(t *testing.T) {
	// Two unit-speed jobs of length 2 released together on one machine:
	// total work 4 must fit in [0, 2F] → F* = 2.
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 2, Databank: 0},
		{Release: 0, Size: 2, Databank: 0},
	})
	sol := solve(t, inst)
	if math.Abs(sol.Stretch-2) > 1e-7 {
		t.Fatalf("stretch = %v, want 2", sol.Stretch)
	}
}

func TestBigJobSmallJob(t *testing.T) {
	// J1 (r=0, p=10), J2 (r=1, p=1): serving J2 at release stretches J1 to
	// 11/10; capacity forces F* = 1.1 exactly.
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 10, Databank: 0},
		{Release: 1, Size: 1, Databank: 0},
	})
	sol := solve(t, inst)
	if math.Abs(sol.Stretch-1.1) > 1e-7 {
		t.Fatalf("stretch = %v, want 1.1", sol.Stretch)
	}
}

func TestExactModeMatchesBisection(t *testing.T) {
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 10, Databank: 0},
		{Release: 1, Size: 1, Databank: 0},
		{Release: 2, Size: 3, Databank: 0},
	})
	fast := solve(t, inst)
	exact := Solver{Exact: true}
	sol, err := exact.OptimalStretch(FromInstance(inst))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast.Stretch-sol.Stretch) > 1e-6*math.Max(1, fast.Stretch) {
		t.Fatalf("bisection %v vs exact %v", fast.Stretch, sol.Stretch)
	}
	// The exact value must itself be feasible and 1e-10 below it infeasible.
	prob := FromInstance(inst)
	if !prob.Feasible(sol.Stretch * (1 + 1e-9)) {
		t.Fatal("exact optimum infeasible")
	}
	if prob.Feasible(sol.Stretch * (1 - 1e-6)) {
		t.Fatal("exact optimum not minimal")
	}
}

func TestRestrictedAvailability(t *testing.T) {
	// db0 only on machine 0 (speed 1); db1 on both. Two simultaneous jobs.
	p, err := model.NewPlatform([]model.Machine{
		{Speed: 1, Databanks: []model.DatabankID{0, 1}},
		{Speed: 1, Databanks: []model.DatabankID{1}},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(p, []model.Job{
		{Release: 0, Size: 2, Databank: 0}, // alone time 2 (machine 0 only)
		{Release: 0, Size: 2, Databank: 1}, // alone time 1 (both machines)
	})
	if err != nil {
		t.Fatal(err)
	}
	sol := solve(t, inst)
	// Give machine 0 fully to job 0 (stretch 1); job 1 runs on machine 1
	// alone: flow 2, alone time 1 → stretch 2. Any work of job 1 moved to
	// machine 0 delays job 0 past stretch 1... F* balances: with F, job 0
	// may finish by 2F, job 1 by F. Feasibility: machine 1 gives job 1 min(F,2)
	// work; job 0 needs 2 ≤ capacity of machine 0 in [0,2F] minus job 1's
	// leftover (2-F if F<2). 2F ≥ 2 + max(0, 2-F) → 3F ≥ 4 → F* = 4/3.
	if math.Abs(sol.Stretch-4.0/3) > 1e-7 {
		t.Fatalf("stretch = %v, want 4/3", sol.Stretch)
	}
}

func TestLowerBoundFeasibleShortcut(t *testing.T) {
	// Jobs on disjoint machines, each alone: F* = lower bound = 1.
	p, err := model.NewPlatform([]model.Machine{
		{Speed: 1, Databanks: []model.DatabankID{0}},
		{Speed: 2, Databanks: []model.DatabankID{1}},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(p, []model.Job{
		{Release: 0, Size: 5, Databank: 0},
		{Release: 0, Size: 4, Databank: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	sol := solve(t, inst)
	if math.Abs(sol.Stretch-1) > 1e-8 {
		t.Fatalf("stretch = %v, want 1", sol.Stretch)
	}
}

func TestEmptyProblem(t *testing.T) {
	inst := uniInstance(t, []float64{1}, nil)
	sol := solve(t, inst)
	if sol.Stretch != 1 {
		t.Fatalf("stretch = %v", sol.Stretch)
	}
}

func TestFeasibilityMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		inst := randomInstance(t, rng, 2, 2, 6)
		prob := FromInstance(inst)
		lb := prob.LowerBound()
		ub := prob.UpperBound()
		prev := false
		for step := 0; step <= 8; step++ {
			f := lb + (ub*1.5-lb)*float64(step)/8
			cur := prob.Feasible(f)
			if prev && !cur {
				t.Fatalf("trial %d: feasibility not monotone at F=%v", trial, f)
			}
			prev = prev || cur
		}
		if !prob.Feasible(ub) {
			t.Fatalf("trial %d: upper bound %v infeasible", trial, ub)
		}
	}
}

func randomInstance(t *testing.T, rng *rand.Rand, nm, nb, nj int) *model.Instance {
	t.Helper()
	ms := make([]model.Machine, nm)
	for i := range ms {
		var banks []model.DatabankID
		for b := 0; b < nb; b++ {
			if i == 0 || rng.Float64() < 0.6 {
				banks = append(banks, model.DatabankID(b))
			}
		}
		ms[i] = model.Machine{Speed: 0.5 + 2*rng.Float64(), Databanks: banks}
	}
	p, err := model.NewPlatform(ms, nb)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]model.Job, nj)
	for j := range jobs {
		jobs[j] = model.Job{
			Release:  rng.Float64() * 8,
			Size:     0.5 + 4*rng.Float64(),
			Databank: model.DatabankID(rng.Intn(nb)),
		}
	}
	inst, err := model.NewInstance(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// localSRPT avoids importing internal/policy (keeps this test package
// focused on offline).
type localSRPT struct{}

func (localSRPT) Name() string         { return "srpt" }
func (localSRPT) Init(*model.Instance) {}
func (localSRPT) OnEvent(*sim.Ctx)     {}
func (localSRPT) Less(ctx *sim.Ctx, a, b model.JobID) bool {
	return ctx.RemainingAloneTime(a) < ctx.RemainingAloneTime(b)
}

func TestOptimalDominatesHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 12; trial++ {
		inst := randomInstance(t, rng, 1+rng.Intn(3), 1+rng.Intn(2), 3+rng.Intn(6))
		sol := solve(t, inst)
		sched, err := sim.RunList(inst, localSRPT{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if ms := sched.MaxStretch(inst); sol.Stretch > ms*(1+1e-6) {
			t.Fatalf("trial %d: optimal %v beats SRPT %v in the wrong direction",
				trial, sol.Stretch, ms)
		}
	}
}

func TestPlannerProducesOptimalSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		inst := randomInstance(t, rng, 1+rng.Intn(3), 1+rng.Intn(2), 3+rng.Intn(5))
		pl := NewPlanner()
		sched, err := sim.RunPlanned(inst, pl)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := sched.Validate(inst, 1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := sched.MaxStretch(inst)
		if got > pl.Stretch()*(1+1e-5) {
			t.Fatalf("trial %d: realised max-stretch %v exceeds computed optimum %v",
				trial, got, pl.Stretch())
		}
	}
}

func TestRefinedPlannerKeepsMaxStretch(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	var plainSum, refinedSum float64
	for trial := 0; trial < 8; trial++ {
		inst := randomInstance(t, rng, 1+rng.Intn(2), 1+rng.Intn(2), 3+rng.Intn(5))

		plain := NewPlanner()
		s1, err := sim.RunPlanned(inst, plain)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		refined := &Planner{Refined: true}
		s2, err := sim.RunPlanned(inst, refined)
		if err != nil {
			t.Fatalf("trial %d refined: %v", trial, err)
		}
		if err := s2.Validate(inst, 1e-6); err != nil {
			t.Fatalf("trial %d refined: %v", trial, err)
		}
		if got := s2.MaxStretch(inst); got > refined.Stretch()*(1+1e-5) {
			t.Fatalf("trial %d: refined max-stretch %v > optimum %v", trial, got, refined.Stretch())
		}
		plainSum += s1.SumStretch(inst)
		refinedSum += s2.SumStretch(inst)
	}
	// System (2) optimises a relaxation (interval midpoints), so a single
	// realised schedule can regress slightly; in aggregate it must help
	// (the paper's Figure 3(b) measures exactly this gain).
	if refinedSum > plainSum*1.02 {
		t.Fatalf("refinement worsened aggregate sum-stretch: %v → %v", plainSum, refinedSum)
	}
}

func TestRefineAllocationIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		inst := randomInstance(t, rng, 1+rng.Intn(2), 1+rng.Intn(2), 3+rng.Intn(4))
		prob := FromInstance(inst)
		var s Solver
		sol, err := s.OptimalStretch(prob)
		if err != nil {
			t.Fatal(err)
		}
		alloc, err := prob.Refine(sol.Stretch * (1 + 1e-9))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkAlloc(t, alloc)
	}
}

// checkAlloc verifies work conservation, capacity and window constraints.
func checkAlloc(t *testing.T, a *Alloc) {
	t.Helper()
	p := a.Problem
	for k := range p.Tasks {
		if got, want := a.TaskWork(k), p.Tasks[k].Work; math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("task %d allocated %v of %v", k, got, want)
		}
	}
	for ti := range a.Work {
		lo, hi := a.Bounds[ti], a.Bounds[ti+1]
		length := hi - lo
		for i := range a.Work[ti] {
			speed := p.Inst.Platform.Machine(model.MachineID(i)).Speed
			sum := 0.0
			for k, w := range a.Work[ti][i] {
				if w == 0 {
					continue
				}
				sum += w
				task := &p.Tasks[k]
				if task.Release > lo+1e-6*(1+math.Abs(lo)) {
					t.Fatalf("task %d runs in interval starting %v before release %v", k, lo, task.Release)
				}
				if d := task.Deadline(a.Stretch); d < hi-1e-6*(1+math.Abs(hi)) {
					t.Fatalf("task %d runs in interval ending %v after deadline %v", k, hi, d)
				}
				if !p.Inst.Platform.Machine(model.MachineID(i)).Hosts(p.Inst.Jobs[task.Job].Databank) {
					t.Fatalf("task %d on ineligible machine %d", k, i)
				}
			}
			if sum > speed*length*(1+1e-6)+1e-9 {
				t.Fatalf("interval %d machine %d overfull: %v > %v", ti, i, sum, speed*length)
			}
		}
	}
}

func TestSolveFlowAllocationIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 8; trial++ {
		inst := randomInstance(t, rng, 1+rng.Intn(3), 1+rng.Intn(2), 2+rng.Intn(5))
		sol := solve(t, inst)
		checkAlloc(t, sol.Alloc)
	}
}

func TestFromContextSkipsDoneAndUnreleased(t *testing.T) {
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 2, Databank: 0},
		{Release: 0, Size: 3, Databank: 0},
		{Release: 9, Size: 1, Databank: 0},
	})
	ctx := &sim.Ctx{
		Inst:      inst,
		Now:       4,
		Remaining: []float64{0, 1.5, 1},
		Released:  []bool{true, true, false},
		Done:      []bool{true, false, false},
	}
	prob := FromContext(ctx)
	if len(prob.Tasks) != 1 {
		t.Fatalf("tasks = %d, want 1", len(prob.Tasks))
	}
	task := prob.Tasks[0]
	if task.Job != 1 || task.Release != 4 || task.Work != 1.5 || task.DeadA != 0 || task.DeadB != 3 {
		t.Fatalf("task = %+v", task)
	}
}

func TestMilestonesSortedUnique(t *testing.T) {
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 4, Databank: 0},
		{Release: 1, Size: 2, Databank: 0},
		{Release: 3, Size: 1, Databank: 0},
	})
	prob := FromInstance(inst)
	ms := prob.Milestones(0, 100)
	for i := 1; i < len(ms); i++ {
		if ms[i] <= ms[i-1] {
			t.Fatalf("milestones not strictly increasing: %v", ms)
		}
	}
	if len(ms) == 0 {
		t.Fatal("expected at least one milestone")
	}
	// A known crossing: deadline of job 0 (4F) passes release 1 at F=1/4 —
	// but below the range lower bound it must be excluded.
	ms2 := prob.Milestones(0.5, 100)
	for _, f := range ms2 {
		if f <= 0.5 {
			t.Fatalf("milestone %v below range", f)
		}
	}
}

func TestGlobalOrderPrefersEarlyCompletion(t *testing.T) {
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 10, Databank: 0},
		{Release: 1, Size: 1, Databank: 0},
	})
	sol := solve(t, inst)
	order := sol.Alloc.GlobalOrder()
	if len(order) != 2 {
		t.Fatal("order size")
	}
	// The small job completes in an earlier interval than the big one.
	if order[0] != 1 {
		t.Fatalf("order = %v, want small job first", order)
	}
}

func TestUpperBoundAlwaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 15; trial++ {
		inst := randomInstance(t, rng, 1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(7))
		prob := FromInstance(inst)
		if !prob.Feasible(prob.UpperBound()) {
			t.Fatalf("trial %d: upper bound infeasible", trial)
		}
	}
}
