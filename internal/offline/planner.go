package offline

import (
	"stretchsched/internal/model"
	"stretchsched/internal/sim"
)

// Planner is the offline optimal max-stretch scheduler as a sim.Planner:
// it knows the whole instance, solves the optimal stretch once at the first
// decision instant, realises the allocation into a timetable and follows it
// for the entire run.
type Planner struct {
	Solver Solver
	// Refined additionally applies System (2) at the optimal stretch before
	// realisation, which improves the (unconstrained) sum-stretch of the
	// realised schedule without touching the max-stretch.
	Refined bool

	plan    *sim.Plan
	stretch float64
}

// NewPlanner returns an offline planner with the default solver.
func NewPlanner() *Planner { return &Planner{} }

// Name implements sim.Planner.
func (pl *Planner) Name() string {
	if pl.Refined {
		return "Offline-Refined"
	}
	return "Offline"
}

// Stretch returns the optimal max-stretch computed during the run.
func (pl *Planner) Stretch() float64 { return pl.stretch }

// Init implements sim.Planner.
func (pl *Planner) Init(*model.Instance) {
	pl.plan = nil
	pl.stretch = 0
}

// Plan implements sim.Planner. The full-horizon timetable is computed on
// the first call; re-invocations at later arrivals resume the same plan.
func (pl *Planner) Plan(ctx *sim.Ctx) (*sim.Plan, error) {
	if pl.plan != nil {
		return pl.plan, nil
	}
	prob := FromInstance(ctx.Inst)
	sol, err := pl.Solver.OptimalStretch(prob)
	if err != nil {
		return nil, err
	}
	pl.stretch = sol.Stretch
	alloc := sol.Alloc
	if pl.Refined {
		if refined, err := prob.Refine(sol.Stretch); err == nil {
			alloc = refined
		}
	}
	plan, err := alloc.Realize(TerminalSWRPT)
	if err != nil {
		return nil, err
	}
	pl.plan = plan
	return plan, nil
}

// Optimal computes the optimal max-stretch value of a full instance.
func Optimal(inst *model.Instance) (float64, error) {
	var s Solver
	sol, err := s.OptimalStretch(FromInstance(inst))
	if err != nil {
		return 0, err
	}
	return sol.Stretch, nil
}
