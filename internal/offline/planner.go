package offline

import (
	"fmt"

	"stretchsched/internal/model"
	"stretchsched/internal/sim"
)

// Planner is the offline optimal max-stretch scheduler as a sim.Planner:
// it knows the whole instance, solves the optimal stretch once at the first
// decision instant, realises the allocation into a timetable and follows it
// for the entire run.
type Planner struct {
	Solver Solver
	// Refined additionally applies System (2) at the optimal stretch before
	// realisation, which improves the (unconstrained) sum-stretch of the
	// realised schedule without touching the max-stretch.
	Refined bool
	// AllowRefineFallback downgrades a failed System (2) refinement from a
	// run-aborting error to a recorded one (see RefineErr): the run proceeds
	// on the unrefined allocation, which still achieves the optimal
	// max-stretch. Off by default — an "Offline-Refined" result that was
	// silently never refined would skew every sum-stretch comparison it
	// appears in, so degradation must be opted into, not defaulted to.
	AllowRefineFallback bool

	ws        *Workspace
	refine    func(*Problem, float64) (*Alloc, error) // test seam; nil means Problem.Refine
	refineErr error
	plan      *sim.Plan
	stretch   float64
}

// NewPlanner returns an offline planner with the default solver.
func NewPlanner() *Planner { return &Planner{} }

// SetWorkspace attaches a pooled solver workspace. The planner then draws
// every solver, allocation and plan buffer from ws, so replaying instances
// through one engine+workspace pair is allocation-free in steady state.
// Must not be called between Plan invocations of a running simulation.
func (pl *Planner) SetWorkspace(ws *Workspace) { pl.ws = ws }

// Name implements sim.Planner.
func (pl *Planner) Name() string {
	if pl.Refined {
		return "Offline-Refined"
	}
	return "Offline"
}

// Stretch returns the optimal max-stretch computed during the run.
func (pl *Planner) Stretch() float64 { return pl.stretch }

// RefineErr returns the System (2) failure recorded by the last run, if
// any. It is only ever non-nil with AllowRefineFallback set; otherwise the
// failure aborts the run through Plan's error return.
func (pl *Planner) RefineErr() error { return pl.refineErr }

// Init implements sim.Planner.
func (pl *Planner) Init(*model.Instance) {
	pl.plan = nil
	pl.stretch = 0
	pl.refineErr = nil
}

// Plan implements sim.Planner. The full-horizon timetable is computed on
// the first call; re-invocations at later arrivals resume the same plan.
func (pl *Planner) Plan(ctx *sim.Ctx) (*sim.Plan, error) {
	if pl.plan != nil {
		return pl.plan, nil
	}
	var prob *Problem
	if pl.ws != nil {
		prob = pl.ws.FromInstance(ctx.Inst)
	} else {
		prob = FromInstance(ctx.Inst)
	}
	sol, err := pl.Solver.OptimalStretch(prob)
	if err != nil {
		return nil, err
	}
	pl.stretch = sol.Stretch
	alloc := sol.Alloc
	if pl.Refined {
		refine := pl.refine
		if refine == nil {
			refine = (*Problem).Refine
		}
		refined, err := refine(prob, sol.Stretch)
		switch {
		case err == nil:
			alloc = refined
		case pl.AllowRefineFallback:
			// Opt-in degradation: keep the max-stretch-optimal allocation,
			// record that its sum-stretch was not refined.
			pl.refineErr = err
		default:
			return nil, fmt.Errorf("offline: System (2) refinement at F=%v: %w", sol.Stretch, err)
		}
	}
	plan, err := alloc.Realize(TerminalSWRPT)
	if err != nil {
		return nil, err
	}
	pl.plan = plan
	return plan, nil
}

// Optimal computes the optimal max-stretch value of a full instance.
func Optimal(inst *model.Instance) (float64, error) {
	var s Solver
	sol, err := s.OptimalStretch(FromInstance(inst))
	if err != nil {
		return 0, err
	}
	return sol.Stretch, nil
}
