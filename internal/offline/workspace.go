package offline

import (
	"stretchsched/internal/flow"
	"stretchsched/internal/lp"
	"stretchsched/internal/model"
	"stretchsched/internal/rat"
	"stretchsched/internal/sim"
)

// Workspace owns every buffer the planned scheduling path needs — the
// pooled Problem, the interval structure, the Dinic/push-relabel/min-cost
// flow networks, the allocation witnesses of the solver and of System (2),
// the realisation scratch and the output sim.Plan — and reuses them across
// solves, mirroring what sim.Engine does for the simulation state one layer
// down. With a workspace attached, the offline planner's steady-state
// Plan→OptimalStretch→Realize pipeline performs no heap allocation at all
// (TestRunPlannedOfflineSteadyStateAllocs).
//
// A Workspace must not be used from multiple goroutines; experiment
// harnesses hold one per worker next to the worker's engine (core.Runner
// does this wiring). Everything returned by workspace-backed calls —
// problems, solutions, allocations, plans — is owned by the workspace and
// overwritten by the next call of the same kind, so callers must finish
// consuming one result before requesting the next. The three allocation
// slots (solver witness, latest-fit baseline, System (2) refinement) are
// distinct precisely so the online heuristics can hold a solver witness
// while refining it.
//
// The zero-ws code paths (package-level FromInstance, Problem values built
// by hand) behave exactly as before: every buffer is freshly allocated and
// caller-owned.
type Workspace struct {
	prob Problem // pooled problem bound by Problem/FromInstance/FromContext

	fops  lp.Float64Ops // flow tolerance; boxed once via pointer, mutated in place
	dinic *flow.Graph[float64]
	pr    *flow.PushRelabel
	mc    *flow.MinCost

	net feasNet // pooled interval/admissibility structure

	// Solver scratch.
	pts        []float64 // interval boundary collection
	ms         []float64 // milestone collection
	releases   []float64 // deduplicated release dates
	candidates []float64 // milestone bracket candidates
	sol        Solution

	// Flow-network construction scratch.
	binUsed []bool
	edges   []binEdge

	// Allocation slots. allocSolve holds the feasibility witness of
	// OptimalStretch, allocLazy the latest-fit baseline of FeasibleAlloc,
	// allocRefine the System (2) refinement — three slots because the online
	// heuristics keep the witness alive while computing its refinement.
	allocSolve  Alloc
	allocLazy   Alloc
	allocRefine Alloc

	// Realisation scratch.
	remBefore  []float64 // (nT+1)×n remaining-work table, flattened
	lastGlobal []int
	ks         []int
	plan       sim.Plan

	// Exact-mode System (1) solver state: the pooled rational LP, its
	// tableau workspace, and the refineExact construction scratch — the
	// admissible-triple list and index, one reusable sparse-row buffer
	// pair, and the interval-affine structure — so a steady-state exact
	// refinement rebuilds System (1) without reallocating any of it.
	lpProb   *lp.Problem[rat.Rat]
	lpws     *lp.Workspace[rat.Rat]
	exVars   []exTriple
	exVarOf  map[exTriple]int
	exVS     []int
	exCS     []rat.Rat
	exItems  []affItem
	exBounds []rat.Affine

	// sess is the persistent incremental System (1) solve session of the
	// online path (lazily created by Session). It owns its own lp.Problem
	// and lp.Workspace, separate from lpProb/lpws above, so one-shot exact
	// planners interleaved on the same runner workspace cannot clobber the
	// retained warm-start state.
	sess *Session
}

// NewWorkspace returns an empty workspace; buffers are sized lazily on
// first use and grown only when an instance exceeds every previous one.
func NewWorkspace() *Workspace { return &Workspace{} }

// TierStats returns the exact backend's representation-tier counters,
// accumulated across every exact refinement on this workspace, or nil when
// no exact solve has run yet. Reset between runs for per-run numbers.
func (ws *Workspace) TierStats() *rat.TierStats {
	if ws.lpws == nil {
		return nil
	}
	return ws.lpws.Tiers()
}

// Session returns the workspace's persistent incremental solve session,
// creating it on first use. The online exact path solves through it to
// warm-start consecutive per-event System (1) programs.
func (ws *Workspace) Session() *Session {
	if ws.sess == nil {
		ws.sess = NewSession()
	}
	return ws.sess
}

// SessionStats returns the warm/cold/fallback counters of the incremental
// session, or nil when no session exists yet.
func (ws *Workspace) SessionStats() *lp.IncrementalStats {
	if ws.sess == nil {
		return nil
	}
	return ws.sess.Stats()
}

// Problem returns the workspace's pooled Problem, emptied and bound to
// inst. Callers append Tasks themselves (Bender98 builds its from-scratch
// release-date problem this way); FromInstance and FromContext are the
// common fillers.
func (ws *Workspace) Problem(inst *model.Instance) *Problem {
	p := &ws.prob
	p.Inst = inst
	p.ws = ws
	p.Tasks = p.Tasks[:0]
	p.UsePushRelabel = false
	return p
}

// FromInstance is the workspace-pooled variant of the package-level
// FromInstance. The returned problem is owned by ws.
func (ws *Workspace) FromInstance(inst *model.Instance) *Problem {
	return fillFromInstance(ws.Problem(inst), inst)
}

// FromContext is the workspace-pooled variant of the package-level
// FromContext. The returned problem is owned by ws.
func (ws *Workspace) FromContext(ctx *sim.Ctx) *Problem {
	return fillFromContext(ws.Problem(ctx.Inst), ctx)
}

// EmptyPlan returns the workspace's pooled plan reset to m empty machine
// timetables — the no-active-jobs answer of the online planners.
func (ws *Workspace) EmptyPlan(m int) *sim.Plan {
	ws.plan.Reset(m)
	return &ws.plan
}

// solution returns the workspace solution slot, or a fresh Solution for a
// workspace-less problem.
func (p *Problem) solution() *Solution {
	if p.ws != nil {
		p.ws.sol = Solution{}
		return &p.ws.sol
	}
	return &Solution{}
}

// allocSlot returns the requested pooled allocation slot, or a fresh Alloc
// for a workspace-less problem.
func (p *Problem) allocSlot(slot *Alloc) *Alloc {
	if p.ws != nil && slot != nil {
		return slot
	}
	return &Alloc{}
}

// prepare binds a (pooled or fresh) Alloc to problem p at stretch f with the
// given interval bounds, and zero-fills its nT×m×n work tensor reusing every
// nested buffer. Bounds are copied: the pooled interval structure is
// rebuilt by the next feasibility solve, but an Alloc must stay readable
// until its slot is reused.
func (a *Alloc) prepare(p *Problem, f float64, bounds []float64, nT, m, n int) {
	a.Problem = p
	a.Stretch = f
	a.Bounds = append(a.Bounds[:0], bounds...)
	if cap(a.Work) < nT {
		a.Work = make([][][]float64, nT)
	}
	a.Work = a.Work[:nT]
	for t := range a.Work {
		wt := a.Work[t]
		if cap(wt) < m {
			wt = make([][]float64, m)
		}
		wt = wt[:m]
		for i := range wt {
			wi := wt[i]
			if cap(wi) < n {
				wi = make([]float64, n)
			}
			wi = wi[:n]
			for k := range wi {
				wi[k] = 0
			}
			wt[i] = wi
		}
		a.Work[t] = wt
	}
}

// dinicGraph returns a flow network with n nodes and the given capacity
// tolerance: the workspace's pooled graph, or a fresh one.
func (p *Problem) dinicGraph(n int, eps float64) *flow.Graph[float64] {
	if p.ws == nil {
		return flow.NewGraph[float64](lp.Float64Ops{Eps: eps}, n)
	}
	ws := p.ws
	ws.fops.Eps = eps
	if ws.dinic == nil {
		ws.dinic = flow.NewGraph[float64](&ws.fops, n)
	} else {
		ws.dinic.Reset(&ws.fops, n)
	}
	return ws.dinic
}

// prGraph is dinicGraph for the push-relabel solver.
func (p *Problem) prGraph(n int, eps float64) *flow.PushRelabel {
	if p.ws == nil {
		return flow.NewPushRelabel(n, eps)
	}
	if p.ws.pr == nil {
		p.ws.pr = flow.NewPushRelabel(n, eps)
	} else {
		p.ws.pr.Reset(n, eps)
	}
	return p.ws.pr
}

// mcGraph is dinicGraph for the min-cost solver of System (2).
func (p *Problem) mcGraph(n int, eps float64) *flow.MinCost {
	if p.ws == nil {
		return flow.NewMinCost(n, eps)
	}
	if p.ws.mc == nil {
		p.ws.mc = flow.NewMinCost(n, eps)
	} else {
		p.ws.mc.Reset(n, eps)
	}
	return p.ws.mc
}

// binScratch returns a cleared node-used bitmap of length n and the edge
// list scratch, pooled when a workspace is attached.
func (p *Problem) binScratch(n int) ([]bool, []binEdge) {
	if p.ws == nil {
		return make([]bool, n), nil
	}
	if cap(p.ws.binUsed) < n {
		p.ws.binUsed = make([]bool, n)
	}
	used := p.ws.binUsed[:n]
	for i := range used {
		used[i] = false
	}
	return used, p.ws.edges[:0]
}
