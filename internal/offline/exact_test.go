package offline

import (
	"math"
	"math/rand"
	"testing"

	"stretchsched/internal/model"
	"stretchsched/internal/rat"
	"stretchsched/internal/workload"
)

// TestExactModeRandomCrossValidation: on random restricted-availability
// instances, the exact rational System (1) refinement and the float
// bisection agree, the exact optimum is feasible, and anything visibly
// below it is infeasible — the paper's §5.3 precision anomaly cannot occur
// in exact mode by construction.
func TestExactModeRandomCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 8; trial++ {
		inst := randomInstance(t, rng, 1+rng.Intn(2), 1+rng.Intn(2), 2+rng.Intn(4))
		prob := FromInstance(inst)

		var fast Solver
		fsol, err := fast.OptimalStretch(prob)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		exact := Solver{Exact: true}
		esol, err := exact.OptimalStretch(prob)
		if err != nil {
			t.Fatalf("trial %d exact: %v", trial, err)
		}
		if math.Abs(fsol.Stretch-esol.Stretch) > 1e-6*math.Max(1, fsol.Stretch) {
			t.Fatalf("trial %d: bisection %v vs exact %v", trial, fsol.Stretch, esol.Stretch)
		}
		if esol.ExactStretch.Sign() <= 0 {
			t.Fatalf("trial %d: exact stretch %v not positive", trial, esol.ExactStretch)
		}
		if !prob.Feasible(esol.Stretch * (1 + 1e-9)) {
			t.Fatalf("trial %d: exact optimum infeasible", trial)
		}
		if esol.Stretch > prob.LowerBound()*(1+1e-9) && prob.Feasible(esol.Stretch*(1-1e-5)) {
			t.Fatalf("trial %d: exact optimum not minimal", trial)
		}
		// The witness allocation of the exact mode must be valid too.
		checkAlloc(t, esol.Alloc)
	}
}

// TestExactWorkspaceMatchesFresh: the pooled exact path — LP problem,
// tableau workspace, construction scratch — produces bit-identical results
// to the workspace-less one, across interleaved instance sizes (so grown
// and shrunk scratch is exercised in both directions).
func TestExactWorkspaceMatchesFresh(t *testing.T) {
	ws := NewWorkspace()
	exact := Solver{Exact: true}
	for i, nJobs := range []int{8, 3, 10, 2, 6} {
		inst := plannerTestInstance(t, 700+int64(i), nJobs)
		fsol, err := exact.OptimalStretch(FromInstance(inst))
		if err != nil {
			t.Fatal(err)
		}
		psol, err := exact.OptimalStretch(ws.FromInstance(inst))
		if err != nil {
			t.Fatal(err)
		}
		if psol.ExactStretch.Cmp(fsol.ExactStretch) != 0 {
			t.Fatalf("jobs=%d: pooled exact stretch %v, fresh %v",
				nJobs, psol.ExactStretch, fsol.ExactStretch)
		}
		if psol.Stretch != fsol.Stretch {
			t.Fatalf("jobs=%d: pooled stretch %v, fresh %v", nJobs, psol.Stretch, fsol.Stretch)
		}
		if len(psol.Alloc.Bounds) != len(fsol.Alloc.Bounds) {
			t.Fatalf("jobs=%d: bounds %d pooled vs %d fresh",
				nJobs, len(psol.Alloc.Bounds), len(fsol.Alloc.Bounds))
		}
		for b := range fsol.Alloc.Bounds {
			if fsol.Alloc.Bounds[b] != psol.Alloc.Bounds[b] {
				t.Fatalf("jobs=%d: bound %d differs", nJobs, b)
			}
		}
	}
}

// TestExactSmallDataSteadyStateAllocs is the small-value-regime acceptance
// of the small-rational backend: on an instance whose releases, sizes and
// speeds are small integers, every rational the exact System (1) solve
// touches fits rat's inline int64 form, and a warmed-up workspace-backed
// exact solve must therefore not allocate at all — the exact analogue of
// TestRunPlannedOfflineSteadyStateAllocs.
func TestExactSmallDataSteadyStateAllocs(t *testing.T) {
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 4, Databank: 0},
		{Release: 2, Size: 2, Databank: 0},
	})
	ws := NewWorkspace()
	exact := Solver{Exact: true}
	if _, err := exact.OptimalStretch(ws.FromInstance(inst)); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(30, func() {
		if _, err := exact.OptimalStretch(ws.FromInstance(inst)); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state exact solve allocates %.1f objects/op, want 0", allocs)
	}
}

// TestExactFloatHeavySteadyStateAllocs is the float-heavy counterpart of
// TestExactSmallDataSteadyStateAllocs and the CI gate of the medium tier:
// on generator instances (full-mantissa processing times, heterogeneous
// speeds) the exact System (1) coefficients overflow the int64 small form
// in nearly every pivot product, and before the 128-bit medium tier each
// of those escaped to an allocating big.Rat — ~10^5 allocations per solve
// at this size. With the medium tier absorbing them, a warmed-up
// workspace-backed solve performs only the residual big escapes and the
// medium→float materialisations of the solution vector. The bound has
// ~5× headroom over the measured steady state (~850); losing the medium
// tier regresses it by two orders of magnitude, so a creeping escape
// leak fails here long before it shows in the nightly grid.
func TestExactFloatHeavySteadyStateAllocs(t *testing.T) {
	inst, err := workload.Config{
		Sites: 3, Databanks: 3, Availability: 0.6, Density: 1.5,
		TargetJobs: 15, SizeRange: [2]float64{10, 200}, Seed: 4242,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	exact := Solver{Exact: true}
	if _, err := exact.OptimalStretch(ws.FromInstance(inst)); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := exact.OptimalStretch(ws.FromInstance(inst)); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 5000
	if allocs > budget {
		t.Fatalf("steady-state float-heavy exact solve allocates %.0f objects/op, budget %d",
			allocs, budget)
	}
}

// TestExactDenseMatchesRevised: the sparse revised simplex (the exact
// backend's production solver) and the dense tableau (kept as oracle,
// Solver.DenseLP) must agree on the exact optimal stretch — not within a
// tolerance but as identical rationals — across random instances. The
// witness allocations may differ (degenerate optima have many vertices),
// but both must be valid.
func TestExactDenseMatchesRevised(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 8; trial++ {
		inst := randomInstance(t, rng, 1+rng.Intn(2), 1+rng.Intn(2), 2+rng.Intn(5))

		revised := Solver{Exact: true}
		rsol, err := revised.OptimalStretch(FromInstance(inst))
		if err != nil {
			t.Fatalf("trial %d revised: %v", trial, err)
		}
		dense := Solver{Exact: true, DenseLP: true}
		dsol, err := dense.OptimalStretch(FromInstance(inst))
		if err != nil {
			t.Fatalf("trial %d dense: %v", trial, err)
		}
		if rsol.ExactStretch.Cmp(dsol.ExactStretch) != 0 {
			t.Fatalf("trial %d: revised stretch %v, dense %v",
				trial, rsol.ExactStretch, dsol.ExactStretch)
		}
		checkAlloc(t, rsol.Alloc)
		checkAlloc(t, dsol.Alloc)
	}
}

// TestExactStretchIsRational: the exact solver returns the optimum as a
// true rational, and its float projection matches Stretch.
func TestExactStretchIsRational(t *testing.T) {
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 1.0 / 3, Databank: 0},
		{Release: 0.1, Size: 1.0 / 7, Databank: 0},
		{Release: 0.2, Size: 1.0 / 11, Databank: 0},
	})
	exact := Solver{Exact: true}
	sol, err := exact.OptimalStretch(FromInstance(inst))
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.ExactStretch.Float(); math.Abs(got-sol.Stretch) > 1e-12 {
		t.Fatalf("rational %v vs float %v", got, sol.Stretch)
	}
	if sol.ExactStretch.Cmp(rat.One) < 0 {
		t.Fatalf("stretch below 1: %v", sol.ExactStretch)
	}
}
