package offline

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"stretchsched/internal/model"
)

// sessionStream drives one arrival/completion/bound-change event stream
// over inst through both a warm and a cold-only session, asserting exact
// status/objective equality at every event. Returns the warm session for
// counter assertions.
func sessionStream(t *testing.T, inst *model.Instance, ops []byte) *Session {
	t.Helper()
	warm, cold := NewSession(), NewSession()
	cold.SetColdOnly(true)
	s := &Solver{Exact: true}

	nj := len(inst.Jobs)
	rem := make([]float64, nj)
	var active []int
	next := 0
	now := 0.0
	events := 0
	for _, op := range ops {
		if events >= 16 {
			break
		}
		now += 0.3
		switch op % 3 {
		case 0: // arrival
			if next >= nj {
				continue
			}
			rem[next] = inst.Jobs[next].Size
			active = append(active, next)
			next++
		case 1: // completion
			if len(active) == 0 {
				continue
			}
			active = slices.Delete(active, 0, 1)
		case 2: // remaining-work update
			if len(active) == 0 {
				continue
			}
			j := active[int(op)%len(active)]
			rem[j] = rem[j]/2 + 1e-3
		}
		if len(active) == 0 {
			continue
		}
		events++
		tasks := make([]Task, 0, len(active))
		for _, j := range active {
			tasks = append(tasks, Task{
				Job:     model.JobID(j),
				Release: now,
				Work:    rem[j],
				DeadA:   inst.Jobs[j].Release,
				DeadB:   inst.AloneTime(model.JobID(j)),
			})
		}
		p := &Problem{Inst: inst, Tasks: tasks}
		wsol, werr := warm.OptimalStretch(s, p)
		csol, cerr := cold.OptimalStretch(s, p)
		if (werr == nil) != (cerr == nil) {
			t.Fatalf("event %d: warm err %v, cold err %v", events, werr, cerr)
		}
		if werr != nil {
			continue
		}
		if !wsol.ExactStretch.Equal(csol.ExactStretch) {
			t.Fatalf("event %d: warm stretch %v, cold stretch %v",
				events, wsol.ExactStretch, csol.ExactStretch)
		}
		if wsol.Stretch != csol.Stretch {
			t.Fatalf("event %d: warm float stretch %v, cold %v", events, wsol.Stretch, csol.Stretch)
		}
	}
	if f := warm.Stats().Fallback; f != 0 {
		t.Fatalf("warm session fell back %d times on a plain stream", f)
	}
	return warm
}

// TestSessionEventStreamWarmEqualsCold is the deterministic core of the
// differential: a dense arrival/completion/update stream must warm-start
// and stay bit-identical to cold solves throughout.
func TestSessionEventStreamWarmEqualsCold(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	inst := randomFuzzInstance(rng)
	ops := []byte{0, 0, 5, 7, 4, 3, 9, 8, 6, 1, 0, 2}
	warm := sessionStream(t, inst, ops)
	st := warm.Stats()
	if st.Warm == 0 {
		t.Fatalf("stream never warm-started: %+v", *st)
	}
	if st.WarmPhase1 == 0 {
		t.Fatalf("arrivals never exercised warm Phase I: %+v", *st)
	}
}

// TestSessionDeltaBookkeeping pins the Arrived/Completed/BoundChanged
// classification and the slot free-list reuse.
func TestSessionDeltaBookkeeping(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := randomInstance(t, rng, 2, 2, 4)
	ss := NewSession()
	mk := func(ids []int, works []float64) *Problem {
		var tasks []Task
		for i, j := range ids {
			tasks = append(tasks, Task{
				Job: model.JobID(j), Release: 1, Work: works[i],
				DeadA: inst.Jobs[j].Release, DeadB: inst.AloneTime(model.JobID(j)),
			})
		}
		return &Problem{Inst: inst, Tasks: tasks}
	}
	ss.applyDelta(mk([]int{0, 1}, []float64{2, 3}))
	d := ss.LastDelta()
	if len(d.Arrived) != 2 || len(d.Completed) != 0 || len(d.BoundChanged) != 0 {
		t.Fatalf("first event delta: %+v", *d)
	}
	// Job 0 completes, job 1's work moves, job 2 arrives.
	ss.applyDelta(mk([]int{1, 2}, []float64{1.5, 4}))
	d = ss.LastDelta()
	if !slices.Equal(d.Arrived, []model.JobID{2}) ||
		!slices.Equal(d.Completed, []model.JobID{0}) ||
		!slices.Equal(d.BoundChanged, []model.JobID{1}) {
		t.Fatalf("second event delta: %+v", *d)
	}
	// Job 3 arrives and must reuse job 0's freed slot.
	ss.applyDelta(mk([]int{1, 2, 3}, []float64{1.5, 4, 2}))
	if got := ss.slotOf[model.JobID(3)]; got != 0 {
		t.Fatalf("job 3 took slot %d, want recycled slot 0", got)
	}
	if d := ss.LastDelta(); len(d.BoundChanged) != 0 {
		t.Fatalf("unchanged works flagged as bound changes: %+v", *d)
	}
}

// TestSessionMatchesOneShotSolver checks the session against the
// pre-existing one-shot exact solver on full instances: same exact optimal
// stretch, warm on the repeat solve.
func TestSessionMatchesOneShotSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := &Solver{Exact: true}
	for trial := 0; trial < 6; trial++ {
		inst := randomInstance(t, rng, 1+rng.Intn(3), 1+rng.Intn(2), 2+rng.Intn(5))
		ss := NewSession()
		want, werr := s.OptimalStretch(FromInstance(inst))
		got, gerr := ss.OptimalStretch(s, FromInstance(inst))
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("trial %d: one-shot err %v, session err %v", trial, werr, gerr)
		}
		if werr != nil {
			continue
		}
		if !got.ExactStretch.Equal(want.ExactStretch) {
			t.Fatalf("trial %d: session stretch %v, one-shot %v",
				trial, got.ExactStretch, want.ExactStretch)
		}
		// Same instance again: must resume from the retained basis.
		again, err := ss.OptimalStretch(s, FromInstance(inst))
		if err != nil {
			t.Fatalf("trial %d repeat: %v", trial, err)
		}
		if !again.ExactStretch.Equal(want.ExactStretch) {
			t.Fatalf("trial %d repeat: stretch %v, want %v", trial, again.ExactStretch, want.ExactStretch)
		}
		if st := ss.Stats(); st.Warm == 0 && st.Cold+st.Fallback > 1 {
			t.Fatalf("trial %d: repeat solve did not warm-start: %+v", trial, *st)
		}
	}
}

// TestSessionForcedFallback proves the counted cold-fallback path at the
// session level: a forced ErrWarmStartFailed must produce the same result
// through the fallback, with Stats().Fallback incremented.
func TestSessionForcedFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := randomInstance(t, rng, 2, 2, 5)
	s := &Solver{Exact: true}
	ss := NewSession()
	if _, err := ss.OptimalStretch(s, FromInstance(inst)); err != nil {
		t.Fatal(err)
	}
	ss.Incremental().ForceWarmFailure(1)
	got, err := ss.OptimalStretch(s, FromInstance(inst))
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.OptimalStretch(FromInstance(inst))
	if err != nil {
		t.Fatal(err)
	}
	if !got.ExactStretch.Equal(want.ExactStretch) {
		t.Fatalf("fallback stretch %v, want %v", got.ExactStretch, want.ExactStretch)
	}
	st := ss.Stats()
	if st.Fallback != 1 {
		t.Fatalf("forced failure not counted as fallback: %+v", *st)
	}
}

// TestSessionDelegatesNonExact: the float-bisection and DenseLP
// configurations bypass the incremental machinery entirely.
func TestSessionDelegatesNonExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := randomInstance(t, rng, 2, 1, 4)
	ss := NewSession()
	s := &Solver{}
	sol, err := ss.OptimalStretch(s, FromInstance(inst))
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.OptimalStretch(FromInstance(inst))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Stretch-want.Stretch) > 1e-12 {
		t.Fatalf("delegated stretch %v, want %v", sol.Stretch, want.Stretch)
	}
	if st := ss.Stats(); st.Cold != 0 || st.Warm != 0 {
		t.Fatalf("non-exact solve touched the incremental session: %+v", *st)
	}
}

// FuzzIncrementalDifferential replays random arrival/completion/
// bound-change event streams through a warm incremental session and a
// cold-only session and asserts exact status/objective equality at every
// event, with zero fallbacks (ISSUE 7 satellite: warm-vs-cold equivalence).
func FuzzIncrementalDifferential(f *testing.F) {
	f.Add(int64(1), []byte{0, 0, 2, 1, 0, 2, 1, 0})
	f.Add(int64(2), []byte{0, 0, 0, 0, 1, 1, 1, 1})
	f.Add(int64(3), []byte{0, 2, 2, 2, 0, 1, 2, 0, 1, 2})
	f.Add(int64(42), []byte{0, 0, 5, 7, 4, 3, 9, 8, 6, 1, 0, 2})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		if len(ops) > 24 {
			ops = ops[:24]
		}
		rng := rand.New(rand.NewSource(seed))
		inst := randomFuzzInstance(rng)
		sessionStream(t, inst, ops)
	})
}

// randomFuzzInstance is randomInstance without the testing.T plumbing (the
// fuzz target builds instances inside the fuzz function).
func randomFuzzInstance(rng *rand.Rand) *model.Instance {
	nm, nb, nj := 1+rng.Intn(2), 1+rng.Intn(2), 3+rng.Intn(6)
	ms := make([]model.Machine, nm)
	for i := range ms {
		var banks []model.DatabankID
		for b := 0; b < nb; b++ {
			if i == 0 || rng.Float64() < 0.6 {
				banks = append(banks, model.DatabankID(b))
			}
		}
		ms[i] = model.Machine{Speed: 0.5 + 2*rng.Float64(), Databanks: banks}
	}
	p, err := model.NewPlatform(ms, nb)
	if err != nil {
		panic(err)
	}
	jobs := make([]model.Job, nj)
	for j := range jobs {
		jobs[j] = model.Job{
			Release:  rng.Float64() * 4,
			Size:     0.5 + 4*rng.Float64(),
			Databank: model.DatabankID(rng.Intn(nb)),
		}
	}
	inst, err := model.NewInstance(p, jobs)
	if err != nil {
		panic(err)
	}
	return inst
}
