package offline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stretchsched/internal/model"
)

// TestMilestoneCountBound checks the paper's counting argument (§4.3.1):
// there are at most n(n−1)/2 deadline/release milestones plus n(n−1)/2
// deadline/deadline milestones, i.e. nq ≤ n²−n distinct milestones.
func TestMilestoneCountBound(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		jobs := make([]model.Job, n)
		for j := range jobs {
			jobs[j] = model.Job{
				Release:  rng.Float64() * 10,
				Size:     0.2 + rng.Float64()*3,
				Databank: 0,
			}
		}
		p, err := model.Uniform([]float64{1})
		if err != nil {
			return false
		}
		inst, err := model.NewInstance(p, jobs)
		if err != nil {
			return false
		}
		prob := FromInstance(inst)
		ms := prob.Milestones(0, math.Inf(1))
		return len(ms) <= n*n-n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestIntervalStructureAtMilestoneBoundaries: strictly inside a milestone
// interval the number of epochal intervals is constant; probing three
// points inside the same bracket must agree.
func TestIntervalStructureStableInsideBracket(t *testing.T) {
	rng := rand.New(rand.NewSource(419))
	for trial := 0; trial < 10; trial++ {
		inst := randomInstance(t, rng, 1+rng.Intn(2), 1+rng.Intn(2), 3+rng.Intn(4))
		prob := FromInstance(inst)
		ms := prob.Milestones(0, 50)
		if len(ms) < 2 {
			continue
		}
		k := rng.Intn(len(ms) - 1)
		lo, hi := ms[k], ms[k+1]
		n1 := len(prob.Intervals(lo + (hi-lo)*0.25))
		n2 := len(prob.Intervals(lo + (hi-lo)*0.5))
		n3 := len(prob.Intervals(lo + (hi-lo)*0.75))
		if n1 != n2 || n2 != n3 {
			t.Fatalf("trial %d: interval count changed inside bracket (%d,%d): %d %d %d",
				trial, k, k+1, n1, n2, n3)
		}
	}
}

// TestFeasibleAllocLateBias: the latest-fit allocation places the weighted
// centre of mass of the work no earlier than the earliest-fit one.
func TestFeasibleAllocLateBias(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	for trial := 0; trial < 10; trial++ {
		inst := randomInstance(t, rng, 1+rng.Intn(2), 1, 3+rng.Intn(4))
		prob := FromInstance(inst)
		var s Solver
		sol, err := s.OptimalStretch(prob)
		if err != nil {
			t.Fatal(err)
		}
		f := sol.Stretch * (1 + 1e-9)
		early, err := prob.FeasibleAlloc(f, false)
		if err != nil {
			t.Fatal(err)
		}
		late, err := prob.FeasibleAlloc(f, true)
		if err != nil {
			t.Fatal(err)
		}
		centre := func(a *Alloc) float64 {
			num, den := 0.0, 0.0
			for ti := range a.Work {
				mid := (a.Bounds[ti] + a.Bounds[ti+1]) / 2
				for i := range a.Work[ti] {
					for _, w := range a.Work[ti][i] {
						num += w * mid
						den += w
					}
				}
			}
			if den == 0 {
				return 0
			}
			return num / den
		}
		if centre(late) < centre(early)-1e-9 {
			t.Fatalf("trial %d: late centre %v earlier than early centre %v",
				trial, centre(late), centre(early))
		}
		checkAlloc(t, late)
	}
}

// TestFeasibleAllocInfeasible returns an error below the optimum.
func TestFeasibleAllocInfeasible(t *testing.T) {
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 2, Databank: 0},
		{Release: 0, Size: 2, Databank: 0},
	})
	prob := FromInstance(inst)
	if _, err := prob.FeasibleAlloc(1.0, true); err == nil {
		t.Fatal("stretch 1 should be infeasible for two simultaneous jobs")
	}
}

// TestPushRelabelOracleAgrees: the two feasibility oracles answer
// identically across objective values, and produce the same optimum.
func TestPushRelabelOracleAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(431))
	for trial := 0; trial < 8; trial++ {
		inst := randomInstance(t, rng, 1+rng.Intn(3), 1+rng.Intn(2), 3+rng.Intn(5))
		dinic := FromInstance(inst)
		pr := FromInstance(inst)
		pr.UsePushRelabel = true
		lo, hi := dinic.LowerBound(), dinic.UpperBound()
		for step := 0; step <= 6; step++ {
			f := lo + (hi-lo)*float64(step)/6
			if a, b := dinic.Feasible(f), pr.Feasible(f); a != b {
				t.Fatalf("trial %d: oracles disagree at F=%v: dinic %v, push-relabel %v",
					trial, f, a, b)
			}
		}
		var s Solver
		sa, err := s.OptimalStretch(dinic)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := s.OptimalStretch(pr)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sa.Stretch-sb.Stretch) > 1e-6*math.Max(1, sa.Stretch) {
			t.Fatalf("trial %d: optima differ: %v vs %v", trial, sa.Stretch, sb.Stretch)
		}
	}
}
