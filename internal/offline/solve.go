package offline

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"stretchsched/internal/lp"
	"stretchsched/internal/model"
	"stretchsched/internal/rat"
)

// Solver configures the optimal max-stretch computation.
type Solver struct {
	// Exact switches the final refinement from float64 bisection to
	// System (1) solved on exact rationals, eliminating the precision
	// anomaly of §5.3 at a (substantial) constant-factor cost.
	Exact bool
	// RelTol is the relative width at which float bisection stops
	// (default 1e-10).
	RelTol float64
	// DenseLP routes the exact System (1) program through the dense
	// simplex tableau instead of the sparse revised method. The dense
	// tableau pays O(m·n) row work per pivot on a matrix that is ~95%
	// zeros at paper scale, so this exists only as the differential
	// oracle and ablation baseline (equivalence tests, cmd/profile
	// -denselp); leave it off otherwise.
	DenseLP bool
}

// Solution is an optimal max-stretch together with a witness allocation.
// With a workspace-backed problem, the Solution and its Alloc are owned by
// the workspace and overwritten by the next solve on it.
type Solution struct {
	Stretch      float64
	ExactStretch rat.Rat // set in Exact mode
	Alloc        *Alloc
}

// OptimalStretch computes the minimal achievable max-stretch of p and a
// deadline-respecting allocation achieving it.
//
// The search follows §4.3.1: feasibility of a target stretch F is monotone
// in F, so a binary search over the sorted milestones brackets the optimum
// inside one milestone interval, where the epochal-time ordering is fixed
// and the optimum can be pinned down by bisection (or exactly by LP).
func (s *Solver) OptimalStretch(p *Problem) (*Solution, error) {
	sol, flo, fhi, err := s.bracket(p)
	if sol != nil || err != nil {
		return sol, err
	}

	if s.Exact {
		return s.refineExact(p, flo, fhi)
	}

	// Float bisection inside the bracketing interval.
	relTol := s.RelTol
	if relTol <= 0 {
		relTol = 1e-10
	}
	for fhi-flo > relTol*math.Max(1, fhi) {
		mid := flo + (fhi-flo)/2
		if p.Feasible(mid) {
			fhi = mid
		} else {
			flo = mid
		}
	}
	alloc, ok := p.solveFlow(fhi, true)
	if !ok {
		return nil, fmt.Errorf("offline: allocation extraction failed at F=%v", fhi)
	}
	sol = p.solution()
	*sol = Solution{Stretch: fhi, Alloc: alloc}
	return sol, nil
}

// bracket runs the milestone binary search of §4.3.1 up to (but not
// including) the final refinement: it either finishes the solve outright
// (no tasks, or the lower bound is already feasible — non-nil Solution) or
// returns the bracketing interval [flo, fhi] for a refinement step to pin
// down. Shared by OptimalStretch and the incremental Session.
func (s *Solver) bracket(p *Problem) (*Solution, float64, float64, error) {
	if err := p.validate(); err != nil {
		return nil, 0, 0, err
	}
	if len(p.Tasks) == 0 {
		alloc := p.allocSlot(allocSolveSlot(p))
		alloc.prepare(p, 1, nil, 0, 0, 0)
		sol := p.solution()
		*sol = Solution{Stretch: 1, ExactStretch: rat.One, Alloc: alloc}
		return sol, 0, 0, nil
	}

	lb := p.LowerBound()
	if p.Feasible(lb) {
		alloc, ok := p.solveFlow(lb, true)
		if !ok {
			return nil, 0, 0, fmt.Errorf("offline: allocation extraction failed at lower bound")
		}
		sol := p.solution()
		*sol = Solution{Stretch: lb, Alloc: alloc}
		if s.Exact {
			sol.ExactStretch = rat.FromFloat(lb)
		}
		return sol, 0, 0, nil
	}

	ub := p.UpperBound()
	for ub < math.Inf(1) && !p.Feasible(ub) {
		// UpperBound is feasible by construction; this loop is defensive
		// against float round-off at the boundary.
		ub *= 2
		if ub > 1e18 {
			return nil, 0, 0, fmt.Errorf("offline: no feasible stretch found")
		}
	}

	// Bracket the optimum between consecutive candidates. The candidate list
	// is copied out of the milestone scratch so appending the upper bound
	// cannot collide with it.
	var candidates []float64
	if p.ws != nil {
		candidates = p.ws.candidates[:0]
	}
	candidates = append(candidates, p.Milestones(lb, ub)...)
	candidates = append(candidates, ub)
	if p.ws != nil {
		p.ws.candidates = candidates
	}
	slices.Sort(candidates)
	feasIdx := sort.Search(len(candidates), func(i int) bool {
		return p.Feasible(candidates[i])
	})
	if feasIdx == len(candidates) {
		return nil, 0, 0, fmt.Errorf("offline: feasibility not monotone (upper bound infeasible)")
	}
	fhi := candidates[feasIdx]
	flo := lb
	if feasIdx > 0 {
		flo = candidates[feasIdx-1]
	}
	return nil, flo, fhi, nil
}

// allocSolveSlot returns the solver-witness slot of p's workspace, or nil.
func allocSolveSlot(p *Problem) *Alloc {
	if p.ws != nil {
		return &p.ws.allocSolve
	}
	return nil
}

// exTriple identifies one System (1) variable x_{t,i,k}: interval t,
// machine i, task k. It doubles as the admissibility map key.
type exTriple struct{ t, i, k int }

// refineExact solves System (1) on [flo, fhi] with exact rational
// arithmetic: minimise F subject to the interval-capacity and completion
// constraints, the interval bounds being affine functions of F with the
// ordering frozen inside the bracket. With a workspace attached, every
// construction buffer — variable list, admissibility index, sparse rows,
// interval affines, the LP itself — is pooled, so the only steady-state
// allocations left are the math/big escapes of rationals that outgrow the
// inline fixed-width forms, now 128 bits wide (none at all on instances
// with small-rational data, see TestExactSmallDataSteadyStateAllocs; a
// budgeted residue on full-mantissa float data, see
// TestExactFloatHeavySteadyStateAllocs).
func (s *Solver) refineExact(p *Problem, flo, fhi float64) (*Solution, error) {
	mid := flo + (fhi-flo)/2
	bounds := p.intervalAffines(mid)
	nT := len(bounds) - 1
	if nT <= 0 {
		return nil, fmt.Errorf("offline: empty interval structure")
	}
	m := p.Inst.Platform.NumMachines()
	n := len(p.Tasks)

	// Variable layout: x_{t,i,k} for admissible triples, then F last.
	var vars []exTriple
	var varOf map[exTriple]int
	if p.ws != nil {
		vars = p.ws.exVars[:0]
		if p.ws.exVarOf == nil {
			p.ws.exVarOf = map[exTriple]int{}
		}
		varOf = p.ws.exVarOf
		clear(varOf)
	} else {
		varOf = map[exTriple]int{}
	}
	for k := 0; k < n; k++ {
		tk := &p.Tasks[k]
		d := tk.Deadline(mid)
		for t := 0; t < nT; t++ {
			lo, hi := bounds[t].EvalFloat(mid), bounds[t+1].EvalFloat(mid)
			tol := 1e-12 * (1 + math.Abs(hi))
			if !(tk.Release <= lo+tol && d >= hi-tol) {
				continue
			}
			for _, mi := range p.eligible(k) {
				varOf[exTriple{t, int(mi), k}] = len(vars)
				vars = append(vars, exTriple{t, int(mi), k})
			}
		}
	}
	fVar := len(vars)
	var prob *lp.Problem[rat.Rat]
	var lpws *lp.Workspace[rat.Rat]
	var vs []int
	var cs []rat.Rat
	if p.ws != nil {
		p.ws.exVars = vars
		if p.ws.lpProb == nil {
			// The LP workspace owns the tier counters; wiring them into the
			// problem's ops once here has every exact solve on this
			// workspace instrumented (surfaced via Workspace.TierStats and
			// cmd/profile -tiers).
			p.ws.lpws = lp.NewWorkspace[rat.Rat]()
			p.ws.lpProb = lp.New[rat.Rat](lp.RatOps{Tiers: p.ws.lpws.Tiers()}, fVar+1)
		} else {
			p.ws.lpProb.Reset(fVar + 1)
		}
		prob, lpws = p.ws.lpProb, p.ws.lpws
		vs, cs = p.ws.exVS[:0], p.ws.exCS[:0]
	} else {
		prob = lp.New[rat.Rat](lp.RatOps{}, fVar+1)
	}
	prob.SetObjectiveCoef(fVar, rat.One)

	// flo ≤ F ≤ fhi. AddSparse copies its arguments, so the vs/cs scratch
	// pair is reused for every constraint below.
	vs, cs = append(vs[:0], fVar), append(cs[:0], rat.One)
	prob.AddSparse(vs, cs, lp.GE, rat.FromFloat(flo))
	prob.AddSparse(vs, cs, lp.LE, rat.FromFloat(fhi))

	// Capacity: Σ_k x_{t,i,k} ≤ speed_i · len_t(F); len_t is affine in F.
	for t := 0; t < nT; t++ {
		lenA := bounds[t+1].A.Sub(bounds[t].A)
		lenB := bounds[t+1].B.Sub(bounds[t].B)
		for i := 0; i < m; i++ {
			vs, cs = vs[:0], cs[:0]
			for k := 0; k < n; k++ {
				if v, ok := varOf[exTriple{t, i, k}]; ok {
					vs = append(vs, v)
					cs = append(cs, rat.One)
				}
			}
			if len(vs) == 0 {
				continue
			}
			speed := rat.FromFloat(p.Inst.Platform.Machine(model.MachineID(i)).Speed)
			vs = append(vs, fVar)
			cs = append(cs, speed.Mul(lenB).Neg())
			prob.AddSparse(vs, cs, lp.LE, speed.Mul(lenA))
		}
	}
	// Completion: Σ_{t,i} x = Work_k.
	for k := 0; k < n; k++ {
		vs, cs = vs[:0], cs[:0]
		for vi, tr := range vars {
			if tr.k == k {
				vs = append(vs, vi)
				cs = append(cs, rat.One)
			}
		}
		if len(vs) == 0 {
			return nil, fmt.Errorf("offline: task %d has no admissible slot in [%v,%v]", k, flo, fhi)
		}
		prob.AddSparse(vs, cs, lp.EQ, rat.FromFloat(p.Tasks[k].Work))
	}
	if p.ws != nil {
		p.ws.exVS, p.ws.exCS = vs, cs
	}

	var sol *lp.Solution[rat.Rat]
	var err error
	if s.DenseLP {
		sol, err = prob.SolveWith(lpws)
	} else {
		// The revised simplex is the production exact path: System (1)
		// matrices are overwhelmingly sparse (each variable touches one
		// capacity and one completion row), which the dense tableau cannot
		// exploit.
		sol, err = prob.SolveRevisedWith(lpws)
	}
	if err != nil {
		return nil, fmt.Errorf("offline: System (1) refinement: %w", err)
	}
	fstar := sol.X[fVar]
	alloc := p.allocSlot(allocSolveSlot(p))
	alloc.prepare(p, fstar.Float(), nil, nT, m, n)
	alloc.Bounds = alloc.Bounds[:0]
	for _, b := range bounds {
		alloc.Bounds = append(alloc.Bounds, b.Eval(fstar).Float())
	}
	for vi, tr := range vars {
		if w := sol.X[vi].Float(); w > 0 {
			alloc.Work[tr.t][tr.i][tr.k] += w
		}
	}
	out := p.solution()
	*out = Solution{Stretch: fstar.Float(), ExactStretch: fstar, Alloc: alloc}
	return out, nil
}

// affItem pairs an epochal-boundary affine with its value at the probe
// point, for the intervalAffines sort.
type affItem struct {
	aff rat.Affine
	val float64
}

// intervalAffines returns the epochal boundaries as affine functions of F,
// ordered by their value at the probe point fm (inside a milestone-free
// interval the order is constant). Boundaries strictly below the earliest
// release are dropped; duplicates (equal at fm, hence equal on the whole
// interval) are merged. The returned slice is workspace scratch when p is
// pooled: valid until the next exact refinement on the same workspace.
func (p *Problem) intervalAffines(fm float64) []rat.Affine {
	var items []affItem
	var out []rat.Affine
	if p.ws != nil {
		items, out = p.ws.exItems[:0], p.ws.exBounds[:0]
	}
	minRel := math.Inf(1)
	for k := range p.Tasks {
		t := &p.Tasks[k]
		minRel = math.Min(minRel, t.Release)
		items = append(items,
			affItem{rat.Const(rat.FromFloat(t.Release)), t.Release},
			affItem{rat.Line(rat.FromFloat(t.DeadA), rat.FromFloat(t.DeadB)), t.Deadline(fm)})
	}
	slices.SortFunc(items, func(a, b affItem) int {
		switch {
		case a.val < b.val:
			return -1
		case a.val > b.val:
			return 1
		}
		return 0
	})
	var lastVal float64
	for _, it := range items {
		if it.val < minRel-1e-12*(1+math.Abs(minRel)) {
			continue
		}
		if len(out) > 0 && math.Abs(it.val-lastVal) <= 1e-12*(1+math.Abs(it.val)) {
			continue
		}
		out = append(out, it.aff)
		lastVal = it.val
	}
	if p.ws != nil {
		p.ws.exItems, p.ws.exBounds = items, out
	}
	return out
}
