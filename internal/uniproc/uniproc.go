// Package uniproc implements the preemptive uni-processor side of the
// paper's equivalence result (Lemma 1, §3.2): on a *uniform* platform —
// every machine holds every databank — the divisible model with m machines
// of speeds s_1..s_m is exactly the classical preemptive single-machine
// model on an "equivalent processor" of speed Σ s_i (in the paper's
// notation, power 1/Σ(1/p_i)).
//
// The package provides the transformation both ways, a convenience
// simulator for pure uni-processor job sets (used by the theory tests of
// Theorems 1 and 2), and the preemptive-EDF feasibility oracle that makes
// the single-machine offline optimum cheap (EDF is feasibility-optimal on
// one machine, so no flow computation is needed).
package uniproc

import (
	"fmt"
	"math"
	"sort"

	"stretchsched/internal/model"
)

// UJob is a uni-processor job: release date and processing time (in
// seconds on the unit-speed reference processor).
type UJob struct {
	Release float64
	Size    float64
}

// Platform returns the single-machine unit-speed platform.
func Platform() *model.Platform {
	p, err := model.Uniform([]float64{1})
	if err != nil {
		panic(err) // cannot happen: static argument
	}
	return p
}

// Instance lifts uni-processor jobs onto the unit-speed single machine.
func Instance(jobs []UJob) (*model.Instance, error) {
	mj := make([]model.Job, len(jobs))
	for i, j := range jobs {
		mj[i] = model.Job{Release: j.Release, Size: j.Size, Databank: 0}
	}
	return model.NewInstance(Platform(), mj)
}

// Equivalent maps a uniform multi-machine instance to its Lemma 1
// single-machine counterpart: same jobs, processing time p^(1)_j =
// W_j / Σ s_i. It returns an error if the platform is not uniform.
func Equivalent(inst *model.Instance) (*model.Instance, error) {
	if !inst.Platform.IsUniform() {
		return nil, fmt.Errorf("uniproc: platform is not uniform (restricted availabilities)")
	}
	speed := inst.Platform.TotalSpeed()
	jobs := make([]model.Job, len(inst.Jobs))
	for i := range inst.Jobs {
		jobs[i] = model.Job{
			Release:  inst.Jobs[i].Release,
			Size:     inst.Jobs[i].Size / speed,
			Databank: 0,
		}
	}
	return model.NewInstance(Platform(), jobs)
}

// Task is a deadline-scheduling task for the EDF feasibility oracle.
type Task struct {
	Release  float64
	Work     float64
	Deadline float64
}

// FeasibleEDF reports whether the tasks can all meet their deadlines on a
// single processor of the given speed under preemptive scheduling.
// Preemptive EDF is optimal for feasibility on one machine, so simulating
// it decides the question exactly (up to float tolerance).
func FeasibleEDF(tasks []Task, speed float64) bool {
	if speed <= 0 {
		return false
	}
	n := len(tasks)
	if n == 0 {
		return true
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return tasks[idx[a]].Release < tasks[idx[b]].Release })

	remaining := make([]float64, n)
	total := 0.0
	for i, t := range tasks {
		if t.Deadline < t.Release {
			return false
		}
		remaining[i] = t.Work
		total += t.Work
	}
	tol := 1e-9 * (1 + total)

	now := tasks[idx[0]].Release
	next := 0
	active := []int{}
	for {
		for next < n && tasks[idx[next]].Release <= now+1e-12*(1+now) {
			active = append(active, idx[next])
			next++
		}
		if len(active) == 0 {
			if next >= n {
				return true
			}
			now = tasks[idx[next]].Release
			continue
		}
		// Earliest deadline among active tasks.
		best := active[0]
		for _, k := range active[1:] {
			if tasks[k].Deadline < tasks[best].Deadline {
				best = k
			}
		}
		horizon := math.Inf(1)
		if next < n {
			horizon = tasks[idx[next]].Release
		}
		finish := now + remaining[best]/speed
		step := math.Min(finish, horizon)
		remaining[best] -= (step - now) * speed
		now = step
		if remaining[best] <= tol {
			if now > tasks[best].Deadline+1e-9*(1+math.Abs(tasks[best].Deadline)) {
				return false
			}
			// Remove best from active.
			for i, k := range active {
				if k == best {
					active = append(active[:i], active[i+1:]...)
					break
				}
			}
		} else if now > tasks[best].Deadline+1e-9*(1+math.Abs(tasks[best].Deadline)) {
			return false
		}
	}
}

// OptimalMaxStretch computes the optimal max-stretch of a uni-processor
// job set by the milestone search of §4.3.1, with preemptive EDF as the
// (exact, combinatorial) feasibility oracle. It is the fast single-machine
// counterpart of the multi-machine flow-based solver and is cross-checked
// against it in the tests.
func OptimalMaxStretch(jobs []UJob) (float64, error) {
	if len(jobs) == 0 {
		return 1, nil
	}
	for _, j := range jobs {
		if j.Size <= 0 {
			return 0, fmt.Errorf("uniproc: nonpositive job size %v", j.Size)
		}
	}
	feasible := func(f float64) bool {
		tasks := make([]Task, len(jobs))
		for i, j := range jobs {
			tasks[i] = Task{Release: j.Release, Work: j.Size, Deadline: j.Release + f*j.Size}
		}
		return FeasibleEDF(tasks, 1)
	}
	// Lower bound: stretch 1. Upper bound: serial execution after the last
	// release.
	lo := 1.0
	if feasible(lo) {
		return lo, nil
	}
	end, tot := 0.0, 0.0
	minSize := math.Inf(1)
	for _, j := range jobs {
		end = math.Max(end, j.Release)
		tot += j.Size
		minSize = math.Min(minSize, j.Size)
	}
	hi := (end + tot) / minSize
	for !feasible(hi) {
		hi *= 2
		if hi > 1e18 {
			return 0, fmt.Errorf("uniproc: no feasible stretch")
		}
	}
	// Milestones: deadline-release and deadline-deadline crossings.
	var ms []float64
	for a, ja := range jobs {
		for b, jb := range jobs {
			if a == b {
				continue
			}
			if f := (jb.Release - ja.Release) / ja.Size; f > lo && f <= hi {
				ms = append(ms, f)
			}
			if ja.Size != jb.Size {
				if f := (jb.Release - ja.Release) / (ja.Size - jb.Size); f > lo && f <= hi {
					ms = append(ms, f)
				}
			}
		}
	}
	ms = append(ms, hi)
	sort.Float64s(ms)
	k := sort.Search(len(ms), func(i int) bool { return feasible(ms[i]) })
	fhi := ms[k]
	flo := lo
	if k > 0 {
		flo = ms[k-1]
	}
	for fhi-flo > 1e-12*math.Max(1, fhi) {
		mid := flo + (fhi-flo)/2
		if feasible(mid) {
			fhi = mid
		} else {
			flo = mid
		}
	}
	return fhi, nil
}
