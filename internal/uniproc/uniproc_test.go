package uniproc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stretchsched/internal/model"
	"stretchsched/internal/offline"
	"stretchsched/internal/sim"
)

type srpt struct{}

func (srpt) Name() string         { return "srpt" }
func (srpt) Init(*model.Instance) {}
func (srpt) OnEvent(*sim.Ctx)     {}
func (srpt) Less(ctx *sim.Ctx, a, b model.JobID) bool {
	return ctx.RemainingAloneTime(a) < ctx.RemainingAloneTime(b)
}

type fcfs struct{}

func (fcfs) Name() string         { return "fcfs" }
func (fcfs) Init(*model.Instance) {}
func (fcfs) OnEvent(*sim.Ctx)     {}
func (fcfs) Less(ctx *sim.Ctx, a, b model.JobID) bool {
	ra, rb := ctx.Inst.Jobs[a].Release, ctx.Inst.Jobs[b].Release
	if ra != rb {
		return ra < rb
	}
	return a < b
}

func TestInstanceConstruction(t *testing.T) {
	inst, err := Instance([]UJob{{Release: 1, Size: 2}, {Release: 0, Size: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumJobs() != 2 || inst.Platform.NumMachines() != 1 {
		t.Fatal("shape")
	}
	if inst.AloneTime(0) != 3 { // sorted: release 0 first
		t.Fatalf("alone = %v", inst.AloneTime(0))
	}
}

func TestEquivalentRequiresUniform(t *testing.T) {
	p, err := model.NewPlatform([]model.Machine{
		{Speed: 1, Databanks: []model.DatabankID{0}},
		{Speed: 1, Databanks: []model.DatabankID{1}},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(p, []model.Job{{Release: 0, Size: 1, Databank: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Equivalent(inst); err == nil {
		t.Fatal("restricted platform accepted")
	}
}

// TestLemma1Equivalence is the executable form of Lemma 1: on a uniform
// platform, any list policy produces exactly the completion times of the
// same policy on the equivalent single processor of speed Σ s_i.
func TestLemma1Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		nm := 1 + rng.Intn(4)
		speeds := make([]float64, nm)
		for i := range speeds {
			speeds[i] = 0.5 + 2.5*rng.Float64()
		}
		p, err := model.Uniform(speeds)
		if err != nil {
			t.Fatal(err)
		}
		nj := 1 + rng.Intn(8)
		jobs := make([]model.Job, nj)
		for j := range jobs {
			jobs[j] = model.Job{Release: rng.Float64() * 6, Size: 0.2 + 3*rng.Float64(), Databank: 0}
		}
		multi, err := model.NewInstance(p, jobs)
		if err != nil {
			t.Fatal(err)
		}
		single, err := Equivalent(multi)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range []sim.Policy{fcfs{}, srpt{}} {
			sm, err := sim.RunList(multi, pol)
			if err != nil {
				t.Fatal(err)
			}
			ss, err := sim.RunList(single, pol)
			if err != nil {
				t.Fatal(err)
			}
			for j := range sm.Completion {
				if math.Abs(sm.Completion[j]-ss.Completion[j]) > 1e-6*(1+ss.Completion[j]) {
					t.Fatalf("trial %d %s job %d: multi %v vs equivalent %v",
						trial, pol.Name(), j, sm.Completion[j], ss.Completion[j])
				}
			}
			// Stretches agree too: alone times map consistently.
			if math.Abs(sm.MaxStretch(multi)-ss.MaxStretch(single)) > 1e-6 {
				t.Fatalf("trial %d %s: stretch mismatch", trial, pol.Name())
			}
		}
	}
}

func TestFeasibleEDFBasics(t *testing.T) {
	if !FeasibleEDF(nil, 1) {
		t.Fatal("empty should be feasible")
	}
	if FeasibleEDF([]Task{{0, 1, 2}}, 0) {
		t.Fatal("zero speed feasible")
	}
	if !FeasibleEDF([]Task{{0, 2, 2}}, 1) {
		t.Fatal("tight single task should fit")
	}
	if FeasibleEDF([]Task{{0, 2, 1.99}}, 1) {
		t.Fatal("overfull single task accepted")
	}
	if FeasibleEDF([]Task{{0, 1, -1}}, 1) {
		t.Fatal("deadline before release accepted")
	}
	// Two tasks, joint capacity exactly sufficient.
	if !FeasibleEDF([]Task{{0, 1, 2}, {0, 1, 2}}, 1) {
		t.Fatal("exact pair rejected")
	}
	if FeasibleEDF([]Task{{0, 1.01, 2}, {0, 1, 2}}, 1) {
		t.Fatal("overfull pair accepted")
	}
	// Preemption required: small late-deadline job inside a big window.
	if !FeasibleEDF([]Task{{0, 10, 11}, {1, 1, 2}}, 1) {
		t.Fatal("preemptive instance rejected")
	}
	// Speed scaling.
	if !FeasibleEDF([]Task{{0, 4, 2}}, 2) {
		t.Fatal("speed ignored")
	}
}

// TestFeasibleEDFMatchesFlow cross-validates the EDF oracle against the
// multi-machine flow-based feasibility on single-machine problems.
func TestFeasibleEDFMatchesFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(6)
		jobs := make([]UJob, n)
		for i := range jobs {
			jobs[i] = UJob{Release: rng.Float64() * 5, Size: 0.2 + 2*rng.Float64()}
		}
		inst, err := Instance(jobs)
		if err != nil {
			t.Fatal(err)
		}
		prob := offline.FromInstance(inst)
		f := 1 + rng.Float64()*4
		tasks := make([]Task, inst.NumJobs())
		for j := range inst.Jobs {
			tasks[j] = Task{
				Release:  inst.Jobs[j].Release,
				Work:     inst.Jobs[j].Size,
				Deadline: inst.Jobs[j].Release + f*inst.AloneTime(model.JobID(j)),
			}
		}
		if got, want := FeasibleEDF(tasks, 1), prob.Feasible(f); got != want {
			t.Fatalf("trial %d: EDF %v vs flow %v at F=%v", trial, got, want, f)
		}
	}
}

// TestOptimalMaxStretchMatchesGeneralSolver cross-checks the fast EDF-based
// single-machine optimum against the flow-based general solver.
func TestOptimalMaxStretchMatchesGeneralSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(6)
		jobs := make([]UJob, n)
		for i := range jobs {
			jobs[i] = UJob{Release: rng.Float64() * 5, Size: 0.2 + 2*rng.Float64()}
		}
		fast, err := OptimalMaxStretch(jobs)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := Instance(jobs)
		if err != nil {
			t.Fatal(err)
		}
		general, err := offline.Optimal(inst)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast-general) > 1e-5*math.Max(1, general) {
			t.Fatalf("trial %d: EDF-based %v vs flow-based %v", trial, fast, general)
		}
	}
}

// TestLemma1OptimalStretchTransfers: the optimal max-stretch of a uniform
// divisible instance equals that of its equivalent uni-processor instance.
func TestLemma1OptimalStretchTransfers(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 10; trial++ {
		speeds := []float64{1 + rng.Float64(), 0.5 + rng.Float64(), 2 * rng.Float64()}
		if speeds[2] <= 0 {
			speeds[2] = 0.3
		}
		p, err := model.Uniform(speeds)
		if err != nil {
			t.Fatal(err)
		}
		n := 2 + rng.Intn(5)
		jobs := make([]model.Job, n)
		ujobs := make([]UJob, n)
		total := speeds[0] + speeds[1] + speeds[2]
		for i := range jobs {
			r, w := rng.Float64()*4, 0.3+2*rng.Float64()
			jobs[i] = model.Job{Release: r, Size: w, Databank: 0}
			ujobs[i] = UJob{Release: r, Size: w / total}
		}
		multi, err := model.NewInstance(p, jobs)
		if err != nil {
			t.Fatal(err)
		}
		optMulti, err := offline.Optimal(multi)
		if err != nil {
			t.Fatal(err)
		}
		optSingle, err := OptimalMaxStretch(ujobs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(optMulti-optSingle) > 1e-5*math.Max(1, optSingle) {
			t.Fatalf("trial %d: multi %v vs single %v", trial, optMulti, optSingle)
		}
	}
}

func TestOptimalMaxStretchSingleJob(t *testing.T) {
	f, err := OptimalMaxStretch([]UJob{{Release: 5, Size: 3}})
	if err != nil || math.Abs(f-1) > 1e-9 {
		t.Fatalf("f = %v, err = %v", f, err)
	}
	f, err = OptimalMaxStretch(nil)
	if err != nil || f != 1 {
		t.Fatalf("empty: f = %v, err = %v", f, err)
	}
	if _, err := OptimalMaxStretch([]UJob{{Release: 0, Size: 0}}); err == nil {
		t.Fatal("zero size accepted")
	}
}

// TestQuickEDFMonotoneInDeadlines: relaxing every deadline preserves
// feasibility (property-based).
func TestQuickEDFMonotoneInDeadlines(t *testing.T) {
	prop := func(seed int64, slackSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		tasks := make([]Task, n)
		for i := range tasks {
			r := rng.Float64() * 4
			w := 0.2 + rng.Float64()*2
			tasks[i] = Task{Release: r, Work: w, Deadline: r + w*(0.5+2*rng.Float64())}
		}
		feas := FeasibleEDF(tasks, 1)
		if !feas {
			return true // nothing to check
		}
		slack := float64(slackSeed)/64 + 0.01
		relaxed := make([]Task, n)
		copy(relaxed, tasks)
		for i := range relaxed {
			relaxed[i].Deadline += slack
		}
		return FeasibleEDF(relaxed, 1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
