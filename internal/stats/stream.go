package stats

import "fmt"

// Ring is a fixed-capacity overwrite-oldest buffer — the serving daemon's
// bounded-memory record of recently completed jobs. Push never allocates
// after the first wrap; Snapshot returns elements oldest-first.
type Ring[T any] struct {
	buf  []T
	cap  int
	head int // index of the next write
	n    int // elements held, ≤ cap
}

// NewRing returns a ring holding at most capacity elements (min 1).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring[T]{buf: make([]T, capacity), cap: capacity}
}

// Push appends v, overwriting the oldest element when full.
func (r *Ring[T]) Push(v T) {
	r.buf[r.head] = v
	r.head = (r.head + 1) % r.cap
	if r.n < r.cap {
		r.n++
	}
}

// Len returns the number of elements held.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the ring's capacity.
func (r *Ring[T]) Cap() int { return r.cap }

// At returns the i-th element, oldest first (0 ≤ i < Len).
func (r *Ring[T]) At(i int) T {
	return r.buf[(r.head-r.n+i+r.cap)%r.cap]
}

// Snapshot appends the held elements oldest-first to dst and returns the
// extended slice.
func (r *Ring[T]) Snapshot(dst []T) []T {
	for i := 0; i < r.n; i++ {
		dst = append(dst, r.At(i))
	}
	return dst
}

// P2Quantile estimates a single quantile of a stream in O(1) memory with
// the P² algorithm (Jain & Chlamtac, CACM 1985): five markers track the
// minimum, the target quantile, the two intermediate quantiles and the
// maximum, adjusted by piecewise-parabolic interpolation as samples
// arrive. For n ≤ 5 the estimate is exact (the markers are the sorted
// sample). The update is deterministic — same sample sequence, same
// estimate — which makes the state checkpointable bit-for-bit.
type P2Quantile struct {
	p    float64    // target quantile in (0,1)
	n    int        // samples seen
	q    [5]float64 // marker heights
	pos  [5]int     // marker positions (1-based, as in the paper)
	want [5]float64 // desired marker positions
}

// NewP2Quantile returns an estimator for quantile p ∈ (0,1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: P² quantile %v outside (0,1)", p))
	}
	return &P2Quantile{p: p}
}

// Quantile returns the target quantile.
func (e *P2Quantile) Quantile() float64 { return e.p }

// N returns the number of samples folded in.
func (e *P2Quantile) N() int { return e.n }

// Add folds one sample into the estimate.
func (e *P2Quantile) Add(x float64) {
	if e.n < 5 {
		// Insertion-sort x into the marker heights; exact phase.
		i := e.n
		for i > 0 && e.q[i-1] > x {
			e.q[i] = e.q[i-1]
			i--
		}
		e.q[i] = x
		e.n++
		if e.n == 5 {
			for k := range e.pos {
				e.pos[k] = k + 1
			}
			e.want[0] = 1
			e.want[1] = 1 + 2*e.p
			e.want[2] = 1 + 4*e.p
			e.want[3] = 3 + 2*e.p
			e.want[4] = 5
		}
		return
	}

	// Locate the cell containing x and update the extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	e.want[1] += e.p / 2
	e.want[2] += e.p
	e.want[3] += (1 + e.p) / 2
	e.want[4]++
	e.n++

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - float64(e.pos[i])
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1
			if d < 0 {
				s = -1
			}
			q := e.parabolic(i, s)
			if e.q[i-1] < q && q < e.q[i+1] {
				e.q[i] = q
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic marker adjustment.
func (e *P2Quantile) parabolic(i, s int) float64 {
	fs := float64(s)
	nm := float64(e.pos[i-1])
	ni := float64(e.pos[i])
	np := float64(e.pos[i+1])
	return e.q[i] + fs/(np-nm)*((ni-nm+fs)*(e.q[i+1]-e.q[i])/(np-ni)+
		(np-ni-fs)*(e.q[i]-e.q[i-1])/(ni-nm))
}

// linear is the fallback linear adjustment when the parabola overshoots.
func (e *P2Quantile) linear(i, s int) float64 {
	return e.q[i] + float64(s)*(e.q[i+s]-e.q[i])/float64(e.pos[i+s]-e.pos[i])
}

// Value returns the current estimate: exact for n ≤ 5 (nearest-rank on the
// sorted sample), the central marker height afterwards. 0 for no samples.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		i := int(e.p * float64(e.n))
		if i >= e.n {
			i = e.n - 1
		}
		return e.q[i]
	}
	return e.q[2]
}

// P2State is the estimator's complete, deterministic state — what the
// serving daemon writes into checkpoints. JSON-encoding float64s
// round-trips exactly, so restore is bit-identical.
type P2State struct {
	P    float64
	N    int
	Q    [5]float64
	Pos  [5]int
	Want [5]float64
}

// State snapshots the estimator.
func (e *P2Quantile) State() P2State {
	return P2State{P: e.p, N: e.n, Q: e.q, Pos: e.pos, Want: e.want}
}

// RestoreP2 reconstructs an estimator from a snapshot.
func RestoreP2(st P2State) (*P2Quantile, error) {
	if st.P <= 0 || st.P >= 1 {
		return nil, fmt.Errorf("stats: restore P² quantile %v outside (0,1)", st.P)
	}
	if st.N < 0 {
		return nil, fmt.Errorf("stats: restore P² with negative sample count %d", st.N)
	}
	return &P2Quantile{p: st.P, n: st.N, q: st.Q, pos: st.Pos, want: st.Want}, nil
}
