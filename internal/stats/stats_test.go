package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAggBasics(t *testing.T) {
	var a Agg
	if a.N() != 0 || a.Mean() != 0 || a.SD() != 0 || a.Max() != 0 {
		t.Fatal("zero value not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 || a.Mean() != 5 {
		t.Fatalf("n=%d mean=%v", a.N(), a.Mean())
	}
	// Sample SD of this classic dataset: sqrt(32/7).
	if want := math.Sqrt(32.0 / 7); math.Abs(a.SD()-want) > 1e-12 {
		t.Fatalf("sd = %v, want %v", a.SD(), want)
	}
	if a.Max() != 9 {
		t.Fatalf("max = %v", a.Max())
	}
}

func TestAggSingleSample(t *testing.T) {
	var a Agg
	a.Add(-3)
	if a.Mean() != -3 || a.SD() != 0 || a.Max() != -3 {
		t.Fatalf("single sample: %v %v %v", a.Mean(), a.SD(), a.Max())
	}
}

func TestAggMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var whole, left, right Agg
	for i := 0; i < 100; i++ {
		x := rng.NormFloat64()*3 + 1
		whole.Add(x)
		if i%2 == 0 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	if left.N() != whole.N() {
		t.Fatal("merge lost samples")
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-9 ||
		math.Abs(left.SD()-whole.SD()) > 1e-9 ||
		left.Max() != whole.Max() {
		t.Fatalf("merge mismatch: %v/%v %v/%v", left.Mean(), whole.Mean(), left.SD(), whole.SD())
	}
	var empty Agg
	empty.Merge(&left)
	if empty.N() != left.N() || empty.Mean() != left.Mean() {
		t.Fatal("merge into empty broken")
	}
	before := left.N()
	left.Merge(&Agg{})
	if left.N() != before {
		t.Fatal("merging empty changed aggregate")
	}
}

func TestQuickWelfordMatchesNaive(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var a Agg
		var sum float64
		for _, v := range raw {
			a.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		if math.Abs(a.Mean()-mean) > 1e-9*(1+math.Abs(mean)) {
			return false
		}
		if len(raw) < 2 {
			return a.SD() == 0
		}
		var ss float64
		for _, v := range raw {
			d := float64(v) - mean
			ss += d * d
		}
		want := math.Sqrt(ss / float64(len(raw)-1))
		return math.Abs(a.SD()-want) < 1e-6*(1+want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRatiosToBest(t *testing.T) {
	r := RatiosToBest(map[string]float64{"a": 2, "b": 4, "c": 3})
	if r["a"] != 1 || r["b"] != 2 || r["c"] != 1.5 {
		t.Fatalf("ratios = %v", r)
	}
}

func TestRatiosToBestWithNaN(t *testing.T) {
	r := RatiosToBest(map[string]float64{"a": 2, "skip": math.NaN()})
	if r["a"] != 1 {
		t.Fatalf("a = %v", r["a"])
	}
	if !math.IsNaN(r["skip"]) {
		t.Fatal("NaN input must stay NaN")
	}
	// All NaN: everything NaN.
	r = RatiosToBest(map[string]float64{"x": math.NaN()})
	if !math.IsNaN(r["x"]) {
		t.Fatal("all-NaN should yield NaN")
	}
}

func TestKeysSorted(t *testing.T) {
	ks := Keys(map[string]int{"b": 1, "a": 2, "c": 3})
	if len(ks) != 3 || ks[0] != "a" || ks[2] != "c" {
		t.Fatalf("keys = %v", ks)
	}
}
