package stats

import (
	"math"
	"sort"
	"testing"
)

func TestRing(t *testing.T) {
	r := NewRing[int](4)
	if r.Len() != 0 || r.Cap() != 4 {
		t.Fatalf("fresh ring Len=%d Cap=%d", r.Len(), r.Cap())
	}
	for i := 1; i <= 3; i++ {
		r.Push(i)
	}
	if got := r.Snapshot(nil); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("partial snapshot = %v", got)
	}
	for i := 4; i <= 10; i++ {
		r.Push(i)
	}
	want := []int{7, 8, 9, 10}
	got := r.Snapshot(nil)
	if len(got) != 4 {
		t.Fatalf("full snapshot = %v", got)
	}
	for i, w := range want {
		if got[i] != w || r.At(i) != w {
			t.Fatalf("snapshot = %v, want %v", got, want)
		}
	}
}

// lcg is a tiny deterministic generator for the quantile tests.
func lcg(seed uint64) func() float64 {
	s := seed
	return func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11) / float64(1<<53)
	}
}

func exactQuantile(xs []float64, p float64) float64 {
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	i := int(p * float64(len(ys)))
	if i >= len(ys) {
		i = len(ys) - 1
	}
	return ys[i]
}

func TestP2QuantileSmallExact(t *testing.T) {
	e := NewP2Quantile(0.5)
	if e.Value() != 0 {
		t.Fatalf("empty Value = %v", e.Value())
	}
	for _, x := range []float64{5, 1, 3} {
		e.Add(x)
	}
	if e.Value() != 3 {
		t.Errorf("median of {5,1,3} = %v, want 3", e.Value())
	}
	if e.N() != 3 {
		t.Errorf("N = %d, want 3", e.N())
	}
}

func TestP2QuantileAccuracy(t *testing.T) {
	next := lcg(42)
	for _, p := range []float64{0.5, 0.9, 0.99} {
		e := NewP2Quantile(p)
		var xs []float64
		for i := 0; i < 20000; i++ {
			x := next()
			xs = append(xs, x)
			e.Add(x)
		}
		got, want := e.Value(), exactQuantile(xs, p)
		// Uniform samples: both the estimate and the exact quantile are in
		// [0,1]; P² should land within a couple of percent.
		if math.Abs(got-want) > 0.02 {
			t.Errorf("p=%v: estimate %v vs exact %v", p, got, want)
		}
	}
}

func TestP2QuantileStateRestore(t *testing.T) {
	next := lcg(7)
	e := NewP2Quantile(0.9)
	for i := 0; i < 1000; i++ {
		e.Add(next())
	}
	r, err := RestoreP2(e.State())
	if err != nil {
		t.Fatal(err)
	}
	// Continuing both with the same suffix must stay bit-identical.
	for i := 0; i < 1000; i++ {
		x := next()
		e.Add(x)
		r.Add(x)
		if e.Value() != r.Value() || e.N() != r.N() {
			t.Fatalf("diverged at sample %d: %v vs %v", i, e.Value(), r.Value())
		}
	}

	if _, err := RestoreP2(P2State{P: 1.5}); err == nil {
		t.Error("RestoreP2 accepted quantile outside (0,1)")
	}
	if _, err := RestoreP2(P2State{P: 0.5, N: -1}); err == nil {
		t.Error("RestoreP2 accepted negative sample count")
	}
}
