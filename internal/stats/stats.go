// Package stats provides the aggregation used throughout the paper's
// evaluation: per-instance normalisation of each heuristic's metric by the
// best value observed on that instance, then mean / standard deviation /
// maximum of the ratios over all instances of a configuration group
// (Tables 1–16).
package stats

import (
	"math"
	"sort"
)

// Agg accumulates mean, sample standard deviation and maximum online
// (Welford's algorithm), without storing samples.
type Agg struct {
	n    int
	mean float64
	m2   float64
	max  float64
}

// Add folds one sample into the aggregate.
func (a *Agg) Add(x float64) {
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
	if a.n == 1 || x > a.max {
		a.max = x
	}
}

// N returns the sample count.
func (a *Agg) N() int { return a.n }

// Mean returns the sample mean (0 for empty aggregates).
func (a *Agg) Mean() float64 { return a.mean }

// SD returns the sample standard deviation (0 for fewer than two samples).
func (a *Agg) SD() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// Max returns the maximum sample (0 for empty aggregates).
func (a *Agg) Max() float64 { return a.max }

// Merge folds another aggregate into a (parallel reduction).
func (a *Agg) Merge(b *Agg) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := float64(a.n + b.n)
	delta := b.mean - a.mean
	mean := a.mean + delta*float64(b.n)/n
	m2 := a.m2 + b.m2 + delta*delta*float64(a.n)*float64(b.n)/n
	a.mean, a.m2 = mean, m2
	a.n += b.n
	if b.max > a.max {
		a.max = b.max
	}
}

// RatiosToBest divides each present value by the smallest present value,
// returning NaN for absent entries (absent = NaN input). This is the
// paper's per-instance normalisation: "divided by the best observed".
func RatiosToBest(values map[string]float64) map[string]float64 {
	best := math.Inf(1)
	for _, v := range values {
		if !math.IsNaN(v) && v < best {
			best = v
		}
	}
	out := make(map[string]float64, len(values))
	for k, v := range values {
		if math.IsNaN(v) || math.IsInf(best, 1) || best <= 0 {
			out[k] = math.NaN()
			continue
		}
		out[k] = v / best
	}
	return out
}

// Keys returns the sorted keys of a string-keyed aggregate map.
func Keys[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
