package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"stretchsched/internal/model"
)

// instanceJSON is the on-disk representation of an instance.
type instanceJSON struct {
	Machines []machineJSON `json:"machines"`
	Banks    int           `json:"databanks"`
	Jobs     []jobJSON     `json:"jobs"`
}

type machineJSON struct {
	Name      string  `json:"name"`
	Speed     float64 `json:"speed"`
	Databanks []int   `json:"databanks"`
}

type jobJSON struct {
	Name     string  `json:"name,omitempty"`
	Release  float64 `json:"release"`
	Size     float64 `json:"size"`
	Databank int     `json:"databank"`
}

// WriteInstance serialises an instance as JSON.
func WriteInstance(w io.Writer, inst *model.Instance) error {
	out := instanceJSON{Banks: inst.Platform.NumDatabanks()}
	for _, m := range inst.Platform.Machines() {
		mj := machineJSON{Name: m.Name, Speed: m.Speed}
		for _, db := range m.Databanks {
			mj.Databanks = append(mj.Databanks, int(db))
		}
		out.Machines = append(out.Machines, mj)
	}
	for _, j := range inst.Jobs {
		out.Jobs = append(out.Jobs, jobJSON{
			Name: j.Name, Release: j.Release, Size: j.Size, Databank: int(j.Databank),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadInstance parses an instance from its JSON serialisation.
func ReadInstance(r io.Reader) (*model.Instance, error) {
	var in instanceJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("workload: decoding instance: %w", err)
	}
	machines := make([]model.Machine, len(in.Machines))
	for i, mj := range in.Machines {
		m := model.Machine{Name: mj.Name, Speed: mj.Speed}
		for _, db := range mj.Databanks {
			m.Databanks = append(m.Databanks, model.DatabankID(db))
		}
		machines[i] = m
	}
	platform, err := model.NewPlatform(machines, in.Banks)
	if err != nil {
		return nil, err
	}
	jobs := make([]model.Job, len(in.Jobs))
	for i, jj := range in.Jobs {
		jobs[i] = model.Job{
			Name: jj.Name, Release: jj.Release, Size: jj.Size,
			Databank: model.DatabankID(jj.Databank),
		}
	}
	return model.NewInstance(platform, jobs)
}
