package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestInstanceJSONRoundTrip(t *testing.T) {
	orig, err := baseConfig().Generate()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteInstance(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumJobs() != orig.NumJobs() {
		t.Fatalf("jobs %d != %d", back.NumJobs(), orig.NumJobs())
	}
	if back.Platform.NumMachines() != orig.Platform.NumMachines() ||
		back.Platform.NumDatabanks() != orig.Platform.NumDatabanks() {
		t.Fatal("platform shape changed")
	}
	for j := range orig.Jobs {
		a, b := orig.Jobs[j], back.Jobs[j]
		if a.Release != b.Release || a.Size != b.Size || a.Databank != b.Databank {
			t.Fatalf("job %d changed: %+v vs %+v", j, a, b)
		}
	}
	for i, m := range orig.Platform.Machines() {
		bm := back.Platform.Machine(m.ID)
		if bm.Speed != m.Speed || len(bm.Databanks) != len(m.Databanks) {
			t.Fatalf("machine %d changed", i)
		}
	}
	// Derived quantities must survive the round trip exactly.
	for j := range orig.Jobs {
		if orig.AloneTime(orig.Jobs[j].ID) != back.AloneTime(back.Jobs[j].ID) {
			t.Fatalf("alone time changed for job %d", j)
		}
	}
}

func TestReadInstanceRejectsGarbage(t *testing.T) {
	if _, err := ReadInstance(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid JSON, invalid instance (machine without databank hosting bank 0).
	bad := `{"machines":[{"name":"m","speed":1,"databanks":[]}],"databanks":1,"jobs":[]}`
	if _, err := ReadInstance(strings.NewReader(bad)); err == nil {
		t.Fatal("unhosted databank accepted")
	}
}
