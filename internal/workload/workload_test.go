package workload

import (
	"math"
	"testing"

	"stretchsched/internal/model"
)

func baseConfig() Config {
	return Config{
		Sites:        3,
		Databanks:    3,
		Availability: 0.6,
		Density:      1.0,
		Horizon:      120,
		Seed:         1,
	}
}

func TestGenerateBasicShape(t *testing.T) {
	inst, err := baseConfig().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if inst.Platform.NumMachines() != 3 || inst.Platform.NumDatabanks() != 3 {
		t.Fatal("platform shape")
	}
	if inst.NumJobs() == 0 {
		t.Fatal("no jobs generated")
	}
	for j := range inst.Jobs {
		job := &inst.Jobs[j]
		if job.Release < 0 || job.Release >= 120 {
			t.Fatalf("release %v outside horizon", job.Release)
		}
		sr := DefaultSizeRange
		if job.Size < sr[0] || job.Size > sr[1] {
			t.Fatalf("size %v outside databank range", job.Size)
		}
		if len(inst.Eligible(model.JobID(j))) == 0 {
			t.Fatalf("job %d has no eligible machine", j)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, err := baseConfig().Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := baseConfig().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if a.NumJobs() != b.NumJobs() {
		t.Fatalf("same seed, different job counts: %d vs %d", a.NumJobs(), b.NumJobs())
	}
	for j := range a.Jobs {
		if a.Jobs[j] != b.Jobs[j] {
			t.Fatalf("same seed, different job %d", j)
		}
	}
	cfg := baseConfig()
	cfg.Seed = 2
	c, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumJobs() == a.NumJobs() {
		// Counts may coincide; compare contents.
		same := true
		for j := range a.Jobs {
			if a.Jobs[j] != c.Jobs[j] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical workloads")
		}
	}
}

func TestEveryDatabankHosted(t *testing.T) {
	// Even at very low availability, the generator must force one replica.
	cfg := baseConfig()
	cfg.Availability = 0.01
	cfg.Databanks = 10
	for seed := int64(0); seed < 20; seed++ {
		cfg.Seed = seed
		inst, err := cfg.Generate()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for d := 0; d < cfg.Databanks; d++ {
			if len(inst.Platform.Eligible(model.DatabankID(d))) == 0 {
				t.Fatalf("seed %d: databank %d unhosted", seed, d)
			}
		}
	}
}

func TestSpeedsFromReferenceSet(t *testing.T) {
	inst, err := baseConfig().Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range inst.Platform.Machines() {
		found := false
		for _, ref := range ReferenceSpeeds {
			if math.Abs(m.Speed-10*ref) < 1e-12 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("machine speed %v not 10× a reference speed", m.Speed)
		}
	}
}

func TestTargetJobsSizing(t *testing.T) {
	cfg := baseConfig()
	cfg.Horizon = 0
	cfg.TargetJobs = 50
	var totalJobs int
	const trials = 20
	for seed := int64(0); seed < trials; seed++ {
		cfg.Seed = seed
		inst, err := cfg.Generate()
		if err != nil {
			t.Fatal(err)
		}
		totalJobs += inst.NumJobs()
	}
	mean := float64(totalJobs) / trials
	if mean < 35 || mean > 65 {
		t.Fatalf("mean jobs %v far from target 50", mean)
	}
}

func TestDensityScalesLoad(t *testing.T) {
	lo, hi := baseConfig(), baseConfig()
	lo.Density, hi.Density = 0.5, 2.0
	li, err := lo.Generate()
	if err != nil {
		t.Fatal(err)
	}
	hj, err := hi.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if hj.TotalWork() <= li.TotalWork() {
		t.Fatalf("density 2.0 work %v not above density 0.5 work %v",
			hj.TotalWork(), li.TotalWork())
	}
}

func TestZeroDensityEmptyWorkload(t *testing.T) {
	cfg := baseConfig()
	cfg.Density = 0
	inst, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumJobs() != 0 {
		t.Fatalf("jobs = %d", inst.NumJobs())
	}
}

func TestSizeRangeOverride(t *testing.T) {
	cfg := baseConfig()
	cfg.SizeRange = [2]float64{5, 6}
	inst, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for j := range inst.Jobs {
		if inst.Jobs[j].Size < 5 || inst.Jobs[j].Size > 6 {
			t.Fatalf("size %v outside override", inst.Jobs[j].Size)
		}
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{Sites: 0, Databanks: 1, Availability: 1, Horizon: 1},
		{Sites: 1, Databanks: 0, Availability: 1, Horizon: 1},
		{Sites: 1, Databanks: 1, Availability: 0, Horizon: 1},
		{Sites: 1, Databanks: 1, Availability: 1.5, Horizon: 1},
		{Sites: 1, Databanks: 1, Availability: 1, Density: -1, Horizon: 1},
		{Sites: 1, Databanks: 1, Availability: 1, Horizon: -2},
		{Sites: 1, Databanks: 1, Availability: 1, Horizon: 1, SizeRange: [2]float64{-1, 2}},
		{Sites: 1, Databanks: 1, Availability: 1, Horizon: 1, SizeRange: [2]float64{5, 2}},
	}
	for i, cfg := range bad {
		if _, err := cfg.Generate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestExpectedJobsRoughlyMatches(t *testing.T) {
	cfg := baseConfig()
	exp, err := cfg.ExpectedJobs()
	if err != nil {
		t.Fatal(err)
	}
	if exp <= 0 {
		t.Fatalf("expected jobs %v", exp)
	}
	var total int
	const trials = 30
	for seed := int64(100); seed < 100+trials; seed++ {
		cfg.Seed = seed
		inst, err := cfg.Generate()
		if err != nil {
			t.Fatal(err)
		}
		total += inst.NumJobs()
	}
	mean := float64(total) / trials
	// The analytic estimate ignores which reference speeds were drawn and
	// the actual replica counts; a factor-2 agreement is what it promises.
	if mean < exp/2.5 || mean > exp*2.5 {
		t.Fatalf("mean jobs %v vs expectation %v", mean, exp)
	}
}

func TestJobSizeTiedToDatabank(t *testing.T) {
	inst, err := baseConfig().Generate()
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[model.DatabankID]float64{}
	for j := range inst.Jobs {
		db := inst.Jobs[j].Databank
		if prev, ok := sizes[db]; ok && prev != inst.Jobs[j].Size {
			t.Fatalf("databank %d has jobs of sizes %v and %v", db, prev, inst.Jobs[j].Size)
		}
		sizes[db] = inst.Jobs[j].Size
	}
}
