// Package workload generates synthetic GriPPS-like platforms and job
// streams following §5.1 of the paper.
//
// A simulation configuration fixes six properties: platform size (number of
// 10-processor sites), per-site processor power (drawn from six benchmarked
// reference machines), number of databanks, databank sizes (drawn from the
// published 10 MB–1 GB range; a job's size is proportional to the size of
// the databank it targets), databank availability (per-site replication
// probability, with at least one replica forced), and workload density (the
// ratio of requested work to available power per databank, which calibrates
// the Poisson arrival rate).
//
// The original study drew processor powers and databank sizes from GriPPS
// production logs; those logs are not public, so this package hard-codes
// the published ranges — the only properties the experiments depend on.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"stretchsched/internal/model"
)

// ReferenceSpeeds are the per-processor powers of the six reference
// platforms benchmarked in the GriPPS study, in megabytes of databank
// scanned per second. With 10-processor sites and databanks of 10–1024 MB
// they yield single-site service times of roughly 0.3–100 s, bracketing the
// 3–60 s average job lengths the paper reports.
var ReferenceSpeeds = []float64{1.0, 1.4, 1.8, 2.2, 2.8, 3.5}

// DefaultSizeRange is the published databank size range in MB.
var DefaultSizeRange = [2]float64{10, 1024}

// Config is one simulation configuration (§5.1's six features).
type Config struct {
	Sites        int     // number of sites (clusters)
	ProcsPerSite int     // processors per site (paper: 10); 0 means 10
	Databanks    int     // number of distinct databanks
	Availability float64 // per-site replication probability, in (0, 1]
	Density      float64 // workload density per databank, ≥ 0
	Horizon      float64 // arrival window in seconds (paper: 900)
	Seed         int64   // RNG seed; same seed, same instance

	// TargetJobs, when positive, replaces Horizon with a window computed
	// from the realised arrival rates so that the expected number of jobs
	// equals TargetJobs. This is the harness's laptop-scale sizing knob;
	// it preserves the density (load) semantics exactly.
	TargetJobs int

	// SizeRange overrides the databank size range in MB (zero value means
	// DefaultSizeRange). Narrowing it around a target size reproduces the
	// "average job length" sweeps of Figure 3.
	SizeRange [2]float64
}

func (c Config) procs() int {
	if c.ProcsPerSite == 0 {
		return 10
	}
	return c.ProcsPerSite
}

func (c Config) sizeRange() [2]float64 {
	if c.SizeRange == [2]float64{} {
		return DefaultSizeRange
	}
	return c.SizeRange
}

func (c Config) validate() error {
	if c.Sites <= 0 {
		return fmt.Errorf("workload: need at least one site")
	}
	if c.Databanks <= 0 {
		return fmt.Errorf("workload: need at least one databank")
	}
	if c.Availability <= 0 || c.Availability > 1 {
		return fmt.Errorf("workload: availability %v outside (0,1]", c.Availability)
	}
	if c.Density < 0 {
		return fmt.Errorf("workload: negative density")
	}
	if c.Horizon < 0 {
		return fmt.Errorf("workload: negative horizon")
	}
	sr := c.sizeRange()
	if sr[0] <= 0 || sr[1] < sr[0] {
		return fmt.Errorf("workload: invalid size range %v", sr)
	}
	return nil
}

// Generate realises a random instance of the configuration.
func (c Config) Generate() (*model.Instance, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))

	// Platform: one machine per site with aggregated processor power.
	machines := make([]model.Machine, c.Sites)
	for s := range machines {
		per := ReferenceSpeeds[rng.Intn(len(ReferenceSpeeds))]
		machines[s] = model.Machine{
			Name:  fmt.Sprintf("site%02d", s+1),
			Speed: per * float64(c.procs()),
		}
	}

	// Databank sizes and replication; every databank gets ≥ 1 replica.
	sr := c.sizeRange()
	dbSize := make([]float64, c.Databanks)
	for d := range dbSize {
		dbSize[d] = sr[0] + rng.Float64()*(sr[1]-sr[0])
	}
	for d := 0; d < c.Databanks; d++ {
		hosted := false
		for s := range machines {
			if rng.Float64() < c.Availability {
				machines[s].Databanks = append(machines[s].Databanks, model.DatabankID(d))
				hosted = true
			}
		}
		if !hosted {
			s := rng.Intn(len(machines))
			machines[s].Databanks = append(machines[s].Databanks, model.DatabankID(d))
		}
	}
	platform, err := model.NewPlatform(machines, c.Databanks)
	if err != nil {
		return nil, err
	}

	// Per-databank Poisson arrivals: density = λ·W_db / aggSpeed(db), so
	// λ = density · aggSpeed(db) / W_db.
	horizon := c.Horizon
	if c.TargetJobs > 0 {
		totalRate := 0.0
		for d := 0; d < c.Databanks; d++ {
			totalRate += c.Density * platform.AggregateSpeed(model.DatabankID(d)) / dbSize[d]
		}
		if totalRate > 0 {
			horizon = float64(c.TargetJobs) / totalRate
		}
	}
	var jobs []model.Job
	for d := 0; d < c.Databanks; d++ {
		if c.Density == 0 {
			continue
		}
		lambda := c.Density * platform.AggregateSpeed(model.DatabankID(d)) / dbSize[d]
		for t := nextExp(rng, lambda); t < horizon; t += nextExp(rng, lambda) {
			jobs = append(jobs, model.Job{
				Release:  t,
				Size:     dbSize[d],
				Databank: model.DatabankID(d),
			})
		}
	}
	return model.NewInstance(platform, jobs)
}

// nextExp draws an exponential inter-arrival time with rate lambda.
func nextExp(rng *rand.Rand, lambda float64) float64 {
	if lambda <= 0 {
		return math.Inf(1)
	}
	return rng.ExpFloat64() / lambda
}

// ExpectedJobs returns the expected number of arrivals of the configuration
// (useful for scaling experiments before generating).
func (c Config) ExpectedJobs() (float64, error) {
	if err := c.validate(); err != nil {
		return 0, err
	}
	// E[#jobs per databank] = λ·horizon with λ = density·aggSpeed/W.
	// λ is proportional to 1/W, so the expectation over uniform databank
	// sizes uses the harmonic form E[1/W] = ln(hi/lo)/(hi−lo).
	meanSpeed := 0.0
	for _, s := range ReferenceSpeeds {
		meanSpeed += s
	}
	meanSpeed /= float64(len(ReferenceSpeeds))
	sr := c.sizeRange()
	invSize := 1 / sr[0]
	if sr[1] > sr[0] {
		invSize = math.Log(sr[1]/sr[0]) / (sr[1] - sr[0])
	}
	replicas := math.Max(1, c.Availability*float64(c.Sites))
	agg := replicas * meanSpeed * float64(c.procs())
	lambda := c.Density * agg * invSize
	return lambda * c.Horizon * float64(c.Databanks), nil
}
