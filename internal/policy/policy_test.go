package policy

import (
	"math"
	"math/rand"
	"testing"

	"stretchsched/internal/model"
	"stretchsched/internal/sim"
)

func uniInstance(t *testing.T, speeds []float64, jobs []model.Job) *model.Instance {
	t.Helper()
	p, err := model.Uniform(speeds)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func run(t *testing.T, inst *model.Instance, pol sim.Policy) *model.Schedule {
	t.Helper()
	s, err := sim.RunList(inst, pol)
	if err != nil {
		t.Fatalf("%s: %v", pol.Name(), err)
	}
	if err := s.Validate(inst, 1e-6); err != nil {
		t.Fatalf("%s: %v", pol.Name(), err)
	}
	return s
}

func TestFCFSOrder(t *testing.T) {
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 5, Databank: 0},
		{Release: 1, Size: 1, Databank: 0},
	})
	s := run(t, inst, FCFS{})
	// FCFS never preempts for a later arrival.
	if math.Abs(s.Completion[0]-5) > 1e-9 || math.Abs(s.Completion[1]-6) > 1e-9 {
		t.Fatalf("completions = %v", s.Completion)
	}
}

func TestSRPTPreemptsBigJob(t *testing.T) {
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 5, Databank: 0},
		{Release: 1, Size: 1, Databank: 0},
	})
	s := run(t, inst, SRPT{})
	if math.Abs(s.Completion[1]-2) > 1e-9 || math.Abs(s.Completion[0]-6) > 1e-9 {
		t.Fatalf("completions = %v", s.Completion)
	}
}

func TestSPTUsesTotalSizeNotRemaining(t *testing.T) {
	// J0 size 4 at 0; at t=3 its remaining (1) is below J1's size (2), but
	// SPT compares total sizes — J1 (smaller total) preempts... it does
	// not: 2 < 4, so J1 preempts under SPT. Contrast with SWRPT below.
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 4, Databank: 0},
		{Release: 3, Size: 2, Databank: 0},
	})
	s := run(t, inst, SPT{})
	if math.Abs(s.Completion[1]-5) > 1e-9 || math.Abs(s.Completion[0]-6) > 1e-9 {
		t.Fatalf("SPT completions = %v", s.Completion)
	}
}

func TestSWRPTFinishesAlmostDoneJob(t *testing.T) {
	// Same instance: SWRPT weighs remaining·total: J0 has 1·4=4, J1 has
	// 2·2=4 → tie broken by ID, J0 continues; it would also continue for
	// remaining < 1. This is exactly the weakness of SWPT that SWRPT fixes.
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 4, Databank: 0},
		{Release: 3, Size: 2, Databank: 0},
	})
	s := run(t, inst, SWRPT{})
	if math.Abs(s.Completion[0]-4) > 1e-9 || math.Abs(s.Completion[1]-6) > 1e-9 {
		t.Fatalf("SWRPT completions = %v", s.Completion)
	}
}

func TestSWPTMatchesSPTOrdering(t *testing.T) {
	// The paper notes SWPT with stretch weights orders by p_j², i.e. like
	// SPT. Their schedules must coincide.
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 4, Databank: 0},
		{Release: 1, Size: 2, Databank: 0},
		{Release: 2, Size: 3, Databank: 0},
	})
	s1 := run(t, inst, SPT{})
	s2 := run(t, inst, SWPT{})
	for j := range s1.Completion {
		if math.Abs(s1.Completion[j]-s2.Completion[j]) > 1e-9 {
			t.Fatalf("SPT %v vs SWPT %v", s1.Completion, s2.Completion)
		}
	}
}

func TestEDFFollowsDeadlines(t *testing.T) {
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 3, Databank: 0},
		{Release: 0, Size: 3, Databank: 0},
	})
	s := run(t, inst, NewEDF([]float64{100, 5}))
	if math.Abs(s.Completion[1]-3) > 1e-9 || math.Abs(s.Completion[0]-6) > 1e-9 {
		t.Fatalf("EDF completions = %v", s.Completion)
	}
	// Missing deadlines sort last.
	e := NewEDF([]float64{1})
	if got := e.deadlineOf(5); !math.IsInf(got, 1) {
		t.Fatalf("missing deadline = %v", got)
	}
}

func TestBender02PrefersOldJobs(t *testing.T) {
	// Equal sizes: pseudo-stretch reduces to age; the older job runs first.
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 2, Databank: 0},
		{Release: 1, Size: 2, Databank: 0},
	})
	s := run(t, inst, NewBender02())
	if s.Completion[0] > s.Completion[1] {
		t.Fatalf("older job finished later: %v", s.Completion)
	}
}

// TestFCFSOptimalMaxFlow verifies the classical result used in §4.1: FCFS
// minimises max-flow on one processor. No other policy can beat it.
func TestFCFSOptimalMaxFlow(t *testing.T) {
	instances := [][]model.Job{
		{{Release: 0, Size: 5, Databank: 0}, {Release: 1, Size: 1, Databank: 0}},
		{{Release: 0, Size: 1, Databank: 0}, {Release: 0.5, Size: 3, Databank: 0}, {Release: 1, Size: 0.5, Databank: 0}},
		{{Release: 0, Size: 2, Databank: 0}, {Release: 0.1, Size: 2, Databank: 0}, {Release: 0.2, Size: 2, Databank: 0}},
	}
	rivals := []sim.Policy{SPT{}, SRPT{}, SWRPT{}, NewBender02()}
	for i, jobs := range instances {
		inst := uniInstance(t, []float64{1}, jobs)
		fcfs := run(t, inst, FCFS{}).MaxFlow(inst)
		for _, pol := range rivals {
			if got := run(t, inst, pol).MaxFlow(inst); got < fcfs-1e-9 {
				t.Fatalf("instance %d: %s max-flow %v beats FCFS %v", i, pol.Name(), got, fcfs)
			}
		}
	}
}

// TestSRPTOptimalSumFlow verifies SRPT's sum-flow optimality (§4.1) against
// the other list policies on a bank of adversarial instances.
func TestSRPTOptimalSumFlow(t *testing.T) {
	instances := [][]model.Job{
		{{Release: 0, Size: 5, Databank: 0}, {Release: 1, Size: 1, Databank: 0}},
		{{Release: 0, Size: 3, Databank: 0}, {Release: 0, Size: 1, Databank: 0}, {Release: 2, Size: 2, Databank: 0}},
		{{Release: 0, Size: 1, Databank: 0}, {Release: 0.2, Size: 1, Databank: 0}, {Release: 0.4, Size: 4, Databank: 0}},
	}
	rivals := []sim.Policy{FCFS{}, SPT{}, SWRPT{}, NewBender02()}
	for i, jobs := range instances {
		inst := uniInstance(t, []float64{1}, jobs)
		srpt := run(t, inst, SRPT{}).SumFlow(inst)
		for _, pol := range rivals {
			if got := run(t, inst, pol).SumFlow(inst); got < srpt-1e-9 {
				t.Fatalf("instance %d: %s sum-flow %v beats SRPT %v", i, pol.Name(), got, srpt)
			}
		}
	}
}

// TestTheorem1StarvationAntagonism reproduces Theorem 1's construction: a
// job of size ∆ released at 0 followed by a stream of unit jobs released
// every time unit. Sum-stretch-competitive policies (SRPT, SWRPT) must
// starve the big job, so their max-stretch degrades linearly in the stream
// length while the optimal max-stretch stays bounded.
func TestTheorem1StarvationAntagonism(t *testing.T) {
	const delta = 4.0
	ratioAt := func(k int) float64 {
		jobs := []model.Job{{Release: 0, Size: delta, Databank: 0}}
		for i := 0; i < k; i++ {
			jobs = append(jobs, model.Job{Release: float64(i), Size: 1, Databank: 0})
		}
		inst := uniInstance(t, []float64{1}, jobs)
		srpt := run(t, inst, SRPT{})
		// SRPT runs every unit job on release: the big job ends at k+∆.
		if got := srpt.Completion[0]; math.Abs(got-(float64(k)+delta)) > 1e-6 {
			t.Fatalf("k=%d: SRPT big-job completion %v, want %v", k, got, float64(k)+delta)
		}
		// Optimal max-stretch is bounded: run the big job first, then the
		// units FCFS; max-stretch ≤ 1+∆ independent of k.
		fcfsLike := run(t, inst, NewEDF(append([]float64{0}, infSlice(k)...)))
		opt := fcfsLike.MaxStretch(inst)
		if opt > delta+1+1e-6 {
			t.Fatalf("k=%d: witness schedule max-stretch %v exceeds 1+∆", k, opt)
		}
		return srpt.MaxStretch(inst) / opt
	}
	// For k ≤ ∆² the two schedules tie (both reach 1+∆); beyond that the
	// starvation ratio grows linearly in the stream length.
	r32, r128 := ratioAt(32), ratioAt(128)
	if r32 < 1.5 {
		t.Fatalf("SRPT should starve at k=32: ratio %v", r32)
	}
	if r128 < 3*r32 {
		t.Fatalf("starvation should grow with the stream: ratio(32)=%v ratio(128)=%v", r32, r128)
	}
}

func infSlice(k int) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = math.Inf(1)
	}
	return out
}

// theorem2Instance builds the Appendix A construction for a given ε and
// unit-stream length l.
func theorem2Instance(t *testing.T, eps float64, l int) *model.Instance {
	alpha := 1 - eps/3
	n := int(math.Ceil(math.Log2(math.Log2(3 * (1 + alpha) / eps))))
	k := int(math.Ceil(-math.Log2(-math.Log2(alpha))))
	pow := func(e float64) float64 { return math.Pow(2, math.Pow(2, e)) }

	var jobs []model.Job
	size0 := pow(float64(n))
	jobs = append(jobs, model.Job{Release: 0, Size: size0, Databank: 0})
	r1 := pow(float64(n)) - pow(float64(n-2))
	size1 := pow(float64(n - 1))
	jobs = append(jobs, model.Job{Release: r1, Size: size1, Databank: 0})
	r2 := r1 + size1 - alpha
	size2 := pow(float64(n - 2))
	jobs = append(jobs, model.Job{Release: r2, Size: size2, Databank: 0})
	r, size := r2, size2
	for j := 3; j <= n; j++ {
		r += size
		size = pow(float64(n - j))
		jobs = append(jobs, model.Job{Release: r, Size: size, Databank: 0})
	}
	for j := 1; j <= k; j++ {
		r += size
		size = pow(-float64(j))
		jobs = append(jobs, model.Job{Release: r, Size: size, Databank: 0})
	}
	for j := 1; j <= l; j++ {
		r += size
		size = 1
		jobs = append(jobs, model.Job{Release: r, Size: size, Databank: 0})
	}
	return uniInstance(t, []float64{1}, jobs)
}

// TestTheorem2SWRPTLowerBound reproduces Theorem 2: on the Appendix A
// instance, SWRPT's sum-stretch approaches twice SRPT's (hence at least
// (2−ε)× the optimum, since the optimum is at most SRPT's value).
func TestTheorem2SWRPTLowerBound(t *testing.T) {
	const eps = 0.5
	inst := theorem2Instance(t, eps, 400)
	swrpt := run(t, inst, SWRPT{}).SumStretch(inst)
	srpt := run(t, inst, SRPT{}).SumStretch(inst)
	ratio := swrpt / srpt
	// The proof shows ratio → (1+α)/(1+2^{-2^{n-1}}) − ε/3 ≥ 2−ε for the
	// chosen parameters; with finite l we must clearly exceed 2−ε−margin.
	want := 2 - eps - 0.15
	if ratio < want {
		t.Fatalf("SWRPT/SRPT sum-stretch ratio %v, want ≥ %v", ratio, want)
	}
	// And SRPT itself must behave as the proof computes: stretch 1 for all
	// but the starved second job.
	if s := run(t, inst, SRPT{}); s.Stretch(inst, 1) < 2 {
		t.Fatalf("SRPT should delay J1 to the very end (stretch %v)", s.Stretch(inst, 1))
	}
}

// TestSRPT2CompetitiveSumStretch spot-checks the known 2-competitiveness of
// SRPT for sum-stretch [13]: on every instance in a randomised bank, SRPT
// is within 2× of the best schedule any of our policies finds.
func TestSRPT2CompetitiveSumStretch(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		inst := randomUniInstance(t, seed, 7)
		best := math.Inf(1)
		for _, pol := range []sim.Policy{FCFS{}, SPT{}, SWRPT{}, NewBender02()} {
			best = math.Min(best, run(t, inst, pol).SumStretch(inst))
		}
		srpt := run(t, inst, SRPT{}).SumStretch(inst)
		if srpt > 2*best+1e-9 {
			t.Fatalf("seed %d: SRPT sum-stretch %v > 2×best %v", seed, srpt, best)
		}
	}
}

func randomUniInstance(t *testing.T, seed int64, n int) *model.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]model.Job, n)
	for i := range jobs {
		jobs[i] = model.Job{
			Release:  rng.Float64() * 10,
			Size:     0.25 + rng.Float64()*4,
			Databank: 0,
		}
	}
	return uniInstance(t, []float64{1}, jobs)
}
