package policy

import (
	"math"
	"testing"

	"stretchsched/internal/model"
)

// TestST14ClassPreemptsAcrossClasses: the class rule must let a small job
// preempt a large one even when the large job's SWRPT kernel is smaller —
// the exact point where ST14 departs from SWRPT.
func TestST14ClassPreemptsAcrossClasses(t *testing.T) {
	// J0 size 8 at 0; J1 size 1 at 7. At t=7, J0's remaining is 1, so its
	// SWRPT kernel 8·1 = 8 equals J1's 1·1 = 1... SWRPT compares 8 vs 1 and
	// also preempts here; use remaining 0.1 instead: kernel 8·0.1 = 0.8 < 1,
	// SWRPT finishes J0 first, while ST14's class rule (⌊log2(8)⌋ = 3 > 0)
	// runs J1 immediately.
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 8, Databank: 0},
		{Release: 7.9, Size: 1, Databank: 0},
	})
	swrpt := run(t, inst, SWRPT{})
	if math.Abs(swrpt.Completion[0]-8) > 1e-9 || math.Abs(swrpt.Completion[1]-9) > 1e-9 {
		t.Fatalf("SWRPT completions = %v", swrpt.Completion)
	}
	st := run(t, inst, NewST14())
	if math.Abs(st.Completion[1]-8.9) > 1e-9 || math.Abs(st.Completion[0]-9) > 1e-9 {
		t.Fatalf("ST14 completions = %v, want small job first", st.Completion)
	}
}

// TestST14SingleClassMatchesSWRPT: jobs within a factor-2 alone-time band
// fall in one class, where ST14 degenerates to SWRPT exactly.
func TestST14SingleClassMatchesSWRPT(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		inst := bandedUniInstance(t, seed, 9)
		a := run(t, inst, SWRPT{})
		b := run(t, inst, NewST14())
		for j := range a.Completion {
			if math.Abs(a.Completion[j]-b.Completion[j]) > 1e-9 {
				t.Fatalf("seed %d: job %d SWRPT %v vs ST14 %v",
					seed, j, a.Completion[j], b.Completion[j])
			}
		}
	}
}

// bandedUniInstance draws sizes from [2, 4) — one geometric class relative
// to any minimum in the band.
func bandedUniInstance(t *testing.T, seed int64, n int) *model.Instance {
	t.Helper()
	inst := randomUniInstance(t, seed, n)
	jobs := make([]model.Job, len(inst.Jobs))
	copy(jobs, inst.Jobs)
	for i := range jobs {
		jobs[i].Size = 2 + math.Mod(jobs[i].Size, 1.0) // sizes in [2, 3)
	}
	return uniInstance(t, []float64{1}, jobs)
}

// TestST14StreamResistsStarvation: on the Theorem 1 construction (big job
// plus a unit stream) ST14 keeps serving the stream like SRPT does, so its
// sum-stretch stays near SRPT's rather than SWRPT-style compromises.
func TestST14StreamResistsStarvation(t *testing.T) {
	jobs := []model.Job{{Release: 0, Size: 8, Databank: 0}}
	for i := 0; i < 32; i++ {
		jobs = append(jobs, model.Job{Release: float64(i), Size: 1, Databank: 0})
	}
	inst := uniInstance(t, []float64{1}, jobs)
	st := run(t, inst, NewST14())
	// Every unit job is class 0, the big job class 3: units preempt it on
	// release, so each completes one time unit after its release.
	for j := 1; j < inst.NumJobs(); j++ {
		if s := st.Stretch(inst, model.JobID(j)); s > 1+1e-9 {
			t.Fatalf("unit job %d stretch %v under ST14", j, s)
		}
	}
	// The big job is only delayed by the stream, never forever: it completes
	// right after the last unit.
	if math.Abs(st.Completion[0]-40) > 1e-9 {
		t.Fatalf("big job completion %v, want 40", st.Completion[0])
	}
}
