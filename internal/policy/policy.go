// Package policy implements the priority-list heuristics of §4: FCFS, SPT,
// SWPT, SRPT, SWRPT, deadline (EDF) scheduling, and the Bender02
// pseudo-stretch rule. Each is a sim.Policy; on uniform platforms the list
// rule of §3 makes them exactly the classical preemptive uni-processor
// algorithms (Lemma 1), and on restricted-availability platforms they
// degrade gracefully via the greedy spatial rule.
//
// Sizes are compared as alone times p*_j rather than raw work, so that the
// heuristics are meaningful on heterogeneous platforms; on a uni-processor
// p*_j = p_j and the definitions coincide with the literature.
package policy

import (
	"math"

	"stretchsched/internal/model"
	"stretchsched/internal/sim"
)

// base provides no-op lifecycle hooks for stateless policies.
type base struct{}

func (base) Init(*model.Instance) {}
func (base) OnEvent(*sim.Ctx)     {}

// FCFS serves jobs in release order. It minimises max-flow on one processor
// (Bender et al. [2]).
type FCFS struct{ base }

func (FCFS) Name() string { return "FCFS" }

func (FCFS) Less(ctx *sim.Ctx, a, b model.JobID) bool {
	ra, rb := ctx.Inst.Jobs[a].Release, ctx.Inst.Jobs[b].Release
	if ra != rb {
		return ra < rb
	}
	return a < b
}

// SPT serves the job with the shortest total processing time first.
type SPT struct{ base }

func (SPT) Name() string { return "SPT" }

func (SPT) Less(ctx *sim.Ctx, a, b model.JobID) bool {
	return ctx.Inst.AloneTime(a) < ctx.Inst.AloneTime(b)
}

// SWPT is Smith's ratio rule (shortest weighted processing time) for stretch
// weights w_j = 1/W_j: it orders by p_j/w_j = p*_j². The order coincides
// with SPT, as the paper notes; it is kept as a distinct named heuristic for
// completeness of the comparison.
type SWPT struct{ base }

func (SWPT) Name() string { return "SWPT" }

func (SWPT) Less(ctx *sim.Ctx, a, b model.JobID) bool {
	pa, pb := ctx.Inst.AloneTime(a), ctx.Inst.AloneTime(b)
	return pa*pa < pb*pb
}

// SRPT serves the job with the shortest remaining processing time. It is
// optimal for sum-flow on one processor and 2-competitive for sum-stretch.
type SRPT struct{ base }

func (SRPT) Name() string { return "SRPT" }

func (SRPT) Less(ctx *sim.Ctx, a, b model.JobID) bool {
	return ctx.RemainingAloneTime(a) < ctx.RemainingAloneTime(b)
}

// SWRPT is the shortest weighted remaining processing time rule: for
// stretch weights it serves the job minimising p*_j · ρ_j(t). The paper
// proves its competitive ratio for sum-stretch cannot beat 2 (Theorem 2)
// yet finds it the best sum-stretch heuristic in practice.
type SWRPT struct{ base }

func (SWRPT) Name() string { return "SWRPT" }

func (SWRPT) Less(ctx *sim.Ctx, a, b model.JobID) bool {
	ka := ctx.Inst.AloneTime(a) * ctx.RemainingAloneTime(a)
	kb := ctx.Inst.AloneTime(b) * ctx.RemainingAloneTime(b)
	return ka < kb
}

// EDF serves the job with the earliest deadline. Deadlines are supplied by
// the caller (typically d̄_j = r_j + S·p*_j for a stretch objective S);
// jobs without an entry sort last. Ties break toward the smaller p*_j so
// tight small jobs preempt.
type EDF struct {
	base
	Deadline []float64
}

// NewEDF returns an EDF policy over the given per-job deadlines.
func NewEDF(deadline []float64) *EDF { return &EDF{Deadline: deadline} }

func (*EDF) Name() string { return "EDF" }

func (e *EDF) deadlineOf(j model.JobID) float64 {
	if int(j) < len(e.Deadline) {
		return e.Deadline[j]
	}
	return math.Inf(1)
}

func (e *EDF) Less(ctx *sim.Ctx, a, b model.JobID) bool {
	da, db := e.deadlineOf(a), e.deadlineOf(b)
	if da != db {
		return da < db
	}
	return ctx.Inst.AloneTime(a) < ctx.Inst.AloneTime(b)
}

// Bender02 is the O(√∆)-competitive pseudo-stretch heuristic of Bender,
// Muthukrishnan and Rajaraman (SODA'02, [3] in the paper): serve the job of
// the largest pseudo-stretch
//
//	Ŝ_j(t) = (t−r_j)/√∆  if p̂_j ≤ √∆,   (t−r_j)/∆  otherwise,
//
// where p̂_j ∈ [1, ∆] is the job size normalised to the smallest size. The
// ratio ∆ is refreshed online from the jobs seen so far.
type Bender02 struct {
	minAlone float64
	maxAlone float64
}

// NewBender02 returns a fresh Bender02 policy.
func NewBender02() *Bender02 { return &Bender02{} }

func (*Bender02) Name() string { return "Bender02" }

func (p *Bender02) Init(inst *model.Instance) {
	p.minAlone, p.maxAlone = math.Inf(1), 0
}

func (p *Bender02) OnEvent(ctx *sim.Ctx) {
	for j := range ctx.Released {
		if ctx.Released[j] {
			a := ctx.Inst.AloneTime(model.JobID(j))
			p.minAlone = math.Min(p.minAlone, a)
			p.maxAlone = math.Max(p.maxAlone, a)
		}
	}
}

func (p *Bender02) pseudo(ctx *sim.Ctx, j model.JobID) float64 {
	delta := math.Max(1, p.maxAlone/p.minAlone)
	sq := math.Sqrt(delta)
	norm := ctx.Inst.AloneTime(j) / p.minAlone
	age := ctx.Now - ctx.Inst.Jobs[j].Release
	if norm <= sq {
		return age / sq
	}
	return age / delta
}

func (p *Bender02) Less(ctx *sim.Ctx, a, b model.JobID) bool {
	sa, sb := p.pseudo(ctx, a), p.pseudo(ctx, b)
	if sa != sb {
		return sa > sb // larger pseudo-stretch first
	}
	return ctx.Inst.AloneTime(a) < ctx.Inst.AloneTime(b)
}
