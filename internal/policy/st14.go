package policy

import (
	"math"

	"stretchsched/internal/model"
	"stretchsched/internal/sim"
)

// ST14 is our online reading of the Srivastav–Trystram total-stretch
// heuristic (PAPERS.md: "Total stretch minimization on single and identical
// parallel machines", arXiv 1404.6502). Their analysis partitions jobs into
// geometric size classes and shows total stretch is governed by how strictly
// small classes preempt large ones; the executable rule here is:
//
//  1. jobs are binned by alone time into classes k = ⌊log2(p*_j / p*_min)⌋,
//     with p*_min refreshed online from the jobs seen so far;
//  2. a strictly smaller class always precedes a larger one, so a stream of
//     short requests cannot be delayed by a long one regardless of how far
//     the long job has progressed (the point where it departs from SWRPT);
//  3. within a class, the SWRPT kernel p*_j · ρ_j(t) orders jobs, with
//     release date and ID as deterministic tie-breaks.
//
// On single-class instances it degenerates to SWRPT exactly.
type ST14 struct {
	minAlone float64
}

// NewST14 returns a fresh ST14 policy.
func NewST14() *ST14 { return &ST14{} }

func (*ST14) Name() string { return "ST14" }

func (p *ST14) Init(inst *model.Instance) {
	p.minAlone = math.Inf(1)
}

func (p *ST14) OnEvent(ctx *sim.Ctx) {
	for j := range ctx.Released {
		if ctx.Released[j] {
			p.minAlone = math.Min(p.minAlone, ctx.Inst.AloneTime(model.JobID(j)))
		}
	}
}

// class returns the geometric size class of job j relative to the smallest
// alone time observed so far.
func (p *ST14) class(ctx *sim.Ctx, j model.JobID) int {
	ratio := ctx.Inst.AloneTime(j) / p.minAlone
	if ratio <= 1 {
		return 0
	}
	return int(math.Floor(math.Log2(ratio)))
}

func (p *ST14) Less(ctx *sim.Ctx, a, b model.JobID) bool {
	ca, cb := p.class(ctx, a), p.class(ctx, b)
	if ca != cb {
		return ca < cb
	}
	ka := ctx.Inst.AloneTime(a) * ctx.RemainingAloneTime(a)
	kb := ctx.Inst.AloneTime(b) * ctx.RemainingAloneTime(b)
	if ka != kb {
		return ka < kb
	}
	ra, rb := ctx.Inst.Jobs[a].Release, ctx.Inst.Jobs[b].Release
	if ra != rb {
		return ra < rb
	}
	return a < b
}
