package greedy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stretchsched/internal/model"
)

func uniInstance(t *testing.T, speeds []float64, jobs []model.Job) *model.Instance {
	t.Helper()
	p, err := model.Uniform(speeds)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestMCTPicksFastestIdleMachine(t *testing.T) {
	inst := uniInstance(t, []float64{1, 4}, []model.Job{{Release: 0, Size: 4, Databank: 0}})
	s, err := MCT(inst)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Completion[0]-1) > 1e-9 {
		t.Fatalf("completion = %v, want 1 (machine of speed 4)", s.Completion[0])
	}
	if err := s.Validate(inst, 0); err != nil {
		t.Fatal(err)
	}
}

func TestMCTQueuesOnBusyMachine(t *testing.T) {
	// One machine: jobs queue FIFO without preemption.
	inst := uniInstance(t, []float64{1}, []model.Job{
		{Release: 0, Size: 10, Databank: 0},
		{Release: 1, Size: 1, Databank: 0},
	})
	s, err := MCT(inst)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Completion[0]-10) > 1e-9 || math.Abs(s.Completion[1]-11) > 1e-9 {
		t.Fatalf("completions = %v", s.Completion)
	}
	// The small job's stretch is 10× — the paper's core criticism of MCT.
	if got := s.Stretch(inst, 1); got < 9 {
		t.Fatalf("stretch = %v", got)
	}
}

func TestMCTBalancesAcrossMachines(t *testing.T) {
	inst := uniInstance(t, []float64{1, 1}, []model.Job{
		{Release: 0, Size: 4, Databank: 0},
		{Release: 0, Size: 4, Databank: 0},
	})
	s, err := MCT(inst)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Completion[0]-4) > 1e-9 || math.Abs(s.Completion[1]-4) > 1e-9 {
		t.Fatalf("completions = %v", s.Completion)
	}
}

func TestMCTRespectsEligibility(t *testing.T) {
	p, err := model.NewPlatform([]model.Machine{
		{Speed: 10, Databanks: []model.DatabankID{0}},
		{Speed: 1, Databanks: []model.DatabankID{1}},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(p, []model.Job{{Release: 0, Size: 5, Databank: 1}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := MCT(inst)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Completion[0]-5) > 1e-9 {
		t.Fatalf("completion = %v (must use the slow eligible machine)", s.Completion[0])
	}
}

func TestMCTDivWaterFilling(t *testing.T) {
	// Machine 0 busy until t=2 (job 0), machine 1 free. Job 1 (size 6)
	// released at 0: runs on machine 1 alone until the water level reaches
	// machine 0's ready time... here both speeds 1:
	// T: (T-0)·1 + max(0,T-2)·1 = 6 → T=4.
	inst := uniInstance(t, []float64{1, 1}, []model.Job{
		{Release: 0, Size: 2, Databank: 0},
		{Release: 0, Size: 6, Databank: 0},
	})
	s, err := MCTDiv(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Job 0 water-fills both machines: T=1 on both. Then job 1 starts at 1
	// on both: (T−1)·2 = 6 → T=4.
	if math.Abs(s.Completion[0]-1) > 1e-9 || math.Abs(s.Completion[1]-4) > 1e-9 {
		t.Fatalf("completions = %v", s.Completion)
	}
	if err := s.Validate(inst, 0); err != nil {
		t.Fatal(err)
	}
}

func TestMCTDivSkipsLateMachines(t *testing.T) {
	// A very slow machine that only becomes useful late must not be engaged
	// when the job finishes before that machine's ready time.
	p, err := model.NewPlatform([]model.Machine{
		{Speed: 10, Databanks: []model.DatabankID{0}},
		{Speed: 0.1, Databanks: []model.DatabankID{0}},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(p, []model.Job{
		{Release: 0, Size: 100, Databank: 0}, // occupies both briefly
		{Release: 0, Size: 1, Databank: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := MCTDiv(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(inst, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestMCTDivNeverWorseThanMCT(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 30; trial++ {
		nm := 1 + rng.Intn(4)
		speeds := make([]float64, nm)
		for i := range speeds {
			speeds[i] = 0.5 + 2*rng.Float64()
		}
		nj := 1 + rng.Intn(8)
		jobs := make([]model.Job, nj)
		for j := range jobs {
			jobs[j] = model.Job{Release: rng.Float64() * 10, Size: 0.5 + 4*rng.Float64(), Databank: 0}
		}
		inst := uniInstance(t, speeds, jobs)
		s1, err := MCT(inst)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := MCTDiv(inst)
		if err != nil {
			t.Fatal(err)
		}
		if err := s2.Validate(inst, 1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Per-job: the divisible variant commits each job to finish no later
		// than the best single machine would, at scheduling time. Since both
		// process jobs in the same order and MCT-Div's machine availability
		// is pointwise ≤ MCT's... compare makespan, a safe aggregate.
		if s2.Makespan(inst) > s1.Makespan(inst)+1e-6 {
			t.Fatalf("trial %d: MCT-Div makespan %v > MCT %v",
				trial, s2.Makespan(inst), s1.Makespan(inst))
		}
	}
}

func TestQuickWaterFillingInvariants(t *testing.T) {
	// Property: all machines engaged by MCT-Div for a job finish it at the
	// same instant T, and T is at most (best single machine completion).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nm := 1 + rng.Intn(4)
		speeds := make([]float64, nm)
		for i := range speeds {
			speeds[i] = 0.5 + 2*rng.Float64()
		}
		p, err := model.Uniform(speeds)
		if err != nil {
			return false
		}
		jobs := []model.Job{{Release: rng.Float64(), Size: 0.5 + 3*rng.Float64(), Databank: 0}}
		inst, err := model.NewInstance(p, jobs)
		if err != nil {
			return false
		}
		s, err := MCTDiv(inst)
		if err != nil {
			return false
		}
		// Single job alone: completes at release + alone time.
		want := inst.Jobs[0].Release + inst.AloneTime(0)
		return math.Abs(s.Completion[0]-want) < 1e-9*(1+want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
