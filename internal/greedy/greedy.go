// Package greedy implements the two baseline strategies of §5.3: MCT
// ("minimum completion time", effectively the scheduling policy of the
// production GriPPS system) and MCT-Div, its divisible extension. Both are
// non-preemptive and never revisit earlier decisions, which is exactly the
// weakness the paper's evaluation exposes: small jobs arriving into a loaded
// system are stretched enormously.
package greedy

import (
	"fmt"
	"math"
	"sort"

	"stretchsched/internal/model"
)

// MCT schedules each job, in release order, entirely on the eligible
// machine that offers the earliest completion time given the work already
// committed there.
func MCT(inst *model.Instance) (*model.Schedule, error) {
	sched := model.NewSchedule(inst)
	avail := make([]float64, inst.Platform.NumMachines())
	for j := range inst.Jobs {
		job := &inst.Jobs[j]
		best := -1
		bestEnd := math.Inf(1)
		for _, mid := range inst.Eligible(model.JobID(j)) {
			m := inst.Platform.Machine(mid)
			start := math.Max(avail[mid], job.Release)
			end := start + job.Size/m.Speed
			if end < bestEnd {
				best, bestEnd = int(mid), end
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("greedy: job %d has no eligible machine", j)
		}
		start := math.Max(avail[best], job.Release)
		sched.AddSlice(model.Slice{
			Machine: model.MachineID(best), Job: model.JobID(j), Start: start, End: bestEnd,
		})
		avail[best] = bestEnd
		sched.Completion[j] = bestEnd
	}
	return sched, nil
}

// MCTDiv schedules each job, in release order, divisibly across all its
// eligible machines so that it completes as early as possible given the
// work already committed — the classic water-filling allocation: machines
// are engaged in increasing order of ready time until the common finish
// time T satisfies Σ_i (T − ready_i)·speed_i = W_j.
func MCTDiv(inst *model.Instance) (*model.Schedule, error) {
	sched := model.NewSchedule(inst)
	avail := make([]float64, inst.Platform.NumMachines())
	for j := range inst.Jobs {
		job := &inst.Jobs[j]
		elig := inst.Eligible(model.JobID(j))
		if len(elig) == 0 {
			return nil, fmt.Errorf("greedy: job %d has no eligible machine", j)
		}
		type cand struct {
			mid   model.MachineID
			ready float64
			speed float64
		}
		cands := make([]cand, 0, len(elig))
		for _, mid := range elig {
			cands = append(cands, cand{
				mid:   mid,
				ready: math.Max(avail[mid], job.Release),
				speed: inst.Platform.Machine(mid).Speed,
			})
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].ready < cands[b].ready })

		// Water-filling: find the prefix of machines whose common finish
		// time T lies before the next machine becomes ready.
		T := math.Inf(1)
		used := 0
		sumSpeed, sumReadySpeed := 0.0, 0.0
		for k := range cands {
			sumSpeed += cands[k].speed
			sumReadySpeed += cands[k].ready * cands[k].speed
			t := (job.Size + sumReadySpeed) / sumSpeed
			if k+1 < len(cands) && t > cands[k+1].ready {
				continue // next machine becomes ready before T: include it
			}
			T = t
			used = k + 1
			break
		}
		for k := 0; k < used; k++ {
			c := cands[k]
			if T <= c.ready {
				continue
			}
			sched.AddSlice(model.Slice{Machine: c.mid, Job: model.JobID(j), Start: c.ready, End: T})
			avail[c.mid] = T
		}
		sched.Completion[j] = T
	}
	return sched, nil
}
