package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Loader parses and type-checks packages with one shared FileSet and one
// shared source importer, so a dependency (internal/rat, internal/lp, …)
// is type-checked once no matter how many analyzed packages import it.
// The source importer resolves both standard-library and module-local
// imports from source — no export data, no external tooling beyond the go
// command itself (which go/build shells out to for module resolution).
type Loader struct {
	Fset *token.FileSet
	imp  types.ImporterFrom
}

// NewLoader returns a Loader with a fresh FileSet and source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// LoadFiles parses filenames (absolute or dir-relative) as one package and
// type-checks it under the given import path. The import path decides
// package-scoped analyzer behavior (bigescape's internal/rat exemption,
// determinism's target set), which is also what lets the testdata harness
// check seeded violations "as if" they lived in a real package.
func (l *Loader) LoadFiles(importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Package{
		Fset:  l.Fset,
		Path:  importPath,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}, nil
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

// GoList enumerates the packages matching patterns (e.g. "./...") from
// dir, via the go command. Only GoFiles are returned: the analyzers run on
// production code; test files get their invariants from the test runner.
func GoList(dir string, patterns ...string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %w", err)
		}
		if len(p.GoFiles) > 0 {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// Load enumerates packages matching patterns from dir (via go list) and
// parses + type-checks each one.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := GoList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, lp := range listed {
		pkg, err := l.LoadFiles(lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
