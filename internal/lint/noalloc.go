package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Directives recognized by the noalloc analyzer.
const (
	// NoallocDirective marks a function whose body must contain no
	// allocating constructs. It goes in the function's doc comment.
	NoallocDirective = "//stretch:noalloc"
	// AllocOkDirective suppresses noalloc diagnostics on its line (or the
	// line below): the per-line escape hatch for deliberate cold-path
	// allocations inside an annotated function — error exits, the rational
	// ladder's escape-to-big promotions, one-time growth.
	AllocOkDirective = "//stretch:alloc-ok"
)

type noalloc struct{}

// NewNoalloc returns the annotated-hot-path allocation analyzer. It is
// intraprocedural by design: it checks the constructs *written in* an
// annotated function, while cmd/escapecheck covers what the compiler's
// escape analysis decides about the whole package. Flagged constructs:
//
//   - make and new
//   - slice and map composite literals, and &T{...} (heap candidates);
//     plain value struct/array literals are escapecheck's business
//   - append to a slice declared fresh (nil) in the same function
//   - string concatenation, and string<->[]byte/[]rune conversions
//   - any call into package fmt
//   - func literals (closure + context allocation)
//   - interface boxing of non-pointer-shaped values (assignments, call
//     arguments, returns); pointers, chans, maps and funcs are
//     pointer-shaped and box for free, constants box to static data
func NewNoalloc() Analyzer { return noalloc{} }

func (noalloc) Name() string { return "noalloc" }

func (noalloc) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcHasDirective(fd, NoallocDirective) {
				continue
			}
			nc := &noallocCheck{pkg: pkg, fname: fd.Name.Name}
			if sig, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				nc.sig, _ = sig.Type().(*types.Signature)
			}
			nc.collectFreshSlices(fd.Body)
			nc.walk(fd.Body)
			diags = append(diags, nc.diags...)
		}
	}
	return diags
}

// funcHasDirective reports whether the directive appears in the function's
// doc comment (the annotation position gofmt preserves).
func funcHasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directive || len(c.Text) > len(directive) && c.Text[:len(directive)] == directive {
			return true
		}
	}
	return false
}

type noallocCheck struct {
	pkg   *Package
	fname string
	sig   *types.Signature // enclosing signature, for return boxing
	fresh map[types.Object]bool
	diags []Diagnostic
}

func (nc *noallocCheck) flag(pos token.Pos, format string, args ...any) {
	if nc.pkg.Hatched(pos, AllocOkDirective) {
		return
	}
	d := nc.pkg.diag("noalloc", pos, "%s: "+format,
		append([]any{nc.fname}, args...)...)
	nc.diags = append(nc.diags, d)
}

// collectFreshSlices records locals declared as nil slices (`var s []T`)
// — appending to those allocates from scratch on every call, unlike
// appending into a reused field or parameter backing array.
func (nc *noallocCheck) collectFreshSlices(body *ast.BlockStmt) {
	nc.fresh = map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		spec, ok := n.(*ast.ValueSpec)
		if !ok || len(spec.Values) != 0 {
			return true
		}
		for _, name := range spec.Names {
			obj := nc.pkg.Info.Defs[name]
			if obj == nil {
				continue
			}
			if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
				nc.fresh[obj] = true
			}
		}
		return true
	})
}

func (nc *noallocCheck) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			nc.flag(node.Pos(), "func literal (closure) allocates")
			return false // the literal is its own allocation context
		case *ast.CallExpr:
			nc.checkCall(node)
		case *ast.CompositeLit:
			nc.checkCompositeLit(node)
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if lit, ok := unparen(node.X).(*ast.CompositeLit); ok {
					nc.flag(node.Pos(), "&%s{...} allocates", typeLabel(nc.pkg, lit))
				}
			}
		case *ast.BinaryExpr:
			if node.Op == token.ADD && nc.isString(node) {
				nc.flag(node.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			nc.checkAssign(node)
		case *ast.ValueSpec:
			nc.checkValueSpec(node)
		case *ast.ReturnStmt:
			nc.checkReturn(node)
		}
		return true
	})
}

func (nc *noallocCheck) checkCall(call *ast.CallExpr) {
	fun := unparen(call.Fun)

	// Conversions: string <-> []byte/[]rune copy their operand.
	if tv, ok := nc.pkg.Info.Types[fun]; ok && tv.IsType() {
		nc.checkConversion(call, tv.Type)
		return
	}

	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	}
	if id != nil {
		switch obj := nc.pkg.Info.Uses[id].(type) {
		case *types.Builtin:
			switch id.Name {
			case "make":
				nc.flag(call.Pos(), "make allocates")
				return
			case "new":
				nc.flag(call.Pos(), "new allocates")
				return
			case "append":
				nc.checkAppend(call)
				return
			}
		case *types.Func:
			if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
				nc.flag(call.Pos(), "fmt.%s allocates (formatting boxes its operands)", obj.Name())
				// fall through: args may box too, but one diagnostic per
				// line is enough — the fmt call dominates.
				return
			}
		}
	}
	nc.checkCallArgBoxing(call)
}

func (nc *noallocCheck) checkConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	fromTV, ok := nc.pkg.Info.Types[call.Args[0]]
	if !ok {
		return
	}
	from := fromTV.Type
	toStr := isStringType(to)
	fromStr := isStringType(from)
	toSl := isByteOrRuneSlice(to)
	fromSl := isByteOrRuneSlice(from)
	switch {
	case toStr && fromSl:
		nc.flag(call.Pos(), "conversion %s -> string allocates", from)
	case toSl && fromStr:
		nc.flag(call.Pos(), "conversion string -> %s allocates", to)
	}
}

func (nc *noallocCheck) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	if obj := nc.pkg.Info.Uses[id]; obj != nil && nc.fresh[obj] {
		nc.flag(call.Pos(), "append to %s, a slice declared fresh in this function, allocates", id.Name)
	}
}

func (nc *noallocCheck) checkCompositeLit(lit *ast.CompositeLit) {
	tv, ok := nc.pkg.Info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		nc.flag(lit.Pos(), "slice literal allocates")
	case *types.Map:
		nc.flag(lit.Pos(), "map literal allocates")
	}
}

func (nc *noallocCheck) checkAssign(assign *ast.AssignStmt) {
	if assign.Tok == token.ADD_ASSIGN && len(assign.Lhs) == 1 && nc.isString(assign.Lhs[0]) {
		nc.flag(assign.Pos(), "string += allocates")
		return
	}
	if assign.Tok != token.ASSIGN || len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i := range assign.Lhs {
		lhsTV, ok := nc.pkg.Info.Types[assign.Lhs[i]]
		if !ok {
			continue
		}
		nc.checkBoxing(assign.Rhs[i], lhsTV.Type, "assignment")
	}
}

func (nc *noallocCheck) checkValueSpec(spec *ast.ValueSpec) {
	if spec.Type == nil {
		return
	}
	tv, ok := nc.pkg.Info.Types[spec.Type]
	if !ok {
		return
	}
	for _, v := range spec.Values {
		nc.checkBoxing(v, tv.Type, "declaration")
	}
}

func (nc *noallocCheck) checkReturn(ret *ast.ReturnStmt) {
	if nc.sig == nil || nc.sig.Results() == nil {
		return
	}
	res := nc.sig.Results()
	if len(ret.Results) != res.Len() {
		return // bare return or tuple-forwarding call
	}
	for i, r := range ret.Results {
		nc.checkBoxing(r, res.At(i).Type(), "return")
	}
}

func (nc *noallocCheck) checkCallArgBoxing(call *ast.CallExpr) {
	tv, ok := nc.pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		} else {
			break
		}
		nc.checkBoxing(arg, pt, "argument")
	}
}

// checkBoxing flags expr when assigning it to target implicitly converts a
// concrete non-pointer-shaped value to an interface — the conversion heap-
// allocates the value's box.
func (nc *noallocCheck) checkBoxing(expr ast.Expr, target types.Type, context string) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	if _, isTP := target.(*types.TypeParam); isTP {
		return
	}
	tv, ok := nc.pkg.Info.Types[expr]
	if !ok {
		return
	}
	if tv.Value != nil {
		return // constants box to static data, no runtime allocation
	}
	from := tv.Type
	if from == nil || types.IsInterface(from) || isUntypedNil(from) || isPointerShaped(from) {
		return
	}
	if _, isTP := from.(*types.TypeParam); isTP {
		return
	}
	nc.flag(expr.Pos(), "%s boxes %s into %s (interface allocation)", context, from, target)
}

func (nc *noallocCheck) isString(e ast.Expr) bool {
	tv, ok := nc.pkg.Info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	return isStringType(tv.Type)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// isPointerShaped reports types whose interface box is the word itself:
// pointers, unsafe.Pointer, chans, maps and funcs. Everything else copies
// into a fresh heap cell when boxed.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}

func typeLabel(pkg *Package, lit *ast.CompositeLit) string {
	if tv, ok := pkg.Info.Types[lit]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return "T"
}
