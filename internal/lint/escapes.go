package lint

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Escape-gate plumbing for cmd/escapecheck: parse `go build -gcflags=-m`
// diagnostics, reduce them to line-number-independent (file, message)
// entries with multiplicities, and diff a fresh run against a checked-in
// golden allowlist. Keying on (file, message, count) instead of exact
// positions keeps the allowlists stable under unrelated edits to the same
// file, while still failing the build the moment a *new* escape (or one
// more instance of a known shape) appears — the fresh run's exact
// file:line:col is reported alongside.

// EscapeEntry is one distinct heap-escape shape in one file.
type EscapeEntry struct {
	File    string // as printed by the compiler, e.g. internal/sim/engine.go
	Message string // e.g. "make([]int, n) escapes to heap"
	Count   int    // how many source positions produce this exact message
}

// Key identifies the entry independent of line numbers.
func (e EscapeEntry) Key() string { return e.File + ": " + e.Message }

// escapeLine matches one compiler diagnostic: file:line:col: message.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// EscapeDiag is one raw positioned diagnostic from the fresh run, kept so
// a failed gate can point at the exact source line.
type EscapeDiag struct {
	File    string
	Line    int
	Col     int
	Message string
}

func (d EscapeDiag) String() string {
	return fmt.Sprintf("%s:%d:%d: %s", d.File, d.Line, d.Col, d.Message)
}

// ParseEscapes extracts the heap-escape diagnostics ("escapes to heap",
// "moved to heap") from -gcflags=-m output, dropping the inlining and
// parameter-leak chatter.
func ParseEscapes(r io.Reader) ([]EscapeDiag, error) {
	var out []EscapeDiag
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := escapeLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		out = append(out, EscapeDiag{File: m[1], Line: line, Col: col, Message: msg})
	}
	return out, sc.Err()
}

// Summarize folds positioned diagnostics into sorted allowlist entries.
func Summarize(diags []EscapeDiag) []EscapeEntry {
	counts := map[string]*EscapeEntry{}
	for _, d := range diags {
		key := d.File + ": " + d.Message
		if e, ok := counts[key]; ok {
			e.Count++
		} else {
			counts[key] = &EscapeEntry{File: d.File, Message: d.Message, Count: 1}
		}
	}
	out := make([]EscapeEntry, 0, len(counts))
	for _, e := range counts {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// WriteAllowlist writes entries in the golden file format: one
// "count<TAB>file<TAB>message" line per entry, sorted.
func WriteAllowlist(w io.Writer, entries []EscapeEntry) error {
	for _, e := range entries {
		if _, err := fmt.Fprintf(w, "%d\t%s\t%s\n", e.Count, e.File, e.Message); err != nil {
			return err
		}
	}
	return nil
}

// ReadAllowlist parses a golden file written by WriteAllowlist. Blank
// lines and #-comments are skipped.
func ReadAllowlist(r io.Reader) ([]EscapeEntry, error) {
	var out []EscapeEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := sc.Text()
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("allowlist line %d: want count<TAB>file<TAB>message, got %q", lineNo, line)
		}
		n, err := strconv.Atoi(parts[0])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("allowlist line %d: bad count %q", lineNo, parts[0])
		}
		out = append(out, EscapeEntry{Count: n, File: parts[1], Message: parts[2]})
	}
	return out, sc.Err()
}

// DiffEscapes compares a fresh run against the golden allowlist.
// New escapes (unknown shape, or more instances of a known shape) fail the
// gate; they are returned with the fresh run's exact positions. Stale
// golden entries — shapes the code no longer produces — are returned
// separately: they don't fail the gate, they just mean the allowlist can
// be tightened with -update.
func DiffEscapes(fresh []EscapeDiag, golden []EscapeEntry) (newDiags []EscapeDiag, stale []EscapeEntry) {
	allowed := map[string]int{}
	for _, e := range golden {
		allowed[e.Key()] += e.Count
	}
	// Walk fresh diagnostics in position order; the first `allowed` hits
	// of each shape are covered by the golden budget, the rest are new.
	sort.Slice(fresh, func(i, j int) bool {
		a, b := fresh[i], fresh[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	seen := map[string]int{}
	for _, d := range fresh {
		key := d.File + ": " + d.Message
		seen[key]++
		if seen[key] > allowed[key] {
			newDiags = append(newDiags, d)
		}
	}
	for _, e := range golden {
		if seen[e.Key()] < allowed[e.Key()] {
			short := e
			short.Count = allowed[e.Key()] - seen[e.Key()]
			stale = append(stale, short)
		}
	}
	return newDiags, stale
}
