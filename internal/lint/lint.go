// Package lint is the project-invariant analyzer suite behind
// cmd/stretchvet: stdlib-only static analysis (go/ast + go/types; no
// external dependencies, so it runs in offline CI) that machine-checks at
// build time the invariants PRs 1–5 established with runtime tests only —
// solver errors must not be swallowed, math/big must not leak outside the
// rational ladder in internal/rat, annotated hot paths must not allocate,
// and the deterministic grid paths must not consume ambient randomness,
// wall-clock time, or unordered map iteration.
//
// Four analyzers:
//
//   - noswallow: a call to a watched solver/planner/experiment entry point
//     (lp Solve*/SolveRevised*, offline Plan/Refine, online Plan, the exp
//     Run*/Write*/Read* CSV surface) must not discard its error result —
//     neither as a bare statement nor assigned to the blank identifier.
//     Escape hatch: //stretch:swallow-ok on the offending line.
//
//   - bigescape: importing math/big, or using any identifier whose
//     defining package is math/big, is only legal inside internal/rat.
//     Everything else must go through rat.Rat, which is the whole point of
//     the three-tier representation ladder. No escape hatch.
//
//   - noalloc: a function whose doc comment carries //stretch:noalloc may
//     not contain allocating constructs: make/new, slice/map composite
//     literals, &composite literals, append to a slice declared fresh in
//     the function, string concatenation or string<->[]byte/[]rune
//     conversions, calls into package fmt, closures (func literals), and
//     interface boxing of non-pointer-shaped values. Escape hatch:
//     //stretch:alloc-ok on the offending line (or the line above), for
//     cold paths — error exits, escape-to-big promotions — inside an
//     otherwise allocation-free function.
//
//   - determinism: inside the deterministic grid packages (internal/exp,
//     internal/workload), global math/rand top-level functions (ambient
//     seed), time.Now, and map-range loops that write ordered output
//     (formatted writes, appends of derived values) are flagged; results
//     must derive from (point, run) coordinates alone. Escape hatch:
//     //stretch:order-ok on the range statement, for the collect-then-sort
//     idiom.
//
// The analyzers are intentionally intraprocedural: a flagged construct is
// on the annotated line itself, never inferred through a call. The
// interprocedural complement — actual heap escapes, wherever they come
// from — is cmd/escapecheck, which diffs the compiler's own escape
// analysis (go build -gcflags=-m) against golden allowlists checked in
// under internal/lint/escapes/.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position `json:"pos"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Path  string // import path (decides package-scoped exemptions)
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// directiveLines caches, per directive, the set of (filename, line)
	// pairs carrying that //stretch: escape-hatch comment.
	directiveLines map[string]map[posKey]bool
}

type posKey struct {
	file string
	line int
}

// Analyzer is one project-invariant check.
type Analyzer interface {
	Name() string
	Run(pkg *Package) []Diagnostic
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []Analyzer {
	return []Analyzer{
		NewNoswallow(),
		NewBigescape(),
		NewNoalloc(),
		NewDeterminism(),
	}
}

// Hatched reports whether pos sits on (or directly under) a line carrying
// the given //stretch: directive — the per-line escape hatches. A hatch on
// the line above also counts, so long annotated expressions can carry the
// comment without breaking gofmt alignment.
func (p *Package) Hatched(pos token.Pos, directive string) bool {
	if p.directiveLines == nil {
		p.directiveLines = map[string]map[posKey]bool{}
	}
	lines, ok := p.directiveLines[directive]
	if !ok {
		lines = map[posKey]bool{}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.Contains(c.Text, directive) {
						cp := p.Fset.Position(c.Pos())
						lines[posKey{cp.Filename, cp.Line}] = true
					}
				}
			}
		}
		p.directiveLines[directive] = lines
	}
	dp := p.Fset.Position(pos)
	return lines[posKey{dp.Filename, dp.Line}] ||
		lines[posKey{dp.Filename, dp.Line - 1}]
}

func (p *Package) diag(analyzer string, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// Run applies every analyzer to every package and returns the merged
// diagnostics in (file, line, column) order.
func Run(analyzers []Analyzer, pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			out = append(out, a.Run(pkg)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// unparen strips any levels of parentheses from e. (ast.Unparen needs a
// go1.22 module directive; this module still declares go 1.21.)
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
