package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation substrings from testdata source:
// `// want "substring"`, possibly several per line.
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// runTestdata loads internal/lint/testdata/src/<dirName> as a package under
// a synthetic stretchsched import path and checks the analyzer's
// diagnostics against the // want comments, in both directions: every want
// must be matched by a diagnostic on its line (substring match), and every
// diagnostic must be claimed by a want.
func runTestdata(t *testing.T, a Analyzer, dirName string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", dirName))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		t.Fatalf("no .go files in %s", dir)
	}
	pkg, err := NewLoader().LoadFiles(testdataImportPath(dirName), dir, files)
	if err != nil {
		t.Fatal(err)
	}
	diags := a.Run(pkg)

	unmatched := map[posKey][]string{}
	for _, name := range files {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				key := posKey{file: path, line: i + 1}
				unmatched[key] = append(unmatched[key], m[1])
			}
		}
	}

	for _, d := range diags {
		key := posKey{file: d.Pos.Filename, line: d.Pos.Line}
		wants := unmatched[key]
		hit := -1
		for i, w := range wants {
			if strings.Contains(d.Message, w) {
				hit = i
				break
			}
		}
		if hit == -1 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		unmatched[key] = append(wants[:hit], wants[hit+1:]...)
	}
	for key, wants := range unmatched {
		for _, w := range wants {
			t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w)
		}
	}
}

func testdataImportPath(dirName string) string {
	return "stretchsched/internal/lint/testdata/src/" + dirName
}

func TestNoswallowTestdata(t *testing.T) { runTestdata(t, NewNoswallow(), "noswallow") }

func TestBigescapeTestdata(t *testing.T) { runTestdata(t, NewBigescape(), "bigescape") }

func TestNoallocTestdata(t *testing.T) { runTestdata(t, NewNoalloc(), "noalloc") }

func TestDeterminismTestdata(t *testing.T) {
	runTestdata(t, NewDeterminismFor(testdataImportPath("determinism")), "determinism")
}

// TestBigescapeExemptsRatSubtree pins the one allowed home of math/big: the
// same source flagged above produces nothing when the package path sits
// under internal/rat.
func TestBigescapeExemptsRatSubtree(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "bigescape"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader().LoadFiles("stretchsched/internal/rat/bigescape", dir, []string{"bigescape.go"})
	if err != nil {
		t.Fatal(err)
	}
	if diags := NewBigescape().Run(pkg); len(diags) != 0 {
		t.Fatalf("bigescape inside internal/rat subtree must be silent, got %v", diags)
	}
}

// TestDeterminismScopedToTargetPaths pins the package-scope gate: the same
// seeded violations are invisible when the package is outside the
// deterministic grid set.
func TestDeterminismScopedToTargetPaths(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "determinism"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader().LoadFiles("stretchsched/internal/elsewhere", dir, []string{"determinism.go"})
	if err != nil {
		t.Fatal(err)
	}
	if diags := NewDeterminismFor(determinismDefaultPaths...).Run(pkg); len(diags) != 0 {
		t.Fatalf("determinism outside its target packages must be silent, got %v", diags)
	}
}

// TestRepoIsClean runs the full suite over the repository itself — the
// same invocation as CI's `go run ./cmd/stretchvet ./...` — and demands
// zero findings. Loading and type-checking every package from source is a
// few seconds of work, so it is skipped in -short runs.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo typecheck in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader().Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(Analyzers(), pkgs) {
		t.Errorf("%s", d)
	}
}
