package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SwallowOkDirective suppresses a noswallow diagnostic on its line.
const SwallowOkDirective = "//stretch:swallow-ok"

// noswallowWatch lists, per defining package, the functions and methods
// whose error results must not be discarded. These are exactly the entry
// points whose silent failures PR 2 and PR 4 dug out by hand: the LP
// solvers (a swallowed ErrIterLimit turns the §5.3 anomaly back on), the
// offline planner pipeline, the online per-event solves, and the
// experiment harness's CSV/digest surface (a swallowed write error is a
// silently truncated nightly merge).
var noswallowWatch = map[string]map[string]bool{
	"stretchsched/internal/lp": {
		"Solve": true, "SolveWith": true,
		"SolveRevised": true, "SolveRevisedWith": true,
	},
	"stretchsched/internal/offline": {
		"Plan": true, "Refine": true, "Optimal": true, "OptimalStretch": true,
	},
	// Calls through the sim.Planner interface resolve to the interface
	// method object, which lives in internal/sim.
	"stretchsched/internal/sim": {
		"Plan": true, "RunList": true, "RunPlanned": true,
	},
	"stretchsched/internal/online": {
		"Plan": true,
	},
	"stretchsched/internal/exp": {
		"RunGridCSV": true, "WriteResultsCSV": true, "WriteFigure3CSV": true,
		"WritePointDigests": true, "ReadResultsCSV": true, "PointDigests": true,
		"VerifyExact": true,
		// Package-internal encoders: the csv.go:100 class of swallow.
		"writeResultRows": true, "encodeShard": true,
		// Cluster family (PR 9) — same CSV/digest contract as the grid.
		"RunClusterCSV": true, "WriteClusterCSV": true, "ReadClusterCSV": true,
		"ClusterPointDigests": true, "WriteClusterPointDigests": true,
		"writeClusterRows": true, "encodeClusterShard": true,
		// Measured-times sidecar: a swallowed write error silently loses
		// the feedback that orders the next pass's shard dispatch.
		"WritePointTimes": true, "ReadPointTimes": true,
		// Faults family (PR 10) — same CSV/digest contract again.
		"RunFaultsCSV": true, "WriteFaultsCSV": true, "ReadFaultsCSV": true,
		"FaultPointDigests": true, "WriteFaultPointDigests": true,
		"writeFaultRow": true, "encodeFaultShard": true,
	},
	// Cluster world entry points: a swallowed Run/Place/Lookahead error is
	// a node silently dropped from the comparison tables; a swallowed
	// SetFaults error silently runs the zero-failure path instead.
	"stretchsched/internal/cluster": {
		"Run": true, "Place": true, "Lookahead": true, "New": true,
		"SetFaults": true, "RunFaulty": true,
	},
	// Fault planner: a swallowed construction error is a nil plan, which
	// silently degrades a faults experiment to the zero-failure path.
	"stretchsched/internal/fault": {
		"New": true,
	},
	// Crash-recovery entry points: every one of these failing silently
	// turns "recovered" into "corrupted". RecoverLogFile truncates a real
	// file; WriteFileAtomic replaces the previous checkpoint; Restore and
	// DecodeCheckpoint gate whether a daemon resumes at all.
	"stretchsched/internal/serve": {
		"RecoverLogFile": true, "WriteFileAtomic": true, "ReadLogPayloads": true,
		"Restore": true, "DecodeCheckpoint": true, "WriteFile": true,
		"Checkpoint": true, "Sync": true,
	},
}

type noswallow struct{}

// NewNoswallow returns the discarded-error analyzer.
func NewNoswallow() Analyzer { return noswallow{} }

func (noswallow) Name() string { return "noswallow" }

func (noswallow) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	flag := func(pos token.Pos, callee *types.Func, how string) {
		if pkg.Hatched(pos, SwallowOkDirective) {
			return
		}
		diags = append(diags, pkg.diag("noswallow", pos,
			"error result of %s.%s %s", callee.Pkg().Name(), callee.Name(), how))
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if callee := watchedErrCall(pkg, stmt.X); callee != nil {
					flag(stmt.Pos(), callee, "is discarded (bare call statement)")
				}
			case *ast.GoStmt:
				if callee := watchedErrCall(pkg, stmt.Call); callee != nil {
					flag(stmt.Pos(), callee, "is discarded (go statement)")
				}
			case *ast.DeferStmt:
				if callee := watchedErrCall(pkg, stmt.Call); callee != nil {
					flag(stmt.Pos(), callee, "is discarded (defer statement)")
				}
			case *ast.AssignStmt:
				// A watched call as the sole RHS: its results map 1:1 onto
				// the LHS; every error-typed result assigned to _ is a
				// swallow.
				if len(stmt.Rhs) != 1 {
					return true
				}
				callee := watchedErrCall(pkg, stmt.Rhs[0])
				if callee == nil {
					return true
				}
				sig := callSignature(pkg, stmt.Rhs[0].(*ast.CallExpr))
				if sig == nil {
					return true
				}
				res := sig.Results()
				for i := 0; i < res.Len() && i < len(stmt.Lhs); i++ {
					if !isErrorType(res.At(i).Type()) {
						continue
					}
					if id, ok := stmt.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						flag(stmt.Pos(), callee, "is assigned to _")
					}
				}
			}
			return true
		})
	}
	return diags
}

// watchedErrCall reports the watched *types.Func called by expr, if expr
// is a call to a watchlisted function or method that returns an error.
func watchedErrCall(pkg *Package, expr ast.Expr) *types.Func {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return nil
	}
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	names := noswallowWatch[fn.Pkg().Path()]
	if !names[fn.Name()] {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return fn
		}
	}
	return nil
}

func callSignature(pkg *Package, call *ast.CallExpr) *types.Signature {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
