package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// bigAllowedPrefix is the one package subtree allowed to touch math/big:
// the rational ladder itself, whose whole contract is that big.Rat is the
// private top tier behind rat.Rat.
const bigAllowedPrefix = "stretchsched/internal/rat"

type bigescape struct{}

// NewBigescape returns the math/big containment analyzer. It flags both
// math/big imports and any use of an identifier defined in math/big —
// the latter catches laundering a *big.Rat obtained without the import
// (e.g. calling methods on rat.Rat.Big()'s result).
func NewBigescape() Analyzer { return bigescape{} }

func (bigescape) Name() string { return "bigescape" }

func (bigescape) Run(pkg *Package) []Diagnostic {
	if pkg.Path == bigAllowedPrefix || strings.HasPrefix(pkg.Path, bigAllowedPrefix+"/") {
		return nil
	}
	var diags []Diagnostic
	for _, file := range pkg.Files {
		for _, imp := range file.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "math/big" {
				diags = append(diags, pkg.diag("bigescape", imp.Pos(),
					"math/big imported outside %s: exact arithmetic must go through rat.Rat's tier ladder", bigAllowedPrefix))
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[id]
			// A PkgName's Pkg() is the importing package, so the `big` in
			// `big.Rat` resolves here only through the member identifiers;
			// the import line itself is flagged above.
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "math/big" {
				return true
			}
			diags = append(diags, pkg.diag("bigescape", id.Pos(),
				"use of math/big identifier %s outside %s", id.Name, bigAllowedPrefix))
			return true
		})
	}
	return diags
}
