package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// OrderOkDirective suppresses a determinism diagnostic on its line; it
// belongs on map-range loops that feed a sort (collect-then-order).
const OrderOkDirective = "//stretch:order-ok"

// determinismDefaultPaths are the packages whose outputs must be a pure
// function of (point, run) coordinates: the grid harness (CSV bytes and
// FNV digests are compared across shard counts and reruns), the workload
// generator (instance seeds ARE the reproducibility contract), and the
// cluster world (placements must replay bitwise from the lb seed — the
// machines=1 equivalence and shard-merge digests both depend on it), and
// the fault planner (a reseeded plan must be bitwise stable or reused
// worlds diverge from fresh ones).
var determinismDefaultPaths = []string{
	"stretchsched/internal/exp",
	"stretchsched/internal/workload",
	"stretchsched/internal/cluster",
	"stretchsched/internal/fault",
}

// randConstructors are the math/rand top-level functions that merely build
// explicitly-seeded generators; everything else at package level draws
// from the ambient global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

type determinism struct {
	paths []string
}

// NewDeterminism returns the grid-determinism analyzer over the default
// target packages; NewDeterminismFor narrows or widens the target set
// (used by the test harness).
func NewDeterminism() Analyzer { return determinism{paths: determinismDefaultPaths} }

// NewDeterminismFor returns a determinism analyzer targeting exactly the
// given import paths.
func NewDeterminismFor(paths ...string) Analyzer { return determinism{paths: paths} }

func (d determinism) Name() string { return "determinism" }

func (d determinism) applies(path string) bool {
	for _, p := range d.paths {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func (d determinism) Run(pkg *Package) []Diagnostic {
	if !d.applies(pkg.Path) {
		return nil
	}
	var diags []Diagnostic
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.SelectorExpr:
				fn, ok := pkg.Info.Uses[node.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				sig, _ := fn.Type().(*types.Signature)
				isMethod := sig != nil && sig.Recv() != nil
				switch {
				case fn.Pkg().Path() == "math/rand" && !isMethod && !randConstructors[fn.Name()]:
					if !pkg.Hatched(node.Pos(), OrderOkDirective) {
						diags = append(diags, pkg.diag("determinism", node.Pos(),
							"math/rand.%s draws from the ambient global source; use an explicitly seeded *rand.Rand", fn.Name()))
					}
				case fn.Pkg().Path() == "time" && fn.Name() == "Now" && !isMethod:
					if !pkg.Hatched(node.Pos(), OrderOkDirective) {
						diags = append(diags, pkg.diag("determinism", node.Pos(),
							"time.Now in a deterministic grid path: results must derive from (point, run) coordinates alone"))
					}
				}
			case *ast.RangeStmt:
				if diag, bad := d.checkMapRange(pkg, node); bad {
					diags = append(diags, diag)
				}
			}
			return true
		})
	}
	return diags
}

// checkMapRange flags a range over a map whose body emits ordered output:
// formatted/stream writes (Write*/Print*/Fprint*), or appends of derived
// values to a slice declared outside the loop. Appending just the range
// key is the collect-then-sort idiom and stays legal; anything fancier
// must either iterate sorted keys or carry //stretch:order-ok.
func (d determinism) checkMapRange(pkg *Package, rng *ast.RangeStmt) (Diagnostic, bool) {
	tv, ok := pkg.Info.Types[rng.X]
	if !ok {
		return Diagnostic{}, false
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return Diagnostic{}, false
	}
	if pkg.Hatched(rng.Pos(), OrderOkDirective) {
		return Diagnostic{}, false
	}
	keyObj := rangeVarObj(pkg, rng.Key)
	var found Diagnostic
	bad := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if bad {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Ordered-output writes by name: csv.Writer.Write, io.Writer.Write,
		// fmt.Fprintf, buf.WriteString, … — every one of them appends to a
		// byte stream whose order IS the result.
		var name string
		switch fun := unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		switch {
		case strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Print") ||
			strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Sprint"):
			found = pkg.diag("determinism", rng.Pos(),
				"map iteration order reaches ordered output (%s inside map range); iterate sorted keys or mark //stretch:order-ok if sorted later", name)
			bad = true
		case name == "append" && isBuiltinAppend(pkg, call):
			// append(dst, key) collects keys for a later sort — fine.
			// Appending anything derived from the value makes the slice
			// order depend on map iteration order.
			if len(call.Args) == 2 && keyObj != nil {
				if id, ok := unparen(call.Args[1]).(*ast.Ident); ok && pkg.Info.Uses[id] == keyObj {
					return true
				}
			}
			found = pkg.diag("determinism", rng.Pos(),
				"append of a derived value inside map range: slice order depends on map iteration; iterate sorted keys or mark //stretch:order-ok if sorted later")
			bad = true
		}
		return !bad
	})
	return found, bad
}

func rangeVarObj(pkg *Package, key ast.Expr) types.Object {
	id, ok := key.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pkg.Info.Uses[id]
}

func isBuiltinAppend(pkg *Package, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}
