// Package determinismdata exercises the grid-determinism analyzer: ambient
// math/rand draws, wall-clock reads, and map-range loops that leak
// iteration order into ordered output — next to the legal forms (explicit
// *rand.Rand, rand constructors, collect-then-sort, the order-ok hatch).
// The harness runs NewDeterminismFor with this package's path so the
// package-scope gate matches.
package determinismdata

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

func ambient() int {
	return rand.Intn(10) // want "math/rand.Intn draws from the ambient global source"
}

func seeded(rng *rand.Rand) int {
	return rng.Intn(10) // methods on an explicitly seeded *rand.Rand: legal
}

func constructors() *rand.Rand {
	return rand.New(rand.NewSource(1)) // constructors take an explicit seed: legal
}

func wallClock() time.Time {
	return time.Now() // want "time.Now in a deterministic grid path"
}

func orderedWrite(w io.Writer, m map[string]int) {
	for k, v := range m { // want "map iteration order reaches ordered output"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func derivedAppend(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "append of a derived value inside map range"
		out = append(out, v)
	}
	return out
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // appending just the range key: the legal idiom
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func hatchedRange(w io.Writer, m map[string]int) {
	for k := range m { //stretch:order-ok — demo: pretend a sort follows
		fmt.Fprint(w, k)
	}
}
