// Package noswallowdata seeds every way a watched error result can be
// discarded — bare call statement, go, defer, blank-assigned — against the
// real generic lp.Problem API, plus the legal forms (error handled, hatch).
package noswallowdata

import "stretchsched/internal/lp"

func bareCall(p *lp.Problem[float64]) {
	p.Solve() // want "error result of lp.Solve is discarded (bare call statement)"
}

func bareRevised(p *lp.Problem[float64], ws *lp.Workspace[float64]) {
	p.SolveRevisedWith(ws) // want "error result of lp.SolveRevisedWith is discarded"
}

func goStmt(p *lp.Problem[float64]) {
	go p.Solve() // want "go statement"
}

func deferStmt(p *lp.Problem[float64]) {
	defer p.Solve() // want "defer statement"
}

func blankAssigned(p *lp.Problem[float64]) *lp.Solution[float64] {
	sol, _ := p.Solve() // want "error result of lp.Solve is assigned to _"
	return sol
}

func bothBlank(p *lp.Problem[float64]) {
	_, _ = p.Solve() // want "assigned to _"
}

func handled(p *lp.Problem[float64]) error {
	_, err := p.Solve() // error captured: legal
	return err
}

func hatched(p *lp.Problem[float64]) {
	p.Solve() //stretch:swallow-ok — demo of the per-line hatch
}

// unwatchedError shows the analyzer only fires on the watchlist: discarding
// an arbitrary error-returning call is vet's business, not stretchvet's.
func unwatchedError(f func() error) {
	f()
}
