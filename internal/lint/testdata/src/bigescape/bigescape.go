// Package bigescapedata exercises the math/big containment analyzer: both
// the import line and every identifier defined in math/big are flagged,
// because this package's synthetic import path is outside internal/rat.
package bigescapedata

import "math/big" // want "math/big imported outside"

func half() *big.Rat { // want "use of math/big identifier Rat"
	return big.NewRat(1, 2) // want "use of math/big identifier NewRat"
}
