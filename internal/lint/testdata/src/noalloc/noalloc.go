// Package noallocdata seeds one violation per construct class the noalloc
// analyzer flags, plus the constructs it must NOT flag (hatched lines,
// unannotated functions, value struct literals). The harness in
// analyzers_test.go matches each // want comment against the diagnostics
// produced on its line, in both directions.
package noallocdata

import "fmt"

type box struct{ v int }

//stretch:noalloc
func makeAlloc(n int) []int {
	s := make([]int, n) // want "make allocates"
	return s
}

//stretch:noalloc
func newAlloc() *box {
	return new(box) // want "new allocates"
}

//stretch:noalloc
func sliceLit() []int {
	return []int{1, 2} // want "slice literal allocates"
}

//stretch:noalloc
func mapLit() map[string]int {
	return map[string]int{} // want "map literal allocates"
}

//stretch:noalloc
func addrLit() *box {
	return &box{v: 1} // want "allocates"
}

//stretch:noalloc
func appendFresh() int {
	var s []int
	s = append(s, 1) // want "append to s, a slice declared fresh"
	return len(s)
}

//stretch:noalloc
func appendReused(dst []int) []int {
	return append(dst, 1) // appending into a caller-owned backing array: legal
}

//stretch:noalloc
func concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//stretch:noalloc
func plusAssign(a, b string) string {
	a += b // want "string += allocates"
	return a
}

//stretch:noalloc
func bytesToString(b []byte) string {
	return string(b) // want "conversion"
}

//stretch:noalloc
func stringToBytes(s string) []byte {
	return []byte(s) // want "conversion string"
}

//stretch:noalloc
func format(x int) {
	fmt.Println(x) // want "fmt.Println allocates"
}

//stretch:noalloc
func closure() func() int {
	f := func() int { return 1 } // want "func literal"
	return f
}

//stretch:noalloc
func boxesReturn(x int) any {
	return x // want "boxes int into"
}

//stretch:noalloc
func boxesAssign(x box) {
	var sink any
	sink = x // want "boxes"
	_ = sink
}

//stretch:noalloc
func boxesConstant() any {
	return 42 // constants box to static data: legal
}

//stretch:noalloc
func boxesPointer(p *box) any {
	return p // pointer-shaped values box for free: legal
}

//stretch:noalloc
func valueLiteral() box {
	return box{v: 1} // value struct literal: escapecheck's business, legal here
}

//stretch:noalloc
func hatchedSameLine(n int) []int {
	s := make([]int, n) //stretch:alloc-ok — cold path, demo of the hatch
	return s
}

//stretch:noalloc
func hatchedLineAbove(n int) []int {
	//stretch:alloc-ok — cold path, demo of the hatch on the line above
	s := make([]int, n)
	return s
}

// unannotated allocates freely: no directive, no diagnostics.
func unannotated() []int {
	return make([]int, 4)
}
