package lint

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

const sampleBuildOutput = `# stretchsched/internal/sim
internal/sim/engine.go:10:6: can inline grow[go.shape.int]
internal/sim/engine.go:20:12: make([]int, n) escapes to heap
internal/sim/engine.go:33:2: moved to heap: x
internal/sim/engine.go:41:12: make([]int, n) escapes to heap
internal/sim/engine.go:50:9: leaking param: inst
internal/sim/eventheap.go:7:15: make([]float64, n) escapes to heap
not a diagnostic line at all
`

func TestParseEscapes(t *testing.T) {
	diags, err := ParseEscapes(strings.NewReader(sampleBuildOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := []EscapeDiag{
		{File: "internal/sim/engine.go", Line: 20, Col: 12, Message: "make([]int, n) escapes to heap"},
		{File: "internal/sim/engine.go", Line: 33, Col: 2, Message: "moved to heap: x"},
		{File: "internal/sim/engine.go", Line: 41, Col: 12, Message: "make([]int, n) escapes to heap"},
		{File: "internal/sim/eventheap.go", Line: 7, Col: 15, Message: "make([]float64, n) escapes to heap"},
	}
	if !reflect.DeepEqual(diags, want) {
		t.Fatalf("ParseEscapes = %v, want %v", diags, want)
	}
}

func TestSummarizeAndAllowlistRoundTrip(t *testing.T) {
	diags, err := ParseEscapes(strings.NewReader(sampleBuildOutput))
	if err != nil {
		t.Fatal(err)
	}
	entries := Summarize(diags)
	want := []EscapeEntry{
		{File: "internal/sim/engine.go", Message: "make([]int, n) escapes to heap", Count: 2},
		{File: "internal/sim/engine.go", Message: "moved to heap: x", Count: 1},
		{File: "internal/sim/eventheap.go", Message: "make([]float64, n) escapes to heap", Count: 1},
	}
	if !reflect.DeepEqual(entries, want) {
		t.Fatalf("Summarize = %v, want %v", entries, want)
	}

	var buf bytes.Buffer
	buf.WriteString("# header comment\n\n")
	if err := WriteAllowlist(&buf, entries); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAllowlist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, entries) {
		t.Fatalf("round trip = %v, want %v", back, entries)
	}
}

func TestReadAllowlistRejectsMalformed(t *testing.T) {
	if _, err := ReadAllowlist(strings.NewReader("zero\tfoo.go\tmsg\n")); err == nil {
		t.Fatal("non-numeric count must be rejected")
	}
	if _, err := ReadAllowlist(strings.NewReader("no tabs here\n")); err == nil {
		t.Fatal("tab-less line must be rejected")
	}
	if _, err := ReadAllowlist(strings.NewReader("0\tfoo.go\tmsg\n")); err == nil {
		t.Fatal("zero count must be rejected")
	}
}

func TestDiffEscapesNewShape(t *testing.T) {
	fresh := []EscapeDiag{
		{File: "a.go", Line: 5, Col: 2, Message: "moved to heap: x"},
	}
	newDiags, stale := DiffEscapes(fresh, nil)
	if len(newDiags) != 1 || newDiags[0].Line != 5 {
		t.Fatalf("unknown shape must be new with its position: %v", newDiags)
	}
	if len(stale) != 0 {
		t.Fatalf("stale = %v, want none", stale)
	}
}

func TestDiffEscapesCountIncrease(t *testing.T) {
	golden := []EscapeEntry{{File: "a.go", Message: "make([]int, n) escapes to heap", Count: 1}}
	fresh := []EscapeDiag{
		{File: "a.go", Line: 9, Col: 1, Message: "make([]int, n) escapes to heap"},
		{File: "a.go", Line: 3, Col: 1, Message: "make([]int, n) escapes to heap"},
	}
	newDiags, stale := DiffEscapes(fresh, golden)
	if len(newDiags) != 1 {
		t.Fatalf("one extra instance of a known shape must be new: %v", newDiags)
	}
	// The position-sorted walk charges the golden budget to the earliest
	// instances, so the later one is reported.
	if newDiags[0].Line != 9 {
		t.Fatalf("the instance past the budget is line 9, got %v", newDiags[0])
	}
	if len(stale) != 0 {
		t.Fatalf("stale = %v, want none", stale)
	}
}

func TestDiffEscapesWithinBudgetAndStale(t *testing.T) {
	golden := []EscapeEntry{
		{File: "a.go", Message: "make([]int, n) escapes to heap", Count: 2},
		{File: "b.go", Message: "moved to heap: y", Count: 1},
	}
	fresh := []EscapeDiag{
		{File: "a.go", Line: 3, Col: 1, Message: "make([]int, n) escapes to heap"},
	}
	newDiags, stale := DiffEscapes(fresh, golden)
	if len(newDiags) != 0 {
		t.Fatalf("within-budget run must not fail: %v", newDiags)
	}
	// One unused a.go count and the whole b.go entry are stale.
	if len(stale) != 2 {
		t.Fatalf("stale = %v, want 2 entries", stale)
	}
	for _, e := range stale {
		if e.File == "a.go" && e.Count != 1 {
			t.Fatalf("a.go stale budget = %d, want 1", e.Count)
		}
		if e.File == "b.go" && e.Count != 1 {
			t.Fatalf("b.go stale budget = %d, want 1", e.Count)
		}
	}
}
