package core

import (
	"fmt"

	"stretchsched/internal/cluster"
	"stretchsched/internal/fault"
	"stretchsched/internal/model"
	"stretchsched/internal/sim"
)

// accountingFor maps a registry scheduler to the policy driving each
// cluster node's online accounting (the driver state the balancers read).
// Cheap list policies account as themselves, so placement signals see the
// exact order the node will serve in; LP-backed policies and planners are
// proxied by SWRPT — replaying an LP solve at every arrival on every node
// (and inside every Ideal lookahead) is not a price the accounting path
// can pay, and SWRPT is the paper's best-practice list proxy.
func accountingFor(name string) string {
	switch name {
	case "FCFS", "SPT", "SWPT", "SRPT", "SWRPT", "Bender02", "ST14":
		return name
	default:
		return "SWRPT"
	}
}

// ClusterRunner executes cluster worlds over registry schedulers: one
// Runner (engine + pooled workspace) per node backs the final per-node
// batch runs, and Stats aggregates the per-machine snapshots into one
// cluster-wide view. Like Runner it is single-goroutine; harnesses hold
// one per worker.
type ClusterRunner struct {
	nodes []*Runner

	// Fault-run accumulators, merged into Stats snapshots. faults sums the
	// per-run counters (max for MaxAttempts); hasFaults marks that at least
	// one RunFaulty executed since the last ResetStats.
	faults    cluster.FaultStats
	hasFaults bool
}

// NewClusterRunner returns an empty cluster runner; per-node Runners are
// created lazily as worlds need them and reused across runs.
func NewClusterRunner() *ClusterRunner { return &ClusterRunner{} }

// node returns the Runner backing node ni, growing the pool on demand.
func (c *ClusterRunner) node(ni int) *Runner {
	for len(c.nodes) <= ni {
		c.nodes = append(c.nodes, NewRunner())
	}
	return c.nodes[ni]
}

// Local adapts the named registry scheduler to a cluster.Local: accounting
// through accountingFor's policy, final node schedules through the per-node
// Runner (so planner-backed schedulers run their full pipeline locally).
func (c *ClusterRunner) Local(name string) (cluster.Local, error) {
	h, err := Get(name)
	if err != nil {
		return cluster.Local{}, err
	}
	acct := accountingFor(name)
	return cluster.Local{
		Name: name,
		NewPolicy: func() sim.Policy {
			b, err := New(acct)
			if err != nil {
				panic(err) // unreachable: acct is a registry policy name
			}
			return b.(PolicyBacked).Policy()
		},
		Run: func(ni int, inst *model.Instance) (*model.Schedule, error) {
			return c.node(ni).Run(h, inst)
		},
	}, nil
}

// Run executes one cluster world: the named registry scheduler locally on
// every node of ci, placements by lb seeded with seed. The returned
// schedule is caller-owned.
func (c *ClusterRunner) Run(name string, ci *model.ClusterInstance, lb cluster.LB, seed int64) (*model.ClusterSchedule, error) {
	loc, err := c.Local(name)
	if err != nil {
		return nil, err
	}
	w, err := cluster.New(ci, lb, loc, seed)
	if err != nil {
		return nil, err
	}
	cs, err := w.Run()
	if err != nil {
		return nil, fmt.Errorf("core: cluster %s/%s: %w", name, lb.Name(), err)
	}
	return cs, nil
}

// RunFaulty executes one cluster world under a failure plan: the named
// registry scheduler locally on every node, placements by lb seeded with
// seed, machine down/up events from plan and retry pacing from backoff.
// Fault mode requires a scheduler that accounts as itself (a cheap list
// policy): under failures the accounting drivers ARE the schedule — there
// is no final batch re-run for a planner to own — so a proxied scheduler
// would silently report SWRPT's completions under its own name. The run's
// FaultStats accumulate into the runner for Stats/MergeStats.
func (c *ClusterRunner) RunFaulty(name string, ci *model.ClusterInstance, lb cluster.LB, seed int64, plan *fault.Plan, backoff fault.Backoff) (*model.ClusterSchedule, error) {
	if accountingFor(name) != name {
		return nil, fmt.Errorf("core: cluster fault mode needs a list-policy scheduler, not %s (accounts as %s)", name, accountingFor(name))
	}
	loc, err := c.Local(name)
	if err != nil {
		return nil, err
	}
	w, err := cluster.New(ci, lb, loc, seed)
	if err != nil {
		return nil, err
	}
	if err := w.SetFaults(plan, backoff); err != nil {
		return nil, err
	}
	cs, err := w.Run()
	if err != nil {
		return nil, fmt.Errorf("core: faulty cluster %s/%s: %w", name, lb.Name(), err)
	}
	fs := w.FaultStats()
	c.faults.MachineFailures += fs.MachineFailures
	c.faults.JobFailures += fs.JobFailures
	c.faults.Replacements += fs.Replacements
	c.faults.Deferred += fs.Deferred
	c.faults.LostWork += fs.LostWork
	if fs.MaxAttempts > c.faults.MaxAttempts {
		c.faults.MaxAttempts = fs.MaxAttempts
	}
	c.hasFaults = true
	return cs, nil
}

// Stats aggregates the per-node Runner snapshots into one cluster-wide
// Stats via MergeStats, plus the runner's accumulated fault counters.
func (c *ClusterRunner) Stats() Stats {
	agg := Stats{Solve: map[string]SolveStats{}}
	for _, r := range c.nodes {
		agg = MergeStats(agg, r.Stats())
	}
	agg.Faults, agg.HasFaults = c.faults, c.hasFaults
	return agg
}

// ResetStats zeroes every node Runner's cumulative workspace counters and
// the accumulated fault counters.
func (c *ClusterRunner) ResetStats() {
	for _, r := range c.nodes {
		r.ResetStats()
	}
	c.faults = cluster.FaultStats{}
	c.hasFaults = false
}

// MergeStats combines two Stats snapshots — per-machine views of a cluster
// run — into one aggregate: solver-failure and tier counters sum, the
// incremental session's counters sum and its eta gauges take the
// cluster-wide high-water mark.
func MergeStats(a, b Stats) Stats {
	out := Stats{Solve: map[string]SolveStats{}}
	for name, ss := range a.Solve {
		out.Solve[name] = ss
	}
	for name, ss := range b.Solve {
		prev := out.Solve[name]
		out.Solve[name] = SolveStats{
			StretchErrs: prev.StretchErrs + ss.StretchErrs,
			RefineErrs:  prev.RefineErrs + ss.RefineErrs,
		}
	}
	out.HasTiers = a.HasTiers || b.HasTiers
	out.Tiers = a.Tiers
	for i := range out.Tiers.Ops {
		out.Tiers.Ops[i] += b.Tiers.Ops[i]
		out.Tiers.Promotions[i] += b.Tiers.Promotions[i]
		out.Tiers.Demotions[i] += b.Tiers.Demotions[i]
	}
	out.HasIncremental = a.HasIncremental || b.HasIncremental
	ai, bi := a.Incremental, b.Incremental
	out.Incremental = ai
	out.Incremental.Cold += bi.Cold
	out.Incremental.Warm += bi.Warm
	out.Incremental.Fallback += bi.Fallback
	out.Incremental.ColdIters += bi.ColdIters
	out.Incremental.WarmIters += bi.WarmIters
	out.Incremental.DualSteps += bi.DualSteps
	out.Incremental.WarmPhase1 += bi.WarmPhase1
	out.Incremental.Resolves += bi.Resolves
	out.Incremental.EtaLen = max(ai.EtaLen, bi.EtaLen)
	out.Incremental.EtaNNZ = max(ai.EtaNNZ, bi.EtaNNZ)
	out.Incremental.MaxEtaLen = max(ai.MaxEtaLen, bi.MaxEtaLen)
	out.Incremental.MaxEtaNNZ = max(ai.MaxEtaNNZ, bi.MaxEtaNNZ)
	out.HasFaults = a.HasFaults || b.HasFaults
	out.Faults = a.Faults
	out.Faults.MachineFailures += b.Faults.MachineFailures
	out.Faults.JobFailures += b.Faults.JobFailures
	out.Faults.Replacements += b.Faults.Replacements
	out.Faults.Deferred += b.Faults.Deferred
	out.Faults.LostWork += b.Faults.LostWork
	out.Faults.MaxAttempts = max(a.Faults.MaxAttempts, b.Faults.MaxAttempts)
	return out
}
