package core

import (
	"testing"

	"stretchsched/internal/offline"
	"stretchsched/internal/online"
)

// TestNewOptionConstructor exercises the Option-based constructor: the
// workspace threads through to the built scheduler, list policies expose
// themselves via PolicyBacked, and the unified Stats snapshot sees the
// workspace's session counters after an exact run.
func TestNewOptionConstructor(t *testing.T) {
	if _, err := New("no-such-scheduler"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}

	ws := offline.NewWorkspace()
	sched, err := New("Online-EGDF", WithWorkspace(ws))
	if err != nil {
		t.Fatal(err)
	}
	if sched.Name() != "Online-EGDF" {
		t.Fatalf("name = %s", sched.Name())
	}
	pb, ok := sched.(PolicyBacked)
	if !ok {
		t.Fatal("Online-EGDF scheduler is not PolicyBacked")
	}
	egdf, ok := pb.Policy().(*online.EGDF)
	if !ok {
		t.Fatalf("policy = %T, want *online.EGDF", pb.Policy())
	}
	egdf.Solver.Exact = true

	inst := testInstance(t, 3, 1.0)
	sched2, err := sched.Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched2.Validate(inst, 1e-5); err != nil {
		t.Fatal(err)
	}

	// The exact run went through ws's incremental session; Collect over the
	// same workspace must report it, with the scheduler's solve counters
	// keyed by name.
	st := Collect(ws, map[string]Scheduler{sched.Name(): sched})
	if !st.HasIncremental {
		t.Fatal("exact run left no incremental-session stats on the workspace")
	}
	if st.Incremental.Warm+st.Incremental.Cold == 0 {
		t.Fatalf("session recorded no solves: %+v", st.Incremental)
	}
	if _, ok := st.Solve["Online-EGDF"]; !ok {
		t.Fatalf("Stats.Solve missing the scheduler: %+v", st.Solve)
	}

	// Two schedulers built from the same registry entry are independent.
	other, err := New("Online-EGDF")
	if err != nil {
		t.Fatal(err)
	}
	if other.(PolicyBacked).Policy() == pb.Policy() {
		t.Fatal("New returned a shared policy instance")
	}
}

// TestRunnerStatsUnified: Runner.Stats matches the deprecated accessors it
// replaces, and ResetStats zeroes the workspace-cumulative counters.
func TestRunnerStatsUnified(t *testing.T) {
	inst := testInstance(t, 5, 1.5)
	r := NewRunner()
	if _, err := r.Run(MustGet("Offline-Exact"), inst); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if !st.HasTiers || st.Tiers.Total() == 0 {
		t.Fatalf("no tier stats after exact run: %+v", st)
	}
	// Deprecated wrapper agrees with the unified snapshot.
	if ts := r.ExactTierStats(); ts == nil || ts.Total() != st.Tiers.Total() {
		t.Fatalf("ExactTierStats diverges from Stats: %v vs %v", ts, st.Tiers)
	}
	r.ResetStats()
	if after := r.Stats(); after.Tiers.Total() != 0 {
		t.Fatalf("ResetStats left tier ops: %d", after.Tiers.Total())
	}
}
