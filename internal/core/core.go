// Package core is the public entry point of the library: a registry of all
// eleven schedulers evaluated in the paper (Table 1) plus the refined
// offline variant, each usable through one call, and a convenience
// evaluator returning the stretch metrics of any subset of them on an
// instance.
//
// Schedulers are constructed through New, which applies functional options
// (WithWorkspace) at build time so instances are born fully wired — there
// is no post-hoc SetWorkspace step and no duck-typed capability probing.
// Get returns a lightweight registry handle whose Run constructs a fresh
// unwired instance per call; harnesses that replay many instances hold a
// Runner, which caches one wired instance per scheduler name on top of one
// engine and one workspace.
package core

import (
	"fmt"
	"sort"

	"stretchsched/internal/greedy"
	"stretchsched/internal/model"
	"stretchsched/internal/offline"
	"stretchsched/internal/online"
	"stretchsched/internal/policy"
	"stretchsched/internal/sim"
)

// Scheduler runs a complete scheduling strategy on an instance.
type Scheduler interface {
	Name() string
	Run(inst *model.Instance) (*model.Schedule, error)
}

// EngineBound is implemented by schedulers that can execute on a
// caller-provided simulation engine, reusing its buffers across runs. All
// simulation-backed registry entries implement it; direct constructors
// (MCT) do not and fall back to Run.
type EngineBound interface {
	RunWith(eng *sim.Engine, inst *model.Instance) (*model.Schedule, error)
}

// PlannerBacked is implemented by constructed schedulers that drive a
// sim.Planner (re-invoked by the engine at every job arrival). Planner
// exposes the underlying instance for harnesses that drive it directly.
type PlannerBacked interface {
	Scheduler
	Planner() sim.Planner
}

// PolicyBacked is implemented by constructed schedulers that drive a
// sim.Policy priority list through the greedy spatial rule of §3. Policy
// exposes the underlying instance so external event loops (the serving
// daemon in internal/serve) can drive the exact same policy outside a
// batch simulation.
type PolicyBacked interface {
	Scheduler
	Policy() sim.Policy
}

// solveDiagnostics is implemented by schedulers that record per-event
// solver failures they fell back from instead of aborting (the online
// heuristics' Refine fallback, Online-EGDF's optimal-stretch retry).
type solveDiagnostics interface {
	SolveFailures() (stretchErrs, refineErrs int)
}

// Option configures scheduler construction in New.
type Option func(*buildCfg)

type buildCfg struct {
	ws *offline.Workspace
}

// WithWorkspace attaches a pooled solver workspace at construction time:
// planners and policies that can draw their problem/flow/LP buffers from an
// offline.Workspace are returned already wired to ws. A nil workspace is
// valid and selects the fresh-buffers-per-solve paths, exactly like
// omitting the option.
func WithWorkspace(ws *offline.Workspace) Option {
	return func(c *buildCfg) { c.ws = ws }
}

// New constructs the named scheduler with the given options applied. The
// returned instance is stateful and not safe for concurrent use; its
// planner or policy resets itself through the Init contract on every run,
// so one instance may be reused across many instances (a Runner does this
// caching per worker).
func New(name string, opts ...Option) (Scheduler, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown scheduler %q (known: %v)", name, Names())
	}
	var cfg buildCfg
	for _, o := range opts {
		o(&cfg)
	}
	return e.build(cfg), nil
}

// entry is one registry row: exactly one of the three factories is set,
// and the factory itself performs any workspace wiring on the concrete
// type — registration is the single place that knows how each scheduler
// is assembled, which is what lets Runner.Run stay free of type probing.
type entry struct {
	name    string
	planner func(ws *offline.Workspace) sim.Planner
	policy  func(ws *offline.Workspace) sim.Policy
	direct  func(*model.Instance) (*model.Schedule, error)
}

func (e *entry) build(cfg buildCfg) Scheduler {
	switch {
	case e.planner != nil:
		return &builtPlanner{name: e.name, pl: e.planner(cfg.ws)}
	case e.policy != nil:
		return &builtPolicy{name: e.name, pol: e.policy(cfg.ws)}
	default:
		return builtDirect{name: e.name, run: e.direct}
	}
}

type builtPlanner struct {
	name string
	pl   sim.Planner
}

func (s *builtPlanner) Name() string         { return s.name }
func (s *builtPlanner) Planner() sim.Planner { return s.pl }

func (s *builtPlanner) Run(inst *model.Instance) (*model.Schedule, error) {
	return sim.RunPlanned(inst, s.pl)
}

func (s *builtPlanner) RunWith(eng *sim.Engine, inst *model.Instance) (*model.Schedule, error) {
	return eng.RunPlanned(inst, s.pl)
}

type builtPolicy struct {
	name string
	pol  sim.Policy
}

func (s *builtPolicy) Name() string       { return s.name }
func (s *builtPolicy) Policy() sim.Policy { return s.pol }

func (s *builtPolicy) Run(inst *model.Instance) (*model.Schedule, error) {
	return sim.RunList(inst, s.pol)
}

func (s *builtPolicy) RunWith(eng *sim.Engine, inst *model.Instance) (*model.Schedule, error) {
	return eng.RunList(inst, s.pol)
}

type builtDirect struct {
	name string
	run  func(*model.Instance) (*model.Schedule, error)
}

func (s builtDirect) Name() string { return s.name }

func (s builtDirect) Run(inst *model.Instance) (*model.Schedule, error) { return s.run(inst) }

// regHandle is the stateless value Get returns: Run and RunWith construct
// a fresh unwired instance per call, preserving the historical Get
// semantics (no shared state between calls). Runner.Run recognises it and
// substitutes its own cached wired instance.
type regHandle struct {
	e *entry
}

func (h regHandle) Name() string { return h.e.name }

func (h regHandle) Run(inst *model.Instance) (*model.Schedule, error) {
	return h.e.build(buildCfg{}).Run(inst)
}

func (h regHandle) RunWith(eng *sim.Engine, inst *model.Instance) (*model.Schedule, error) {
	s := h.e.build(buildCfg{})
	if eb, ok := s.(EngineBound); ok {
		return eb.RunWith(eng, inst)
	}
	return s.Run(inst)
}

// Runner executes schedulers on one reusable simulation engine and one
// pooled planner workspace, so harnesses that replay many instances (the
// experiment grid, benchmarks) avoid per-run allocation: registry-backed
// schedulers are constructed once per Runner via New(name,
// WithWorkspace(ws)) and reset through their Init contract on every run. A
// Runner is not safe for concurrent use; hold one per worker goroutine. The
// schedule returned by Run is overwritten by the next Run call on the same
// Runner.
type Runner struct {
	eng   *sim.Engine
	ws    *offline.Workspace
	built map[string]Scheduler
}

// NewRunner returns a Runner with a fresh engine and workspace.
func NewRunner() *Runner {
	return &Runner{
		eng:   sim.NewEngine(),
		ws:    offline.NewWorkspace(),
		built: map[string]Scheduler{},
	}
}

// cached returns the runner's wired instance for a registry name,
// constructing it on first use.
func (r *Runner) cached(name string) (Scheduler, error) {
	if b, ok := r.built[name]; ok {
		return b, nil
	}
	b, err := New(name, WithWorkspace(r.ws))
	if err != nil {
		return nil, err
	}
	r.built[name] = b
	return b, nil
}

// Run executes s on inst, reusing the runner's engine, workspace and cached
// scheduler instance when the scheduler supports them. Any scheduler value
// originating from this package's registry (Get, MustGet, New) is
// substituted by the runner's own cached instance of the same name, so the
// runner's workspace — not whatever the value was constructed with — backs
// the run; custom Scheduler implementations run as themselves.
func (r *Runner) Run(s Scheduler, inst *model.Instance) (*model.Schedule, error) {
	switch s.(type) {
	case regHandle, *builtPlanner, *builtPolicy, builtDirect:
		b, err := r.cached(s.Name())
		if err != nil {
			return nil, err
		}
		switch c := b.(type) {
		case PlannerBacked:
			return r.eng.RunPlanned(inst, c.Planner())
		case PolicyBacked:
			return r.eng.RunList(inst, c.Policy())
		default:
			return b.Run(inst)
		}
	}
	if eb, ok := s.(EngineBound); ok {
		return eb.RunWith(r.eng, inst)
	}
	return s.Run(inst)
}

var registry = map[string]*entry{}

func registerPlanner(name string, mk func(ws *offline.Workspace) sim.Planner) {
	registry[name] = &entry{name: name, planner: mk}
}

func registerPolicy(name string, mk func(ws *offline.Workspace) sim.Policy) {
	registry[name] = &entry{name: name, policy: mk}
}

func registerDirect(name string, run func(*model.Instance) (*model.Schedule, error)) {
	registry[name] = &entry{name: name, direct: run}
}

func init() {
	// Workspace wiring happens here, in the factories, on the concrete
	// types: each registration states how its scheduler is assembled, and
	// SetWorkspace(nil) is the documented no-pooling mode of every planner
	// and policy that takes one.
	registerPlanner("Offline", func(ws *offline.Workspace) sim.Planner {
		pl := offline.NewPlanner()
		pl.SetWorkspace(ws)
		return pl
	})
	registerPlanner("Offline-Refined", func(ws *offline.Workspace) sim.Planner {
		pl := &offline.Planner{Refined: true}
		pl.SetWorkspace(ws)
		return pl
	})
	// Offline-Exact pins the optimum with System (1) on exact rationals —
	// immune to the §5.3 float anomaly, at a large constant-factor cost;
	// intended for small instances and verification runs.
	registerPlanner("Offline-Exact", func(ws *offline.Workspace) sim.Planner {
		pl := &offline.Planner{Solver: offline.Solver{Exact: true}}
		pl.SetWorkspace(ws)
		return pl
	})
	registerPlanner("Online", func(ws *offline.Workspace) sim.Planner {
		h := online.New(online.Plain)
		h.SetWorkspace(ws)
		return h
	})
	registerPlanner("Online-EDF", func(ws *offline.Workspace) sim.Planner {
		h := online.New(online.EDF)
		h.SetWorkspace(ws)
		return h
	})
	registerPlanner("Online-NonOpt", func(ws *offline.Workspace) sim.Planner {
		h := online.NewNonOptimized()
		h.SetWorkspace(ws)
		return h
	})
	registerPolicy("Online-EGDF", func(ws *offline.Workspace) sim.Policy {
		e := online.NewEGDF()
		e.SetWorkspace(ws)
		return e
	})
	registerPolicy("Bender98", func(ws *offline.Workspace) sim.Policy {
		b := online.NewBender98()
		b.SetWorkspace(ws)
		return b
	})
	registerPolicy("Bender02", func(*offline.Workspace) sim.Policy { return policy.NewBender02() })
	registerPolicy("FCFS", func(*offline.Workspace) sim.Policy { return policy.FCFS{} })
	registerPolicy("SPT", func(*offline.Workspace) sim.Policy { return policy.SPT{} })
	registerPolicy("SWPT", func(*offline.Workspace) sim.Policy { return policy.SWPT{} })
	registerPolicy("SRPT", func(*offline.Workspace) sim.Policy { return policy.SRPT{} })
	registerPolicy("SWRPT", func(*offline.Workspace) sim.Policy { return policy.SWRPT{} })
	// ST14 is the Srivastav–Trystram total-stretch heuristic (PAPERS.md),
	// the competing local policy of the cluster experiment family.
	registerPolicy("ST14", func(*offline.Workspace) sim.Policy { return policy.NewST14() })
	registerDirect("MCT", greedy.MCT)
	registerDirect("MCT-Div", greedy.MCTDiv)
}

// Get returns the named scheduler as a lightweight registry handle: a
// stateless value whose Run constructs a fresh unwired instance per call.
// Use New to construct a wired, reusable instance.
func Get(name string) (Scheduler, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown scheduler %q (known: %v)", name, Names())
	}
	return regHandle{e}, nil
}

// MustGet returns the named scheduler and panics if it is unknown. It is
// meant for registry names fixed at compile time.
func MustGet(name string) Scheduler {
	s, err := Get(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns all registered scheduler names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Table1Names returns the eleven heuristics of the paper's Table 1, in the
// paper's row order.
func Table1Names() []string {
	return []string{
		"Offline", "Online", "Online-EDF", "Online-EGDF", "Bender98",
		"SWRPT", "SRPT", "SPT", "Bender02", "MCT-Div", "MCT",
	}
}

// Metrics summarises one scheduler run on one instance.
type Metrics struct {
	Scheduler  string
	MaxStretch float64
	SumStretch float64
	MaxFlow    float64
	SumFlow    float64
	Makespan   float64
}

// Evaluate runs the named schedulers on inst and returns their metrics.
func Evaluate(inst *model.Instance, names []string) ([]Metrics, error) {
	out := make([]Metrics, 0, len(names))
	for _, name := range names {
		s, err := Get(name)
		if err != nil {
			return nil, err
		}
		sched, err := s.Run(inst)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", name, err)
		}
		out = append(out, Metrics{
			Scheduler:  name,
			MaxStretch: sched.MaxStretch(inst),
			SumStretch: sched.SumStretch(inst),
			MaxFlow:    sched.MaxFlow(inst),
			SumFlow:    sched.SumFlow(inst),
			Makespan:   sched.Makespan(inst),
		})
	}
	return out, nil
}

// OptimalMaxStretch returns the offline optimal max-stretch of inst.
func OptimalMaxStretch(inst *model.Instance) (float64, error) {
	return offline.Optimal(inst)
}
