// Package core is the public entry point of the library: a registry of all
// eleven schedulers evaluated in the paper (Table 1) plus the refined
// offline variant, each usable through one call, and a convenience
// evaluator returning the stretch metrics of any subset of them on an
// instance.
package core

import (
	"fmt"
	"sort"

	"stretchsched/internal/greedy"
	"stretchsched/internal/lp"
	"stretchsched/internal/model"
	"stretchsched/internal/offline"
	"stretchsched/internal/online"
	"stretchsched/internal/policy"
	"stretchsched/internal/rat"
	"stretchsched/internal/sim"
)

// Scheduler runs a complete scheduling strategy on an instance.
type Scheduler interface {
	Name() string
	Run(inst *model.Instance) (*model.Schedule, error)
}

// EngineBound is implemented by schedulers that can execute on a
// caller-provided simulation engine, reusing its buffers across runs. All
// simulation-backed registry entries implement it; direct constructors
// (MCT) do not and fall back to Run.
type EngineBound interface {
	RunWith(eng *sim.Engine, inst *model.Instance) (*model.Schedule, error)
}

// workspaceUser is implemented by planners and policies that can draw their
// solver state from a pooled offline.Workspace (the offline planner, the
// online heuristics, Bender98).
type workspaceUser interface {
	SetWorkspace(ws *offline.Workspace)
}

// solveDiagnostics is implemented by schedulers that record per-event
// solver failures they fell back from instead of aborting (the online
// heuristics' Refine fallback, Online-EGDF's optimal-stretch retry).
type solveDiagnostics interface {
	SolveFailures() (stretchErrs, refineErrs int)
}

// Runner executes schedulers on one reusable simulation engine and one
// pooled planner workspace, so harnesses that replay many instances (the
// experiment grid, benchmarks) avoid per-run allocation: registry-backed
// planner and policy instances are constructed once per Runner, attached to
// the workspace, and reset through their Init contract on every run. A
// Runner is not safe for concurrent use; hold one per worker goroutine. The
// schedule returned by Run is overwritten by the next Run call on the same
// Runner.
type Runner struct {
	eng      *sim.Engine
	ws       *offline.Workspace
	planners map[string]sim.Planner
	policies map[string]sim.Policy
}

// NewRunner returns a Runner with a fresh engine and workspace.
func NewRunner() *Runner {
	return &Runner{
		eng:      sim.NewEngine(),
		ws:       offline.NewWorkspace(),
		planners: map[string]sim.Planner{},
		policies: map[string]sim.Policy{},
	}
}

// Run executes s on inst, reusing the runner's engine, workspace and cached
// scheduler instance when the scheduler supports them.
func (r *Runner) Run(s Scheduler, inst *model.Instance) (*model.Schedule, error) {
	switch sc := s.(type) {
	case plannerScheduler:
		pl, ok := r.planners[sc.name]
		if !ok {
			pl = sc.mk()
			if wu, ok := pl.(workspaceUser); ok {
				wu.SetWorkspace(r.ws)
			}
			r.planners[sc.name] = pl
		}
		return r.eng.RunPlanned(inst, pl)
	case policyScheduler:
		pol, ok := r.policies[sc.name]
		if !ok {
			pol = sc.mk()
			if wu, ok := pol.(workspaceUser); ok {
				wu.SetWorkspace(r.ws)
			}
			r.policies[sc.name] = pol
		}
		return r.eng.RunList(inst, pol)
	}
	if eb, ok := s.(EngineBound); ok {
		return eb.RunWith(r.eng, inst)
	}
	return s.Run(inst)
}

// SolveFailures reports the per-event solver-failure counters recorded by
// the named scheduler's cached instance during its most recent run on this
// Runner, and whether the scheduler records them at all (only the LP-based
// online schedulers do). The counters are the diagnostics seam behind
// cmd/experiments' failure summary: fallbacks are part of the algorithms'
// contract, but a grid pass that silently absorbed thousands of them would
// mislead, so they are counted where they happen and surfaced here.
func (r *Runner) SolveFailures(name string) (stretchErrs, refineErrs int, ok bool) {
	var inst any
	if pl, found := r.planners[name]; found {
		inst = pl
	} else if pol, found := r.policies[name]; found {
		inst = pol
	}
	if sd, found := inst.(solveDiagnostics); found {
		stretchErrs, refineErrs = sd.SolveFailures()
		return stretchErrs, refineErrs, true
	}
	return 0, 0, false
}

// ExactTierStats returns the exact rational backend's representation-tier
// counters accumulated on this runner's workspace (small/medium/big ops,
// promotions, demotions — see rat.TierStats), or nil when no exact solve
// has run on it. The counters are cumulative; callers wanting per-run
// numbers (cmd/profile -tiers) call Reset between runs.
func (r *Runner) ExactTierStats() *rat.TierStats {
	return r.ws.TierStats()
}

// IncrementalStats returns the warm/cold/fallback counters of the
// workspace's incremental solve session (the per-event warm-started
// System (1) solves of the online exact path — see offline.Session and
// lp.IncrementalStats), or nil when no session has been created on this
// runner. Cumulative, like ExactTierStats; cmd/profile -online resets
// between runs for per-run numbers.
func (r *Runner) IncrementalStats() *lp.IncrementalStats {
	return r.ws.SessionStats()
}

type policyScheduler struct {
	name string
	mk   func() sim.Policy
}

func (s policyScheduler) Name() string { return s.name }

func (s policyScheduler) Run(inst *model.Instance) (*model.Schedule, error) {
	return sim.RunList(inst, s.mk())
}

func (s policyScheduler) RunWith(eng *sim.Engine, inst *model.Instance) (*model.Schedule, error) {
	return eng.RunList(inst, s.mk())
}

type plannerScheduler struct {
	name string
	mk   func() sim.Planner
}

func (s plannerScheduler) Name() string { return s.name }

func (s plannerScheduler) Run(inst *model.Instance) (*model.Schedule, error) {
	return sim.RunPlanned(inst, s.mk())
}

func (s plannerScheduler) RunWith(eng *sim.Engine, inst *model.Instance) (*model.Schedule, error) {
	return eng.RunPlanned(inst, s.mk())
}

type funcScheduler struct {
	name string
	run  func(*model.Instance) (*model.Schedule, error)
}

func (s funcScheduler) Name() string { return s.name }

func (s funcScheduler) Run(inst *model.Instance) (*model.Schedule, error) { return s.run(inst) }

var registry = map[string]Scheduler{}

func register(s Scheduler) { registry[s.Name()] = s }

func init() {
	register(plannerScheduler{"Offline", func() sim.Planner { return offline.NewPlanner() }})
	register(plannerScheduler{"Offline-Refined", func() sim.Planner { return &offline.Planner{Refined: true} }})
	// Offline-Exact pins the optimum with System (1) on exact rationals —
	// immune to the §5.3 float anomaly, at a large constant-factor cost;
	// intended for small instances and verification runs.
	register(plannerScheduler{"Offline-Exact", func() sim.Planner {
		return &offline.Planner{Solver: offline.Solver{Exact: true}}
	}})
	register(plannerScheduler{"Online", func() sim.Planner { return online.New(online.Plain) }})
	register(plannerScheduler{"Online-EDF", func() sim.Planner { return online.New(online.EDF) }})
	register(plannerScheduler{"Online-NonOpt", func() sim.Planner { return online.NewNonOptimized() }})
	register(policyScheduler{"Online-EGDF", func() sim.Policy { return online.NewEGDF() }})
	register(policyScheduler{"Bender98", func() sim.Policy { return online.NewBender98() }})
	register(policyScheduler{"Bender02", func() sim.Policy { return policy.NewBender02() }})
	register(policyScheduler{"FCFS", func() sim.Policy { return policy.FCFS{} }})
	register(policyScheduler{"SPT", func() sim.Policy { return policy.SPT{} }})
	register(policyScheduler{"SWPT", func() sim.Policy { return policy.SWPT{} }})
	register(policyScheduler{"SRPT", func() sim.Policy { return policy.SRPT{} }})
	register(policyScheduler{"SWRPT", func() sim.Policy { return policy.SWRPT{} }})
	register(funcScheduler{"MCT", greedy.MCT})
	register(funcScheduler{"MCT-Div", greedy.MCTDiv})
}

// Get returns the named scheduler.
func Get(name string) (Scheduler, error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown scheduler %q (known: %v)", name, Names())
	}
	return s, nil
}

// MustGet returns the named scheduler and panics if it is unknown. It is
// meant for registry names fixed at compile time.
func MustGet(name string) Scheduler {
	s, err := Get(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns all registered scheduler names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Table1Names returns the eleven heuristics of the paper's Table 1, in the
// paper's row order.
func Table1Names() []string {
	return []string{
		"Offline", "Online", "Online-EDF", "Online-EGDF", "Bender98",
		"SWRPT", "SRPT", "SPT", "Bender02", "MCT-Div", "MCT",
	}
}

// Metrics summarises one scheduler run on one instance.
type Metrics struct {
	Scheduler  string
	MaxStretch float64
	SumStretch float64
	MaxFlow    float64
	SumFlow    float64
	Makespan   float64
}

// Evaluate runs the named schedulers on inst and returns their metrics.
func Evaluate(inst *model.Instance, names []string) ([]Metrics, error) {
	out := make([]Metrics, 0, len(names))
	for _, name := range names {
		s, err := Get(name)
		if err != nil {
			return nil, err
		}
		sched, err := s.Run(inst)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", name, err)
		}
		out = append(out, Metrics{
			Scheduler:  name,
			MaxStretch: sched.MaxStretch(inst),
			SumStretch: sched.SumStretch(inst),
			MaxFlow:    sched.MaxFlow(inst),
			SumFlow:    sched.SumFlow(inst),
			Makespan:   sched.Makespan(inst),
		})
	}
	return out, nil
}

// OptimalMaxStretch returns the offline optimal max-stretch of inst.
func OptimalMaxStretch(inst *model.Instance) (float64, error) {
	return offline.Optimal(inst)
}
