package core

import (
	"testing"
)

// TestSchedulerDeterminism: every scheduler is a pure function of the
// instance — two runs must agree exactly. This guards against hidden
// global state (the registry hands out fresh policy/planner values) and
// against map-iteration nondeterminism inside the solvers.
func TestSchedulerDeterminism(t *testing.T) {
	inst := testInstance(t, 1234, 1.5)
	for _, name := range Names() {
		s := MustGet(name)
		a, err := s.Run(inst)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := s.Run(inst)
		if err != nil {
			t.Fatalf("%s second run: %v", name, err)
		}
		for j := range a.Completion {
			if a.Completion[j] != b.Completion[j] {
				t.Fatalf("%s: job %d completed at %v then %v",
					name, j, a.Completion[j], b.Completion[j])
			}
		}
	}
}

// TestMCTFarFromOptimal reproduces the paper's headline criticism: the
// production policy (MCT) is far from the best heuristic on max-stretch in
// loaded configurations — "over ten times worse in all simulation
// configurations" at paper scale; at this reduced scale we require a clear
// multiple.
func TestMCTFarFromOptimal(t *testing.T) {
	var ratio float64
	n := 0
	for seed := int64(500); seed < 506; seed++ {
		inst := testInstance(t, seed, 2.0)
		if inst.NumJobs() < 5 {
			continue
		}
		ms, err := Evaluate(inst, []string{"Online", "MCT"})
		if err != nil {
			t.Fatal(err)
		}
		ratio += ms[1].MaxStretch / ms[0].MaxStretch
		n++
	}
	if n == 0 {
		t.Skip("no instances large enough")
	}
	ratio /= float64(n)
	if ratio < 1.5 {
		t.Fatalf("MCT/Online mean max-stretch ratio %v — expected a clear gap", ratio)
	}
}
