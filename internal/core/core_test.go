package core

import (
	"math"
	"testing"

	"stretchsched/internal/model"
	"stretchsched/internal/workload"
)

func TestRegistryComplete(t *testing.T) {
	for _, name := range Table1Names() {
		if _, err := Get(name); err != nil {
			t.Errorf("missing Table 1 scheduler %s: %v", name, err)
		}
	}
	if len(Names()) < 13 {
		t.Fatalf("registry too small: %v", Names())
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustGet("definitely-not-registered")
}

func testInstance(t *testing.T, seed int64, density float64) *model.Instance {
	t.Helper()
	inst, err := workload.Config{
		Sites:        3,
		Databanks:    3,
		Availability: 0.6,
		Density:      density,
		TargetJobs:   15,
		SizeRange:    [2]float64{10, 100},
		Seed:         seed,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestAllSchedulersEndToEnd is the integration test of the whole stack:
// every registered scheduler must produce a valid schedule on a realistic
// GriPPS-like instance, and the offline optimum must not be beaten by more
// than float tolerance.
func TestAllSchedulersEndToEnd(t *testing.T) {
	inst := testInstance(t, 42, 1.5)
	if inst.NumJobs() == 0 {
		t.Fatal("empty instance")
	}
	optimal, err := OptimalMaxStretch(inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		s := MustGet(name)
		sched, err := s.Run(inst)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := sched.Validate(inst, 1e-5); err != nil {
			t.Fatalf("%s: invalid schedule: %v", name, err)
		}
		if ms := sched.MaxStretch(inst); ms < optimal*(1-1e-4) {
			t.Fatalf("%s: max-stretch %v beats offline optimum %v beyond tolerance",
				name, ms, optimal)
		}
	}
}

func TestEvaluateMetrics(t *testing.T) {
	inst := testInstance(t, 7, 1.0)
	ms, err := Evaluate(inst, []string{"SWRPT", "MCT"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Scheduler != "SWRPT" || ms[1].Scheduler != "MCT" {
		t.Fatalf("metrics = %+v", ms)
	}
	for _, m := range ms {
		if m.MaxStretch < 1-1e-9 || math.IsNaN(m.MaxStretch) {
			t.Fatalf("%s: bad max-stretch %v", m.Scheduler, m.MaxStretch)
		}
		if m.SumStretch < float64(inst.NumJobs())-1e-6 {
			t.Fatalf("%s: sum-stretch %v below job count %d", m.Scheduler, m.SumStretch, inst.NumJobs())
		}
		if m.Makespan < m.MaxFlow-1e9 || m.SumFlow <= 0 {
			t.Fatalf("%s: inconsistent flow metrics %+v", m.Scheduler, m)
		}
	}
	if _, err := Evaluate(inst, []string{"bogus"}); err == nil {
		t.Fatal("bogus scheduler accepted")
	}
}

// TestOnlineNearOptimal reproduces the paper's headline experimental claim
// on a small scale: the LP-based online heuristics are near-optimal for
// max-stretch, and MCT is far away.
func TestOnlineNearOptimal(t *testing.T) {
	var onlineRatio, mctRatio float64
	n := 0
	for seed := int64(0); seed < 5; seed++ {
		inst := testInstance(t, 100+seed, 2.0)
		if inst.NumJobs() < 3 {
			continue
		}
		optimal, err := OptimalMaxStretch(inst)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := Evaluate(inst, []string{"Online", "MCT"})
		if err != nil {
			t.Fatal(err)
		}
		onlineRatio += ms[0].MaxStretch / optimal
		mctRatio += ms[1].MaxStretch / optimal
		n++
	}
	if n == 0 {
		t.Fatal("no usable instances")
	}
	onlineRatio /= float64(n)
	mctRatio /= float64(n)
	if onlineRatio > 1.25 {
		t.Fatalf("Online mean degradation %v too high", onlineRatio)
	}
	if mctRatio < onlineRatio {
		t.Fatalf("MCT (%v) should not beat Online (%v) on loaded systems", mctRatio, onlineRatio)
	}
}
