package core

import (
	"stretchsched/internal/cluster"
	"stretchsched/internal/lp"
	"stretchsched/internal/offline"
	"stretchsched/internal/rat"
)

// SolveStats counts the per-event solver failures one scheduler recorded —
// and fell back from — during its most recent run. Fallbacks are part of
// the online algorithms' contract, but a harness that silently absorbed
// thousands of them would mislead, so they are counted where they happen
// and surfaced here.
type SolveStats struct {
	StretchErrs int // step-2 (optimal max-stretch) solve failures
	RefineErrs  int // step-3 (System (2) refinement) fallbacks
}

// Stats is the unified snapshot of every solver diagnostic the scheduling
// stack accumulates: per-scheduler solve-failure counters, the exact
// rational backend's representation-tier counters, and the incremental
// warm-start session's solve mix. It replaces the piecemeal Runner
// accessors (SolveFailures, ExactTierStats, IncrementalStats) with one
// stable struct — the single source behind cmd/profile's reports and the
// serving daemon's /metrics endpoint.
//
// All fields are value copies taken at snapshot time; mutating them does
// not affect the live counters (use Runner.ResetStats for per-run numbers).
type Stats struct {
	// Solve maps scheduler name → its most recent run's solver-failure
	// counters. Only schedulers that record them (the LP-based online
	// ones) appear.
	Solve map[string]SolveStats

	// Tiers holds the exact backend's small/medium/big operation and
	// promotion/demotion counters, cumulative on the workspace. HasTiers
	// reports whether an exact solve has run at all — a zero-valued Tiers
	// with HasTiers set means "exact ran, counters disabled or empty".
	Tiers    rat.TierStats
	HasTiers bool

	// Incremental holds the warm-start session's warm/cold/fallback solve
	// mix, iteration counts and eta-file high-water marks, cumulative on
	// the workspace's session. HasIncremental reports whether a session
	// exists.
	Incremental    lp.IncrementalStats
	HasIncremental bool

	// Faults holds the failure/retry counters accumulated by a
	// ClusterRunner's fault-mode runs (machine failures hit, job executions
	// killed, re-placements, lost work). HasFaults reports whether any
	// fault-mode run contributed.
	Faults    cluster.FaultStats
	HasFaults bool
}

// Collect assembles a Stats snapshot from a workspace and a set of
// constructed schedulers keyed by name. Runner.Stats delegates here; the
// serving daemon feeds /metrics from the same call with its single live
// policy.
func Collect(ws *offline.Workspace, scheds map[string]Scheduler) Stats {
	st := Stats{Solve: map[string]SolveStats{}}
	for name, s := range scheds {
		var inner any = s
		switch b := s.(type) {
		case PlannerBacked:
			inner = b.Planner()
		case PolicyBacked:
			inner = b.Policy()
		}
		if sd, ok := inner.(solveDiagnostics); ok {
			se, re := sd.SolveFailures()
			st.Solve[name] = SolveStats{StretchErrs: se, RefineErrs: re}
		}
	}
	if ws != nil {
		if ts := ws.TierStats(); ts != nil {
			st.Tiers, st.HasTiers = *ts, true
		}
		if is := ws.SessionStats(); is != nil {
			st.Incremental, st.HasIncremental = *is, true
		}
	}
	return st
}

// Stats snapshots the runner's solver diagnostics: the solve-failure
// counters of every scheduler it has cached, and the workspace-cumulative
// tier and incremental-session counters.
func (r *Runner) Stats() Stats { return Collect(r.ws, r.built) }

// ResetStats zeroes the runner's cumulative workspace counters (exact
// tiers, incremental session) so the next Stats snapshot reads per-run
// numbers. Per-scheduler solve counters reset themselves at every run via
// the Init contract and are not touched here.
func (r *Runner) ResetStats() {
	if ts := r.ws.TierStats(); ts != nil {
		ts.Reset()
	}
	if is := r.ws.SessionStats(); is != nil {
		*is = lp.IncrementalStats{}
	}
}

// SolveFailures reports the per-event solver-failure counters recorded by
// the named scheduler's cached instance during its most recent run on this
// Runner, and whether the scheduler records them at all.
//
// Deprecated: use Stats, which snapshots every scheduler's counters (and
// the workspace counters) at once.
func (r *Runner) SolveFailures(name string) (stretchErrs, refineErrs int, ok bool) {
	ss, ok := r.Stats().Solve[name]
	return ss.StretchErrs, ss.RefineErrs, ok
}

// ExactTierStats returns the exact rational backend's live representation-
// tier counters on this runner's workspace, or nil when no exact solve has
// run on it.
//
// Deprecated: use Stats for reading and ResetStats for zeroing; this
// accessor remains for callers that need the live counter object.
func (r *Runner) ExactTierStats() *rat.TierStats {
	return r.ws.TierStats()
}

// IncrementalStats returns the live warm/cold/fallback counters of the
// workspace's incremental solve session, or nil when no session has been
// created on this runner.
//
// Deprecated: use Stats for reading and ResetStats for zeroing; this
// accessor remains for callers that need the live counter object.
func (r *Runner) IncrementalStats() *lp.IncrementalStats {
	return r.ws.SessionStats()
}
