package core_test

import (
	"fmt"
	"log"

	"stretchsched/internal/core"
	"stretchsched/internal/model"
)

// Example schedules two divisible requests on a two-site platform with the
// paper's online heuristic and prints the achieved objectives.
func Example() {
	platform, err := model.NewPlatform([]model.Machine{
		{Name: "siteA", Speed: 10, Databanks: []model.DatabankID{0}},
		{Name: "siteB", Speed: 10, Databanks: []model.DatabankID{0}},
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := model.NewInstance(platform, []model.Job{
		{Name: "long", Release: 0, Size: 200, Databank: 0},
		{Name: "short", Release: 1, Size: 20, Databank: 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	optimal, err := core.OptimalMaxStretch(inst)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := core.MustGet("Online").Run(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal max-stretch: %.3f\n", optimal)
	fmt.Printf("online  max-stretch: %.3f\n", sched.MaxStretch(inst))
	// Output:
	// optimal max-stretch: 1.100
	// online  max-stretch: 1.100
}
