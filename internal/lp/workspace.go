package lp

import "stretchsched/internal/rat"

// Workspace owns the mutable solver state of a simplex solve — the tableau
// (rows, right-hand sides, basis), the phase objectives, the reduced-cost
// vector and the solution buffer — and is reset between solves, so a caller
// that solves many programs of similar shape (the exact System (1)
// refinement of the offline solver, the lpcli REPL) performs no steady-state
// tableau allocation. Arithmetic-side allocation is the backend's business:
// the float64 backend allocates nothing, and the exact rational backend
// stores rat.Rat values inline in the pooled tableau rows, so it too
// allocates nothing while entries stay in rat's fixed-width forms (the
// int64 small form and the 128-bit medium tier) — only values that
// overflow past 128 bits into math/big cost heap (see rat.Rat and RatOps).
//
// A Workspace must not be used from multiple goroutines, and the Solution
// returned by Problem.SolveWith (including its X vector) is overwritten by
// the next SolveWith on the same workspace.
type Workspace[T any] struct {
	tab    tableau[T]
	rev    revised[T] // sparse revised-simplex state (SolveRevisedWith)
	sol    Solution[T]
	phase1 []T
	phase2 []T
	x      []T

	// Tiers is the conventional home of the exact backend's per-operation
	// representation-tier counters: a caller that builds its Problem with
	// RatOps{Tiers: ws.Tiers()} has every solve on this workspace counted
	// (the offline exact refinement does; cmd/profile -tiers prints the
	// result). Unused by other backends.
	tiers rat.TierStats
}

// Tiers returns the workspace's tier-counter slot. The pointer is stable
// for the workspace's lifetime, so it can be handed to RatOps once.
func (ws *Workspace[T]) Tiers() *rat.TierStats { return &ws.tiers }

// NewWorkspace returns an empty workspace; buffers are sized lazily on first
// use and grown only when a program exceeds every previous one.
func NewWorkspace[T any]() *Workspace[T] { return &Workspace[T]{} }

// Reset clears the problem back to nvars nonnegative variables with an
// all-zero minimisation objective, retaining the constraint and coefficient
// buffers of previous uses so that rebuilding a similarly-shaped program
// allocates nothing.
func (p *Problem[T]) Reset(nvars int) {
	if nvars < 0 {
		panic("lp: negative variable count")
	}
	p.nvars = nvars
	p.obj = growSlice(p.obj, nvars)
	for i := range p.obj {
		p.obj[i] = p.ops.Zero()
	}
	p.maximize = false
	p.cons = p.cons[:0]
}

// appendCon extends p.cons by one slot, resurrecting a previously-used
// constraint (and its sparse row buffers) when the backing array allows.
func (p *Problem[T]) appendCon() *constraint[T] {
	if len(p.cons) < cap(p.cons) {
		p.cons = p.cons[:len(p.cons)+1]
	} else {
		p.cons = append(p.cons, constraint[T]{})
	}
	c := &p.cons[len(p.cons)-1]
	c.vars = c.vars[:0]
	c.coefs = c.coefs[:0]
	return c
}

// growSlice returns s resized to length n, reusing its backing array when
// large enough. Contents are unspecified; callers refill what they read.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// growIntSlice is growSlice for []int (kept monomorphic for clarity at call
// sites that mix element types).
func growIntSlice(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
