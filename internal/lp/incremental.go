package lp

// incremental.go implements the persistent warm-started solve session of
// the online path. A one-shot SolveRevisedWith builds the standard-form
// matrix, runs Phase I from the all-artificial basis and discards the
// factorisation when it returns; the online scheduler then does the whole
// dance again at the next event even though consecutive System (1)
// programs differ by one job's columns and bounds. Incremental[T] keeps
// the revised-simplex state — CSR matrix, basis, eta file — alive between
// solves and re-enters the simplex from the previous optimal basis:
//
//   - Solve rebuilds the matrix for the new program but maps the retained
//     basis onto it by caller-provided stable column/row identities, then
//     repairs feasibility instead of running cold Phase I: primal-feasible
//     bases go straight to Phase II, bases with negative basic values take
//     dual-simplex repair steps (valid because the previous solve ended
//     dual feasible and costs are re-derived per program), and bases whose
//     surviving artificials carry value run a warm Phase I from the mapped
//     basis rather than from scratch.
//   - AddColumn / DropColumn / SetRHS mutate the retained matrix in place
//     (job arrival, completion, remaining-work update) and ReSolve repairs
//     from the current basis the same way.
//
// Warm starting is an optimisation, never a semantic: every repair path
// that cannot certify the usual invariants returns ErrWarmStartFailed and
// the caller falls back to a cold solve of the same program, so warm and
// cold runs agree bit-for-bit on status and objective (the optimal *value*
// of an LP is unique under exact arithmetic; the vertex may differ). The
// fallbacks are counted in IncrementalStats, never silent.

import (
	"errors"
	"fmt"
)

// ErrWarmStartFailed reports that a warm-started solve could not repair
// primal or dual feasibility from the retained basis (singular mapped
// factorisation, dual-infeasible start, or a repair loop hitting its
// iteration cap). It is a fallback signal, not a result: the session
// resolves the same program cold and counts the event in Stats.
var ErrWarmStartFailed = errors.New("lp: warm start failed")

// IncrementalStats counts the outcomes of an incremental session's solves.
type IncrementalStats struct {
	Cold     int // cold two-phase solves (first solve, forced colds, fallback re-solves)
	Warm     int // warm-started solves that ran to a definitive status
	Fallback int // warm attempts abandoned with ErrWarmStartFailed

	ColdIters int // simplex iterations spent in cold solves
	WarmIters int // simplex iterations spent in warm solves (incl. warm Phase I)
	DualSteps int // dual-simplex repair pivots (not counted in WarmIters)

	WarmPhase1 int // warm solves that needed a warm Phase I (artificials carrying value)
	Resolves   int // delta-path ReSolve calls

	EtaLen, EtaNNZ       int // eta file length / nonzeros after the last solve
	MaxEtaLen, MaxEtaNNZ int // high-water marks across the session
}

// basisKey is the stable identity of one column across re-builds:
// structural columns by the caller's stable ID, slack and artificial
// columns by the stable ID of their row.
type basisKey struct {
	kind byte // 0 structural, 1 slack, 2 artificial
	id   int64
}

// Incremental is a persistent warm-started revised-simplex session. It owns
// a private Workspace whose solver state survives between solves; the
// Solution returned by any solve (including X) is owned by the session and
// overwritten by the next solve on it. Not safe for concurrent use.
type Incremental[T any] struct {
	ws    *Workspace[T]
	stats IncrementalStats

	haveBasis bool       // a retained optimal basis exists
	keys      []basisKey // retained basis, one stable key per row
	colKey    []basisKey // current internal column -> stable key (len n)
	rowID     []int64    // current row -> stable ID
	look      map[basisKey]int
	cand      []int // mapped candidate basis columns (scratch)

	maximize bool
	nvars0   int   // structural variable count of the bound problem
	added    []int // internal indices of columns added since the last bind
	addedObj []T   // their sign-adjusted costs (setPhase2Costs cannot know them)

	costSave []T // phase-2 cost snapshot around a warm Phase I

	failNext int // test seam: force the next n warm attempts to fail
}

// NewIncremental returns an empty session; all solver state is allocated
// lazily on the first solve and reused afterwards.
func NewIncremental[T any]() *Incremental[T] {
	return &Incremental[T]{ws: NewWorkspace[T]()}
}

// Stats returns the session's outcome counters. The pointer is stable for
// the session's lifetime; callers wanting per-run numbers reset it.
func (inc *Incremental[T]) Stats() *IncrementalStats { return &inc.stats }

// Workspace returns the session's private solver workspace — the home of
// the exact backend's tier counters (Workspace.Tiers), which callers wire
// into their Problem's ops.
func (inc *Incremental[T]) Workspace() *Workspace[T] { return inc.ws }

// ForceWarmFailure makes the next n warm attempts return ErrWarmStartFailed
// before touching the retained basis — a test seam proving the cold
// fallback path is exercised and counted (see TestIncrementalForcedFallback
// and the offline session's counterpart).
func (inc *Incremental[T]) ForceWarmFailure(n int) { inc.failNext = n }

// Solve solves p, warm-starting from the retained basis when one exists.
// colIDs (len p nvars) and rowIDs (len constraints) are the caller's stable
// identities mapping this program's columns and rows to previous ones; nil
// means positional identity, which is only stable across programs of
// identical layout. On ErrWarmStartFailed the session falls back to a cold
// solve of the same program and counts the fallback. Statuses and typed
// errors are those of SolveRevisedWith.
func (inc *Incremental[T]) Solve(p *Problem[T], colIDs, rowIDs []int64) (*Solution[T], error) {
	if err := inc.checkIDs(p, colIDs, rowIDs); err != nil {
		return nil, err
	}
	if !inc.haveBasis {
		return inc.Cold(p, colIDs, rowIDs)
	}
	sol, err := inc.warm(p, colIDs, rowIDs)
	if errors.Is(err, ErrWarmStartFailed) {
		inc.stats.Fallback++
		return inc.Cold(p, colIDs, rowIDs)
	}
	inc.stats.Warm++
	inc.stats.WarmIters += inc.ws.rev.iters
	return sol, err
}

// Cold solves p from scratch (all-artificial Phase I), retaining the final
// basis and factorisation for the next warm start.
func (inc *Incremental[T]) Cold(p *Problem[T], colIDs, rowIDs []int64) (*Solution[T], error) {
	if err := inc.checkIDs(p, colIDs, rowIDs); err != nil {
		return nil, err
	}
	inc.stats.Cold++
	rv := &inc.ws.rev
	rv.init(p, inc.ws)
	sol := rv.solve()
	inc.stats.ColdIters += rv.iters
	inc.bind(p, colIDs, rowIDs)
	inc.finish(sol.Status)
	if sol.Status != Optimal {
		return sol, sol.Status.Err()
	}
	return sol, nil
}

func (inc *Incremental[T]) checkIDs(p *Problem[T], colIDs, rowIDs []int64) error {
	if colIDs != nil && len(colIDs) != p.nvars {
		return fmt.Errorf("lp: %d column IDs for %d variables", len(colIDs), p.nvars)
	}
	if rowIDs != nil && len(rowIDs) != len(p.cons) {
		return fmt.Errorf("lp: %d row IDs for %d constraints", len(rowIDs), len(p.cons))
	}
	return nil
}

// warm attempts a warm-started solve of p from the retained basis.
func (inc *Incremental[T]) warm(p *Problem[T], colIDs, rowIDs []int64) (*Solution[T], error) {
	if inc.failNext > 0 {
		inc.failNext--
		return nil, ErrWarmStartFailed
	}
	rv := &inc.ws.rev
	rv.init(p, inc.ws) // rebuilds the matrix; inc.keys still holds the old basis
	inc.bind(p, colIDs, rowIDs)

	// Map the retained basis onto the new program by stable identity.
	// Columns of completed jobs simply vanish from the lookup; new rows are
	// completed with their artificials by warmFactorize. Mapping quality
	// only affects repair length, never correctness: any basis is a legal
	// simplex starting point.
	if inc.look == nil {
		inc.look = map[basisKey]int{} //stretch:alloc-ok — lazy init, reused afterwards
	} else {
		clear(inc.look)
	}
	for j, k := range inc.colKey {
		inc.look[k] = j
	}
	for r := 0; r < rv.m; r++ {
		inc.look[basisKey{2, inc.rowID[r]}] = rv.n + r
	}
	inc.cand = inc.cand[:0]
	for _, k := range inc.keys {
		if j, ok := inc.look[k]; ok {
			inc.cand = append(inc.cand, j)
		}
	}
	if !rv.warmFactorize(inc.cand) {
		inc.haveBasis = false
		return nil, ErrWarmStartFailed
	}
	rv.setPhase2Costs()
	return inc.resume()
}

// resume repairs feasibility from the current basis and re-optimises,
// assuming a fresh factorisation and phase-2 costs in place. It is the
// shared tail of warm solves and delta-path ReSolves.
func (inc *Incremental[T]) resume() (*Solution[T], error) {
	rv := &inc.ws.rev
	ops := rv.ops
	rv.clampXB = false
	rv.recomputeXB()

	neg, artBad := rv.classifyXB()
	if neg && rv.dualFeasible() {
		st, steps := rv.dualRepair()
		inc.stats.DualSteps += steps
		switch st {
		case Optimal:
			// Primal feasibility restored; dual feasibility held throughout.
			neg = false
			_, artBad = rv.classifyXB()
		case Infeasible:
			// A certified infeasibility ray: the verdict is intrinsic to the
			// program (artificial columns, which only enlarge the feasible
			// region, are excluded from entering), so it matches what a cold
			// solve would report.
			rv.clampXB = true
			inc.finish(Infeasible)
			return rv.solution(Solution[T]{Status: Infeasible, Iterations: rv.iters}), ErrInfeasible
		default:
			// Mid-repair stall (iteration limit, singular refactorisation):
			// the basis is still legal, so feasibility restoration below
			// gets a chance before we give up.
		}
	}
	if neg {
		// Not dual feasible either (the typical post-arrival state: new rows
		// covered by artificials while a bound shift pushed a retained basic
		// column negative). Restore primal feasibility structurally, then
		// let warm Phase I drive out whatever artificials remain.
		if !inc.restoreFeasible() {
			rv.clampXB = true
			inc.haveBasis = false
			return nil, ErrWarmStartFailed
		}
		_, artBad = rv.classifyXB()
	}
	rv.clampXB = true

	if artBad {
		// Surviving artificials carry value (a new row the mapped basis
		// does not cover, or a bound change on a dependent row): warm
		// Phase I from the current primal-feasible basis.
		inc.stats.WarmPhase1++
		inc.costSave = growSlice(inc.costSave, len(rv.cost))
		copy(inc.costSave, rv.cost)
		for j := 0; j < rv.n; j++ {
			rv.cost[j] = ops.Zero()
		}
		for j := rv.n; j < rv.n+rv.m; j++ {
			rv.cost[j] = ops.One()
		}
		rv.cursor, rv.bland, rv.streak = 0, false, 0
		st := rv.optimize()
		if st != Optimal || rv.failed {
			inc.haveBasis = false
			return nil, ErrWarmStartFailed
		}
		if ops.Sign(rv.objective()) > 0 {
			copy(rv.cost, inc.costSave)
			inc.finish(Infeasible)
			return rv.solution(Solution[T]{Status: Infeasible, Iterations: rv.iters}), ErrInfeasible
		}
		rv.driveOutArtificials()
		copy(rv.cost, inc.costSave)
	}

	rv.cursor, rv.bland, rv.streak = 0, false, 0
	st := rv.optimize()
	if st == IterLimit || rv.failed {
		// Path-dependent outcome a cold solve might not share; fall back.
		inc.haveBasis = false
		return nil, ErrWarmStartFailed
	}
	if st == Unbounded {
		inc.finish(Unbounded)
		return rv.solution(Solution[T]{Status: Unbounded, Iterations: rv.iters}), ErrUnbounded
	}
	sol := inc.extract()
	inc.finish(Optimal)
	return sol, nil
}

// restoreFeasible repairs primal infeasibility of a mapped basis that is
// not dual feasible either: it evicts retained (non-artificial) basic
// columns sitting in negative rows and refactorises, repeating until no
// basic value is negative. Each round strictly shrinks the retained set, so
// the loop converges — in the worst case to the all-artificial basis, which
// is feasible whenever b ≥ 0 (always true straight after init; the delta
// path guards negative b separately). Returns false only when even the
// all-artificial basis is infeasible or a refactorisation goes singular.
//
//stretch:noalloc
func (inc *Incremental[T]) restoreFeasible() bool {
	rv := &inc.ws.rev
	ops := rv.ops
	for {
		evict := false
		inc.cand = inc.cand[:0]
		for r := 0; r < rv.m; r++ {
			v := rv.basis[r]
			if v >= rv.n {
				continue
			}
			if ops.Sign(rv.xB[r]) < 0 {
				evict = true
				continue
			}
			inc.cand = append(inc.cand, v) //stretch:alloc-ok — candidate scratch growth
		}
		if !evict {
			// Every negative row is already artificial-held; no structural
			// column to blame. Drop straight to the all-artificial basis.
			if len(inc.cand) == 0 {
				return false
			}
			inc.cand = inc.cand[:0]
		}
		if !rv.warmFactorize(inc.cand) {
			return false
		}
		rv.recomputeXB()
		if neg, _ := rv.classifyXB(); !neg {
			return true
		}
	}
}

// bind records the stable identities and layout of the freshly-built
// program: column keys for structural and slack columns, row IDs, and the
// delta-op bookkeeping reset.
func (inc *Incremental[T]) bind(p *Problem[T], colIDs, rowIDs []int64) {
	rv := &inc.ws.rev
	inc.maximize = p.maximize
	inc.nvars0 = p.nvars
	inc.added = inc.added[:0]
	inc.addedObj = inc.addedObj[:0]
	inc.colKey = growSlice(inc.colKey, rv.n)
	for j := 0; j < p.nvars; j++ {
		id := int64(j)
		if colIDs != nil {
			id = colIDs[j]
		}
		inc.colKey[j] = basisKey{0, id}
	}
	inc.rowID = growSlice(inc.rowID, rv.m)
	slack := p.nvars
	for r := range p.cons {
		id := int64(r)
		if rowIDs != nil {
			id = rowIDs[r]
		}
		inc.rowID[r] = id
		if p.cons[r].rel != EQ {
			inc.colKey[slack] = basisKey{1, id}
			slack++
		}
	}
}

// finish snapshots the basis by stable identity after a definitive solve.
// Only optimal bases are retained: they are primal and dual feasible, the
// invariants every warm branch starts from.
func (inc *Incremental[T]) finish(st Status) {
	rv := &inc.ws.rev
	inc.stats.EtaLen, inc.stats.EtaNNZ = rv.eta.len(), len(rv.eta.row)
	if inc.stats.EtaLen > inc.stats.MaxEtaLen {
		inc.stats.MaxEtaLen = inc.stats.EtaLen
	}
	if inc.stats.EtaNNZ > inc.stats.MaxEtaNNZ {
		inc.stats.MaxEtaNNZ = inc.stats.EtaNNZ
	}
	if st != Optimal {
		inc.haveBasis = false
		return
	}
	inc.keys = growSlice(inc.keys, rv.m)
	for r, v := range rv.basis {
		if v < rv.n {
			inc.keys[r] = inc.colKey[v]
		} else {
			inc.keys[r] = basisKey{2, inc.rowID[v-rv.n]}
		}
	}
	inc.haveBasis = true
}

// extract assembles the optimal solution, mapping basic values back to the
// session's external variable space: the bound problem's variables first,
// then columns added since the last bind, in AddColumn order.
func (inc *Incremental[T]) extract() *Solution[T] {
	rv := &inc.ws.rev
	ops := rv.ops
	val := rv.objective()
	if inc.maximize {
		val = ops.Neg(val)
	}
	nx := inc.nvars0 + len(inc.added)
	inc.ws.x = growSlice(inc.ws.x, nx)
	x := inc.ws.x
	for j := range x {
		x[j] = ops.Zero()
	}
	for r, v := range rv.basis {
		switch {
		case v < inc.nvars0:
			x[v] = rv.xB[r]
		case v >= rv.n:
			// artificial, parked at zero
		default:
			for a, aj := range inc.added {
				if aj == v {
					x[inc.nvars0+a] = rv.xB[r]
					break
				}
			}
		}
	}
	return rv.solution(Solution[T]{Status: Optimal, X: x, Objective: val, Iterations: rv.iters})
}

// intCol maps an external column index (bound variables, then added
// columns) to the internal column index.
func (inc *Incremental[T]) intCol(ext int) (int, bool) {
	if ext >= 0 && ext < inc.nvars0 {
		return ext, true
	}
	if a := ext - inc.nvars0; a >= 0 && a < len(inc.added) {
		return inc.added[a], true
	}
	return 0, false
}

// AddColumn appends a structural column with the given stable identity,
// objective coefficient and sparse row entries (original row orientation;
// the build-time sign flips are applied here) to the retained program. The
// column starts nonbasic at zero, so the current basis stays valid; the
// next ReSolve prices it in. Returns the column's external index.
//
//stretch:noalloc
func (inc *Incremental[T]) AddColumn(id int64, obj T, rows []int, vals []T) (int, error) {
	rv := &inc.ws.rev
	if rv.prob == nil {
		return 0, fmt.Errorf("lp: AddColumn before the first solve") //stretch:alloc-ok — error exit
	}
	if len(rows) != len(vals) {
		return 0, fmt.Errorf("lp: AddColumn: %d rows, %d values", len(rows), len(vals)) //stretch:alloc-ok — error exit
	}
	for _, r := range rows {
		if r < 0 || r >= rv.m {
			return 0, fmt.Errorf("lp: AddColumn: row %d out of range [0,%d)", r, rv.m) //stretch:alloc-ok — error exit
		}
	}
	ops := rv.ops
	j := rv.n
	// Artificial columns shift up by one; fix every index-carrying slot.
	for r := range rv.basis {
		if rv.basis[r] >= j {
			rv.basis[r]++
		}
	}
	rv.pos = append(rv.pos, 0) //stretch:alloc-ok — one-time growth, capacity retained
	copy(rv.pos[j+1:], rv.pos[j:])
	rv.pos[j] = -1
	c := obj
	if inc.maximize {
		c = ops.Neg(c)
	}
	rv.cost = append(rv.cost, ops.Zero()) //stretch:alloc-ok — one-time growth, capacity retained
	copy(rv.cost[j+1:], rv.cost[j:])
	rv.cost[j] = c
	for i, r := range rows {
		v := vals[i]
		if rv.flip[r] {
			v = ops.Neg(v)
		}
		rv.colRow = append(rv.colRow, r) //stretch:alloc-ok — one-time growth, capacity retained
		rv.colVal = append(rv.colVal, v) //stretch:alloc-ok — one-time growth, capacity retained
	}
	rv.colStart = append(rv.colStart, len(rv.colRow)) //stretch:alloc-ok — one-time growth, capacity retained
	rv.n++
	rv.growDead()
	inc.colKey = append(inc.colKey, basisKey{0, id}) //stretch:alloc-ok — one-time growth, capacity retained
	inc.added = append(inc.added, j)                 //stretch:alloc-ok — one-time growth, capacity retained
	inc.addedObj = append(inc.addedObj, c)           //stretch:alloc-ok — one-time growth, capacity retained
	return inc.nvars0 + len(inc.added) - 1, nil
}

// growDead extends the dead bitmap to the current column count, preserving
// existing marks.
//
//stretch:noalloc
func (rv *revised[T]) growDead() {
	for len(rv.dead) < rv.n {
		rv.dead = append(rv.dead, false) //stretch:alloc-ok — one-time growth, capacity retained
	}
}

// DropColumn removes the column (external index) from play: pivoted out of
// the basis if basic at zero, then excluded from every pricing and repair
// scan. Dropping a column that is basic at a nonzero value would change the
// current solution and is refused with ErrWarmStartFailed (callers force
// the value to zero first — the offline session zeroes the job's completion
// row — or fall back to a rebuild).
//
//stretch:noalloc
func (inc *Incremental[T]) DropColumn(ext int) error {
	rv := &inc.ws.rev
	j, ok := inc.intCol(ext)
	if !ok {
		return fmt.Errorf("lp: DropColumn: no column %d", ext) //stretch:alloc-ok — error exit
	}
	if rv.isDead(j) {
		return nil
	}
	if r := rv.pos[j]; r >= 0 {
		if rv.ops.Sign(rv.xB[r]) != 0 {
			return fmt.Errorf("lp: DropColumn: column %d basic at nonzero value: %w", ext, ErrWarmStartFailed) //stretch:alloc-ok — error exit
		}
		if !rv.pivotOut(r) {
			return fmt.Errorf("lp: DropColumn: column %d cannot leave the basis: %w", ext, ErrWarmStartFailed) //stretch:alloc-ok — error exit
		}
	}
	rv.growDead()
	rv.dead[j] = true
	return nil
}

// SetRHS updates one constraint's right-hand side in the retained program
// (original orientation; the build-time sign flip is applied here). The
// basis keeps factoring; the next ReSolve repairs primal feasibility with
// dual-simplex steps.
//
//stretch:noalloc
func (inc *Incremental[T]) SetRHS(row int, rhs T) error {
	rv := &inc.ws.rev
	if rv.prob == nil || row < 0 || row >= rv.m {
		return fmt.Errorf("lp: SetRHS: row %d out of range", row) //stretch:alloc-ok — error exit
	}
	if rv.flip[row] {
		rhs = rv.ops.Neg(rhs)
	}
	rv.b[row] = rhs
	return nil
}

// ReSolve re-optimises the retained program after delta operations,
// repairing feasibility from the current basis (dual-simplex steps for
// bound changes, pricing for added columns, warm Phase I for value-carrying
// artificials). When repair fails it falls back — counted — to a cold
// two-phase restart on the same retained matrix.
func (inc *Incremental[T]) ReSolve() (*Solution[T], error) {
	rv := &inc.ws.rev
	if rv.prob == nil {
		return nil, fmt.Errorf("lp: ReSolve before the first solve")
	}
	if rv.failed {
		return nil, fmt.Errorf("lp: ReSolve on a failed factorisation: %w", ErrWarmStartFailed)
	}
	inc.stats.Resolves++
	if inc.failNext > 0 {
		inc.failNext--
		inc.stats.Fallback++
		return inc.deltaCold()
	}
	it0 := rv.iters
	// Refactorise so repair starts from a clean inverse of the current
	// basis (delta ops leave the eta file as-is).
	rv.clampXB = false
	rv.refactorize()
	if rv.failed {
		rv.clampXB = true
		inc.stats.Fallback++
		rv.failed = false
		return inc.deltaCold()
	}
	sol, err := inc.resume()
	if errors.Is(err, ErrWarmStartFailed) {
		inc.stats.Fallback++
		return inc.deltaCold()
	}
	inc.stats.Warm++
	inc.stats.WarmIters += rv.iters - it0
	return sol, err
}

// deltaCold is the cold fallback of the delta path: the retained matrix
// (which the bound Problem no longer describes) is re-solved from the
// all-artificial basis. Rows whose right-hand side went negative since the
// build are sign-flipped first so the artificial start is primal feasible;
// the warm-Phase-I branch of resume then performs exactly the cold
// two-phase solve.
func (inc *Incremental[T]) deltaCold() (*Solution[T], error) {
	rv := &inc.ws.rev
	ops := rv.ops
	inc.stats.Cold++
	it0 := rv.iters
	for r := 0; r < rv.m; r++ {
		if ops.Sign(rv.b[r]) < 0 {
			rv.flipRow(r)
		}
	}
	inc.cand = inc.cand[:0]
	if !rv.warmFactorize(inc.cand) {
		// Unreachable: the all-artificial completion is the identity.
		return rv.solution(Solution[T]{Status: IterLimit, Iterations: rv.iters}), ErrIterLimit
	}
	rv.setPhase2Costs()
	inc.restoreAddedCosts()
	sol, err := inc.resume()
	inc.stats.ColdIters += rv.iters - it0
	if errors.Is(err, ErrWarmStartFailed) {
		return rv.solution(Solution[T]{Status: IterLimit, Iterations: rv.iters}), ErrIterLimit
	}
	return sol, err
}

// flipRow negates row r in place — right-hand side and every matrix entry —
// flipping the standard-form orientation recorded at build time.
//
//stretch:noalloc
func (rv *revised[T]) flipRow(r int) {
	ops := rv.ops
	rv.b[r] = ops.Neg(rv.b[r])
	rv.flip[r] = !rv.flip[r]
	for j := 0; j < rv.n; j++ {
		for idx := rv.colStart[j]; idx < rv.colStart[j+1]; idx++ {
			if rv.colRow[idx] == r {
				rv.colVal[idx] = ops.Neg(rv.colVal[idx])
			}
		}
	}
}

// classifyXB scans the basic values: neg reports any negative entry, artBad
// any basic artificial carrying a nonzero value.
//
//stretch:noalloc
func (rv *revised[T]) classifyXB() (neg, artBad bool) {
	ops := rv.ops
	for r := 0; r < rv.m; r++ {
		s := ops.Sign(rv.xB[r])
		if s < 0 {
			neg = true
		}
		if s != 0 && rv.basis[r] >= rv.n {
			artBad = true
		}
	}
	return neg, artBad
}

// dualFeasible reports whether every nonbasic structural and slack column
// has a nonnegative reduced cost under the current (phase-2) costs — the
// precondition of dual-simplex repair.
//
//stretch:noalloc
func (rv *revised[T]) dualFeasible() bool {
	ops := rv.ops
	for i := 0; i < rv.m; i++ {
		rv.y[i] = rv.cost[rv.basis[i]]
	}
	rv.btran(rv.y)
	for j := 0; j < rv.n; j++ {
		if rv.pos[j] >= 0 || rv.isDead(j) {
			continue
		}
		if ops.Sign(rv.reducedCost(j, rv.y)) < 0 {
			return false
		}
	}
	return true
}

// dualRepair restores primal feasibility by dual-simplex pivots: the most
// negative basic value leaves, and the entering column minimises the dual
// ratio d_j / (-α_rj) over nonbasic columns with α_rj < 0, which keeps
// every reduced cost nonnegative. Artificial columns never enter (they are
// not part of the program), so a row with no eligible entering column is a
// certified infeasibility: some constraint combination cannot be met with
// nonnegative variables. Returns Optimal when all basic values are
// nonnegative again, Infeasible on a certificate, IterLimit when the cap or
// a numeric disagreement stops the repair (callers fall back cold).
// Requires clampXB off.
//
//stretch:noalloc
func (rv *revised[T]) dualRepair() (Status, int) {
	ops := rv.ops
	limit := maxIterFactor * (rv.m + rv.n + 1)
	steps := 0
	for {
		if steps > limit {
			return IterLimit, steps
		}
		if rv.shouldRefactor() {
			rv.refactorize()
			if rv.failed {
				return IterLimit, steps
			}
		}
		leave := -1
		var worst T
		for r := 0; r < rv.m; r++ {
			if ops.Sign(rv.xB[r]) >= 0 {
				continue
			}
			if leave == -1 || ops.Cmp(rv.xB[r], worst) < 0 {
				leave, worst = r, rv.xB[r]
			}
		}
		if leave == -1 {
			return Optimal, steps
		}
		// rho = e_leave · B⁻¹, the leaving row of the inverse, for sparse
		// dots against candidate columns; y for their reduced costs.
		for i := range rv.work {
			rv.work[i] = ops.Zero()
		}
		rv.work[leave] = ops.One()
		rv.btran(rv.work)
		for i := 0; i < rv.m; i++ {
			rv.y[i] = rv.cost[rv.basis[i]]
		}
		rv.btran(rv.y)
		enter := -1
		var bestRatio T
		for j := 0; j < rv.n; j++ {
			if rv.pos[j] >= 0 || rv.isDead(j) {
				continue
			}
			arj := ops.Zero()
			for idx := rv.colStart[j]; idx < rv.colStart[j+1]; idx++ {
				arj = ops.MulAdd(arj, rv.work[rv.colRow[idx]], rv.colVal[idx])
			}
			if ops.Sign(arj) >= 0 {
				continue
			}
			d := rv.reducedCost(j, rv.y)
			if ops.Sign(d) < 0 {
				// Dual feasibility holds up to the backend's tolerance;
				// treat tolerance-level negatives as zero.
				d = ops.Zero()
			}
			ratio := ops.Div(d, ops.Neg(arj))
			if enter == -1 || ops.Cmp(ratio, bestRatio) < 0 {
				enter, bestRatio = j, ratio
			}
		}
		if enter == -1 {
			return Infeasible, steps
		}
		rv.scatterCol(enter, rv.alpha)
		rv.ftran(rv.alpha)
		if ops.Sign(rv.alpha[leave]) >= 0 {
			// FTRAN disagrees with the BTRAN row under the float tolerance.
			return IterLimit, steps
		}
		rv.pivot(leave, enter, rv.alpha)
		steps++
	}
}

// warmFactorize rebuilds the eta file as a factorisation of the candidate
// basis columns (elimination order, dependent candidates dropped), then
// completes uncovered rows with artificial columns. Returns false when the
// completion is singular — the mapped basis cannot factor against the new
// matrix — which callers turn into ErrWarmStartFailed.
//
//stretch:noalloc
func (rv *revised[T]) warmFactorize(cand []int) bool {
	m := rv.m
	rv.refacs++
	rv.failed = false
	rv.eta.reset()
	for i := 0; i < m; i++ {
		rv.pivoted[i] = false
	}
	rv.newBasis = growIntSlice(rv.newBasis, m)
	placed := 0
	for _, v := range cand {
		if placed == m {
			break
		}
		if v < rv.n && rv.isDead(v) {
			continue
		}
		rv.scatterCol(v, rv.alpha)
		rv.ftran(rv.alpha)
		pr := rv.pickPivotRow(rv.alpha, -1)
		if pr == -1 {
			continue // dependent on the columns already placed; drop it
		}
		rv.appendEta(rv.alpha, pr)
		rv.pivoted[pr] = true
		rv.newBasis[pr] = v
		placed++
	}
	for r := 0; r < m; r++ {
		if rv.pivoted[r] {
			continue
		}
		rv.scatterCol(rv.n+r, rv.alpha)
		rv.ftran(rv.alpha)
		pr := rv.pickPivotRow(rv.alpha, r)
		if pr == -1 {
			return false
		}
		rv.appendEta(rv.alpha, pr)
		rv.pivoted[pr] = true
		rv.newBasis[pr] = rv.n + r
	}
	copy(rv.basis, rv.newBasis[:m])
	for j := range rv.pos {
		rv.pos[j] = -1
	}
	for r, v := range rv.basis {
		rv.pos[v] = r
	}
	rv.sinceRefac = 0
	rv.baseNNZ = len(rv.eta.row)
	return true
}

// restoreAddedCosts re-applies the objective coefficients of columns added
// since the last bind, which setPhase2Costs (driven by the bound Problem)
// knows nothing about.
//
//stretch:noalloc
func (inc *Incremental[T]) restoreAddedCosts() {
	rv := &inc.ws.rev
	for a, j := range inc.added {
		rv.cost[j] = inc.addedObj[a]
	}
}

// pivotOut removes the basic column of row r (basic at value zero) from the
// basis, replacing it with any independent structural or slack column, or
// the row's own artificial as a last resort.
//
//stretch:noalloc
func (rv *revised[T]) pivotOut(r int) bool {
	ops := rv.ops
	for i := range rv.work {
		rv.work[i] = ops.Zero()
	}
	rv.work[r] = ops.One()
	rv.btran(rv.work)
	for j := 0; j < rv.n; j++ {
		if rv.pos[j] >= 0 || rv.isDead(j) {
			continue
		}
		d := ops.Zero()
		for idx := rv.colStart[j]; idx < rv.colStart[j+1]; idx++ {
			d = ops.MulAdd(d, rv.work[rv.colRow[idx]], rv.colVal[idx])
		}
		if ops.Sign(d) == 0 {
			continue
		}
		rv.scatterCol(j, rv.alpha)
		rv.ftran(rv.alpha)
		if ops.Sign(rv.alpha[r]) == 0 {
			continue
		}
		rv.pivot(r, j, rv.alpha)
		return true
	}
	rv.scatterCol(rv.n+r, rv.alpha)
	rv.ftran(rv.alpha)
	if ops.Sign(rv.alpha[r]) == 0 {
		return false
	}
	rv.pivot(r, rv.n+r, rv.alpha)
	return true
}
