package lp

import (
	"errors"
	"slices"
	"testing"

	"stretchsched/internal/rat"
)

// seqProblem builds one program of a family sharing a fixed shape (6 vars,
// 4 rows) whose right-hand sides and one cost drift with step — the shape
// of consecutive online re-solves, where positional identity is stable.
func seqProblem(step int) *Problem[rat.Rat] {
	p := New[rat.Rat](RatOps{}, 6)
	obj := []int64{1, 2, 1, 3, 1, 2}
	obj[2] += int64(step % 2)
	for j, c := range obj {
		p.SetObjectiveCoef(j, rat.FromInt(c))
	}
	row := func(coefs []int64, rel Rel, rhs int64) {
		cs := make([]rat.Rat, len(coefs))
		for i, c := range coefs {
			cs[i] = rat.FromInt(c)
		}
		p.AddDense(cs, rel, rat.FromInt(rhs))
	}
	row([]int64{1, 1, 1, 0, 0, 0}, GE, 2+int64(step))
	row([]int64{0, 0, 0, 1, 1, 0}, GE, 1+int64(step%3))
	row([]int64{1, 0, 0, 1, 0, 0}, LE, 10)
	row([]int64{0, 1, 0, 0, 1, 1}, EQ, 3)
	return p
}

func requireEqualSolve(t *testing.T, label string, got *Solution[rat.Rat], gerr error, want *Solution[rat.Rat], werr error) {
	t.Helper()
	if got.Status != want.Status {
		t.Fatalf("%s: status warm %v (err %v), cold %v (err %v)", label, got.Status, gerr, want.Status, werr)
	}
	if want.Status != Optimal {
		return
	}
	if !got.Objective.Equal(want.Objective) {
		t.Fatalf("%s: objective warm %v, cold %v", label, got.Objective, want.Objective)
	}
}

// TestIncrementalWarmEqualsColdSequence replays a drifting same-shape
// program family through one session and checks every solve against a cold
// solve: bit-equal status and objective, no fallbacks, warm solves actually
// happening.
func TestIncrementalWarmEqualsColdSequence(t *testing.T) {
	inc := NewIncremental[rat.Rat]()
	for step := 0; step < 8; step++ {
		got, gerr := inc.Solve(seqProblem(step), nil, nil)
		want, werr := seqProblem(step).SolveRevised()
		requireEqualSolve(t, "step", got, gerr, want, werr)
	}
	st := inc.Stats()
	if st.Warm != 7 || st.Cold != 1 {
		t.Fatalf("want 7 warm + 1 cold solves, got %+v", *st)
	}
	if st.Fallback != 0 {
		t.Fatalf("unexpected fallbacks: %+v", *st)
	}
}

// shapeProblem builds a program whose variable and row sets change between
// events, identified by stable IDs: variable ids carry their objective
// cost and one GE row each; arrivals add ids, completions remove them.
func shapeProblem(ids []int64) (*Problem[rat.Rat], []int64, []int64) {
	p := New[rat.Rat](RatOps{}, len(ids))
	rowIDs := make([]int64, 0, len(ids)+1)
	for j, id := range ids {
		p.SetObjectiveCoef(j, rat.FromInt(id))
	}
	// Shared capacity row (stable id 0): Σ x ≤ 50.
	vs := make([]int, len(ids))
	cs := make([]rat.Rat, len(ids))
	for j := range ids {
		vs[j], cs[j] = j, rat.One
	}
	p.AddSparse(vs, cs, LE, rat.FromInt(50))
	rowIDs = append(rowIDs, 0)
	// Per-variable completion row (stable id = variable id): x_j ≥ id.
	for j, id := range ids {
		p.AddSparse([]int{j}, []rat.Rat{rat.One}, GE, rat.FromInt(id))
		rowIDs = append(rowIDs, id)
	}
	return p, slices.Clone(ids), rowIDs
}

// TestIncrementalStableIDsAcrossShapeChange drives the session through
// arrival/completion-style shape changes mapped by stable column and row
// IDs, comparing every event against a cold solve.
func TestIncrementalStableIDsAcrossShapeChange(t *testing.T) {
	inc := NewIncremental[rat.Rat]()
	events := [][]int64{
		{2, 3, 5},
		{2, 3, 5, 7},    // arrival
		{2, 5, 7},       // completion
		{2, 5, 7, 9, 4}, // two arrivals
		{9, 4},          // two completions
	}
	for i, ids := range events {
		p, colIDs, rowIDs := shapeProblem(ids)
		got, gerr := inc.Solve(p, colIDs, rowIDs)
		pc, _, _ := shapeProblem(ids)
		want, werr := pc.SolveRevised()
		requireEqualSolve(t, "event", got, gerr, want, werr)
		if i == 0 {
			continue
		}
	}
	st := inc.Stats()
	if st.Warm == 0 {
		t.Fatalf("shape-change events never warm-started: %+v", *st)
	}
	if st.Fallback != 0 {
		t.Fatalf("unexpected fallbacks: %+v", *st)
	}
}

// TestIncrementalForcedFallback proves the ErrWarmStartFailed path is
// exercised and counted: a forced warm failure must fall back to a cold
// solve with an identical result, and the session must warm-start again
// afterwards.
func TestIncrementalForcedFallback(t *testing.T) {
	inc := NewIncremental[rat.Rat]()
	if _, err := inc.Solve(seqProblem(0), nil, nil); err != nil {
		t.Fatal(err)
	}
	inc.ForceWarmFailure(1)
	got, gerr := inc.Solve(seqProblem(1), nil, nil)
	want, werr := seqProblem(1).SolveRevised()
	requireEqualSolve(t, "fallback", got, gerr, want, werr)
	st := inc.Stats()
	if st.Fallback != 1 || st.Cold != 2 || st.Warm != 0 {
		t.Fatalf("want fallback=1 cold=2 warm=0, got %+v", *st)
	}
	if _, err := inc.Solve(seqProblem(2), nil, nil); err != nil {
		t.Fatal(err)
	}
	if st.Warm != 1 {
		t.Fatalf("session did not recover a warm basis after fallback: %+v", *st)
	}
}

// TestIncrementalDeltaOps applies the three delta operations — bound
// change, column arrival, column drop — against equivalent from-scratch
// programs.
func TestIncrementalDeltaOps(t *testing.T) {
	// min x0 + 2·x1  s.t.  x0 + x1 ≥ 1  →  x* = (1, 0), objective 1.
	build := func(rhs int64, withX2 bool, dropX1 bool) *Problem[rat.Rat] {
		n := 2
		if withX2 {
			n = 3
		}
		p := New[rat.Rat](RatOps{}, n)
		p.SetObjectiveCoef(0, rat.One)
		if !dropX1 {
			p.SetObjectiveCoef(1, rat.FromInt(2))
		} else {
			// Dropped columns are excluded from play; the equivalent
			// from-scratch program simply prices x1 out with a huge cost.
			p.SetObjectiveCoef(1, rat.FromInt(1000))
		}
		vs := []int{0, 1}
		cs := []rat.Rat{rat.One, rat.One}
		if withX2 {
			vs = append(vs, 2)
			cs = append(cs, rat.One)
			p.SetObjectiveCoef(2, rat.FromFloat(0.5))
		}
		p.AddSparse(vs, cs, GE, rat.FromInt(rhs))
		return p
	}

	inc := NewIncremental[rat.Rat]()
	sol, err := inc.Solve(build(1, false, false), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Objective.Equal(rat.One) {
		t.Fatalf("base objective %v, want 1", sol.Objective)
	}

	// Bound change: rhs 1 → 3 (dual-simplex repair territory).
	if err := inc.SetRHS(0, rat.FromInt(3)); err != nil {
		t.Fatal(err)
	}
	sol, err = inc.ReSolve()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := build(3, false, false).SolveRevised()
	if !sol.Objective.Equal(want.Objective) {
		t.Fatalf("after SetRHS: objective %v, want %v", sol.Objective, want.Objective)
	}

	// Arrival: a cheaper column priced in.
	ext, err := inc.AddColumn(7, rat.FromFloat(0.5), []int{0}, []rat.Rat{rat.One})
	if err != nil {
		t.Fatal(err)
	}
	if ext != 2 {
		t.Fatalf("added column external index %d, want 2", ext)
	}
	sol, err = inc.ReSolve()
	if err != nil {
		t.Fatal(err)
	}
	want, _ = build(3, true, false).SolveRevised()
	if !sol.Objective.Equal(want.Objective) {
		t.Fatalf("after AddColumn: objective %v, want %v", sol.Objective, want.Objective)
	}
	if !sol.X[2].Equal(rat.FromInt(3)) {
		t.Fatalf("added column value %v, want 3", sol.X[2])
	}

	// Completion: drop x1 (nonbasic at zero here).
	if err := inc.DropColumn(1); err != nil {
		t.Fatal(err)
	}
	sol, err = inc.ReSolve()
	if err != nil {
		t.Fatal(err)
	}
	want, _ = build(3, true, true).SolveRevised()
	if !sol.Objective.Equal(want.Objective) {
		t.Fatalf("after DropColumn: objective %v, want %v", sol.Objective, want.Objective)
	}
	if inc.Stats().Resolves != 3 {
		t.Fatalf("resolves: %+v", *inc.Stats())
	}
}

// TestIncrementalSetRHSInfeasible checks that a bound change making the
// program infeasible is reported as Infeasible (the dual repair's
// certificate), matching a cold solve of the equivalent program.
func TestIncrementalSetRHSInfeasible(t *testing.T) {
	// min x0  s.t.  x0 ≤ 1, x0 ≥ rhs.
	build := func(rhs int64) *Problem[rat.Rat] {
		p := New[rat.Rat](RatOps{}, 1)
		p.SetObjectiveCoef(0, rat.One)
		p.AddSparse([]int{0}, []rat.Rat{rat.One}, LE, rat.One)
		p.AddSparse([]int{0}, []rat.Rat{rat.One}, GE, rat.FromInt(rhs))
		return p
	}
	inc := NewIncremental[rat.Rat]()
	if _, err := inc.Solve(build(0), nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := inc.SetRHS(1, rat.FromInt(5)); err != nil {
		t.Fatal(err)
	}
	sol, err := inc.ReSolve()
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v (status %v)", err, sol.Status)
	}
	want, werr := build(5).SolveRevised()
	if !errors.Is(werr, ErrInfeasible) || want.Status != sol.Status {
		t.Fatalf("cold disagrees: %v vs warm %v", want.Status, sol.Status)
	}
}

// TestIncrementalSteadyStateAllocs gates the incremental path's hot loops:
// once warmed up, same-shape warm solves and SetRHS+ReSolve repairs on the
// float backend allocate nothing.
func TestIncrementalSteadyStateAllocs(t *testing.T) {
	ops := Float64Ops{Eps: 1e-9}
	p := New[float64](ops, 6)
	coefs := make([]float64, 6)
	fill := func(step int) {
		p.Reset(6)
		obj := []float64{1, 2, 1, 3, 1, 2}
		for j, c := range obj {
			p.SetObjectiveCoef(j, c)
		}
		row := func(cs []float64, rel Rel, rhs float64) {
			copy(coefs, cs)
			p.AddDense(coefs, rel, rhs)
		}
		row([]float64{1, 1, 1, 0, 0, 0}, GE, float64(2+step%4))
		row([]float64{0, 0, 0, 1, 1, 0}, GE, float64(1+step%3))
		row([]float64{1, 0, 0, 1, 0, 0}, LE, 10)
		row([]float64{0, 1, 0, 0, 1, 1}, EQ, 3)
	}
	inc := NewIncremental[float64]()
	step := 0
	warmSolve := func() {
		fill(step)
		step++
		if _, err := inc.Solve(p, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		warmSolve()
	}
	if avg := testing.AllocsPerRun(20, warmSolve); avg != 0 {
		t.Errorf("warm Solve allocates %v allocs/op in steady state, want 0", avg)
	}
	rhs := 2.0
	resolve := func() {
		rhs = 2 + float64(step%4)
		step++
		if err := inc.SetRHS(0, rhs); err != nil {
			t.Fatal(err)
		}
		if _, err := inc.ReSolve(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		resolve()
	}
	if avg := testing.AllocsPerRun(20, resolve); avg != 0 {
		t.Errorf("SetRHS+ReSolve allocates %v allocs/op in steady state, want 0", avg)
	}
	if f := inc.Stats().Fallback; f != 0 {
		t.Fatalf("steady-state loop fell back %d times", f)
	}
}

// FuzzIncrementalWarmCold is the warm-vs-cold differential at the lp layer:
// an arbitrary decoded program is solved warm (after priming the session on
// a rhs-perturbed sibling) and cold, and the two must agree exactly on
// status and, when optimal, bit-equal objective — including the Infeasible
// and Unbounded verdicts the repair paths certify themselves.
func FuzzIncrementalWarmCold(f *testing.F) {
	f.Add([]byte{2, 2, 1, 16, 50, 5, 1, 7, 9, 200, 3})
	f.Add([]byte{3, 4, 0, 255, 128, 127, 0, 85, 170, 51, 204, 15, 2, 90, 33, 7, 211})
	f.Add([]byte{1, 1, 1, 129, 1, 3})
	f.Add([]byte{4, 3, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17})
	f.Add([]byte{2, 2, 3, 16, 50, 5, 1, 7, 9, 200, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		inst, ok := decodeFuzzLP(data)
		if !ok {
			return
		}
		prime := inst
		prime.rhs = slices.Clone(inst.rhs)
		if len(prime.rhs) > 0 {
			prime.rhs[0]++
		}
		inc := NewIncremental[rat.Rat]()
		_, _ = inc.Solve(prime.build(), nil, nil) // non-optimal priming is fine: the next solve goes cold
		got, gerr := inc.Solve(inst.build(), nil, nil)
		want, werr := inst.build().SolveRevised()
		if got.Status != want.Status {
			t.Fatalf("status: warm %v (err %v), cold %v (err %v)", got.Status, gerr, want.Status, werr)
		}
		if want.Status != Optimal {
			return
		}
		if !got.Objective.Equal(want.Objective) {
			t.Fatalf("objective: warm %v, cold %v", got.Objective, want.Objective)
		}
	})
}
