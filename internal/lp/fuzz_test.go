package lp

import (
	"math"
	"testing"

	"stretchsched/internal/rat"
)

// fuzzLP is one decoded differential-fuzz instance: a small LP with
// small-integer data (so the exact solve stays fast even on adversarial
// inputs), or — in float-heavy mode — the same structure with every
// coefficient scaled by √2 to a full 53-bit mantissa, the shape of the
// heterogeneous-platform System (1) programs whose products overflow the
// int64 small form and exercise the 128-bit medium tier.
type fuzzLP struct {
	nvars, ncons int
	maximize     bool
	floatHeavy   bool
	obj          []int64
	rows         [][]int64
	rels         []Rel
	rhs          []int64
}

// decodeFuzzLP reads an instance from raw fuzz bytes: header, then one
// signed byte per coefficient, mapped into small ranges.
func decodeFuzzLP(data []byte) (fuzzLP, bool) {
	if len(data) < 4 {
		return fuzzLP{}, false
	}
	lp := fuzzLP{
		nvars:      1 + int(data[0]%5),
		ncons:      1 + int(data[1]%5),
		maximize:   data[2]&1 == 1,
		floatHeavy: data[2]&2 == 2,
	}
	data = data[3:]
	next := func() int64 {
		if len(data) == 0 {
			return 0
		}
		v := int64(int8(data[0]))
		data = data[1:]
		return v
	}
	lp.obj = make([]int64, lp.nvars)
	for v := range lp.obj {
		lp.obj[v] = next() % 10
	}
	rels := [3]Rel{LE, GE, EQ}
	for r := 0; r < lp.ncons; r++ {
		row := make([]int64, lp.nvars)
		for v := range row {
			row[v] = next() % 6
		}
		lp.rows = append(lp.rows, row)
		lp.rels = append(lp.rels, rels[uint8(next())%3])
		lp.rhs = append(lp.rhs, next()%12)
	}
	return lp, true
}

// build materialises the instance over the exact backend, with unit box
// constraints x_v ≤ 16 appended so most instances are bounded (the rest
// exercise status agreement on Unbounded/Infeasible).
// conv maps one decoded data coefficient into the exact field. In
// float-heavy mode every nonzero coefficient carries √2's full mantissa:
// exact pivots then produce >63-bit products immediately, keeping the
// whole solve in the medium (and occasionally big) tier.
func (l fuzzLP) conv(c int64) rat.Rat {
	if l.floatHeavy && c != 0 {
		return rat.FromFloat(float64(c) * math.Sqrt2)
	}
	return rat.FromInt(c)
}

// objCoef is the objective coefficient of variable v — shared by build and
// the re-evaluation check of the fuzz body.
func (l fuzzLP) objCoef(v int) rat.Rat {
	return l.conv(l.obj[v]).Div(rat.FromInt(int64(1 + v)))
}

func (l fuzzLP) build() *Problem[rat.Rat] {
	p := New[rat.Rat](RatOps{}, l.nvars)
	p.SetMaximize(l.maximize)
	for v := range l.obj {
		p.SetObjectiveCoef(v, l.objCoef(v))
	}
	for r, row := range l.rows {
		coefs := make([]rat.Rat, l.nvars)
		for v, c := range row {
			coefs[v] = l.conv(c)
		}
		p.AddDense(coefs, l.rels[r], l.conv(l.rhs[r]))
	}
	box := make([]rat.Rat, l.nvars)
	for v := 0; v < l.nvars; v++ {
		for i := range box {
			box[i] = rat.Zero
		}
		box[v] = rat.One
		p.AddDense(box, LE, rat.FromInt(16))
	}
	return p
}

// FuzzSimplexDifferential is the dense-vs-revised oracle, in the mould of
// rat.FuzzRatDifferential: a small LP decoded from raw fuzz bytes is
// solved by both the dense tableau and the sparse revised simplex under
// exact rational arithmetic, where "identical" means identical — equal
// Status and bit-equal optimal objective, no tolerance. Optimal bases may
// legitimately differ at degenerate optima, so X itself is not compared,
// but both solutions' objectives must re-evaluate from their X exactly.
func FuzzSimplexDifferential(f *testing.F) {
	f.Add([]byte{2, 2, 1, 16, 50, 5, 1, 7, 9, 200, 3})
	f.Add([]byte{3, 4, 0, 255, 128, 127, 0, 85, 170, 51, 204, 15, 2, 90, 33, 7, 211})
	f.Add([]byte{1, 1, 1, 129, 1, 3})
	f.Add([]byte{4, 3, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17})
	f.Add([]byte{5, 5, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	// Float-heavy seeds (header bit 2): full-mantissa √2-scaled data, the
	// medium-tier workload of the heterogeneous-platform experiments.
	f.Add([]byte{2, 2, 3, 16, 50, 5, 1, 7, 9, 200, 3})
	f.Add([]byte{3, 4, 2, 255, 128, 127, 0, 85, 170, 51, 204, 15, 2, 90, 33, 7, 211})
	f.Add([]byte{4, 3, 2, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17})
	f.Fuzz(func(t *testing.T, data []byte) {
		inst, ok := decodeFuzzLP(data)
		if !ok {
			return
		}
		ds, derr := inst.build().Solve()
		rs, rerr := inst.build().SolveRevised()
		if ds.Status != rs.Status {
			t.Fatalf("status: dense %v (err %v), revised %v (err %v)",
				ds.Status, derr, rs.Status, rerr)
		}
		if ds.Status != Optimal {
			return
		}
		if !ds.Objective.Equal(rs.Objective) {
			t.Fatalf("objective: dense %v, revised %v", ds.Objective, rs.Objective)
		}
		for _, sol := range []*Solution[rat.Rat]{ds, rs} {
			got := rat.Zero
			for v := range inst.obj {
				got = got.Add(inst.objCoef(v).Mul(sol.X[v]))
			}
			if !got.Equal(sol.Objective) {
				t.Fatalf("objective %v does not re-evaluate from X (%v)", sol.Objective, got)
			}
		}
	})
}
