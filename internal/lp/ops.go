// Package lp implements two-phase primal simplex solvers: a dense tableau
// and a sparse revised method with a product-form basis inverse.
//
// The paper's offline max-stretch algorithm (System (1)) and the sum-stretch
// refinement of its online heuristics (System (2)) are linear programs. The
// original work used an external LP solver; Go's standard library has none,
// so this package provides them from scratch, generic over the scalar
// field: a fast float64 backend with tolerances for simulation, and an
// exact rational backend that eliminates the floating-point milestone
// anomaly the paper reports in §5.3. The dense tableau (Solve/SolveWith)
// is the float-path solver and differential oracle; the revised simplex
// (SolveRevised/SolveRevisedWith, see revised.go) is the exact backend's
// production solver for the paper-scale sparse programs.
package lp

import "stretchsched/internal/rat"

// Ops abstracts the arithmetic a simplex tableau needs. Implementations must
// behave like an ordered field; Sign may incorporate a tolerance (float64).
type Ops[T any] interface {
	Add(a, b T) T
	Sub(a, b T) T
	Mul(a, b T) T
	Div(a, b T) T
	// MulAdd returns a + b·c. Backends fuse it where that matters: the
	// exact backend evaluates the whole expression before deciding whether
	// it fits the inline small form, so accumulate chains (simplex eta
	// updates) whose intermediates overflow but whose results cancel back
	// into range stay allocation-free.
	MulAdd(a, b, c T) T
	Neg(a T) T
	Zero() T
	One() T
	FromInt(n int64) T
	FromFloat(f float64) T
	Float(a T) float64
	// Sign returns -1, 0, +1; values within the backend tolerance of zero
	// must report 0.
	Sign(a T) int
	Cmp(a, b T) int
}

// Float64Ops is the fast backend. Eps is the absolute tolerance under which
// a value is considered zero during pivoting and status tests.
type Float64Ops struct {
	Eps float64
}

// NewFloat64Ops returns a Float64Ops with the default tolerance 1e-9.
func NewFloat64Ops() Float64Ops { return Float64Ops{Eps: 1e-9} }

func (o Float64Ops) Add(a, b float64) float64       { return a + b }
func (o Float64Ops) Sub(a, b float64) float64       { return a - b }
func (o Float64Ops) Mul(a, b float64) float64       { return a * b }
func (o Float64Ops) Div(a, b float64) float64       { return a / b }
func (o Float64Ops) MulAdd(a, b, c float64) float64 { return a + b*c }
func (o Float64Ops) Neg(a float64) float64          { return -a }
func (o Float64Ops) Zero() float64                  { return 0 }
func (o Float64Ops) One() float64                   { return 1 }
func (o Float64Ops) FromInt(n int64) float64        { return float64(n) }
func (o Float64Ops) FromFloat(f float64) float64    { return f }
func (o Float64Ops) Float(a float64) float64        { return a }

func (o Float64Ops) Sign(a float64) int {
	eps := o.Eps
	if eps == 0 {
		eps = 1e-9
	}
	switch {
	case a > eps:
		return 1
	case a < -eps:
		return -1
	default:
		return 0
	}
}

func (o Float64Ops) Cmp(a, b float64) int { return o.Sign(a - b) }

// RatOps is the exact backend over immutable rationals. Every arithmetic
// result is passed through rat.Reduce: values that escaped to math/big
// during a pivot (overflowing products of float-derived coefficients) are
// demoted back to the inline int64 small form the moment cancellation
// brings them back in range, so tableaus whose entries simplify — the
// common case, since most columns are 0/±1 — stay in the allocation-free
// small-value regime.
type RatOps struct{}

func (RatOps) Add(a, b rat.Rat) rat.Rat       { return a.Add(b).Reduce() }
func (RatOps) Sub(a, b rat.Rat) rat.Rat       { return a.Sub(b).Reduce() }
func (RatOps) Mul(a, b rat.Rat) rat.Rat       { return a.Mul(b).Reduce() }
func (RatOps) Div(a, b rat.Rat) rat.Rat       { return a.Div(b).Reduce() }
func (RatOps) MulAdd(a, b, c rat.Rat) rat.Rat { return rat.MulAdd(a, b, c) }
func (RatOps) Neg(a rat.Rat) rat.Rat          { return a.Neg() }
func (RatOps) Zero() rat.Rat                  { return rat.Zero }
func (RatOps) One() rat.Rat                   { return rat.One }
func (RatOps) FromInt(n int64) rat.Rat        { return rat.FromInt(n) }
func (RatOps) FromFloat(f float64) rat.Rat    { return rat.FromFloat(f) }
func (RatOps) Float(a rat.Rat) float64        { return a.Float() }
func (RatOps) Sign(a rat.Rat) int             { return a.Sign() }
func (RatOps) Cmp(a, b rat.Rat) int           { return a.Cmp(b) }
