// Package lp implements two-phase primal simplex solvers: a dense tableau
// and a sparse revised method with a product-form basis inverse.
//
// The paper's offline max-stretch algorithm (System (1)) and the sum-stretch
// refinement of its online heuristics (System (2)) are linear programs. The
// original work used an external LP solver; Go's standard library has none,
// so this package provides them from scratch, generic over the scalar
// field: a fast float64 backend with tolerances for simulation, and an
// exact rational backend that eliminates the floating-point milestone
// anomaly the paper reports in §5.3. The dense tableau (Solve/SolveWith)
// is the float-path solver and differential oracle; the revised simplex
// (SolveRevised/SolveRevisedWith, see revised.go) is the exact backend's
// production solver for the paper-scale sparse programs.
package lp

import "stretchsched/internal/rat"

// Ops abstracts the arithmetic a simplex tableau needs. Implementations must
// behave like an ordered field; Sign may incorporate a tolerance (float64).
type Ops[T any] interface {
	Add(a, b T) T
	Sub(a, b T) T
	Mul(a, b T) T
	Div(a, b T) T
	// MulAdd returns a + b·c. Backends fuse it where that matters: the
	// exact backend evaluates the whole expression before deciding whether
	// it fits an inline fixed-width form, so accumulate chains (simplex eta
	// updates) whose intermediates overflow but whose results cancel back
	// into range stay allocation-free.
	MulAdd(a, b, c T) T
	// MulSub returns a - b·c, fused like MulAdd. It exists for the pricing
	// dot products (reduced cost = c_j - y·A_j), where a separate Neg per
	// element would double the value traffic through the ops boundary.
	MulSub(a, b, c T) T
	Neg(a T) T
	Zero() T
	One() T
	FromInt(n int64) T
	FromFloat(f float64) T
	Float(a T) float64
	// Sign returns -1, 0, +1; values within the backend tolerance of zero
	// must report 0.
	Sign(a T) int
	Cmp(a, b T) int
}

// Float64Ops is the fast backend. Eps is the absolute tolerance under which
// a value is considered zero during pivoting and status tests.
type Float64Ops struct {
	Eps float64
}

// NewFloat64Ops returns a Float64Ops with the default tolerance 1e-9.
func NewFloat64Ops() Float64Ops { return Float64Ops{Eps: 1e-9} }

func (o Float64Ops) Add(a, b float64) float64       { return a + b }
func (o Float64Ops) Sub(a, b float64) float64       { return a - b }
func (o Float64Ops) Mul(a, b float64) float64       { return a * b }
func (o Float64Ops) Div(a, b float64) float64       { return a / b }
func (o Float64Ops) MulAdd(a, b, c float64) float64 { return a + b*c }
func (o Float64Ops) MulSub(a, b, c float64) float64 { return a - b*c }
func (o Float64Ops) Neg(a float64) float64          { return -a }
func (o Float64Ops) Zero() float64                  { return 0 }
func (o Float64Ops) One() float64                   { return 1 }
func (o Float64Ops) FromInt(n int64) float64        { return float64(n) }
func (o Float64Ops) FromFloat(f float64) float64    { return f }
func (o Float64Ops) Float(a float64) float64        { return a }

func (o Float64Ops) Sign(a float64) int {
	eps := o.Eps
	if eps == 0 {
		eps = 1e-9
	}
	switch {
	case a > eps:
		return 1
	case a < -eps:
		return -1
	default:
		return 0
	}
}

func (o Float64Ops) Cmp(a, b float64) int { return o.Sign(a - b) }

// RatOps is the exact backend over immutable rationals. Every arithmetic
// result is passed through rat.Reduce: values that promoted to the 128-bit
// medium form or escaped to math/big during a pivot (overflowing products
// of float-derived coefficients) are demoted back down the representation
// ladder the moment cancellation brings them back in range, so tableaus
// whose entries simplify — the common case, since most columns are 0/±1 —
// stay in the allocation-free fixed-width regime.
type RatOps struct {
	// Tiers, when non-nil, accumulates per-operation representation-tier
	// counters for every arithmetic op this value performs: results by
	// tier, promotions past the operands' tier (overflow escapes) and
	// demotions below it (Reduce reclaiming values after cancellation).
	// Workspace.Tiers is the conventional home; cmd/profile -tiers prints
	// it. The nil default costs one predictable branch per op.
	Tiers *rat.TierStats
}

// note2 and note3 record one op against the tier counters, if enabled.
func (o RatOps) note2(r, a, b rat.Rat) rat.Rat {
	if o.Tiers != nil {
		o.Tiers.Note(r.Tier(), max(a.Tier(), b.Tier()))
	}
	return r
}

func (o RatOps) note3(r, a, b, c rat.Rat) rat.Rat {
	if o.Tiers != nil {
		o.Tiers.Note(r.Tier(), max(a.Tier(), b.Tier(), c.Tier()))
	}
	return r
}

func (o RatOps) Add(a, b rat.Rat) rat.Rat       { return o.note2(a.Add(b).Reduce(), a, b) }
func (o RatOps) Sub(a, b rat.Rat) rat.Rat       { return o.note2(a.Sub(b).Reduce(), a, b) }
func (o RatOps) Mul(a, b rat.Rat) rat.Rat       { return o.note2(a.Mul(b).Reduce(), a, b) }
func (o RatOps) Div(a, b rat.Rat) rat.Rat       { return o.note2(a.Div(b).Reduce(), a, b) }
func (o RatOps) MulAdd(a, b, c rat.Rat) rat.Rat { return o.note3(rat.MulAdd(a, b, c), a, b, c) }
func (o RatOps) MulSub(a, b, c rat.Rat) rat.Rat { return o.note3(rat.MulSub(a, b, c), a, b, c) }
func (RatOps) Neg(a rat.Rat) rat.Rat            { return a.Neg() }
func (RatOps) Zero() rat.Rat                    { return rat.Zero }
func (RatOps) One() rat.Rat                     { return rat.One }
func (RatOps) FromInt(n int64) rat.Rat          { return rat.FromInt(n) }
func (RatOps) FromFloat(f float64) rat.Rat      { return rat.FromFloat(f) }
func (RatOps) Float(a rat.Rat) float64          { return a.Float() }
func (RatOps) Sign(a rat.Rat) int               { return a.Sign() }
func (RatOps) Cmp(a, b rat.Rat) int             { return a.Cmp(b) }
