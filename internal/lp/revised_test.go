package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"stretchsched/internal/rat"
)

// TestRevisedSimpleMax ports the canonical tableau test to the revised
// solver: max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 → x=2, y=6.
func TestRevisedSimpleMax(t *testing.T) {
	p := f64Prob(2)
	p.SetMaximize(true)
	p.SetObjectiveCoef(0, 3)
	p.SetObjectiveCoef(1, 5)
	p.AddDense([]float64{1, 0}, LE, 4)
	p.AddDense([]float64{0, 2}, LE, 12)
	p.AddDense([]float64{3, 2}, LE, 18)
	sol, err := p.SolveRevised()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-36) > 1e-7 {
		t.Fatalf("obj = %v, want 36", sol.Objective)
	}
	if math.Abs(sol.X[0]-2) > 1e-7 || math.Abs(sol.X[1]-6) > 1e-7 {
		t.Fatalf("x = %v, want [2 6]", sol.X)
	}
}

// TestRevisedStatuses checks the three non-optimal outcomes surface with
// both the right Status and the right typed sentinel.
func TestRevisedStatuses(t *testing.T) {
	inf := f64Prob(1)
	inf.AddDense([]float64{1}, LE, 1)
	inf.AddDense([]float64{1}, GE, 2)
	sol, err := inf.SolveRevised()
	if sol.Status != Infeasible || !errors.Is(err, ErrInfeasible) || !errors.Is(err, ErrNotOptimal) {
		t.Fatalf("status = %v err = %v", sol.Status, err)
	}

	unb := f64Prob(1)
	unb.SetMaximize(true)
	unb.SetObjectiveCoef(0, 1)
	unb.AddDense([]float64{-1}, LE, 0)
	sol, err = unb.SolveRevised()
	if sol.Status != Unbounded || !errors.Is(err, ErrUnbounded) || !errors.Is(err, ErrNotOptimal) {
		t.Fatalf("status = %v err = %v", sol.Status, err)
	}

	// Sentinels are distinguishable from each other.
	if errors.Is(ErrInfeasible, ErrUnbounded) || errors.Is(ErrUnbounded, ErrIterLimit) {
		t.Fatal("typed sentinels alias each other")
	}
}

// TestRevisedEqualityAndNegativeRHS exercises row sign normalisation and
// equality rows (no slack column) together.
func TestRevisedEqualityAndNegativeRHS(t *testing.T) {
	p := f64Prob(2)
	p.SetObjectiveCoef(0, 1)
	p.SetObjectiveCoef(1, 1)
	p.AddDense([]float64{1, 2}, EQ, 4)
	p.AddDense([]float64{-1, 1}, LE, -1) // x - y >= 1 in disguise
	sol, err := p.SolveRevised()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[0]-2) > 1e-7 || math.Abs(sol.X[1]-1) > 1e-7 {
		t.Fatalf("x = %v, want [2 1]", sol.X)
	}
}

// TestRevisedRedundantRows: dependent equalities leave artificials parked
// in dependent rows; the optimum must be unaffected.
func TestRevisedRedundantRows(t *testing.T) {
	p := f64Prob(2)
	p.SetObjectiveCoef(0, 1)
	p.SetObjectiveCoef(1, 1)
	p.AddDense([]float64{1, 1}, EQ, 3)
	p.AddDense([]float64{2, 2}, EQ, 6)
	p.AddDense([]float64{1, 1}, EQ, 3)
	sol, err := p.SolveRevised()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-3) > 1e-7 {
		t.Fatalf("obj = %v, want 3", sol.Objective)
	}
}

// TestRevisedDegenerateBealeExact is the anti-cycling regression the typed
// IterLimit error exists for: Beale's classic cycling LP, solved in exact
// rational arithmetic where no tolerance can break ties — under pure
// Dantzig pricing this instance cycles forever; the degeneracy-streak
// Bland fallback must terminate it at the true optimum, never IterLimit.
func TestRevisedDegenerateBealeExact(t *testing.T) {
	build := func() *Problem[rat.Rat] {
		p := ratProb(4)
		p.SetObjectiveCoef(0, rat.FromFrac(-3, 4))
		p.SetObjectiveCoef(1, rat.FromInt(150))
		p.SetObjectiveCoef(2, rat.FromFrac(-1, 50))
		p.SetObjectiveCoef(3, rat.FromInt(6))
		p.AddDense([]rat.Rat{rat.FromFrac(1, 4), rat.FromInt(-60), rat.FromFrac(-1, 25), rat.FromInt(9)}, LE, rat.Zero)
		p.AddDense([]rat.Rat{rat.FromFrac(1, 2), rat.FromInt(-90), rat.FromFrac(-1, 50), rat.FromInt(3)}, LE, rat.Zero)
		p.AddDense([]rat.Rat{rat.Zero, rat.Zero, rat.One, rat.Zero}, LE, rat.One)
		return p
	}
	want := rat.FromFrac(-1, 20)
	for name, solve := range map[string]func(*Problem[rat.Rat]) (*Solution[rat.Rat], error){
		"revised": (*Problem[rat.Rat]).SolveRevised,
		"dense":   (*Problem[rat.Rat]).Solve,
	} {
		sol, err := solve(build())
		if err != nil {
			if errors.Is(err, ErrIterLimit) {
				t.Fatalf("%s: cycled into the iteration limit: %v", name, err)
			}
			t.Fatalf("%s: %v", name, err)
		}
		if !sol.Objective.Equal(want) {
			t.Fatalf("%s: obj = %v, want -1/20", name, sol.Objective)
		}
	}
}

// TestRevisedMatchesDenseRandom cross-checks the two solvers over the
// shared random generator on the float backend.
func TestRevisedMatchesDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		nvars := 2 + rng.Intn(5)
		ncons := 1 + rng.Intn(5)
		c, a, b, u := randomLP(rng, nvars, ncons)
		build := func() *Problem[float64] {
			p := f64Prob(nvars)
			for i := 0; i < nvars; i++ {
				p.SetObjectiveCoef(i, c[i])
				bound := make([]float64, nvars)
				bound[i] = 1
				p.AddDense(bound, LE, u)
			}
			for r := range a {
				p.AddDense(a[r], LE, b[r])
			}
			return p
		}
		ds, derr := build().Solve()
		rs, rerr := build().SolveRevised()
		if (derr == nil) != (rerr == nil) || ds.Status != rs.Status {
			t.Fatalf("trial %d: dense (%v, %v) vs revised (%v, %v)",
				trial, ds.Status, derr, rs.Status, rerr)
		}
		if derr != nil {
			continue
		}
		if math.Abs(ds.Objective-rs.Objective) > 1e-6*(1+math.Abs(ds.Objective)) {
			t.Fatalf("trial %d: dense obj %v vs revised %v", trial, ds.Objective, rs.Objective)
		}
	}
}

// TestRevisedRationalExactness mirrors TestRationalExactness: exact
// fractions out of the revised path.
func TestRevisedRationalExactness(t *testing.T) {
	p := ratProb(2)
	p.SetMaximize(true)
	p.SetObjectiveCoef(0, rat.One)
	p.SetObjectiveCoef(1, rat.One)
	p.AddDense([]rat.Rat{rat.FromInt(3), rat.One}, LE, rat.One)
	p.AddDense([]rat.Rat{rat.One, rat.FromInt(3)}, LE, rat.One)
	sol, err := p.SolveRevised()
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Objective.Equal(rat.FromFrac(1, 2)) {
		t.Fatalf("obj = %v, want 1/2", sol.Objective)
	}
	if !sol.X[0].Equal(rat.FromFrac(1, 4)) || !sol.X[1].Equal(rat.FromFrac(1, 4)) {
		t.Fatalf("x = %v", sol.X)
	}
}

// TestRevisedRefactorisation forces many pivots through a chain problem so
// the eta file crosses revisedRefactorEvery repeatedly, and checks the
// solution against the dense oracle — the refactorisation path's
// correctness certificate.
func TestRevisedRefactorisation(t *testing.T) {
	const n = 90 // > revisedRefactorEvery pivots guaranteed
	build := func() *Problem[rat.Rat] {
		p := ratProb(n)
		p.SetMaximize(true)
		vs := []int{0}
		cs := []rat.Rat{rat.One}
		for v := 0; v < n; v++ {
			p.SetObjectiveCoef(v, rat.FromInt(int64(1+v%7)))
			vs[0], cs[0] = v, rat.One
			p.AddSparse(vs, cs, LE, rat.FromInt(int64(2+v%5)))
		}
		// Chain couplings x_v + x_{v+1} <= k keep pivots coming.
		for v := 0; v+1 < n; v++ {
			p.AddSparse([]int{v, v + 1}, []rat.Rat{rat.One, rat.One}, LE, rat.FromInt(int64(3+v%4)))
		}
		return p
	}
	ds, err := build().Solve()
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace[rat.Rat]()
	rs, err := build().SolveRevisedWith(ws)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Objective.Equal(ds.Objective) {
		t.Fatalf("revised obj %v, dense %v", rs.Objective, ds.Objective)
	}
	if rs.Iterations <= revisedRefactorEvery {
		t.Fatalf("only %d iterations; refactorisation never exercised", rs.Iterations)
	}
	// Cadence guards. The trigger is nnz-based (appended eta nonzeros
	// outweighing the fresh factorisation, see shouldRefactor) with the eta
	// cap as backstop, so the bound here is anti-thrash, not a fixed
	// interval: a rebuild's own etas count into sinceRefac and its nonzeros
	// into the file while it runs, and forgetting to reset the counters
	// *after* the rebuild made the solver refactorise almost every
	// iteration on any paper-scale basis. A healthy cadence needs at least
	// a handful of pivots between rebuilds.
	if ws.rev.refacs == 0 {
		t.Fatal("refactorisation never triggered")
	}
	if max := rs.Iterations/4 + 1; ws.rev.refacs > max {
		t.Fatalf("%d refactorisations in %d iterations (want ≤ %d: the cadence is thrashing)",
			ws.rev.refacs, rs.Iterations, max)
	}
}

// TestRevisedWorkspaceMatchesFresh: pooled revised solves agree bit-for-bit
// with fresh ones across interleaved shapes, like the dense workspace test.
func TestRevisedWorkspaceMatchesFresh(t *testing.T) {
	ws := NewWorkspace[float64]()
	pooled := New[float64](NewFloat64Ops(), 0)
	for _, nvars := range []int{6, 2, 9, 4} {
		fresh := New[float64](NewFloat64Ops(), nvars)
		buildBoxProblem(fresh, nvars)
		pooled.Reset(nvars)
		buildBoxProblem(pooled, nvars)

		want, err := fresh.SolveRevised()
		if err != nil {
			t.Fatal(err)
		}
		got, err := pooled.SolveRevisedWith(ws)
		if err != nil {
			t.Fatal(err)
		}
		if got.Objective != want.Objective || got.Status != want.Status {
			t.Fatalf("nvars=%d: pooled (%v, %v), fresh (%v, %v)",
				nvars, got.Status, got.Objective, want.Status, want.Objective)
		}
		for v := range want.X {
			if got.X[v] != want.X[v] {
				t.Fatalf("nvars=%d: x[%d] = %v, fresh %v", nvars, v, got.X[v], want.X[v])
			}
		}

		// An infeasible program between feasible ones must not poison reuse.
		pooled.Reset(1)
		pooled.AddDense([]float64{1}, GE, 5)
		pooled.AddDense([]float64{1}, LE, 2)
		if _, err := pooled.SolveRevisedWith(ws); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("infeasible program: err = %v", err)
		}
	}
}

// TestRevisedWorkspaceSteadyStateAllocs: the revised path shares the
// workspace discipline — rebuilding and solving the same float64 program
// through one Problem+Workspace allocates nothing in steady state.
func TestRevisedWorkspaceSteadyStateAllocs(t *testing.T) {
	ws := NewWorkspace[float64]()
	p := New[float64](NewFloat64Ops(), 0)
	coef := make([]float64, 6)
	run := func() {
		p.Reset(6)
		p.SetMaximize(true)
		for v := 0; v < 6; v++ {
			p.SetObjectiveCoef(v, float64(v+1))
			for i := range coef {
				coef[i] = 0
			}
			coef[v] = 1
			p.AddDense(coef, LE, 10)
		}
		for i := range coef {
			coef[i] = 1
		}
		p.AddDense(coef, LE, 20)
		sol, err := p.SolveRevisedWith(ws)
		if err != nil || math.IsNaN(sol.Objective) {
			t.Fatal("solve failed")
		}
	}
	run()
	if allocs := testing.AllocsPerRun(30, run); allocs != 0 {
		t.Fatalf("steady-state SolveRevisedWith allocates %.1f objects/op, want 0", allocs)
	}
}

// TestRevisedExactSmallRationalAllocs: on small-integer rational data the
// exact revised path must also be allocation-free in steady state — the
// per-iteration guarantee behind the Offline-Exact alloc gate one layer up.
func TestRevisedExactSmallRationalAllocs(t *testing.T) {
	ws := NewWorkspace[rat.Rat]()
	p := New[rat.Rat](RatOps{}, 0)
	coef := make([]rat.Rat, 6)
	run := func() {
		p.Reset(6)
		p.SetMaximize(true)
		for v := 0; v < 6; v++ {
			p.SetObjectiveCoef(v, rat.FromInt(int64(v+1)))
			for i := range coef {
				coef[i] = rat.Zero
			}
			coef[v] = rat.One
			p.AddDense(coef, LE, rat.FromInt(10))
		}
		for i := range coef {
			coef[i] = rat.One
		}
		p.AddDense(coef, LE, rat.FromInt(20))
		if _, err := p.SolveRevisedWith(ws); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if allocs := testing.AllocsPerRun(30, run); allocs != 0 {
		t.Fatalf("steady-state exact SolveRevisedWith allocates %.1f objects/op, want 0", allocs)
	}
}

// TestStatusErr pins the Status→sentinel mapping.
func TestStatusErr(t *testing.T) {
	if Optimal.Err() != nil {
		t.Fatal("Optimal.Err() != nil")
	}
	for s, want := range map[Status]error{
		Infeasible: ErrInfeasible, Unbounded: ErrUnbounded, IterLimit: ErrIterLimit,
	} {
		err := s.Err()
		if !errors.Is(err, want) || !errors.Is(err, ErrNotOptimal) {
			t.Fatalf("%v.Err() = %v", s, err)
		}
	}
}
