package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestStrongDuality solves random primal LPs
//
//	min c·x  st  A x >= b, x >= 0
//
// and their explicit duals
//
//	max b·y  st  Aᵀ y <= c, y >= 0
//
// with the same solver. LP strong duality demands equal optima whenever the
// primal has one — an end-to-end correctness certificate for the simplex
// that no single hand-crafted instance provides.
func TestStrongDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	solved := 0
	for trial := 0; trial < 60; trial++ {
		nvars := 2 + rng.Intn(4)
		ncons := 2 + rng.Intn(4)
		// Nonnegative data keeps both problems feasible and bounded often
		// enough to exercise the equality meaningfully.
		c := make([]float64, nvars)
		for i := range c {
			c[i] = float64(rng.Intn(9) + 1)
		}
		a := make([][]float64, ncons)
		bvec := make([]float64, ncons)
		for r := range a {
			a[r] = make([]float64, nvars)
			for i := range a[r] {
				a[r][i] = float64(rng.Intn(5))
			}
			bvec[r] = float64(rng.Intn(10) + 1)
		}

		primal := New[float64](NewFloat64Ops(), nvars)
		for i := range c {
			primal.SetObjectiveCoef(i, c[i])
		}
		for r := range a {
			primal.AddDense(a[r], GE, bvec[r])
		}
		psol, perr := primal.Solve()

		dual := New[float64](NewFloat64Ops(), ncons)
		dual.SetMaximize(true)
		for r := range bvec {
			dual.SetObjectiveCoef(r, bvec[r])
		}
		for i := 0; i < nvars; i++ {
			col := make([]float64, ncons)
			for r := range a {
				col[r] = a[r][i]
			}
			dual.AddDense(col, LE, c[i])
		}
		dsol, derr := dual.Solve()

		if perr != nil {
			// Primal infeasible (some row has all-zero coefficients with
			// b>0): the dual must then be unbounded or infeasible.
			if derr == nil {
				t.Fatalf("trial %d: primal %v but dual optimal %v",
					trial, psol.Status, dsol.Objective)
			}
			continue
		}
		if derr != nil {
			t.Fatalf("trial %d: primal optimal %v but dual %v", trial, psol.Objective, dsol.Status)
		}
		if math.Abs(psol.Objective-dsol.Objective) > 1e-6*(1+math.Abs(psol.Objective)) {
			t.Fatalf("trial %d: duality gap: primal %v dual %v",
				trial, psol.Objective, dsol.Objective)
		}
		// Complementary slackness spot-check: y_r·(A_r x − b_r) ≈ 0.
		for r := range a {
			slack := -bvec[r]
			for i := range c {
				slack += a[r][i] * psol.X[i]
			}
			if dsol.X[r]*slack > 1e-5*(1+math.Abs(psol.Objective)) {
				t.Fatalf("trial %d: complementary slackness violated at row %d", trial, r)
			}
		}
		solved++
	}
	if solved < 30 {
		t.Fatalf("only %d instances reached optimality; generator too degenerate", solved)
	}
}

// TestMaximizeWithMixedRelations exercises the solver on a maximisation
// with all three relation kinds at once.
func TestMaximizeWithMixedRelations(t *testing.T) {
	// max x + 2y st x + y <= 10, x >= 2, y = 3 → x=7, y=3, obj=13.
	p := New[float64](NewFloat64Ops(), 2)
	p.SetMaximize(true)
	p.SetObjectiveCoef(0, 1)
	p.SetObjectiveCoef(1, 2)
	p.AddDense([]float64{1, 1}, LE, 10)
	p.AddDense([]float64{1, 0}, GE, 2)
	p.AddDense([]float64{0, 1}, EQ, 3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-13) > 1e-7 {
		t.Fatalf("obj = %v, want 13", sol.Objective)
	}
}

// TestIterationsReported sanity-checks the iteration counter.
func TestIterationsReported(t *testing.T) {
	p := New[float64](NewFloat64Ops(), 2)
	p.SetMaximize(true)
	p.SetObjectiveCoef(0, 1)
	p.SetObjectiveCoef(1, 1)
	p.AddDense([]float64{1, 1}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Iterations <= 0 {
		t.Fatalf("iterations = %d", sol.Iterations)
	}
}
