package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"stretchsched/internal/rat"
)

func f64Prob(nvars int) *Problem[float64] { return New[float64](NewFloat64Ops(), nvars) }

func ratProb(nvars int) *Problem[rat.Rat] { return New[rat.Rat](RatOps{}, nvars) }

func TestSimpleMax(t *testing.T) {
	// max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 → x=2, y=6, obj=36.
	p := f64Prob(2)
	p.SetMaximize(true)
	p.SetObjectiveCoef(0, 3)
	p.SetObjectiveCoef(1, 5)
	p.AddDense([]float64{1, 0}, LE, 4)
	p.AddDense([]float64{0, 2}, LE, 12)
	p.AddDense([]float64{3, 2}, LE, 18)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-36) > 1e-7 {
		t.Fatalf("obj = %v, want 36", sol.Objective)
	}
	if math.Abs(sol.X[0]-2) > 1e-7 || math.Abs(sol.X[1]-6) > 1e-7 {
		t.Fatalf("x = %v, want [2 6]", sol.X)
	}
}

func TestSimpleMinWithGE(t *testing.T) {
	// min 2x + 3y st x + y >= 10, x >= 2, y >= 3 → x=7, y=3, obj=23.
	p := f64Prob(2)
	p.SetObjectiveCoef(0, 2)
	p.SetObjectiveCoef(1, 3)
	p.AddDense([]float64{1, 1}, GE, 10)
	p.AddDense([]float64{1, 0}, GE, 2)
	p.AddDense([]float64{0, 1}, GE, 3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-23) > 1e-7 {
		t.Fatalf("obj = %v, want 23", sol.Objective)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min x + y st x + 2y = 4, x - y = 1 → x=2, y=1, obj=3.
	p := f64Prob(2)
	p.SetObjectiveCoef(0, 1)
	p.SetObjectiveCoef(1, 1)
	p.AddDense([]float64{1, 2}, EQ, 4)
	p.AddDense([]float64{1, -1}, EQ, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[0]-2) > 1e-7 || math.Abs(sol.X[1]-1) > 1e-7 {
		t.Fatalf("x = %v, want [2 1]", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := f64Prob(1)
	p.AddDense([]float64{1}, LE, 1)
	p.AddDense([]float64{1}, GE, 2)
	sol, err := p.Solve()
	if !errors.Is(err, ErrNotOptimal) {
		t.Fatalf("err = %v", err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := f64Prob(1)
	p.SetMaximize(true)
	p.SetObjectiveCoef(0, 1)
	p.AddDense([]float64{-1}, LE, 0) // -x <= 0, i.e. always true
	sol, err := p.Solve()
	if !errors.Is(err, ErrNotOptimal) {
		t.Fatalf("err = %v", err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x st -x <= -5 (x >= 5).
	p := f64Prob(1)
	p.SetObjectiveCoef(0, 1)
	p.AddDense([]float64{-1}, LE, -5)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[0]-5) > 1e-7 {
		t.Fatalf("x = %v, want 5", sol.X[0])
	}
}

func TestRedundantRows(t *testing.T) {
	// Duplicate equalities must not break phase 2.
	p := f64Prob(2)
	p.SetObjectiveCoef(0, 1)
	p.SetObjectiveCoef(1, 1)
	p.AddDense([]float64{1, 1}, EQ, 3)
	p.AddDense([]float64{2, 2}, EQ, 6)
	p.AddDense([]float64{1, 1}, EQ, 3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-3) > 1e-7 {
		t.Fatalf("obj = %v, want 3", sol.Objective)
	}
}

func TestDegenerateBeale(t *testing.T) {
	// Beale's classic cycling example; must terminate via Bland fallback.
	// min -0.75x1 + 150x2 - 0.02x3 + 6x4
	// st   0.25x1 - 60x2 - 0.04x3 + 9x4 <= 0
	//      0.5 x1 - 90x2 - 0.02x3 + 3x4 <= 0
	//      x3 <= 1
	p := f64Prob(4)
	p.SetObjectiveCoef(0, -0.75)
	p.SetObjectiveCoef(1, 150)
	p.SetObjectiveCoef(2, -0.02)
	p.SetObjectiveCoef(3, 6)
	p.AddDense([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddDense([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddDense([]float64{0, 0, 1, 0}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-(-0.05)) > 1e-7 {
		t.Fatalf("obj = %v, want -0.05", sol.Objective)
	}
}

func TestRationalExactness(t *testing.T) {
	// max x + y st 3x + y <= 1, x + 3y <= 1 → x=y=1/4, obj=1/2, exactly.
	p := ratProb(2)
	p.SetMaximize(true)
	p.SetObjectiveCoef(0, rat.One)
	p.SetObjectiveCoef(1, rat.One)
	p.AddDense([]rat.Rat{rat.FromInt(3), rat.One}, LE, rat.One)
	p.AddDense([]rat.Rat{rat.One, rat.FromInt(3)}, LE, rat.One)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Objective.Equal(rat.FromFrac(1, 2)) {
		t.Fatalf("obj = %v, want 1/2", sol.Objective)
	}
	if !sol.X[0].Equal(rat.FromFrac(1, 4)) || !sol.X[1].Equal(rat.FromFrac(1, 4)) {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestSparseEqualsDense(t *testing.T) {
	pd := f64Prob(3)
	pd.SetObjectiveCoef(2, 1)
	pd.AddDense([]float64{1, 0, 2}, GE, 4)
	ps := f64Prob(3)
	ps.SetObjectiveCoef(2, 1)
	ps.AddSparse([]int{2, 0}, []float64{2, 1}, GE, 4)
	sd, err := pd.Solve()
	if err != nil {
		t.Fatal(err)
	}
	ss, err := ps.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sd.Objective-ss.Objective) > 1e-9 {
		t.Fatalf("dense %v != sparse %v", sd.Objective, ss.Objective)
	}
}

func TestSparseDuplicateVarsAccumulate(t *testing.T) {
	// x appears twice in the sparse row: coefficient should be 3.
	p := f64Prob(1)
	p.SetObjectiveCoef(0, 1)
	p.AddSparse([]int{0, 0}, []float64{1, 2}, GE, 6)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[0]-2) > 1e-7 {
		t.Fatalf("x = %v, want 2", sol.X[0])
	}
}

// randomLP builds a bounded, feasible random LP: min c·x st A x <= b with
// b > 0 (so x = 0 is feasible) plus x_i <= u to guarantee boundedness.
func randomLP(rng *rand.Rand, nvars, ncons int) (c []float64, a [][]float64, b []float64, u float64) {
	c = make([]float64, nvars)
	for i := range c {
		c[i] = float64(rng.Intn(21) - 10)
	}
	a = make([][]float64, ncons)
	b = make([]float64, ncons)
	for r := range a {
		a[r] = make([]float64, nvars)
		for i := range a[r] {
			a[r][i] = float64(rng.Intn(11) - 5)
		}
		b[r] = float64(rng.Intn(20) + 1)
	}
	return c, a, b, 10
}

// TestFloatMatchesRational cross-checks the two backends on random LPs.
func TestFloatMatchesRational(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		nvars := 2 + rng.Intn(4)
		ncons := 1 + rng.Intn(4)
		c, a, b, u := randomLP(rng, nvars, ncons)

		pf := f64Prob(nvars)
		pr := ratProb(nvars)
		for i := 0; i < nvars; i++ {
			pf.SetObjectiveCoef(i, c[i])
			pr.SetObjectiveCoef(i, rat.FromFloat(c[i]))
			bound := make([]float64, nvars)
			bound[i] = 1
			pf.AddDense(bound, LE, u)
			rbound := make([]rat.Rat, nvars)
			for k := range rbound {
				rbound[k] = rat.Zero
			}
			rbound[i] = rat.One
			pr.AddDense(rbound, LE, rat.FromFloat(u))
		}
		for r := range a {
			pf.AddDense(a[r], LE, b[r])
			row := make([]rat.Rat, nvars)
			for i := range row {
				row[i] = rat.FromFloat(a[r][i])
			}
			pr.AddDense(row, LE, rat.FromFloat(b[r]))
		}
		sf, errF := pf.Solve()
		sr, errR := pr.Solve()
		if (errF == nil) != (errR == nil) {
			t.Fatalf("trial %d: float err=%v rat err=%v", trial, errF, errR)
		}
		if errF != nil {
			continue
		}
		if math.Abs(sf.Objective-sr.Objective.Float()) > 1e-6 {
			t.Fatalf("trial %d: float obj %v != rational obj %v",
				trial, sf.Objective, sr.Objective.Float())
		}
	}
}

// TestSolutionFeasibility verifies that returned solutions satisfy all
// constraints within tolerance, over random instances.
func TestSolutionFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		nvars := 2 + rng.Intn(5)
		ncons := 1 + rng.Intn(5)
		c, a, b, u := randomLP(rng, nvars, ncons)
		p := f64Prob(nvars)
		for i := 0; i < nvars; i++ {
			p.SetObjectiveCoef(i, c[i])
			bound := make([]float64, nvars)
			bound[i] = 1
			p.AddDense(bound, LE, u)
		}
		for r := range a {
			p.AddDense(a[r], LE, b[r])
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, x := range sol.X {
			if x < -1e-7 || x > u+1e-7 {
				t.Fatalf("trial %d: x[%d]=%v out of [0,%v]", trial, i, x, u)
			}
		}
		for r := range a {
			dot := 0.0
			for i := range a[r] {
				dot += a[r][i] * sol.X[i]
			}
			if dot > b[r]+1e-6 {
				t.Fatalf("trial %d: constraint %d violated: %v > %v", trial, r, dot, b[r])
			}
		}
		// Objective must match c·x.
		dot := 0.0
		for i := range c {
			dot += c[i] * sol.X[i]
		}
		if math.Abs(dot-sol.Objective) > 1e-6 {
			t.Fatalf("trial %d: objective mismatch %v != %v", trial, dot, sol.Objective)
		}
	}
}

func TestZeroVariableProblem(t *testing.T) {
	p := f64Prob(0)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 0 {
		t.Fatalf("obj = %v", sol.Objective)
	}
}

func TestRelString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Fatal("Rel strings")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterLimit.String() != "iteration-limit" {
		t.Fatal("Status strings")
	}
}
