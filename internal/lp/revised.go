package lp

// revised.go implements the sparse revised simplex method, the exact
// backend's solver for paper-scale System (1) programs. The dense tableau
// (simplex.go) carries a full m×(n+m) matrix through every pivot — O(m·n)
// row work per iteration — which is what made Offline-Exact impractical
// beyond small platforms: the System (1) constraint matrices are ~95%
// zeros at 20 sites. The revised method keeps the constraint matrix
// column-major sparse and untouched, represents the basis inverse as an
// eta file (product form of the inverse), and pays only O(nnz) per
// iteration:
//
//   - FTRAN (B⁻¹·column) and BTRAN (row·B⁻¹) apply the eta file to a dense
//     m-vector, skipping etas whose pivot entry is zero;
//   - pricing is partial Dantzig: a cursor scans a block of columns per
//     iteration, computing reduced costs as sparse dots against the BTRAN
//     vector, and falls back to Bland's least-index rule after a streak of
//     degenerate pivots so cycling terminates (the Bland guarantee);
//   - the eta file is periodically refactorised from the current basis,
//     which both bounds its length and, on the exact backend, resets the
//     accumulated rational entries to the clean factorisation of the
//     current basis.
//
// All arithmetic goes through Ops[T]; eta and solution updates use
// Ops.MulAdd so the exact backend's accumulate chains stay in rat's inline
// int64 form whenever the final values fit (see rat.MulAdd). Both solvers
// share Problem's sparse constraint rows and the Workspace pooling
// discipline: a warmed-up SolveRevisedWith performs no steady-state
// allocation beyond the backend's own escapes.
//
// The dense tableau remains the float-path solver (its tolerance handling
// is battle-tested) and the differential-test oracle for this file (see
// FuzzSimplexDifferential).

// revisedRefactorEvery is the hard cap on etas appended since the last
// refactorisation. The primary trigger is nnz-based (see shouldRefactor):
// rebuild when the nonzeros appended since the last factorisation outweigh
// the factorisation itself, so the cadence adapts to instance structure —
// sparse pivots let the file run long, dense ones rebuild early. The eta
// cap backstops degenerate cases (many near-empty etas) so the file's
// length, and on the exact backend the accumulated magnitude of its
// rational entries, stay bounded regardless.
const revisedRefactorEvery = 64

// etaFile is a product-form basis inverse: B⁻¹ = E_k⁻¹ ⋯ E_1⁻¹, each
// E_j⁻¹ an identity matrix whose piv[j]-th column is the stored sparse eta
// vector (pivot entry included).
type etaFile[T any] struct {
	piv   []int // pivot row per eta
	start []int // CSR offsets into row/val; len(start) == len(piv)+1
	row   []int
	val   []T
}

func (e *etaFile[T]) reset() {
	e.piv = e.piv[:0]
	e.start = append(e.start[:0], 0)
	e.row = e.row[:0]
	e.val = e.val[:0]
}

func (e *etaFile[T]) len() int { return len(e.piv) }

// revised is the pooled working state of one sparse revised-simplex solve.
type revised[T any] struct {
	ops  Ops[T]
	prob *Problem[T]
	ws   *Workspace[T]

	m, n int // rows; structural+slack columns (artificial i is column n+i)

	// Column-major sparse constraint matrix of the structural and slack
	// columns, in standard equality form with b ≥ 0 (rows with negative
	// rhs are sign-flipped at build time).
	colStart []int
	colRow   []int
	colVal   []T
	b        []T

	basis []int // row -> basic column
	pos   []int // column -> basic row, or -1; len n+m
	xB    []T   // values of the basic variables, kept ≥ 0 while clampXB

	// clampXB controls the float-dust clamp of negative basic values in
	// pivot and recomputeXB. The primal simplex keeps xB ≥ 0 invariantly, so
	// a negative entry there is cancellation dust and is clamped; the dual
	// repair steps of the incremental session (incremental.go) walk through
	// legitimately negative basic values and turn the clamp off.
	clampXB bool
	// flip records which rows were sign-flipped at build time to make b ≥ 0;
	// the incremental session's SetRHS must apply the same convention.
	flip []bool
	// dead marks columns dropped by the incremental session: excluded from
	// pricing, dual repair and artificial drive-out, so they can never
	// re-enter the basis. nil or short means alive (the cold-solve paths
	// never set it; init clears it).
	dead []bool

	eta        etaFile[T]
	sinceRefac int  // etas appended since the last refactorisation
	baseNNZ    int  // eta-file nonzeros right after the last refactorisation
	refacs     int  // refactorisations this solve (cadence regression guard)
	failed     bool // refactorisation hit a float-singular basis; abort

	cost  []T // current phase cost per column, len n+m
	y     []T // BTRAN scratch (pricing vector)
	alpha []T // FTRAN scratch (pivot column)
	work  []T // refactorisation / rhs scratch

	pivoted  []bool // refactorisation row bitmap
	newBasis []int  // refactorisation basis reassignment

	cursor int // partial-pricing start column
	bland  bool
	streak int // consecutive degenerate pivots
	iters  int
}

// SolveRevised is SolveRevisedWith without a workspace.
func (p *Problem[T]) SolveRevised() (*Solution[T], error) {
	return p.SolveRevisedWith(nil)
}

// SolveRevisedWith solves p with the sparse revised simplex method, drawing
// all solver state from ws exactly as SolveWith does for the dense tableau
// (nil ws allocates fresh; the returned Solution including X is owned by ws
// and overwritten by the next solve on it). It returns the same statuses
// and typed errors as SolveWith. Use it for large sparse programs — the
// exact System (1) instances — where the dense tableau's per-iteration
// O(m·n) row work dominates; for small or dense programs the tableau is
// simpler and just as fast.
//
//stretch:noalloc
func (p *Problem[T]) SolveRevisedWith(ws *Workspace[T]) (*Solution[T], error) {
	var rv *revised[T]
	if ws != nil {
		rv = &ws.rev
	} else {
		rv = &revised[T]{} //stretch:alloc-ok — nil-workspace path
	}
	rv.init(p, ws)
	sol := rv.solve()
	if sol.Status != Optimal {
		return sol, sol.Status.Err()
	}
	return sol, nil
}

// init binds the solver state to p and builds the sparse column matrix.
//
//stretch:noalloc
func (rv *revised[T]) init(p *Problem[T], ws *Workspace[T]) {
	ops := p.ops
	rv.ops, rv.prob, rv.ws = ops, p, ws
	m := len(p.cons)
	nSlack := 0
	for i := range p.cons {
		if p.cons[i].rel != EQ {
			nSlack++
		}
	}
	n := p.nvars + nSlack
	rv.m, rv.n = m, n
	rv.sinceRefac, rv.baseNNZ, rv.refacs, rv.failed = 0, 0, 0, false
	rv.cursor, rv.bland, rv.streak, rv.iters = 0, false, 0, 0
	rv.clampXB = true
	rv.dead = rv.dead[:0]
	rv.flip = growBoolSlice(rv.flip, m)

	// Count entries per column (structural from the sparse rows, one slack
	// entry per inequality row), then fill via prefix sums. Duplicate row
	// entries are kept; every consumer accumulates.
	nnz := nSlack
	for i := range p.cons {
		nnz += len(p.cons[i].vars)
	}
	rv.colStart = growIntSlice(rv.colStart, n+1)
	cnt := rv.colStart
	for j := range cnt {
		cnt[j] = 0
	}
	for i := range p.cons {
		for _, v := range p.cons[i].vars {
			cnt[v+1]++
		}
	}
	slack := p.nvars
	for i := range p.cons {
		if p.cons[i].rel != EQ {
			cnt[slack+1]++
			slack++
		}
	}
	for j := 1; j <= n; j++ {
		cnt[j] += cnt[j-1]
	}
	rv.colRow = growIntSlice(rv.colRow, nnz)
	rv.colVal = growSlice(rv.colVal, nnz)
	rv.b = growSlice(rv.b, m)
	// next[j] tracks the fill position of column j; reuse the pivoted /
	// newBasis scratch for it would alias, so use a dedicated pass over
	// colStart copied into newBasis (ints, pooled).
	rv.newBasis = growIntSlice(rv.newBasis, n+1)
	next := rv.newBasis
	copy(next, cnt)
	slack = p.nvars
	for r := range p.cons {
		c := &p.cons[r]
		neg := ops.Sign(c.rhs) < 0
		rv.flip[r] = neg
		rhs := c.rhs
		if neg {
			rhs = ops.Neg(rhs)
		}
		rv.b[r] = rhs
		for k, v := range c.vars {
			val := c.coefs[k]
			if neg {
				val = ops.Neg(val)
			}
			rv.colRow[next[v]] = r
			rv.colVal[next[v]] = val
			next[v]++
		}
		if c.rel != EQ {
			one := ops.One()
			if c.rel == GE {
				one = ops.Neg(one)
			}
			if neg {
				one = ops.Neg(one)
			}
			rv.colRow[next[slack]] = r
			rv.colVal[next[slack]] = one
			next[slack]++
			slack++
		}
	}

	rv.basis = growIntSlice(rv.basis, m)
	rv.pos = growIntSlice(rv.pos, n+m)
	for j := range rv.pos {
		rv.pos[j] = -1
	}
	rv.xB = growSlice(rv.xB, m)
	for r := 0; r < m; r++ {
		rv.basis[r] = n + r
		rv.pos[n+r] = r
		rv.xB[r] = rv.b[r]
	}
	rv.eta.reset()
	rv.cost = growSlice(rv.cost, n+m)
	rv.y = growSlice(rv.y, m)
	rv.alpha = growSlice(rv.alpha, m)
	rv.work = growSlice(rv.work, m)
	rv.pivoted = growBoolSlice(rv.pivoted, m)
}

// scatterCol writes column j (structural, slack or artificial) into the
// dense vector dst, accumulating duplicates.
//
//stretch:noalloc
func (rv *revised[T]) scatterCol(j int, dst []T) {
	ops := rv.ops
	for i := range dst {
		dst[i] = ops.Zero()
	}
	if j >= rv.n {
		dst[j-rv.n] = ops.One()
		return
	}
	for idx := rv.colStart[j]; idx < rv.colStart[j+1]; idx++ {
		r := rv.colRow[idx]
		dst[r] = ops.Add(dst[r], rv.colVal[idx])
	}
}

// ftran applies the eta file to x in place: x ← B⁻¹·x.
//
//stretch:noalloc
func (rv *revised[T]) ftran(x []T) {
	ops := rv.ops
	e := &rv.eta
	for k := 0; k < e.len(); k++ {
		r := e.piv[k]
		xr := x[r]
		if ops.Sign(xr) == 0 {
			continue
		}
		for idx := e.start[k]; idx < e.start[k+1]; idx++ {
			i := e.row[idx]
			if i == r {
				x[r] = ops.Mul(e.val[idx], xr)
			} else {
				x[i] = ops.MulAdd(x[i], e.val[idx], xr)
			}
		}
	}
}

// btran applies the transposed eta file to z in place: z ← z·B⁻¹.
//
//stretch:noalloc
func (rv *revised[T]) btran(z []T) {
	ops := rv.ops
	e := &rv.eta
	for k := e.len() - 1; k >= 0; k-- {
		s := ops.Zero()
		for idx := e.start[k]; idx < e.start[k+1]; idx++ {
			s = ops.MulAdd(s, z[e.row[idx]], e.val[idx])
		}
		z[e.piv[k]] = s
	}
}

// appendEta records the eta of a pivot on alpha at row r. A unit column
// (alpha == e_r) is the identity transformation and is skipped.
//
//stretch:noalloc
func (rv *revised[T]) appendEta(alpha []T, r int) {
	ops := rv.ops
	inv := ops.Div(ops.One(), alpha[r])
	unit := true
	for i := range alpha {
		if i != r && ops.Sign(alpha[i]) != 0 {
			unit = false
			break
		}
	}
	if unit && ops.Cmp(alpha[r], ops.One()) == 0 {
		return
	}
	e := &rv.eta
	e.piv = append(e.piv, r)
	for i := range alpha {
		switch {
		case i == r:
			e.row = append(e.row, r)
			e.val = append(e.val, inv)
		case ops.Sign(alpha[i]) != 0:
			e.row = append(e.row, i)
			e.val = append(e.val, ops.Neg(ops.Mul(alpha[i], inv)))
		}
	}
	e.start = append(e.start, len(e.row))
	rv.sinceRefac++
}

// reducedCost returns cost[j] − y·A_j for a structural or slack column.
//
//stretch:noalloc
func (rv *revised[T]) reducedCost(j int, y []T) T {
	ops := rv.ops
	d := rv.cost[j]
	for idx := rv.colStart[j]; idx < rv.colStart[j+1]; idx++ {
		d = ops.MulSub(d, y[rv.colRow[idx]], rv.colVal[idx])
	}
	return d
}

// price selects the entering column, or -1 at optimality. Partial Dantzig:
// scan blocks of columns from a moving cursor, stop at the first block that
// yields a candidate, pick its most negative reduced cost. Under Bland's
// rule the least-index negative column wins instead.
//
//stretch:noalloc
func (rv *revised[T]) price(y []T) int {
	ops := rv.ops
	n := rv.n
	if n == 0 {
		return -1
	}
	if rv.bland {
		for j := 0; j < n; j++ {
			if rv.pos[j] >= 0 || rv.isDead(j) {
				continue
			}
			if ops.Sign(rv.reducedCost(j, y)) < 0 {
				return j
			}
		}
		return -1
	}
	block := 64
	if nb := n / 16; nb > block {
		block = nb
	}
	enter := -1
	var best T
	j := rv.cursor % n
	for scanned := 0; scanned < n; {
		if rv.pos[j] < 0 && !rv.isDead(j) {
			if d := rv.reducedCost(j, y); ops.Sign(d) < 0 &&
				(enter == -1 || ops.Cmp(d, best) < 0) {
				enter, best = j, d
			}
		}
		scanned++
		if j++; j == n {
			j = 0
		}
		if scanned%block == 0 && enter != -1 {
			break
		}
	}
	rv.cursor = j
	return enter
}

// ratioTest returns the leaving row for the entering column alpha, or -1
// when the column is unbounded. Ties break on the smallest basis index,
// which together with Bland's entering rule guarantees termination.
//
//stretch:noalloc
func (rv *revised[T]) ratioTest(alpha []T) int {
	ops := rv.ops
	leave := -1
	var bestRatio T
	for r := 0; r < rv.m; r++ {
		if ops.Sign(alpha[r]) <= 0 {
			continue
		}
		ratio := ops.Div(rv.xB[r], alpha[r])
		if leave == -1 || ops.Cmp(ratio, bestRatio) < 0 ||
			(ops.Cmp(ratio, bestRatio) == 0 && rv.basis[r] < rv.basis[leave]) {
			leave, bestRatio = r, ratio
		}
	}
	return leave
}

// pivot applies the basis change: column enter becomes basic in row leave,
// with alpha = B⁻¹·A_enter already computed.
//
//stretch:noalloc
func (rv *revised[T]) pivot(leave, enter int, alpha []T) {
	ops := rv.ops
	degenerate := ops.Sign(rv.xB[leave]) == 0
	theta := ops.Div(rv.xB[leave], alpha[leave])
	nTheta := ops.Neg(theta)
	for i := range rv.xB {
		if i == leave || ops.Sign(alpha[i]) == 0 {
			continue
		}
		v := ops.MulAdd(rv.xB[i], nTheta, alpha[i])
		if rv.clampXB && ops.Sign(v) < 0 {
			// Degenerate negative dust from float cancellation, exactly as
			// the dense tableau clamps its rhs column. During dual repair
			// (clampXB off) negative basic values are the working state.
			v = ops.Zero()
		}
		rv.xB[i] = v
	}
	rv.xB[leave] = theta
	rv.appendEta(alpha, leave)
	rv.pos[rv.basis[leave]] = -1
	rv.basis[leave] = enter
	rv.pos[enter] = leave

	if degenerate {
		rv.streak++
		// A long degenerate streak risks cycling under Dantzig pricing;
		// Bland's rule cannot cycle. A later strict improvement proves the
		// vertex changed, so Dantzig can safely resume.
		if rv.streak > 4*(rv.m+rv.n) {
			rv.bland = true
		}
	} else {
		rv.streak = 0
		rv.bland = false
	}
}

// shouldRefactor reports whether the eta file has outgrown its usefulness.
// Every FTRAN/BTRAN pays the whole accumulated file; a rebuild replaces it
// with a fresh factorisation of the current basis (≈ baseNNZ nonzeros, as
// measured after the previous rebuild). Rebuilding therefore pays for
// itself within a few iterations once the *appended* nonzeros alone exceed
// a fresh file — the m slack term keeps small programs, whose rebuild
// overhead is proportionally larger, from thrashing. The eta-count cap
// bounds the file (and the exact backend's rational growth) when pivots
// are so sparse the nnz trigger would let it run indefinitely.
//
//stretch:noalloc
func (rv *revised[T]) shouldRefactor() bool {
	if rv.sinceRefac == 0 {
		return false
	}
	if rv.sinceRefac >= revisedRefactorEvery {
		return true
	}
	appended := len(rv.eta.row) - rv.baseNNZ
	return appended > rv.baseNNZ+rv.m
}

// refactorize rebuilds the eta file from scratch as the PFI factorisation
// of the current basis (one FTRAN + eta per row), reassigning basis rows as
// the elimination pivots dictate, and recomputes xB. On the exact backend
// this also resets the rational magnitude of the file: eta entries are
// derived from the current basis alone, not from the pivot history.
//
//stretch:noalloc
func (rv *revised[T]) refactorize() {
	m := rv.m
	rv.refacs++
	rv.eta.reset()
	for i := 0; i < m; i++ {
		rv.pivoted[i] = false
	}
	rv.newBasis = growIntSlice(rv.newBasis, m)
	for r := 0; r < m; r++ {
		v := rv.basis[r]
		rv.scatterCol(v, rv.alpha)
		rv.ftran(rv.alpha)
		pr := rv.pickPivotRow(rv.alpha, r)
		if pr == -1 {
			// Numerically singular under the float tolerance — impossible
			// in exact arithmetic, where the basis is invertible by the
			// simplex invariant. The half-built file cannot be completed
			// consistently, so the solve aborts with IterLimit rather than
			// continue on corrupted arithmetic.
			rv.failed = true
			return
		}
		rv.appendEta(rv.alpha, pr)
		rv.pivoted[pr] = true
		rv.newBasis[pr] = v
	}
	copy(rv.basis, rv.newBasis[:m])
	for j := range rv.pos {
		rv.pos[j] = -1
	}
	for r, v := range rv.basis {
		rv.pos[v] = r
	}
	rv.recomputeXB()
	// Reset the cadence only now: appendEta counted the rebuild's own etas
	// into sinceRefac, and leaving that count in place would re-trigger a
	// refactorisation on the very next iteration once the basis holds
	// revisedRefactorEvery non-unit columns — every paper-scale basis does.
	// baseNNZ snapshots the fresh file's size for the nnz trigger the same
	// way: measured after the rebuild, so its own etas never count as
	// growth.
	rv.sinceRefac = 0
	rv.baseNNZ = len(rv.eta.row)
}

// recomputeXB solves B·xB = b through the current eta file.
//
//stretch:noalloc
func (rv *revised[T]) recomputeXB() {
	ops := rv.ops
	copy(rv.work, rv.b)
	rv.ftran(rv.work)
	for i := range rv.xB {
		v := rv.work[i]
		if rv.clampXB && ops.Sign(v) < 0 {
			v = ops.Zero()
		}
		rv.xB[i] = v
	}
}

// optimize runs revised simplex iterations under the current cost vector
// until optimality, unboundedness or the iteration cap. Refactorisation
// happens here, between iterations, never inside pivot: a refactorisation
// may permute basis rows, which callers that iterate over rows themselves
// (driveOutArtificials) must not observe mid-scan.
//
//stretch:noalloc
func (rv *revised[T]) optimize() Status {
	limit := maxIterFactor * (rv.m + rv.n + 1)
	for iter := 0; ; iter++ {
		if iter > limit {
			return IterLimit
		}
		rv.iters++
		if rv.shouldRefactor() {
			rv.refactorize()
			if rv.failed {
				return IterLimit
			}
		}
		// y = c_B · B⁻¹.
		for i := 0; i < rv.m; i++ {
			rv.y[i] = rv.cost[rv.basis[i]]
		}
		rv.btran(rv.y)
		enter := rv.price(rv.y)
		if enter == -1 {
			return Optimal
		}
		rv.scatterCol(enter, rv.alpha)
		rv.ftran(rv.alpha)
		leave := rv.ratioTest(rv.alpha)
		if leave == -1 {
			return Unbounded
		}
		rv.pivot(leave, enter, rv.alpha)
	}
}

// objective returns the current phase's objective value c_B·xB.
//
//stretch:noalloc
func (rv *revised[T]) objective() T {
	ops := rv.ops
	val := ops.Zero()
	for r, v := range rv.basis {
		val = ops.MulAdd(val, rv.cost[v], rv.xB[r])
	}
	return val
}

// solution assembles the result in the workspace slot, mirroring
// tableau.solution.
func (rv *revised[T]) solution(s Solution[T]) *Solution[T] {
	if rv.ws != nil {
		rv.ws.sol = s
		return &rv.ws.sol
	}
	out := s
	return &out
}

//stretch:noalloc
func (rv *revised[T]) solve() *Solution[T] {
	ops := rv.ops

	// Phase 1: minimise the sum of the artificial variables.
	for j := 0; j < rv.n; j++ {
		rv.cost[j] = ops.Zero()
	}
	for j := rv.n; j < rv.n+rv.m; j++ {
		rv.cost[j] = ops.One()
	}
	status := rv.optimize()
	if status != Optimal {
		return rv.solution(Solution[T]{Status: status, Iterations: rv.iters})
	}
	if ops.Sign(rv.objective()) > 0 {
		return rv.solution(Solution[T]{Status: Infeasible, Iterations: rv.iters})
	}
	rv.driveOutArtificials()

	// Phase 2: the original objective (negated when maximising); artificial
	// columns never price in (price scans structural+slack only), and the
	// ones still basic sit at zero in rows proven dependent, where every
	// FTRAN entry stays zero.
	rv.setPhase2Costs()
	rv.cursor, rv.bland, rv.streak = 0, false, 0
	status = rv.optimize()
	if status != Optimal {
		return rv.solution(Solution[T]{Status: status, Iterations: rv.iters})
	}

	val := rv.objective()
	if rv.prob.maximize {
		val = ops.Neg(val)
	}
	var x []T
	if rv.ws != nil {
		rv.ws.x = growSlice(rv.ws.x, rv.prob.nvars)
		x = rv.ws.x
	} else {
		x = make([]T, rv.prob.nvars) //stretch:alloc-ok — nil-workspace path
	}
	for j := range x {
		x[j] = ops.Zero()
	}
	for r, v := range rv.basis {
		if v < rv.prob.nvars {
			x[v] = rv.xB[r]
		}
	}
	return rv.solution(Solution[T]{Status: Optimal, X: x, Objective: val, Iterations: rv.iters})
}

// driveOutArtificials pivots every artificial still basic after phase 1
// (necessarily at value zero) out of the basis where a structural or slack
// column can replace it; rows admitting no replacement are linearly
// dependent, and their FTRAN entry stays zero for every remaining column,
// so the parked artificial never re-enters play.
//
//stretch:noalloc
func (rv *revised[T]) driveOutArtificials() {
	ops := rv.ops
	for r := 0; r < rv.m; r++ {
		if rv.basis[r] < rv.n {
			continue
		}
		// rho = e_r · B⁻¹: row r of the inverse, for sparse dots against
		// candidate columns.
		for i := range rv.work {
			rv.work[i] = ops.Zero()
		}
		rv.work[r] = ops.One()
		rv.btran(rv.work)
		for j := 0; j < rv.n; j++ {
			if rv.pos[j] >= 0 || rv.isDead(j) {
				continue
			}
			d := ops.Zero()
			for idx := rv.colStart[j]; idx < rv.colStart[j+1]; idx++ {
				d = ops.MulAdd(d, rv.work[rv.colRow[idx]], rv.colVal[idx])
			}
			if ops.Sign(d) == 0 {
				continue
			}
			rv.scatterCol(j, rv.alpha)
			rv.ftran(rv.alpha)
			if ops.Sign(rv.alpha[r]) == 0 {
				continue // tolerance disagreement; try the next column
			}
			rv.pivot(r, j, rv.alpha)
			break
		}
	}
}

// isDead reports whether column j was dropped by the incremental session.
//
//stretch:noalloc
func (rv *revised[T]) isDead(j int) bool {
	return j < len(rv.dead) && rv.dead[j]
}

// pickPivotRow returns the elimination pivot row for the FTRAN'd column
// alpha: the preferred row when it is still unpivoted with a nonzero entry,
// otherwise the unpivoted row of largest magnitude (for float stability; on
// the exact backend any nonzero works), or -1 when no unpivoted row has a
// nonzero entry.
//
//stretch:noalloc
func (rv *revised[T]) pickPivotRow(alpha []T, prefer int) int {
	ops := rv.ops
	if prefer >= 0 && !rv.pivoted[prefer] && ops.Sign(alpha[prefer]) != 0 {
		return prefer
	}
	pr := -1
	var best T
	for i := 0; i < rv.m; i++ {
		if rv.pivoted[i] || ops.Sign(alpha[i]) == 0 {
			continue
		}
		av := alpha[i]
		if ops.Sign(av) < 0 {
			av = ops.Neg(av)
		}
		if pr == -1 || ops.Cmp(av, best) > 0 {
			pr, best = i, av
		}
	}
	return pr
}

// setPhase2Costs loads the problem's objective (negated when maximising)
// into the cost vector, zeroing slack and artificial costs.
//
//stretch:noalloc
func (rv *revised[T]) setPhase2Costs() {
	ops := rv.ops
	for j := 0; j < rv.n+rv.m; j++ {
		rv.cost[j] = ops.Zero()
	}
	for j := 0; j < rv.prob.nvars; j++ {
		c := rv.prob.obj[j]
		if rv.prob.maximize {
			c = ops.Neg(c)
		}
		rv.cost[j] = c
	}
}

// growBoolSlice is growSlice for []bool.
func growBoolSlice(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
