package lp

import (
	"math"
	"testing"
)

// buildBoxProblem fills p with the box-constrained maximisation used across
// the solver tests: max Σ (v+1)·x_v, x_v ≤ 10, Σ x_v ≤ 20.
func buildBoxProblem(p *Problem[float64], nvars int) {
	p.SetMaximize(true)
	row := make([]float64, nvars)
	ones := make([]float64, nvars)
	for v := 0; v < nvars; v++ {
		p.SetObjectiveCoef(v, float64(v+1))
		for i := range row {
			row[i] = 0
		}
		row[v] = 1
		p.AddDense(row, LE, 10)
		ones[v] = 1
	}
	p.AddDense(ones, LE, 20)
}

// TestSolveWithWorkspaceMatchesSolve: a pooled solve must agree with a fresh
// solve bit-for-bit, across problems of different shapes interleaved through
// one workspace (including an infeasible one, which exercises the redundant
// row compaction's buffer parking).
func TestSolveWithWorkspaceMatchesSolve(t *testing.T) {
	ws := NewWorkspace[float64]()
	pooled := New[float64](NewFloat64Ops(), 0)
	for _, nvars := range []int{6, 2, 9, 4} {
		fresh := New[float64](NewFloat64Ops(), nvars)
		buildBoxProblem(fresh, nvars)
		pooled.Reset(nvars)
		buildBoxProblem(pooled, nvars)

		want, err := fresh.Solve()
		if err != nil {
			t.Fatal(err)
		}
		got, err := pooled.SolveWith(ws)
		if err != nil {
			t.Fatal(err)
		}
		if got.Objective != want.Objective || got.Status != want.Status {
			t.Fatalf("nvars=%d: pooled (%v, %v), fresh (%v, %v)",
				nvars, got.Status, got.Objective, want.Status, want.Objective)
		}
		for v := range want.X {
			if got.X[v] != want.X[v] {
				t.Fatalf("nvars=%d: x[%d] = %v, fresh %v", nvars, v, got.X[v], want.X[v])
			}
		}

		// An infeasible program between feasible ones must not poison reuse.
		pooled.Reset(1)
		pooled.AddDense([]float64{1}, GE, 5)
		pooled.AddDense([]float64{1}, LE, 2)
		if _, err := pooled.SolveWith(ws); err == nil {
			t.Fatal("infeasible program solved")
		}
	}
}

// TestSolveWithWorkspaceSteadyStateAllocs: rebuilding and solving the same
// float64 program through one Problem+Workspace must reach zero steady-state
// allocations (the exact rational backend allocates per arithmetic op by
// design and is exempt).
func TestSolveWithWorkspaceSteadyStateAllocs(t *testing.T) {
	ws := NewWorkspace[float64]()
	p := New[float64](NewFloat64Ops(), 0)
	coef := make([]float64, 6)
	run := func() {
		p.Reset(6)
		p.SetMaximize(true)
		for v := 0; v < 6; v++ {
			p.SetObjectiveCoef(v, float64(v+1))
			for i := range coef {
				coef[i] = 0
			}
			coef[v] = 1
			p.AddDense(coef, LE, 10)
		}
		for i := range coef {
			coef[i] = 1
		}
		p.AddDense(coef, LE, 20)
		sol, err := p.SolveWith(ws)
		if err != nil || math.IsNaN(sol.Objective) {
			t.Fatal("solve failed")
		}
	}
	run()
	if allocs := testing.AllocsPerRun(30, run); allocs != 0 {
		t.Fatalf("steady-state SolveWith allocates %.1f objects/op, want 0", allocs)
	}
}
