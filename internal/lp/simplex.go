package lp

import (
	"errors"
	"fmt"
)

// Rel is the relation of a linear constraint.
type Rel int

const (
	LE Rel = iota // Σ a_k x_k ≤ b
	GE            // Σ a_k x_k ≥ b
	EQ            // Σ a_k x_k = b
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Rel(%d)", int(r))
}

// Status is the outcome of a solve.
type Status int

const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// ErrNotOptimal is wrapped by Solve when the problem has no optimum. The
// typed sentinels below wrap it and name the concrete non-optimal status,
// so callers can tell an infeasible program from a cycling one:
//
//	errors.Is(err, lp.ErrNotOptimal) // any non-optimal outcome
//	errors.Is(err, lp.ErrInfeasible) // specifically no feasible point
var ErrNotOptimal = errors.New("lp: no optimal solution")

// Typed non-optimal outcomes, each wrapping ErrNotOptimal.
var (
	ErrInfeasible = fmt.Errorf("%w: infeasible", ErrNotOptimal)
	ErrUnbounded  = fmt.Errorf("%w: unbounded", ErrNotOptimal)
	ErrIterLimit  = fmt.Errorf("%w: iteration limit reached", ErrNotOptimal)
)

// Err returns the typed sentinel for a non-optimal status, or nil for
// Optimal.
func (s Status) Err() error {
	switch s {
	case Optimal:
		return nil
	case Infeasible:
		return ErrInfeasible
	case Unbounded:
		return ErrUnbounded
	case IterLimit:
		return ErrIterLimit
	}
	return fmt.Errorf("%w: %v", ErrNotOptimal, s)
}

// constraint is one row Σ coefs[k]·x[vars[k]] rel rhs, stored sparsely.
// Entries may repeat a variable; consumers accumulate. Sparse rows are what
// let both solvers scale: the dense tableau scatters them once into its
// rows, and the revised solver transposes them into sparse columns, so a
// System (1) program with ~95% zeros never materialises its zero entries.
type constraint[T any] struct {
	vars  []int
	coefs []T
	rel   Rel
	rhs   T
}

// Problem is a linear program over nonnegative variables:
//
//	minimise (or maximise)  c·x
//	subject to              A_k · x  {≤,=,≥}  b_k     for every constraint k
//	                        x ≥ 0
//
// All variables are implicitly nonnegative, which matches every program in
// this repository (fractions of work and stretch bounds are nonnegative).
type Problem[T any] struct {
	ops      Ops[T]
	nvars    int
	obj      []T
	maximize bool
	cons     []constraint[T]
}

// New returns an empty problem with nvars nonnegative variables and an
// all-zero minimisation objective.
func New[T any](ops Ops[T], nvars int) *Problem[T] {
	if nvars < 0 {
		panic("lp: negative variable count")
	}
	obj := make([]T, nvars)
	for i := range obj {
		obj[i] = ops.Zero()
	}
	return &Problem[T]{ops: ops, nvars: nvars, obj: obj}
}

// NumVars returns the number of variables.
func (p *Problem[T]) NumVars() int { return p.nvars }

// NumConstraints returns the number of constraints added so far.
func (p *Problem[T]) NumConstraints() int { return len(p.cons) }

// SetObjectiveCoef sets the objective coefficient of variable v.
func (p *Problem[T]) SetObjectiveCoef(v int, c T) {
	p.obj[v] = c
}

// SetMaximize switches the problem to maximisation (default is minimisation).
func (p *Problem[T]) SetMaximize(maximize bool) { p.maximize = maximize }

// AddDense adds the constraint coef·x rel rhs. coef may be shorter than the
// variable count; missing coefficients are zero. Only entries with nonzero
// Sign are stored; the slice is not retained.
func (p *Problem[T]) AddDense(coef []T, rel Rel, rhs T) {
	if len(coef) > p.nvars {
		panic("lp: constraint wider than variable count")
	}
	c := p.appendCon()
	for v, val := range coef {
		if p.ops.Sign(val) != 0 {
			c.vars = append(c.vars, v)
			c.coefs = append(c.coefs, val)
		}
	}
	c.rel, c.rhs = rel, rhs
}

// AddSparse adds the constraint Σ coefs[k]·x[vars[k]] rel rhs. A variable
// may appear more than once; its coefficients accumulate. The slices are
// not retained.
func (p *Problem[T]) AddSparse(vars []int, coefs []T, rel Rel, rhs T) {
	if len(vars) != len(coefs) {
		panic("lp: vars/coefs length mismatch")
	}
	c := p.appendCon()
	for k, v := range vars {
		if v < 0 || v >= p.nvars {
			panic("lp: variable index out of range")
		}
		if p.ops.Sign(coefs[k]) != 0 {
			c.vars = append(c.vars, v)
			c.coefs = append(c.coefs, coefs[k])
		}
	}
	c.rel, c.rhs = rel, rhs
}

// Solution is the result of a successful solve.
type Solution[T any] struct {
	Status     Status
	X          []T // variable values, length NumVars
	Objective  T   // objective value in the problem's own sense
	Iterations int
}

// Solve runs the two-phase primal simplex method and returns the optimal
// solution, or an error wrapping ErrNotOptimal if the problem is infeasible
// or unbounded.
func (p *Problem[T]) Solve() (*Solution[T], error) {
	return p.SolveWith(nil)
}

// SolveWith is Solve drawing all tableau and solution buffers from ws, so
// repeated solves of similarly-shaped programs reuse solver state instead of
// reallocating it. A nil ws behaves exactly like Solve. The returned
// Solution (including X) is owned by ws and overwritten by the next
// SolveWith on it.
//
//stretch:noalloc
func (p *Problem[T]) SolveWith(ws *Workspace[T]) (*Solution[T], error) {
	t := newTableau(p, ws)
	sol := t.solve()
	if sol.Status != Optimal {
		return sol, sol.Status.Err()
	}
	return sol, nil
}

// tableau is the dense simplex working state in standard equality form
// min c·x, Ax = b, x ≥ 0 with b ≥ 0.
type tableau[T any] struct {
	ops   Ops[T]
	prob  *Problem[T]
	ws    *Workspace[T]
	m, n  int   // rows, structural+slack columns (artificials after n)
	a     [][]T // m rows × (n + nart) coefficient matrix
	b     []T   // m, right-hand sides (kept ≥ 0)
	basis []int // m, column index basic in each row
	z     []T   // reduced-cost scratch of optimize
	nart  int
	iters int
}

const maxIterFactor = 200 // iteration cap = maxIterFactor * (m + n)

//stretch:noalloc
func newTableau[T any](p *Problem[T], ws *Workspace[T]) *tableau[T] {
	ops := p.ops
	m := len(p.cons)
	nSlack := 0
	for _, c := range p.cons {
		if c.rel != EQ {
			nSlack++
		}
	}
	n := p.nvars + nSlack
	var t *tableau[T]
	if ws != nil {
		t = &ws.tab
	} else {
		t = &tableau[T]{} //stretch:alloc-ok — nil-workspace path
	}
	t.ops, t.prob, t.ws = ops, p, ws
	t.m, t.n = m, n
	t.nart, t.iters = 0, 0
	if cap(t.a) < m {
		t.a = make([][]T, m) //stretch:alloc-ok — buffer growth
	}
	t.a = t.a[:m]
	t.b = growSlice(t.b, m)
	t.basis = growIntSlice(t.basis, m)

	// Rows are sized to the full phase-1 width n+m up front, with the
	// artificial columns zeroed, so solve() fills them in place instead of
	// appending.
	width := n + m
	slack := p.nvars
	for r := range p.cons {
		c := &p.cons[r]
		row := growSlice(t.a[r], width)
		for j := range row {
			row[j] = ops.Zero()
		}
		for k, v := range c.vars {
			row[v] = ops.Add(row[v], c.coefs[k])
		}
		rhs := c.rhs
		switch c.rel {
		case LE:
			row[slack] = ops.One()
			slack++
		case GE:
			row[slack] = ops.Neg(ops.One())
			slack++
		}
		// Normalise to rhs ≥ 0 so phase 1 can start from the artificials.
		if ops.Sign(rhs) < 0 {
			for j := range row {
				row[j] = ops.Neg(row[j])
			}
			rhs = ops.Neg(rhs)
		}
		t.a[r] = row
		t.b[r] = rhs
	}
	return t
}

// solution assembles the result, drawing the Solution struct from the
// workspace when one is attached.
func (t *tableau[T]) solution(s Solution[T]) *Solution[T] {
	if t.ws != nil {
		t.ws.sol = s
		return &t.ws.sol
	}
	out := s
	return &out
}

//stretch:noalloc
func (t *tableau[T]) solve() *Solution[T] {
	ops := t.ops

	// Phase 1: one artificial per row (columns pre-zeroed by newTableau),
	// minimise their sum.
	t.nart = t.m
	for r := 0; r < t.m; r++ {
		t.a[r][t.n+r] = ops.One()
		t.basis[r] = t.n + r
	}
	var phase1Obj []T
	if t.ws != nil {
		t.ws.phase1 = growSlice(t.ws.phase1, t.n+t.nart)
		phase1Obj = t.ws.phase1
	} else {
		phase1Obj = make([]T, t.n+t.nart) //stretch:alloc-ok — nil-workspace path
	}
	for j := 0; j < t.n; j++ {
		phase1Obj[j] = ops.Zero()
	}
	for j := t.n; j < t.n+t.nart; j++ {
		phase1Obj[j] = ops.One()
	}
	status, val := t.optimize(phase1Obj)
	if status != Optimal {
		return t.solution(Solution[T]{Status: status, Iterations: t.iters})
	}
	if ops.Sign(val) > 0 {
		return t.solution(Solution[T]{Status: Infeasible, Iterations: t.iters})
	}
	t.driveOutArtificials()
	// Drop artificial columns and any redundant row whose artificial could
	// not be driven out (such rows are identically zero with zero rhs).
	// Dropped rows keep their (full-capacity) backing arrays parked in the
	// tail slots of t.a so a future reuse never aliases two rows.
	keep := 0
	for r := 0; r < t.m; r++ {
		if t.basis[r] >= t.n {
			continue
		}
		row := t.a[r]
		t.a[r] = t.a[keep]
		t.a[keep] = row[:t.n]
		t.basis[keep] = t.basis[r]
		t.b[keep] = t.b[r]
		keep++
	}
	t.a = t.a[:keep]
	t.basis = t.basis[:keep]
	t.b = t.b[:keep]
	t.m = keep
	t.nart = 0

	// Phase 2: original objective (negated if maximising).
	var obj []T
	if t.ws != nil {
		t.ws.phase2 = growSlice(t.ws.phase2, t.n)
		obj = t.ws.phase2
	} else {
		obj = make([]T, t.n) //stretch:alloc-ok — nil-workspace path
	}
	for j := range obj {
		obj[j] = ops.Zero()
	}
	for j := 0; j < t.prob.nvars; j++ {
		c := t.prob.obj[j]
		if t.prob.maximize {
			c = ops.Neg(c)
		}
		obj[j] = c
	}
	status, val = t.optimize(obj)
	if status != Optimal {
		return t.solution(Solution[T]{Status: status, Iterations: t.iters})
	}

	var x []T
	if t.ws != nil {
		t.ws.x = growSlice(t.ws.x, t.prob.nvars)
		x = t.ws.x
	} else {
		x = make([]T, t.prob.nvars) //stretch:alloc-ok — nil-workspace path
	}
	for j := range x {
		x[j] = ops.Zero()
	}
	for r, bj := range t.basis {
		if bj < t.prob.nvars {
			x[bj] = t.b[r]
		}
	}
	if t.prob.maximize {
		val = ops.Neg(val)
	}
	return t.solution(Solution[T]{Status: Optimal, X: x, Objective: val, Iterations: t.iters})
}

// driveOutArtificials pivots any artificial variable that is still basic at
// value zero out of the basis (or verifies its row is redundant).
//
//stretch:noalloc
func (t *tableau[T]) driveOutArtificials() {
	ops := t.ops
	for r := 0; r < t.m; r++ {
		if t.basis[r] < t.n {
			continue
		}
		// Find any non-artificial column with a nonzero coefficient.
		pivoted := false
		for j := 0; j < t.n; j++ {
			if ops.Sign(t.a[r][j]) != 0 {
				t.pivot(r, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: every structural coefficient is zero, and so is
			// b (phase 1 ended at zero). Leave the artificial basic at zero;
			// it can never turn positive because its row is identically zero.
			continue
		}
	}
}

// optimize runs primal simplex iterations for the reduced costs of obj.
// It returns Optimal with the objective value, or Unbounded / IterLimit.
//
//stretch:noalloc
func (t *tableau[T]) optimize(obj []T) (Status, T) {
	ops := t.ops
	width := t.n + t.nart
	// z[j] = reduced cost of column j; zval = current objective value.
	t.z = growSlice(t.z, width)
	z := t.z
	limit := maxIterFactor * (t.m + width + 1)

	recompute := func() T { //stretch:alloc-ok — non-escaping closure
		// reduced cost c_j - c_B · B^{-1} A_j, computed from the tableau:
		// since rows are already B^{-1}A, it is c_j - Σ_r c_basis[r]·a[r][j].
		val := ops.Zero()
		for j := 0; j < width; j++ {
			z[j] = obj[j]
		}
		for r := 0; r < t.m; r++ {
			cb := obj[t.basis[r]]
			if ops.Sign(cb) == 0 {
				continue
			}
			ncb := ops.Neg(cb)
			row := t.a[r]
			for j := 0; j < width; j++ {
				z[j] = ops.MulAdd(z[j], ncb, row[j])
			}
			val = ops.MulAdd(val, cb, t.b[r])
		}
		return val
	}
	val := recompute()

	bland := false
	for iter := 0; ; iter++ {
		if iter > limit {
			return IterLimit, val
		}
		t.iters++
		// After many Dantzig iterations, switch to Bland's rule, which
		// guarantees termination in the presence of degeneracy.
		if iter > 4*(t.m+width) {
			bland = true
		}

		enter := -1
		if bland {
			for j := 0; j < width; j++ {
				if t.isBasic(j) {
					continue
				}
				if ops.Sign(z[j]) < 0 {
					enter = j
					break
				}
			}
		} else {
			var best T
			for j := 0; j < width; j++ {
				if ops.Sign(z[j]) < 0 && (enter == -1 || ops.Cmp(z[j], best) < 0) {
					enter, best = j, z[j]
				}
			}
		}
		if enter == -1 {
			return Optimal, val
		}

		// Ratio test: leaving row minimises b_r / a[r][enter] over positive
		// pivot entries; ties broken by smallest basis index (lexicographic
		// enough for our sizes together with the Bland fallback).
		leave := -1
		var bestRatio T
		for r := 0; r < t.m; r++ {
			arj := t.a[r][enter]
			if ops.Sign(arj) <= 0 {
				continue
			}
			ratio := ops.Div(t.b[r], arj)
			if leave == -1 || ops.Cmp(ratio, bestRatio) < 0 ||
				(ops.Cmp(ratio, bestRatio) == 0 && t.basis[r] < t.basis[leave]) {
				leave, bestRatio = r, ratio
			}
		}
		if leave == -1 {
			return Unbounded, val
		}

		t.pivot(leave, enter)

		// Update reduced costs incrementally: z ← z - z[enter]·(pivot row).
		ze := z[enter]
		if ops.Sign(ze) != 0 {
			nze := ops.Neg(ze)
			row := t.a[leave]
			for j := 0; j < width; j++ {
				z[j] = ops.MulAdd(z[j], nze, row[j])
			}
			val = ops.MulAdd(val, ze, t.b[leave])
		}
		z[enter] = ops.Zero()
	}
}

//stretch:noalloc
func (t *tableau[T]) isBasic(col int) bool {
	for _, b := range t.basis {
		if b == col {
			return true
		}
	}
	return false
}

// pivot makes column col basic in row row using Gauss-Jordan elimination.
//
//stretch:noalloc
func (t *tableau[T]) pivot(row, col int) {
	ops := t.ops
	width := len(t.a[row])
	piv := t.a[row][col]
	if ops.Sign(piv) == 0 {
		panic("lp: zero pivot")
	}
	inv := ops.Div(ops.One(), piv)
	prow := t.a[row]
	for j := 0; j < width; j++ {
		prow[j] = ops.Mul(prow[j], inv)
	}
	prow[col] = ops.One() // avoid drift in the float backend
	t.b[row] = ops.Mul(t.b[row], inv)

	for r := 0; r < t.m; r++ {
		if r == row {
			continue
		}
		factor := t.a[r][col]
		if ops.Sign(factor) == 0 {
			t.a[r][col] = ops.Zero()
			continue
		}
		nf := ops.Neg(factor)
		arow := t.a[r]
		for j := 0; j < width; j++ {
			arow[j] = ops.MulAdd(arow[j], nf, prow[j])
		}
		arow[col] = ops.Zero()
		t.b[r] = ops.MulAdd(t.b[r], nf, t.b[row])
		// Degenerate negative dust from float cancellation: clamp to zero so
		// the ratio test stays consistent.
		if ops.Sign(t.b[r]) < 0 {
			t.b[r] = ops.Zero()
		}
	}
	t.basis[row] = col
}
