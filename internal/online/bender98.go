package online

import (
	"math"

	"stretchsched/internal/model"
	"stretchsched/internal/offline"
	"stretchsched/internal/sim"
)

// Bender98 is the O(√∆)-competitive online algorithm of Bender, Chakrabarti
// and Muthukrishnan (SODA'98), as described in §4.3.2: at every arrival it
// recomputes the optimal *offline* max-stretch S* of all jobs released so
// far (from scratch, with their original release dates and full sizes —
// ignoring the executed work), sets expanded deadlines
//
//	d̄_j = r_j + α · S* · p*_j,   α = √∆,
//
// and runs Earliest Deadline First. The full offline solve per arrival is
// what makes the algorithm prohibitively expensive (§5.3 restricts it to
// 3-site platforms; so does this repository's harness).
type Bender98 struct {
	// Alpha overrides the expansion factor; 0 means √∆ as in the paper.
	Alpha float64

	ws       *offline.Workspace
	deadline []float64
	released int
}

// NewBender98 returns the heuristic with the paper's α = √∆.
func NewBender98() *Bender98 { return &Bender98{} }

// SetWorkspace attaches a pooled solver workspace for the per-arrival
// offline solves — the dominant cost of this algorithm (§5.3). Must not be
// called mid-run.
func (b *Bender98) SetWorkspace(ws *offline.Workspace) { b.ws = ws }

// Name implements sim.Policy.
func (b *Bender98) Name() string { return "Bender98" }

// Init implements sim.Policy.
func (b *Bender98) Init(inst *model.Instance) {
	n := inst.NumJobs()
	if cap(b.deadline) < n {
		b.deadline = make([]float64, n)
	}
	b.deadline = b.deadline[:n]
	for j := range b.deadline {
		b.deadline[j] = math.Inf(1)
	}
	b.released = 0
}

// OnEvent recomputes deadlines when new jobs have been released.
func (b *Bender98) OnEvent(ctx *sim.Ctx) {
	released := 0
	for _, r := range ctx.Released {
		if r {
			released++
		}
	}
	if released == b.released {
		return
	}
	b.released = released

	// Offline problem over all released jobs, from scratch.
	var prob *offline.Problem
	if b.ws != nil {
		prob = b.ws.Problem(ctx.Inst)
	} else {
		prob = &offline.Problem{Inst: ctx.Inst}
	}
	minAlone, maxAlone := math.Inf(1), 0.0
	for j := range ctx.Released {
		if !ctx.Released[j] {
			continue
		}
		id := model.JobID(j)
		alone := ctx.Inst.AloneTime(id)
		minAlone = math.Min(minAlone, alone)
		maxAlone = math.Max(maxAlone, alone)
		prob.Tasks = append(prob.Tasks, offline.Task{
			Job:     id,
			Release: ctx.Inst.Jobs[j].Release,
			Work:    ctx.Inst.Jobs[j].Size,
			DeadA:   ctx.Inst.Jobs[j].Release,
			DeadB:   alone,
		})
	}
	var solver offline.Solver
	sol, err := solver.OptimalStretch(prob)
	if err != nil {
		return // keep previous deadlines on numeric failure
	}
	alpha := b.Alpha
	if alpha == 0 {
		alpha = math.Sqrt(math.Max(1, maxAlone/minAlone))
	}
	for j := range ctx.Released {
		if !ctx.Released[j] {
			continue
		}
		id := model.JobID(j)
		b.deadline[j] = ctx.Inst.Jobs[j].Release + alpha*sol.Stretch*ctx.Inst.AloneTime(id)
	}
}

// Less implements sim.Policy: EDF over the expanded deadlines, ties to the
// smaller job.
func (b *Bender98) Less(ctx *sim.Ctx, x, y model.JobID) bool {
	dx, dy := b.deadline[x], b.deadline[y]
	if dx != dy {
		return dx < dy
	}
	return ctx.Inst.AloneTime(x) < ctx.Inst.AloneTime(y)
}
