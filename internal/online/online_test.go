package online

import (
	"math"
	"math/rand"
	"testing"

	"stretchsched/internal/model"
	"stretchsched/internal/offline"
	"stretchsched/internal/sim"
)

func randomInstance(t *testing.T, seed int64, nm, nb, nj int) *model.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ms := make([]model.Machine, nm)
	for i := range ms {
		var banks []model.DatabankID
		for b := 0; b < nb; b++ {
			if i == 0 || rng.Float64() < 0.6 {
				banks = append(banks, model.DatabankID(b))
			}
		}
		ms[i] = model.Machine{Speed: 0.5 + 2*rng.Float64(), Databanks: banks}
	}
	p, err := model.NewPlatform(ms, nb)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]model.Job, nj)
	for j := range jobs {
		jobs[j] = model.Job{
			Release:  rng.Float64() * 8,
			Size:     0.5 + 4*rng.Float64(),
			Databank: model.DatabankID(rng.Intn(nb)),
		}
	}
	inst, err := model.NewInstance(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestNames(t *testing.T) {
	if New(Plain).Name() != "Online" || New(EDF).Name() != "Online-EDF" {
		t.Fatal("variant names")
	}
	if NewNonOptimized().Name() != "Online-NonOpt" {
		t.Fatal("non-optimised name")
	}
	if NewEGDF().Name() != "Online-EGDF" || NewBender98().Name() != "Bender98" {
		t.Fatal("policy names")
	}
}

// TestOnlineValidNearOptimal: every online variant produces valid schedules
// with max-stretch close to the offline optimum on random instances — the
// paper's central experimental finding for Online and Online-EDF.
func TestOnlineValidNearOptimal(t *testing.T) {
	var degOnline, degEGDF float64
	n := 0
	for seed := int64(0); seed < 8; seed++ {
		inst := randomInstance(t, seed, 2, 2, 6)
		opt, err := offline.Optimal(inst)
		if err != nil {
			t.Fatal(err)
		}
		for _, variant := range []Variant{Plain, EDF} {
			h := New(variant)
			sched, err := sim.RunPlanned(inst, h)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, variant, err)
			}
			if err := sched.Validate(inst, 1e-5); err != nil {
				t.Fatalf("seed %d %v: %v", seed, variant, err)
			}
			if ms := sched.MaxStretch(inst); ms < opt*(1-1e-4) {
				t.Fatalf("seed %d %v: beats optimum (%v < %v)", seed, variant, ms, opt)
			} else if variant == Plain {
				degOnline += ms / opt
			}
		}
		eg, err := sim.RunList(inst, NewEGDF())
		if err != nil {
			t.Fatalf("seed %d EGDF: %v", seed, err)
		}
		if err := eg.Validate(inst, 1e-5); err != nil {
			t.Fatalf("seed %d EGDF: %v", seed, err)
		}
		degEGDF += eg.MaxStretch(inst) / opt
		n++
	}
	degOnline /= float64(n)
	degEGDF /= float64(n)
	if degOnline > 1.1 {
		t.Fatalf("Online mean degradation %v too high", degOnline)
	}
	if degEGDF > 1.5 {
		t.Fatalf("Online-EGDF mean degradation %v too high", degEGDF)
	}
}

// TestOptimizedImprovesSumStretch verifies the Figure 3(b) effect in
// aggregate: System (2) improves the sum-stretch over the non-optimised
// baseline.
func TestOptimizedImprovesSumStretch(t *testing.T) {
	var opt, non float64
	for seed := int64(20); seed < 32; seed++ {
		inst := randomInstance(t, seed, 2, 2, 7)
		so, err := sim.RunPlanned(inst, New(Plain))
		if err != nil {
			t.Fatal(err)
		}
		sn, err := sim.RunPlanned(inst, NewNonOptimized())
		if err != nil {
			t.Fatal(err)
		}
		opt += so.SumStretch(inst)
		non += sn.SumStretch(inst)
	}
	if opt > non*1.001 {
		t.Fatalf("optimised sum-stretch %v worse than non-optimised %v", opt, non)
	}
}

// TestNonOptimizedStillNearOptimalMaxStretch: both variants target the same
// deadlines, so the max-stretch of the non-optimised variant is also close
// to optimal (Figure 3(a)).
func TestNonOptimizedStillNearOptimalMaxStretch(t *testing.T) {
	for seed := int64(40); seed < 45; seed++ {
		inst := randomInstance(t, seed, 2, 2, 6)
		opt, err := offline.Optimal(inst)
		if err != nil {
			t.Fatal(err)
		}
		sn, err := sim.RunPlanned(inst, NewNonOptimized())
		if err != nil {
			t.Fatal(err)
		}
		if ms := sn.MaxStretch(inst); ms > opt*1.35 {
			t.Fatalf("seed %d: non-optimised degradation %v", seed, ms/opt)
		}
	}
}

func TestBender98ExpandedDeadlines(t *testing.T) {
	// Single arrival wave: Bender98 with α=1 equals EDF at the optimal
	// stretch; with the default √∆ the deadlines are looser but the
	// schedule must still be valid and complete.
	inst := randomInstance(t, 77, 2, 2, 6)
	pol := NewBender98()
	sched, err := sim.RunList(inst, pol)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(inst, 1e-5); err != nil {
		t.Fatal(err)
	}
	// α override is honoured.
	tight := &Bender98{Alpha: 1}
	s2, err := sim.RunList(inst, tight)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Validate(inst, 1e-5); err != nil {
		t.Fatal(err)
	}
}

// TestBender98WeakerThanOnline reproduces the paper's observation that the
// guaranteed Bender heuristics lose to the LP-based online heuristics on
// max-stretch (in aggregate).
func TestBender98WeakerThanOnline(t *testing.T) {
	var bender, online float64
	for seed := int64(50); seed < 60; seed++ {
		inst := randomInstance(t, seed, 2, 2, 7)
		sb, err := sim.RunList(inst, NewBender98())
		if err != nil {
			t.Fatal(err)
		}
		so, err := sim.RunPlanned(inst, New(Plain))
		if err != nil {
			t.Fatal(err)
		}
		bender += sb.MaxStretch(inst)
		online += so.MaxStretch(inst)
	}
	if bender < online*(1-1e-9) {
		t.Fatalf("Bender98 aggregate max-stretch %v beat Online %v", bender, online)
	}
}

func TestEGDFRanksStableAcrossCompletions(t *testing.T) {
	// After the last arrival, ranks must not be recomputed (completions do
	// not change the order); exercised implicitly by a long tail of
	// completions after one arrival wave.
	jobs := []model.Job{
		{Release: 0, Size: 3, Databank: 0},
		{Release: 0, Size: 1, Databank: 0},
		{Release: 0, Size: 2, Databank: 0},
	}
	p, err := model.Uniform([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := model.NewInstance(p, jobs)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEGDF()
	sched, err := sim.RunList(inst, e)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(inst, 1e-6); err != nil {
		t.Fatal(err)
	}
	// Sanity: the small job should not be last.
	if sched.Completion[1] >= sched.Completion[0] {
		t.Fatalf("completions = %v", sched.Completion)
	}
}

func TestPlanEmptyContext(t *testing.T) {
	inst := randomInstance(t, 99, 1, 1, 1)
	h := New(Plain)
	h.Init(inst)
	plan, err := h.Plan(&sim.Ctx{
		Inst:      inst,
		Remaining: []float64{0},
		Released:  []bool{true},
		Done:      []bool{true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.PerMachine[0]) != 0 {
		t.Fatal("plan for finished instance not empty")
	}
}

func TestLastStretchExposed(t *testing.T) {
	inst := randomInstance(t, 123, 1, 1, 4)
	h := New(Plain)
	if _, err := sim.RunPlanned(inst, h); err != nil {
		t.Fatal(err)
	}
	if h.LastStretch() <= 0 {
		t.Fatalf("LastStretch = %v", h.LastStretch())
	}
}

func TestMaxStretchMonotoneVsOffline(t *testing.T) {
	// The online S* after the final arrival is a lower bound on what the
	// online run can achieve, and the offline optimum lower-bounds both.
	inst := randomInstance(t, 31, 2, 2, 5)
	opt, err := offline.Optimal(inst)
	if err != nil {
		t.Fatal(err)
	}
	h := New(Plain)
	sched, err := sim.RunPlanned(inst, h)
	if err != nil {
		t.Fatal(err)
	}
	got := sched.MaxStretch(inst)
	if got < opt*(1-1e-4) {
		t.Fatalf("online %v below offline optimum %v", got, opt)
	}
	if got < h.LastStretch()*(1-1e-4) {
		t.Fatalf("online result %v below its own final bound %v", got, h.LastStretch())
	}
	if math.IsNaN(got) {
		t.Fatal("NaN max-stretch")
	}
}
