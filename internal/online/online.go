// Package online implements the on-line max-stretch heuristics of §4.3.2.
//
// The paper's algorithm reacts to every job arrival:
//
//  1. preempt the running jobs;
//  2. compute the best achievable max-stretch S*, given the decisions
//     already made (executed work is sunk; remaining work is re-planned);
//  3. solve System (2): among allocations meeting the S*-deadlines,
//     minimise a relaxation of the sum-stretch (pull work early);
//  4. realise the allocation into an executable schedule.
//
// Step 4 exists in three variants — Online (per-machine, terminal jobs
// first under SWRPT), Online-EDF (per-machine, by global completion
// interval) and Online-EGDF (a global priority list fed to the greedy
// spatial rule of §3). A "non-optimised" variant stops after step 2 and
// realises the bare feasibility solution; Figure 3 of the paper measures
// what step 3 buys over it.
//
// The package also provides the two guaranteed competitors from the
// literature used in the paper's evaluation: Bender98 (offline-optimal
// recomputation with √∆-expanded deadlines + EDF) and Bender02 (the
// pseudo-stretch rule, re-exported from internal/policy).
package online

import (
	"fmt"

	"stretchsched/internal/model"
	"stretchsched/internal/offline"
	"stretchsched/internal/sim"
)

// Variant selects the realisation strategy of step 4.
type Variant int

const (
	// Plain is the paper's "Online": terminal jobs first, SWRPT ties.
	Plain Variant = iota
	// EDF is "Online-EDF": per-machine list by global completion interval.
	EDF
)

func (v Variant) String() string {
	switch v {
	case Plain:
		return "Online"
	case EDF:
		return "Online-EDF"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Heuristic is the LP-based online scheduler (variants Plain and EDF),
// used through sim.RunPlanned.
type Heuristic struct {
	Variant Variant
	// Optimized applies System (2) (step 3). When false the heuristic
	// stops after step 2 and realises the raw feasibility allocation —
	// the paper's "non-optimized" baseline of Figure 3.
	Optimized bool
	Solver    offline.Solver

	ws            *offline.Workspace
	lastStretch   float64
	refineErrs    int
	lastRefineErr error
}

// SetWorkspace attaches a pooled solver workspace: every per-arrival
// re-optimisation then reuses one set of problem/flow/allocation/plan
// buffers instead of rebuilding them (see offline.Workspace). Must not be
// called mid-run.
func (h *Heuristic) SetWorkspace(ws *offline.Workspace) { h.ws = ws }

// onlineRelTol is the bisection tolerance of the per-arrival step-2 solves.
// It is looser than the offline default: the plan is recomputed at the next
// arrival anyway, and each decimal digit costs one feasibility flow.
const onlineRelTol = 1e-7

// New returns an optimised online heuristic of the given variant.
func New(v Variant) *Heuristic {
	return &Heuristic{Variant: v, Optimized: true, Solver: offline.Solver{RelTol: onlineRelTol}}
}

// NewNonOptimized returns the Figure-3 baseline: best-achievable max-stretch
// deadlines, no sum-stretch refinement.
func NewNonOptimized() *Heuristic {
	return &Heuristic{Variant: Plain, Optimized: false, Solver: offline.Solver{RelTol: onlineRelTol}}
}

// Name implements sim.Planner.
func (h *Heuristic) Name() string {
	if !h.Optimized {
		return "Online-NonOpt"
	}
	return h.Variant.String()
}

// LastStretch returns the most recent best-achievable max-stretch computed
// in step 2 (diagnostic).
func (h *Heuristic) LastStretch() float64 { return h.lastStretch }

// LastRefineErr returns the System (2) failure of the most recent Plan
// call, or nil if the last refinement succeeded (diagnostic). Unlike the
// offline planner, the online heuristic deliberately falls back to the
// step-2 allocation on refinement failure — the plan is recomputed at the
// next arrival anyway — but the failure is recorded, never swallowed.
func (h *Heuristic) LastRefineErr() error { return h.lastRefineErr }

// SolveFailures returns the number of per-arrival solver failures recorded
// by the current run. Step-2 failures abort the run through Plan's error
// (stretchErrs is always 0 here, kept for interface symmetry with EGDF);
// step-3 failures fall back to the unrefined allocation and count.
func (h *Heuristic) SolveFailures() (stretchErrs, refineErrs int) {
	return 0, h.refineErrs
}

// Init implements sim.Planner.
func (h *Heuristic) Init(*model.Instance) {
	h.lastStretch = 0
	h.refineErrs = 0
	h.lastRefineErr = nil
}

// Plan implements sim.Planner; it is invoked by the engine at the start and
// at every job arrival, which realises the paper's "preempt and recompute on
// every release" loop.
func (h *Heuristic) Plan(ctx *sim.Ctx) (*sim.Plan, error) {
	var prob *offline.Problem
	if h.ws != nil {
		prob = h.ws.FromContext(ctx)
	} else {
		prob = offline.FromContext(ctx)
	}
	if len(prob.Tasks) == 0 {
		if h.ws != nil {
			return h.ws.EmptyPlan(ctx.Inst.Platform.NumMachines()), nil
		}
		return sim.NewPlan(ctx.Inst.Platform.NumMachines()), nil
	}
	sol, err := h.Solver.OptimalStretch(prob)
	if err != nil {
		return nil, fmt.Errorf("online: step 2: %w", err)
	}
	h.lastStretch = sol.Stretch

	alloc := sol.Alloc
	if h.Optimized {
		refined, err := prob.Refine(sol.Stretch)
		if err != nil {
			// Borderline feasibility at S* can trip the min-cost solver's
			// tolerance; retry with a hair of slack before giving up.
			refined, err = prob.Refine(sol.Stretch * (1 + 1e-9))
		}
		h.lastRefineErr = err
		if err == nil {
			alloc = refined
		} else {
			h.refineErrs++
		}
	} else {
		// Step-2-only baseline: any deadline-feasible allocation, with no
		// earliness preference — the paper's LP solver returned an
		// arbitrary vertex; latest-fit represents that without the
		// accidental earliness bias of a BFS max-flow witness.
		if lazy, err := prob.FeasibleAlloc(sol.Stretch, true); err == nil {
			alloc = lazy
		}
	}

	order := offline.TerminalSWRPT
	if h.Variant == EDF {
		order = offline.GlobalCompletionEDF
	}
	return alloc.Realize(order)
}

// EGDF is the "Online-EGDF" variant: steps 1–3 as above, but step 4 keeps
// only the global completion order of the refined allocation and feeds it
// to the greedy spatial rule as a priority list. It is therefore a
// sim.Policy, not a planner.
type EGDF struct {
	Solver offline.Solver

	// DisableIncremental turns off the warm-started incremental solve
	// session for the per-event step-2 re-optimisations in Exact mode and
	// re-solves cold from scratch instead — the ablation baseline of
	// BenchmarkOnlineEventSolveCold. Off (incremental enabled) by default.
	DisableIncremental bool

	ws       *offline.Workspace
	rank     map[model.JobID]int
	order    []model.JobID // pooled GlobalOrder output
	hasRank  bool
	released int

	// Per-event solver failures are fallbacks by design (the previous
	// priority order keeps the simulation running), but they are recorded,
	// never swallowed — the policy counterpart of the planner's RefineErr
	// seam. Counters reset at Init; cmd/experiments aggregates them as
	// grid diagnostics.
	stretchErrs    int
	refineErrs     int
	lastStretchErr error
	lastRefineErr  error

	solve  func(*offline.Solver, *offline.Problem) (*offline.Solution, error) // test seam; nil means Solver.OptimalStretch
	refine func(*offline.Problem, float64) (*offline.Alloc, error)            // test seam; nil means Problem.Refine
}

// NewEGDF returns an Online-EGDF policy.
func NewEGDF() *EGDF { return &EGDF{Solver: offline.Solver{RelTol: onlineRelTol}} }

// SetWorkspace attaches a pooled solver workspace for the per-arrival
// re-optimisations. Must not be called mid-run.
func (e *EGDF) SetWorkspace(ws *offline.Workspace) { e.ws = ws }

// Name implements sim.Policy.
func (e *EGDF) Name() string { return "Online-EGDF" }

// SolveFailures returns how many per-event step-2 (optimal stretch) and
// step-3 (System (2) refinement) solves failed — and fell back — during
// the current run (diagnostic; see LastStretchErr and LastRefineErr).
func (e *EGDF) SolveFailures() (stretchErrs, refineErrs int) {
	return e.stretchErrs, e.refineErrs
}

// LastStretchErr returns the most recent step-2 failure of the current
// run, or nil. A failure leaves the previous priority order in place.
func (e *EGDF) LastStretchErr() error { return e.lastStretchErr }

// LastRefineErr returns the most recent step-3 failure of the current run,
// or nil. A failure ranks by the unrefined step-2 allocation instead.
func (e *EGDF) LastRefineErr() error { return e.lastRefineErr }

// Init implements sim.Policy.
func (e *EGDF) Init(*model.Instance) {
	clear(e.rank)
	e.hasRank = false
	e.released = 0
	e.stretchErrs, e.refineErrs = 0, 0
	e.lastStretchErr, e.lastRefineErr = nil, nil
}

// OnEvent recomputes the global priority list whenever new jobs arrived.
//
//stretch:noalloc
func (e *EGDF) OnEvent(ctx *sim.Ctx) {
	released := 0
	for _, r := range ctx.Released {
		if r {
			released++
		}
	}
	if released == e.released && e.hasRank {
		return // completions do not change the order
	}
	e.released = released

	var prob *offline.Problem
	if e.ws != nil {
		prob = e.ws.FromContext(ctx)
	} else {
		prob = offline.FromContext(ctx)
	}
	if len(prob.Tasks) == 0 {
		clear(e.rank)
		e.hasRank = true
		return
	}
	sol, err := e.step2(prob)
	if err != nil {
		// Degenerate numeric failure: keep the previous order rather than
		// stopping the simulation; SWRPT ties still give a total order.
		// Recorded, not swallowed.
		e.stretchErrs++
		e.lastStretchErr = err
		return
	}
	alloc := sol.Alloc
	refine := e.refine
	if refine == nil {
		refine = (*offline.Problem).Refine
	}
	if refined, err := refine(prob, sol.Stretch); err == nil {
		alloc = refined
	} else {
		// Fall back to ranking the step-2 allocation; recorded likewise.
		e.refineErrs++
		e.lastRefineErr = err
	}
	e.order = alloc.AppendGlobalOrder(e.order[:0])
	if e.rank == nil {
		e.rank = map[model.JobID]int{} //stretch:alloc-ok — lazy init, reused afterwards
	} else {
		clear(e.rank)
	}
	for i, j := range e.order {
		e.rank[j] = i
	}
	e.hasRank = true
}

// step2 computes the best achievable max-stretch for the current context.
// With a workspace attached and the sparse exact backend selected, it
// solves through the workspace's persistent incremental session, which
// warm-starts each per-event System (1) program from the previous event's
// optimal basis (falling back to a counted cold solve when feasibility
// repair fails — see offline.Session). Every other configuration, and the
// DisableIncremental ablation, re-solves from scratch as before.
func (e *EGDF) step2(prob *offline.Problem) (*offline.Solution, error) {
	if e.solve != nil {
		return e.solve(&e.Solver, prob)
	}
	if e.ws != nil && e.Solver.Exact && !e.Solver.DenseLP && !e.DisableIncremental {
		return e.ws.Session().OptimalStretch(&e.Solver, prob)
	}
	return e.Solver.OptimalStretch(prob)
}

// Less implements sim.Policy.
//
//stretch:noalloc
func (e *EGDF) Less(ctx *sim.Ctx, a, b model.JobID) bool {
	ra, oka := e.rank[a]
	rb, okb := e.rank[b]
	if oka && okb && ra != rb {
		return ra < rb
	}
	if oka != okb {
		return oka // ranked jobs first
	}
	// Fallback: SWRPT.
	ka := ctx.Inst.AloneTime(a) * ctx.RemainingAloneTime(a)
	kb := ctx.Inst.AloneTime(b) * ctx.RemainingAloneTime(b)
	if ka != kb {
		return ka < kb
	}
	return a < b
}
